package pif

import (
	"context"
	"strings"
	"testing"
)

// The root package is a facade; these tests exercise the public API end to
// end the way a downstream user would.

func TestWorkloadsSuite(t *testing.T) {
	ws := Workloads()
	if len(ws) != 6 {
		t.Fatalf("Workloads() = %d entries, want 6", len(ws))
	}
	for _, w := range ws {
		got, err := WorkloadByName(w.Name)
		if err != nil || got.Name != w.Name {
			t.Errorf("WorkloadByName(%q) = %v, %v", w.Name, got.Name, err)
		}
	}
	if _, err := WorkloadByName("SAP HANA"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestGenerateStreamPublic(t *testing.T) {
	s, err := GenerateStream(DSSQry2(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) < 10_000 {
		t.Fatalf("stream = %d records", len(s))
	}
	if blocks := s.Blocks(); len(blocks) == 0 {
		t.Fatal("no block events")
	}
}

func TestSimulatePublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	cfg := DefaultSimConfig()
	cfg.WarmupInstrs = 1_000_000
	cfg.MeasureInstrs = 300_000
	wl := WebZeus()

	base, err := Simulate(cfg, wl, NoPrefetch())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, wl, NewPIF(DefaultPIFConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefetcher != "PIF" {
		t.Errorf("Prefetcher = %s", res.Prefetcher)
	}
	if res.UIPC <= base.UIPC {
		t.Errorf("PIF UIPC %.3f <= baseline %.3f", res.UIPC, base.UIPC)
	}
	if res.Coverage() <= 0.5 {
		t.Errorf("coverage = %.3f", res.Coverage())
	}
}

func TestBaselineConstructors(t *testing.T) {
	if NewNextLine(4).Name() != "Next-Line" {
		t.Error("NewNextLine name")
	}
	if NewTIFS().Name() != "TIFS" {
		t.Error("NewTIFS name")
	}
	if NoPrefetch().Name() != "None" {
		t.Error("NoPrefetch name")
	}
	if NewPIF(DefaultPIFConfig()).Name() != "PIF" {
		t.Error("NewPIF name")
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	if err := DefaultSystem().Validate(); err != nil {
		t.Errorf("DefaultSystem invalid: %v", err)
	}
	if err := DefaultPIFConfig().Validate(); err != nil {
		t.Errorf("DefaultPIFConfig invalid: %v", err)
	}
	pcfg := DefaultPIFConfig()
	if pcfg.Geometry.Size() != 8 {
		t.Errorf("default region size = %d, want 8", pcfg.Geometry.Size())
	}
	if pcfg.HistoryRegions != 32<<10 {
		t.Errorf("default history = %d, want 32K", pcfg.HistoryRegions)
	}
	if pcfg.NumSABs != 4 || pcfg.SABWindow != 7 {
		t.Errorf("default SABs = %d/%d, want 4/7", pcfg.NumSABs, pcfg.SABWindow)
	}
}

func TestExperimentRegistryPublic(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 10 {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	opts := QuickExperimentOptions()
	opts.Workloads = opts.Workloads[:1]
	rep, err := RunExperiment(opts, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "Table I") {
		t.Errorf("table1 report: %q", rep.Text)
	}
}

func TestRunAllExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := QuickExperimentOptions()
	opts.Workloads = opts.Workloads[2:3] // DSS Qry2 only
	opts.SweepWorkloads = opts.Workloads // keep the sweep artifacts tiny too
	opts.WarmupInstrs = 800_000
	opts.MeasureInstrs = 300_000
	reports, err := RunAllExperiments(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 10 {
		t.Fatalf("reports = %d", len(reports))
	}
}

// TestSweepPublicAPI exercises the sweep facade end to end the way a
// downstream user would: declare a spec, run it over a pool engine,
// address the grid, and persist/reload/diff per-job results.
func TestSweepPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	cfg := DefaultSimConfig()
	cfg.WarmupInstrs = 100_000
	cfg.MeasureInstrs = 100_000
	spec := SweepSpec{
		Name: "api",
		Base: cfg,
		Axes: []SweepAxis{
			SweepWorkloadAxis("workload", []Workload{DSSQry2()}),
			SweepEngineAxis("engine", "none", "pif"),
		},
	}
	g, err := RunSweep(SweepPoolEngine{Workers: 2}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("size = %d", g.Size())
	}
	base, err := g.Result("workload", "dss-qry2", "engine", "none")
	if err != nil {
		t.Fatal(err)
	}
	pifR, err := g.Result("workload", "dss-qry2", "engine", "pif")
	if err != nil {
		t.Fatal(err)
	}
	if pifR.Sim.UIPC <= base.Sim.UIPC {
		t.Errorf("PIF UIPC %.3f <= baseline %.3f", pifR.Sim.UIPC, base.Sim.UIPC)
	}

	jobs, err := g.ReportJobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveJobResults(dir, jobs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJobResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffJobResults(jobs, loaded, DefaultResultTolerances()); d.OutOfTolerance() {
		t.Fatalf("round-tripped jobs drifted:\n%s", d.Render())
	}
}

// TestSourceBackendPublicAPI exercises the unified pipeline facade end
// to end the way a downstream user would: record a store, derive a
// window, and run the same simulation through every Source constructor
// and through an explicit Backend — all paths byte-identical.
func TestSourceBackendPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	wl := OLTPDB2()
	cfg := DefaultSimConfig()
	cfg.WarmupInstrs = 120_000
	cfg.MeasureInstrs = 80_000
	total := cfg.WarmupInstrs + cfg.MeasureInstrs

	dir := t.TempDir() + "/store"
	it, err := GenerateIterator(wl, cfg.WarmupInstrs, cfg.MeasureInstrs)
	if err != nil {
		t.Fatal(err)
	}
	n, err := BuildTraceStore(dir, wl.Name, 1<<14, it, cfg.WarmupInstrs, cfg.MeasureInstrs)
	it.Close()
	if err != nil || n != total {
		t.Fatalf("BuildTraceStore = %d, %v", n, err)
	}

	live, err := Simulate(cfg, wl, NewTIFS())
	if err != nil {
		t.Fatal(err)
	}
	w, err := ParseTraceWindow("0:200000")
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]Source{
		"live":  LiveSource(wl),
		"store": StoreSource(dir),
		"slice": SliceSource(dir, w),
	} {
		got, err := SimulateSource(cfg, wl, src, NewTIFS())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != live {
			t.Errorf("%s source result differs from live", name)
		}
	}

	// Same jobs through an explicit backend.
	b := NewLocalBackend(2)
	defer b.Close()
	jobs := []Job{
		{Label: "live", Workload: wl, Config: cfg, Engine: EngineSpec{Name: "tifs"}},
		{Label: "slice", Workload: wl, Config: cfg, Engine: EngineSpec{Name: "tifs"}, Source: SliceSource(dir, w)},
	}
	results, err := RunJobsOn(context.Background(), b, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Sim != live {
			t.Errorf("backend job %s differs from live", r.Label)
		}
	}

	// A window past the recorded range is a hard error.
	if _, err := SimulateSource(cfg, wl, SliceSource(dir, TraceWindow{Off: total, Len: 1}), NewTIFS()); err == nil {
		t.Error("out-of-range slice accepted")
	}

	// The slice reader is exported for direct window replay.
	sr, err := OpenTraceSlice(dir, w)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Window() != w {
		t.Errorf("slice window = %v", sr.Window())
	}
}
