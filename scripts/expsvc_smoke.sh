#!/usr/bin/env bash
# expsvc_smoke.sh — end-to-end check of the experiment service at the CLI
# layer: build the binaries, start a token-protected coordinator + worker
# + pifexpd stack, submit a two-cell sweep with `experiments submit`,
# follow it to completion, and require the service's stored run to diff
# exit-0 against the same spec run locally with `experiments sweep -out`
# (the acceptance contract: one sweep definition, two execution paths,
# byte-identical artifacts and per-job results).
#
# The service is then restarted on the same database to check the run
# survives (still listed done, still diffable), and the bearer token is
# checked to actually gate the API.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
cleanup() {
    jobs -p | xargs -r kill -9 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

cd "$root"
bin="$work/bin"
mkdir -p "$bin"
go build -o "$bin" ./cmd/...

token=smoke-secret
coord=127.0.0.1:18177
svc=127.0.0.1:18178

wait_port() {
    local hostport=$1
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/${hostport%:*}/${hostport#*:}") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.2
    done
    echo "expsvc smoke: $hostport never came up" >&2
    return 1
}

"$bin/pifcoord" -listen "$coord" -auth-token "$token" &
wait_port "$coord"
"$bin/pifworker" -coord "$coord" -parallel 2 -auth-token "$token" &

"$bin/pifexpd" -listen "$svc" -db "$work/svcdb" \
    -backend "remote@$coord" -auth-token "$token" &
expd=$!
wait_port "$svc"

# The token gates every API call: a tokenless client dials (health check
# is open for probes) but its first real request must be refused.
if "$bin/experiments" status -svc "$svc" 2>/dev/null; then
    echo "expsvc smoke: tokenless status succeeded against a protected service" >&2
    exit 1
fi

spec_args=(-quick -warmup 1000000 -measure 500000 -name smoke
    -axis "workload=OLTP DB2" -axis engine=pif,none)

# Submit through the service (runs on the coordinator's worker) and
# follow it to completion; the run ID is the only stdout line.
run_id=$("$bin/experiments" submit -svc "$svc" -auth-token "$token" \
    "${spec_args[@]}" -wait)
echo "expsvc smoke: run $run_id done"
"$bin/experiments" status -svc "$svc" -auth-token "$token"

# The same spec run locally must be byte-identical: diff-as-a-service
# compares the service's stored run against the local -out directory
# (shipped inline) and must exit 0.
"$bin/experiments" sweep "${spec_args[@]}" -out "$work/local"
"$bin/experiments" diff -svc "$svc" -auth-token "$token" "$run_id" "$work/local"
echo "expsvc smoke: service run identical to local sweep"

# -json carries the same verdict machine-readably.
"$bin/experiments" diff -json -svc "$svc" -auth-token "$token" \
    "$run_id" "$work/local" | grep -q '"code": 0'

# Restart the service on the same database: the run database is
# persistent, so the completed run must still be listed done and diff
# clean — no requeue, no loss.
kill "$expd"
wait "$expd" 2>/dev/null || true
"$bin/pifexpd" -listen "$svc" -db "$work/svcdb" \
    -backend "remote@$coord" -auth-token "$token" &
wait_port "$svc"

"$bin/experiments" status -svc "$svc" -auth-token "$token" -json "$run_id" \
    | grep -q '"state": "done"'
"$bin/experiments" diff -svc "$svc" -auth-token "$token" "$run_id" "$work/local"
echo "expsvc smoke: run database survived a service restart"
