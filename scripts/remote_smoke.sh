#!/usr/bin/env bash
# remote_smoke.sh — end-to-end check of the remote execution backend at
# the CLI layer: build the binaries, start a coordinator and workers, run
# a source-axis sweep through -backend remote@…, SIGKILL a worker
# mid-sweep, and require the per-job results to diff clean against the
# same sweep run locally (experiments diff exit-code contract: 0 within
# tolerance, and per-job JSON is byte-identical by construction).
#
# The kill is forced to land mid-run: only the victim worker exists when
# the remote sweep starts, the coordinator streams each accepted result
# to disk (-results), and the victim is SIGKILLed as soon as the first
# result file appears — its remaining leases must be re-queued after the
# lease TTL and finished by a survivor started after the kill.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
cleanup() {
    jobs -p | xargs -r kill -9 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

cd "$root"
bin="$work/bin"
mkdir -p "$bin"
go build -o "$bin" ./cmd/...

# A sharded store: the source axis ships slice windows of it, the
# workers re-open it by path (same machine, same path).
store="$work/oltp.store"
"$bin/tracegen" -workload "OLTP DB2" -n 3000000 -shard-records 500000 -o "$store"

addr=127.0.0.1:18077
"$bin/pifcoord" -listen "$addr" -lease-ttl 2s -results "$work/coordstore" &

# Wait for the coordinator to accept connections.
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/18077") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    sleep 0.2
done

sweep_args=(sweep -quick -name smoke
    -axis "workload=OLTP DB2" -axis engine=pif,tifs,nextline,none
    -axis "source=slice@0:1M@$store,slice@1M:1M@$store")

# Local reference run.
"$bin/experiments" "${sweep_args[@]}" -out "$work/local"

# The victim is the only worker when the sweep starts, one task at a
# time so it cannot drain the queue before the kill.
"$bin/pifworker" -coord "$addr" -name victim -parallel 1 &
victim=$!

"$bin/experiments" "${sweep_args[@]}" -backend "remote@$addr" -out "$work/remote" &
sweep=$!

# First streamed result file => the victim is mid-run. Kill it.
for _ in $(seq 1 400); do
    if ls "$work"/coordstore/*/jobs/*.json >/dev/null 2>&1; then
        break
    fi
    sleep 0.05
done
kill -9 "$victim" 2>/dev/null || true
"$bin/pifworker" -coord "$addr" -name survivor -parallel 2 &

wait "$sweep"

# The coordinator's streaming store must hold exactly one file per cell:
# completions are idempotent, so the re-leased tasks land once each.
n=$(ls "$work"/coordstore/*/jobs/*.json | wc -l)
if [ "$n" -ne 8 ]; then
    echo "remote smoke: coordinator persisted $n job files, want 8" >&2
    exit 1
fi

"$bin/experiments" diff "$work/local" "$work/remote"
echo "remote smoke: local and remote runs identical (worker SIGKILLed mid-sweep)"

# Tuned-engine sweeps: parameterized engine specs are wire data (wire
# v2), so history- and budget-axis grids run remotely and must diff
# clean against the same grids run locally. The two knobs are swept in
# separate grids on purpose — each engine's schema rejects a cell
# setting both history and budget_kb (ambiguous sizing), which is the
# validation the coordinator now applies at encode time. The surviving
# worker from the kill test executes everything.
tuned_args=(sweep -quick -name tuned-history
    -axis "workload=OLTP DB2" -axis engine=pif,tifs
    -axis history=1K,4K)
budget_args=(sweep -quick -name tuned-budget
    -axis "workload=OLTP DB2" -axis engine=pif,tifs,none
    -axis budget=8,32)

"$bin/experiments" "${tuned_args[@]}" -out "$work/tuned-local"
"$bin/experiments" "${tuned_args[@]}" -backend "remote@$addr" -out "$work/tuned-remote"
"$bin/experiments" diff "$work/tuned-local" "$work/tuned-remote"

"$bin/experiments" "${budget_args[@]}" -out "$work/budget-local"
"$bin/experiments" "${budget_args[@]}" -backend "remote@$addr" -out "$work/budget-remote"
"$bin/experiments" diff "$work/budget-local" "$work/budget-remote"

echo "remote smoke: tuned engine sweeps (history, budget axes) identical local vs remote"

# Sharded sweep cells through the remote backend: -shards splits every
# cell into window-shard jobs (wire v3 carries the measure offset), the
# worker fleet runs the shards, and the stitched per-cell results must
# diff clean against the unsharded sweep run locally (DESIGN.md §13).
shard_args=(sweep -quick -warmup 1000000 -measure 1000000 -name sharded
    -axis "workload=OLTP DB2" -axis engine=pif,tifs
    -axis "source=store@$store")

"$bin/experiments" "${shard_args[@]}" -out "$work/shard-local"
"$bin/experiments" "${shard_args[@]}" -shards 3 -backend "remote@$addr" -out "$work/shard-remote"
"$bin/experiments" diff "$work/shard-local" "$work/shard-remote"

echo "remote smoke: sharded sweep cells (-shards 3) identical to unsharded local run"
