package prefetch

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// TIFSConfig sizes the TIFS engine.
type TIFSConfig struct {
	// HistoryBlocks bounds the miss-history buffer; 0 means unlimited
	// (the paper's idealized competitive comparison, Figure 10 left).
	HistoryBlocks int
	// Streams is the number of concurrent stream buffers.
	Streams int
	// Lookahead is the replay window depth in blocks.
	Lookahead int
}

// DefaultTIFSConfig mirrors the paper's TIFS setup scaled to this model.
func DefaultTIFSConfig() TIFSConfig {
	return TIFSConfig{HistoryBlocks: 0, Streams: 4, Lookahead: 12}
}

// TIFS implements Temporal Instruction Fetch Streaming [Ferdman et al.,
// MICRO 2008]: it logs the sequence of L1-I miss addresses into a history
// buffer with an index of most-recent occurrences, and on a miss whose
// address has been seen before it replays the recorded miss stream through
// stream buffers, prefetching the upcoming blocks.
//
// Because TIFS trains on the *miss* stream, its history inherits the cache
// filtering and wrong-path injection the paper analyzes in Section 2; this
// is the mechanism PIF's retire-order recording removes.
type TIFS struct {
	cfg     TIFSConfig
	history []isa.Block
	base    int
	index   map[isa.Block]int
	streams []tifsStream
	clock   uint64
}

type tifsStream struct {
	pos  int
	live bool
	lru  uint64
}

// NewTIFS builds a TIFS engine.
func NewTIFS(cfg TIFSConfig) *TIFS {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = 1
	}
	return &TIFS{
		cfg:     cfg,
		index:   make(map[isa.Block]int),
		streams: make([]tifsStream, cfg.Streams),
	}
}

// Name implements Prefetcher.
func (t *TIFS) Name() string { return "TIFS" }

// HistoryLen returns the retained miss-history length (for tests).
func (t *TIFS) HistoryLen() int { return len(t.history) }

func (t *TIFS) at(pos int) (isa.Block, bool) {
	i := pos - t.base
	if i < 0 || i >= len(t.history) {
		return 0, false
	}
	return t.history[i], true
}

func (t *TIFS) end() int { return t.base + len(t.history) }

// OnAccess implements Prefetcher. Misses are recorded into the history and
// trigger replay; all demand accesses advance matching streams.
func (t *TIFS) OnAccess(ev AccessEvent, iss Issuer) {
	t.clock++
	b := ev.Block

	// Advance any stream expecting this access.
	advanced := false
	for i := range t.streams {
		s := &t.streams[i]
		if !s.live {
			continue
		}
		for k := 0; k < t.cfg.Lookahead; k++ {
			hb, ok := t.at(s.pos + k)
			if !ok {
				break
			}
			if hb == b {
				s.pos += k + 1
				s.lru = t.clock
				if s.pos >= t.end() {
					s.live = false
				} else {
					t.issueWindow(s, iss)
				}
				advanced = true
				break
			}
		}
		if advanced {
			break
		}
	}

	if ev.Hit {
		return
	}

	// Record the miss and, if this miss address heads a recorded stream,
	// start replaying it.
	if !advanced {
		if pos, ok := t.index[b]; ok {
			t.open(pos+1, iss)
		}
	}
	t.index[b] = t.end()
	t.history = append(t.history, b)
	if t.cfg.HistoryBlocks > 0 && len(t.history) > t.cfg.HistoryBlocks {
		drop := len(t.history) - t.cfg.HistoryBlocks
		t.history = t.history[drop:]
		t.base += drop
	}
}

// open allocates a stream buffer at history position pos (LRU replace).
func (t *TIFS) open(pos int, iss Issuer) {
	if pos >= t.end() {
		return
	}
	victim := 0
	for i := range t.streams {
		if !t.streams[i].live {
			victim = i
			break
		}
		if t.streams[i].lru < t.streams[victim].lru {
			victim = i
		}
	}
	t.streams[victim] = tifsStream{pos: pos, live: true, lru: t.clock}
	t.issueWindow(&t.streams[victim], iss)
}

// issueWindow prefetches the lookahead window of a stream.
func (t *TIFS) issueWindow(s *tifsStream, iss Issuer) {
	for k := 0; k < t.cfg.Lookahead; k++ {
		hb, ok := t.at(s.pos + k)
		if !ok {
			return
		}
		if !iss.Contains(hb) {
			iss.Prefetch(hb)
		}
	}
}

// OnRetire implements Prefetcher (TIFS does not observe retirement).
func (t *TIFS) OnRetire(trace.Record, bool, Issuer) {}
