package prefetch

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Spec is the declarative, serializable form of an engine configuration:
// a registry name plus explicit parameter values. A Spec is plain data —
// it travels through sweep grids, job files, and the remote wire — and is
// resolved into a live engine instance only at the point of execution,
// against the schema the engine registered. Zero params means "the
// engine's defaults".
//
// Params use float64 as the universal scalar so the whole spec
// round-trips through JSON without a type registry; each engine's schema
// declares per-parameter kinds (int, bool, float) and validation rejects
// values that do not fit the declared kind. JSON encoding is canonical:
// Go serializes map keys in sorted order.
type Spec struct {
	// Name is the engine's registry name ("pif", "tifs", ...).
	Name string `json:"name"`
	// Params holds explicitly-set parameter values keyed by schema
	// parameter name. Unset parameters take their schema defaults.
	Params map[string]float64 `json:"params,omitempty"`
}

// With returns a copy of the spec with one parameter set. The receiver's
// param map is never mutated, so specs derived from a shared base (sweep
// cells expanded from one BaseEngine) cannot contaminate each other.
func (s Spec) With(param string, v float64) Spec {
	out := Spec{Name: s.Name, Params: make(map[string]float64, len(s.Params)+1)}
	for k, pv := range s.Params {
		out.Params[k] = pv
	}
	out.Params[param] = v
	return out
}

// String renders the spec in the CLI's -engine syntax: "name" or
// "name:k=v,...". Params print in sorted order, so equal specs render
// identically (the form error messages and job records quote).
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+formatParamValue(s.Params[k]))
	}
	return s.Name + ":" + strings.Join(parts, ",")
}

// formatParamValue renders a param scalar in the shortest exact form.
func formatParamValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Kind is the declared type of a schema parameter.
type Kind string

const (
	// KindInt accepts integral values only.
	KindInt Kind = "int"
	// KindBool accepts 0 or 1 (the CLI also parses true/false).
	KindBool Kind = "bool"
	// KindFloat accepts any finite value.
	KindFloat Kind = "float"
)

// Param declares one typed parameter of an engine schema.
type Param struct {
	// Name is the parameter's key in Spec.Params.
	Name string
	// Kind is the value's declared type; the zero value means KindInt.
	Kind Kind
	// Default is the effective value when the spec does not set the
	// parameter. Defaults are trusted: they bypass Min/Max (a parameter
	// may default to 0 meaning "unset" while requiring explicit values
	// to be >= 1).
	Default float64
	// Min is the smallest accepted explicit value.
	Min float64
	// Max is the largest accepted explicit value; 0 means unbounded
	// above.
	Max float64
	// Help is a one-line description for -list-engines.
	Help string
}

// Params is the effective parameter set handed to an engine constructor:
// every schema parameter present, defaults applied and derivations
// resolved.
type Params map[string]float64

// Schema declares a registered engine: its name, typed parameters, and
// how a validated parameter set becomes a live instance.
type Schema struct {
	// Name is the registry name.
	Name string
	// Doc is a one-line description for -list-engines.
	Doc string
	// Params declares the accepted parameters in display order.
	Params []Param
	// Ignores lists parameter names the engine accepts and drops without
	// error. Mixed-engine sweep axes (budget_kb across pif/tifs/none)
	// rely on this: an engine with no history storage ignores the budget
	// knob instead of failing the whole grid.
	Ignores []string
	// Derive, when non-nil, runs after per-parameter validation with the
	// effective parameter set and the set of explicitly-provided names.
	// It applies cross-parameter derivations in place (budget_kb ->
	// history) and rejects invalid combinations.
	Derive func(p Params, set map[string]bool) error
	// New constructs a fresh engine from a fully resolved parameter set.
	// Engines are stateful; New must never return a shared instance.
	New func(p Params) Prefetcher
}

// param looks up a declared parameter by name.
func (s Schema) param(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// ignores reports whether the schema accepts-and-drops the given name.
func (s Schema) ignores(name string) bool {
	for _, n := range s.Ignores {
		if n == name {
			return true
		}
	}
	return false
}

// paramNames returns the declared parameter names in display order.
func (s Schema) paramNames() []string {
	names := make([]string, 0, len(s.Params))
	for _, p := range s.Params {
		names = append(names, p.Name)
	}
	return names
}

// Describe renders the schema for -list-engines: one header line and one
// indented line per parameter.
func (s Schema) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.Name, s.Doc)
	for _, p := range s.Params {
		kind := p.Kind
		if kind == "" {
			kind = KindInt
		}
		rng := ""
		switch {
		case p.Max > 0:
			rng = fmt.Sprintf("  [%s..%s]", formatParamValue(p.Min), formatParamValue(p.Max))
		case p.Min != 0:
			rng = fmt.Sprintf("  [>= %s]", formatParamValue(p.Min))
		}
		fmt.Fprintf(&b, "    %-12s %-5s default %-8s%s  %s\n",
			p.Name, kind, formatParamValue(p.Default), rng, p.Help)
	}
	if len(s.Ignores) > 0 {
		fmt.Fprintf(&b, "    (accepts and ignores: %s)\n", strings.Join(s.Ignores, ", "))
	}
	return b.String()
}

// The registry maps engine names to schemas. The baselines in this
// package register themselves from registry.go's init; the PIF variants
// register from internal/core's init (core depends on this package, not
// vice versa).
var (
	regMu   sync.RWMutex
	schemas = map[string]Schema{}
)

// Register adds an engine schema. It panics on an empty name, a nil
// constructor, or a duplicate registration — registry population is
// init-time programmer input.
func Register(s Schema) {
	if s.Name == "" || s.New == nil {
		panic(fmt.Sprintf("prefetch: Register(%q) with empty name or nil constructor", s.Name))
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if p.Name == "" || seen[p.Name] {
			panic(fmt.Sprintf("prefetch: Register(%q): empty or duplicate param %q", s.Name, p.Name))
		}
		seen[p.Name] = true
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := schemas[s.Name]; dup {
		panic(fmt.Sprintf("prefetch: duplicate registration of %q", s.Name))
	}
	schemas[s.Name] = s
}

// LookupSchema returns the schema registered under name.
func LookupSchema(name string) (Schema, error) {
	regMu.RLock()
	s, ok := schemas[name]
	regMu.RUnlock()
	if !ok {
		return Schema{}, fmt.Errorf("prefetch: unknown engine %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// Schemas returns the registered schemas sorted by name.
func Schemas() []Schema {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Schema, 0, len(schemas))
	for _, s := range schemas {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered engine names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(schemas))
	for n := range schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// effectiveParams validates spec against its engine's schema and returns
// the resolved parameter set: defaults overlaid with the spec's explicit
// values (ignored names dropped), then the schema's Derive applied.
func effectiveParams(spec Spec) (Params, error) {
	sch, err := LookupSchema(spec.Name)
	if err != nil {
		return nil, err
	}
	eff := make(Params, len(sch.Params))
	for _, p := range sch.Params {
		eff[p.Name] = p.Default
	}
	set := make(map[string]bool, len(spec.Params))
	// Validate in sorted order so the first error is deterministic.
	keys := make([]string, 0, len(spec.Params))
	for k := range spec.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := spec.Params[k]
		if sch.ignores(k) {
			if _, declared := sch.param(k); !declared {
				continue
			}
		}
		p, ok := sch.param(k)
		if !ok {
			if len(sch.Params) == 0 {
				return nil, fmt.Errorf("prefetch: engine %q: unknown param %q (engine takes no params)", spec.Name, k)
			}
			return nil, fmt.Errorf("prefetch: engine %q: unknown param %q (have %s)",
				spec.Name, k, strings.Join(sch.paramNames(), ", "))
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("prefetch: engine %q: param %q: value %s is not finite",
				spec.Name, k, formatParamValue(v))
		}
		kind := p.Kind
		if kind == "" {
			kind = KindInt
		}
		switch kind {
		case KindInt:
			if v != math.Trunc(v) {
				return nil, fmt.Errorf("prefetch: engine %q: param %q: value %s is not an integer",
					spec.Name, k, formatParamValue(v))
			}
		case KindBool:
			if v != 0 && v != 1 {
				return nil, fmt.Errorf("prefetch: engine %q: param %q: value %s is not a bool (use 1 or 0)",
					spec.Name, k, formatParamValue(v))
			}
		}
		if v < p.Min {
			return nil, fmt.Errorf("prefetch: engine %q: param %q: value %s below minimum %s",
				spec.Name, k, formatParamValue(v), formatParamValue(p.Min))
		}
		if p.Max > 0 && v > p.Max {
			return nil, fmt.Errorf("prefetch: engine %q: param %q: value %s above maximum %s",
				spec.Name, k, formatParamValue(v), formatParamValue(p.Max))
		}
		eff[k] = v
		set[k] = true
	}
	if sch.Derive != nil {
		if err := sch.Derive(eff, set); err != nil {
			return nil, fmt.Errorf("prefetch: engine %q: %w", spec.Name, err)
		}
	}
	return eff, nil
}

// Validate checks a spec against its engine's schema: known engine,
// known parameter names, declared kinds, declared ranges, and the
// engine's cross-parameter rules.
func Validate(spec Spec) error {
	_, err := effectiveParams(spec)
	return err
}

// Resolve validates a spec and constructs a fresh engine instance from
// it. Engines are stateful, so every simulation job resolves its own.
func Resolve(spec Spec) (Prefetcher, error) {
	eff, err := effectiveParams(spec)
	if err != nil {
		return nil, err
	}
	sch, err := LookupSchema(spec.Name)
	if err != nil {
		return nil, err
	}
	return sch.New(eff), nil
}

// Resolved returns the spec with every schema parameter at its effective
// value: defaults applied and derivations resolved. This is the
// like-for-like form job records store, so a budget-swept cell and a
// hand-tuned cell with the same effective history compare equal.
func Resolved(spec Spec) (Spec, error) {
	eff, err := effectiveParams(spec)
	if err != nil {
		return Spec{}, err
	}
	out := Spec{Name: spec.Name}
	if len(eff) > 0 {
		out.Params = map[string]float64(eff)
	}
	return out, nil
}

// NewByName constructs a fresh engine instance by registry name with all
// parameters at their schema defaults.
func NewByName(name string) (Prefetcher, error) {
	return Resolve(Spec{Name: name})
}

// ParseSpec parses the CLI's -engine syntax, "name" or "name:k=v,...",
// into a validated Spec. Values parse schema-aware: int params accept K
// and M binary suffixes ("64K" = 65536), bool params accept true/false
// as well as 1/0.
func ParseSpec(s string) (Spec, error) {
	name, rest, hasParams := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	sch, err := LookupSchema(name)
	if err != nil {
		return Spec{}, err
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(rest) == "" {
		return Spec{}, fmt.Errorf("prefetch: engine spec %q: empty parameter list after %q", s, name+":")
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return Spec{}, fmt.Errorf("prefetch: engine spec %q: param %q is not of the form k=v", s, kv)
		}
		if _, dup := spec.Params[k]; dup {
			return Spec{}, fmt.Errorf("prefetch: engine spec %q: param %q set twice", s, k)
		}
		p, declared := sch.param(k)
		if !declared && !sch.ignores(k) {
			if len(sch.Params) == 0 {
				return Spec{}, fmt.Errorf("prefetch: engine %q: unknown param %q (engine takes no params)", name, k)
			}
			return Spec{}, fmt.Errorf("prefetch: engine %q: unknown param %q (have %s)",
				name, k, strings.Join(sch.paramNames(), ", "))
		}
		kind := p.Kind
		if !declared || kind == "" {
			kind = KindInt
		}
		f, perr := parseParamValue(v, kind)
		if perr != nil {
			return Spec{}, fmt.Errorf("prefetch: engine spec %q: param %q: %v", s, k, perr)
		}
		if spec.Params == nil {
			spec.Params = make(map[string]float64)
		}
		spec.Params[k] = f
	}
	if err := Validate(spec); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// parseParamValue parses one CLI parameter value for the given kind.
func parseParamValue(v string, kind Kind) (float64, error) {
	switch kind {
	case KindBool:
		switch v {
		case "true", "1":
			return 1, nil
		case "false", "0":
			return 0, nil
		}
		return 0, fmt.Errorf("bad bool %q (use true/false or 1/0)", v)
	case KindFloat:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("bad value %q", v)
		}
		return f, nil
	default: // KindInt
		mult := 1.0
		switch {
		case strings.HasSuffix(v, "K"), strings.HasSuffix(v, "k"):
			mult, v = 1024, v[:len(v)-1]
		case strings.HasSuffix(v, "M"), strings.HasSuffix(v, "m"):
			mult, v = 1024*1024, v[:len(v)-1]
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("bad value %q", v)
		}
		return f * mult, nil
	}
}
