package prefetch_test

// Spec-layer tests live in an external test package so they can exercise
// the PIF schemas, which internal/core registers (core imports prefetch,
// so the internal test package cannot import core back).

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/prefetch"
)

// registerTestSchema adds a schema exercising the corners no production
// engine needs: a Max-bounded int, a float param, and a bool.
var registerTestSchema = sync.OnceFunc(func() {
	prefetch.Register(prefetch.Schema{
		Name: "zz-test",
		Doc:  "test-only schema",
		Params: []prefetch.Param{
			{Name: "bounded", Kind: prefetch.KindInt, Default: 4, Min: 1, Max: 8},
			{Name: "ratio", Kind: prefetch.KindFloat, Default: 0.5, Min: 0, Max: 1},
			{Name: "flag", Kind: prefetch.KindBool, Default: 0},
		},
		New: func(prefetch.Params) prefetch.Prefetcher { return prefetch.None{} },
	})
})

func TestValidateErrors(t *testing.T) {
	registerTestSchema()
	cases := []struct {
		name string
		spec prefetch.Spec
		want []string // every fragment the error must contain
	}{
		{"unknown engine",
			prefetch.Spec{Name: "warpdrive"},
			[]string{`unknown engine "warpdrive"`, "nextline"}},
		{"unknown param",
			prefetch.Spec{Name: "pif", Params: map[string]float64{"stride": 2}},
			[]string{`engine "pif"`, `unknown param "stride"`, "history"}},
		{"unknown param on paramless engine",
			prefetch.Spec{Name: "pif-unlimited", Params: map[string]float64{"budget_kb": 8}},
			[]string{`unknown param "budget_kb"`, "takes no params"}},
		{"non-integer for int param",
			prefetch.Spec{Name: "nextline", Params: map[string]float64{"degree": 2.5}},
			[]string{`param "degree"`, "value 2.5 is not an integer"}},
		{"non-bool for bool param",
			prefetch.Spec{Name: "pif", Params: map[string]float64{"sep": 2}},
			[]string{`param "sep"`, "value 2 is not a bool"}},
		{"below minimum",
			prefetch.Spec{Name: "nextline", Params: map[string]float64{"degree": 0}},
			[]string{`param "degree"`, "value 0 below minimum 1"}},
		{"above maximum",
			prefetch.Spec{Name: "zz-test", Params: map[string]float64{"bounded": 9}},
			[]string{`param "bounded"`, "value 9 above maximum 8"}},
		{"not finite",
			prefetch.Spec{Name: "pif", Params: map[string]float64{"history": math.Inf(1)}},
			[]string{`param "history"`, "is not finite"}},
		{"NaN",
			prefetch.Spec{Name: "zz-test", Params: map[string]float64{"ratio": math.NaN()}},
			[]string{`param "ratio"`, "is not finite"}},
		{"tifs budget and history conflict",
			prefetch.Spec{Name: "tifs", Params: map[string]float64{"budget_kb": 8, "history": 1024}},
			[]string{`engine "tifs"`, "mutually exclusive"}},
		{"pif budget and history conflict",
			prefetch.Spec{Name: "pif", Params: map[string]float64{"budget_kb": 8, "history": 1024}},
			[]string{`engine "pif"`, "mutually exclusive"}},
		{"pif budget and index conflict",
			prefetch.Spec{Name: "pif", Params: map[string]float64{"budget_kb": 8, "index": 512}},
			[]string{"mutually exclusive"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := prefetch.Validate(tc.spec)
			if err == nil {
				t.Fatalf("Validate(%v) accepted", tc.spec)
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q missing %q", err, frag)
				}
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	registerTestSchema()
	for _, spec := range []prefetch.Spec{
		{Name: "none"},
		{Name: "pif"},
		{Name: "pif", Params: map[string]float64{"budget_kb": 32}},
		{Name: "tifs", Params: map[string]float64{"budget_kb": 64}},
		// Ignored params pass on engines that declare them ignorable,
		// even with values the declared kind would reject.
		{Name: "none", Params: map[string]float64{"budget_kb": 8, "history": 1024, "degree": 2}},
		{Name: "nextline", Params: map[string]float64{"degree": 2, "budget_kb": 8}},
		{Name: "zz-test", Params: map[string]float64{"ratio": 0.25, "flag": 1}},
	} {
		if err := prefetch.Validate(spec); err != nil {
			t.Errorf("Validate(%v): %v", spec, err)
		}
	}
}

func TestResolvedDerivations(t *testing.T) {
	get := func(t *testing.T, s prefetch.Spec) prefetch.Spec {
		t.Helper()
		r, err := prefetch.Resolved(s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// PIF budget derives both history and index at 6 B/region, 4:1.
	r := get(t, prefetch.Spec{Name: "pif", Params: map[string]float64{"budget_kb": 48}})
	wantHist := float64(48 << 10 / core.PIFBytesPerRegion)
	if r.Params["history"] != wantHist || r.Params["index"] != float64(int(wantHist)/4) {
		t.Errorf("pif budget_kb=48 resolved to history=%g index=%g, want %g/%g",
			r.Params["history"], r.Params["index"], wantHist, float64(int(wantHist)/4))
	}
	// History alone scales the index 4:1...
	r = get(t, prefetch.Spec{Name: "pif", Params: map[string]float64{"history": 2048}})
	if r.Params["index"] != 512 {
		t.Errorf("pif history=2048 resolved index=%g, want 512", r.Params["index"])
	}
	// ...but an explicit index suppresses the scaling (the fig9R shape).
	r = get(t, prefetch.Spec{Name: "pif", Params: map[string]float64{"history": 2048, "index": 8192}})
	if r.Params["index"] != 8192 {
		t.Errorf("explicit index overridden: %g", r.Params["index"])
	}
	// TIFS budget derives history at 5 B/block.
	r = get(t, prefetch.Spec{Name: "tifs", Params: map[string]float64{"budget_kb": 64}})
	if want := float64(64 << 10 / prefetch.TIFSBytesPerBlock); r.Params["history"] != want {
		t.Errorf("tifs budget_kb=64 resolved history=%g, want %g", r.Params["history"], want)
	}
	// Defaults fill in untouched params.
	r = get(t, prefetch.Spec{Name: "nextline"})
	if r.Params["degree"] != 4 {
		t.Errorf("nextline default degree = %g", r.Params["degree"])
	}
	// Ignored params are dropped from the resolved form.
	r = get(t, prefetch.Spec{Name: "none", Params: map[string]float64{"budget_kb": 8}})
	if len(r.Params) != 0 {
		t.Errorf("none resolved params = %v, want empty", r.Params)
	}
}

func TestSpecWithClones(t *testing.T) {
	base := prefetch.Spec{Name: "pif", Params: map[string]float64{"sabs": 2}}
	a := base.With("history", 1024)
	b := base.With("history", 2048)
	if base.Params["history"] != 0 || len(base.Params) != 1 {
		t.Errorf("With mutated the base: %v", base.Params)
	}
	if a.Params["history"] != 1024 || b.Params["history"] != 2048 {
		t.Errorf("derived specs wrong: %v %v", a.Params, b.Params)
	}
	if a.Params["sabs"] != 2 || b.Params["sabs"] != 2 {
		t.Errorf("With dropped existing params: %v %v", a.Params, b.Params)
	}
	// With on a nil map allocates.
	c := prefetch.Spec{Name: "none"}.With("x", 1)
	if c.Params["x"] != 1 {
		t.Errorf("With on nil map: %v", c.Params)
	}
}

func TestSpecString(t *testing.T) {
	for _, tc := range []struct {
		spec prefetch.Spec
		want string
	}{
		{prefetch.Spec{Name: "pif"}, "pif"},
		{prefetch.Spec{Name: "pif", Params: map[string]float64{"history": 2048, "budget_kb": 8}},
			"pif:budget_kb=8,history=2048"},
		{prefetch.Spec{Name: "zz", Params: map[string]float64{"r": 0.5}}, "zz:r=0.5"},
	} {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	registerTestSchema()
	cases := []struct {
		in   string
		want prefetch.Spec
	}{
		{"pif", prefetch.Spec{Name: "pif"}},
		{"pif:budget_kb=32", prefetch.Spec{Name: "pif", Params: map[string]float64{"budget_kb": 32}}},
		{"pif:history=64K", prefetch.Spec{Name: "pif", Params: map[string]float64{"history": 64 << 10}}},
		{"pif:history=1M", prefetch.Spec{Name: "pif", Params: map[string]float64{"history": 1 << 20}}},
		{"pif:sep=false", prefetch.Spec{Name: "pif", Params: map[string]float64{"sep": 0}}},
		{"pif:sep=true,sabs=2", prefetch.Spec{Name: "pif", Params: map[string]float64{"sep": 1, "sabs": 2}}},
		{"zz-test:ratio=0.25", prefetch.Spec{Name: "zz-test", Params: map[string]float64{"ratio": 0.25}}},
		{" tifs : budget_kb = 8 ", prefetch.Spec{Name: "tifs", Params: map[string]float64{"budget_kb": 8}}},
		// An engine ignoring a param still accepts it on the CLI.
		{"none:budget_kb=8", prefetch.Spec{Name: "none", Params: map[string]float64{"budget_kb": 8}}},
	}
	for _, tc := range cases {
		got, err := prefetch.ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got.String() != tc.want.String() {
			t.Errorf("ParseSpec(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"warpdrive", `unknown engine "warpdrive"`},
		{"pif:", "empty parameter list"},
		{"pif:history", `param "history" is not of the form k=v`},
		{"pif:=2048", "not of the form k=v"},
		{"pif:history=", "not of the form k=v"},
		{"pif:history=2K,history=4K", `param "history" set twice`},
		{"pif:stride=2", `unknown param "stride"`},
		{"pif:history=banana", `bad value "banana"`},
		{"pif:sep=maybe", `bad bool "maybe"`},
		{"nextline:degree=0", "below minimum"},
		{"pif:budget_kb=8,history=1K", "mutually exclusive"},
	}
	for _, tc := range cases {
		_, err := prefetch.ParseSpec(tc.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) error %q missing %q", tc.in, err, tc.want)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := prefetch.Spec{Name: "pif", Params: map[string]float64{"budget_kb": 32, "sabs": 2}}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical encoding: Go writes map keys sorted.
	if want := `{"name":"pif","params":{"budget_kb":32,"sabs":2}}`; string(b) != want {
		t.Errorf("Marshal = %s, want %s", b, want)
	}
	var back prefetch.Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != spec.String() {
		t.Errorf("round trip changed spec: %v -> %v", spec, back)
	}
	// Param-less specs omit the params key entirely.
	b, err = json.Marshal(prefetch.Spec{Name: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"name":"none"}`; string(b) != want {
		t.Errorf("Marshal = %s, want %s", b, want)
	}
}

// FuzzEngineSpecRoundTrip feeds arbitrary JSON at the spec decoder: any
// document that decodes into a spec passing Validate must survive both a
// JSON round trip and a String()/ParseSpec round trip with an identical
// resolved form. This is the serialization contract the sweep job files
// and the remote wire rely on.
func FuzzEngineSpecRoundTrip(f *testing.F) {
	f.Add(`{"name":"pif"}`)
	f.Add(`{"name":"pif","params":{"budget_kb":32}}`)
	f.Add(`{"name":"pif","params":{"history":2048,"index":8192}}`)
	f.Add(`{"name":"tifs","params":{"budget_kb":64,"streams":2}}`)
	f.Add(`{"name":"nextline","params":{"degree":2}}`)
	f.Add(`{"name":"none","params":{"budget_kb":8}}`)
	f.Add(`{"name":"pif","params":{"sep":0}}`)
	f.Add(`{"name":"warpdrive"}`)
	f.Add(`{"name":"pif","params":{"degree":1e308}}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, in string) {
		var spec prefetch.Spec
		if err := json.Unmarshal([]byte(in), &spec); err != nil {
			return
		}
		if prefetch.Validate(spec) != nil {
			return
		}
		// JSON round trip preserves the canonical form.
		b1, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		var back prefetch.Spec
		if err := json.Unmarshal(b1, &back); err != nil {
			t.Fatalf("marshal output does not decode: %v", err)
		}
		b2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("JSON round trip not stable:\n%s\n%s", b1, b2)
		}
		// CLI round trip: String() re-parses to the same resolved form.
		reparsed, err := prefetch.ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("String() form %q does not re-parse: %v", spec.String(), err)
		}
		r1, err := prefetch.Resolved(spec)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := prefetch.Resolved(reparsed)
		if err != nil {
			t.Fatalf("re-parsed spec does not resolve: %v", err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("CLI round trip changed resolved form:\n%s\n%s", r1, r2)
		}
	})
}
