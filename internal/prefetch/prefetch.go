// Package prefetch defines the prefetcher interface shared by all engines
// in the repository and implements the paper's comparison baselines: the
// aggressive next-line prefetcher and TIFS (Temporal Instruction Fetch
// Streaming), which records and replays the L1-I *miss* stream.
//
// Proactive Instruction Fetch itself lives in internal/core and implements
// the same interface; the perfect-L1 upper bound is handled by the timing
// simulator (it is a property of the cache, not a prefetch engine).
package prefetch

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// AccessEvent describes one L1-I demand probe observed by a prefetcher.
type AccessEvent struct {
	// Block is the probed instruction block.
	Block isa.Block
	// TL is the trap level of the fetch.
	TL isa.TrapLevel
	// WrongPath marks accesses later squashed by misprediction recovery.
	WrongPath bool
	// Hit reports whether the probe hit in the L1-I.
	Hit bool
	// WasPrefetched reports whether the hit line had been brought in by a
	// prefetch and not yet demanded.
	WasPrefetched bool
}

// Prefetched reports whether the fetch was served by a prefetch — the
// complement of the paper's "tagged" (not explicitly prefetched) property.
func (e AccessEvent) Prefetched() bool { return e.Hit && e.WasPrefetched }

// Issuer is the channel through which prefetchers inject blocks into the
// L1-I. Implementations (the simulator) model fill latency and pollution.
type Issuer interface {
	// Contains probes the cache tags without disturbing LRU state.
	Contains(b isa.Block) bool
	// Prefetch queues a prefetch fill for b. Issuing for a resident block
	// is a harmless no-op (implementations probe first).
	Prefetch(b isa.Block)
}

// Prefetcher is a pluggable instruction prefetch engine.
type Prefetcher interface {
	// Name labels the engine in result tables.
	Name() string
	// OnAccess observes a front-end demand probe and may issue prefetches.
	OnAccess(ev AccessEvent, iss Issuer)
	// OnRetire observes a retired instruction. tagged reports that the
	// instruction's fetch was not served by a prefetch (the paper's tag
	// bit carried down the pipeline).
	OnRetire(r trace.Record, tagged bool, iss Issuer)
}

// None is the no-prefetch baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "None" }

// OnAccess implements Prefetcher.
func (None) OnAccess(AccessEvent, Issuer) {}

// OnRetire implements Prefetcher.
func (None) OnRetire(trace.Record, bool, Issuer) {}

// NextLine is the aggressive next-line prefetcher [Smith 1978; Jouppi 1990]:
// on every demand access it prefetches the next Degree sequential blocks.
type NextLine struct {
	// Degree is the number of sequential successors fetched per access.
	Degree int
}

// NewNextLine returns a next-line prefetcher with the given degree
// (degree 4 matches the "aggressive" configuration of the evaluation).
func NewNextLine(degree int) *NextLine {
	if degree <= 0 {
		degree = 1
	}
	return &NextLine{Degree: degree}
}

// Name implements Prefetcher.
func (n *NextLine) Name() string { return "Next-Line" }

// OnAccess implements Prefetcher.
func (n *NextLine) OnAccess(ev AccessEvent, iss Issuer) {
	for i := 1; i <= n.Degree; i++ {
		b := ev.Block.Add(i)
		if !iss.Contains(b) {
			iss.Prefetch(b)
		}
	}
}

// OnRetire implements Prefetcher.
func (n *NextLine) OnRetire(trace.Record, bool, Issuer) {}
