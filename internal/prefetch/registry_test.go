package prefetch

import (
	"strings"
	"testing"
)

func TestRegistryBaselines(t *testing.T) {
	for name, want := range map[string]string{
		"none":     "None",
		"nextline": "Next-Line",
		"tifs":     "TIFS",
	} {
		p, err := NewByName(name)
		if err != nil {
			t.Errorf("NewByName(%q): %v", name, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("NewByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
}

func TestRegistryFreshInstances(t *testing.T) {
	a, err := NewByName("tifs")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewByName("tifs")
	if err != nil {
		t.Fatal(err)
	}
	if a.(*TIFS) == b.(*TIFS) {
		t.Error("NewByName returned a shared instance; engines are stateful and must be private per job")
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := NewByName("markov")
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	if !strings.Contains(err.Error(), "nextline") {
		t.Errorf("error does not list known engines: %v", err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted at %d: %v", i, names)
		}
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", func() Prefetcher { return None{} }) })
	mustPanic("nil factory", func() { Register("x", nil) })
	mustPanic("duplicate", func() { Register("none", func() Prefetcher { return None{} }) })
}
