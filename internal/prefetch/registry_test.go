package prefetch

import (
	"strings"
	"testing"
)

func TestRegistryBaselines(t *testing.T) {
	for name, want := range map[string]string{
		"none":     "None",
		"nextline": "Next-Line",
		"tifs":     "TIFS",
	} {
		p, err := NewByName(name)
		if err != nil {
			t.Errorf("NewByName(%q): %v", name, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("NewByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
}

func TestRegistryFreshInstances(t *testing.T) {
	a, err := NewByName("tifs")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewByName("tifs")
	if err != nil {
		t.Fatal(err)
	}
	if a.(*TIFS) == b.(*TIFS) {
		t.Error("NewByName returned a shared instance; engines are stateful and must be private per job")
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := NewByName("markov")
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	if !strings.Contains(err.Error(), "nextline") {
		t.Errorf("error does not list known engines: %v", err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted at %d: %v", i, names)
		}
	}
}

func TestSchemasSortedAndDescribed(t *testing.T) {
	schemas := Schemas()
	if len(schemas) < 3 {
		t.Fatalf("Schemas() = %d entries", len(schemas))
	}
	for i := 1; i < len(schemas); i++ {
		if schemas[i-1].Name >= schemas[i].Name {
			t.Errorf("Schemas() not sorted at %d", i)
		}
	}
	for _, s := range schemas {
		d := s.Describe()
		if !strings.HasPrefix(d, s.Name+" — ") {
			t.Errorf("Describe(%s) header = %q", s.Name, strings.SplitN(d, "\n", 2)[0])
		}
		for _, p := range s.Params {
			if !strings.Contains(d, p.Name) {
				t.Errorf("Describe(%s) missing param %q", s.Name, p.Name)
			}
		}
		if len(s.Ignores) > 0 && !strings.Contains(d, "accepts and ignores") {
			t.Errorf("Describe(%s) does not list ignored params", s.Name)
		}
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	ctor := func(Params) Prefetcher { return None{} }
	mustPanic("empty name", func() { Register(Schema{Name: "", New: ctor}) })
	mustPanic("nil constructor", func() { Register(Schema{Name: "x"}) })
	mustPanic("duplicate", func() { Register(Schema{Name: "none", New: ctor}) })
	mustPanic("duplicate param", func() {
		Register(Schema{Name: "x", New: ctor, Params: []Param{{Name: "a"}, {Name: "a"}}})
	})
	mustPanic("empty param name", func() {
		Register(Schema{Name: "x", New: ctor, Params: []Param{{Name: ""}}})
	})
}
