package prefetch

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

type fakeIssuer struct {
	resident   map[isa.Block]bool
	prefetched []isa.Block
}

func newFakeIssuer() *fakeIssuer { return &fakeIssuer{resident: map[isa.Block]bool{}} }

func (f *fakeIssuer) Contains(b isa.Block) bool { return f.resident[b] }

func (f *fakeIssuer) Prefetch(b isa.Block) {
	f.prefetched = append(f.prefetched, b)
	f.resident[b] = true
}

func (f *fakeIssuer) got(b isa.Block) bool {
	for _, x := range f.prefetched {
		if x == b {
			return true
		}
	}
	return false
}

func TestAccessEventPrefetched(t *testing.T) {
	if (AccessEvent{Hit: true, WasPrefetched: true}).Prefetched() != true {
		t.Error("prefetch hit should report Prefetched")
	}
	if (AccessEvent{Hit: true}).Prefetched() {
		t.Error("plain hit is not Prefetched")
	}
	if (AccessEvent{Hit: false, WasPrefetched: true}).Prefetched() {
		t.Error("miss is never Prefetched")
	}
}

func TestNoneDoesNothing(t *testing.T) {
	var n None
	iss := newFakeIssuer()
	n.OnAccess(AccessEvent{Block: 5}, iss)
	n.OnRetire(trace.Record{}, true, iss)
	if len(iss.prefetched) != 0 {
		t.Error("None prefetched blocks")
	}
	if n.Name() != "None" {
		t.Errorf("Name = %s", n.Name())
	}
}

func TestNextLinePrefetchesSuccessors(t *testing.T) {
	nl := NewNextLine(4)
	iss := newFakeIssuer()
	nl.OnAccess(AccessEvent{Block: 100}, iss)
	for i := 1; i <= 4; i++ {
		if !iss.got(isa.Block(100 + i)) {
			t.Errorf("block %d not prefetched", 100+i)
		}
	}
	if iss.got(isa.Block(105)) {
		t.Error("prefetched beyond degree")
	}
	if iss.got(isa.Block(100)) {
		t.Error("prefetched the accessed block itself")
	}
}

func TestNextLineSkipsResident(t *testing.T) {
	nl := NewNextLine(2)
	iss := newFakeIssuer()
	iss.resident[101] = true
	nl.OnAccess(AccessEvent{Block: 100}, iss)
	if iss.got(101) {
		t.Error("resident block prefetched")
	}
	if !iss.got(102) {
		t.Error("non-resident successor not prefetched")
	}
}

func TestNextLineDegreeNormalized(t *testing.T) {
	nl := NewNextLine(0)
	if nl.Degree != 1 {
		t.Errorf("degree = %d, want 1", nl.Degree)
	}
	if nl.Name() != "Next-Line" {
		t.Errorf("Name = %s", nl.Name())
	}
}

func missAt(tifs *TIFS, iss Issuer, b isa.Block) {
	tifs.OnAccess(AccessEvent{Block: b, Hit: false}, iss)
}

func hitAt(tifs *TIFS, iss Issuer, b isa.Block) {
	tifs.OnAccess(AccessEvent{Block: b, Hit: true}, iss)
}

func TestTIFSReplaysMissStream(t *testing.T) {
	tifs := NewTIFS(DefaultTIFSConfig())
	iss := newFakeIssuer()
	// Record a miss stream.
	for _, b := range []isa.Block{10, 30, 50, 70, 90} {
		missAt(tifs, iss, b)
	}
	// Unrelated misses.
	for _, b := range []isa.Block{200, 201} {
		missAt(tifs, iss, b)
	}
	// Recurrence of the head: replay should prefetch the recorded stream.
	iss2 := newFakeIssuer()
	missAt(tifs, iss2, 10)
	for _, b := range []isa.Block{30, 50, 70, 90} {
		if !iss2.got(b) {
			t.Errorf("block %v not prefetched on TIFS replay", b)
		}
	}
}

func TestTIFSHitsDoNotRecord(t *testing.T) {
	tifs := NewTIFS(DefaultTIFSConfig())
	iss := newFakeIssuer()
	hitAt(tifs, iss, 10)
	hitAt(tifs, iss, 11)
	if tifs.HistoryLen() != 0 {
		t.Errorf("hits recorded into history: len=%d", tifs.HistoryLen())
	}
}

func TestTIFSAdvanceExtendsReplay(t *testing.T) {
	cfg := DefaultTIFSConfig()
	cfg.Lookahead = 3
	tifs := NewTIFS(cfg)
	iss := newFakeIssuer()
	var seq []isa.Block
	for i := 0; i < 12; i++ {
		seq = append(seq, isa.Block(10+20*i))
	}
	for _, b := range seq {
		missAt(tifs, iss, b)
	}
	missAt(tifs, iss, 999)

	iss2 := newFakeIssuer()
	missAt(tifs, iss2, seq[0])
	if iss2.got(seq[8]) {
		t.Fatal("lookahead not bounded")
	}
	// Demand fetches walk the stream; prefetches must stay ahead.
	for _, b := range seq[1:8] {
		hitAt(tifs, iss2, b)
	}
	if !iss2.got(seq[8]) {
		t.Error("TIFS did not extend the replay while being followed")
	}
}

func TestTIFSBoundedHistory(t *testing.T) {
	cfg := DefaultTIFSConfig()
	cfg.HistoryBlocks = 4
	tifs := NewTIFS(cfg)
	iss := newFakeIssuer()
	for i := 0; i < 20; i++ {
		missAt(tifs, iss, isa.Block(i))
	}
	if tifs.HistoryLen() != 4 {
		t.Errorf("history len = %d, want 4", tifs.HistoryLen())
	}
}

func TestTIFSFragmentedHistoryLosesCoverage(t *testing.T) {
	// The paper's core observation: if the recorded miss stream differs
	// from the actual access stream (cache filtering), replay misses
	// blocks. Record 10,30,50 (filtered stream: 20,40 hit that day),
	// then check that 20 and 40 are never prefetched.
	tifs := NewTIFS(DefaultTIFSConfig())
	iss := newFakeIssuer()
	for _, b := range []isa.Block{10, 30, 50, 200, 201} {
		missAt(tifs, iss, b)
	}
	iss2 := newFakeIssuer()
	missAt(tifs, iss2, 10)
	if iss2.got(20) || iss2.got(40) {
		t.Error("TIFS cannot know filtered blocks — test harness broken")
	}
	if !iss2.got(30) || !iss2.got(50) {
		t.Error("recorded blocks should be prefetched")
	}
}

func TestTIFSName(t *testing.T) {
	if NewTIFS(DefaultTIFSConfig()).Name() != "TIFS" {
		t.Error("bad name")
	}
}
