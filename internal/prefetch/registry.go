package prefetch

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory constructs a fresh prefetch engine. Engines are stateful, so
// every simulation job needs its own instance: the registry hands out
// factories, never shared engines.
type Factory func() Prefetcher

// The registry maps engine names to factories. The baselines in this
// package register themselves below; the PIF variants register from
// internal/core's init (core depends on this package, not vice versa).
var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// Register adds a named engine factory. It panics on an empty name, a nil
// factory, or a duplicate registration — registry population is
// init-time programmer input.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic(fmt.Sprintf("prefetch: Register(%q) with empty name or nil factory", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("prefetch: duplicate registration of %q", name))
	}
	factories[name] = f
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, error) {
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown engine %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f, nil
}

// NewByName constructs a fresh engine instance by registry name.
func NewByName(name string) (Prefetcher, error) {
	f, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// Names returns the registered engine names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("none", func() Prefetcher { return None{} })
	// Degree 4 is the "aggressive" next-line configuration of the paper's
	// competitive comparison.
	Register("nextline", func() Prefetcher { return NewNextLine(4) })
	Register("tifs", func() Prefetcher { return NewTIFS(DefaultTIFSConfig()) })
}
