package prefetch

import "errors"

// TIFSBytesPerBlock is the storage-budget accounting for TIFS history:
// a history entry is one block address plus index overhead, ~36 bits
// rounded to 5 bytes (MANA's accounting, applied to TIFS's log).
const TIFSBytesPerBlock = 5

// The baseline engines register their schemas here; the PIF variants
// register from internal/core's init (core depends on this package, not
// vice versa). History-less engines declare budget_kb and history in
// Ignores so mixed-engine budget sweeps stay valid across the whole
// axis.
func init() {
	Register(Schema{
		Name: "none",
		Doc:  "no prefetching (baseline)",
		// The baseline crosses every mixed-engine sweep, so it also
		// swallows the nextline degree axis.
		Ignores: []string{"budget_kb", "history", "degree"},
		New:     func(Params) Prefetcher { return None{} },
	})
	Register(Schema{
		Name: "nextline",
		Doc:  "aggressive next-line prefetcher [Smith 1978; Jouppi 1990]",
		Params: []Param{
			// Degree 4 is the "aggressive" next-line configuration of the
			// paper's competitive comparison.
			{Name: "degree", Kind: KindInt, Default: 4, Min: 1,
				Help: "sequential successor blocks fetched per access"},
		},
		Ignores: []string{"budget_kb", "history"},
		New: func(p Params) Prefetcher {
			return NewNextLine(int(p["degree"]))
		},
	})
	Register(Schema{
		Name: "tifs",
		Doc:  "Temporal Instruction Fetch Streaming (miss-stream replay)",
		Params: []Param{
			{Name: "history", Kind: KindInt, Default: 0, Min: 0,
				Help: "miss-history buffer capacity in blocks (0 = unlimited)"},
			{Name: "budget_kb", Kind: KindInt, Default: 0, Min: 1,
				Help: "history storage budget in KB (5 B/block); derives history"},
			{Name: "streams", Kind: KindInt, Default: 4, Min: 1,
				Help: "concurrent stream buffers"},
			{Name: "lookahead", Kind: KindInt, Default: 12, Min: 1,
				Help: "replay window depth in blocks"},
		},
		Derive: func(p Params, set map[string]bool) error {
			if set["budget_kb"] {
				if set["history"] {
					return errors.New("params budget_kb and history are mutually exclusive")
				}
				blocks := int(p["budget_kb"]) << 10 / TIFSBytesPerBlock
				if blocks < 1 {
					blocks = 1
				}
				p["history"] = float64(blocks)
			}
			return nil
		},
		New: func(p Params) Prefetcher {
			return NewTIFS(TIFSConfig{
				HistoryBlocks: int(p["history"]),
				Streams:       int(p["streams"]),
				Lookahead:     int(p["lookahead"]),
			})
		},
	})
}
