package frontend

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func feed(t *testing.T, s trace.Stream) []Access {
	t.Helper()
	return Stream(DefaultConfig(), s)
}

func TestSequentialRunEmitsPerBlock(t *testing.T) {
	// 48 sequential instructions = 3 blocks → exactly 3 accesses.
	var s trace.Stream
	for i := 0; i < 48; i++ {
		s = append(s, trace.Record{PC: isa.Addr(0x1000).Plus(i)})
	}
	acc := feed(t, s)
	if len(acc) != 3 {
		t.Fatalf("accesses = %d, want 3", len(acc))
	}
	for i, a := range acc {
		if a.WrongPath {
			t.Errorf("access %d marked wrong-path", i)
		}
		if a.Block != isa.BlockOf(0x1000)+isa.Block(i) {
			t.Errorf("access %d block = %v", i, a.Block)
		}
	}
}

func TestTightLoopReaccessesBlock(t *testing.T) {
	// A taken branch looping within one block must re-access the block
	// each iteration (the fetch group restarts).
	var s trace.Stream
	for it := 0; it < 4; it++ {
		s = append(s, trace.Record{PC: 0x2000})
		s = append(s, trace.Record{PC: 0x2004, Flags: trace.FlagCondBranch | trace.FlagBranchTaken})
	}
	s = append(s, trace.Record{PC: 0x2000})
	acc := feed(t, s)
	count := 0
	for _, a := range acc {
		if !a.WrongPath && a.Block == isa.BlockOf(0x2000) {
			count++
		}
	}
	if count < 4 {
		t.Errorf("loop block accessed %d times, want >= 4", count)
	}
}

func TestWrongPathInjectionOnSurpriseTaken(t *testing.T) {
	// Train a branch not-taken, then take it: the fall-through path
	// should be fetched as wrong-path noise.
	var s trace.Stream
	branch := isa.Addr(0x3000)
	for i := 0; i < 20; i++ {
		s = append(s, trace.Record{PC: branch, Flags: trace.FlagCondBranch}) // not taken
		s = append(s, trace.Record{PC: branch.Plus(1)})
	}
	s = append(s, trace.Record{PC: branch, Flags: trace.FlagCondBranch | trace.FlagBranchTaken})
	s = append(s, trace.Record{PC: 0x9000})
	acc := feed(t, s)
	var wrong []Access
	for _, a := range acc {
		if a.WrongPath {
			wrong = append(wrong, a)
		}
	}
	if len(wrong) == 0 {
		t.Fatal("no wrong-path accesses for surprise taken branch")
	}
	if wrong[0].Block != isa.BlockOf(branch.Plus(1)) {
		t.Errorf("wrong path starts at %v, want fall-through block %v",
			wrong[0].Block, isa.BlockOf(branch.Plus(1)))
	}
}

func TestWrongPathInjectionOnSurpriseNotTaken(t *testing.T) {
	// Train a branch taken (BTB learns target), then fall through: the
	// stale BTB target should be fetched as wrong-path noise.
	var s trace.Stream
	branch := isa.Addr(0x4000)
	target := isa.Addr(0x8000)
	for i := 0; i < 20; i++ {
		s = append(s, trace.Record{PC: branch, Flags: trace.FlagCondBranch | trace.FlagBranchTaken})
		s = append(s, trace.Record{PC: target})
	}
	s = append(s, trace.Record{PC: branch, Flags: trace.FlagCondBranch}) // not taken
	s = append(s, trace.Record{PC: branch.Plus(1)})
	acc := feed(t, s)
	var wrong []Access
	for _, a := range acc {
		if a.WrongPath {
			wrong = append(wrong, a)
		}
	}
	if len(wrong) == 0 {
		t.Fatal("no wrong-path accesses for surprise not-taken branch")
	}
	if wrong[len(wrong)-1].Block < isa.BlockOf(target) {
		t.Errorf("wrong path should fetch BTB target region, got %v", wrong[len(wrong)-1].Block)
	}
}

func TestWellPredictedBranchNoNoise(t *testing.T) {
	// A perfectly repetitive taken branch must not inject noise after
	// warmup.
	var s trace.Stream
	branch := isa.Addr(0x5000)
	target := isa.Addr(0xa000)
	for i := 0; i < 200; i++ {
		s = append(s, trace.Record{PC: branch, Flags: trace.FlagCondBranch | trace.FlagBranchTaken})
		s = append(s, trace.Record{PC: target})
	}
	acc := feed(t, s)
	lateWrong := 0
	for i, a := range acc {
		if a.WrongPath && i > len(acc)/2 {
			lateWrong++
		}
	}
	if lateWrong > 0 {
		t.Errorf("%d wrong-path accesses after warmup on a stable branch", lateWrong)
	}
}

func TestStatsAccounting(t *testing.T) {
	s, err := workload.GenerateStream(workload.OLTPOracle(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	fe := New(DefaultConfig())
	var wrong, correct int
	for _, r := range s {
		fe.Feed(r, func(a Access) {
			if a.WrongPath {
				wrong++
			} else {
				correct++
			}
		})
	}
	st := fe.Stats()
	if st.Fetches != uint64(correct) || st.WrongPathFetches != uint64(wrong) {
		t.Errorf("stats mismatch: %+v vs emitted %d/%d", st, correct, wrong)
	}
	if st.Branches == 0 || st.Mispredicts == 0 {
		t.Errorf("expected branches and mispredicts on a server workload: %+v", st)
	}
	if st.Mispredicts >= st.Branches {
		t.Errorf("mispredicts %d >= branches %d", st.Mispredicts, st.Branches)
	}
	if wrong == 0 {
		t.Error("server workload produced no wrong-path noise")
	}
	// Wrong-path share should be noticeable but not dominant.
	frac := float64(wrong) / float64(wrong+correct)
	if frac < 0.005 || frac > 0.5 {
		t.Errorf("wrong-path fraction = %f, want in [0.005, 0.5]", frac)
	}
}

func TestTransferMarksGroups(t *testing.T) {
	s := trace.Stream{
		{PC: 0x1000},
		{PC: 0x1004, Flags: trace.FlagBranchTaken}, // call
		{PC: 0x8000, Flags: trace.FlagCallTarget},
	}
	acc := feed(t, s)
	if len(acc) < 2 {
		t.Fatalf("accesses = %d", len(acc))
	}
	last := acc[len(acc)-1]
	if last.Block != isa.BlockOf(0x8000) || !last.Transfer {
		t.Errorf("call target access should be a transfer: %+v", last)
	}
}

func TestAccessStreamCoversRetireBlocks(t *testing.T) {
	// Every retired block must appear in the access stream (fetch precedes
	// retirement).
	s, err := workload.GenerateStream(workload.DSSQry2(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	acc := feed(t, s)
	seen := map[isa.Block]bool{}
	for _, a := range acc {
		seen[a.Block] = true
	}
	for i, r := range s {
		if !seen[r.Block()] {
			t.Fatalf("retired block %v (record %d) never fetched", r.Block(), i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	s, err := workload.GenerateStream(workload.WebZeus(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	a := Stream(DefaultConfig(), s)
	b := Stream(DefaultConfig(), s)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}
