// Package frontend models the processor fetch engine: it replays the
// correct-path retire-order trace through the branch predictor and
// synthesizes the L1-I *access* stream, including the wrong-path noise the
// paper blames for corrupting access-stream-trained prefetchers
// (Section 2.2, Figure 1 right).
//
// For every conditional branch in the retire stream the predictor is
// consulted and trained. On a misprediction the fetch engine runs down the
// wrong path — sequential fall-through blocks when the branch was actually
// taken, or the stale BTB target when it was actually not taken — for a
// data-dependent number of blocks (the unpredictable misprediction
// resolution delay), then squashes and refetches the correct path.
package frontend

import (
	"math/rand"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Access is one L1-I access issued by the fetch engine.
type Access struct {
	// Block is the accessed instruction block.
	Block isa.Block
	// TL is the trap level of the fetch.
	TL isa.TrapLevel
	// WrongPath marks accesses later squashed by misprediction recovery.
	WrongPath bool
	// Transfer marks the first access of a new fetch group (the previous
	// group ended in a taken control transfer or a squash refetch).
	Transfer bool
}

// Config parameterizes the wrong-path model.
type Config struct {
	// Predictor sizes the branch predictor tables.
	Predictor bpred.Config
	// MaxWrongPathBlocks bounds the wrong-path fetch depth per
	// misprediction; the actual depth is data-dependent (uniform in
	// [1, MaxWrongPathBlocks]), modeling variable resolution latency.
	MaxWrongPathBlocks int
	// Seed drives the data-dependent resolution delays.
	Seed int64
}

// DefaultConfig matches the paper's Table I core (96-entry ROB, 3-wide):
// a handful of wrong-path blocks per misprediction.
func DefaultConfig() Config {
	return Config{
		Predictor:          bpred.DefaultConfig(),
		MaxWrongPathBlocks: 6,
		Seed:               1,
	}
}

// Stats counts front-end events.
type Stats struct {
	// JSON names are stable snake_case: Stats is embedded in sim.Result,
	// which the results store persists and diffs across commits.
	Fetches          uint64 `json:"fetches"` // correct-path accesses emitted
	WrongPathFetches uint64 `json:"wrong_path_fetches"`
	Mispredicts      uint64 `json:"mispredicts"`
	Branches         uint64 `json:"branches"`
}

// Frontend converts retire-order records into the fetch access stream.
type Frontend struct {
	cfg   Config
	bp    *bpred.Predictor
	rng   *rand.Rand
	stats Stats

	prev      trace.Record
	havePrev  bool
	lastBlock isa.Block
	haveLast  bool
	refetch   bool
}

// New builds a front-end model.
func New(cfg Config) *Frontend {
	return &Frontend{
		cfg: cfg,
		bp:  bpred.New(cfg.Predictor),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Stats returns a copy of the counters.
func (f *Frontend) Stats() Stats { return f.stats }

// Predictor exposes the underlying branch predictor (for statistics).
func (f *Frontend) Predictor() *bpred.Predictor { return f.bp }

// Feed consumes the next retired instruction and emits the access stream
// produced while fetching it: wrong-path accesses injected by resolving
// the previous instruction's branch, followed by the demand access for
// this instruction's block when it opens a new fetch group.
func (f *Frontend) Feed(r trace.Record, emit func(Access)) {
	transfer := false
	if f.havePrev {
		transfer = f.resolvePrev(r, emit)
	}
	if r.Flags.Has(trace.FlagCallTarget | trace.FlagReturnTarget) {
		transfer = true
	}
	if r.Flags.Has(trace.FlagTrapEntry) || r.Flags.Has(trace.FlagTrapReturn) {
		transfer = true
	}

	b := r.Block()
	if !f.haveLast || b != f.lastBlock || transfer || f.refetch {
		emit(Access{Block: b, TL: r.TL, Transfer: transfer || f.refetch})
		f.stats.Fetches++
		f.lastBlock, f.haveLast = b, true
	}
	f.refetch = false
	f.prev, f.havePrev = r, true
}

// resolvePrev trains the predictor on the previous record (whose successor
// is now known) and injects wrong-path accesses on a misprediction. It
// reports whether a taken control transfer ended the previous fetch group.
func (f *Frontend) resolvePrev(next trace.Record, emit func(Access)) (transfer bool) {
	p := f.prev
	if p.Flags.Has(trace.FlagBranchTaken) {
		transfer = true
	}
	if !p.Flags.Has(trace.FlagCondBranch) {
		if p.Flags.Has(trace.FlagBranchTaken) {
			// Unconditional transfer (call): record its target.
			f.bp.BTBUpdate(p.PC, next.PC)
		}
		return transfer
	}

	f.stats.Branches++
	actualTaken := p.Flags.Has(trace.FlagBranchTaken)
	mis := f.bp.UpdateCond(p.PC, actualTaken)
	if actualTaken {
		f.bp.BTBUpdate(p.PC, next.PC)
	}
	if !mis {
		return transfer
	}
	f.stats.Mispredicts++

	// Wrong-path fetch: where did the front-end *think* it was going?
	var wrongStart isa.Addr
	haveWrong := false
	if actualTaken {
		// Predicted not-taken: fetched the fall-through path.
		wrongStart = p.PC.Plus(1)
		haveWrong = true
	} else if target, ok := f.bp.BTBLookup(p.PC); ok {
		// Predicted taken: fetched the stale BTB target.
		wrongStart = target
		haveWrong = true
	}
	if !haveWrong {
		// Predicted taken with no BTB target: fetch stalls, no noise.
		f.refetch = true
		return transfer
	}

	depth := 1 + f.rng.Intn(f.cfg.MaxWrongPathBlocks)
	wb := isa.BlockOf(wrongStart)
	for i := 0; i < depth; i++ {
		emit(Access{Block: wb.Add(i), TL: p.TL, WrongPath: true, Transfer: i == 0})
		f.stats.WrongPathFetches++
	}
	f.refetch = true // squash forces a refetch of the correct path
	return transfer
}

// Stream replays an entire retire-order stream and returns the access
// stream (convenience for experiments and tests).
func Stream(cfg Config, s trace.Stream) []Access {
	fe := New(cfg)
	out := make([]Access, 0, len(s)/2)
	for _, r := range s {
		fe.Feed(r, func(a Access) { out = append(out, a) })
	}
	return out
}
