package runner

import (
	"context"
	"fmt"

	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ShardedOptions configures a sharded replay of one recorded trace
// store: the store's measured interval is split into Shards contiguous
// windows (sim.SplitReplay), each replayed as its own job on the
// backend, and the per-window results stitched back into one Result
// (sim.MergeShardResults).
type ShardedOptions struct {
	// Dir is the trace store directory.
	Dir string
	// Workload is the simulated profile; its front-end seed shapes every
	// shard identically, exactly as in a sequential replay.
	Workload workload.Profile
	// Config is the whole-run configuration (warmup + measured interval
	// over the store). Shard jobs derive their own splits from it.
	Config sim.Config
	// Shards is the number of parallel windows (>= 1).
	Shards int
	// Exact selects full-prefix replay: every shard replays the trace
	// from record 0 with the sequential run's own warmup boundary and a
	// measure offset up to its span, so the merged result — counters and
	// timing both — matches sequential replay bit for bit, at the cost
	// of re-replaying prefixes (the last shard replays the whole trace,
	// so exact mode is about parity, not speedup). When false, each
	// shard warms with a fixed Config.WarmupInstrs-record prefix, work
	// parallelizes fully, and merged metrics land within window
	// tolerances.
	Exact bool
	// Engine is the declarative spec each shard resolves into its own
	// private engine instance.
	Engine prefetch.Spec
	// Backend executes the shard jobs; nil runs a private LocalBackend
	// with one worker per shard.
	Backend Backend
	// OnProgress, when non-nil, receives serialized per-shard completion
	// callbacks.
	OnProgress func(Progress)
}

// ShardedResult is the outcome of a sharded replay.
type ShardedResult struct {
	// Merged is the stitched whole-run result (see sim.MergeShardResults
	// for what merges exactly vs within tolerance).
	Merged sim.Result
	// Shards holds the per-window results in shard order.
	Shards []sim.Result
	// Plans records each shard's window and warmup/measure split.
	Plans []sim.ShardPlan
}

// ShardedReplay replays one trace store across parallel workers and
// stitches the result. The store must hold at least warmup+measure
// records; the job-level source validation enforces it per shard, and
// the index is consulted up front so an undersized store fails before
// any worker starts.
func ShardedReplay(ctx context.Context, opt ShardedOptions) (ShardedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Workload.Name == "" {
		return ShardedResult{}, fmt.Errorf("runner: sharded replay names no workload profile (the profile supplies the front-end seed)")
	}
	ix, err := trace.ReadIndex(opt.Dir)
	if err != nil {
		return ShardedResult{}, err
	}
	if need, have := opt.Config.WarmupInstrs+opt.Config.MeasureInstrs, ix.Records(); have < need {
		return ShardedResult{}, fmt.Errorf("runner: store %s holds %d records, sharded replay needs %d (warmup+measure)",
			opt.Dir, have, need)
	}
	plans, err := sim.SplitReplay(opt.Config, opt.Shards, opt.Exact)
	if err != nil {
		return ShardedResult{}, err
	}

	jobs := make([]Job, len(plans))
	for k, p := range plans {
		jobs[k] = Job{
			Label:    fmt.Sprintf("shard %d/%d %s", k+1, len(plans), p.Window),
			Workload: opt.Workload,
			Config:   p.Config(opt.Config),
			Engine:   opt.Engine,
			Source:   sim.SliceSource(opt.Dir, p.Window),
		}
	}

	backend := opt.Backend
	if backend == nil {
		private := NewLocalBackend(len(jobs))
		defer private.Close()
		backend = private
	}
	results, err := RunOn(ctx, backend, jobs, opt.OnProgress)
	if err != nil {
		return ShardedResult{}, err
	}
	perShard := make([]sim.Result, len(results))
	for i, r := range results {
		perShard[i] = r.Sim
	}
	merged, err := sim.MergeShardResults(perShard)
	if err != nil {
		return ShardedResult{}, err
	}
	return ShardedResult{Merged: merged, Shards: perShard, Plans: plans}, nil
}
