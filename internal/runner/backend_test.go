package runner

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestLocalBackendProtocol exercises the raw Submit/Results/Close
// protocol without the RunOn driver: every submitted job yields exactly
// one result echoing its index, and Close drains in-flight work before
// closing the stream.
func TestLocalBackendProtocol(t *testing.T) {
	b := NewLocalBackend(2)
	jobs := testJobs(t, 4)
	collected := make(chan map[int]Result, 1)
	go func() {
		out := map[int]Result{}
		for r := range b.Results() {
			out[r.Index] = r
		}
		collected <- out
	}()
	for i, j := range jobs {
		// Indices are caller-chosen: tag with a stride to prove the
		// backend echoes rather than invents them.
		if err := b.Submit(context.Background(), i*10, j); err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	out := <-collected
	if len(out) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(out), len(jobs))
	}
	for i, j := range jobs {
		r, ok := out[i*10]
		if !ok {
			t.Fatalf("no result for index %d", i*10)
		}
		if r.Err != nil {
			t.Errorf("job %d: %v", i, r.Err)
		}
		if r.Label != j.Label {
			t.Errorf("job %d label = %q, want %q", i, r.Label, j.Label)
		}
	}
}

// countingBackend wraps a Backend and counts Submits — the stand-in for
// an alternative Backend implementation, proving the interface (not the
// concrete pool) is what drivers program against.
type countingBackend struct {
	Backend
	submits atomic.Int32
}

func (c *countingBackend) Submit(ctx context.Context, idx int, j Job) error {
	c.submits.Add(1)
	return c.Backend.Submit(ctx, idx, j)
}

// TestRunOnCustomBackend drives RunOn through a wrapped backend and
// asserts results are byte-identical to a plain Pool run of the same
// jobs — backend selection cannot perturb simulation outcomes.
func TestRunOnCustomBackend(t *testing.T) {
	jobs := testJobs(t, 5)
	inner := NewLocalBackend(3)
	cb := &countingBackend{Backend: inner}
	viaBackend, err := RunOn(context.Background(), cb, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	inner.Close()
	if got := cb.submits.Load(); got != int32(len(jobs)) {
		t.Errorf("custom backend saw %d submits, want %d", got, len(jobs))
	}
	viaPool, err := Pool{Workers: 2}.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if viaBackend[i].Sim != viaPool[i].Sim {
			t.Errorf("job %d: backend result differs from pool result", i)
		}
		if viaBackend[i].Index != i {
			t.Errorf("job %d: index %d", i, viaBackend[i].Index)
		}
	}
}

// TestBackendReuseAcrossRuns asserts one backend can serve several
// sequential RunOn batches (the experiments.Env sharing pattern).
func TestBackendReuseAcrossRuns(t *testing.T) {
	b := NewLocalBackend(2)
	defer b.Close()
	first, err := RunOn(context.Background(), b, testJobs(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunOn(context.Background(), b, testJobs(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Sim != second[i].Sim {
			t.Errorf("job %d: rerun on a reused backend diverged", i)
		}
	}
}

// TestJobSourceCompat is the runner half of the source contract: a
// serializable StoreSource and an opaque OpenerSource over the same
// recorded store must produce identical sim.Result JSON, and both must
// match the live run.
func TestJobSourceCompat(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := sim.Config{
		System:        config.Default(),
		WarmupInstrs:  120_000,
		MeasureInstrs: 80_000,
	}
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	it := workload.NewIterator(prog, cfg.WarmupInstrs, cfg.MeasureInstrs)
	if _, err := trace.BuildStore(dir, wl.Name, 1<<14, it, cfg.WarmupInstrs, cfg.MeasureInstrs); err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
	it.Close()

	jobs := []Job{
		{Label: "live", Workload: wl, Config: cfg, Engine: prefetch.Spec{Name: "tifs"}},
		{Label: "store-source", Workload: wl, Config: cfg, Engine: prefetch.Spec{Name: "tifs"},
			Source: sim.StoreSource(dir)},
		{Label: "opener-source", Workload: wl, Config: cfg, Engine: prefetch.Spec{Name: "tifs"},
			Source: sim.OpenerSource(func() (trace.Iterator, error) { return trace.OpenStore(dir) })},
	}
	results, err := Run(context.Background(), jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	live, err := json.Marshal(results[0].Sim)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		got, err := json.Marshal(results[i].Sim)
		if err != nil {
			t.Fatal(err)
		}
		if string(live) != string(got) {
			t.Errorf("%s differs from live:\nlive: %s\ngot:  %s", results[i].Label, live, got)
		}
	}
}

// TestRunOnCancel asserts RunOn's cancellation contract holds for a
// directly driven backend: prompt return, ctx.Err() on every job that
// never ran.
func TestRunOnCancel(t *testing.T) {
	b := NewLocalBackend(1)
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	results, err := RunOn(ctx, b, testJobs(t, 6), func(p Progress) {
		if p.Done == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	last := results[len(results)-1]
	if !errors.Is(last.Err, context.Canceled) {
		t.Errorf("tail job Err = %v, want context.Canceled", last.Err)
	}
}

// refusingBackend accepts a fixed number of submissions, then fails —
// the shape of a remote backend losing its connection mid-batch.
type refusingBackend struct {
	*LocalBackend
	accept int
	seen   atomic.Int32
}

var errRefused = errors.New("backend connection lost")

func (b *refusingBackend) Submit(ctx context.Context, idx int, j Job) error {
	if int(b.seen.Add(1)) > b.accept {
		return errRefused
	}
	return b.LocalBackend.Submit(ctx, idx, j)
}

// TestRunOnSubmitRefusal asserts a backend refusing work mid-batch (with
// the context still live) surfaces as RunOn's error, with every
// never-accepted job carrying the refusal — unrun jobs must never pose
// as completed zero-valued simulations.
func TestRunOnSubmitRefusal(t *testing.T) {
	inner := NewLocalBackend(2)
	defer inner.Close()
	b := &refusingBackend{LocalBackend: inner, accept: 2}
	jobs := testJobs(t, 5)
	results, err := RunOn(context.Background(), b, jobs, nil)
	if !errors.Is(err, errRefused) {
		t.Fatalf("err = %v, want the backend refusal", err)
	}
	var ran int
	for i, r := range results {
		if r.Err == nil && r.Sim.Instructions > 0 {
			ran++
		} else if !errors.Is(r.Err, errRefused) {
			t.Errorf("job %d: Err = %v, want the refusal (never-run jobs must not look successful)", i, r.Err)
		}
	}
	if ran != 2 {
		t.Errorf("%d jobs ran, want the 2 accepted before the refusal", ran)
	}
}

// TestSubmitAfterCloseSentinel asserts the backend-contract sentinel: a
// Submit arriving after Close reports ErrBackendClosed — never a panic
// on the closed job channel, and never an error a caller could mistake
// for a job rejection.
func TestSubmitAfterCloseSentinel(t *testing.T) {
	b := NewLocalBackend(1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Drain to completion: Close with no jobs in flight must still close
	// the result stream.
	for range b.Results() {
	}
	err := b.Submit(context.Background(), 0, testJobs(t, 1)[0])
	if !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("Submit after Close = %v, want ErrBackendClosed", err)
	}
	// The sentinel must win even with a canceled context: the backend is
	// gone either way, and "closed" is the actionable diagnosis.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Submit(ctx, 1, testJobs(t, 1)[0]); !errors.Is(err, ErrBackendClosed) {
		t.Fatalf("Submit after Close with canceled ctx = %v, want ErrBackendClosed", err)
	}
}

// scriptedBackend drives RunOn through a scripted failure: it accepts a
// fixed number of submissions (running nothing), then refuses with
// submitErr; its result stream delivers the scripted results and closes
// when told to. It reproduces the remote-backend shape "coordinator
// rejected a job, then the connection died".
type scriptedBackend struct {
	accept    int
	submitErr error
	seen      int
	refused   chan struct{} // closed once Submit has failed
	results   chan Result
}

func newScriptedBackend(accept int, submitErr error) *scriptedBackend {
	return &scriptedBackend{
		accept:    accept,
		submitErr: submitErr,
		refused:   make(chan struct{}),
		results:   make(chan Result, 16),
	}
}

func (b *scriptedBackend) Submit(ctx context.Context, idx int, j Job) error {
	b.seen++
	if b.seen > b.accept && b.submitErr != nil {
		close(b.refused)
		return b.submitErr
	}
	return nil
}

func (b *scriptedBackend) Results() <-chan Result { return b.results }
func (b *scriptedBackend) Close() error           { return nil }

// TestRunOnStreamClosedJoinsSubmitError locks the error-path ordering
// fix: when Submit fails first and the result stream then closes
// mid-run, RunOn's error must carry BOTH the closure and the submit
// refusal (the actual cause), and every job without a result must carry
// a non-nil error.
func TestRunOnStreamClosedJoinsSubmitError(t *testing.T) {
	errSubmit := errors.New("coordinator rejected the job")
	cases := []struct {
		name       string
		accept     int   // submissions accepted before refusal
		submitErr  error // nil = submission never fails
		deliver    []int // result indices delivered before the close
		wantSubmit bool  // errors.Is(err, errSubmit)
	}{
		{name: "submit-fails-then-stream-closes", accept: 2, submitErr: errSubmit, deliver: []int{0}, wantSubmit: true},
		{name: "submit-fails-no-results-then-close", accept: 1, submitErr: errSubmit, deliver: nil, wantSubmit: true},
		{name: "stream-closes-without-submit-error", accept: 5, submitErr: nil, deliver: []int{0, 1}, wantSubmit: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newScriptedBackend(tc.accept, tc.submitErr)
			jobs := testJobs(t, 5)
			go func() {
				if tc.submitErr != nil {
					// Sequence the scripted ordering: the refusal lands
					// first, then results flow, then the stream dies.
					<-b.refused
				}
				for _, idx := range tc.deliver {
					b.results <- Result{Index: idx, Label: jobs[idx].Label}
				}
				close(b.results)
			}()
			results, err := RunOn(context.Background(), b, jobs, nil)
			if err == nil {
				t.Fatal("RunOn succeeded; want a stream-closed error")
			}
			if !strings.Contains(err.Error(), "closed its result stream mid-run") {
				t.Errorf("err = %v, want the stream-closure diagnosis", err)
			}
			if got := errors.Is(err, errSubmit); got != tc.wantSubmit {
				t.Errorf("errors.Is(err, submitErr) = %v, want %v (err = %v)", got, tc.wantSubmit, err)
			}
			delivered := make(map[int]bool, len(tc.deliver))
			for _, idx := range tc.deliver {
				delivered[idx] = true
			}
			for i, r := range results {
				if delivered[i] {
					continue
				}
				if r.Err == nil {
					t.Errorf("job %d has no result yet Err == nil (poses as a completed zero-valued simulation)", i)
				}
			}
		})
	}
}
