package runner

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// recordShardStore records warmup+measure records of wl into a store at
// dir with the given chunk size.
func recordShardStore(t testing.TB, dir string, wl workload.Profile, cfg sim.Config, chunkRecords uint64) {
	t.Helper()
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	it := workload.NewIterator(prog, cfg.WarmupInstrs, cfg.MeasureInstrs)
	defer it.Close()
	n, err := trace.BuildStore(dir, wl.Name, chunkRecords, it, cfg.WarmupInstrs, cfg.MeasureInstrs)
	if err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
	if n != cfg.WarmupInstrs+cfg.MeasureInstrs {
		t.Fatalf("recorded %d records, want %d", n, cfg.WarmupInstrs+cfg.MeasureInstrs)
	}
}

// withinPct reports whether got is within pct percent of want.
func withinPct(got, want uint64, pct float64) bool {
	if want == 0 {
		return got == 0
	}
	diff := math.Abs(float64(got) - float64(want))
	return diff/float64(want)*100 <= pct
}

// TestShardedReplayExactParity is the sharded-replay acceptance bar: an
// exact-mode sharded replay of one store on 4+ parallel workers must
// reproduce the sequential replay bit for bit — every counter,
// instruction, access, miss, coverage, L1 field, the whole-feed FE
// stats, AND timing (cycles, stalls, UIPC), since exact shards measure
// clock deltas on the sequential run's own clock (see
// sim.Config.MeasureOffsetInstrs). CI runs this under -race, making it
// the data-race probe for the parallel shard path.
func TestShardedReplayExactParity(t *testing.T) {
	wl := workload.OLTPXL()
	cfg := testConfig() // 100K warmup + 100K measure
	dir := filepath.Join(t.TempDir(), "store")
	recordShardStore(t, dir, wl, cfg, 1<<14)

	seq, err := sim.RunJob(context.Background(), sim.Job{
		Config:   cfg,
		Workload: wl,
		From:     sim.StoreSource(dir),
		Engine:   prefetch.Spec{Name: "pif"},
	})
	if err != nil {
		t.Fatalf("sequential replay: %v", err)
	}

	for _, shards := range []int{4, 7} {
		got, err := ShardedReplay(context.Background(), ShardedOptions{
			Dir:      dir,
			Workload: wl,
			Config:   cfg,
			Shards:   shards,
			Exact:    true,
			Engine:   prefetch.Spec{Name: "pif"},
		})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if len(got.Shards) != shards || len(got.Plans) != shards {
			t.Fatalf("%d shards: got %d results, %d plans", shards, len(got.Shards), len(got.Plans))
		}
		m := got.Merged

		// Lossless counters: exact equality.
		if m.Instructions != seq.Instructions {
			t.Errorf("%d shards: Instructions = %d, want %d", shards, m.Instructions, seq.Instructions)
		}
		if m.CorrectAccesses != seq.CorrectAccesses {
			t.Errorf("%d shards: CorrectAccesses = %d, want %d", shards, m.CorrectAccesses, seq.CorrectAccesses)
		}
		if m.CorrectMisses != seq.CorrectMisses {
			t.Errorf("%d shards: CorrectMisses = %d, want %d", shards, m.CorrectMisses, seq.CorrectMisses)
		}
		if m.CoveredMisses != seq.CoveredMisses {
			t.Errorf("%d shards: CoveredMisses = %d, want %d", shards, m.CoveredMisses, seq.CoveredMisses)
		}
		if m.PrefetchesIssued != seq.PrefetchesIssued {
			t.Errorf("%d shards: PrefetchesIssued = %d, want %d", shards, m.PrefetchesIssued, seq.PrefetchesIssued)
		}
		if m.L1 != seq.L1 {
			t.Errorf("%d shards: L1 = %+v, want %+v", shards, m.L1, seq.L1)
		}
		if m.FE != seq.FE {
			t.Errorf("%d shards: FE = %+v, want %+v", shards, m.FE, seq.FE)
		}
		if m.Workload != seq.Workload || m.Prefetcher != seq.Prefetcher {
			t.Errorf("%d shards: identity = %s/%s, want %s/%s", shards, m.Workload, m.Prefetcher, seq.Workload, seq.Prefetcher)
		}

		// Timing: exact — per-shard clock deltas telescope to the
		// sequential clock (the reset sits at the same warmup boundary
		// in every shard).
		if m.Cycles != seq.Cycles {
			t.Errorf("%d shards: Cycles = %d, want %d", shards, m.Cycles, seq.Cycles)
		}
		if m.StallCycles != seq.StallCycles {
			t.Errorf("%d shards: StallCycles = %d, want %d", shards, m.StallCycles, seq.StallCycles)
		}
		if m.UIPC != seq.UIPC {
			t.Errorf("%d shards: UIPC = %v, want %v", shards, m.UIPC, seq.UIPC)
		}

		// Coverage derives from lossless counters, so it is exact too.
		if m.Coverage() != seq.Coverage() {
			t.Errorf("%d shards: Coverage = %f, want %f", shards, m.Coverage(), seq.Coverage())
		}
	}
}

// TestShardedReplayApproximate exercises fixed-warmup (linear-work) mode:
// counters land near sequential — within the window-position sensitivity
// the sweep-window artifact established — but are not bit-exact.
func TestShardedReplayApproximate(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := testConfig()
	dir := filepath.Join(t.TempDir(), "store")
	recordShardStore(t, dir, wl, cfg, 1<<14)

	seq, err := sim.RunJob(context.Background(), sim.Job{
		Config:   cfg,
		Workload: wl,
		From:     sim.StoreSource(dir),
		Engine:   prefetch.Spec{Name: "nextline"},
	})
	if err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	got, err := ShardedReplay(context.Background(), ShardedOptions{
		Dir:      dir,
		Workload: wl,
		Config:   cfg,
		Shards:   4,
		Engine:   prefetch.Spec{Name: "nextline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := got.Merged
	if m.Instructions != seq.Instructions {
		t.Errorf("Instructions = %d, want %d (the measured span tiles exactly even in approximate mode)",
			m.Instructions, seq.Instructions)
	}
	// Loose tolerances: approximate warmup perturbs cache/predictor state
	// at each window boundary.
	const tolPct = 15
	if !withinPct(m.CorrectAccesses, seq.CorrectAccesses, tolPct) {
		t.Errorf("CorrectAccesses = %d, want %d ±%d%%", m.CorrectAccesses, seq.CorrectAccesses, tolPct)
	}
	if !withinPct(m.Cycles, seq.Cycles, tolPct) {
		t.Errorf("Cycles = %d, want %d ±%d%%", m.Cycles, seq.Cycles, tolPct)
	}
}

// TestSplitReplayPlans pins the split geometry: contiguous tiling of the
// measured interval, remainder to the earliest shards, full-prefix vs
// fixed-prefix warmup windows.
func TestSplitReplayPlans(t *testing.T) {
	cfg := sim.Config{WarmupInstrs: 1000, MeasureInstrs: 10_003}
	exact, err := sim.SplitReplay(cfg, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := sim.SplitReplay(cfg, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	var start, total uint64 = cfg.WarmupInstrs, 0
	for k := range exact {
		e, a := exact[k], approx[k]
		if e.MeasureInstrs != a.MeasureInstrs {
			t.Fatalf("shard %d: measure differs between modes: %d vs %d", k, e.MeasureInstrs, a.MeasureInstrs)
		}
		total += e.MeasureInstrs
		if e.Window.Off != 0 || e.WarmupInstrs != cfg.WarmupInstrs ||
			e.MeasureOffsetInstrs != start-cfg.WarmupInstrs || e.Window.Len != start+e.MeasureInstrs {
			t.Errorf("shard %d exact: window %s warmup %d offset %d (span start %d)",
				k, e.Window, e.WarmupInstrs, e.MeasureOffsetInstrs, start)
		}
		if a.MeasureOffsetInstrs != 0 {
			t.Errorf("shard %d approx: offset %d, want 0", k, a.MeasureOffsetInstrs)
		}
		if a.WarmupInstrs != cfg.WarmupInstrs || a.Window.Off != start-cfg.WarmupInstrs ||
			a.Window.Len != cfg.WarmupInstrs+a.MeasureInstrs {
			t.Errorf("shard %d approx: window %s warmup %d (span start %d)", k, a.Window, a.WarmupInstrs, start)
		}
		start += e.MeasureInstrs
	}
	if total != cfg.MeasureInstrs {
		t.Errorf("shard spans sum to %d, want %d", total, cfg.MeasureInstrs)
	}
	// Remainder goes to the earliest shards: 10_003 over 4 = {2501, 2501, 2501, 2500}.
	want := []uint64{2501, 2501, 2501, 2500}
	for k, w := range want {
		if exact[k].MeasureInstrs != w {
			t.Errorf("shard %d measure = %d, want %d", k, exact[k].MeasureInstrs, w)
		}
	}

	// Degenerate requests fail loudly.
	if _, err := sim.SplitReplay(cfg, 0, true); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := sim.SplitReplay(sim.Config{MeasureInstrs: 2}, 3, true); err == nil {
		t.Error("more shards than measured records accepted")
	}
	if _, err := sim.SplitReplay(sim.Config{}, 1, true); err == nil {
		t.Error("zero measure accepted")
	}
}
