package runner

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPoolReplayFromStore runs the same job live and from a sharded trace
// store through the pool's Source path and asserts identical results —
// the end-to-end wiring of the streaming replay through the execution
// engine, with per-job private sources opened and closed by the pool.
func TestPoolReplayFromStore(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := sim.Config{
		System:        config.Default(),
		WarmupInstrs:  120_000,
		MeasureInstrs: 80_000,
	}
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	it := workload.NewIterator(prog, cfg.WarmupInstrs, cfg.MeasureInstrs)
	if _, err := trace.BuildStore(dir, wl.Name, 1<<14, it, cfg.WarmupInstrs, cfg.MeasureInstrs); err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
	it.Close()

	jobs := []Job{
		{Label: "live", Workload: wl, Config: cfg, Engine: prefetch.Spec{Name: "tifs"}},
		{Label: "replay", Workload: wl, Config: cfg, Engine: prefetch.Spec{Name: "tifs"},
			Source: sim.StoreSource(dir)},
		{Label: "replay2", Workload: wl, Config: cfg, Engine: prefetch.Spec{Name: "tifs"},
			Source: sim.StoreSource(dir)},
	}
	results, err := Pool{Workers: 3}.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	live, err := json.Marshal(results[0].Sim)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		replayed, err := json.Marshal(results[i].Sim)
		if err != nil {
			t.Fatal(err)
		}
		if string(live) != string(replayed) {
			t.Errorf("%s differs from live:\nlive:   %s\nreplay: %s", results[i].Label, live, replayed)
		}
	}
}

// TestPoolSourceOpenFailure asserts a failing source factory surfaces as
// the job's error instead of crashing the pool.
func TestPoolSourceOpenFailure(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := sim.Config{System: config.Default(), MeasureInstrs: 1000}
	jobs := []Job{{
		Label: "bad-source", Workload: wl, Config: cfg, Engine: prefetch.Spec{Name: "none"},
		Source: sim.OpenerSource(func() (trace.Iterator, error) { return trace.OpenStore("/nonexistent/store") }),
	}}
	results, err := Pool{}.Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("expected pool error from failing source factory")
	}
	if results[0].Err == nil {
		t.Error("job result should carry the source-open error")
	}
}
