package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testConfig is a small-but-real simulation scale: big enough that jobs
// overlap under a parallel pool, small enough for fast tests.
func testConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 100_000
	cfg.MeasureInstrs = 100_000
	return cfg
}

func testJobs(t *testing.T, n int) []Job {
	t.Helper()
	suite := workload.StandardSuite()
	jobs := make([]Job, n)
	for i := range jobs {
		wl := suite[i%len(suite)]
		jobs[i] = Job{
			Label:    fmt.Sprintf("job%d/%s", i, wl.Name),
			Workload: wl,
			Config:   testConfig(),
			Engine:   prefetch.Spec{Name: "nextline"},
		}
	}
	return jobs
}

func TestRunSubmissionOrder(t *testing.T) {
	jobs := testJobs(t, 8)
	serial, err := Run(context.Background(), jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("results = %d/%d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs {
		if serial[i].Index != i || parallel[i].Index != i {
			t.Errorf("result %d has index %d/%d", i, serial[i].Index, parallel[i].Index)
		}
		if serial[i].Label != jobs[i].Label || parallel[i].Label != jobs[i].Label {
			t.Errorf("result %d label = %q/%q, want %q", i, serial[i].Label, parallel[i].Label, jobs[i].Label)
		}
		if serial[i].Sim != parallel[i].Sim {
			t.Errorf("job %d: parallel result differs from serial\nserial:   %+v\nparallel: %+v",
				i, serial[i].Sim, parallel[i].Sim)
		}
	}
}

func TestRunFreshEnginePerJob(t *testing.T) {
	// The instrument hook sees each job's resolved engine instance;
	// distinct pointers prove each job gets its own engine (engines are
	// stateful; sharing would corrupt runs).
	var mu sync.Mutex
	seen := map[prefetch.Prefetcher]bool{}
	jobs := testJobs(t, 4)
	for i := range jobs {
		jobs[i].Instrument = func(p prefetch.Prefetcher) {
			mu.Lock()
			seen[p] = true
			mu.Unlock()
		}
	}
	if _, err := Run(context.Background(), jobs, 2); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Errorf("saw %d distinct engine instances, want %d", len(seen), len(jobs))
	}
}

func TestRunRegistryNames(t *testing.T) {
	// The blank import of internal/core must make the PIF variants
	// resolvable alongside the in-package baselines.
	for _, name := range []string{"none", "nextline", "tifs", "pif", "pif-unlimited", "pif-nosep"} {
		if _, err := prefetch.LookupSchema(name); err != nil {
			t.Errorf("LookupSchema(%q): %v", name, err)
		}
	}
}

func TestRunUnknownEngine(t *testing.T) {
	jobs := testJobs(t, 2)
	jobs[1].Engine = prefetch.Spec{Name: "dropout"}
	_, err := Run(context.Background(), jobs, 2)
	if err == nil {
		t.Fatal("unknown engine name accepted")
	}
}

func TestRunNoEngine(t *testing.T) {
	jobs := testJobs(t, 1)
	jobs[0].Engine = prefetch.Spec{}
	if _, err := Run(context.Background(), jobs, 1); err == nil {
		t.Fatal("job without engine accepted")
	}
}

func TestRunJobError(t *testing.T) {
	jobs := testJobs(t, 3)
	jobs[1].Config.MeasureInstrs = 0 // invalid
	results, err := Run(context.Background(), jobs, 2)
	if err == nil {
		t.Fatal("invalid job accepted")
	}
	if results[1].Err == nil {
		t.Error("failing job has nil Err")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs report errors: %v, %v", results[0].Err, results[2].Err)
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := Run(ctx, testJobs(t, 4), 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("result %d Err = %v, want context.Canceled (never-run jobs must not look successful)", i, r.Err)
		}
	}
}

func TestRunCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pool := Pool{
		Workers: 1,
		OnProgress: func(p Progress) {
			if p.Done == 1 {
				cancel() // cancel after the first job completes
			}
		},
	}
	results, err := pool.Run(ctx, testJobs(t, 6))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results[0].Err != nil {
		t.Errorf("first job err = %v", results[0].Err)
	}
	// At least the tail jobs must not have produced results.
	last := results[len(results)-1]
	if last.Err == nil && last.Sim.Instructions > 0 {
		t.Error("canceled run completed every job")
	}
}

func TestRunProgressSerialized(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	var doneMax int
	pool := Pool{
		Workers: 4,
		OnProgress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			if seen[p.Index] {
				t.Errorf("job %d reported twice", p.Index)
			}
			seen[p.Index] = true
			if p.Done <= doneMax {
				t.Errorf("Done %d not increasing (prev %d)", p.Done, doneMax)
			}
			doneMax = p.Done
			if p.Total != 6 {
				t.Errorf("Total = %d, want 6", p.Total)
			}
		},
	}
	if _, err := pool.Run(context.Background(), testJobs(t, 6)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 || doneMax != 6 {
		t.Errorf("progress reported %d jobs, Done reached %d; want 6/6", len(seen), doneMax)
	}
}

func TestRunEmpty(t *testing.T) {
	results, err := Run(context.Background(), nil, 4)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run = %v, %v", results, err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("positive override ignored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("default workers < 1")
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 32)
	err := ForEach(context.Background(), 4, len(out), func(i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 4, 8, func(i int) error {
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestForEachCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 4, 8, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
