// Package runner is the job-based parallel execution engine of the
// evaluation harness. A Job names one simulation (workload profile,
// sim.Config, prefetcher factory); a Pool fans jobs out over a bounded
// worker pool, supports context cancellation and progress callbacks, and
// returns results in submission order — so tables rendered from a
// parallel run are byte-identical to a serial run of the same jobs.
//
// Every experiment driver in internal/experiments enumerates Jobs (or
// uses ForEach for trace-based per-workload analyses) instead of looping
// serially — since PR 4 they do so by declaring design-space sweep specs
// (internal/sweep) whose expanded grids feed this pool. See DESIGN.md §5
// for the engine's design and §8 for the sweep layer above it.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	// The PIF variants register with the prefetch engine registry from
	// internal/core's init; the execution engine must be able to resolve
	// every engine name, so it links the registration in.
	_ "repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Job names one simulation to execute.
type Job struct {
	// Label identifies the job in progress output and result tables
	// (e.g. "fig10/OLTP DB2/PIF").
	Label string
	// Workload is the simulated workload profile.
	Workload workload.Profile
	// Config parameterizes the simulation.
	Config sim.Config
	// NewPrefetcher constructs the job's private engine. Engines are
	// stateful, so jobs carry factories, never instances. When nil,
	// PrefetcherName is resolved through the prefetch registry.
	NewPrefetcher prefetch.Factory
	// PrefetcherName is a prefetch registry name ("pif", "tifs",
	// "nextline", "none", ...), used when NewPrefetcher is nil.
	PrefetcherName string
	// Program optionally shares a pre-built (immutable) program image
	// across jobs of the same workload.
	Program *workload.Program
	// NewSource, when non-nil, opens a private retire-order record source
	// for the job (e.g. a trace.StoreReader over a sharded on-disk store)
	// and the simulation replays it instead of executing the program.
	// Sources are stateful like prefetch engines, so jobs carry a factory;
	// the pool opens one source per job and closes it (when it implements
	// io.Closer) after the run.
	NewSource func() (trace.Iterator, error)
	// Observer, when non-nil, receives measured-interval callbacks. It is
	// invoked from the job's worker goroutine and must be private to the
	// job.
	Observer sim.Observer
}

// factory resolves the job's engine factory.
func (j Job) factory() (prefetch.Factory, error) {
	if j.NewPrefetcher != nil {
		return j.NewPrefetcher, nil
	}
	if j.PrefetcherName != "" {
		return prefetch.Lookup(j.PrefetcherName)
	}
	return nil, fmt.Errorf("runner: job %q names no prefetcher", j.Label)
}

// Result is the outcome of one job.
type Result struct {
	// Index is the job's submission index; results are returned in
	// submission order regardless of completion order.
	Index int
	// Label echoes the job's label.
	Label string
	// Sim is the simulation outcome (zero when Err is non-nil).
	Sim sim.Result
	// Err is the job's failure, if any.
	Err error
	// Elapsed is the job's wall-clock duration.
	Elapsed time.Duration
}

// Progress reports one completed job. Callbacks are serialized: the pool
// never invokes OnProgress concurrently.
type Progress struct {
	// Done is the number of completed jobs including this one; Total is
	// the submitted job count.
	Done, Total int
	// Index and Label identify the completed job.
	Index int
	Label string
	// Elapsed is the completed job's wall-clock duration.
	Elapsed time.Duration
	// Err is the job's failure, if any.
	Err error
}

// Pool executes jobs over a bounded set of workers.
type Pool struct {
	// Workers bounds concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// OnProgress, when non-nil, is called (serially) after each job
	// completes.
	OnProgress func(Progress)
}

// Workers resolves a worker-count override: n if positive, GOMAXPROCS
// otherwise.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every job and returns the results in submission order.
// The returned error is the context's error if the run was canceled,
// otherwise the first (by submission order) job failure; the result
// slice is always fully populated for jobs that ran. Jobs already
// started when the context is canceled are aborted by sim.RunJob's
// periodic cancellation check.
func (p Pool) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	for i := range results {
		results[i] = Result{Index: i, Label: jobs[i].Label}
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	workers := Workers(p.Workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := range jobs {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		wg     sync.WaitGroup
		progMu sync.Mutex
		done   int
	)
	ran := make([]bool, len(jobs)) // per-index, written by exactly one worker
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				// The producer stops dispatching on cancellation, but an
				// index may already be in flight when the context fires;
				// re-checking here keeps long grids prompt — a mid-grid
				// cancel never starts another simulation, and the skipped
				// job reports ctx.Err() instead of a zero result.
				if ctx.Err() != nil {
					continue
				}
				ran[i] = true
				results[i] = p.runOne(ctx, i, jobs[i])
				if p.OnProgress != nil {
					progMu.Lock()
					done++
					p.OnProgress(Progress{
						Done:    done,
						Total:   len(jobs),
						Index:   i,
						Label:   results[i].Label,
						Elapsed: results[i].Elapsed,
						Err:     results[i].Err,
					})
					progMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Jobs never dispatched carry the cancellation error too, so a
		// caller salvaging per-job results cannot mistake them for
		// completed zero-valued simulations.
		for i := range results {
			if !ran[i] {
				results[i].Err = err
			}
		}
		return results, err
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("runner: job %d (%s): %w", i, results[i].Label, results[i].Err)
		}
	}
	return results, nil
}

// runOne executes a single job.
func (p Pool) runOne(ctx context.Context, i int, j Job) Result {
	res := Result{Index: i, Label: j.Label}
	start := time.Now()
	factory, err := j.factory()
	if err != nil {
		res.Err = err
		res.Elapsed = time.Since(start)
		return res
	}
	var source trace.Iterator
	if j.NewSource != nil {
		source, err = j.NewSource()
		if err != nil {
			res.Err = err
			res.Elapsed = time.Since(start)
			return res
		}
	}
	res.Sim, res.Err = sim.RunJob(ctx, sim.Job{
		Config:        j.Config,
		Workload:      j.Workload,
		Program:       j.Program,
		Source:        source,
		NewPrefetcher: factory,
		Observer:      j.Observer,
	})
	if c, ok := source.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && res.Err == nil {
			res.Err = cerr
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// Run executes jobs with a default pool of the given width (<= 0 means
// GOMAXPROCS).
func Run(ctx context.Context, jobs []Job, workers int) ([]Result, error) {
	return Pool{Workers: workers}.Run(ctx, jobs)
}

// ForEach runs fn(i) for every i in [0, n) across a bounded worker pool.
// It is the engine's primitive for trace-based analyses that are not
// simulations (one call per workload, each writing its own result slot,
// so output assembly stays deterministic). It returns the context's
// error if canceled, otherwise the first (by index) fn failure.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}

	errs := make([]error, n)
	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := 0; i < n; i++ {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				// Same mid-grid promptness guarantee as Pool.Run: a task
				// dispatched in the cancellation race window is skipped,
				// never started.
				if ctx.Err() != nil {
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("runner: task %d: %w", i, err)
		}
	}
	return nil
}
