// Package runner is the job-execution layer of the evaluation harness.
// A Job names one simulation (workload profile, sim.Config, prefetcher
// factory, optional record source); a Backend executes submitted jobs —
// LocalBackend over an in-process bounded worker pool today, a
// multi-node service tomorrow — and RunOn drives any backend with the
// harness's contract: context cancellation, serialized progress
// callbacks, and results in submission order, so tables rendered from a
// parallel run are byte-identical to a serial run of the same jobs.
//
// Every experiment driver in internal/experiments enumerates Jobs (or
// uses ForEach for trace-based per-workload analyses) instead of looping
// serially — since PR 4 they do so by declaring design-space sweep specs
// (internal/sweep) whose expanded grids feed the selected backend. See
// DESIGN.md §5 for the execution engine, §8 for the sweep layer, and §9
// for the Source/Backend pipeline API.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	// The PIF variants register with the prefetch engine registry from
	// internal/core's init; the execution engine must be able to resolve
	// every engine name, so it links the registration in.
	_ "repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Job names one simulation to execute.
type Job struct {
	// Label identifies the job in progress output and result tables
	// (e.g. "fig10/OLTP DB2/PIF").
	Label string
	// Workload is the simulated workload profile.
	Workload workload.Profile
	// Config parameterizes the simulation.
	Config sim.Config
	// Engine is the declarative spec of the job's prefetch engine: a
	// registry name plus parameters ("pif" at its defaults, or a tuned
	// variant). Engines are stateful, so jobs carry specs, never
	// instances; the spec is resolved on whichever backend runs the job,
	// which is how tuned engines travel over the remote wire.
	Engine prefetch.Spec
	// Instrument, when non-nil, receives the job's freshly constructed
	// engine before the run (e.g. to attach a stream-end hook). It is
	// process-local: remote backends refuse jobs carrying it.
	Instrument func(prefetch.Prefetcher)
	// Program optionally shares a pre-built (immutable) program image
	// across jobs of the same workload.
	Program *workload.Program
	// Source, when non-nil, supplies the job's record stream (a
	// sim.StoreSource replaying a sharded store, a sim.SliceSource
	// replaying one window of it, ...) instead of live execution.
	// Sources are factories, not open iterators, so every job — and
	// every retry on another backend node — opens its own.
	Source sim.Source
	// Observer, when non-nil, receives measured-interval callbacks. It is
	// invoked from the job's worker goroutine and must be private to the
	// job.
	Observer sim.Observer
}

// Result is the outcome of one job.
type Result struct {
	// Index is the job's submission index; results are returned in
	// submission order regardless of completion order.
	Index int
	// Label echoes the job's label.
	Label string
	// Sim is the simulation outcome (zero when Err is non-nil).
	Sim sim.Result
	// Err is the job's failure, if any.
	Err error
	// Elapsed is the job's wall-clock duration.
	Elapsed time.Duration
}

// Progress reports one finished job. Callbacks are serialized: RunOn
// never invokes OnProgress concurrently.
type Progress struct {
	// Done is the number of finished jobs including this one; Total is
	// the submitted job count.
	Done, Total int
	// Index and Label identify the finished job.
	Index int
	Label string
	// Elapsed is the finished job's wall-clock duration.
	Elapsed time.Duration
	// Err is the job's failure, if any.
	Err error
}

// Workers resolves a worker-count override: n if positive, GOMAXPROCS
// otherwise.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Backend executes submitted simulation jobs. It is the *where to run*
// axis of the pipeline API, orthogonal to what is simulated (the job's
// Source) and with which engine (the job's Engine spec):
// LocalBackend fans jobs out over an in-process worker pool, and a
// multi-node backend shipping runner.Job/Result as its wire unit drops
// in without touching any driver.
//
// The protocol: Submit enqueues jobs tagged with caller-chosen indices,
// Results delivers one Result per successful Submit in completion order
// (each echoing its index), and Close waits for in-flight jobs and then
// closes the Results channel. A backend serves one run at a time —
// RunOn is the canonical driver and callers sharing a backend across
// runs must serialize them (experiments.Env does).
type Backend interface {
	// Submit enqueues job j tagged with index idx; the job's Result
	// echoes idx. Submit may block while the backend is saturated; it
	// returns ctx.Err() if the context is canceled first. Jobs accepted
	// while ctx is already canceled may be skipped, delivering a Result
	// carrying ctx.Err().
	Submit(ctx context.Context, idx int, j Job) error
	// Results is the completion stream: exactly one Result per
	// successful Submit, in completion order. The channel is closed by
	// Close after in-flight jobs drain.
	Results() <-chan Result
	// Close releases the backend's resources. It must be called after
	// all Submits have returned; it is idempotent.
	Close() error
}

// ErrBackendClosed is returned by Submit on a backend that has been
// Closed. It is a distinct sentinel — not a job failure and not a
// context cancellation — so a caller driving several backends (a remote
// coordinator dispatching to workers, a retrying client) can tell "this
// backend is shutting down, resubmit elsewhere" apart from "this job was
// rejected". Every Backend implementation must return it (wrapped or
// bare) from Submit after Close.
var ErrBackendClosed = errors.New("runner: backend closed")

// localJob is one submitted job inside a LocalBackend.
type localJob struct {
	ctx context.Context
	idx int
	job Job
}

// LocalBackend is the in-process Backend: a bounded pool of worker
// goroutines executing jobs on the machine's cores. It is the only
// backend implementation today and the reference for the Backend
// contract.
type LocalBackend struct {
	jobs    chan localJob
	results chan Result
	wg      sync.WaitGroup
	once    sync.Once

	// mu guards closed: Submit holds the read side across its channel
	// send so Close (write side) cannot close the jobs channel while a
	// send is in flight, and a Submit arriving after Close reports
	// ErrBackendClosed instead of panicking on the closed channel.
	mu     sync.RWMutex
	closed bool
}

// NewLocalBackend starts a local backend with the given worker count
// (<= 0 means GOMAXPROCS). The backend must be Closed to release its
// workers.
func NewLocalBackend(workers int) *LocalBackend {
	b := &LocalBackend{
		jobs:    make(chan localJob),
		results: make(chan Result),
	}
	n := Workers(workers)
	b.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer b.wg.Done()
			for lj := range b.jobs {
				// A job dispatched in the cancellation race window is
				// skipped, never started: a mid-grid cancel stays prompt
				// and the skipped job reports ctx.Err(), so a caller
				// salvaging per-job results cannot mistake it for a
				// completed zero-valued simulation.
				if err := lj.ctx.Err(); err != nil {
					b.results <- Result{Index: lj.idx, Label: lj.job.Label, Err: err}
					continue
				}
				b.results <- runJob(lj.ctx, lj.idx, lj.job)
			}
		}()
	}
	return b
}

// Submit implements Backend. Submitting to a closed backend returns
// ErrBackendClosed.
func (b *LocalBackend) Submit(ctx context.Context, idx int, j Job) error {
	if ctx == nil {
		ctx = context.Background()
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrBackendClosed
	}
	select {
	case b.jobs <- localJob{ctx: ctx, idx: idx, job: j}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Results implements Backend.
func (b *LocalBackend) Results() <-chan Result { return b.results }

// Close implements Backend: no further Submits are accepted, in-flight
// jobs drain, then the Results channel closes.
func (b *LocalBackend) Close() error {
	b.once.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		close(b.jobs)
		go func() {
			b.wg.Wait()
			close(b.results)
		}()
	})
	return nil
}

// runJob executes a single job.
func runJob(ctx context.Context, idx int, j Job) Result {
	res := Result{Index: idx, Label: j.Label}
	start := time.Now()
	if j.Engine.Name == "" {
		res.Err = fmt.Errorf("runner: job %q names no engine", j.Label)
		res.Elapsed = time.Since(start)
		return res
	}
	res.Sim, res.Err = sim.RunJob(ctx, sim.Job{
		Config:     j.Config,
		Workload:   j.Workload,
		Program:    j.Program,
		From:       j.Source,
		Engine:     j.Engine,
		Instrument: j.Instrument,
		Observer:   j.Observer,
	})
	res.Elapsed = time.Since(start)
	return res
}

// RunOn drives one batch of jobs through a backend: jobs are submitted
// in order (tagged with their slice index) while completions are
// collected concurrently, progress callbacks fire serially as results
// arrive, and the final slice is in submission order. The returned error
// is the context's error if the run was canceled, otherwise the first
// (by submission order) job failure; the result slice is always fully
// populated — jobs never submitted because of a cancellation carry
// ctx.Err(), never a zero result. RunOn does not Close the backend.
func RunOn(ctx context.Context, b Backend, jobs []Job, onProgress func(Progress)) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	got := make([]bool, len(jobs))
	for i := range results {
		results[i] = Result{Index: i, Label: jobs[i].Label}
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	// Submit from a side goroutine so collection never deadlocks against
	// a saturated backend; report how many jobs were actually accepted
	// and why submission stopped, so a backend refusing work mid-batch
	// surfaces as an error instead of unrun jobs posing as completed
	// zero-valued simulations.
	type submitOutcome struct {
		n   int
		err error
	}
	submitted := make(chan submitOutcome, 1)
	go func() {
		out := submitOutcome{}
		for i := range jobs {
			if ctx.Err() != nil {
				break
			}
			if err := b.Submit(ctx, i, jobs[i]); err != nil {
				out.err = err
				break
			}
			out.n++
		}
		submitted <- out
	}()

	var done, want int
	var submitErr error
	want = -1
	for want < 0 || done < want {
		select {
		case out := <-submitted:
			want, submitErr = out.n, out.err
		case r, ok := <-b.Results():
			if !ok {
				// The backend closed its stream before every accepted job
				// reported. If submission itself failed, that refusal is
				// the root cause and the closure only the symptom — losing
				// submitErr here would hide the explanation (a remote
				// coordinator that rejected a job and then tore down the
				// run would report only the teardown). The submit goroutine
				// sends its outcome the instant Submit returns; grant it a
				// grace interval so an already-failed submission is always
				// folded in, then fall back to what we know.
				if want < 0 {
					select {
					case out := <-submitted:
						want, submitErr = out.n, out.err
					case <-time.After(100 * time.Millisecond):
					}
				}
				streamErr := fmt.Errorf("runner: backend closed its result stream mid-run (%d of %d results)", done, want)
				if want < 0 {
					streamErr = fmt.Errorf("runner: backend closed its result stream mid-run (%d results, submission still in flight)", done)
				}
				err := streamErr
				if submitErr != nil {
					err = errors.Join(streamErr, fmt.Errorf("runner: backend refused job %d: %w", want, submitErr))
				}
				// Jobs without a result carry the failure too: a caller
				// salvaging per-job results must not mistake a never-run
				// job for a completed zero-valued simulation.
				for i := range results {
					if !got[i] && results[i].Err == nil {
						results[i].Err = err
					}
				}
				return results, err
			}
			if r.Index < 0 || r.Index >= len(results) {
				return results, fmt.Errorf("runner: backend returned result for unknown job index %d", r.Index)
			}
			results[r.Index] = r
			got[r.Index] = true
			done++
			if onProgress != nil {
				onProgress(Progress{
					Done:    done,
					Total:   len(jobs),
					Index:   r.Index,
					Label:   r.Label,
					Elapsed: r.Elapsed,
					Err:     r.Err,
				})
			}
		}
	}

	if err := ctx.Err(); err != nil {
		// Jobs never submitted carry the cancellation error too.
		for i := range results {
			if !got[i] {
				results[i].Err = err
			}
		}
		return results, err
	}
	if submitErr != nil {
		// The backend refused work with the context still live: every
		// job it never accepted carries the refusal.
		for i := range results {
			if !got[i] {
				results[i].Err = submitErr
			}
		}
		return results, fmt.Errorf("runner: backend refused job %d (%s): %w", want, jobs[want].Label, submitErr)
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("runner: job %d (%s): %w", i, results[i].Label, results[i].Err)
		}
	}
	return results, nil
}

// Pool executes jobs over a bounded set of workers.
//
// Pool predates the Backend interface and remains as the convenience
// front door for one-shot batches: Run starts a private LocalBackend,
// drives it with RunOn, and tears it down.
type Pool struct {
	// Workers bounds concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// OnProgress, when non-nil, is called (serially) after each job
	// finishes.
	OnProgress func(Progress)
}

// Run executes every job and returns the results in submission order
// (see RunOn for the execution contract).
func (p Pool) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	b := NewLocalBackend(p.Workers)
	defer b.Close()
	return RunOn(ctx, b, jobs, p.OnProgress)
}

// Run executes jobs with a default pool of the given width (<= 0 means
// GOMAXPROCS).
func Run(ctx context.Context, jobs []Job, workers int) ([]Result, error) {
	return Pool{Workers: workers}.Run(ctx, jobs)
}

// ForEach runs fn(i) for every i in [0, n) across a bounded worker pool.
// It is the engine's primitive for trace-based analyses that are not
// simulations (one call per workload, each writing its own result slot,
// so output assembly stays deterministic). It returns the context's
// error if canceled, otherwise the first (by index) fn failure.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}

	errs := make([]error, n)
	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := 0; i < n; i++ {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				// Same mid-grid promptness guarantee as the local
				// backend: a task dispatched in the cancellation race
				// window is skipped, never started.
				if ctx.Err() != nil {
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("runner: task %d: %w", i, err)
		}
	}
	return nil
}
