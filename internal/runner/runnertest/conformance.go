// Package runnertest is the shared backend-conformance suite: every
// runner.Backend implementation — LocalBackend, the remote
// coordinator/worker backend, whatever comes next — must pass
// Conformance, so drivers can switch backends without re-auditing the
// execution contract.
package runnertest

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Jobs builds n small serializable jobs (registry workloads, registry
// prefetcher, live source), the common currency of conformance checks:
// every backend, including remote ones that ship jobs over a wire, can
// run them.
func Jobs(tb testing.TB, n int) []runner.Job {
	tb.Helper()
	suite := workload.StandardSuite()
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 50_000
	cfg.MeasureInstrs = 50_000
	jobs := make([]runner.Job, n)
	for i := range jobs {
		wl := suite[i%len(suite)]
		jobs[i] = runner.Job{
			Label:    fmt.Sprintf("job%d/%s", i, wl.Name),
			Workload: wl,
			Config:   cfg,
			Engine:   prefetch.Spec{Name: "nextline"},
		}
	}
	return jobs
}

// Conformance runs the backend contract against a fresh backend from mk
// per check. mk is called with the subtest's testing.T; backends are
// Closed by the suite.
func Conformance(t *testing.T, mk func(t *testing.T) runner.Backend) {
	t.Run("EchoesIndicesOnce", func(t *testing.T) { testEcho(t, mk(t)) })
	t.Run("ReusableAcrossRuns", func(t *testing.T) { testReuse(t, mk(t)) })
	t.Run("SubmitAfterCloseSentinel", func(t *testing.T) { testClosedSentinel(t, mk(t)) })
}

// testEcho checks the core protocol: one result per Submit, each
// echoing its submission index, none failed, none zero-valued.
func testEcho(t *testing.T, b runner.Backend) {
	defer b.Close()
	jobs := Jobs(t, 4)
	results, err := runner.RunOn(context.Background(), b, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d echoes index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Errorf("job %d (%s) failed: %v", i, r.Label, r.Err)
		}
		if r.Sim.Instructions == 0 {
			t.Errorf("job %d (%s) returned a zero-valued sim result", i, r.Label)
		}
		if r.Label != jobs[i].Label {
			t.Errorf("job %d label = %q, want %q", i, r.Label, jobs[i].Label)
		}
	}
}

// testReuse checks that one backend serves sequential RunOn batches:
// the results stream spans runs and only Close ends it.
func testReuse(t *testing.T, b runner.Backend) {
	defer b.Close()
	for batch := 0; batch < 2; batch++ {
		jobs := Jobs(t, 2)
		results, err := runner.RunOn(context.Background(), b, jobs, nil)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("batch %d job %d: %v", batch, i, r.Err)
			}
		}
	}
}

// testClosedSentinel checks that Submit on a closed backend reports
// runner.ErrBackendClosed — the signal a dispatcher uses to reroute
// jobs rather than fail them.
func testClosedSentinel(t *testing.T, b runner.Backend) {
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for range b.Results() {
	}
	err := b.Submit(context.Background(), 0, Jobs(t, 1)[0])
	if !errors.Is(err, runner.ErrBackendClosed) {
		t.Fatalf("Submit after Close = %v, want runner.ErrBackendClosed", err)
	}
}
