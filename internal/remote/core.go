package remote

import (
	"container/heap"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Core errors, mapped to HTTP statuses by Server and back to sentinels
// by the client Backend.
var (
	// ErrClosed reports an operation on a closed coordinator or a job
	// submitted to a closed run. The client Backend maps it to
	// runner.ErrBackendClosed.
	ErrClosed = errors.New("remote: coordinator closed")
	// ErrNoRun reports an unknown run ID.
	ErrNoRun = errors.New("remote: no such run")
	// ErrNoWorker reports an unknown worker ID (never registered, or a
	// coordinator restart lost it — the worker must re-register).
	ErrNoWorker = errors.New("remote: no such worker")
)

// DefaultLeaseTTL is the heartbeat deadline handed to workers: a leased
// task whose worker does not heartbeat within the TTL is re-queued.
const DefaultLeaseTTL = 15 * time.Second

// DefaultMaxAttempts bounds lease retries per task: after this many
// leases all end in a lost worker, the task completes with a hard error
// result — never a silent zero-valued sim.Result.
const DefaultMaxAttempts = 3

// taskState is the lease state machine: pending -> leased -> done, with
// leased -> pending again on heartbeat expiry while attempts remain.
type taskState int

const (
	taskPending taskState = iota
	taskLeased
	taskDone
)

// task is one submitted job inside the coordinator.
type task struct {
	id       int // coordinator-wide monotonic task ID (the idempotency key)
	runID    string
	index    int // caller's submission index, echoed in the result
	spec     JobSpec
	state    taskState
	att      int // leases handed out so far
	worker   string
	deadline time.Time // heartbeat deadline while leased
}

// run is one client batch: an ordered set of tasks plus the result
// stream in completion order.
type run struct {
	id      string
	closed  bool // no further submissions; done once all tasks complete
	tasks   map[int]*task
	results []WireResult
	fetched int // high-water mark of results served to the client
}

// done reports whether every submitted task has completed and the run
// is closed to new submissions.
func (r *run) done() bool { return r.closed && len(r.results) == len(r.tasks) }

// workerState is one registered worker.
type workerState struct {
	id   string
	name string
}

// Lease is one task handed to a worker.
type Lease struct {
	TaskID int     `json:"task_id"`
	Spec   JobSpec `json:"spec"`
}

// taskHeap is a min-heap of tasks ordered by ID (IDs are monotonic, so
// the heap is FIFO across runs and puts re-queued tasks back at the
// front). It may hold stale entries — tasks completed by a late post
// while queued — so poppers must re-check the task's state.
type taskHeap []*task

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i].id < h[j].id }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Core is the coordinator's pure in-memory state machine: runs, tasks,
// workers, leases. It performs no I/O and reads time only through an
// injected clock, so every failure path — heartbeat expiry, bounded
// retries, duplicate completions — is unit-testable without sockets or
// sleeps. Lease expiry is evaluated lazily at the entry of every public
// method; the HTTP layer's polling keeps the clock observed.
type Core struct {
	mu          sync.Mutex
	now         func() time.Time
	leaseTTL    time.Duration
	maxAttempts int

	runs                          map[string]*run
	workers                       map[string]*workerState
	pending                       taskHeap // tasks awaiting a lease, oldest ID first
	incarnation                   string   // unique per Core; stamped into run IDs
	nextRun, nextWorker, nextTask int
	closed                        bool

	// onResult, when set, observes every accepted result (streaming
	// persistence). Called with the core lock held — keep it fast; do
	// not call back into the Core.
	onResult func(runID string, res WireResult)

	// gen is closed and replaced on every state mutation; Changed hands
	// it to long-pollers.
	gen chan struct{}
}

// CoreOptions parameterizes a coordinator core.
type CoreOptions struct {
	// LeaseTTL is the heartbeat deadline (DefaultLeaseTTL if zero).
	LeaseTTL time.Duration
	// MaxAttempts bounds leases per task (DefaultMaxAttempts if zero).
	MaxAttempts int
	// Now is the clock (time.Now if nil); tests inject a fake.
	Now func() time.Time
	// OnResult observes every accepted result as it lands.
	OnResult func(runID string, res WireResult)
}

// NewCore builds a coordinator core.
func NewCore(opts CoreOptions) *Core {
	c := &Core{
		now:         opts.Now,
		leaseTTL:    opts.LeaseTTL,
		maxAttempts: opts.MaxAttempts,
		runs:        make(map[string]*run),
		workers:     make(map[string]*workerState),
		onResult:    opts.OnResult,
		gen:         make(chan struct{}),
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = DefaultLeaseTTL
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = DefaultMaxAttempts
	}
	c.incarnation = incarnationToken(c.now())
	return c
}

// incarnationToken builds a short token unique to one coordinator
// incarnation: start time (milliseconds, base 36) plus random bits. Run
// IDs embed it, so a restarted coordinator pointed at the same -results
// directory can never overwrite or interleave a previous incarnation's
// run directories.
func incarnationToken(start time.Time) string {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return strconv.FormatInt(start.UnixMilli(), 36) + hex.EncodeToString(b[:])
}

// LeaseTTL returns the configured heartbeat deadline.
func (c *Core) LeaseTTL() time.Duration { return c.leaseTTL }

// bump signals state observers (long-pollers) by closing the current
// generation channel. Callers hold c.mu.
func (c *Core) bump() {
	close(c.gen)
	c.gen = make(chan struct{})
}

// Changed returns a channel closed at the next state mutation. The HTTP
// layer long-polls on it; the channel is replaced after each close, so
// callers re-fetch per wait.
func (c *Core) Changed() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// expire re-queues tasks whose lease deadline has passed: the worker
// missed its heartbeat, so the task goes back to pending for another
// worker — unless its lease budget is spent, in which case it completes
// with a hard error result. Callers hold c.mu.
func (c *Core) expire() {
	now := c.now()
	for _, r := range c.runs {
		for _, t := range r.tasks {
			if t.state != taskLeased || now.Before(t.deadline) {
				continue
			}
			if t.att >= c.maxAttempts {
				c.finish(r, t, WireResult{
					V:     WireVersion,
					Index: t.index,
					Label: t.spec.Label,
					Err: fmt.Sprintf("remote: task %d (%s) lost its worker %d times (lease ttl %s); giving up",
						t.id, t.spec.Label, t.att, c.leaseTTL),
				})
				continue
			}
			t.state = taskPending
			t.worker = ""
			t.deadline = time.Time{}
			heap.Push(&c.pending, t)
		}
	}
}

// finish records a task's completion and streams the result. Callers
// hold c.mu; the task must not already be done.
func (c *Core) finish(r *run, t *task, res WireResult) {
	t.state = taskDone
	r.results = append(r.results, res)
	if c.onResult != nil {
		c.onResult(r.id, res)
	}
	c.bump()
}

// OpenRun starts a new run (one client batch) and returns its ID.
func (c *Core) OpenRun() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", ErrClosed
	}
	c.nextRun++
	id := fmt.Sprintf("run-%s-%d", c.incarnation, c.nextRun)
	c.runs[id] = &run{id: id, tasks: make(map[int]*task)}
	c.bump()
	return id, nil
}

// SubmitJob enqueues one job on a run. index is the caller's submission
// index, echoed in the job's result (runner.Backend contract).
func (c *Core) SubmitJob(runID string, index int, spec JobSpec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire()
	if c.closed {
		return ErrClosed
	}
	r, ok := c.runs[runID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRun, runID)
	}
	if r.closed {
		return fmt.Errorf("%w: run %s", ErrClosed, runID)
	}
	if spec.V != WireVersion {
		return fmt.Errorf("remote: job spec has wire version %d, want %d", spec.V, WireVersion)
	}
	c.nextTask++
	t := &task{id: c.nextTask, runID: runID, index: index, spec: spec}
	r.tasks[t.id] = t
	heap.Push(&c.pending, t)
	c.bump()
	return nil
}

// CloseRun marks a run complete-when-drained: no further submissions
// are accepted, and once every task has a result the run reports done.
// Idempotent.
func (c *Core) CloseRun(runID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire()
	r, ok := c.runs[runID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRun, runID)
	}
	if !r.closed {
		r.closed = true
		c.bump()
	}
	return nil
}

// Results returns the run's results from cursor on (completion order)
// and whether the run is done (closed and fully drained). The caller
// advances its cursor by len(results). A done run is evicted once every
// result has been served, so a long-lived coordinator's memory is
// bounded by its active runs; later task lookups (a very late duplicate
// post) fail with a plain error the worker already tolerates.
func (c *Core) Results(runID string, cursor int) ([]WireResult, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire()
	r, ok := c.runs[runID]
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrNoRun, runID)
	}
	if cursor < 0 || cursor > len(r.results) {
		return nil, false, fmt.Errorf("remote: run %s: cursor %d out of range [0,%d]", runID, cursor, len(r.results))
	}
	out := make([]WireResult, len(r.results)-cursor)
	copy(out, r.results[cursor:])
	if end := cursor + len(out); end > r.fetched {
		r.fetched = end
	}
	done := r.done()
	if done && r.fetched == len(r.results) {
		delete(c.runs, runID)
	}
	return out, done, nil
}

// RegisterWorker registers a worker and returns its ID. name is
// diagnostic only.
func (c *Core) RegisterWorker(name string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", ErrClosed
	}
	c.nextWorker++
	id := fmt.Sprintf("w-%d", c.nextWorker)
	c.workers[id] = &workerState{id: id, name: name}
	c.bump()
	return id, nil
}

// LeaseTasks hands up to max pending tasks to a worker, oldest first
// (task IDs are monotonic, so the pending heap is FIFO across runs).
// Each lease starts the task's heartbeat clock.
func (c *Core) LeaseTasks(workerID string, max int) ([]Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire()
	if _, ok := c.workers[workerID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoWorker, workerID)
	}
	if max <= 0 {
		return nil, nil
	}
	var leases []Lease
	deadline := c.now().Add(c.leaseTTL)
	for len(leases) < max && c.pending.Len() > 0 {
		t := heap.Pop(&c.pending).(*task)
		if t.state != taskPending {
			// Stale heap entry: completed by a late post while queued.
			continue
		}
		t.state = taskLeased
		t.att++
		t.worker = workerID
		t.deadline = deadline
		leases = append(leases, Lease{TaskID: t.id, Spec: t.spec})
	}
	if len(leases) > 0 {
		c.bump()
	}
	return leases, nil
}

// Heartbeat extends the lease deadline of the worker's in-flight tasks
// and returns the IDs among them the worker no longer owns — expired
// leases re-queued (and possibly re-leased elsewhere) or tasks already
// completed. The worker must abandon lost tasks: cancel the local run
// and never post their results.
func (c *Core) Heartbeat(workerID string, taskIDs []int) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire()
	if _, ok := c.workers[workerID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoWorker, workerID)
	}
	deadline := c.now().Add(c.leaseTTL)
	var lost []int
	for _, id := range taskIDs {
		t := c.findTask(id)
		if t == nil || t.state != taskLeased || t.worker != workerID {
			lost = append(lost, id)
			continue
		}
		t.deadline = deadline
	}
	return lost, nil
}

// findTask locates a task by ID across runs. Callers hold c.mu.
func (c *Core) findTask(id int) *task {
	for _, r := range c.runs {
		if t, ok := r.tasks[id]; ok {
			return t
		}
	}
	return nil
}

// Complete posts a task's result. The task ID is the idempotency key:
// the first completion wins and is accepted even if the poster's lease
// had expired (the work is real; re-leased duplicates are the cheap
// side to drop), every later completion reports accepted=false and
// changes nothing. A worker whose completion is rejected simply moves
// on.
func (c *Core) Complete(workerID string, taskID int, res WireResult) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire()
	if _, ok := c.workers[workerID]; !ok {
		return false, fmt.Errorf("%w: %s", ErrNoWorker, workerID)
	}
	if res.V != WireVersion {
		return false, fmt.Errorf("remote: result has wire version %d, want %d", res.V, WireVersion)
	}
	t := c.findTask(taskID)
	if t == nil {
		return false, fmt.Errorf("remote: no such task %d", taskID)
	}
	if t.state == taskDone {
		return false, nil
	}
	// Force the caller-visible identity: index and label are the task's,
	// whatever the poster claimed.
	res.Index = t.index
	if res.Label == "" {
		res.Label = t.spec.Label
	}
	c.finish(c.runs[t.runID], t, res)
	return true, nil
}

// Close shuts the coordinator: new runs, submissions, and worker
// registrations are refused. Existing runs may drain. Idempotent.
func (c *Core) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		c.bump()
	}
}
