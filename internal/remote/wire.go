// Package remote is the first multi-node runner.Backend: a coordinator/
// worker pair speaking runner.Job/runner.Result over HTTP. The
// coordinator (see Core, Server) owns a lease-based job queue — workers
// register, lease tasks, heartbeat while running them, and post results
// with idempotency keys; a worker that misses its heartbeat deadline has
// its tasks re-queued (bounded retries, then a hard job error). The
// client side (see Backend) implements runner.Backend, so every existing
// driver — experiments, pifsim -shards, sweeps — distributes unchanged
// via -backend remote@ADDR.
//
// Layering follows the repo idiom: Core is a pure in-memory state
// machine with an injected clock, unit-testable without sockets; Server
// is a thin HTTP translation over it; Backend and Worker are HTTP
// clients. See DESIGN.md §11 for the wire protocol and failure-mode
// table.
package remote

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// WireVersion stamps every wire object; a coordinator or worker
// receiving another version refuses it rather than misinterpreting
// fields.
const WireVersion = 1

// JobSpec is the wire form of a runner.Job: everything a worker needs to
// rebuild and run the job locally, and nothing that cannot cross a
// machine boundary. Workloads travel by registry name, sources by
// sim.SourceSpec, prefetchers by registry name.
type JobSpec struct {
	V          int             `json:"v"`
	Label      string          `json:"label,omitempty"`
	Workload   string          `json:"workload"`
	Config     sim.Config      `json:"config"`
	Prefetcher string          `json:"prefetcher"`
	Source     *sim.SourceSpec `json:"source,omitempty"`
}

// EncodeJob converts a runner.Job to its wire form. Jobs carrying
// process-local state — a prefetcher factory closure, an observer, an
// opaque source — are rejected with a descriptive error: the remote
// backend must refuse them loudly, never run a silently different job.
func EncodeJob(j runner.Job) (JobSpec, error) {
	if j.NewPrefetcher != nil {
		return JobSpec{}, fmt.Errorf("remote: job %q carries a prefetcher factory closure; remote jobs must name a registry engine (PrefetcherName)", j.Label)
	}
	if j.PrefetcherName == "" {
		return JobSpec{}, fmt.Errorf("remote: job %q names no prefetcher", j.Label)
	}
	if j.Observer != nil {
		return JobSpec{}, fmt.Errorf("remote: job %q carries an observer callback; observers are process-local", j.Label)
	}
	if j.Workload.Name == "" {
		return JobSpec{}, fmt.Errorf("remote: job %q has an unnamed workload", j.Label)
	}
	reg, err := workload.ByName(j.Workload.Name)
	if err != nil {
		return JobSpec{}, fmt.Errorf("remote: job %q: workload %q is not in the registry; remote workers resolve workloads by name: %w", j.Label, j.Workload.Name, err)
	}
	if reg != j.Workload {
		return JobSpec{}, fmt.Errorf("remote: job %q: workload %q differs from the registry profile of that name; a remote worker would simulate the wrong program", j.Label, j.Workload.Name)
	}
	spec := JobSpec{
		V:          WireVersion,
		Label:      j.Label,
		Workload:   j.Workload.Name,
		Config:     j.Config,
		Prefetcher: j.PrefetcherName,
	}
	src := j.Source
	if src == nil && j.NewSource != nil {
		return JobSpec{}, fmt.Errorf("remote: job %q uses the deprecated NewSource iterator factory; remote jobs need a serializable sim.Source", j.Label)
	}
	if src != nil {
		ss, ok := sim.SpecOf(src)
		if !ok {
			return JobSpec{}, fmt.Errorf("remote: job %q carries an opaque source (%T); only live/store/slice sources serialize", j.Label, src)
		}
		spec.Source = &ss
	}
	// Program images are deterministic functions of the profile; the
	// worker rebuilds (and caches) them, so j.Program is dropped.
	return spec, nil
}

// Job rebuilds the runnable runner.Job a spec names, resolving the
// workload and prefetcher through their registries and the source
// through sim.SourceSpec.New.
func (s JobSpec) Job() (runner.Job, error) {
	if s.V != WireVersion {
		return runner.Job{}, fmt.Errorf("remote: job spec has wire version %d, want %d", s.V, WireVersion)
	}
	w, err := workload.ByName(s.Workload)
	if err != nil {
		return runner.Job{}, fmt.Errorf("remote: job %q: %w", s.Label, err)
	}
	j := runner.Job{
		Label:          s.Label,
		Workload:       w,
		Config:         s.Config,
		PrefetcherName: s.Prefetcher,
	}
	if s.Source != nil {
		src, err := s.Source.New()
		if err != nil {
			return runner.Job{}, fmt.Errorf("remote: job %q: %w", s.Label, err)
		}
		j.Source = src
	}
	return j, nil
}

// WireResult is the wire form of a runner.Result. Errors travel as
// strings: a remote job failure is diagnostic text by the time it
// crosses the wire, not a matchable error chain.
type WireResult struct {
	V            int        `json:"v"`
	Index        int        `json:"index"`
	Label        string     `json:"label,omitempty"`
	Sim          sim.Result `json:"sim"`
	Err          string     `json:"err,omitempty"`
	ElapsedNanos int64      `json:"elapsed_nanos"`
}

// EncodeResult converts a runner.Result to its wire form.
func EncodeResult(r runner.Result) WireResult {
	wr := WireResult{
		V:            WireVersion,
		Index:        r.Index,
		Label:        r.Label,
		Sim:          r.Sim,
		ElapsedNanos: r.Elapsed.Nanoseconds(),
	}
	if r.Err != nil {
		wr.Err = r.Err.Error()
	}
	return wr
}

// Result rebuilds the runner.Result a wire result names.
func (w WireResult) Result() (runner.Result, error) {
	if w.V != WireVersion {
		return runner.Result{}, fmt.Errorf("remote: result has wire version %d, want %d", w.V, WireVersion)
	}
	r := runner.Result{
		Index:   w.Index,
		Label:   w.Label,
		Sim:     w.Sim,
		Elapsed: time.Duration(w.ElapsedNanos),
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return r, nil
}
