// Package remote is the first multi-node runner.Backend: a coordinator/
// worker pair speaking runner.Job/runner.Result over HTTP. The
// coordinator (see Core, Server) owns a lease-based job queue — workers
// register, lease tasks, heartbeat while running them, and post results
// with idempotency keys; a worker that misses its heartbeat deadline has
// its tasks re-queued (bounded retries, then a hard job error). The
// client side (see Backend) implements runner.Backend, so every existing
// driver — experiments, pifsim -shards, sweeps — distributes unchanged
// via -backend remote@ADDR.
//
// Layering follows the repo idiom: Core is a pure in-memory state
// machine with an injected clock, unit-testable without sockets; Server
// is a thin HTTP translation over it; Backend and Worker are HTTP
// clients. See DESIGN.md §11 for the wire protocol and failure-mode
// table.
package remote

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/prefetch"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// WireVersion stamps every wire object; a coordinator or worker
// receiving another version refuses it rather than misinterpreting
// fields.
//
// Version history:
//
//	1: engines traveled as a bare registry name — tuned cells were refused.
//	2: engines travel as a full prefetch.Spec (name + params), so every
//	   sweep cell — budget-derived, history-swept, hand-tuned — runs
//	   remotely exactly as it would locally.
//	3: sim.Config gained MeasureOffsetInstrs (exact sharded replay): a
//	   v2 worker would silently drop the offset and measure the wrong
//	   interval, so shard jobs must not reach one.
const WireVersion = 3

// JobSpec is the wire form of a runner.Job: everything a worker needs to
// rebuild and run the job locally, and nothing that cannot cross a
// machine boundary. Workloads travel by registry name, sources by
// sim.SourceSpec, engines by declarative prefetch.Spec.
type JobSpec struct {
	V        int             `json:"v"`
	Label    string          `json:"label,omitempty"`
	Workload string          `json:"workload"`
	Config   sim.Config      `json:"config"`
	Engine   prefetch.Spec   `json:"engine"`
	Source   *sim.SourceSpec `json:"source,omitempty"`
}

// EncodeJob converts a runner.Job to its wire form. Jobs carrying
// process-local state — an instrument hook, an observer, an opaque
// source — are rejected with a descriptive error: the remote backend
// must refuse them loudly, never run a silently different job. The
// engine spec is validated against the registry before it travels, so a
// bad param fails at submission, not on a worker.
func EncodeJob(j runner.Job) (JobSpec, error) {
	if j.Engine.Name == "" {
		return JobSpec{}, fmt.Errorf("remote: job %q names no engine", j.Label)
	}
	if err := prefetch.Validate(j.Engine); err != nil {
		return JobSpec{}, fmt.Errorf("remote: job %q: %w", j.Label, err)
	}
	if j.Instrument != nil {
		return JobSpec{}, fmt.Errorf("remote: job %q carries an instrument callback; instruments are process-local", j.Label)
	}
	if j.Observer != nil {
		return JobSpec{}, fmt.Errorf("remote: job %q carries an observer callback; observers are process-local", j.Label)
	}
	if j.Workload.Name == "" {
		return JobSpec{}, fmt.Errorf("remote: job %q has an unnamed workload", j.Label)
	}
	reg, err := workload.ByName(j.Workload.Name)
	if err != nil {
		return JobSpec{}, fmt.Errorf("remote: job %q: workload %q is not in the registry; remote workers resolve workloads by name: %w", j.Label, j.Workload.Name, err)
	}
	if reg != j.Workload {
		return JobSpec{}, fmt.Errorf("remote: job %q: workload %q differs from the registry profile of that name; a remote worker would simulate the wrong program", j.Label, j.Workload.Name)
	}
	spec := JobSpec{
		V:        WireVersion,
		Label:    j.Label,
		Workload: j.Workload.Name,
		Config:   j.Config,
		Engine:   j.Engine,
	}
	if j.Source != nil {
		ss, ok := sim.SpecOf(j.Source)
		if !ok {
			return JobSpec{}, fmt.Errorf("remote: job %q carries an opaque source (%T); only live/store/slice sources serialize", j.Label, j.Source)
		}
		spec.Source = &ss
	}
	// Program images are deterministic functions of the profile; the
	// worker rebuilds (and caches) them, so j.Program is dropped.
	return spec, nil
}

// Job rebuilds the runnable runner.Job a spec names, resolving the
// workload through its registry, the engine spec against the prefetch
// schemas (a spec corrupted or forged in transit fails here, before the
// worker burns cycles on it), and the source through sim.SourceSpec.New.
func (s JobSpec) Job() (runner.Job, error) {
	if s.V != WireVersion {
		return runner.Job{}, fmt.Errorf("remote: job spec has wire version %d, want %d", s.V, WireVersion)
	}
	w, err := workload.ByName(s.Workload)
	if err != nil {
		return runner.Job{}, fmt.Errorf("remote: job %q: %w", s.Label, err)
	}
	if s.Engine.Name == "" {
		return runner.Job{}, fmt.Errorf("remote: job %q names no engine", s.Label)
	}
	if err := prefetch.Validate(s.Engine); err != nil {
		return runner.Job{}, fmt.Errorf("remote: job %q: %w", s.Label, err)
	}
	j := runner.Job{
		Label:    s.Label,
		Workload: w,
		Config:   s.Config,
		Engine:   s.Engine,
	}
	if s.Source != nil {
		src, err := s.Source.New()
		if err != nil {
			return runner.Job{}, fmt.Errorf("remote: job %q: %w", s.Label, err)
		}
		j.Source = src
	}
	return j, nil
}

// WireResult is the wire form of a runner.Result. Errors travel as
// strings: a remote job failure is diagnostic text by the time it
// crosses the wire, not a matchable error chain.
type WireResult struct {
	V            int        `json:"v"`
	Index        int        `json:"index"`
	Label        string     `json:"label,omitempty"`
	Sim          sim.Result `json:"sim"`
	Err          string     `json:"err,omitempty"`
	ElapsedNanos int64      `json:"elapsed_nanos"`
}

// EncodeResult converts a runner.Result to its wire form.
func EncodeResult(r runner.Result) WireResult {
	wr := WireResult{
		V:            WireVersion,
		Index:        r.Index,
		Label:        r.Label,
		Sim:          r.Sim,
		ElapsedNanos: r.Elapsed.Nanoseconds(),
	}
	if r.Err != nil {
		wr.Err = r.Err.Error()
	}
	return wr
}

// Result rebuilds the runner.Result a wire result names.
func (w WireResult) Result() (runner.Result, error) {
	if w.V != WireVersion {
		return runner.Result{}, fmt.Errorf("remote: result has wire version %d, want %d", w.V, WireVersion)
	}
	r := runner.Result{
		Index:   w.Index,
		Label:   w.Label,
		Sim:     w.Sim,
		Elapsed: time.Duration(w.ElapsedNanos),
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return r, nil
}
