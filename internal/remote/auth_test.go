package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/runner"
	"repro/internal/runner/runnertest"
)

// TestAuthProtectedCoordinator covers the bearer-token deployment shape
// (pifcoord -auth-token): a tokenless or wrong-token client is refused
// with a 401 envelope, while a tokened backend plus a tokened worker run
// jobs through the protected stack end to end.
func TestAuthProtectedCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test runs real simulations")
	}
	const token = "sweep-fleet-secret"
	core := NewCore(CoreOptions{})
	defer core.Close()
	srv := httptest.NewServer(httpapi.RequireAuth(token, WireVersion, NewServer(core), "/v1/healthz"))
	defer srv.Close()

	// Tokenless and wrong-token dials die on the run-open request with the
	// 401 class, not a hang or a misparse.
	if _, err := Dial(srv.URL); !isUnauthorized(err) {
		t.Fatalf("tokenless Dial: err = %v, want 401", err)
	}
	if _, err := DialAuth(srv.URL, "wrong"); !isUnauthorized(err) {
		t.Fatalf("wrong-token Dial: err = %v, want 401", err)
	}

	// A tokenless worker dies at registration with the same 401 class.
	ctxNoAuth, cancelNoAuth := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelNoAuth()
	bare := &Worker{Coord: srv.URL, Name: "bare", Parallel: 1}
	if err := bare.Run(ctxNoAuth); !isUnauthorized(err) {
		t.Fatalf("tokenless worker Run: err = %v, want 401", err)
	}

	// The health endpoint stays open for probes.
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}

	// Tokened stack: worker + backend complete real jobs.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	w := &Worker{Coord: srv.URL, Name: "tokened", Parallel: 2, Token: token}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(wctx)
	}()
	defer func() { wcancel(); <-done }()

	b, err := DialAuth(srv.URL, token)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	jobs := runnertest.Jobs(t, 2)
	results, err := runner.RunOn(context.Background(), b, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("job %d (%s) failed through the protected stack: %v", i, r.Label, r.Err)
		}
	}
}

// isUnauthorized reports whether err is a 401 from either transport
// error shape (remote's statusError or httpapi's StatusError).
func isUnauthorized(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.status == http.StatusUnauthorized
	}
	return httpapi.IsStatus(err, http.StatusUnauthorized)
}
