package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/httpapi"
	"repro/internal/runner"
)

// resultsPollMS is the long-poll wait the client backend requests per
// results fetch.
const resultsPollMS = 1000

// Backend is the client half of the remote backend: a runner.Backend
// whose Submit serializes jobs to the coordinator and whose Results
// channel is fed by a poller streaming the run's completions. One
// Backend drives one coordinator run for its whole lifetime; like
// LocalBackend it serves sequential RunOn batches and closes its result
// stream at Close.
type Backend struct {
	base  string
	hc    *http.Client
	runID string

	results chan runner.Result
	stop    chan struct{} // closed by Close: poller exits after drain

	mu     sync.Mutex
	closed bool
	once   sync.Once
}

// Dial connects to a coordinator at addr (host:port or http://host:port)
// and opens a run on it. The returned Backend is ready for RunOn.
func Dial(addr string) (*Backend, error) { return DialAuth(addr, "") }

// DialAuth is Dial against a token-protected coordinator (pifcoord
// -auth-token): every request carries the bearer token. An empty token
// is plain Dial.
func DialAuth(addr, token string) (*Backend, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	b := &Backend{
		base:    base,
		hc:      httpapi.Client(token),
		results: make(chan runner.Result, 64),
		stop:    make(chan struct{}),
	}
	var resp openRunResponse
	if err := b.post(context.Background(), "/v1/runs", struct {
		V int `json:"v"`
	}{WireVersion}, &resp); err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	b.runID = resp.RunID
	go b.poll()
	return b, nil
}

// post sends one JSON request and decodes the JSON response. A 409
// (coordinator or run closed) maps to runner.ErrBackendClosed.
func (b *Backend) post(ctx context.Context, path string, req, resp any) error {
	return httpJSON(ctx, b.hc, http.MethodPost, b.base+path, req, resp)
}

// httpJSON is the shared request helper for backend and worker.
func httpJSON(ctx context.Context, hc *http.Client, method, url string, req, resp any) error {
	var body io.Reader
	if req != nil {
		buf, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if req != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var e errorResponse
		msg := ""
		if json.NewDecoder(io.LimitReader(hresp.Body, 1<<16)).Decode(&e) == nil {
			msg = e.Error
		}
		if hresp.StatusCode == http.StatusConflict {
			return fmt.Errorf("%w (coordinator: %s)", runner.ErrBackendClosed, msg)
		}
		return &statusError{status: hresp.StatusCode, method: method, url: url, msg: msg}
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(hresp.Body).Decode(resp)
}

// statusError is a non-OK, non-409 HTTP response from the coordinator,
// carrying the status so callers can react to specific codes: 404 means
// the coordinator no longer knows the caller's ID — a restarted
// coordinator lost its in-memory state, so a worker must re-register
// and a client's run is gone.
type statusError struct {
	status      int
	method, url string
	msg         string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("remote: %s %s: status %d: %s", e.method, e.url, e.status, e.msg)
}

// isNotFound reports whether err is a coordinator 404 (unknown worker,
// run, or task ID).
func isNotFound(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.status == http.StatusNotFound
}

// Submit implements runner.Backend: encode the job, ship it. A closed
// backend (local Close or coordinator refusal) returns
// runner.ErrBackendClosed.
func (b *Backend) Submit(ctx context.Context, idx int, j runner.Job) error {
	if ctx == nil {
		ctx = context.Background()
	}
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return runner.ErrBackendClosed
	}
	spec, err := EncodeJob(j)
	if err != nil {
		return err
	}
	return b.post(ctx, "/v1/runs/"+b.runID+"/jobs", submitJobRequest{V: WireVersion, Index: idx, Spec: spec}, nil)
}

// Results implements runner.Backend.
func (b *Backend) Results() <-chan runner.Result { return b.results }

// Close implements runner.Backend: the coordinator run is closed (no
// more submissions), and the Results channel closes once every
// submitted job's result has been delivered.
func (b *Backend) Close() error {
	b.once.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		// Best effort: if the coordinator is gone the poller will fail
		// out and close the stream anyway.
		_ = b.post(context.Background(), "/v1/runs/"+b.runID+"/close", struct {
			V int `json:"v"`
		}{WireVersion}, nil)
		close(b.stop)
	})
	return nil
}

// poll streams the run's results into the channel. It exits — closing
// the results channel — when the run reports done (all submitted jobs
// completed after Close) or the coordinator becomes unreachable after
// Close.
func (b *Backend) poll() {
	defer close(b.results)
	cursor := 0
	for {
		var resp resultsResponse
		url := fmt.Sprintf("%s/v1/runs/%s/results?cursor=%d&wait_ms=%d", b.base, b.runID, cursor, resultsPollMS)
		err := httpJSON(context.Background(), b.hc, http.MethodGet, url, nil, &resp)
		if err != nil {
			if isNotFound(err) {
				// The run is gone: a restarted coordinator lost it. No
				// result can ever arrive; close the stream so RunOn
				// reports the mid-run loss instead of polling forever.
				return
			}
			// Transient coordinator trouble: keep polling while the
			// backend is open; after Close, give up — the consumer is
			// draining toward channel close.
			select {
			case <-b.stop:
				return
			case <-time.After(100 * time.Millisecond):
				continue
			}
		}
		for _, wr := range resp.Results {
			res, rerr := wr.Result()
			if rerr != nil {
				res = runner.Result{Index: wr.Index, Label: wr.Label, Err: rerr}
			}
			b.results <- res
		}
		cursor += len(resp.Results)
		if resp.Done {
			return
		}
	}
}
