package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/runner/runnertest"
)

// harness is one in-process coordinator with real HTTP listeners and
// helpers to attach workers.
type harness struct {
	core   *Core
	srv    *httptest.Server
	cancel context.CancelFunc
	wg     sync.WaitGroup
	ctx    context.Context
}

func newHarness(t *testing.T, opts CoreOptions) *harness {
	t.Helper()
	core := NewCore(opts)
	srv := httptest.NewServer(NewServer(core))
	ctx, cancel := context.WithCancel(context.Background())
	h := &harness{core: core, srv: srv, cancel: cancel, ctx: ctx}
	t.Cleanup(func() {
		cancel()
		h.wg.Wait()
		srv.Close()
	})
	return h
}

// startWorker runs a worker against the harness coordinator and returns
// a cancel that kills it (abandoning in-flight tasks unposted — the
// same observable state as a SIGKILLed worker process).
func (h *harness) startWorker(name string, parallel int) context.CancelFunc {
	ctx, cancel := context.WithCancel(h.ctx)
	w := &Worker{Coord: h.srv.URL, Name: name, Parallel: parallel}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		_ = w.Run(ctx)
	}()
	return cancel
}

// TestRemoteBackendConformance runs the shared backend contract against
// the full stack: HTTP coordinator, two workers, client backend.
func TestRemoteBackendConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test runs real simulations")
	}
	h := newHarness(t, CoreOptions{})
	h.startWorker("w1", 2)
	h.startWorker("w2", 2)
	runnertest.Conformance(t, func(t *testing.T) runner.Backend {
		b, err := Dial(h.srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
}

// TestLocalBackendConformance anchors the contract on the reference
// implementation, so a conformance regression is attributable.
func TestLocalBackendConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance runs real simulations")
	}
	runnertest.Conformance(t, func(t *testing.T) runner.Backend {
		return runner.NewLocalBackend(2)
	})
}

// TestRemoteMatchesLocal is the distribution-correctness anchor: the
// same jobs through the remote stack (two workers) and through
// LocalBackend produce identical simulation results.
func TestRemoteMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test runs real simulations")
	}
	jobs := runnertest.Jobs(t, 6)

	local := runner.NewLocalBackend(2)
	want, err := runner.RunOn(context.Background(), local, jobs, nil)
	local.Close()
	if err != nil {
		t.Fatal(err)
	}

	h := newHarness(t, CoreOptions{})
	h.startWorker("w1", 2)
	h.startWorker("w2", 2)
	b, err := Dial(h.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, err := runner.RunOn(context.Background(), b, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("remote job %d (%s): %v", i, got[i].Label, got[i].Err)
		}
		if got[i].Sim != want[i].Sim {
			t.Errorf("job %d (%s): remote sim result differs from local:\nremote %+v\nlocal  %+v",
				i, jobs[i].Label, got[i].Sim, want[i].Sim)
		}
	}
}

// TestWorkerKilledMidRun kills one of two workers mid-sweep: its leased
// tasks must be re-queued after the lease TTL and every job must still
// complete exactly once with a real result.
func TestWorkerKilledMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test runs real simulations")
	}
	// Short TTL so the re-lease happens within test time.
	h := newHarness(t, CoreOptions{LeaseTTL: 500 * time.Millisecond})
	killVictim := h.startWorker("victim", 1)
	jobs := runnertest.Jobs(t, 5)

	b, err := Dial(h.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Let the victim lease work, then kill it and bring up the survivor.
	go func() {
		time.Sleep(150 * time.Millisecond)
		killVictim()
		h.startWorker("survivor", 2)
	}()
	results, err := runner.RunOn(context.Background(), b, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	seen := make(map[int]bool)
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("job %d (%s): %v", i, r.Label, r.Err)
		}
		if r.Sim.Instructions == 0 {
			t.Errorf("job %d (%s): zero-valued result after re-lease", i, r.Label)
		}
		if seen[r.Index] {
			t.Errorf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
	}
}

// TestWorkerReregistersAfterCoordinatorRestart: a worker registered
// with one coordinator incarnation must, once that coordinator is
// replaced by a restart that lost all in-memory state, detect the 404
// on its stale worker ID, re-register, and serve jobs submitted to the
// new incarnation — not idle forever retrying the dead ID.
func TestWorkerReregistersAfterCoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test runs real simulations")
	}
	core1 := NewCore(CoreOptions{})
	var cur atomic.Pointer[Server]
	cur.Store(NewServer(core1))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(w, r)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	w := &Worker{Coord: srv.URL, Name: "phoenix", Parallel: 1}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Run(ctx)
	}()
	defer wg.Wait()
	defer cancel()

	// Wait for the worker to register with the first incarnation, then
	// swap in a fresh core: the observable state of a coordinator restart.
	deadline := time.Now().Add(5 * time.Second)
	for {
		core1.mu.Lock()
		n := len(core1.workers)
		core1.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never registered with the first coordinator")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cur.Store(NewServer(NewCore(CoreOptions{})))

	b, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	jobs := runnertest.Jobs(t, 2)
	results, err := runner.RunOn(context.Background(), b, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("job %d (%s) after restart: %v", i, r.Label, r.Err)
		}
	}
}

// TestRemoteSubmitAfterCoordinatorClose checks the server-side refusal
// path: a coordinator that has shut down answers submissions with 409,
// which the client maps to runner.ErrBackendClosed.
func TestRemoteSubmitAfterCoordinatorClose(t *testing.T) {
	h := newHarness(t, CoreOptions{})
	b, err := Dial(h.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	h.core.Close()
	err = b.Submit(context.Background(), 0, runnertest.Jobs(t, 1)[0])
	if !errors.Is(err, runner.ErrBackendClosed) {
		t.Fatalf("Submit after coordinator Close = %v, want runner.ErrBackendClosed", err)
	}
}
