package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// maxWait caps long-poll waits so a stuck client cannot pin a handler
// forever.
const maxWait = 30 * time.Second

// Wire envelopes: one request/response pair per endpoint. All are
// version-stamped JSON.

type openRunResponse struct {
	V     int    `json:"v"`
	RunID string `json:"run_id"`
}

type submitJobRequest struct {
	V     int     `json:"v"`
	Index int     `json:"index"`
	Spec  JobSpec `json:"spec"`
}

type resultsResponse struct {
	V       int          `json:"v"`
	Results []WireResult `json:"results"`
	Done    bool         `json:"done"`
}

type registerWorkerRequest struct {
	V    int    `json:"v"`
	Name string `json:"name"`
}

type registerWorkerResponse struct {
	V          int    `json:"v"`
	WorkerID   string `json:"worker_id"`
	LeaseTTLMS int64  `json:"lease_ttl_ms"`
}

type leaseRequest struct {
	V        int    `json:"v"`
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
	WaitMS   int64  `json:"wait_ms"`
}

type leaseResponse struct {
	V      int     `json:"v"`
	Leases []Lease `json:"leases"`
}

type heartbeatRequest struct {
	V        int    `json:"v"`
	WorkerID string `json:"worker_id"`
	TaskIDs  []int  `json:"task_ids"`
}

type heartbeatResponse struct {
	V    int   `json:"v"`
	Lost []int `json:"lost"`
}

type completeRequest struct {
	V        int        `json:"v"`
	WorkerID string     `json:"worker_id"`
	TaskID   int        `json:"task_id"`
	Result   WireResult `json:"result"`
}

type completeResponse struct {
	V        int  `json:"v"`
	Accepted bool `json:"accepted"`
}

type errorResponse struct {
	V     int    `json:"v"`
	Error string `json:"error"`
}

// Server is the thin HTTP translation over a coordinator Core: decode,
// delegate, encode. Long-polling (lease and results waits) is the only
// logic it owns, built on Core.Changed generations.
type Server struct {
	core *Core
	mux  *http.ServeMux
}

// NewServer wraps a core in its HTTP API.
func NewServer(core *Core) *Server {
	s := &Server{core: core, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/runs", s.handleOpenRun)
	s.mux.HandleFunc("POST /v1/runs/{id}/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("POST /v1/runs/{id}/close", s.handleCloseRun)
	s.mux.HandleFunc("GET /v1/runs/{id}/results", s.handleResults)
	s.mux.HandleFunc("POST /v1/workers", s.handleRegisterWorker)
	s.mux.HandleFunc("POST /v1/lease", s.handleLease)
	s.mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /v1/complete", s.handleComplete)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]int{"v": WireVersion})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON encodes one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps core errors to HTTP statuses: ErrClosed -> 409 (the
// client Backend translates it to runner.ErrBackendClosed), unknown
// IDs -> 404, everything else -> 400.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrClosed):
		status = http.StatusConflict
	case errors.Is(err, ErrNoRun), errors.Is(err, ErrNoWorker):
		status = http.StatusNotFound
	}
	writeJSON(w, status, errorResponse{V: WireVersion, Error: err.Error()})
}

// decode parses a request body, enforcing the wire version.
func decode[T any](r *http.Request, v *T, version func(T) int) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("remote: bad request body: %w", err)
	}
	if got := version(*v); got != WireVersion {
		return fmt.Errorf("remote: request has wire version %d, want %d", got, WireVersion)
	}
	return nil
}

func (s *Server) handleOpenRun(w http.ResponseWriter, r *http.Request) {
	id, err := s.core.OpenRun()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, openRunResponse{V: WireVersion, RunID: id})
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req submitJobRequest
	if err := decode(r, &req, func(q submitJobRequest) int { return q.V }); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.core.SubmitJob(r.PathValue("id"), req.Index, req.Spec); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"v": WireVersion})
}

func (s *Server) handleCloseRun(w http.ResponseWriter, r *http.Request) {
	if err := s.core.CloseRun(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"v": WireVersion})
}

// handleResults streams the run's results from a cursor. With wait_ms,
// an empty batch long-polls for new completions (or run done) up to the
// wait, so the client backend sees results promptly without hot
// polling.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	runID := r.PathValue("id")
	q := r.URL.Query()
	cursor, _ := strconv.Atoi(q.Get("cursor"))
	waitMS, _ := strconv.ParseInt(q.Get("wait_ms"), 10, 64)
	deadline := time.Now().Add(clampWait(waitMS))
	for {
		changed := s.core.Changed()
		results, done, err := s.core.Results(runID, cursor)
		if err != nil {
			writeErr(w, err)
			return
		}
		if len(results) > 0 || done || time.Now().After(deadline) {
			writeJSON(w, http.StatusOK, resultsResponse{V: WireVersion, Results: results, Done: done})
			return
		}
		if !waitChange(r, changed, deadline) {
			writeJSON(w, http.StatusOK, resultsResponse{V: WireVersion, Results: nil, Done: false})
			return
		}
	}
}

func (s *Server) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req registerWorkerRequest
	if err := decode(r, &req, func(q registerWorkerRequest) int { return q.V }); err != nil {
		writeErr(w, err)
		return
	}
	id, err := s.core.RegisterWorker(req.Name)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, registerWorkerResponse{
		V:          WireVersion,
		WorkerID:   id,
		LeaseTTLMS: s.core.LeaseTTL().Milliseconds(),
	})
}

// handleLease hands pending tasks to a worker, long-polling while the
// queue is empty.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := decode(r, &req, func(q leaseRequest) int { return q.V }); err != nil {
		writeErr(w, err)
		return
	}
	deadline := time.Now().Add(clampWait(req.WaitMS))
	for {
		changed := s.core.Changed()
		leases, err := s.core.LeaseTasks(req.WorkerID, req.Max)
		if err != nil {
			writeErr(w, err)
			return
		}
		if len(leases) > 0 || time.Now().After(deadline) {
			writeJSON(w, http.StatusOK, leaseResponse{V: WireVersion, Leases: leases})
			return
		}
		if !waitChange(r, changed, deadline) {
			writeJSON(w, http.StatusOK, leaseResponse{V: WireVersion})
			return
		}
	}
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := decode(r, &req, func(q heartbeatRequest) int { return q.V }); err != nil {
		writeErr(w, err)
		return
	}
	lost, err := s.core.Heartbeat(req.WorkerID, req.TaskIDs)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{V: WireVersion, Lost: lost})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := decode(r, &req, func(q completeRequest) int { return q.V }); err != nil {
		writeErr(w, err)
		return
	}
	accepted, err := s.core.Complete(req.WorkerID, req.TaskID, req.Result)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, completeResponse{V: WireVersion, Accepted: accepted})
}

// clampWait bounds a client-requested long-poll wait.
func clampWait(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d < 0 {
		return 0
	}
	if d > maxWait {
		return maxWait
	}
	return d
}

// waitChange blocks until the state generation changes, the deadline
// passes (returns false), or the request dies (returns false).
func waitChange(r *http.Request, changed <-chan struct{}, deadline time.Time) bool {
	wait := time.Until(deadline)
	if wait <= 0 {
		return false
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-changed:
		return true
	case <-timer.C:
		return false
	case <-r.Context().Done():
		return false
	}
}
