package remote

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/prefetch"
)

// fakeClock is a manually advanced clock for Core tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testCore(t *testing.T, opts CoreOptions) (*Core, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	opts.Now = clk.Now
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	return NewCore(opts), clk
}

func testSpec(label string) JobSpec {
	return JobSpec{V: WireVersion, Label: label, Workload: "OLTP DB2", Engine: prefetch.Spec{Name: "none"}}
}

func testWireResult(label string) WireResult {
	return WireResult{V: WireVersion, Label: label, ElapsedNanos: 1}
}

// openRunWithJobs opens a run and submits n jobs indexed 0..n-1.
func openRunWithJobs(t *testing.T, c *Core, n int) string {
	t.Helper()
	runID, err := c.OpenRun()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.SubmitJob(runID, i, testSpec("job")); err != nil {
			t.Fatal(err)
		}
	}
	return runID
}

func registerWorker(t *testing.T, c *Core, name string) string {
	t.Helper()
	id, err := c.RegisterWorker(name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCoreLeaseCompleteFlow(t *testing.T) {
	c, _ := testCore(t, CoreOptions{})
	runID := openRunWithJobs(t, c, 2)
	w := registerWorker(t, c, "w1")

	leases, err := c.LeaseTasks(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 2 {
		t.Fatalf("leased %d tasks, want 2", len(leases))
	}
	// Second lease call: nothing pending.
	if more, _ := c.LeaseTasks(w, 10); len(more) != 0 {
		t.Fatalf("re-leased %d tasks while all are in flight", len(more))
	}
	for _, l := range leases {
		acc, err := c.Complete(w, l.TaskID, testWireResult("done"))
		if err != nil {
			t.Fatal(err)
		}
		if !acc {
			t.Fatalf("task %d completion rejected", l.TaskID)
		}
	}
	if err := c.CloseRun(runID); err != nil {
		t.Fatal(err)
	}
	results, done, err := c.Results(runID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !done {
		t.Fatalf("results = %d, done = %v; want 2, true", len(results), done)
	}
}

func TestCoreHeartbeatExpiryRequeues(t *testing.T) {
	c, clk := testCore(t, CoreOptions{LeaseTTL: 10 * time.Second})
	openRunWithJobs(t, c, 1)
	w1 := registerWorker(t, c, "w1")
	w2 := registerWorker(t, c, "w2")

	leases, _ := c.LeaseTasks(w1, 1)
	if len(leases) != 1 {
		t.Fatal("w1 got no lease")
	}
	// Within the TTL the task is not re-leasable.
	clk.Advance(9 * time.Second)
	if more, _ := c.LeaseTasks(w2, 1); len(more) != 0 {
		t.Fatal("task re-leased before its deadline")
	}
	// A heartbeat extends the deadline.
	if lost, err := c.Heartbeat(w1, []int{leases[0].TaskID}); err != nil || len(lost) != 0 {
		t.Fatalf("heartbeat lost=%v err=%v", lost, err)
	}
	clk.Advance(9 * time.Second)
	if more, _ := c.LeaseTasks(w2, 1); len(more) != 0 {
		t.Fatal("heartbeat did not extend the lease")
	}
	// Missing the deadline re-queues the task to w2.
	clk.Advance(2 * time.Second)
	more, _ := c.LeaseTasks(w2, 1)
	if len(more) != 1 || more[0].TaskID != leases[0].TaskID {
		t.Fatalf("expired task not re-leased: %v", more)
	}
	// w1's next heartbeat disowns the task.
	lost, err := c.Heartbeat(w1, []int{leases[0].TaskID})
	if err != nil || len(lost) != 1 {
		t.Fatalf("w1 heartbeat after expiry: lost=%v err=%v", lost, err)
	}
}

func TestCoreBoundedRetriesThenHardError(t *testing.T) {
	const maxAttempts = 3
	c, clk := testCore(t, CoreOptions{LeaseTTL: 10 * time.Second, MaxAttempts: maxAttempts})
	runID := openRunWithJobs(t, c, 1)
	w := registerWorker(t, c, "flaky")

	for i := 0; i < maxAttempts; i++ {
		leases, err := c.LeaseTasks(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(leases) != 1 {
			t.Fatalf("attempt %d: leased %d tasks", i, len(leases))
		}
		clk.Advance(11 * time.Second) // miss every heartbeat
	}
	// The lease budget is spent: the task must complete with a hard
	// error, not be re-leased and not hang pending.
	if leases, _ := c.LeaseTasks(w, 1); len(leases) != 0 {
		t.Fatalf("task re-leased after %d lost attempts", maxAttempts)
	}
	c.CloseRun(runID)
	results, done, err := c.Results(runID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !done || len(results) != 1 {
		t.Fatalf("results = %d, done = %v", len(results), done)
	}
	if results[0].Err == "" || !strings.Contains(results[0].Err, "lost its worker") {
		t.Fatalf("hard-error result = %+v, want a lost-worker error", results[0])
	}
}

func TestCoreDuplicateCompleteDeduplicated(t *testing.T) {
	c, _ := testCore(t, CoreOptions{})
	var streamed int
	c.onResult = func(string, WireResult) { streamed++ }
	runID := openRunWithJobs(t, c, 1)
	w := registerWorker(t, c, "w1")
	leases, _ := c.LeaseTasks(w, 1)

	acc, err := c.Complete(w, leases[0].TaskID, testWireResult("first"))
	if err != nil || !acc {
		t.Fatalf("first completion: acc=%v err=%v", acc, err)
	}
	// A retried POST of the same completion must change nothing.
	acc, err = c.Complete(w, leases[0].TaskID, testWireResult("retry"))
	if err != nil {
		t.Fatal(err)
	}
	if acc {
		t.Fatal("duplicate completion accepted")
	}
	results, _, _ := c.Results(runID, 0)
	if len(results) != 1 || results[0].Label != "first" {
		t.Fatalf("results = %v, want exactly the first completion", results)
	}
	if streamed != 1 {
		t.Fatalf("onResult fired %d times, want 1", streamed)
	}
}

// TestCoreLateCompletionAfterRelease locks first-complete-wins: a worker
// whose lease expired finishes anyway and posts first — the work is
// real, so it is accepted, and the re-leased worker's copy is dropped.
func TestCoreLateCompletionAfterRelease(t *testing.T) {
	c, clk := testCore(t, CoreOptions{LeaseTTL: 10 * time.Second})
	runID := openRunWithJobs(t, c, 1)
	w1 := registerWorker(t, c, "slow")
	w2 := registerWorker(t, c, "fast")

	leases, _ := c.LeaseTasks(w1, 1)
	clk.Advance(11 * time.Second)
	releases, _ := c.LeaseTasks(w2, 1)
	if len(releases) != 1 {
		t.Fatal("expired task not re-leased")
	}
	// The original worker's late post wins.
	if acc, err := c.Complete(w1, leases[0].TaskID, testWireResult("late-but-first")); err != nil || !acc {
		t.Fatalf("late completion: acc=%v err=%v", acc, err)
	}
	if acc, _ := c.Complete(w2, releases[0].TaskID, testWireResult("duplicate")); acc {
		t.Fatal("second completion accepted")
	}
	results, _, _ := c.Results(runID, 0)
	if len(results) != 1 || results[0].Label != "late-but-first" {
		t.Fatalf("results = %v", results)
	}
}

func TestCoreRefusalsAfterClose(t *testing.T) {
	c, _ := testCore(t, CoreOptions{})
	runID := openRunWithJobs(t, c, 0)
	c.Close()
	if _, err := c.OpenRun(); !errors.Is(err, ErrClosed) {
		t.Errorf("OpenRun after Close = %v", err)
	}
	if err := c.SubmitJob(runID, 0, testSpec("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitJob after Close = %v", err)
	}
	if _, err := c.RegisterWorker("w"); !errors.Is(err, ErrClosed) {
		t.Errorf("RegisterWorker after Close = %v", err)
	}
}

func TestCoreClosedRunRefusesJobs(t *testing.T) {
	c, _ := testCore(t, CoreOptions{})
	runID := openRunWithJobs(t, c, 1)
	if err := c.CloseRun(runID); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitJob(runID, 1, testSpec("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitJob on closed run = %v, want ErrClosed", err)
	}
	// CloseRun is idempotent.
	if err := c.CloseRun(runID); err != nil {
		t.Fatal(err)
	}
}

func TestCoreUnknownIDs(t *testing.T) {
	c, _ := testCore(t, CoreOptions{})
	if err := c.SubmitJob("run-404", 0, testSpec("x")); !errors.Is(err, ErrNoRun) {
		t.Errorf("SubmitJob on unknown run = %v", err)
	}
	if _, _, err := c.Results("run-404", 0); !errors.Is(err, ErrNoRun) {
		t.Errorf("Results on unknown run = %v", err)
	}
	if _, err := c.LeaseTasks("w-404", 1); !errors.Is(err, ErrNoWorker) {
		t.Errorf("LeaseTasks for unknown worker = %v", err)
	}
	if _, err := c.Heartbeat("w-404", nil); !errors.Is(err, ErrNoWorker) {
		t.Errorf("Heartbeat for unknown worker = %v", err)
	}
	if _, err := c.Complete("w-404", 1, testWireResult("x")); !errors.Is(err, ErrNoWorker) {
		t.Errorf("Complete for unknown worker = %v", err)
	}
}

// TestCoreRunEvictedAfterDrain locks the memory bound: a run that is
// done and fully fetched is deleted, so a long-lived coordinator does
// not accumulate completed runs (and their tasks) without bound.
func TestCoreRunEvictedAfterDrain(t *testing.T) {
	c, _ := testCore(t, CoreOptions{})
	runID := openRunWithJobs(t, c, 2)
	w := registerWorker(t, c, "w")
	leases, _ := c.LeaseTasks(w, 2)
	for _, l := range leases {
		if _, err := c.Complete(w, l.TaskID, testWireResult("r")); err != nil {
			t.Fatal(err)
		}
	}
	// Not yet closed: results are fetchable but the run must survive.
	if _, done, err := c.Results(runID, 0); err != nil || done {
		t.Fatalf("pre-close fetch: done=%v err=%v", done, err)
	}
	if err := c.CloseRun(runID); err != nil {
		t.Fatal(err)
	}
	results, done, err := c.Results(runID, 2)
	if err != nil || !done || len(results) != 0 {
		t.Fatalf("drain: results=%d done=%v err=%v", len(results), done, err)
	}
	// The drained run is gone; a very late duplicate post errors plainly
	// instead of leaking state.
	if _, _, err := c.Results(runID, 0); !errors.Is(err, ErrNoRun) {
		t.Errorf("Results after drain = %v, want ErrNoRun", err)
	}
	if _, err := c.Complete(w, leases[0].TaskID, testWireResult("late")); err == nil {
		t.Error("Complete against an evicted run's task succeeded")
	}
}

// TestCoreRunIDsUniqueAcrossIncarnations guards the crash-salvage
// directory layout: two coordinator incarnations — even with identical
// clocks, as after a fast restart — never mint the same run ID, so a
// restarted pifcoord reusing a -results directory cannot overwrite a
// previous incarnation's run directories.
func TestCoreRunIDsUniqueAcrossIncarnations(t *testing.T) {
	c1, _ := testCore(t, CoreOptions{})
	c2, _ := testCore(t, CoreOptions{})
	id1, err := c1.OpenRun()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c2.OpenRun()
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatalf("two incarnations minted the same run ID %q", id1)
	}
}

func TestCoreResultsCursor(t *testing.T) {
	c, _ := testCore(t, CoreOptions{})
	runID := openRunWithJobs(t, c, 3)
	w := registerWorker(t, c, "w")
	leases, _ := c.LeaseTasks(w, 3)
	for i, l := range leases {
		c.Complete(w, l.TaskID, testWireResult("r"))
		results, _, err := c.Results(runID, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 {
			t.Fatalf("cursor %d: %d new results, want 1", i, len(results))
		}
	}
	if _, _, err := c.Results(runID, 99); err == nil {
		t.Error("out-of-range cursor accepted")
	}
}

// TestCoreSequentialBatches checks the multi-batch shape the client
// backend relies on: task identity is coordinator-wide, so a second
// batch's index 0 never collides with the first's.
func TestCoreSequentialBatches(t *testing.T) {
	c, _ := testCore(t, CoreOptions{})
	runID := openRunWithJobs(t, c, 2)
	w := registerWorker(t, c, "w")
	leases, _ := c.LeaseTasks(w, 2)
	for _, l := range leases {
		c.Complete(w, l.TaskID, testWireResult("batch1"))
	}
	// Second batch on the same run, same indices.
	for i := 0; i < 2; i++ {
		if err := c.SubmitJob(runID, i, testSpec("batch2")); err != nil {
			t.Fatal(err)
		}
	}
	leases2, _ := c.LeaseTasks(w, 2)
	if len(leases2) != 2 {
		t.Fatalf("batch 2 leased %d", len(leases2))
	}
	for _, l := range leases2 {
		if l.TaskID == leases[0].TaskID || l.TaskID == leases[1].TaskID {
			t.Fatalf("task ID %d reused across batches", l.TaskID)
		}
		c.Complete(w, l.TaskID, testWireResult("batch2"))
	}
	results, _, _ := c.Results(runID, 0)
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
}
