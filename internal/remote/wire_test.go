package remote

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func serializableJob(t *testing.T) runner.Job {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 1000
	// A non-zero measure offset (an exact shard job) must round-trip;
	// dropping it would measure the wrong interval (the wire v2→v3 bump).
	cfg.MeasureOffsetInstrs = 500
	cfg.MeasureInstrs = 1000
	return runner.Job{
		Label:    "fig10/OLTP DB2/nextline",
		Workload: workload.OLTPDB2(),
		Config:   cfg,
		Engine:   prefetch.Spec{Name: "nextline"},
	}
}

func TestEncodeJobRoundTrip(t *testing.T) {
	j := serializableJob(t)
	j.Source = sim.SliceSource("/tmp/store", trace.Window{Off: 10, Len: 20})
	spec, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Job()
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != j.Label || got.Workload != j.Workload || got.Config != j.Config || got.Engine.Name != j.Engine.Name {
		t.Errorf("round trip changed job:\n%+v\n%+v", j, got)
	}
	ss, ok := sim.SpecOf(got.Source)
	if !ok || ss.Kind != "slice" || ss.Path != "/tmp/store" || (ss.Window != trace.Window{Off: 10, Len: 20}) {
		t.Errorf("source not round-tripped: %+v ok=%v", ss, ok)
	}
}

// TestEncodeJobTunedEngine locks the wire-v2 capability: a tuned engine
// spec — params and all — travels and rebuilds intact, where wire v1
// refused anything beyond a bare registry name.
func TestEncodeJobTunedEngine(t *testing.T) {
	j := serializableJob(t)
	j.Engine = prefetch.Spec{Name: "pif", Params: map[string]float64{
		"budget_kb": 512,
		"sabs":      2,
	}}
	spec, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Job()
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine.Name != "pif" || got.Engine.Params["budget_kb"] != 512 || got.Engine.Params["sabs"] != 2 {
		t.Errorf("tuned engine did not round-trip: %+v", got.Engine)
	}
	// The rebuilt spec resolves to a working engine instance.
	if _, err := prefetch.Resolve(got.Engine); err != nil {
		t.Errorf("rebuilt engine spec does not resolve: %v", err)
	}
}

// nopObserver is a process-local observer for rejection tests.
type nopObserver struct{}

func (nopObserver) OnCorrectFetch(tl isa.TrapLevel, hit, wasPrefetched bool) {}

func TestEncodeJobRejectsProcessLocalState(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*runner.Job)
		want string
	}{
		{"no-engine", func(j *runner.Job) { j.Engine = prefetch.Spec{} }, "names no engine"},
		{"unknown-engine", func(j *runner.Job) { j.Engine = prefetch.Spec{Name: "dropout"} }, "unknown engine"},
		{"invalid-engine-param", func(j *runner.Job) {
			j.Engine = prefetch.Spec{Name: "nextline", Params: map[string]float64{"degree": 0}}
		}, "below minimum"},
		{"unknown-engine-param", func(j *runner.Job) {
			j.Engine = prefetch.Spec{Name: "nextline", Params: map[string]float64{"stride": 2}}
		}, "unknown param"},
		{"instrument", func(j *runner.Job) {
			j.Instrument = func(prefetch.Prefetcher) {}
		}, "instrument callback"},
		{"observer", func(j *runner.Job) { j.Observer = nopObserver{} }, "observer"},
		{"unnamed-workload", func(j *runner.Job) { j.Workload = workload.Profile{} }, "unnamed workload"},
		{"off-registry-workload", func(j *runner.Job) { j.Workload.Seed++ }, "differs from the registry"},
		{"opaque-source", func(j *runner.Job) {
			j.Source = sim.OpenerSource(func() (trace.Iterator, error) { return nil, nil })
		}, "opaque source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := serializableJob(t)
			tc.mut(&j)
			_, err := EncodeJob(j)
			if err == nil {
				t.Fatal("EncodeJob accepted a non-serializable job")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestJobSpecRejectsForgedEngine asserts the worker-side decode
// validates engine specs too: a spec corrupted or forged in transit
// fails at Job(), before any simulation starts.
func TestJobSpecRejectsForgedEngine(t *testing.T) {
	mk := func() JobSpec {
		spec, err := EncodeJob(serializableJob(t))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	s := mk()
	s.Engine.Name = ""
	if _, err := s.Job(); err == nil || !strings.Contains(err.Error(), "names no engine") {
		t.Errorf("engineless spec: %v", err)
	}
	s = mk()
	s.Engine.Params = map[string]float64{"degree": -3}
	if _, err := s.Job(); err == nil || !strings.Contains(err.Error(), "below minimum") {
		t.Errorf("out-of-range spec: %v", err)
	}
}

func TestEncodeResultRoundTrip(t *testing.T) {
	r := runner.Result{
		Index:   7,
		Label:   "cell",
		Sim:     sim.Result{Workload: "OLTP DB2", Instructions: 123, UIPC: 0.5},
		Err:     errors.New("boom"),
		Elapsed: 1500 * time.Millisecond,
	}
	wr := EncodeResult(r)
	b, err := json.Marshal(wr)
	if err != nil {
		t.Fatal(err)
	}
	var back WireResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != r.Index || got.Label != r.Label || got.Sim != r.Sim || got.Elapsed != r.Elapsed {
		t.Errorf("round trip changed result:\n%+v\n%+v", r, got)
	}
	if got.Err == nil || got.Err.Error() != "boom" {
		t.Errorf("error not round-tripped: %v", got.Err)
	}
}

func TestWireVersionEnforced(t *testing.T) {
	if _, err := (JobSpec{V: WireVersion + 1, Workload: "OLTP DB2", Engine: prefetch.Spec{Name: "none"}}).Job(); err == nil {
		t.Error("future-version job spec accepted")
	}
	// A v1 peer (bare-name engine wire) must be refused, not
	// misinterpreted.
	if _, err := (JobSpec{V: 1, Workload: "OLTP DB2", Engine: prefetch.Spec{Name: "none"}}).Job(); err == nil {
		t.Error("v1 job spec accepted")
	}
	// A v2 peer predates Config.MeasureOffsetInstrs: it would silently
	// drop the offset of an exact shard job and measure the wrong
	// interval, so it too must be refused.
	if _, err := (JobSpec{V: 2, Workload: "OLTP DB2", Engine: prefetch.Spec{Name: "none"}}).Job(); err == nil {
		t.Error("v2 job spec accepted")
	}
	if _, err := (WireResult{V: 0}).Result(); err == nil {
		t.Error("unversioned result accepted")
	}
}

// FuzzJobSpecRoundTrip fuzzes the wire decode path: any JSON the
// coordinator or a worker receives either fails decode/validation or
// survives a marshal/unmarshal round trip unchanged — the same
// guarantee FuzzArtifactRoundTrip gives the results store. Engine param
// payloads are part of the fuzzed surface.
func FuzzJobSpecRoundTrip(f *testing.F) {
	seed, err := EncodeJob(runner.Job{
		Label:    "seed",
		Workload: workload.OLTPDB2(),
		Config:   sim.DefaultConfig(),
		Engine:   prefetch.Spec{Name: "pif"},
	})
	if err != nil {
		f.Fatal(err)
	}
	b, _ := json.Marshal(seed)
	f.Add(string(b))
	tuned, err := EncodeJob(runner.Job{
		Label:    "tuned",
		Workload: workload.WebApache(),
		Config:   sim.DefaultConfig(),
		Engine:   prefetch.Spec{Name: "tifs", Params: map[string]float64{"budget_kb": 64}},
	})
	if err != nil {
		f.Fatal(err)
	}
	tb, _ := json.Marshal(tuned)
	f.Add(string(tb))
	f.Add(`{"v":3,"workload":"OLTP DB2","engine":{"name":"none"},"source":{"kind":"slice","path":"/x","window":{"Off":1,"Len":2}}}`)
	f.Add(`{"v":3,"workload":"OLTP DB2","engine":{"name":"pif","params":{"history":2048,"index":512}}}`)
	f.Add(`{"v":3,"workload":"OLTP DB2","engine":{"name":"pif","params":{"history":1e309}}}`)
	f.Add(`{"v":3,"workload":"OLTP DB2","engine":{"name":"none"},"config":{"WarmupInstrs":10,"MeasureOffsetInstrs":5,"MeasureInstrs":10}}`)
	f.Add(`{"v":2,"workload":"OLTP DB2","engine":{"name":"none"}}`)
	f.Add(`{"v":1,"workload":"OLTP DB2","prefetcher":"none"}`)
	f.Add(`{"v":99}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, in string) {
		var spec JobSpec
		if err := json.Unmarshal([]byte(in), &spec); err != nil {
			return
		}
		job, err := spec.Job()
		if err != nil {
			return
		}
		// A decodable job must re-encode to an equivalent spec.
		spec2, err := EncodeJob(job)
		if err != nil {
			t.Fatalf("decoded job does not re-encode: %v", err)
		}
		b1, _ := json.Marshal(spec2)
		job2, err := spec2.Job()
		if err != nil {
			t.Fatalf("re-encoded spec does not decode: %v", err)
		}
		spec3, err := EncodeJob(job2)
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := json.Marshal(spec3)
		if string(b1) != string(b2) {
			t.Fatalf("round trip not stable:\n%s\n%s", b1, b2)
		}
	})
}
