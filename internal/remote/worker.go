package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/httpapi"
	"repro/internal/runner"
)

// leasePollMS is the long-poll wait a worker requests per lease call.
const leasePollMS = 2000

// Worker pulls tasks from a coordinator and runs them on the local
// machine: register, lease up to Parallel tasks, heartbeat while they
// run, post each result with its task ID as the idempotency key. A
// worker that loses a lease (the heartbeat response disowns the task)
// cancels the local job and never posts its result; a worker that dies
// simply stops heartbeating and the coordinator re-queues its tasks. A
// worker whose registration is lost (404 on lease or heartbeat after a
// coordinator restart) cancels its in-flight tasks and re-registers
// for a fresh worker ID.
type Worker struct {
	// Coord is the coordinator address (host:port or http://host:port).
	Coord string
	// Name labels the worker in coordinator diagnostics.
	Name string
	// Parallel is the number of tasks run concurrently (and the worker
	// pool size); <= 0 means GOMAXPROCS.
	Parallel int
	// Token authenticates against a token-protected coordinator
	// (pifcoord -auth-token); "" for an open one.
	Token string

	hc   *http.Client
	base string

	mu       sync.Mutex
	workerID string
	inflight map[int]context.CancelFunc // taskID -> cancel (lease lost / shutdown)
}

// running is one leased task being executed.
type running struct {
	lease Lease
	job   runner.Job
}

// Run executes the worker loop until ctx is canceled or the coordinator
// refuses it (registration on a closed coordinator). In-flight tasks at
// cancellation are abandoned unposted: the coordinator's heartbeat
// deadline re-queues them, which is exactly the kill-a-worker failure
// path.
func (w *Worker) Run(ctx context.Context) error {
	w.base = w.Coord
	if !strings.Contains(w.base, "://") {
		w.base = "http://" + w.base
	}
	w.base = strings.TrimSuffix(w.base, "/")
	w.hc = httpapi.Client(w.Token)
	w.inflight = make(map[int]context.CancelFunc)

	slots := runner.Workers(w.Parallel)

	reg, err := w.register(ctx)
	if err != nil {
		return err
	}
	ttl := time.Duration(reg.LeaseTTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}

	// Heartbeat at a third of the lease TTL: two beats may be lost
	// before the coordinator declares the worker dead.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(hbCtx, ttl/3)
	}()
	defer wg.Wait()

	sem := make(chan struct{}, slots)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Block for a free slot before leasing, so the worker never
		// holds leases it cannot start.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		w.mu.Lock()
		workerID := w.workerID
		w.mu.Unlock()
		var resp leaseResponse
		err := httpJSON(ctx, w.hc, http.MethodPost, w.base+"/v1/lease",
			leaseRequest{V: WireVersion, WorkerID: workerID, Max: 1, WaitMS: leasePollMS}, &resp)
		if err != nil {
			<-sem
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if isNotFound(err) {
				// The coordinator does not know this worker: it restarted
				// and lost its in-memory state. Every lease died with it —
				// cancel in-flight tasks so their results are never posted
				// under the dead ID — then re-register for a fresh one.
				w.cancelInflight()
				if _, rerr := w.register(ctx); rerr == nil {
					continue
				} else if errors.Is(rerr, runner.ErrBackendClosed) {
					// Re-registration refused: the coordinator is
					// shutting down, same as a refusal at startup.
					return rerr
				}
				// Re-registration failed transiently: fall through to
				// the backoff and retry (the stale ID will 404 again).
			}
			// Coordinator unreachable or refusing: back off and retry.
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if len(resp.Leases) == 0 {
			<-sem
			continue
		}
		lease := resp.Leases[0]
		jobCtx, cancel := context.WithCancel(ctx)
		w.mu.Lock()
		w.inflight[lease.TaskID] = cancel
		w.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			w.runTask(jobCtx, workerID, lease)
		}()
	}
}

// register obtains a (fresh) worker ID from the coordinator and installs
// it as the ID subsequent leases and heartbeats use.
func (w *Worker) register(ctx context.Context) (registerWorkerResponse, error) {
	var reg registerWorkerResponse
	if err := httpJSON(ctx, w.hc, http.MethodPost, w.base+"/v1/workers",
		registerWorkerRequest{V: WireVersion, Name: w.Name}, &reg); err != nil {
		return reg, fmt.Errorf("remote: worker register: %w", err)
	}
	w.mu.Lock()
	w.workerID = reg.WorkerID
	w.mu.Unlock()
	return reg, nil
}

// cancelInflight cancels every in-flight task; used when the worker's
// registration is lost and its leases are void.
func (w *Worker) cancelInflight() {
	w.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(w.inflight))
	for _, c := range w.inflight {
		cancels = append(cancels, c)
	}
	w.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// runTask executes one leased task and posts its result. A task whose
// context dies (worker shutdown or lost lease) is abandoned: the result
// is never posted, and the coordinator's lease deadline re-queues it.
func (w *Worker) runTask(ctx context.Context, workerID string, lease Lease) {
	defer func() {
		w.mu.Lock()
		delete(w.inflight, lease.TaskID)
		w.mu.Unlock()
	}()
	var res runner.Result
	job, err := lease.Spec.Job()
	if err != nil {
		// An undecodable job is a hard, deterministic failure: post it,
		// re-leasing elsewhere cannot help.
		res = runner.Result{Index: 0, Label: lease.Spec.Label, Err: err}
	} else {
		// Each task gets a private single-worker LocalBackend: job
		// contexts stay independently cancelable (lost lease cancels
		// this task only) at the cost of one goroutine per task.
		be := runner.NewLocalBackend(1)
		results, rerr := runner.RunOn(ctx, be, []runner.Job{job}, nil)
		be.Close()
		if len(results) == 1 {
			res = results[0]
		} else {
			res = runner.Result{Label: lease.Spec.Label, Err: rerr}
		}
	}
	if ctx.Err() != nil {
		// Shutdown or lost lease: abandon. Posting now could race a
		// re-lease; the coordinator's idempotency key would drop one
		// copy, but the kill path must look identical whether the
		// process died or was canceled.
		return
	}
	// Post with retries: completions are idempotent (task ID keyed), so
	// resending after a timeout is safe.
	for attempt := 0; attempt < 3; attempt++ {
		var cr completeResponse
		err := httpJSON(ctx, w.hc, http.MethodPost, w.base+"/v1/complete",
			completeRequest{V: WireVersion, WorkerID: workerID, TaskID: lease.TaskID, Result: EncodeResult(res)}, &cr)
		if err == nil {
			return
		}
		if isNotFound(err) {
			// The coordinator no longer knows this worker or task
			// (restart, or the run drained without us): the post can
			// never be accepted, so retrying is pointless.
			return
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return
		}
	}
}

// heartbeatLoop extends the worker's leases and cancels tasks the
// coordinator has disowned.
func (w *Worker) heartbeatLoop(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		w.mu.Lock()
		ids := make([]int, 0, len(w.inflight))
		for id := range w.inflight {
			ids = append(ids, id)
		}
		workerID := w.workerID
		w.mu.Unlock()
		if len(ids) == 0 {
			continue
		}
		var resp heartbeatResponse
		err := httpJSON(ctx, w.hc, http.MethodPost, w.base+"/v1/heartbeat",
			heartbeatRequest{V: WireVersion, WorkerID: workerID, TaskIDs: ids}, &resp)
		if err != nil {
			if isNotFound(err) {
				// Registration lost (coordinator restart): every lease is
				// void. Cancel the local jobs; the lease loop re-registers.
				w.cancelInflight()
			}
			continue // missed beat; the next one may still make the deadline
		}
		for _, id := range resp.Lost {
			w.mu.Lock()
			cancel := w.inflight[id]
			w.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		}
	}
}
