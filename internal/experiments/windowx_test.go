package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// windowScale is a miniature configuration for the window-sweep tests:
// two workloads, short intervals, tiny chunks so slices cross shard
// boundaries.
func windowScale(storeDir string) Options {
	opts := QuickOptions()
	opts.Workloads = opts.Workloads[:2]
	opts.WarmupInstrs = 200_000
	opts.MeasureInstrs = 100_000
	opts.StoreDir = storeDir
	opts.TraceChunkRecords = 1 << 13
	return opts
}

// TestSweepWindowShape locks the sweep-window artifact's structure: one
// UIPC/coverage cell per (workload × offset × length), absolute windows
// resolved from the swept percentages, and positive UIPC everywhere.
func TestSweepWindowShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are skipped in -short mode")
	}
	e := NewEnv(windowScale(""))
	r, err := SweepWindow(e)
	if err != nil {
		t.Fatal(err)
	}
	opts := e.Options()
	if len(r.Workloads) != len(opts.Workloads) {
		t.Fatalf("workloads = %v", r.Workloads)
	}
	for i, pct := range r.OffsetPcts {
		if want := opts.WarmupInstrs * uint64(pct) / 100; r.Offsets[i] != want {
			t.Errorf("offset[%d] = %d, want %d", i, r.Offsets[i], want)
		}
	}
	for i, pct := range r.LenPcts {
		if want := opts.MeasureInstrs * uint64(pct) / 100; r.Lens[i] != want {
			t.Errorf("len[%d] = %d, want %d", i, r.Lens[i], want)
		}
	}
	for wi, w := range r.Workloads {
		for oi := range r.OffsetPcts {
			for li := range r.LenPcts {
				if u := r.UIPC[wi][oi][li]; u <= 0 || u > 4 {
					t.Errorf("%s o%d/l%d: UIPC = %v", w, r.OffsetPcts[oi], r.LenPcts[li], u)
				}
				if c := r.Coverage[wi][oi][li]; c < 0 || c > 1 {
					t.Errorf("%s o%d/l%d: coverage = %v", w, r.OffsetPcts[oi], r.LenPcts[li], c)
				}
			}
		}
	}
	text := r.Render()
	for _, want := range []string{"sweep-window", "o0/l50", "o100/l100"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Every grid cell landed in the per-job results collection.
	jobs := e.JobResults()
	wantJobs := len(r.Workloads) * len(r.OffsetPcts) * len(r.LenPcts)
	if len(jobs) != wantJobs {
		t.Errorf("collected %d per-job results, want %d", len(jobs), wantJobs)
	}
}

// TestSweepWindowStoreMemoryParity is the environment half of the slice
// determinism contract: the whole sweep-window artifact — every cell a
// window replay — must be byte-identical whether windows are sliced from
// a spilled on-disk store (sim.SliceSource over StoreReader.Seek, tiny
// chunks so windows span shard boundaries) or from the cached in-memory
// stream.
func TestSweepWindowStoreMemoryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are skipped in -short mode")
	}
	memEnv := NewEnv(windowScale(""))
	storeEnv := NewEnv(windowScale(t.TempDir()))
	mem, err := Run(memEnv, "sweep-window")
	if err != nil {
		t.Fatalf("in-memory: %v", err)
	}
	store, err := Run(storeEnv, "sweep-window")
	if err != nil {
		t.Fatalf("spilled: %v", err)
	}
	if mem.Text != store.Text {
		t.Errorf("store-sliced window sweep diverges from in-memory slicing:\n--- memory ---\n%s\n--- store ---\n%s",
			mem.Text, store.Text)
	}
}

// TestStoreDirAliasesTraceDir locks the deprecated-option shim: the old
// TraceDir field must behave exactly like StoreDir (same resolved pool,
// same spilled store), and StoreDir wins when both are set.
func TestStoreDirAliasesTraceDir(t *testing.T) {
	if o := (Options{TraceDir: "old"}); o.storeDir() != "old" {
		t.Errorf("TraceDir alias resolved to %q", o.storeDir())
	}
	if o := (Options{StoreDir: "new", TraceDir: "old"}); o.storeDir() != "new" {
		t.Errorf("StoreDir precedence resolved to %q", o.storeDir())
	}

	if testing.Short() {
		t.Skip("experiment tests are skipped in -short mode")
	}
	dir := t.TempDir()
	wl := workload.OLTPDB2()

	oldOpts := windowScale("")
	oldOpts.TraceDir = dir // deprecated spelling
	oldEnv := NewEnv(oldOpts)
	oldStore, err := oldEnv.Spill(wl)
	if err != nil {
		t.Fatalf("Spill via TraceDir: %v", err)
	}

	newEnv := NewEnv(windowScale(dir))
	newStore, err := newEnv.Spill(wl)
	if err != nil {
		t.Fatalf("Spill via StoreDir: %v", err)
	}
	if oldStore != newStore {
		t.Errorf("TraceDir spilled to %s, StoreDir to %s (aliases must share the pool)", oldStore, newStore)
	}
	if _, err := trace.ReadIndex(newStore); err != nil {
		t.Errorf("spilled store unreadable: %v", err)
	}
}
