package experiments

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fig3Geometry is the wide region used for the density study: Figure 3
// buckets region populations up to 17-32 blocks, so regions are measured
// with a 32-block window skewed after the trigger.
var fig3Geometry = core.Geometry{Prec: 8, Succ: 23}

// Fig3Result holds the Figure 3 data.
type Fig3Result struct {
	Workloads []string `json:"workloads"`
	// Density[workload][bucket]: fraction of spatial regions with
	// 1 / 2 / 3-4 / 5-8 / 9-16 / 17-32 accessed blocks.
	Density [][]float64 `json:"density"`
	// Discontinuity[workload][bucket]: fraction of spatial regions with
	// 1 / 2 / 3-4 / 5-8 / 9-16 discontinuous groups of sequential blocks.
	Discontinuity [][]float64 `json:"discontinuity"`
}

// DensityBuckets labels the Figure 3 (left) x-axis.
var DensityBuckets = []string{"1", "2", "3-4", "5-8", "9-16", "17-32"}

// DiscontinuityBuckets labels the Figure 3 (right) x-axis.
var DiscontinuityBuckets = []string{"1", "2", "3-4", "5-8", "9-16"}

// bucketIndex maps a count into the 1/2/3-4/5-8/9-16/17-32 bucketing.
func bucketIndex(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	default:
		return 5
	}
}

// Fig3 reproduces Figure 3: the spatial-region density distribution (left)
// and the distribution of discontinuous access groups within regions
// (right), measured by running the spatial compactor over the retire-order
// block stream. Only unique accesses per region are counted (the bit
// vector), avoiding over-counting from small loops, as in the paper.
func Fig3(e *Env) (Fig3Result, error) {
	opts := e.Options()
	n := len(opts.Workloads)
	res := Fig3Result{
		Workloads:     make([]string, n),
		Density:       make([][]float64, n),
		Discontinuity: make([][]float64, n),
	}
	err := e.ForEachWorkload(func(i int, wl workload.Profile) error {
		density := stats.NewHistogram()
		disc := stats.NewHistogram()
		sc := core.NewSpatialCompactor(fig3Geometry)
		var (
			lastBlk isa.Block
			have    bool
			instrs  uint64
		)
		observe := func(r core.Region, ok bool) {
			if !ok {
				return
			}
			density.Observe(bucketIndex(r.PopCount()))
			disc.Observe(bucketIndex(r.SeqGroups()))
		}
		if err := e.EachRecord(wl, func(rec trace.Record) {
			instrs++
			if instrs < opts.WarmupInstrs {
				return
			}
			b := rec.Block()
			if have && b == lastBlk {
				return
			}
			lastBlk, have = b, true
			r, ok := sc.Observe(b, rec.TL, false)
			observe(r, ok)
		}); err != nil {
			return err
		}
		observe(sc.Flush())

		dRow := make([]float64, len(DensityBuckets))
		for k := range dRow {
			dRow[k] = density.Fraction(k)
		}
		gRow := make([]float64, len(DiscontinuityBuckets))
		for k := range gRow {
			gRow[k] = disc.Fraction(k)
		}
		res.Workloads[i] = wl.Name
		res.Density[i] = dRow
		res.Discontinuity[i] = gRow
		return nil
	})
	return res, err
}

// MultiBlockFraction returns the fraction of regions with more than one
// accessed block for workload index i (the paper's ">50%" observation).
func (r Fig3Result) MultiBlockFraction(i int) float64 {
	return 1 - r.Density[i][0]
}

// DiscontinuousFraction returns the fraction of regions with discontinuous
// accesses for workload index i (the paper's "approximately one fifth").
func (r Fig3Result) DiscontinuousFraction(i int) float64 {
	return 1 - r.Discontinuity[i][0]
}

// Render formats both panels of Figure 3.
func (r Fig3Result) Render() string {
	left := &stats.Table{
		Title:   "Figure 3 (left): density of spatial regions (accessed blocks per region)",
		ColName: DensityBuckets,
	}
	right := &stats.Table{
		Title:   "Figure 3 (right): discontinuous access groups within spatial regions",
		ColName: DiscontinuityBuckets,
	}
	for i, w := range r.Workloads {
		left.AddRow(w, r.Density[i]...)
		right.AddRow(w, r.Discontinuity[i]...)
	}
	return left.Render(true) + "\n" + right.Render(true)
}

func init() {
	register("fig3", func(e *Env) (Report, error) {
		r, err := Fig3(e)
		if err != nil {
			return Report{}, err
		}
		return Report{ID: "fig3", Title: "Spatial region density and discontinuity", Text: r.Render(), Data: r}, nil
	})
}
