package experiments

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/streampred"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig7MaxLog2 is the largest jump-distance bucket rendered (the paper's
// x-axis runs to log2 = 25).
const Fig7MaxLog2 = 25

// Fig7Result holds the Figure 7 data: for each workload, the cumulative
// fraction of correct predictions whose replay trigger recurred at each
// log2 jump distance in the recorded history.
type Fig7Result struct {
	Workloads []string `json:"workloads"`
	// CDF[workload][log2 bucket 0..Fig7MaxLog2].
	CDF [][]float64 `json:"cdf"`
}

// Fig7 reproduces Figure 7 ("Weighted jump distance in history"): the
// retire-order block stream is recorded by the temporal-stream predictor,
// and every correct prediction (replay advance) is attributed to the jump
// distance between the two occurrences of the replay's trigger. Short
// distances are frequently repeating streams; long distances are old
// streams — the paper's case for deep history storage.
func Fig7(e *Env) (Fig7Result, error) {
	opts := e.Options()
	n := len(opts.Workloads)
	res := Fig7Result{
		Workloads: make([]string, n),
		CDF:       make([][]float64, n),
	}
	err := e.ForEachWorkload(func(i int, wl workload.Profile) error {
		hist := stats.NewHistogram()
		p := streampred.New(streampred.DefaultConfig())
		measuring := false
		p.AdvanceHook = func(openDist int) {
			if measuring && openDist > 0 {
				hist.Observe(stats.Log2Bucket(uint64(openDist)))
			}
		}
		var (
			instrs  uint64
			lastBlk isa.Block
			have    bool
		)
		if err := e.EachRecord(wl, func(rec trace.Record) {
			instrs++
			measuring = instrs >= opts.WarmupInstrs
			b := rec.Block()
			if have && b == lastBlk {
				return
			}
			lastBlk, have = b, true
			p.Observe(b)
		}); err != nil {
			return err
		}

		cdf := make([]float64, Fig7MaxLog2+1)
		var cum uint64
		for k := 0; k <= Fig7MaxLog2; k++ {
			cum += hist.Count(k)
			if hist.Total() > 0 {
				cdf[k] = float64(cum) / float64(hist.Total())
			}
		}
		res.Workloads[i] = wl.Name
		res.CDF[i] = cdf
		return nil
	})
	return res, err
}

// FractionBeyond returns, for workload i, the fraction of correct
// predictions from streams older than 2^log2Dist blocks of history.
func (r Fig7Result) FractionBeyond(i, log2Dist int) float64 {
	if log2Dist < 0 || log2Dist > Fig7MaxLog2 {
		return 0
	}
	return 1 - r.CDF[i][log2Dist]
}

// Render formats the CDF at the odd log2 points the paper labels.
func (r Fig7Result) Render() string {
	var cols []string
	for k := 1; k <= Fig7MaxLog2; k += 2 {
		cols = append(cols, fmt.Sprintf("2^%d", k))
	}
	tab := &stats.Table{
		Title:   "Figure 7: weighted jump distance in history (CDF of correct predictions)",
		ColName: cols,
	}
	for i, w := range r.Workloads {
		var vals []float64
		for k := 1; k <= Fig7MaxLog2; k += 2 {
			vals = append(vals, r.CDF[i][k])
		}
		tab.AddRow(w, vals...)
	}
	return tab.Render(true)
}

func init() {
	register("fig7", func(e *Env) (Report, error) {
		r, err := Fig7(e)
		if err != nil {
			return Report{}, err
		}
		return Report{ID: "fig7", Title: "Weighted jump distance in history", Text: r.Render(), Data: r}, nil
	})
}
