package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// spillScale returns a miniature configuration: large enough that every
// trace-based artifact has signal, small enough to spill and replay
// several times in a unit test. The chunk size is tiny so replays cross
// many shard boundaries.
func spillScale(traceDir string) Options {
	opts := QuickOptions()
	opts.WarmupInstrs = 60_000
	opts.MeasureInstrs = 30_000
	opts.TraceDir = traceDir
	opts.TraceChunkRecords = 1 << 13
	return opts
}

// TestSpillByteIdenticalArtifacts asserts every trace-based artifact is
// byte-identical whether the environment holds streams in memory or
// spills them to a sharded store and replays from disk.
func TestSpillByteIdenticalArtifacts(t *testing.T) {
	spillOpts := spillScale(t.TempDir())
	memOpts := spillOpts
	memOpts.TraceDir = ""

	memEnv := NewEnv(memOpts)
	spillEnv := NewEnv(spillOpts)
	for _, id := range []string{"fig2", "fig3", "fig7", "fig8"} {
		mem, err := Run(memEnv, id)
		if err != nil {
			t.Fatalf("%s (in-memory): %v", id, err)
		}
		spill, err := Run(spillEnv, id)
		if err != nil {
			t.Fatalf("%s (spilled): %v", id, err)
		}
		if mem.Text != spill.Text {
			t.Errorf("%s: spilled replay diverges from in-memory run:\n--- memory ---\n%s\n--- spilled ---\n%s",
				id, mem.Text, spill.Text)
		}
	}
}

// TestSpillStoreReuse asserts the store is collected once and replayed:
// a second environment pointed at the same TraceDir must reuse the
// existing store rather than regenerate it.
func TestSpillStoreReuse(t *testing.T) {
	dir := t.TempDir()
	opts := spillScale(dir)
	wl := workload.OLTPDB2()

	env1 := NewEnv(opts)
	storeDir, err := env1.Spill(wl)
	if err != nil {
		t.Fatalf("Spill: %v", err)
	}
	ix, err := trace.ReadIndex(storeDir)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if want := opts.WarmupInstrs + opts.MeasureInstrs; ix.Records() != want {
		t.Fatalf("store holds %d records, want %d", ix.Records(), want)
	}
	before, err := os.Stat(filepath.Join(storeDir, trace.IndexName))
	if err != nil {
		t.Fatal(err)
	}

	env2 := NewEnv(opts)
	storeDir2, err := env2.Spill(wl)
	if err != nil {
		t.Fatalf("second Spill: %v", err)
	}
	if storeDir2 != storeDir {
		t.Fatalf("second env spilled to %s, want %s", storeDir2, storeDir)
	}
	after, err := os.Stat(filepath.Join(storeDir, trace.IndexName))
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Error("second env rewrote an up-to-date store instead of reusing it")
	}

	// A store written at a different scale must not be reused.
	bigger := opts
	bigger.MeasureInstrs += 10_000
	env3 := NewEnv(bigger)
	storeDir3, err := env3.Spill(wl)
	if err != nil {
		t.Fatalf("rescaled Spill: %v", err)
	}
	if storeDir3 == storeDir {
		t.Error("rescaled env reused a store with the wrong record count")
	}
}

// TestSpillStreamAndEachRecordAgree asserts the two access paths see the
// same records in the same order when spilling.
func TestSpillStreamAndEachRecordAgree(t *testing.T) {
	opts := spillScale(t.TempDir())
	env := NewEnv(opts)
	wl := workload.WebApache()

	fromStream, err := env.Stream(wl)
	if err != nil {
		t.Fatal(err)
	}
	var fromEach trace.Stream
	if err := env.EachRecord(wl, func(r trace.Record) { fromEach = append(fromEach, r) }); err != nil {
		t.Fatal(err)
	}
	if len(fromStream) != len(fromEach) {
		t.Fatalf("Stream %d records, EachRecord %d", len(fromStream), len(fromEach))
	}
	for i := range fromStream {
		if fromStream[i] != fromEach[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, fromStream[i], fromEach[i])
		}
	}
}
