package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fig8Geometry is the wide observation window for the offset study:
// Figure 8 (left) plots offsets from -4 to +12 around the trigger.
var fig8Geometry = core.Geometry{Prec: 4, Succ: 12}

// Fig8LeftResult holds the access-offset distribution per suite.
type Fig8LeftResult struct {
	Suites []string `json:"suites"`
	// Offsets runs -4..-1, 1..12 (the trigger itself is omitted, as in
	// the paper's figure).
	Offsets []int `json:"offsets"`
	// Frac[suite][offset index]: fraction of non-trigger references in
	// spatial regions at that offset.
	Frac [][]float64 `json:"frac"`
}

// Fig8Left reproduces Figure 8 (left), the distribution of accesses around
// the trigger block, aggregated per suite (OLTP/DSS/Web) as in the paper.
// Workloads are analyzed in parallel into private histograms, then merged
// per suite in workload order, so the aggregation is deterministic.
func Fig8Left(e *Env) (Fig8LeftResult, error) {
	opts := e.Options()
	perWL := make([]*stats.Histogram, len(opts.Workloads))
	err := e.ForEachWorkload(func(i int, wl workload.Profile) error {
		h := stats.NewHistogram()
		perWL[i] = h
		sc := core.NewSpatialCompactor(fig8Geometry)
		var (
			lastBlk isa.Block
			have    bool
			instrs  uint64
		)
		observe := func(r core.Region, ok bool) {
			if !ok {
				return
			}
			for _, b := range r.Blocks(fig8Geometry, nil) {
				if d := r.Trigger.Distance(b); d != 0 {
					h.Observe(d)
				}
			}
		}
		if err := e.EachRecord(wl, func(rec trace.Record) {
			instrs++
			if instrs < opts.WarmupInstrs {
				return
			}
			b := rec.Block()
			if have && b == lastBlk {
				return
			}
			lastBlk, have = b, true
			r, emitted := sc.Observe(b, rec.TL, false)
			observe(r, emitted)
		}); err != nil {
			return err
		}
		observe(sc.Flush())
		return nil
	})
	if err != nil {
		return Fig8LeftResult{}, err
	}

	perSuite := map[string]*stats.Histogram{}
	var suites []string
	for i, wl := range opts.Workloads {
		h, ok := perSuite[wl.Suite]
		if !ok {
			h = stats.NewHistogram()
			perSuite[wl.Suite] = h
			suites = append(suites, wl.Suite)
		}
		for d := -fig8Geometry.Prec; d <= fig8Geometry.Succ; d++ {
			if n := perWL[i].Count(d); n > 0 {
				h.ObserveN(d, n)
			}
		}
	}

	res := Fig8LeftResult{Suites: suites}
	for d := -fig8Geometry.Prec; d <= fig8Geometry.Succ; d++ {
		if d != 0 {
			res.Offsets = append(res.Offsets, d)
		}
	}
	for _, s := range suites {
		h := perSuite[s]
		row := make([]float64, len(res.Offsets))
		for i, d := range res.Offsets {
			row[i] = h.Fraction(d)
		}
		res.Frac = append(res.Frac, row)
	}
	return res, nil
}

// Render formats the offset distribution.
func (r Fig8LeftResult) Render() string {
	cols := make([]string, len(r.Offsets))
	for i, d := range r.Offsets {
		cols[i] = fmt.Sprintf("%+d", d)
	}
	tab := &stats.Table{
		Title:   "Figure 8 (left): references within spatial regions by distance from trigger",
		ColName: cols,
	}
	for i, s := range r.Suites {
		tab.AddRow(s, r.Frac[i]...)
	}
	return tab.Render(true)
}

// Fig8RegionSizes are the swept region sizes (total blocks per record).
var Fig8RegionSizes = []int{1, 2, 4, 6, 8}

// fig8GeometryFor maps a region size to a geometry skewed after the
// trigger, keeping at most two preceding blocks (the paper's conclusion).
func fig8GeometryFor(size int) core.Geometry {
	prec := 0
	switch {
	case size >= 8:
		prec = 2
	case size >= 4:
		prec = 1
	}
	return core.Geometry{Prec: prec, Succ: size - 1 - prec}
}

// Fig8RightResult holds the region-size sensitivity split by trap level.
type Fig8RightResult struct {
	Workloads []string `json:"workloads"`
	Sizes     []int    `json:"sizes"`
	// TL0[workload][size index] and TL1[...]: PIF coverage of correct-path
	// misses at that trap level.
	TL0 [][]float64 `json:"tl0"`
	TL1 [][]float64 `json:"tl1"`
}

// Fig8Result bundles both panels of Figure 8 for the structured report.
type Fig8Result struct {
	Left  Fig8LeftResult  `json:"left"`
	Right Fig8RightResult `json:"right"`
}

// Fig8Right reproduces Figure 8 (right): *predictor* coverage as the
// spatial region size varies, reported separately for application (TL0)
// and trap handler (TL1) fetches. Following the paper's sensitivity
// methodology (see Section 5.4's note), this is a trace-based measurement
// over the retire-order stream: the cache is not perturbed, so the effect
// of the region geometry is isolated from pollution artifacts.
func Fig8Right(e *Env) (Fig8RightResult, error) {
	opts := e.Options()
	nw, ns := len(opts.Workloads), len(Fig8RegionSizes)
	res := Fig8RightResult{
		Sizes:     Fig8RegionSizes,
		Workloads: make([]string, nw),
		TL0:       make([][]float64, nw),
		TL1:       make([][]float64, nw),
	}
	for i, wl := range opts.Workloads {
		res.Workloads[i] = wl.Name
		res.TL0[i] = make([]float64, ns)
		res.TL1[i] = make([]float64, ns)
	}
	// The (workload × region size) design space as a sweep spec; the cells
	// are trace-based analyses rather than simulations, so the grid fans
	// out through EachGrid and each cell writes its own result slot.
	_, err := e.EachGrid(sweep.Spec{
		Name: "fig8R",
		Base: opts.SimConfig(),
		Axes: []sweep.Axis{
			sweep.WorkloadAxis("workload", opts.Workloads),
			sweep.ParamAxis("size", "size", func(v int) string { return fmt.Sprintf("%d", v) }, nil, Fig8RegionSizes),
		},
	}, func(c *sweep.Cell) error {
		wi, si := c.Index/ns, c.Index%ns
		cfg := core.DefaultConfig()
		cfg.Geometry = fig8GeometryFor(int(c.Settings.Params["size"]))
		var err error
		res.TL0[wi][si], res.TL1[wi][si], err = predictorCoverageByTL(e, c.Settings.Workload, cfg)
		return err
	})
	return res, err
}

// exposureIssuer records would-be prefetches with a TTL clock, standing in
// for the cache in trace-based predictor-coverage measurements.
type exposureIssuer struct {
	gen map[isa.Block]uint64
	now uint64
}

func newExposureIssuer() *exposureIssuer {
	return &exposureIssuer{gen: make(map[isa.Block]uint64)}
}

// Contains implements prefetch.Issuer (nothing is ever resident, so every
// prediction is issued and recorded).
func (x *exposureIssuer) Contains(isa.Block) bool { return false }

// Prefetch implements prefetch.Issuer.
func (x *exposureIssuer) Prefetch(b isa.Block) { x.gen[b] = x.now }

func (x *exposureIssuer) predicted(b isa.Block) bool {
	g, ok := x.gen[b]
	return ok && x.now-g <= exposureTTL
}

// predictorCoverageByTL feeds the block-grain retire stream through PIF's
// recording and replay machinery and measures, per trap level, the
// fraction of block events that had been predicted (exposed) beforehand.
func predictorCoverageByTL(e *Env, wl workload.Profile, cfg core.Config) (tl0, tl1 float64, err error) {
	opts := e.Options()
	pif := core.New(cfg)
	iss := newExposureIssuer()
	var (
		instrs  uint64
		covered [isa.NumTrapLevels]uint64
		total   [isa.NumTrapLevels]uint64
		lastBlk [isa.NumTrapLevels]isa.Block
		haveBlk [isa.NumTrapLevels]bool
	)
	err = e.EachRecord(wl, func(rec trace.Record) {
		instrs++
		tl := rec.TL
		b := rec.Block()
		if haveBlk[tl] && lastBlk[tl] == b {
			return
		}
		lastBlk[tl], haveBlk[tl] = b, true
		iss.now++
		if instrs >= opts.WarmupInstrs {
			total[tl]++
			if iss.predicted(b) || pif.InWindow(b, tl) {
				covered[tl]++
			}
		}
		pif.OnAccess(prefetch.AccessEvent{Block: b, TL: tl}, iss)
		pif.OnRetire(rec, true, iss)
	})
	if err != nil {
		return 0, 0, err
	}
	cov := func(tl isa.TrapLevel) float64 {
		if total[tl] == 0 {
			return 0
		}
		return float64(covered[tl]) / float64(total[tl])
	}
	return cov(isa.TL0), cov(isa.TL1), nil
}

// Render formats the region-size sensitivity like the paper's grouped bars.
func (r Fig8RightResult) Render() string {
	cols := make([]string, 0, 2*len(r.Sizes))
	for _, s := range r.Sizes {
		cols = append(cols, fmt.Sprintf("TL0/%d", s))
	}
	for _, s := range r.Sizes {
		cols = append(cols, fmt.Sprintf("TL1/%d", s))
	}
	tab := &stats.Table{
		Title:   "Figure 8 (right): coverage vs spatial region size, by trap level",
		ColName: cols,
	}
	for i, w := range r.Workloads {
		vals := append(append([]float64{}, r.TL0[i]...), r.TL1[i]...)
		tab.AddRow(w, vals...)
	}
	return tab.Render(true)
}

func init() {
	register("fig8", func(e *Env) (Report, error) {
		left, err := Fig8Left(e)
		if err != nil {
			return Report{}, err
		}
		right, err := Fig8Right(e)
		if err != nil {
			return Report{}, err
		}
		return Report{
			ID:    "fig8",
			Title: "Trigger-offset distribution and region size sensitivity",
			Text:  left.Render() + "\n" + right.Render(),
			Data:  Fig8Result{Left: left, Right: right},
		}, nil
	})
}
