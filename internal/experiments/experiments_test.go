package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// sharedEnv caches generated streams across the test file (QuickOptions
// scale); building it once keeps the suite fast.
var (
	envOnce sync.Once
	env     *Env
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment tests are skipped in -short mode")
	}
	envOnce.Do(func() { env = NewEnv(QuickOptions()) })
	return env
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := DefaultOptions()
	bad.Workloads = nil
	if bad.Validate() == nil {
		t.Error("empty workloads accepted")
	}
	bad = DefaultOptions()
	bad.MeasureInstrs = 0
	if bad.Validate() == nil {
		t.Error("zero measurement accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig10", "fig2", "fig3", "fig7", "fig8", "fig9", "sweep-history", "sweep-l1", "sweep-window", "table1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	e := NewEnv(QuickOptions())
	if _, err := Run(e, "fig99"); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestFig2Shape(t *testing.T) {
	e := testEnv(t)
	r, err := Fig2(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 6 {
		t.Fatalf("workloads = %v", r.Workloads)
	}
	for i, w := range r.Workloads {
		// Robust shape assertions (see EXPERIMENTS.md for the Fig 2
		// deviation note: our single-core substrate fragments the miss
		// stream less than the paper's 16-core full-system traces, so
		// Miss does not fall far below Retire; the remaining ordering
		// and the near-perfect RetireSep level do reproduce).
		if r.Access[i] > r.Retire[i]+0.03 {
			t.Errorf("%s: Access %.3f above Retire %.3f (wrong-path noise should hurt)", w, r.Access[i], r.Retire[i])
		}
		if r.RetireSep[i]+0.03 < r.Retire[i] {
			t.Errorf("%s: RetireSep %.3f well below Retire %.3f", w, r.RetireSep[i], r.RetireSep[i])
		}
		if r.RetireSep[i] < 0.80 {
			t.Errorf("%s: RetireSep coverage %.3f, want >= 0.80 at quick scale", w, r.RetireSep[i])
		}
		for _, v := range [][2]interface{}{{r.Miss[i], "Miss"}, {r.Access[i], "Access"}, {r.Retire[i], "Retire"}} {
			if v[0].(float64) < 0.5 || v[0].(float64) > 1.0 {
				t.Errorf("%s: %s coverage %.3f out of range", w, v[1], v[0].(float64))
			}
		}
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFig3Shape(t *testing.T) {
	e := testEnv(t)
	r, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range r.Workloads {
		multi := r.MultiBlockFraction(i)
		if multi < 0.40 {
			t.Errorf("%s: multi-block region fraction %.3f, want > 0.40 (paper: >50%%)", w, multi)
		}
		disc := r.DiscontinuousFraction(i)
		if disc < 0.01 || disc > 0.60 {
			t.Errorf("%s: discontinuous fraction %.3f out of plausible range (paper: ~20%%)", w, disc)
		}
		// Distributions sum to 1.
		var dsum float64
		for _, v := range r.Density[i] {
			dsum += v
		}
		if dsum < 0.999 || dsum > 1.001 {
			t.Errorf("%s: density distribution sums to %.4f", w, dsum)
		}
	}
	if !strings.Contains(r.Render(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFig7Shape(t *testing.T) {
	e := testEnv(t)
	r, err := Fig7(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range r.Workloads {
		// CDF must be monotone and end at ~1.
		cdf := r.CDF[i]
		for k := 1; k < len(cdf); k++ {
			if cdf[k] < cdf[k-1] {
				t.Fatalf("%s: CDF not monotone at %d", w, k)
			}
		}
		if cdf[len(cdf)-1] < 0.999 {
			t.Errorf("%s: CDF ends at %.4f", w, cdf[len(cdf)-1])
		}
		// The paper's claim: old streams contribute substantially — a
		// meaningful fraction of predictions come from jumps beyond 2^10.
		if old := r.FractionBeyond(i, 10); old < 0.05 {
			t.Errorf("%s: only %.3f of predictions from jumps beyond 2^10 (deep history unnecessary?)", w, old)
		}
	}
}

func TestFig8LeftShape(t *testing.T) {
	e := testEnv(t)
	r, err := Fig8Left(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Suites) != 3 {
		t.Fatalf("suites = %v", r.Suites)
	}
	for i, s := range r.Suites {
		frac := func(d int) float64 {
			for j, off := range r.Offsets {
				if off == d {
					return r.Frac[i][j]
				}
			}
			t.Fatalf("offset %d missing", d)
			return 0
		}
		// Immediately succeeding block dominates; far blocks decay.
		if frac(1) < frac(8) {
			t.Errorf("%s: +1 (%.3f) should dominate +8 (%.3f)", s, frac(1), frac(8))
		}
		if frac(1) < frac(-4) {
			t.Errorf("%s: +1 (%.3f) should dominate -4 (%.3f)", s, frac(1), frac(-4))
		}
		// Preceding blocks occur with significant frequency (the paper's
		// argument for keeping two blocks before the trigger).
		if frac(-1)+frac(-2) < 0.01 {
			t.Errorf("%s: backward accesses too rare (%.4f)", s, frac(-1)+frac(-2))
		}
	}
}

func TestFig8RightShape(t *testing.T) {
	e := testEnv(t)
	r, err := Fig8Right(e)
	if err != nil {
		t.Fatal(err)
	}
	var tl1First, tl1Last float64
	for i, w := range r.Workloads {
		last := len(r.Sizes) - 1
		// Region size 8 must beat size 1 on TL0 coverage.
		if r.TL0[i][last] <= r.TL0[i][0] {
			t.Errorf("%s: TL0 coverage did not improve with region size (%.3f -> %.3f)",
				w, r.TL0[i][0], r.TL0[i][last])
		}
		// TL1 coverage must not regress badly per workload (small
		// ceiling-effect wiggles allowed) and must improve on average.
		if r.TL1[i][last] < r.TL1[i][0]-0.15 {
			t.Errorf("%s: TL1 coverage regressed with region size (%.3f -> %.3f)",
				w, r.TL1[i][0], r.TL1[i][last])
		}
		tl1First += r.TL1[i][0]
		tl1Last += r.TL1[i][last]
	}
	if tl1Last < tl1First {
		t.Errorf("mean TL1 coverage regressed with region size (%.3f -> %.3f)",
			tl1First/float64(len(r.Workloads)), tl1Last/float64(len(r.Workloads)))
	}
}

func TestFig9LeftShape(t *testing.T) {
	e := testEnv(t)
	r, err := Fig9Left(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range r.Workloads {
		cdf := r.CDF[i]
		for k := 1; k < len(cdf); k++ {
			if cdf[k] < cdf[k-1] {
				t.Fatalf("%s: CDF not monotone", w)
			}
		}
		// Medium/long streams dominate: streams of >= 2^4 regions should
		// contribute the majority of correct predictions.
		if frac := r.FractionFromStreamsAtLeast(i, 4); frac < 0.5 {
			t.Errorf("%s: streams >= 16 regions contribute only %.3f of predictions", w, frac)
		}
	}
}

func TestFig9RightShape(t *testing.T) {
	e := testEnv(t)
	r, err := Fig9Right(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range r.Workloads {
		row := r.Coverage[i]
		last := len(row) - 1
		// More history must not hurt substantially, and the largest size
		// must beat the smallest.
		if row[last] <= row[0] {
			t.Errorf("%s: coverage did not grow with history (%.3f -> %.3f)", w, row[0], row[last])
		}
		// Saturation: 128K should not be dramatically better than 32K
		// (the paper's engineering knee).
		i32 := indexOf(r.Sizes, 32<<10)
		if row[last]-row[i32] > 0.05 {
			t.Errorf("%s: coverage still rising sharply past 32K (%.3f -> %.3f)", w, row[i32], row[last])
		}
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func TestFig10Shape(t *testing.T) {
	e := testEnv(t)
	r, err := Fig10(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range r.Workloads {
		if r.PIFCov[i] <= r.NextLineCov[i] {
			t.Errorf("%s: PIF coverage %.3f <= next-line %.3f", w, r.PIFCov[i], r.NextLineCov[i])
		}
		if r.PIFCov[i] < r.TIFSCov[i] {
			t.Errorf("%s: PIF coverage %.3f < TIFS %.3f", w, r.PIFCov[i], r.TIFSCov[i])
		}
		if r.PIFCov[i] < 0.85 {
			t.Errorf("%s: PIF coverage %.3f, want >= 0.85 (paper: ~99%%)", w, r.PIFCov[i])
		}
		if r.TIFSCov[i] < 0.3 || r.TIFSCov[i] > 0.97 {
			t.Errorf("%s: TIFS coverage %.3f outside the paper's 65-90%% band (loosely)", w, r.TIFSCov[i])
		}
		// Speedups ordered; PIF converges to perfect.
		if r.PIFSpeedup[i] < r.TIFSSpeedup[i] || r.TIFSSpeedup[i] < r.NextLineSpeedup[i]-0.02 {
			t.Errorf("%s: speedup ordering broken: NL %.3f TIFS %.3f PIF %.3f",
				w, r.NextLineSpeedup[i], r.TIFSSpeedup[i], r.PIFSpeedup[i])
		}
		if r.PIFSpeedup[i] > r.PerfectSpeedup[i]*1.02 {
			t.Errorf("%s: PIF speedup %.3f exceeds perfect %.3f", w, r.PIFSpeedup[i], r.PerfectSpeedup[i])
		}
		if r.PIFSpeedup[i] < 1.0 {
			t.Errorf("%s: PIF slows down the machine (%.3f)", w, r.PIFSpeedup[i])
		}
	}
	// Headline: PIF mean speedup close to perfect's.
	if gap := r.MeanPerfectSpeedup() - r.MeanPIFSpeedup(); gap > 0.06 {
		t.Errorf("PIF mean %.3f too far from perfect mean %.3f",
			r.MeanPIFSpeedup(), r.MeanPerfectSpeedup())
	}
}

func TestTable1Renders(t *testing.T) {
	e := NewEnv(QuickOptions())
	r, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	text := r.Render()
	for _, want := range []string{"Table I", "OLTP DB2", "Web Zeus", "footprint"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestRunAllProducesReports(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	// A tiny suite keeps this integration test fast while exercising the
	// registry end to end.
	opts := QuickOptions()
	opts.Workloads = []workload.Profile{workload.DSSQry2()}
	opts.WarmupInstrs = 1_000_000
	opts.MeasureInstrs = 500_000
	e := NewEnv(opts)
	reports, err := RunAll(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(IDs()) {
		t.Fatalf("got %d reports, want %d", len(reports), len(IDs()))
	}
	for _, rep := range reports {
		if rep.Text == "" {
			t.Errorf("%s: empty report", rep.ID)
		}
	}
}
