package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The design-space sweep artifacts frame prefetcher evaluation the way the
// follow-up literature does (MANA, Ansari et al.): instead of one
// configuration per figure, a storage-budget or cache-geometry axis is
// swept end to end and every (workload × engine × setting) cell is a
// simulation job. The cells run over the XL suite by default
// (Options.SweepWorkloads overrides), whose footprints keep the axes
// differentiating where the standard six saturate.

// Per-entry storage accounting for history-budget sweeps, re-exported
// from the engines that declare them (the schemas' budget_kb derivations
// divide by these). The paper's PIF history holds spatial region records
// (a ~34-bit region-aligned trigger address plus a 7-bit neighbor bit
// vector, ~41 bits ≈ 6 bytes rounded to the next byte with
// valid/replacement state); TIFS logs raw block pointers (~36-bit block
// address ≈ 5 bytes). Budgets divide by these, so a grid column compares
// the engines at equal history storage, not equal entry counts.
const (
	PIFBytesPerRegion = core.PIFBytesPerRegion
	TIFSBytesPerBlock = prefetch.TIFSBytesPerBlock
)

// SweepHistoryBudgetsKB is the swept history storage budget. The paper's
// 32K-region PIF knee sits at 32K * 6B = 192KB, inside the sweep's upper
// half; the low end starves both engines visibly.
var SweepHistoryBudgetsKB = []int{8, 32, 128, 512, 2048}

// budgetAxis builds the history storage-budget axis: each value overlays
// budget_kb on the cell's engine spec, and the engine's own schema
// derives its history sizing from it (or ignores it, for history-less
// baselines).
func budgetAxis(kbs []int) sweep.Axis {
	return sweep.EngineParamAxis("budget", "budget_kb",
		func(v int) string { return fmt.Sprintf("%dkb", v) },
		func(v int) string { return fmt.Sprintf("%dKB", v) },
		kbs)
}

// l1Axis builds the L1-I capacity axis (sizes in bytes): each value
// mutates the cell's config.System. Shared by the sweep-l1 artifact and
// the CLI's "l1" axis so both produce identical cell keys for the same
// design point — per-job diffs across artifact and ad-hoc runs depend on
// the key format agreeing.
func l1Axis(sizesBytes []int) sweep.Axis {
	ax := sweep.Axis{Name: "l1"}
	for _, n := range sizesBytes {
		n := n
		ax.Values = append(ax.Values, sweep.Value{
			Key:  fmt.Sprintf("%dkb", n>>10),
			Name: fmt.Sprintf("%dKB", n>>10),
			Apply: func(s *sweep.Settings) {
				s.Sim.System.L1ISizeBytes = n
			},
		})
	}
	return ax
}

// SweepHistoryResult holds the MANA-style storage-budget sweep: PIF and
// TIFS coverage and speedup per workload as the history budget grows.
type SweepHistoryResult struct {
	Workloads []string `json:"workloads"`
	BudgetsKB []int    `json:"budgets_kb"`
	// Coverage of the no-prefetch baseline's correct-path misses,
	// [workload][budget index].
	PIFCov  [][]float64 `json:"pif_cov"`
	TIFSCov [][]float64 `json:"tifs_cov"`
	// Speedups over the no-prefetch baseline, [workload][budget index].
	PIFSpeedup  [][]float64 `json:"pif_speedup"`
	TIFSSpeedup [][]float64 `json:"tifs_speedup"`
}

// SweepHistory regenerates the history storage-budget design-space sweep:
// a no-prefetch baseline grid (one cell per workload) plus a
// (workload × engine × budget) grid, projected into per-engine coverage
// and speedup curves. Both grids' raw per-job results are persisted by
// `experiments -out` for per-cell diffing.
func SweepHistory(e *Env) (SweepHistoryResult, error) {
	wls := e.SweepWorkloads()
	scfg := e.Options().SimConfig()
	res := SweepHistoryResult{BudgetsKB: SweepHistoryBudgetsKB}

	baseGrid, err := e.RunGrid(sweep.Spec{
		Name:       "sweep-history-base",
		Base:       scfg,
		BaseEngine: prefetch.Spec{Name: "none"},
		Axes:       []sweep.Axis{sweep.WorkloadAxis("workload", wls)},
	})
	if err != nil {
		return res, err
	}
	g, err := e.RunGrid(sweep.Spec{
		Name: "sweep-history",
		Base: scfg,
		Axes: []sweep.Axis{
			sweep.WorkloadAxis("workload", wls),
			sweep.EngineAxis("engine", "pif", "tifs"),
			budgetAxis(SweepHistoryBudgetsKB),
		},
	})
	if err != nil {
		return res, err
	}

	nb := len(SweepHistoryBudgetsKB)
	for wi, wl := range wls {
		base := baseGrid.SimAt(wi)
		pifCov := make([]float64, nb)
		tifsCov := make([]float64, nb)
		pifSpd := make([]float64, nb)
		tifsSpd := make([]float64, nb)
		for bi := range SweepHistoryBudgetsKB {
			pif, tifs := g.SimAt(wi, 0, bi), g.SimAt(wi, 1, bi)
			pifCov[bi] = coverageVs(base, pif)
			tifsCov[bi] = coverageVs(base, tifs)
			pifSpd[bi] = speedupVs(base, pif)
			tifsSpd[bi] = speedupVs(base, tifs)
		}
		res.Workloads = append(res.Workloads, wl.Name)
		res.PIFCov = append(res.PIFCov, pifCov)
		res.TIFSCov = append(res.TIFSCov, tifsCov)
		res.PIFSpeedup = append(res.PIFSpeedup, pifSpd)
		res.TIFSSpeedup = append(res.TIFSSpeedup, tifsSpd)
	}
	return res, nil
}

// coverageVs returns the fraction of the baseline's correct-path misses a
// run eliminated (clamped at zero, as in Figure 10).
func coverageVs(base, r sim.Result) float64 {
	if base.CorrectMisses == 0 {
		return 0
	}
	c := 1 - float64(r.CorrectMisses)/float64(base.CorrectMisses)
	if c < 0 {
		c = 0
	}
	return c
}

// speedupVs returns the run's UIPC relative to the baseline's.
func speedupVs(base, r sim.Result) float64 {
	if base.UIPC == 0 {
		return 0
	}
	return r.UIPC / base.UIPC
}

// Render formats the budget sweep as coverage and speedup tables with one
// engine/budget column pair per swept point.
func (r SweepHistoryResult) Render() string {
	var covCols, spdCols []string
	for _, eng := range []string{"PIF", "TIFS"} {
		for _, kb := range r.BudgetsKB {
			covCols = append(covCols, fmt.Sprintf("%s/%dK", eng, kb))
			spdCols = append(spdCols, fmt.Sprintf("%s/%dK", eng, kb))
		}
	}
	cov := &stats.Table{
		Title:   "sweep-history: miss coverage vs history storage budget (KB)",
		ColName: covCols,
	}
	spd := &stats.Table{
		Title:   "sweep-history: speedup vs history storage budget (KB)",
		ColName: spdCols,
	}
	for i, w := range r.Workloads {
		cov.AddRow(w, append(append([]float64{}, r.PIFCov[i]...), r.TIFSCov[i]...)...)
		spd.AddRow(w, append(append([]float64{}, r.PIFSpeedup[i]...), r.TIFSSpeedup[i]...)...)
	}
	return cov.Render(true) + "\n" + spd.Render(false)
}

// SweepL1SizesKB is the swept L1-I capacity (the paper's Table I size,
// 64KB, sits mid-sweep).
var SweepL1SizesKB = []int{16, 32, 64, 128, 256}

// SweepL1Result holds the cache-geometry sweep: baseline and PIF UIPC per
// workload as the L1-I grows.
type SweepL1Result struct {
	Workloads []string `json:"workloads"`
	SizesKB   []int    `json:"sizes_kb"`
	// UIPC at each size, [workload][size index].
	BaseUIPC [][]float64 `json:"base_uipc"`
	PIFUIPC  [][]float64 `json:"pif_uipc"`
	// PIFSpeedup is PIF UIPC over the same-size no-prefetch baseline.
	PIFSpeedup [][]float64 `json:"pif_speedup"`
}

// SweepL1 regenerates the L1-I size design-space sweep: a
// (workload × engine × L1-I size) grid whose size axis mutates the
// config.System machine description, projected into UIPC curves. The
// interesting read is PIF compensating for capacity: PIF at a small L1-I
// approaches (or beats) the no-prefetch baseline at several times the
// size.
func SweepL1(e *Env) (SweepL1Result, error) {
	wls := e.SweepWorkloads()
	scfg := e.Options().SimConfig()
	res := SweepL1Result{SizesKB: SweepL1SizesKB}

	sizesBytes := make([]int, len(SweepL1SizesKB))
	for i, kb := range SweepL1SizesKB {
		sizesBytes[i] = kb << 10
	}
	g, err := e.RunGrid(sweep.Spec{
		Name: "sweep-l1",
		Base: scfg,
		Axes: []sweep.Axis{
			sweep.WorkloadAxis("workload", wls),
			sweep.EngineAxis("engine", "none", "pif"),
			l1Axis(sizesBytes),
		},
	})
	if err != nil {
		return res, err
	}

	for wi, wl := range wls {
		baseRow := make([]float64, len(SweepL1SizesKB))
		pifRow := make([]float64, len(SweepL1SizesKB))
		spdRow := make([]float64, len(SweepL1SizesKB))
		for si := range SweepL1SizesKB {
			base, pif := g.SimAt(wi, 0, si), g.SimAt(wi, 1, si)
			baseRow[si] = base.UIPC
			pifRow[si] = pif.UIPC
			spdRow[si] = speedupVs(base, pif)
		}
		res.Workloads = append(res.Workloads, wl.Name)
		res.BaseUIPC = append(res.BaseUIPC, baseRow)
		res.PIFUIPC = append(res.PIFUIPC, pifRow)
		res.PIFSpeedup = append(res.PIFSpeedup, spdRow)
	}
	return res, nil
}

// Render formats the L1-I size sweep.
func (r SweepL1Result) Render() string {
	var cols []string
	for _, eng := range []string{"base", "PIF"} {
		for _, kb := range r.SizesKB {
			cols = append(cols, fmt.Sprintf("%s/%dK", eng, kb))
		}
	}
	uipc := &stats.Table{
		Title:   "sweep-l1: UIPC vs L1-I size (KB), no-prefetch baseline and PIF",
		ColName: cols,
	}
	spdCols := make([]string, len(r.SizesKB))
	for i, kb := range r.SizesKB {
		spdCols[i] = fmt.Sprintf("%dK", kb)
	}
	spd := &stats.Table{
		Title:   "sweep-l1: PIF speedup over same-size baseline",
		ColName: spdCols,
	}
	for i, w := range r.Workloads {
		uipc.AddRow(w, append(append([]float64{}, r.BaseUIPC[i]...), r.PIFUIPC[i]...)...)
		spd.AddRow(w, r.PIFSpeedup[i]...)
	}
	return uipc.Render(false) + "\n" + spd.Render(false)
}

func init() {
	register("sweep-history", func(e *Env) (Report, error) {
		r, err := SweepHistory(e)
		if err != nil {
			return Report{}, err
		}
		return Report{
			ID:    "sweep-history",
			Title: "Coverage and speedup vs history storage budget (design-space sweep)",
			Text:  r.Render(),
			Data:  r,
		}, nil
	})
	register("sweep-l1", func(e *Env) (Report, error) {
		r, err := SweepL1(e)
		if err != nil {
			return Report{}, err
		}
		return Report{
			ID:    "sweep-l1",
			Title: "UIPC vs L1-I size (design-space sweep)",
			Text:  r.Render(),
			Data:  r,
		}, nil
	})
}

// axisErr builds the usage error for one malformed -axis token: every
// axis-spec failure names the exact flag value the user typed, so a long
// command line pinpoints its offending token instead of reporting a
// generic failure.
func axisErr(token, format string, args ...any) error {
	return fmt.Errorf("experiments: -axis %q: %s", token, fmt.Sprintf(format, args...))
}

// BuildSweep constructs an ad-hoc sweep spec from CLI axis specifications
// of the form "name=v1,v2,...", applied in flag order, plus optional
// engine specs from repeated -engine flags. Supported axes:
//
//   - workload=<suite or names>: "std" (the standard six), "xl" (the XL
//     suite), "all" (both), or comma-separated profile names ("OLTP DB2").
//   - engine=<engine specs>: prefetch engines ("none", "nextline",
//     "tifs", "pif", "pif-unlimited", ...), each optionally
//     parameterized against its schema ("pif:history=64K"). Defaults to
//     "pif" when absent. Specs with several parameters contain commas,
//     so they arrive through repeated -engine flags (engineSpecs)
//     instead; the two spellings build the same axis and may not be
//     combined.
//   - history=<entry counts>: history capacity in entries, with an
//     optional K/M suffix ("32K"); overlays the history param on each
//     cell's engine spec (PIF regions, TIFS blocks; history-less
//     engines ignore it by schema).
//   - budget=<KB values>: history storage budget in KB, with an optional
//     K/M suffix meaning KB multiples; overlays budget_kb, which each
//     engine's schema derives its history sizing from. Mutually
//     exclusive with history (the schemas reject the combination).
//   - l1=<sizes>: L1-I capacity with an optional K/M suffix in bytes
//     ("32K", "64K"); bare numbers mean KB.
//   - source=<record sources>: where each cell's instruction stream
//     comes from — "live" (execute the workload), "store" (replay the
//     workload's recorded stream: the spilled store when the options
//     name a store pool, the cached in-memory stream otherwise —
//     byte-identical either way), "slice@off:len"
//     (replay one window of it, K/M suffixes allowed), or either of the
//     latter with an explicit store directory appended ("store@DIR",
//     "slice@off:len@DIR", e.g. a store recorded by tracegen). A slice
//     cell replays its whole window from a cold start — warmup 0, the
//     window length as the measured interval — so several windows of one
//     recorded trace are comparable regardless of the run's
//     warmup/measure split (the sweep-window artifact's convention).
//   - shards=<counts>: how many window-shard jobs each cell's replay fans
//     out into (see sweep.ShardsAxis); cells on this axis need a
//     replayable source (a source axis value other than "live", or the
//     -shards flag's store requirements). "1" means unsharded. To shard
//     every cell without changing cell keys, use the -shards flag
//     (Spec.BaseShards) instead.
//
// The resulting spec validates each cell's engine parameters and system
// configuration at build/expansion time, so a bad parameter or an
// impossible geometry fails before any simulation starts. Malformed axis
// specs are usage errors quoting the offending -axis or -engine token.
func BuildSweep(e *Env, name string, axisSpecs, engineSpecs []string) (sweep.Spec, error) {
	opts := e.Options()
	if len(axisSpecs) == 0 && len(engineSpecs) == 0 {
		return sweep.Spec{}, fmt.Errorf("experiments: sweep needs at least one -axis or -engine")
	}
	// The name doubles as the stored grid-summary artifact ID; reject a
	// name that would only fail at persistence time, after the whole grid
	// has already simulated.
	if !report.ValidArtifactID(name) {
		return sweep.Spec{}, fmt.Errorf("experiments: sweep name %q is not a valid artifact ID (alphanumeric start, then [A-Za-z0-9._-], at most 64 bytes, not \"run\")", name)
	}
	spec := sweep.Spec{
		Name:       name,
		Base:       opts.SimConfig(),
		BaseEngine: prefetch.Spec{Name: "pif"},
	}
	seen := map[string]bool{}
	for _, as := range axisSpecs {
		axName, vals, err := splitAxisSpec(as)
		if err != nil {
			return sweep.Spec{}, err
		}
		if seen[axName] {
			return sweep.Spec{}, axisErr(as, "duplicate axis %q (each axis may appear once)", axName)
		}
		seen[axName] = true
		var ax sweep.Axis
		switch axName {
		case "workload":
			wls, err := resolveWorkloads(vals)
			if err != nil {
				return sweep.Spec{}, axisErr(as, "%v", err)
			}
			ax = sweep.WorkloadAxis("workload", wls)
		case "engine":
			ax, err = engineSpecAxis(vals, func(err error) error {
				return axisErr(as, "%v", err)
			})
			if err != nil {
				return sweep.Spec{}, err
			}
		case "history":
			ints, err := parseSizes(vals, 1)
			if err != nil {
				return sweep.Spec{}, axisErr(as, "%v", err)
			}
			ax = sweep.EngineParamAxis("history", "history",
				func(v int) string { return strconv.Itoa(v) }, nil, ints)
		case "budget":
			ints, err := parseSizes(vals, 1)
			if err != nil {
				return sweep.Spec{}, axisErr(as, "%v", err)
			}
			ax = budgetAxis(ints)
		case "l1":
			// Bare numbers mean KB; suffixed values are bytes ("64K").
			ints, err := parseSizes(vals, 1024)
			if err != nil {
				return sweep.Spec{}, axisErr(as, "%v", err)
			}
			// The Finish hook used to validate each cell's system after
			// axis mutation; with cells now validated through engine
			// schemas instead, check the swept geometries here so an
			// impossible size still fails before any simulation starts.
			for _, n := range ints {
				sys := opts.SimConfig().System
				sys.L1ISizeBytes = n
				if err := sys.Validate(); err != nil {
					return sweep.Spec{}, axisErr(as, "%v", err)
				}
			}
			ax = l1Axis(ints)
		case "source":
			choices := make([]sweep.SourceChoice, 0, len(vals))
			for _, v := range vals {
				c, err := e.sourceChoice(v)
				if err != nil {
					return sweep.Spec{}, axisErr(as, "%v", err)
				}
				choices = append(choices, c)
			}
			ax = sweep.SourceAxis("source", choices)
		case "shards":
			counts := make([]int, 0, len(vals))
			for _, v := range vals {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil || n < 1 {
					return sweep.Spec{}, axisErr(as, "bad shard count %q (want a positive integer)", v)
				}
				counts = append(counts, n)
			}
			ax = sweep.ShardsAxis("shards", counts)
		default:
			return sweep.Spec{}, axisErr(as, "unknown axis %q (have workload, engine, history, budget, l1, source, shards)", axName)
		}
		spec.Axes = append(spec.Axes, ax)
	}
	if len(engineSpecs) > 0 {
		if seen["engine"] {
			return sweep.Spec{}, fmt.Errorf("experiments: -engine and -axis engine are mutually exclusive (both build the engine axis)")
		}
		ax, err := engineSpecAxis(engineSpecs, func(err error) error {
			return fmt.Errorf("experiments: -engine: %v", err)
		})
		if err != nil {
			return sweep.Spec{}, err
		}
		spec.Axes = append(spec.Axes, ax)
	}
	if !seen["workload"] {
		// Default the workload axis (first, so it is the slow axis and
		// rendered rows group by workload) to the sweep suite.
		spec.Axes = append([]sweep.Axis{sweep.WorkloadAxis("workload", opts.SweepSuite())}, spec.Axes...)
	}
	if err := spec.Base.System.Validate(); err != nil {
		return sweep.Spec{}, fmt.Errorf("experiments: sweep base system: %w", err)
	}
	return spec, nil
}

// engineSpecAxis builds the engine axis from CLI engine-spec strings
// ("pif", "tifs", "pif:history=64K", "pif:sabs=2,window=9"): each value
// merges its parsed spec into the cell, keyed by the sanitized spec
// string so a plain name keys identically to the pre-spec CLI. wrapErr
// decorates a bad value's error with the offending flag token.
func engineSpecAxis(vals []string, wrapErr func(error) error) (sweep.Axis, error) {
	ax := sweep.Axis{Name: "engine"}
	for _, v := range vals {
		spec, err := prefetch.ParseSpec(v)
		if err != nil {
			return sweep.Axis{}, wrapErr(err)
		}
		ax.Values = append(ax.Values, sweep.Value{
			Key:   sweep.KeyOf(v),
			Name:  v,
			Apply: func(s *sweep.Settings) { s.MergeEngine(spec) },
		})
	}
	return ax, nil
}

// sourceChoice parses one value of the CLI source axis ("live", "store",
// "slice@off:len", "store@DIR", "slice@off:len@DIR") into a keyed sweep
// source. Env-backed sources ("store", "slice@off:len") replay the
// cell's workload from the environment's spilled store and resolve the
// workload lazily at open time, so the source axis composes with the
// workload axis in either flag order; explicit-directory sources replay
// the given store (its recorded workload must match the cell's — the
// simulator enforces it).
func (e *Env) sourceChoice(v string) (sweep.SourceChoice, error) {
	key := sweep.KeyOf(v)
	parts := strings.Split(v, "@")
	switch parts[0] {
	case "live":
		if len(parts) > 1 {
			return sweep.SourceChoice{}, fmt.Errorf("source %q: live takes no arguments", v)
		}
		return sweep.SourceChoice{Key: key, Name: v}, nil
	case "store":
		if len(parts) > 2 {
			return sweep.SourceChoice{}, fmt.Errorf("source %q is not store or store@DIR", v)
		}
		if len(parts) == 2 {
			dir := parts[1]
			return sweep.SourceChoice{Key: key, Name: v, New: func(s *sweep.Settings) sim.Source {
				return sim.StoreSource(dir)
			}}, nil
		}
		return sweep.SourceChoice{Key: key, Name: v, New: func(s *sweep.Settings) sim.Source {
			return e.lazySource(s, trace.Window{}, false)
		}}, nil
	case "slice":
		if len(parts) < 2 || len(parts) > 3 {
			return sweep.SourceChoice{}, fmt.Errorf("source %q is not slice@off:len or slice@off:len@DIR", v)
		}
		w, err := trace.ParseWindow(parts[1])
		if err != nil {
			return sweep.SourceChoice{}, fmt.Errorf("source %q: %v", v, err)
		}
		// A slice cell measures its whole window from a cold start: the
		// window, not the run's warmup/measure split, defines the
		// interval, so any number of windows of one trace fit one grid.
		coldWindow := func(s *sweep.Settings) {
			s.Sim.WarmupInstrs = 0
			s.Sim.MeasureInstrs = w.Len
		}
		if len(parts) == 3 {
			dir := parts[2]
			return sweep.SourceChoice{Key: key, Name: v, New: func(s *sweep.Settings) sim.Source {
				coldWindow(s)
				return sim.SliceSource(dir, w)
			}}, nil
		}
		return sweep.SourceChoice{Key: key, Name: v, New: func(s *sweep.Settings) sim.Source {
			coldWindow(s)
			return e.lazySource(s, w, true)
		}}, nil
	default:
		return sweep.SourceChoice{}, fmt.Errorf("unknown source %q (have live, store, slice@off:len, each optionally @DIR)", v)
	}
}

// lazySource defers a cell's env-backed source to open time, when the
// cell's settings (in particular the workload, possibly applied by a
// later axis) are final.
func (e *Env) lazySource(s *sweep.Settings, w trace.Window, slice bool) sim.Source {
	return lazyEnvSource{e: e, set: s, w: w, slice: slice}
}

// lazyEnvSource is an env-backed cell source that resolves the cell's
// workload from its settings when needed rather than when the axis value
// is applied — the workload axis may run after the source axis. It
// implements sim.Slicer so `-shards` works with the CLI's env-backed
// "store" and "slice@off:len" source values: sweep planning runs after
// the grid is fully expanded, when the settings are final, so Slice can
// resolve eagerly.
type lazyEnvSource struct {
	e     *Env
	set   *sweep.Settings
	w     trace.Window
	slice bool
}

// resolve binds the source to the cell's (now final) workload.
func (ls lazyEnvSource) resolve() envSource {
	if ls.slice {
		return ls.e.WindowSource(ls.set.Workload, ls.w).(envSource)
	}
	return ls.e.SourceFor(ls.set.Workload).(envSource)
}

// Open implements sim.Source.
func (ls lazyEnvSource) Open(ctx context.Context) (trace.Iterator, sim.SourceInfo, error) {
	return ls.resolve().Open(ctx)
}

// Slice implements sim.Slicer.
func (ls lazyEnvSource) Slice(w trace.Window) (sim.Source, error) {
	return ls.resolve().Slice(w)
}

// splitAxisSpec parses "name=v1,v2" into its parts.
func splitAxisSpec(s string) (string, []string, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" || rest == "" {
		return "", nil, axisErr(s, "not of the form name=v1,v2,...")
	}
	var vals []string
	for _, v := range strings.Split(rest, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return "", nil, axisErr(s, "empty value in list %q", rest)
		}
		vals = append(vals, v)
	}
	return strings.TrimSpace(name), vals, nil
}

// resolveWorkloads maps workload axis values (suite aliases or profile
// names) to profiles, deduplicated by name in first-mention order.
func resolveWorkloads(vals []string) ([]workload.Profile, error) {
	var out []workload.Profile
	seen := map[string]bool{}
	add := func(wls ...workload.Profile) {
		for _, wl := range wls {
			if !seen[wl.Name] {
				seen[wl.Name] = true
				out = append(out, wl)
			}
		}
	}
	for _, v := range vals {
		switch strings.ToLower(v) {
		case "std", "standard":
			add(workload.StandardSuite()...)
		case "xl":
			add(workload.XLSuite()...)
		case "all":
			add(workload.StandardSuite()...)
			add(workload.XLSuite()...)
		default:
			wl, err := workload.ByName(v)
			if err != nil {
				names := make([]string, 0)
				for _, p := range append(workload.StandardSuite(), workload.XLSuite()...) {
					names = append(names, p.Name)
				}
				sort.Strings(names)
				return nil, fmt.Errorf("experiments: -axis workload: %w (have std, xl, all, %s)", err, strings.Join(names, ", "))
			}
			add(wl)
		}
	}
	return out, nil
}

// parseSizes parses integer axis values with optional K/M suffixes
// (multipliers of 1024); bare numbers are scaled by bareUnit.
func parseSizes(vals []string, bareUnit int) ([]int, error) {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		mult := bareUnit
		s := strings.ToUpper(strings.TrimSpace(v))
		switch {
		case strings.HasSuffix(s, "K"):
			mult, s = 1024, strings.TrimSuffix(s, "K")
		case strings.HasSuffix(s, "M"):
			mult, s = 1024*1024, strings.TrimSuffix(s, "M")
		}
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", v)
		}
		out = append(out, n*mult)
	}
	return out, nil
}
