package experiments

import (
	"repro/internal/cache"
	"repro/internal/frontend"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/streampred"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig2Result holds the Figure 2 data: the fraction of correct-path L1-I
// misses correctly predicted when the temporal stream predictor records at
// each of the four points the paper compares.
type Fig2Result struct {
	Workloads []string `json:"workloads"`
	// Coverage[variant][workload index]; variants in paper order.
	Miss      []float64 `json:"miss"`
	Access    []float64 `json:"access"`
	Retire    []float64 `json:"retire"`
	RetireSep []float64 `json:"retire_sep"`
}

// Fig2 reproduces Figure 2 ("Percentage of correctly predicted L1-I
// misses"): four identical temporal-stream predictors record the cache-miss
// stream, the fetch-access stream (with wrong-path noise), the retire-order
// stream, and per-trap-level retire-order streams. Each correct-path miss
// is scored against all four *before* any of them observes the event, so
// the recording point is the only difference — the paper's isolation of
// microarchitectural filtering and noise.
func Fig2(e *Env) (Fig2Result, error) {
	opts := e.Options()
	n := len(opts.Workloads)
	res := Fig2Result{
		Workloads: make([]string, n),
		Miss:      make([]float64, n),
		Access:    make([]float64, n),
		Retire:    make([]float64, n),
		RetireSep: make([]float64, n),
	}
	// One analysis per workload across the worker pool; each writes only
	// its own row, so the assembled table is order-independent.
	err := e.ForEachWorkload(func(i int, wl workload.Profile) error {
		m, a, r, rs, err := fig2One(e, wl)
		if err != nil {
			return err
		}
		res.Workloads[i] = wl.Name
		res.Miss[i], res.Access[i], res.Retire[i], res.RetireSep[i] = m, a, r, rs
		return nil
	})
	return res, err
}

// exposureTTL bounds how long (in recording-stream events) a would-be
// prefetch counts as predicting a miss. It models the residency of a
// prefetched block: the paper tracks "the predictions that would be made"
// without perturbing the cache, so a prediction stays useful for roughly
// one cache lifetime, not forever.
const exposureTTL = 2048

// exposureSet tracks the blocks a predictor would have prefetched. The
// TTL ticks on a clock shared by all variants (correct-path block events),
// so recording points with sparse streams (misses) get no extra horizon.
type exposureSet struct {
	gen  map[isa.Block]uint64
	now  *uint64
	pred *streampred.Predictor
}

// newExposureSet wires a fresh predictor to a would-prefetch set driven by
// the shared clock.
func newExposureSet(clock *uint64) *exposureSet {
	s := &exposureSet{gen: make(map[isa.Block]uint64), now: clock}
	s.pred = streampred.New(streampred.DefaultConfig())
	s.pred.ExposeHook = func(b isa.Block) { s.gen[b] = *s.now }
	return s
}

// Observe records one event of the recording stream.
func (s *exposureSet) Observe(b isa.Block) {
	s.pred.Observe(b)
}

// Predicted reports whether b was exposed within the TTL.
func (s *exposureSet) Predicted(b isa.Block) bool {
	g, ok := s.gen[b]
	return ok && *s.now-g <= exposureTTL
}

func fig2One(e *Env, wl workload.Profile) (miss, access, retire, retireSep float64, err error) {
	opts := e.Options()
	l1 := cache.New(opts.System.L1I())
	fe := frontend.New(opts.System.Frontend(wl.Seed))
	polluter := cache.NewPolluter(
		opts.System.CtxSwitchEveryInstrs, opts.System.CtxSwitchBlocks, wl.Seed^0x706f6c)

	var clock uint64
	pMiss := newExposureSet(&clock)
	pAccess := newExposureSet(&clock)
	pRetire := newExposureSet(&clock)
	var pRetireSep [isa.NumTrapLevels]*exposureSet
	for i := range pRetireSep {
		pRetireSep[i] = newExposureSet(&clock)
	}

	var (
		instrs    uint64
		misses    uint64
		hitMiss   uint64
		hitAcc    uint64
		hitRet    uint64
		hitRetSep uint64
		lastBlk   [isa.NumTrapLevels]isa.Block
		haveBlk   [isa.NumTrapLevels]bool
	)

	err = e.EachRecord(wl, func(rec trace.Record) {
		measuring := instrs >= opts.WarmupInstrs
		fe.Feed(rec, func(acc frontend.Access) {
			hit, _ := l1.Access(acc.Block)
			if !hit {
				l1.Fill(acc.Block, false)
			}
			if !acc.WrongPath {
				clock++ // the shared TTL clock: correct-path fetch events
			}
			// Score the miss against every variant before observing.
			if !acc.WrongPath && !hit && measuring {
				misses++
				if pMiss.Predicted(acc.Block) {
					hitMiss++
				}
				if pAccess.Predicted(acc.Block) {
					hitAcc++
				}
				if pRetire.Predicted(acc.Block) {
					hitRet++
				}
				if pRetireSep[acc.TL].Predicted(acc.Block) {
					hitRetSep++
				}
			}
			// Record: the miss stream sees demand misses (correct and
			// wrong path, as the cache observes them); the access stream
			// sees every access.
			if !hit {
				pMiss.Observe(acc.Block)
			}
			pAccess.Observe(acc.Block)
		})
		// The retire-order recording points observe block-grain retires.
		tl := rec.TL
		b := rec.Block()
		if !haveBlk[tl] || lastBlk[tl] != b {
			lastBlk[tl], haveBlk[tl] = b, true
			pRetire.Observe(b)
			pRetireSep[tl].Observe(b)
		}
		instrs++
		polluter.Tick(l1)
	})
	if err != nil || misses == 0 {
		return 0, 0, 0, 0, err
	}
	n := float64(misses)
	return float64(hitMiss) / n, float64(hitAcc) / n, float64(hitRet) / n, float64(hitRetSep) / n, nil
}

// Render formats the result like the paper's Figure 2.
func (r Fig2Result) Render() string {
	tab := &stats.Table{
		Title:   "Figure 2: correctly predicted correct-path L1-I misses by recording point",
		ColName: []string{"Miss", "Access", "Retire", "RetireSep"},
	}
	for i, w := range r.Workloads {
		tab.AddRow(w, r.Miss[i], r.Access[i], r.Retire[i], r.RetireSep[i])
	}
	return tab.Render(true)
}

func init() {
	register("fig2", func(e *Env) (Report, error) {
		r, err := Fig2(e)
		if err != nil {
			return Report{}, err
		}
		return Report{ID: "fig2", Title: "Recording-point prediction coverage", Text: r.Render(), Data: r}, nil
	})
}
