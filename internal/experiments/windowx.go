package experiments

import (
	"fmt"

	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// The sweep-window artifact is the slice-source counterpart of the other
// design-space sweeps: instead of varying the engine or the machine, it
// varies *which part of the recorded trace* a cell simulates. Every cell
// replays a window [off, off+len) of its workload's warmup+measure
// stream through a cold PIF front-end (sim.SliceSource over
// StoreReader.Seek when the environment spills traces, the cached
// in-memory stream otherwise — byte-identical either way), so one
// recorded trace serves the whole grid and no workload is re-executed
// per cell. The readable signal: how sensitive UIPC and PIF coverage are
// to the measured interval's position and length — short early windows
// run cold, windows deep in the trace approach the warmed live numbers.

// SweepWindowOffsetPcts are the swept window positions, as percentages
// of the warmup interval (0 = the trace's first record, 100 = the live
// run's measurement boundary).
var SweepWindowOffsetPcts = []int{0, 50, 100}

// SweepWindowLenPcts are the swept window lengths, as percentages of the
// measured interval.
var SweepWindowLenPcts = []int{50, 100}

// SweepWindowResult holds the trace-window sweep: UIPC and PIF coverage
// per workload as the replayed window moves and grows.
type SweepWindowResult struct {
	Workloads []string `json:"workloads"`
	// OffsetPcts/LenPcts echo the swept fractions; Offsets/Lens are the
	// absolute record positions/counts they resolve to at this run's
	// warmup/measure scale.
	OffsetPcts []int    `json:"offset_pcts"`
	LenPcts    []int    `json:"len_pcts"`
	Offsets    []uint64 `json:"offsets"`
	Lens       []uint64 `json:"lens"`
	// UIPC and prefetch coverage per cell, [workload][offset][len].
	UIPC     [][][]float64 `json:"uipc"`
	Coverage [][][]float64 `json:"coverage"`
}

// windowFor resolves one swept (offset pct, length pct) pair into an
// absolute record window of the warmup+measure stream.
func windowFor(warmup, measure uint64, offPct, lenPct int) trace.Window {
	return trace.Window{
		Off: warmup * uint64(offPct) / 100,
		Len: measure * uint64(lenPct) / 100,
	}
}

// SweepWindow regenerates the trace-window design-space sweep: a
// (workload × window position × window length) grid of slice-replay
// cells, each measuring its whole window from a cold start (warmup 0, so
// the position axis isolates where in the trace the interval sits). The
// grid's raw per-job results are persisted by `experiments -out` like
// every other sweep.
func SweepWindow(e *Env) (SweepWindowResult, error) {
	wls := e.Options().Workloads
	scfg := e.Options().SimConfig()
	warmup, measure := scfg.WarmupInstrs, scfg.MeasureInstrs
	res := SweepWindowResult{OffsetPcts: SweepWindowOffsetPcts, LenPcts: SweepWindowLenPcts}
	for _, p := range SweepWindowOffsetPcts {
		res.Offsets = append(res.Offsets, warmup*uint64(p)/100)
	}
	for _, p := range SweepWindowLenPcts {
		res.Lens = append(res.Lens, measure*uint64(p)/100)
	}

	offAxis := sweep.Axis{Name: "off"}
	for _, pct := range SweepWindowOffsetPcts {
		pct := pct
		offAxis.Values = append(offAxis.Values, sweep.Value{
			Key:   fmt.Sprintf("p%d", pct),
			Name:  fmt.Sprintf("off %d%%", pct),
			Apply: func(s *sweep.Settings) { s.Params["win_off_pct"] = float64(pct) },
		})
	}
	lenAxis := sweep.Axis{Name: "len"}
	for _, pct := range SweepWindowLenPcts {
		pct := pct
		lenAxis.Values = append(lenAxis.Values, sweep.Value{
			Key:   fmt.Sprintf("l%d", pct),
			Name:  fmt.Sprintf("len %d%%", pct),
			Apply: func(s *sweep.Settings) { s.Params["win_len_pct"] = float64(pct) },
		})
	}

	// The length axis is the innermost (last) axis, so its Apply runs after
	// the workload and offset mutations: both window params are final here,
	// and it resolves them into the cell's slice source and measured
	// interval directly.
	for i := range lenAxis.Values {
		inner := lenAxis.Values[i].Apply
		lenAxis.Values[i].Apply = func(s *sweep.Settings) {
			inner(s)
			w := windowFor(warmup, measure, int(s.Params["win_off_pct"]), int(s.Params["win_len_pct"]))
			s.Sim.WarmupInstrs = 0
			s.Sim.MeasureInstrs = w.Len
			s.Source = e.WindowSource(s.Workload, w)
		}
	}

	g, err := e.RunGrid(sweep.Spec{
		Name:       "sweep-window",
		Base:       scfg,
		BaseEngine: prefetch.Spec{Name: "pif"},
		Axes: []sweep.Axis{
			sweep.WorkloadAxis("workload", wls),
			offAxis,
			lenAxis,
		},
	})
	if err != nil {
		return res, err
	}

	for wi, wl := range wls {
		uipc := make([][]float64, len(SweepWindowOffsetPcts))
		cov := make([][]float64, len(SweepWindowOffsetPcts))
		for oi := range SweepWindowOffsetPcts {
			uipc[oi] = make([]float64, len(SweepWindowLenPcts))
			cov[oi] = make([]float64, len(SweepWindowLenPcts))
			for li := range SweepWindowLenPcts {
				r := g.SimAt(wi, oi, li)
				uipc[oi][li] = r.UIPC
				cov[oi][li] = r.Coverage()
			}
		}
		res.Workloads = append(res.Workloads, wl.Name)
		res.UIPC = append(res.UIPC, uipc)
		res.Coverage = append(res.Coverage, cov)
	}
	return res, nil
}

// Render formats the window sweep as UIPC and coverage tables with one
// (offset, length) column per swept window.
func (r SweepWindowResult) Render() string {
	var cols []string
	for _, op := range r.OffsetPcts {
		for _, lp := range r.LenPcts {
			cols = append(cols, fmt.Sprintf("o%d/l%d", op, lp))
		}
	}
	uipc := &stats.Table{
		Title:   "sweep-window: cold-start PIF UIPC vs trace-window position (% of warmup) and length (% of measure)",
		ColName: cols,
	}
	cov := &stats.Table{
		Title:   "sweep-window: PIF coverage vs trace-window position and length",
		ColName: cols,
	}
	for i, w := range r.Workloads {
		var urow, crow []float64
		for oi := range r.OffsetPcts {
			urow = append(urow, r.UIPC[i][oi]...)
			crow = append(crow, r.Coverage[i][oi]...)
		}
		uipc.AddRow(w, urow...)
		cov.AddRow(w, crow...)
	}
	return uipc.Render(false) + "\n" + cov.Render(true)
}

func init() {
	register("sweep-window", func(e *Env) (Report, error) {
		r, err := SweepWindow(e)
		if err != nil {
			return Report{}, err
		}
		return Report{
			ID:    "sweep-window",
			Title: "UIPC and coverage vs replayed trace window (slice-source design-space sweep)",
			Text:  r.Render(),
			Data:  r,
		}, nil
	})
}
