// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver regenerates the corresponding artifact —
// the same rows and series the paper reports — against the synthetic
// workload suite, and returns both structured data (for tests and
// downstream tooling) and rendered text (for the cmd/experiments CLI).
//
// Drivers do not loop serially: figures declare their variant tables as
// design-space sweep specs (internal/sweep) whose grids fan out across
// the worker pool — simulation grids through Env.RunGrid, trace-based
// analyses through Env.EachGrid — so a full regeneration scales across
// cores while the rendered tables stay byte-identical to a serial run
// (grid results come back in row-major submission order). Every
// simulated grid cell's raw sim.Result is collected for the results
// store (Env.JobResults), so sweeps finer than one artifact can be
// diffed across runs.
//
// See DESIGN.md §3 for the experiment index, §4 for the substitutions
// made relative to the paper's testbed, and §8 for the sweep engine.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options control the scale, system configuration, and execution of every
// experiment.
type Options struct {
	// Workloads is the evaluated suite (defaults to the six standard
	// workloads in the paper's order).
	Workloads []workload.Profile
	// SweepWorkloads is the suite the MANA-style design-space sweep
	// artifacts (sweep-history, sweep-l1) run over; nil means the XL
	// suite (workload.XLSuite), whose footprints keep storage budgets and
	// cache geometries differentiating where the standard six saturate.
	SweepWorkloads []workload.Profile
	// System is the simulated machine (Table I).
	System config.System
	// WarmupInstrs executes before measurement in simulation-based
	// experiments (and before trace analysis windows in trace-based ones)
	// so results reflect steady state, per the paper's methodology.
	WarmupInstrs uint64
	// MeasureInstrs is the measured interval length.
	MeasureInstrs uint64
	// Parallel bounds the worker pool used to fan out simulation jobs and
	// per-workload analyses; <= 0 means GOMAXPROCS. Results are identical
	// for every value.
	Parallel int
	// Backend, when non-nil, executes every simulation grid of this
	// environment through the given runner.Backend instead of a private
	// in-process pool (runs are serialized; results are identical for
	// every backend). Nil selects a fresh LocalBackend per grid, sized
	// by Parallel.
	Backend runner.Backend
	// StoreDir, when non-empty, is the environment's trace-store pool:
	// each workload's generated retire-order stream is spilled to a
	// sharded on-disk trace store under this directory and replayed for
	// every trace-based analysis and every store/slice record source, so
	// peak memory is bounded by one store chunk instead of the full
	// stream length. Stores are keyed by workload and instruction count
	// and are reused across artifacts and across processes (the paper's
	// collect-once, replay-many methodology). Results are byte-identical
	// with and without spilling.
	StoreDir string
	// TraceDir is the former name of StoreDir.
	//
	// Deprecated: set StoreDir; TraceDir is consulted only when StoreDir
	// is empty.
	TraceDir string
	// TraceChunkRecords is the records-per-chunk of spilled stores
	// (0 = trace.DefaultChunkRecords).
	TraceChunkRecords uint64
	// OnProgress, when non-nil, receives one (serialized) callback per
	// completed simulation job.
	OnProgress func(runner.Progress)
}

// DefaultOptions is the full-scale configuration used by cmd/experiments.
func DefaultOptions() Options {
	return Options{
		Workloads:     workload.StandardSuite(),
		System:        config.Default(),
		WarmupInstrs:  8_000_000,
		MeasureInstrs: 2_000_000,
	}
}

// QuickOptions is a reduced-scale configuration for tests and benchmarks.
// Coverage numbers are slightly depressed (less warmup) but every shape
// assertion in the test suite holds at this scale.
func QuickOptions() Options {
	return Options{
		Workloads:     workload.StandardSuite(),
		System:        config.Default(),
		WarmupInstrs:  4_000_000,
		MeasureInstrs: 1_000_000,
	}
}

// storeDir resolves the trace-store pool directory, folding the
// deprecated TraceDir alias into the new name ("" = in-memory streams).
func (o Options) storeDir() string {
	if o.StoreDir != "" {
		return o.StoreDir
	}
	return o.TraceDir
}

// SweepSuite resolves the suite the design-space sweep artifacts run
// over: Options.SweepWorkloads when set, the XL suite otherwise. Every
// consumer of the sweep suite (the artifact drivers, the CLI's default
// workload axis) resolves through here, so the default lives in exactly
// one place.
func (o Options) SweepSuite() []workload.Profile {
	if len(o.SweepWorkloads) > 0 {
		return o.SweepWorkloads
	}
	return workload.XLSuite()
}

// Validate rejects unusable options.
func (o Options) Validate() error {
	if len(o.Workloads) == 0 {
		return fmt.Errorf("experiments: no workloads")
	}
	if o.MeasureInstrs == 0 {
		return fmt.Errorf("experiments: zero measurement interval")
	}
	return o.System.Validate()
}

// memo is a single-flight cache slot: the first caller builds, every
// concurrent caller waits on the same build, and the built value is
// immutable afterwards so readers need no further synchronization.
type memo[T any] struct {
	once sync.Once
	val  T
	err  error
}

// Env caches per-workload artifacts (programs, retire-order streams) so
// that the trace-based experiments do not regenerate them repeatedly. The
// caches are safe for concurrent readers: each artifact is built exactly
// once and shared read-only across jobs.
type Env struct {
	opts Options
	ctx  context.Context

	mu       sync.Mutex
	programs map[string]*memo[*workload.Program]
	streams  map[string]*memo[trace.Stream]
	spills   map[string]*memo[string] // workload name -> store directory

	// backendMu serializes grid runs through a shared Options.Backend
	// (backends serve one run at a time).
	backendMu sync.Mutex

	// Per-job results collected from every sweep grid run in this
	// environment, keyed for the results store (jobs/<key>.json). jobIdx
	// dedupes reruns of the same artifact (deterministic simulations make
	// a rerun's result identical, so replacing in place is safe).
	jobMu  sync.Mutex
	jobIdx map[string]int
	jobRes []report.JobResult
}

// NewEnv builds an environment; it panics on invalid options (experiment
// configuration is programmer input).
func NewEnv(opts Options) *Env {
	return NewEnvContext(context.Background(), opts)
}

// NewEnvContext is NewEnv with a context governing every run in the
// environment: cancellation aborts in-flight simulation jobs.
func NewEnvContext(ctx context.Context, opts Options) *Env {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Env{
		opts:     opts,
		ctx:      ctx,
		programs: make(map[string]*memo[*workload.Program]),
		streams:  make(map[string]*memo[trace.Stream]),
		spills:   make(map[string]*memo[string]),
		jobIdx:   make(map[string]int),
	}
}

// Options returns the environment's options.
func (e *Env) Options() Options { return e.opts }

// Context returns the environment's context.
func (e *Env) Context() context.Context { return e.ctx }

// Parallel returns the environment's resolved worker-pool width.
func (e *Env) Parallel() int { return runner.Workers(e.opts.Parallel) }

// Program returns the (cached) program image for a workload. Images are
// immutable after construction and may be shared by concurrent jobs.
func (e *Env) Program(p workload.Profile) (*workload.Program, error) {
	e.mu.Lock()
	m, ok := e.programs[p.Name]
	if !ok {
		m = &memo[*workload.Program]{}
		e.programs[p.Name] = m
	}
	e.mu.Unlock()
	m.once.Do(func() { m.val, m.err = workload.BuildProgram(p) })
	return m.val, m.err
}

// Stream returns the (cached) retire-order stream covering warmup plus
// measurement for a workload. Streams are immutable after construction
// and safe for concurrent readers. When the environment spills traces to
// disk (Options.StoreDir), every call rereads the store rather than
// pinning the whole stream in memory — streaming consumers should use
// EachRecord instead.
func (e *Env) Stream(p workload.Profile) (trace.Stream, error) {
	if e.opts.storeDir() != "" {
		r, err := e.openSpilled(p)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		return r.ReadAll()
	}
	e.mu.Lock()
	m, ok := e.streams[p.Name]
	if !ok {
		m = &memo[trace.Stream]{}
		e.streams[p.Name] = m
	}
	e.mu.Unlock()
	m.once.Do(func() {
		prog, err := e.Program(p)
		if err != nil {
			m.err = err
			return
		}
		total := e.opts.WarmupInstrs + e.opts.MeasureInstrs
		s := make(trace.Stream, 0, total+1024)
		ex := workload.NewExecutor(prog)
		ex.Run(total, func(r trace.Record) { s = append(s, r) })
		m.val = s
	})
	return m.val, m.err
}

// storeDirFor names a workload's spilled store: the sanitized workload
// name, a hash of the exact name (sanitization is lossy, and two
// workloads colliding on one directory would silently swap traces), and
// the instruction count, so stores written at other scales are never
// mistaken for the current one.
func (e *Env) storeDirFor(p workload.Profile) string {
	total := e.opts.WarmupInstrs + e.opts.MeasureInstrs
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, p.Name)
	h := fnv.New32a()
	h.Write([]byte(p.Name))
	return filepath.Join(e.opts.storeDir(), fmt.Sprintf("%s-%08x-%d", sanitized, h.Sum32(), total))
}

// Spill generates the workload's warmup+measure retire stream into a
// sharded on-disk trace store (once per environment, single-flight) and
// returns the store directory. An existing store with the same workload
// name and record count is reused as-is — the trace is collected once
// and replayed by every artifact, and by later processes pointed at the
// same StoreDir. Spill requires Options.StoreDir.
func (e *Env) Spill(p workload.Profile) (string, error) {
	if e.opts.storeDir() == "" {
		return "", fmt.Errorf("experiments: Spill(%q) without Options.StoreDir", p.Name)
	}
	e.mu.Lock()
	m, ok := e.spills[p.Name]
	if !ok {
		m = &memo[string]{}
		e.spills[p.Name] = m
	}
	e.mu.Unlock()
	m.once.Do(func() { m.val, m.err = e.buildSpill(p) })
	return m.val, m.err
}

// buildSpill writes (or validates and reuses) the workload's store.
func (e *Env) buildSpill(p workload.Profile) (string, error) {
	dir := e.storeDirFor(p)
	total := e.opts.WarmupInstrs + e.opts.MeasureInstrs
	if ix, err := trace.ReadIndex(dir); err == nil {
		if ix.Workload == p.Name && ix.Records() == total {
			return dir, nil // collected by an earlier run; replay it
		}
	}
	prog, err := e.Program(p)
	if err != nil {
		return "", err
	}
	// Build into a unique sibling temp directory and rename into place,
	// so a crashed or raced build never leaves a half-written store
	// behind the final name (ReadIndex above is the validity gate either
	// way, even across processes sharing one TraceDir).
	if err := os.MkdirAll(e.opts.storeDir(), 0o755); err != nil {
		return "", err
	}
	tmp, err := os.MkdirTemp(e.opts.storeDir(), filepath.Base(dir)+".tmp-")
	if err != nil {
		return "", err
	}
	it := workload.NewIterator(prog, total)
	defer it.Close()
	if _, err := trace.BuildStore(tmp, p.Name, e.opts.TraceChunkRecords, it, total); err != nil {
		os.RemoveAll(tmp)
		return "", err
	}
	// A concurrent process racing on the same TraceDir may have completed
	// an identical build while ours ran; prefer the store already in
	// place — it may be mid-replay by that process, and deleting it out
	// from under an open StoreReader would fail its next chunk open.
	// (The recheck narrows the race window; the ReadIndex validity gate
	// protects correctness regardless.)
	if ix, rerr := trace.ReadIndex(dir); rerr == nil && ix.Workload == p.Name && ix.Records() == total {
		os.RemoveAll(tmp)
		return dir, nil
	}
	if err := os.RemoveAll(dir); err != nil {
		os.RemoveAll(tmp)
		return "", err
	}
	if err := os.Rename(tmp, dir); err != nil {
		// Same race, lost on the rename instead: use the winner's store.
		if ix, rerr := trace.ReadIndex(dir); rerr == nil && ix.Workload == p.Name && ix.Records() == total {
			os.RemoveAll(tmp)
			return dir, nil
		}
		os.RemoveAll(tmp)
		return "", err
	}
	return dir, nil
}

// EachRecord replays the workload's warmup+measure retire stream one
// record at a time: from the spilled on-disk store when the environment
// spills traces (peak memory one chunk), from the cached in-memory stream
// otherwise. It is the streaming access path every trace-based driver
// uses; results are identical either way.
func (e *Env) EachRecord(p workload.Profile, fn func(trace.Record)) error {
	if e.opts.storeDir() == "" {
		s, err := e.Stream(p)
		if err != nil {
			return err
		}
		for _, r := range s {
			fn(r)
		}
		return nil
	}
	r, err := e.openSpilled(p)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		fn(rec)
	}
}

// openSpilled opens the workload's spilled store and double-checks the
// stored workload name — the last line of defense against a store
// clobbered by a raced build for a different workload.
func (e *Env) openSpilled(p workload.Profile) (*trace.StoreReader, error) {
	dir, err := e.Spill(p)
	if err != nil {
		return nil, err
	}
	r, err := trace.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	if r.Workload() != p.Name {
		r.Close()
		return nil, fmt.Errorf("experiments: store %s holds workload %q, want %q", dir, r.Workload(), p.Name)
	}
	return r, nil
}

// RunJobs executes simulation jobs through the environment's execution
// backend (Options.Backend, or a private in-process LocalBackend),
// attaching the cached program image for each live-executing job's
// workload, and returns results in submission order.
func (e *Env) RunJobs(jobs []runner.Job) ([]runner.Result, error) {
	for i := range jobs {
		// Replay jobs never touch the program; building (or adopting) an
		// image for them would only waste cache space.
		if jobs[i].Program == nil && jobs[i].Source == nil {
			prog, err := e.Program(jobs[i].Workload)
			if err != nil {
				return nil, err
			}
			jobs[i].Program = prog
		}
	}
	if e.opts.Backend != nil {
		// A shared backend serves one run at a time (the Backend
		// contract); concurrent grids in one environment serialize here.
		e.backendMu.Lock()
		defer e.backendMu.Unlock()
		return runner.RunOn(e.ctx, e.opts.Backend, jobs, e.opts.OnProgress)
	}
	b := runner.NewLocalBackend(e.opts.Parallel)
	defer b.Close()
	return runner.RunOn(e.ctx, b, jobs, e.opts.OnProgress)
}

// SourceFor returns the environment's record source for a workload's
// warmup+measure stream: a store source over the spilled sharded store
// when the environment persists traces (Options.StoreDir), a source over
// the cached in-memory stream otherwise. Results are byte-identical
// either way; the source is resolved lazily at Open, so building the
// grid costs nothing.
func (e *Env) SourceFor(p workload.Profile) sim.Source {
	total := e.opts.WarmupInstrs + e.opts.MeasureInstrs
	return e.windowSource(p, trace.Window{Off: 0, Len: total}, "store")
}

// WindowSource returns the record source replaying only window w of the
// workload's warmup+measure stream: a slice of the spilled store
// (sim.SliceSource on StoreReader.Seek) when the environment persists
// traces, a sub-range of the cached in-memory stream otherwise. A window
// outside the recorded range is a hard error at open time. Sweeping many
// windows of one workload replays one recorded trace — the workload is
// never re-executed per cell.
func (e *Env) WindowSource(p workload.Profile, w trace.Window) sim.Source {
	return e.windowSource(p, w, "slice")
}

// windowSource builds the lazy dual-path source behind SourceFor and
// WindowSource.
func (e *Env) windowSource(p workload.Profile, w trace.Window, kind string) sim.Source {
	return envSource{e: e, p: p, w: w, kind: kind}
}

// envSource replays window w of a workload's warmup+measure stream from
// the environment: the spilled on-disk store when the environment
// persists traces, the cached in-memory stream otherwise. It implements
// sim.Slicer, so sharded sweep execution can split env-backed cells the
// same way it splits explicit store sources.
type envSource struct {
	e    *Env
	p    workload.Profile
	w    trace.Window
	kind string
}

// Open implements sim.Source; the spill (or stream build) happens here,
// so constructing the source costs nothing.
func (s envSource) Open(ctx context.Context) (trace.Iterator, sim.SourceInfo, error) {
	if s.p.Name == "" {
		return nil, sim.SourceInfo{}, fmt.Errorf("experiments: %s source has no workload (apply a workload axis before resolving sources)", s.kind)
	}
	if s.e.opts.storeDir() != "" {
		dir, err := s.e.Spill(s.p)
		if err != nil {
			return nil, sim.SourceInfo{}, err
		}
		if s.kind == "store" {
			return sim.StoreSource(dir).Open(ctx)
		}
		return sim.SliceSource(dir, s.w).Open(ctx)
	}
	str, err := s.e.Stream(s.p)
	if err != nil {
		return nil, sim.SourceInfo{}, err
	}
	if s.w.Len == 0 || s.w.End() > uint64(len(str)) || s.w.End() < s.w.Off {
		return nil, sim.SourceInfo{}, fmt.Errorf("experiments: window %s of %q out of range (stream holds %d records)", s.w, s.p.Name, len(str))
	}
	return str[s.w.Off:s.w.End()].Iter(), sim.SourceInfo{
		Kind:     s.kind,
		Workload: s.p.Name,
		Records:  s.w.Len,
		Window:   s.w,
	}, nil
}

// Slice implements sim.Slicer: windows compose relative to this source's
// own window, identically over the spilled-store and in-memory paths.
// The sub-source opens as a slice regardless of this source's kind.
func (s envSource) Slice(w trace.Window) (sim.Source, error) {
	if w.End() > s.w.Len {
		return nil, fmt.Errorf("experiments: slice window %s exceeds source window %s of %q", w, s.w, s.p.Name)
	}
	return envSource{
		e:    s.e,
		p:    s.p,
		w:    trace.Window{Off: s.w.Off + w.Off, Len: w.Len},
		kind: "slice",
	}, nil
}

// ForEach runs fn(i) for every i in [0, n) across the environment's
// worker pool. fn must confine its writes to its own index.
func (e *Env) ForEach(n int, fn func(i int) error) error {
	return runner.ForEach(e.ctx, e.opts.Parallel, n, fn)
}

// ForEachWorkload runs fn for every workload of the suite across the
// environment's worker pool. fn must confine its writes to its own index.
func (e *Env) ForEachWorkload(fn func(i int, wl workload.Profile) error) error {
	return e.ForEach(len(e.opts.Workloads), func(i int) error {
		return fn(i, e.opts.Workloads[i])
	})
}

// SweepWorkloads returns the suite the design-space sweep artifacts run
// over (Options.SweepSuite).
func (e *Env) SweepWorkloads() []workload.Profile {
	return e.opts.SweepSuite()
}

// RunGrid expands a sweep spec and executes every cell as a simulation
// job through the environment (cached program images, bounded pool,
// context cancellation). On success the grid's raw per-job results are
// recorded for the results store — `experiments -out` persists them as
// jobs/<key>.json so any grid cell of any artifact can be diffed across
// runs.
func (e *Env) RunGrid(s sweep.Spec) (*sweep.Grid, error) {
	g, err := sweep.Run(e, s)
	if err != nil {
		return g, err
	}
	jrs, err := g.ReportJobs()
	if err != nil {
		return g, err
	}
	e.recordJobs(jrs)
	return g, nil
}

// EachGrid expands a sweep spec and fans a per-cell analysis out across
// the environment's worker pool (the non-simulation counterpart of
// RunGrid, for trace-based grid measurements).
func (e *Env) EachGrid(s sweep.Spec, fn func(c *sweep.Cell) error) (*sweep.Grid, error) {
	return sweep.Each(e, s, fn)
}

// recordJobs merges per-job results into the environment's collection,
// replacing earlier results with the same key (artifact reruns).
func (e *Env) recordJobs(jrs []report.JobResult) {
	e.jobMu.Lock()
	defer e.jobMu.Unlock()
	for _, jr := range jrs {
		if i, ok := e.jobIdx[jr.Key]; ok {
			e.jobRes[i] = jr
			continue
		}
		e.jobIdx[jr.Key] = len(e.jobRes)
		e.jobRes = append(e.jobRes, jr)
	}
}

// JobResults returns every raw per-job result collected from sweep grids
// run in this environment, in first-run order.
func (e *Env) JobResults() []report.JobResult {
	e.jobMu.Lock()
	defer e.jobMu.Unlock()
	out := make([]report.JobResult, len(e.jobRes))
	copy(out, e.jobRes)
	return out
}

// SimConfig returns the simulation configuration implied by the options.
func (o Options) SimConfig() sim.Config {
	return sim.Config{
		System:        o.System,
		WarmupInstrs:  o.WarmupInstrs,
		MeasureInstrs: o.MeasureInstrs,
	}
}

// Report is one regenerated experiment artifact: the rendered text plus
// the driver's typed result, so downstream tooling (the results store,
// the golden regression suite) never re-parses tables.
type Report struct {
	// ID is the artifact identifier ("fig2", "table1", ...).
	ID string `json:"id"`
	// Title describes the artifact.
	Title string `json:"title"`
	// Text is the rendered result.
	Text string `json:"text"`
	// Data is the driver's typed result (Fig2Result, Fig10Result, ...),
	// JSON-marshalable with stable field names.
	Data any `json:"data,omitempty"`
}

// Artifact converts the report into its serializable schema form.
func (r Report) Artifact() (report.Artifact, error) {
	return report.NewArtifact(r.ID, r.Title, r.Text, r.Data)
}

// Artifacts converts a report slice (e.g. a RunAll result) into schema
// artifacts, preserving order.
func Artifacts(reps []Report) ([]report.Artifact, error) {
	arts := make([]report.Artifact, 0, len(reps))
	for _, rep := range reps {
		a, err := rep.Artifact()
		if err != nil {
			return nil, err
		}
		arts = append(arts, a)
	}
	return arts, nil
}

// RunOptions returns the serializable form of the options for run
// metadata (results-store run.json).
func (o Options) RunOptions() report.RunOptions {
	names := make([]string, len(o.Workloads))
	for i, wl := range o.Workloads {
		names[i] = wl.Name
	}
	// Record the sweep suite only when explicitly overridden: an absent
	// field means "the default" (the XL suite — or, for runs that never
	// executed a sweep artifact, nothing at all). Unconditionally stamping
	// the default here would claim XL workloads ran in runs where they
	// did not.
	var sweepNames []string
	for _, wl := range o.SweepWorkloads {
		sweepNames = append(sweepNames, wl.Name)
	}
	return report.RunOptions{
		Workloads:      names,
		SweepWorkloads: sweepNames,
		WarmupInstrs:   o.WarmupInstrs,
		MeasureInstrs:  o.MeasureInstrs,
		Parallel:       o.Parallel,
		System:         o.System,
	}
}

// Runner regenerates one artifact.
type Runner func(e *Env) (Report, error)

// registry maps artifact IDs to runners, populated by init functions in
// the per-figure files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the registered artifact identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates one artifact by ID.
func Run(e *Env, id string) (Report, error) {
	r, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown artifact %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(e)
}

// RunAll regenerates every registered artifact in ID order. Artifacts run
// one after another; each fans its own jobs out across the environment's
// worker pool.
func RunAll(e *Env) ([]Report, error) {
	var out []Report
	for _, id := range IDs() {
		rep, err := Run(e, id)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
