// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver regenerates the corresponding artifact —
// the same rows and series the paper reports — against the synthetic
// workload suite, and returns both structured data (for tests and
// downstream tooling) and rendered text (for the cmd/experiments CLI).
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record produced by these drivers.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options control the scale and system configuration of every experiment.
type Options struct {
	// Workloads is the evaluated suite (defaults to the six standard
	// workloads in the paper's order).
	Workloads []workload.Profile
	// System is the simulated machine (Table I).
	System config.System
	// WarmupInstrs executes before measurement in simulation-based
	// experiments (and before trace analysis windows in trace-based ones)
	// so results reflect steady state, per the paper's methodology.
	WarmupInstrs uint64
	// MeasureInstrs is the measured interval length.
	MeasureInstrs uint64
}

// DefaultOptions is the full-scale configuration used by cmd/experiments.
func DefaultOptions() Options {
	return Options{
		Workloads:     workload.StandardSuite(),
		System:        config.Default(),
		WarmupInstrs:  8_000_000,
		MeasureInstrs: 2_000_000,
	}
}

// QuickOptions is a reduced-scale configuration for tests and benchmarks.
// Coverage numbers are slightly depressed (less warmup) but every shape
// assertion in the test suite holds at this scale.
func QuickOptions() Options {
	return Options{
		Workloads:     workload.StandardSuite(),
		System:        config.Default(),
		WarmupInstrs:  4_000_000,
		MeasureInstrs: 1_000_000,
	}
}

// Validate rejects unusable options.
func (o Options) Validate() error {
	if len(o.Workloads) == 0 {
		return fmt.Errorf("experiments: no workloads")
	}
	if o.MeasureInstrs == 0 {
		return fmt.Errorf("experiments: zero measurement interval")
	}
	return o.System.Validate()
}

// Env caches per-workload artifacts (programs, retire-order streams) so
// that the trace-based experiments do not regenerate them repeatedly.
type Env struct {
	opts Options

	mu       sync.Mutex
	programs map[string]*workload.Program
	streams  map[string]trace.Stream
}

// NewEnv builds an environment; it panics on invalid options (experiment
// configuration is programmer input).
func NewEnv(opts Options) *Env {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Env{
		opts:     opts,
		programs: make(map[string]*workload.Program),
		streams:  make(map[string]trace.Stream),
	}
}

// Options returns the environment's options.
func (e *Env) Options() Options { return e.opts }

// Program returns the (cached) program image for a workload.
func (e *Env) Program(p workload.Profile) (*workload.Program, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if prog, ok := e.programs[p.Name]; ok {
		return prog, nil
	}
	prog, err := workload.BuildProgram(p)
	if err != nil {
		return nil, err
	}
	e.programs[p.Name] = prog
	return prog, nil
}

// Stream returns the (cached) retire-order stream covering warmup plus
// measurement for a workload.
func (e *Env) Stream(p workload.Profile) (trace.Stream, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.streams[p.Name]; ok {
		return s, nil
	}
	prog, ok := e.programs[p.Name]
	if !ok {
		var err error
		prog, err = workload.BuildProgram(p)
		if err != nil {
			return nil, err
		}
		e.programs[p.Name] = prog
	}
	total := e.opts.WarmupInstrs + e.opts.MeasureInstrs
	s := make(trace.Stream, 0, total+1024)
	ex := workload.NewExecutor(prog)
	ex.Run(total, func(r trace.Record) { s = append(s, r) })
	e.streams[p.Name] = s
	return s, nil
}

// Report is a rendered experiment artifact.
type Report struct {
	// ID is the artifact identifier ("fig2", "table1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Text is the rendered result.
	Text string
}

// Runner regenerates one artifact.
type Runner func(e *Env) (Report, error)

// registry maps artifact IDs to runners, populated by init functions in
// the per-figure files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the registered artifact identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates one artifact by ID.
func Run(e *Env, id string) (Report, error) {
	r, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown artifact %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(e)
}

// RunAll regenerates every registered artifact in ID order.
func RunAll(e *Env) ([]Report, error) {
	var out []Report
	for _, id := range IDs() {
		rep, err := Run(e, id)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
