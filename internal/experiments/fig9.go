package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Fig9MaxLog2 is the largest stream-length bucket rendered (the paper's
// x-axis runs to log2 = 21 in 8-block regions).
const Fig9MaxLog2 = 21

// Fig9LeftResult holds the stream-length contribution CDF per workload.
type Fig9LeftResult struct {
	Workloads []string `json:"workloads"`
	// CDF[workload][log2 bucket]: cumulative fraction of correct
	// predictions contributed by streams of at most 2^bucket regions.
	CDF [][]float64 `json:"cdf"`
}

// Fig9Left reproduces Figure 9 (left): the distribution of correct
// predictions over temporal stream lengths. Every stream (one SAB
// lifetime) contributes its advance count at the log2 bucket of its
// length, so long streams' larger contribution is visible directly.
//
// The sweep spec has a single workload axis whose values also install an
// Instrument hook: each cell's freshly resolved PIF instance gets a
// stream-end hook bound to that cell's private histogram, so concurrent
// jobs never share engine or histogram state. The hook is process-local,
// which is exactly why it rides Instrument rather than the engine spec.
func Fig9Left(e *Env) (Fig9LeftResult, error) {
	opts := e.Options()
	res := Fig9LeftResult{}

	hists := make([]*stats.Histogram, len(opts.Workloads))
	ax := sweep.Axis{Name: "workload"}
	for i, wl := range opts.Workloads {
		hist := stats.NewHistogram()
		hists[i] = hist
		wl := wl
		ax.Values = append(ax.Values, sweep.Value{
			Key:  sweep.KeyOf(wl.Name),
			Name: wl.Name,
			Apply: func(s *sweep.Settings) {
				s.Workload = wl
				s.Engine = prefetch.Spec{Name: "pif"}
				s.Instrument = func(p prefetch.Prefetcher) {
					p.(*core.PIF).SetStreamEndHook(func(advances uint64) {
						if advances > 0 {
							hist.ObserveN(stats.Log2Bucket(advances), advances)
						}
					})
				}
			},
		})
	}
	spec := sweep.Spec{Name: "fig9L", Base: opts.SimConfig(), Axes: []sweep.Axis{ax}}
	if _, err := e.RunGrid(spec); err != nil {
		return res, err
	}

	for i, wl := range opts.Workloads {
		hist := hists[i]
		cdf := make([]float64, Fig9MaxLog2+1)
		var cum uint64
		for k := 0; k <= Fig9MaxLog2; k++ {
			cum += hist.Count(k)
			if hist.Total() > 0 {
				cdf[k] = float64(cum) / float64(hist.Total())
			}
		}
		res.Workloads = append(res.Workloads, wl.Name)
		res.CDF = append(res.CDF, cdf)
	}
	return res, nil
}

// FractionFromStreamsAtLeast returns, for workload i, the fraction of
// correct predictions contributed by streams of at least 2^log2Len regions.
func (r Fig9LeftResult) FractionFromStreamsAtLeast(i, log2Len int) float64 {
	if log2Len <= 0 {
		return 1
	}
	return 1 - r.CDF[i][log2Len-1]
}

// Render formats the CDF at the odd log2 points the paper labels.
func (r Fig9LeftResult) Render() string {
	var cols []string
	for k := 1; k <= Fig9MaxLog2; k += 2 {
		cols = append(cols, fmt.Sprintf("2^%d", k))
	}
	tab := &stats.Table{
		Title:   "Figure 9 (left): correct predictions by temporal stream length (CDF, regions)",
		ColName: cols,
	}
	for i, w := range r.Workloads {
		var vals []float64
		for k := 1; k <= Fig9MaxLog2; k += 2 {
			vals = append(vals, r.CDF[i][k])
		}
		tab.AddRow(w, vals...)
	}
	return tab.Render(true)
}

// Fig9HistorySizes is the swept history buffer capacity in regions.
var Fig9HistorySizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}

// Fig9RightResult holds coverage vs history size.
type Fig9RightResult struct {
	Workloads []string `json:"workloads"`
	Sizes     []int    `json:"sizes"`
	// Coverage[workload][size index].
	Coverage [][]float64 `json:"coverage"`
}

// Fig9Result bundles both panels of Figure 9 for the structured report.
type Fig9Result struct {
	Left  Fig9LeftResult  `json:"left"`
	Right Fig9RightResult `json:"right"`
}

// Fig9Right reproduces Figure 9 (right): predictor coverage as the history
// buffer capacity varies. Coverage rises monotonically with storage and
// saturates — the paper's engineering argument for a 32K-region buffer.
// The (workload × history size) design space is one sweep spec; the grid
// fans out across the worker pool and the table is a projection of it.
func Fig9Right(e *Env) (Fig9RightResult, error) {
	opts := e.Options()
	res := Fig9RightResult{Sizes: Fig9HistorySizes}

	// Only the history capacity varies; the index stays at its default
	// size (an explicit index param suppresses the schema's history/4
	// scaling), isolating the history buffer as in the paper's figure.
	defaultIndex := float64(core.DefaultConfig().IndexEntries)
	hist := sweep.Axis{Name: "history"}
	for _, size := range Fig9HistorySizes {
		spec := prefetch.Spec{Name: "pif",
			Params: map[string]float64{"history": float64(size), "index": defaultIndex}}
		hist.Values = append(hist.Values, sweep.Value{
			Key:  fmt.Sprintf("%dk", size>>10),
			Name: fmt.Sprintf("%dK", size>>10),
			Apply: func(s *sweep.Settings) {
				s.Engine = spec
			},
		})
	}
	g, err := e.RunGrid(sweep.Spec{
		Name: "fig9R",
		Base: opts.SimConfig(),
		Axes: []sweep.Axis{sweep.WorkloadAxis("workload", opts.Workloads), hist},
	})
	if err != nil {
		return res, err
	}

	for wi, wl := range opts.Workloads {
		row := make([]float64, len(Fig9HistorySizes))
		for si := range Fig9HistorySizes {
			row[si] = g.SimAt(wi, si).Coverage()
		}
		res.Workloads = append(res.Workloads, wl.Name)
		res.Coverage = append(res.Coverage, row)
	}
	return res, nil
}

// Render formats the history sweep.
func (r Fig9RightResult) Render() string {
	cols := make([]string, len(r.Sizes))
	for i, s := range r.Sizes {
		cols[i] = fmt.Sprintf("%dK", s>>10)
	}
	tab := &stats.Table{
		Title:   "Figure 9 (right): coverage vs history buffer size (regions)",
		ColName: cols,
	}
	for i, w := range r.Workloads {
		tab.AddRow(w, r.Coverage[i]...)
	}
	return tab.Render(true)
}

func init() {
	register("fig9", func(e *Env) (Report, error) {
		left, err := Fig9Left(e)
		if err != nil {
			return Report{}, err
		}
		right, err := Fig9Right(e)
		if err != nil {
			return Report{}, err
		}
		return Report{
			ID:    "fig9",
			Title: "Stream length contribution and history size sensitivity",
			Text:  left.Render() + "\n" + right.Render(),
			Data:  Fig9Result{Left: left, Right: right},
		}, nil
	})
}
