package experiments

import (
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig10Result holds the competitive comparison: L1 miss coverage and
// speedup (UIPC normalized to the no-prefetch baseline) per workload for
// the next-line prefetcher, TIFS, PIF, and the perfect-latency L1.
type Fig10Result struct {
	Workloads []string `json:"workloads"`

	// Miss coverage relative to the no-prefetch baseline miss count.
	NextLineCov []float64 `json:"next_line_cov"`
	TIFSCov     []float64 `json:"tifs_cov"`
	PIFCov      []float64 `json:"pif_cov"`

	// Speedups over the no-prefetch baseline.
	NextLineSpeedup []float64 `json:"next_line_speedup"`
	TIFSSpeedup     []float64 `json:"tifs_speedup"`
	PIFSpeedup      []float64 `json:"pif_speedup"`
	PerfectSpeedup  []float64 `json:"perfect_speedup"`
}

// NextLineDegree is the aggressive next-line configuration compared
// against (degree-4 sequential prefetch).
const NextLineDegree = 4

// Fig10 reproduces Figure 10: the left panel's miss coverage (fraction of
// the baseline's correct-path misses eliminated) and the right panel's
// speedup, for Next-Line, TIFS, PIF, and the perfect-latency L1 bound.
// TIFS and PIF run with unlimited history, matching the paper's
// competitive comparison "without history storage limitations".
//
// Every (workload × engine) pair is one runner job; the five variants per
// workload occupy consecutive submission slots, so assembling rows in
// submission order reproduces the serial driver's tables exactly.
func Fig10(e *Env) (Fig10Result, error) {
	opts := e.Options()
	res := Fig10Result{}

	scfg := opts.SimConfig()
	perfCfg := scfg
	perfCfg.PerfectL1 = true

	pifCfg := core.DefaultConfig()
	pifCfg.HistoryRegions = 1 << 22 // effectively unlimited
	pifCfg.IndexEntries = 1 << 22
	tifsCfg := prefetch.DefaultTIFSConfig() // HistoryBlocks 0 = unlimited

	variants := []struct {
		name string
		cfg  sim.Config
		mk   prefetch.Factory
	}{
		{"None", scfg, func() prefetch.Prefetcher { return prefetch.None{} }},
		{"Next-Line", scfg, func() prefetch.Prefetcher { return prefetch.NewNextLine(NextLineDegree) }},
		{"TIFS", scfg, func() prefetch.Prefetcher { return prefetch.NewTIFS(tifsCfg) }},
		{"PIF", scfg, func() prefetch.Prefetcher { return core.New(pifCfg) }},
		{"Perfect", perfCfg, func() prefetch.Prefetcher { return prefetch.None{} }},
	}

	var jobs []runner.Job
	for _, wl := range opts.Workloads {
		for _, v := range variants {
			jobs = append(jobs, runner.Job{
				Label:         "fig10/" + wl.Name + "/" + v.name,
				Workload:      wl,
				Config:        v.cfg,
				NewPrefetcher: v.mk,
			})
		}
	}
	results, err := e.RunJobs(jobs)
	if err != nil {
		return res, err
	}

	for wi, wl := range opts.Workloads {
		row := results[wi*len(variants) : (wi+1)*len(variants)]
		base, nl, tifs, pif, perf := row[0].Sim, row[1].Sim, row[2].Sim, row[3].Sim, row[4].Sim

		cov := func(r sim.Result) float64 {
			if base.CorrectMisses == 0 {
				return 0
			}
			c := 1 - float64(r.CorrectMisses)/float64(base.CorrectMisses)
			if c < 0 {
				c = 0
			}
			return c
		}
		spd := func(r sim.Result) float64 {
			if base.UIPC == 0 {
				return 0
			}
			return r.UIPC / base.UIPC
		}

		res.Workloads = append(res.Workloads, wl.Name)
		res.NextLineCov = append(res.NextLineCov, cov(nl))
		res.TIFSCov = append(res.TIFSCov, cov(tifs))
		res.PIFCov = append(res.PIFCov, cov(pif))
		res.NextLineSpeedup = append(res.NextLineSpeedup, spd(nl))
		res.TIFSSpeedup = append(res.TIFSSpeedup, spd(tifs))
		res.PIFSpeedup = append(res.PIFSpeedup, spd(pif))
		res.PerfectSpeedup = append(res.PerfectSpeedup, spd(perf))
	}
	return res, nil
}

// MeanPIFSpeedup returns the average PIF speedup (the paper's headline
// "27% on average").
func (r Fig10Result) MeanPIFSpeedup() float64 { return stats.Mean(r.PIFSpeedup) }

// MeanPerfectSpeedup returns the average perfect-L1 speedup (paper: 29%).
func (r Fig10Result) MeanPerfectSpeedup() float64 { return stats.Mean(r.PerfectSpeedup) }

// Render formats both panels.
func (r Fig10Result) Render() string {
	left := &stats.Table{
		Title:   "Figure 10 (left): L1 miss coverage",
		ColName: []string{"Next-Line", "TIFS", "PIF"},
	}
	right := &stats.Table{
		Title:   "Figure 10 (right): speedup over no-prefetch baseline",
		ColName: []string{"Next-Line", "TIFS", "PIF", "Perfect"},
	}
	for i, w := range r.Workloads {
		left.AddRow(w, r.NextLineCov[i], r.TIFSCov[i], r.PIFCov[i])
		right.AddRow(w, r.NextLineSpeedup[i], r.TIFSSpeedup[i], r.PIFSpeedup[i], r.PerfectSpeedup[i])
	}
	right.AddRow("average",
		stats.Mean(r.NextLineSpeedup), stats.Mean(r.TIFSSpeedup),
		stats.Mean(r.PIFSpeedup), stats.Mean(r.PerfectSpeedup))
	return left.Render(true) + "\n" + right.Render(false)
}

func init() {
	register("fig10", func(e *Env) (Report, error) {
		r, err := Fig10(e)
		if err != nil {
			return Report{}, err
		}
		return Report{ID: "fig10", Title: "Competitive coverage and performance comparison", Text: r.Render(), Data: r}, nil
	})
}
