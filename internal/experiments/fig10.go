package experiments

import (
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Fig10Result holds the competitive comparison: L1 miss coverage and
// speedup (UIPC normalized to the no-prefetch baseline) per workload for
// the next-line prefetcher, TIFS, PIF, and the perfect-latency L1.
type Fig10Result struct {
	Workloads []string `json:"workloads"`

	// Miss coverage relative to the no-prefetch baseline miss count.
	NextLineCov []float64 `json:"next_line_cov"`
	TIFSCov     []float64 `json:"tifs_cov"`
	PIFCov      []float64 `json:"pif_cov"`

	// Speedups over the no-prefetch baseline.
	NextLineSpeedup []float64 `json:"next_line_speedup"`
	TIFSSpeedup     []float64 `json:"tifs_speedup"`
	PIFSpeedup      []float64 `json:"pif_speedup"`
	PerfectSpeedup  []float64 `json:"perfect_speedup"`
}

// NextLineDegree is the aggressive next-line configuration compared
// against (degree-4 sequential prefetch).
const NextLineDegree = 4

// Fig10 reproduces Figure 10: the left panel's miss coverage (fraction of
// the baseline's correct-path misses eliminated) and the right panel's
// speedup, for Next-Line, TIFS, PIF, and the perfect-latency L1 bound.
// TIFS and PIF run with unlimited history, matching the paper's
// competitive comparison "without history storage limitations".
//
// The competitive comparison is a (workload × engine) sweep spec: the
// engine axis carries the five variants (the perfect-L1 value also
// mutates the sim options), and both panels are projections of the
// executed grid.
func Fig10(e *Env) (Fig10Result, error) {
	opts := e.Options()
	res := Fig10Result{}

	unlimited := float64(1 << 22) // effectively unlimited history/index

	mkValue := func(name string, spec prefetch.Spec, perfect bool) sweep.Value {
		return sweep.Value{
			Key:  sweep.KeyOf(name),
			Name: name,
			Apply: func(s *sweep.Settings) {
				s.Engine = spec
				s.Sim.PerfectL1 = perfect
			},
		}
	}
	engines := sweep.Axis{Name: "engine", Values: []sweep.Value{
		mkValue("None", prefetch.Spec{Name: "none"}, false),
		mkValue("Next-Line", prefetch.Spec{Name: "nextline",
			Params: map[string]float64{"degree": NextLineDegree}}, false),
		// TIFS defaults to unlimited history (HistoryBlocks 0).
		mkValue("TIFS", prefetch.Spec{Name: "tifs"}, false),
		mkValue("PIF", prefetch.Spec{Name: "pif",
			Params: map[string]float64{"history": unlimited, "index": unlimited}}, false),
		mkValue("Perfect", prefetch.Spec{Name: "none"}, true),
	}}

	g, err := e.RunGrid(sweep.Spec{
		Name: "fig10",
		Base: opts.SimConfig(),
		Axes: []sweep.Axis{sweep.WorkloadAxis("workload", opts.Workloads), engines},
	})
	if err != nil {
		return res, err
	}

	for wi, wl := range opts.Workloads {
		base, nl, tifs, pif, perf := g.SimAt(wi, 0), g.SimAt(wi, 1), g.SimAt(wi, 2), g.SimAt(wi, 3), g.SimAt(wi, 4)

		res.Workloads = append(res.Workloads, wl.Name)
		res.NextLineCov = append(res.NextLineCov, coverageVs(base, nl))
		res.TIFSCov = append(res.TIFSCov, coverageVs(base, tifs))
		res.PIFCov = append(res.PIFCov, coverageVs(base, pif))
		res.NextLineSpeedup = append(res.NextLineSpeedup, speedupVs(base, nl))
		res.TIFSSpeedup = append(res.TIFSSpeedup, speedupVs(base, tifs))
		res.PIFSpeedup = append(res.PIFSpeedup, speedupVs(base, pif))
		res.PerfectSpeedup = append(res.PerfectSpeedup, speedupVs(base, perf))
	}
	return res, nil
}

// MeanPIFSpeedup returns the average PIF speedup (the paper's headline
// "27% on average").
func (r Fig10Result) MeanPIFSpeedup() float64 { return stats.Mean(r.PIFSpeedup) }

// MeanPerfectSpeedup returns the average perfect-L1 speedup (paper: 29%).
func (r Fig10Result) MeanPerfectSpeedup() float64 { return stats.Mean(r.PerfectSpeedup) }

// Render formats both panels.
func (r Fig10Result) Render() string {
	left := &stats.Table{
		Title:   "Figure 10 (left): L1 miss coverage",
		ColName: []string{"Next-Line", "TIFS", "PIF"},
	}
	right := &stats.Table{
		Title:   "Figure 10 (right): speedup over no-prefetch baseline",
		ColName: []string{"Next-Line", "TIFS", "PIF", "Perfect"},
	}
	for i, w := range r.Workloads {
		left.AddRow(w, r.NextLineCov[i], r.TIFSCov[i], r.PIFCov[i])
		right.AddRow(w, r.NextLineSpeedup[i], r.TIFSSpeedup[i], r.PIFSpeedup[i], r.PerfectSpeedup[i])
	}
	right.AddRow("average",
		stats.Mean(r.NextLineSpeedup), stats.Mean(r.TIFSSpeedup),
		stats.Mean(r.PIFSpeedup), stats.Mean(r.PerfectSpeedup))
	return left.Render(true) + "\n" + right.Render(false)
}

func init() {
	register("fig10", func(e *Env) (Report, error) {
		r, err := Fig10(e)
		if err != nil {
			return Report{}, err
		}
		return Report{ID: "fig10", Title: "Competitive coverage and performance comparison", Text: r.Render(), Data: r}, nil
	})
}
