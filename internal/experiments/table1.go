package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Table1 renders the system configuration (Table I left) and the workload
// suite (Table I right) actually used by this reproduction, including the
// synthetic-substitution parameters, so every experiment's machine and
// workloads are auditable in one place.
func Table1(e *Env) (string, error) {
	opts := e.Options()
	// Warm the program cache in parallel; rendering below then reads the
	// cached images in suite order.
	if err := e.ForEachWorkload(func(i int, wl workload.Profile) error {
		_, err := e.Program(wl)
		return err
	}); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(opts.System.TableI())
	b.WriteString("\nTable I (right): workload suite (synthetic stand-ins; see DESIGN.md §4)\n")
	for _, wl := range opts.Workloads {
		prog, err := e.Program(wl)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-12s %-5s funcs=%d shared=%d handlers=%d footprint=%dKB tx=%d/%d variants, intr every %d\n",
			wl.Name, wl.Suite,
			wl.Funcs, wl.SharedFuncs, wl.HandlerFuncs,
			prog.FootprintBlks*64/1024,
			wl.TxTypes, wl.TxVariants, wl.InterruptEvery)
	}
	return b.String(), nil
}

func init() {
	register("table1", func(e *Env) (Report, error) {
		text, err := Table1(e)
		if err != nil {
			return Report{}, err
		}
		return Report{ID: "table1", Title: "System and application parameters", Text: text}, nil
	})
}
