package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sweep"
)

// Table1Workload is one row of Table I (right): a workload profile plus
// the footprint its built program image actually occupies.
type Table1Workload struct {
	Name           string `json:"name"`
	Suite          string `json:"suite"`
	Funcs          int    `json:"funcs"`
	SharedFuncs    int    `json:"shared_funcs"`
	HandlerFuncs   int    `json:"handler_funcs"`
	FootprintKB    int    `json:"footprint_kb"`
	TxTypes        int    `json:"tx_types"`
	TxVariants     int    `json:"tx_variants"`
	InterruptEvery int    `json:"interrupt_every"`
}

// Table1Result holds the system configuration (Table I left) and the
// workload suite (Table I right) actually used by this reproduction. It
// carries the full machine description, so a results-store diff catches a
// configuration change even when no reproduced number moves.
type Table1Result struct {
	System    config.System    `json:"system"`
	Workloads []Table1Workload `json:"workloads"`
}

// Table1 regenerates the Table I data, including the synthetic-substitution
// parameters, so every experiment's machine and workloads are auditable in
// one place.
func Table1(e *Env) (Table1Result, error) {
	opts := e.Options()
	// Warm the program cache in parallel — a one-axis sweep whose cells
	// build program images; the assembly below then reads the cached
	// images in suite order.
	if _, err := e.EachGrid(sweep.Spec{
		Name: "table1",
		Base: opts.SimConfig(),
		Axes: []sweep.Axis{sweep.WorkloadAxis("workload", opts.Workloads)},
	}, func(c *sweep.Cell) error {
		_, err := e.Program(c.Settings.Workload)
		return err
	}); err != nil {
		return Table1Result{}, err
	}
	res := Table1Result{System: opts.System}
	for _, wl := range opts.Workloads {
		prog, err := e.Program(wl)
		if err != nil {
			return Table1Result{}, err
		}
		res.Workloads = append(res.Workloads, Table1Workload{
			Name:           wl.Name,
			Suite:          wl.Suite,
			Funcs:          wl.Funcs,
			SharedFuncs:    wl.SharedFuncs,
			HandlerFuncs:   wl.HandlerFuncs,
			FootprintKB:    prog.FootprintBlks * isa.BlockBytes / 1024,
			TxTypes:        wl.TxTypes,
			TxVariants:     wl.TxVariants,
			InterruptEvery: wl.InterruptEvery,
		})
	}
	return res, nil
}

// Render formats the result in the shape of the paper's Table I.
func (r Table1Result) Render() string {
	var b strings.Builder
	b.WriteString(r.System.TableI())
	b.WriteString("\nTable I (right): workload suite (synthetic stand-ins; see DESIGN.md §4)\n")
	for _, wl := range r.Workloads {
		fmt.Fprintf(&b, "  %-12s %-5s funcs=%d shared=%d handlers=%d footprint=%dKB tx=%d/%d variants, intr every %d\n",
			wl.Name, wl.Suite,
			wl.Funcs, wl.SharedFuncs, wl.HandlerFuncs,
			wl.FootprintKB,
			wl.TxTypes, wl.TxVariants, wl.InterruptEvery)
	}
	return b.String()
}

func init() {
	register("table1", func(e *Env) (Report, error) {
		r, err := Table1(e)
		if err != nil {
			return Report{}, err
		}
		return Report{ID: "table1", Title: "System and application parameters", Text: r.Render(), Data: r}, nil
	})
}
