package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// sweepEnv is a dedicated reduced-scale environment for the sweep shape
// tests: the golden suite already exercises both sweep artifacts at full
// QuickOptions scale, so re-running the XL grids at that scale here would
// only burn -race budget. The shape assertions hold from ~1M warmup up.
var (
	sweepEnvOnce sync.Once
	sweepEnvVal  *Env
)

func sweepTestEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment tests are skipped in -short mode")
	}
	sweepEnvOnce.Do(func() {
		opts := QuickOptions()
		opts.WarmupInstrs = 1_500_000
		opts.MeasureInstrs = 500_000
		sweepEnvVal = NewEnv(opts)
	})
	return sweepEnvVal
}

func TestSweepHistoryShape(t *testing.T) {
	e := sweepTestEnv(t)
	r, err := SweepHistory(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != len(workload.XLSuite()) {
		t.Fatalf("workloads = %v", r.Workloads)
	}
	last := len(r.BudgetsKB) - 1
	for i, w := range r.Workloads {
		// Coverage and speedup grow with storage and saturate: the largest
		// budget must beat the smallest decisively on both engines.
		if r.PIFCov[i][last] <= r.PIFCov[i][0] {
			t.Errorf("%s: PIF coverage flat across budgets (%.3f -> %.3f)", w, r.PIFCov[i][0], r.PIFCov[i][last])
		}
		if r.TIFSCov[i][last] <= r.TIFSCov[i][0] {
			t.Errorf("%s: TIFS coverage flat across budgets (%.3f -> %.3f)", w, r.TIFSCov[i][0], r.TIFSCov[i][last])
		}
		// At equal storage budget PIF dominates TIFS from the mid-sweep on
		// (the MANA-style comparison this artifact exists for).
		for bi := 1; bi < len(r.BudgetsKB); bi++ {
			if r.PIFCov[i][bi] < r.TIFSCov[i][bi] {
				t.Errorf("%s: PIF coverage %.3f < TIFS %.3f at %dKB", w, r.PIFCov[i][bi], r.TIFSCov[i][bi], r.BudgetsKB[bi])
			}
		}
		// Speedups never fall below ~parity and track coverage.
		for bi := range r.BudgetsKB {
			if r.PIFSpeedup[i][bi] < 0.99 || r.TIFSSpeedup[i][bi] < 0.99 {
				t.Errorf("%s: speedup below parity at %dKB (PIF %.3f, TIFS %.3f)",
					w, r.BudgetsKB[bi], r.PIFSpeedup[i][bi], r.TIFSSpeedup[i][bi])
			}
		}
		if r.PIFSpeedup[i][last] <= r.PIFSpeedup[i][0] {
			t.Errorf("%s: PIF speedup flat across budgets", w)
		}
	}
	text := r.Render()
	for _, want := range []string{"sweep-history", "PIF/8K", "TIFS/2048K"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSweepL1Shape(t *testing.T) {
	e := sweepTestEnv(t)
	r, err := SweepL1(e)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.SizesKB) - 1
	for i, w := range r.Workloads {
		// A bigger L1-I helps the baseline monotonically (XL footprints
		// dwarf every swept size, so no ceiling effects).
		for si := 1; si < len(r.SizesKB); si++ {
			if r.BaseUIPC[i][si] < r.BaseUIPC[i][si-1]-0.005 {
				t.Errorf("%s: baseline UIPC fell with L1 growth (%dKB %.3f -> %dKB %.3f)",
					w, r.SizesKB[si-1], r.BaseUIPC[i][si-1], r.SizesKB[si], r.BaseUIPC[i][si])
			}
		}
		// PIF beats the same-size baseline everywhere.
		for si := range r.SizesKB {
			if r.PIFSpeedup[i][si] <= 1.0 {
				t.Errorf("%s: PIF speedup %.3f <= 1 at %dKB", w, r.PIFSpeedup[i][si], r.SizesKB[si])
			}
		}
		// The headline: PIF at the smallest L1-I beats the no-prefetch
		// baseline at the largest — prefetching compensates for capacity.
		if r.PIFUIPC[i][0] <= r.BaseUIPC[i][last] {
			t.Errorf("%s: PIF at %dKB (%.3f) does not beat baseline at %dKB (%.3f)",
				w, r.SizesKB[0], r.PIFUIPC[i][0], r.SizesKB[last], r.BaseUIPC[i][last])
		}
		// And PIF's advantage shrinks as the cache grows.
		if r.PIFSpeedup[i][last] >= r.PIFSpeedup[i][0] {
			t.Errorf("%s: PIF speedup did not shrink with L1 growth (%.3f -> %.3f)",
				w, r.PIFSpeedup[i][0], r.PIFSpeedup[i][last])
		}
	}
}

// TestSweepRespectsOverrideSuite locks Options.SweepWorkloads: a custom
// suite replaces the XL default in both sweep artifacts.
func TestSweepRespectsOverrideSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	opts := QuickOptions()
	opts.SweepWorkloads = []workload.Profile{workload.DSSQry2()}
	opts.WarmupInstrs = 200_000
	opts.MeasureInstrs = 100_000
	e := NewEnv(opts)
	r, err := SweepL1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 1 || r.Workloads[0] != "DSS Qry2" {
		t.Fatalf("workloads = %v", r.Workloads)
	}
}

// TestEnvCollectsJobResults locks the per-job persistence feed: grids run
// through the environment surface one raw result per cell, keyed and
// deduplicated across artifact reruns.
func TestEnvCollectsJobResults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	opts := QuickOptions()
	opts.Workloads = []workload.Profile{workload.DSSQry2()}
	opts.WarmupInstrs = 200_000
	opts.MeasureInstrs = 100_000
	e := NewEnv(opts)
	if _, err := Fig9Right(e); err != nil {
		t.Fatal(err)
	}
	jobs := e.JobResults()
	want := len(Fig9HistorySizes) // one workload x sizes
	if len(jobs) != want {
		t.Fatalf("collected %d job results, want %d", len(jobs), want)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if !strings.HasPrefix(j.Key, "fig9R.") {
			t.Errorf("unexpected key %q", j.Key)
		}
		if seen[j.Key] {
			t.Errorf("duplicate key %q", j.Key)
		}
		seen[j.Key] = true
		if len(j.Data) == 0 || !strings.Contains(string(j.Data), `"uipc"`) {
			t.Errorf("job %s carries no raw sim result", j.Key)
		}
		if j.Point["workload"] != "dss-qry2" {
			t.Errorf("job %s point = %v", j.Key, j.Point)
		}
	}
	// A rerun replaces rather than duplicates.
	if _, err := Fig9Right(e); err != nil {
		t.Fatal(err)
	}
	if again := e.JobResults(); len(again) != want {
		t.Fatalf("rerun grew job results to %d", len(again))
	}
}

func TestBuildSweep(t *testing.T) {
	opts := QuickOptions()
	spec, err := BuildSweep(NewEnv(opts), "s", []string{"workload=xl", "engine=pif,tifs", "budget=8,32"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2*2*2 {
		t.Fatalf("size = %d", g.Size())
	}
	if _, err := g.Jobs(); err != nil {
		t.Fatal(err)
	}
	// The budget axis overlays budget_kb on each cell's engine spec.
	c, err := g.At("workload", "oltp-xl", "engine", "pif", "budget", "8kb")
	if err != nil {
		t.Fatal(err)
	}
	if c.Settings.Engine.Name != "pif" || c.Settings.Engine.Params["budget_kb"] != 8 {
		t.Fatalf("budget not overlaid on engine spec: %+v", c.Settings.Engine)
	}

	// Default workload axis (sweep suite) and default engine (pif).
	spec, err = BuildSweep(NewEnv(opts), "s", []string{"l1=32K,64K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != len(workload.XLSuite())*2 {
		t.Fatalf("default workload axis size = %d", g.Size())
	}
	if g.Cells[0].Settings.Engine.Name != "pif" {
		t.Fatalf("default engine = %q", g.Cells[0].Settings.Engine.Name)
	}
	if got := g.Cells[0].Settings.Sim.System.L1ISizeBytes; got != 32<<10 {
		t.Fatalf("l1 axis not applied: %d", got)
	}

	// Errors: unknown axis, bad engine, bad workload, dup axis, bad size,
	// impossible geometry, history+budget conflict (the pif schema's
	// Derive rejects the pair), a param the engine does not take.
	for _, specs := range [][]string{
		{"nope=1"},
		{"engine=warpdrive"},
		{"workload=SAP HANA"},
		{"engine=pif", "engine=tifs"},
		{"l1=banana"},
		{"l1=33K"}, // 33KB / 2-way / 64B: set count not a power of two
		{"engine=pif", "budget=8", "history=1K"},
		{"engine=pif-unlimited", "budget=8"}, // schema declares no budget_kb
		{"engine=pif:stride=2"},
		{},
	} {
		spec, err := BuildSweep(NewEnv(opts), "s", specs, nil)
		if err == nil {
			_, err = spec.Expand()
		}
		if err == nil {
			t.Errorf("BuildSweep(%v) accepted", specs)
		}
	}

	// Workload names and suite aliases mix and dedupe.
	spec, err = BuildSweep(NewEnv(opts), "s", []string{"workload=DSS Qry2,xl,DSS Qry2", "engine=none"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("mixed workload axis size = %d", g.Size())
	}
}

// TestBuildSweepHistoryEntries covers the entries-based history axis.
func TestBuildSweepHistoryEntries(t *testing.T) {
	spec, err := BuildSweep(NewEnv(QuickOptions()), "s", []string{"workload=xl", "engine=pif,none", "history=1K,32K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// pif cells carry the history param; none cells carry it too but
	// their schema declares it ignored, so mixed-engine grids stay
	// runnable.
	pifCell, err := g.At("workload", "web-xl", "engine", "pif", "history", "1024")
	if err != nil {
		t.Fatal(err)
	}
	if pifCell.Settings.Engine.Name != "pif" || pifCell.Settings.Engine.Params["history"] != 1024 {
		t.Fatalf("history not overlaid for pif: %+v", pifCell.Settings.Engine)
	}
	noneCell, err := g.At("workload", "web-xl", "engine", "none", "history", "1024")
	if err != nil {
		t.Fatal(err)
	}
	if noneCell.Settings.Engine.Name != "none" {
		t.Fatalf("none cell = %+v", noneCell.Settings.Engine)
	}
	if r, err := prefetch.Resolved(noneCell.Settings.Engine); err != nil || len(r.Params) != 0 {
		t.Fatalf("none cell does not resolve cleanly: %v %v", r, err)
	}
	if _, err := g.Jobs(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildSweepEngineFlag covers the repeated -engine flag: full engine
// specs (multi-param, so comma-bearing) build the same axis the -axis
// spelling does, and the two spellings are mutually exclusive.
func TestBuildSweepEngineFlag(t *testing.T) {
	env := NewEnv(QuickOptions())
	spec, err := BuildSweep(env, "s", []string{"workload=xl"},
		[]string{"pif:sabs=2,window=9", "tifs:budget_kb=64"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != len(workload.XLSuite())*2 {
		t.Fatalf("size = %d", g.Size())
	}
	c, err := g.At("workload", "oltp-xl", "engine", sweep.KeyOf("pif:sabs=2,window=9"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Settings.Engine.Name != "pif" || c.Settings.Engine.Params["sabs"] != 2 || c.Settings.Engine.Params["window"] != 9 {
		t.Fatalf("engine spec not applied: %+v", c.Settings.Engine)
	}
	c, err = g.At("workload", "oltp-xl", "engine", sweep.KeyOf("tifs:budget_kb=64"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Settings.Engine.Name != "tifs" || c.Settings.Engine.Params["budget_kb"] != 64 {
		t.Fatalf("engine spec not applied: %+v", c.Settings.Engine)
	}

	// A single-param spec also works through the -axis spelling and
	// produces the same cell key.
	spec, err = BuildSweep(env, "s", []string{"workload=xl", "engine=pif:history=64K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	c, err = g.At("workload", "oltp-xl", "engine", sweep.KeyOf("pif:history=64K"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Settings.Engine.Params["history"] != 64<<10 {
		t.Fatalf("K suffix not applied: %+v", c.Settings.Engine)
	}

	// Both spellings at once is a usage error, as is a malformed spec.
	if _, err := BuildSweep(env, "s", []string{"engine=pif"}, []string{"tifs"}); err == nil {
		t.Error("-engine alongside -axis engine accepted")
	}
	if _, err := BuildSweep(env, "s", nil, []string{"pif:stride=2"}); err == nil {
		t.Error("bad -engine spec accepted")
	} else if !strings.Contains(err.Error(), `"stride"`) {
		t.Errorf("bad -engine spec error does not quote the param: %v", err)
	}
}

// TestBuildSweepAxisErrors is the usage-error contract of the sweep CLI:
// every malformed -axis spec — unknown axis name, duplicate axis, empty
// value lists, bad values, bad source specs — must fail with an error
// quoting the offending token, so a long command line pinpoints its
// mistake.
func TestBuildSweepAxisErrors(t *testing.T) {
	env := NewEnv(QuickOptions())
	for _, tc := range []struct {
		specs []string
		token string // the offending token the error must quote
	}{
		{[]string{"nope=1"}, `"nope=1"`},
		{[]string{"workload=xl", "frobnicate=3,4"}, `"frobnicate=3,4"`},
		{[]string{"engine="}, `"engine="`},
		{[]string{"engine=pif,,tifs"}, `"engine=pif,,tifs"`},
		{[]string{"=pif"}, `"=pif"`},
		{[]string{"engine=pif", "engine=tifs"}, `"engine=tifs"`},
		{[]string{"workload=std", "workload=xl"}, `"workload=xl"`},
		{[]string{"budget=8,zz"}, `"budget=8,zz"`},
		{[]string{"l1=banana"}, `"l1=banana"`},
		{[]string{"engine=warpdrive"}, `"engine=warpdrive"`},
		{[]string{"workload=SAP HANA"}, `"workload=SAP HANA"`},
		{[]string{"source=warp"}, `"source=warp"`},
		{[]string{"source=slice@banana"}, `"source=slice@banana"`},
		{[]string{"source=slice"}, `"source=slice"`},
		{[]string{"source=live@x"}, `"source=live@x"`},
		{[]string{"source=slice@0:0"}, `"source=slice@0:0"`},
		{[]string{"engine=pif:history="}, `"engine=pif:history="`},
		{[]string{"engine=pif:history=banana"}, `"engine=pif:history=banana"`},
	} {
		_, err := BuildSweep(env, "s", tc.specs, nil)
		if err == nil {
			t.Errorf("BuildSweep(%v) accepted", tc.specs)
			continue
		}
		if !strings.Contains(err.Error(), tc.token) {
			t.Errorf("BuildSweep(%v) error %q does not quote offending token %s", tc.specs, err, tc.token)
		}
	}
}

// TestBuildSweepSourceAxis covers the CLI source axis end to end at a
// tiny scale: live and env-backed slice cells expand, run, persist, and
// the slice cells replay deterministically.
func TestBuildSweepSourceAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are skipped in -short mode")
	}
	opts := QuickOptions()
	opts.Workloads = opts.Workloads[:1]
	opts.SweepWorkloads = opts.Workloads
	opts.WarmupInstrs = 60_000
	opts.MeasureInstrs = 30_000
	opts.StoreDir = t.TempDir()
	opts.TraceChunkRecords = 1 << 12

	run := func() *sweep.Grid {
		env := NewEnv(opts)
		spec, err := BuildSweep(env, "s", []string{
			"engine=nextline",
			"source=live,slice@0:45000,slice@45000:45000",
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := env.RunGrid(spec)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := run()
	if g.Size() != 3 {
		t.Fatalf("size = %d", g.Size())
	}
	liveCell, err := g.At("workload", sweep.KeyOf(opts.Workloads[0].Name), "engine", "nextline", "source", "live")
	if err != nil {
		t.Fatal(err)
	}
	if liveCell.Settings.Source != nil {
		t.Error("live cell carries a source")
	}
	if liveCell.Settings.Sim.WarmupInstrs != opts.WarmupInstrs {
		t.Errorf("live cell warmup = %d", liveCell.Settings.Sim.WarmupInstrs)
	}
	// Slice cells measure their whole window cold: warmup 0, the window
	// length as the interval, so both windows of the one spilled trace
	// are valid cells.
	sliceCell, err := g.At("workload", sweep.KeyOf(opts.Workloads[0].Name), "engine", "nextline", "source", "slice-45000-45000")
	if err != nil {
		t.Fatal(err)
	}
	if sliceCell.Settings.Source == nil {
		t.Error("slice cell has no source")
	}
	if sliceCell.Settings.Sim.WarmupInstrs != 0 || sliceCell.Settings.Sim.MeasureInstrs != 45000 {
		t.Errorf("slice cell interval = %d/%d, want 0/45000",
			sliceCell.Settings.Sim.WarmupInstrs, sliceCell.Settings.Sim.MeasureInstrs)
	}
	for i, r := range g.Results {
		if r.Err != nil {
			t.Errorf("cell %d (%s): %v", i, g.Cells[i].Label, r.Err)
		}
	}
	// Reruns replay the same windows byte-identically.
	g2 := run()
	for i := range g.Results {
		if g.Results[i].Sim != g2.Results[i].Sim {
			t.Errorf("cell %d: slice replay not deterministic across runs", i)
		}
	}
}

// TestBuildSweepSharded is the CLI-level sharded-sweep parity contract:
// a BaseShards grid over env-backed "store" sources — spilled to disk or
// served from the in-memory stream cache — folds to per-cell results
// bit-identical to the unsharded grid, so `-shards K` runs diff exit-0
// against unsharded history. Also covers the "shards" CLI axis.
func TestBuildSweepSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are skipped in -short mode")
	}
	opts := QuickOptions()
	opts.Workloads = opts.Workloads[:1]
	opts.SweepWorkloads = opts.Workloads
	opts.WarmupInstrs = 60_000
	opts.MeasureInstrs = 30_000

	for _, spill := range []bool{false, true} {
		if spill {
			opts.StoreDir = t.TempDir()
			opts.TraceChunkRecords = 1 << 12
		} else {
			opts.StoreDir = ""
		}
		run := func(shards int) *sweep.Grid {
			env := NewEnv(opts)
			spec, err := BuildSweep(env, "s", []string{"engine=nextline,none", "source=store"}, nil)
			if err != nil {
				t.Fatal(err)
			}
			spec.BaseShards = shards
			g, err := env.RunGrid(spec)
			if err != nil {
				t.Fatalf("spill=%v shards=%d: %v", spill, shards, err)
			}
			return g
		}
		plain, sharded := run(0), run(3)
		if plain.Size() != 2 || sharded.Size() != 2 {
			t.Fatalf("spill=%v: sizes %d/%d", spill, plain.Size(), sharded.Size())
		}
		for i := range plain.Results {
			if plain.Cells[i].Key != sharded.Cells[i].Key {
				t.Errorf("spill=%v cell %d: key changed to %q", spill, i, sharded.Cells[i].Key)
			}
			if sharded.Results[i].Err != nil {
				t.Fatalf("spill=%v cell %s: %v", spill, sharded.Cells[i].Key, sharded.Results[i].Err)
			}
			if plain.Results[i].Sim != sharded.Results[i].Sim {
				t.Errorf("spill=%v cell %s: sharded result diverges", spill, plain.Cells[i].Key)
			}
		}
	}

	// The "shards" CLI axis sweeps the count itself; exact mode keeps
	// every cell's result identical.
	env := NewEnv(opts)
	spec, err := BuildSweep(env, "s", []string{"engine=nextline", "source=store", "shards=1,2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := env.RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("shards axis size = %d", g.Size())
	}
	if g.Results[0].Sim != g.Results[1].Sim {
		t.Error("shards axis cells diverge in exact mode")
	}
	if _, err := BuildSweep(env, "s", []string{"shards=0"}, nil); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, err := BuildSweep(env, "s", []string{"shards=two"}, nil); err == nil {
		t.Error("shards=two accepted")
	}
}
