package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
)

// update rewrites the golden fixtures from the current code instead of
// comparing against them:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/golden fixtures from the current code")

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

// TestGolden is the regression lock on the reproduced numbers: every
// registered artifact, regenerated at QuickOptions scale, must match its
// committed fixture in testdata/golden metric for metric (default
// tolerances: 1e-12 absolute / 1e-9 relative) and byte for byte in the
// rendered text. Any change to simulator, predictor, or workload code that
// shifts a reproduced number fails here with a per-metric diff; refresh
// intentional shifts with -update.
//
// Because the simulation is deterministic and the fixtures were generated
// by a separate process, a passing run also proves that repeated RunAll
// passes at QuickOptions serialize byte-identically.
func TestGolden(t *testing.T) {
	e := testEnv(t)
	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			rep, err := Run(e, id)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Data == nil {
				t.Fatalf("%s: report carries no structured data", id)
			}
			art, err := rep.Artifact()
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := report.WriteArtifact(goldenPath(id), art); err != nil {
					t.Fatal(err)
				}
				return
			}
			golden, err := report.ReadArtifact(goldenPath(id))
			if err != nil {
				t.Fatalf("golden fixture unreadable (regenerate with `go test ./internal/experiments -run TestGolden -update`): %v", err)
			}
			d := report.DiffArtifacts([]report.Artifact{golden}, []report.Artifact{art}, report.DefaultTolerances())
			if d.OutOfTolerance() {
				t.Errorf("%s drifted from golden fixture:\n%s", id, d.Render())
			}
			if golden.Title != art.Title {
				t.Errorf("%s title drifted: %q -> %q", id, golden.Title, art.Title)
			}
			if golden.Text != art.Text {
				t.Errorf("%s rendered text drifted from golden fixture\ngolden:\n%s\ncurrent:\n%s", id, golden.Text, art.Text)
			}
		})
	}
}

// TestGoldenFixturesComplete fails fast (even in -short mode) when the
// registry and the fixture directory disagree in either direction: a
// registered artifact with no committed fixture (experiment added without
// extending the suite) or a fixture with no registered artifact (the
// -update/git-diff CI check cannot see orphans, since -update only
// rewrites registered IDs).
func TestGoldenFixturesComplete(t *testing.T) {
	if *update {
		t.Skip("fixtures are being rewritten")
	}
	registered := make(map[string]bool)
	for _, id := range IDs() {
		registered[id] = true
		if _, err := os.Stat(goldenPath(id)); err != nil {
			t.Errorf("artifact %s has no golden fixture (run `go test ./internal/experiments -run TestGolden -update`): %v", id, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		id := strings.TrimSuffix(e.Name(), ".json")
		if !registered[id] {
			t.Errorf("fixture %s has no registered artifact; delete the orphan", e.Name())
		}
	}
}
