package cache

import (
	"math/rand"

	"repro/internal/isa"
)

// foreignBase places pollution blocks far from any workload segment.
const foreignBase isa.Block = 0x7f00_0000 >> isa.BlockShift

// Polluter models context-switch pollution of a private L1-I: at
// exponentially distributed instruction intervals another thread runs and
// fills the cache with part of its own footprint, randomizing the resident
// set the way full-system scheduling does. The paper identifies exactly
// this microarchitectural randomness as a cause of miss-stream
// fragmentation; the retire-order stream is immune to it.
type Polluter struct {
	meanGap int
	blocks  int
	rng     *rand.Rand
	in      int
}

// NewPolluter builds a polluter; meanGap 0 or blocks 0 disables it.
func NewPolluter(meanGap, blocks int, seed int64) *Polluter {
	p := &Polluter{meanGap: meanGap, blocks: blocks, rng: rand.New(rand.NewSource(seed))}
	if p.enabled() {
		p.in = p.nextGap()
	}
	return p
}

func (p *Polluter) enabled() bool { return p.meanGap > 0 && p.blocks > 0 }

func (p *Polluter) nextGap() int {
	g := int(p.rng.ExpFloat64() * float64(p.meanGap))
	if g < 1 {
		g = 1
	}
	return g
}

// Tick advances the polluter by one retired instruction; when a context
// switch fires it fills foreign blocks into c and returns true.
func (p *Polluter) Tick(c *Cache) bool {
	if !p.enabled() {
		return false
	}
	p.in--
	if p.in > 0 {
		return false
	}
	p.in = p.nextGap()
	for i := 0; i < p.blocks; i++ {
		b := foreignBase + isa.Block(p.rng.Intn(1<<16))
		c.Fill(b, false)
	}
	return true
}
