// Package cache implements the set-associative instruction cache model used
// throughout the simulator: a configurable geometry with true-LRU
// replacement, a per-line prefetched bit (PIF tags non-prefetched fetches to
// gate index-table insertion), and a small MSHR file that bounds outstanding
// fills.
//
// The model is behavioural, not cycle-accurate: Probe/Fill mutate state
// immediately, and the timing simulator (internal/sim) accounts for
// latencies separately. This mirrors how the paper's trace-based analyses
// treat the cache (Section 2's studies "do not perturb the cache state").
package cache

import (
	"fmt"

	"repro/internal/isa"
)

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// Assoc is the set associativity (ways).
	Assoc int
	// BlockBytes is the line size; must equal isa.BlockBytes for the L1-I.
	BlockBytes int
	// MSHRs bounds outstanding misses; 0 means unlimited.
	MSHRs int
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.Assoc*c.BlockBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by assoc*block %d", c.SizeBytes, c.Assoc*c.BlockBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if c.MSHRs < 0 {
		return fmt.Errorf("cache: MSHRs = %d", c.MSHRs)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.BlockBytes) }

// line is one cache way.
type line struct {
	tag        uint64
	valid      bool
	prefetched bool // filled by a prefetch and not yet demanded
}

// Stats counts cache events.
type Stats struct {
	// JSON names are stable snake_case: Stats is embedded in sim.Result,
	// which the results store persists and diffs across commits.
	Accesses       uint64 `json:"accesses"` // demand probes
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	PrefetchHits   uint64 `json:"prefetch_hits"` // demand hits on lines brought in by prefetch
	PrefetchFills  uint64 `json:"prefetch_fills"`
	DemandFills    uint64 `json:"demand_fills"`
	Evictions      uint64 `json:"evictions"`
	PrefetchUnused uint64 `json:"prefetch_unused"` // prefetched lines evicted without a demand hit
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Add accumulates o into s field by field. Every field is a pure event
// count, so adding disjoint measurement intervals composes losslessly —
// the property sharded replay's result stitching relies on
// (sim.MergeShardResults).
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.PrefetchHits += o.PrefetchHits
	s.PrefetchFills += o.PrefetchFills
	s.DemandFills += o.DemandFills
	s.Evictions += o.Evictions
	s.PrefetchUnused += o.PrefetchUnused
}

// Sub removes o from s field by field — the inverse of Add, used to
// carve a measurement sub-interval out of cumulative counters (sharded
// replay's offset snapshots). Every field is monotone over a run, so o
// taken earlier in the same run never underflows s.
func (s *Stats) Sub(o Stats) {
	s.Accesses -= o.Accesses
	s.Hits -= o.Hits
	s.Misses -= o.Misses
	s.PrefetchHits -= o.PrefetchHits
	s.PrefetchFills -= o.PrefetchFills
	s.DemandFills -= o.DemandFills
	s.Evictions -= o.Evictions
	s.PrefetchUnused -= o.PrefetchUnused
}

// Cache is a set-associative cache with true LRU replacement.
// Lines are identified by isa.Block numbers.
type Cache struct {
	cfg     Config
	sets    [][]line // sets[i] ordered MRU..LRU
	setMask uint64
	stats   Stats
	mshr    map[isa.Block]struct{}
}

// New builds a cache; it panics on an invalid geometry (a configuration
// error is a programming bug, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets())
	for i := range sets {
		sets[i] = make([]line, 0, cfg.Assoc)
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(cfg.Sets() - 1),
		mshr:    make(map[isa.Block]struct{}),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters (used after warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) setIndex(b isa.Block) uint64 { return uint64(b) & c.setMask }

// find returns the way index of b in its set, or -1.
func (c *Cache) find(set []line, b isa.Block) int {
	for i := range set {
		if set[i].valid && set[i].tag == uint64(b) {
			return i
		}
	}
	return -1
}

// Contains reports whether the block is resident without touching LRU
// state or statistics (the tag probe prefetchers use before queuing).
func (c *Cache) Contains(b isa.Block) bool {
	return c.find(c.sets[c.setIndex(b)], b) >= 0
}

// Access performs a demand access: on hit the line moves to MRU and the
// prefetched bit clears; on miss nothing is filled (callers decide whether
// and when to Fill). It returns hit status and whether the hit line had
// been brought in by a prefetch (a "prefetch hit").
func (c *Cache) Access(b isa.Block) (hit, wasPrefetched bool) {
	c.stats.Accesses++
	si := c.setIndex(b)
	set := c.sets[si]
	if i := c.find(set, b); i >= 0 {
		wasPrefetched = set[i].prefetched
		set[i].prefetched = false
		c.moveToMRU(si, i)
		c.stats.Hits++
		if wasPrefetched {
			c.stats.PrefetchHits++
		}
		return true, wasPrefetched
	}
	c.stats.Misses++
	return false, false
}

// Fill installs a block. prefetch marks the line as brought in by the
// prefetcher. Filling a resident block refreshes its LRU position and, for
// demand fills, clears the prefetched bit. The victim block (if any) is
// returned so callers can model writeback/invalidation effects.
func (c *Cache) Fill(b isa.Block, prefetch bool) (victim isa.Block, evicted bool) {
	si := c.setIndex(b)
	set := c.sets[si]
	if i := c.find(set, b); i >= 0 {
		if !prefetch {
			set[i].prefetched = false
		}
		c.moveToMRU(si, i)
		return 0, false
	}
	if prefetch {
		c.stats.PrefetchFills++
	} else {
		c.stats.DemandFills++
	}
	nl := line{tag: uint64(b), valid: true, prefetched: prefetch}
	if len(set) < c.cfg.Assoc {
		c.sets[si] = append([]line{nl}, set...)
		return 0, false
	}
	// Evict LRU (last element).
	v := set[len(set)-1]
	c.stats.Evictions++
	if v.prefetched {
		c.stats.PrefetchUnused++
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = nl
	return isa.Block(v.tag), true
}

// moveToMRU promotes set[i] to the MRU position.
func (c *Cache) moveToMRU(si uint64, i int) {
	set := c.sets[si]
	if i == 0 {
		return
	}
	l := set[i]
	copy(set[1:i+1], set[:i])
	set[0] = l
}

// Invalidate removes a block if present, returning whether it was resident.
func (c *Cache) Invalidate(b isa.Block) bool {
	si := c.setIndex(b)
	set := c.sets[si]
	i := c.find(set, b)
	if i < 0 {
		return false
	}
	c.sets[si] = append(set[:i], set[i+1:]...)
	return true
}

// Flush empties the cache (statistics are preserved).
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// Resident returns the number of valid lines.
func (c *Cache) Resident() int {
	n := 0
	for i := range c.sets {
		n += len(c.sets[i])
	}
	return n
}

// MSHRAcquire reserves a miss-status register for block b. It returns false
// when all MSHRs are busy or when a fill for b is already outstanding
// (secondary misses merge and do not need a new register).
func (c *Cache) MSHRAcquire(b isa.Block) bool {
	if _, outstanding := c.mshr[b]; outstanding {
		return false
	}
	if c.cfg.MSHRs > 0 && len(c.mshr) >= c.cfg.MSHRs {
		return false
	}
	c.mshr[b] = struct{}{}
	return true
}

// MSHROutstanding reports whether a fill for b is in flight.
func (c *Cache) MSHROutstanding(b isa.Block) bool {
	_, ok := c.mshr[b]
	return ok
}

// MSHRRelease completes the outstanding fill for b.
func (c *Cache) MSHRRelease(b isa.Block) { delete(c.mshr, b) }

// MSHRInUse returns the number of busy MSHRs.
func (c *Cache) MSHRInUse() int { return len(c.mshr) }
