package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func l1Config() Config {
	return Config{SizeBytes: 64 << 10, Assoc: 2, BlockBytes: 64, MSHRs: 32}
}

func TestConfigValidate(t *testing.T) {
	if err := l1Config().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Assoc: 2, BlockBytes: 64},
		{SizeBytes: 64 << 10, Assoc: 0, BlockBytes: 64},
		{SizeBytes: 64 << 10, Assoc: 2, BlockBytes: 0},
		{SizeBytes: 100, Assoc: 2, BlockBytes: 64},
		{SizeBytes: 3 * 64 * 2, Assoc: 2, BlockBytes: 64}, // 3 sets: not pow2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestSets(t *testing.T) {
	if got := l1Config().Sets(); got != 512 {
		t.Errorf("Sets = %d, want 512 (64KB/2-way/64B)", got)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(Config{SizeBytes: 1, Assoc: 1, BlockBytes: 3})
}

func TestMissThenHit(t *testing.T) {
	c := New(l1Config())
	b := isa.Block(42)
	if hit, _ := c.Access(b); hit {
		t.Fatal("cold access should miss")
	}
	c.Fill(b, false)
	if hit, pf := c.Access(b); !hit || pf {
		t.Fatalf("hit=%v pf=%v after demand fill", hit, pf)
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 || s.DemandFills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPrefetchHitTracking(t *testing.T) {
	c := New(l1Config())
	b := isa.Block(7)
	c.Fill(b, true)
	if !c.Contains(b) {
		t.Fatal("prefetched block should be resident")
	}
	hit, pf := c.Access(b)
	if !hit || !pf {
		t.Fatalf("first demand access: hit=%v pf=%v, want true,true", hit, pf)
	}
	// Second access: prefetched bit should have cleared.
	if _, pf := c.Access(b); pf {
		t.Error("prefetched bit should clear after first demand hit")
	}
	if c.Stats().PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d, want 1", c.Stats().PrefetchHits)
	}
}

func TestLRUReplacement(t *testing.T) {
	// Direct-mapped-free test: 2-way, blocks mapping to the same set.
	cfg := Config{SizeBytes: 2 * 64 * 4, Assoc: 2, BlockBytes: 64} // 4 sets
	c := New(cfg)
	sameSet := func(i int) isa.Block { return isa.Block(i * 4) } // stride = sets
	c.Fill(sameSet(0), false)
	c.Fill(sameSet(1), false)
	// Touch 0 so 1 is LRU.
	c.Access(sameSet(0))
	victim, evicted := c.Fill(sameSet(2), false)
	if !evicted || victim != sameSet(1) {
		t.Errorf("victim = %v (evicted=%v), want %v", victim, evicted, sameSet(1))
	}
	if !c.Contains(sameSet(0)) || !c.Contains(sameSet(2)) || c.Contains(sameSet(1)) {
		t.Error("wrong residency after eviction")
	}
}

func TestFillResidentRefreshesLRU(t *testing.T) {
	cfg := Config{SizeBytes: 2 * 64 * 4, Assoc: 2, BlockBytes: 64}
	c := New(cfg)
	sameSet := func(i int) isa.Block { return isa.Block(i * 4) }
	c.Fill(sameSet(0), false)
	c.Fill(sameSet(1), false) // MRU=1, LRU=0
	c.Fill(sameSet(0), false) // refresh 0 → MRU=0, LRU=1
	victim, evicted := c.Fill(sameSet(2), false)
	if !evicted || victim != sameSet(1) {
		t.Errorf("victim = %v, want %v", victim, sameSet(1))
	}
}

func TestPrefetchUnusedCounting(t *testing.T) {
	cfg := Config{SizeBytes: 1 * 64 * 2, Assoc: 1, BlockBytes: 64} // 2 sets, direct mapped
	c := New(cfg)
	b0, b2 := isa.Block(0), isa.Block(2) // same set
	c.Fill(b0, true)
	c.Fill(b2, false) // evicts b0 which was never used
	s := c.Stats()
	if s.PrefetchUnused != 1 {
		t.Errorf("PrefetchUnused = %d, want 1", s.PrefetchUnused)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(l1Config())
	b := isa.Block(9)
	c.Fill(b, false)
	if !c.Invalidate(b) {
		t.Error("Invalidate should find resident block")
	}
	if c.Contains(b) {
		t.Error("block still resident after Invalidate")
	}
	if c.Invalidate(b) {
		t.Error("second Invalidate should report absent")
	}
}

func TestFlushAndResident(t *testing.T) {
	c := New(l1Config())
	for i := 0; i < 100; i++ {
		c.Fill(isa.Block(i), false)
	}
	if got := c.Resident(); got != 100 {
		t.Errorf("Resident = %d, want 100", got)
	}
	c.Flush()
	if got := c.Resident(); got != 0 {
		t.Errorf("Resident after Flush = %d", got)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("zero-access hit rate should be 0")
	}
	s = Stats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %f", s.HitRate())
	}
}

func TestResetStats(t *testing.T) {
	c := New(l1Config())
	c.Access(isa.Block(1))
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("ResetStats should zero counters")
	}
}

func TestMSHR(t *testing.T) {
	cfg := l1Config()
	cfg.MSHRs = 2
	c := New(cfg)
	if !c.MSHRAcquire(isa.Block(1)) {
		t.Fatal("first acquire should succeed")
	}
	if c.MSHRAcquire(isa.Block(1)) {
		t.Error("duplicate acquire should merge (fail)")
	}
	if !c.MSHROutstanding(isa.Block(1)) {
		t.Error("block 1 should be outstanding")
	}
	if !c.MSHRAcquire(isa.Block(2)) {
		t.Fatal("second acquire should succeed")
	}
	if c.MSHRAcquire(isa.Block(3)) {
		t.Error("third acquire should fail: MSHRs exhausted")
	}
	c.MSHRRelease(isa.Block(1))
	if c.MSHRInUse() != 1 {
		t.Errorf("MSHRInUse = %d, want 1", c.MSHRInUse())
	}
	if !c.MSHRAcquire(isa.Block(3)) {
		t.Error("acquire after release should succeed")
	}
}

func TestMSHRUnlimited(t *testing.T) {
	cfg := l1Config()
	cfg.MSHRs = 0
	c := New(cfg)
	for i := 0; i < 1000; i++ {
		if !c.MSHRAcquire(isa.Block(i)) {
			t.Fatalf("unlimited MSHR acquire %d failed", i)
		}
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{SizeBytes: 4 * 64 * 8, Assoc: 4, BlockBytes: 64} // 8 sets, 32 lines
		c := New(cfg)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			b := isa.Block(rng.Intn(256))
			if hit, _ := c.Access(b); !hit {
				c.Fill(b, rng.Intn(2) == 0)
			}
		}
		return c.Resident() <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessAfterFillAlwaysHits(t *testing.T) {
	f := func(seed int64) bool {
		c := New(l1Config())
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			b := isa.Block(rng.Intn(4096))
			c.Fill(b, false)
			if hit, _ := c.Access(b); !hit {
				return false // fill immediately followed by access must hit
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsConservation(t *testing.T) {
	// hits + misses == accesses under arbitrary interleavings.
	f := func(seed int64) bool {
		c := New(l1Config())
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			b := isa.Block(rng.Intn(2048))
			switch rng.Intn(3) {
			case 0:
				if hit, _ := c.Access(b); !hit {
					c.Fill(b, false)
				}
			case 1:
				c.Fill(b, true)
			case 2:
				c.Invalidate(b)
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
