// Package stats provides the counters, histograms, and series containers
// used by the experiment drivers to accumulate and render results in the
// same shape as the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple named event counter.
type Counter struct {
	Name  string
	Count uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Count++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.Count += n }

// Ratio returns c.Count / d.Count as a float, or 0 if d is zero.
func (c *Counter) Ratio(d *Counter) float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(c.Count) / float64(d.Count)
}

// Histogram is a dense linear histogram over int keys. Keys may be
// negative (e.g., block offsets before a trigger access).
type Histogram struct {
	buckets map[int]uint64
	total   uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]uint64)}
}

// Observe adds one sample at key.
func (h *Histogram) Observe(key int) { h.ObserveN(key, 1) }

// ObserveN adds n samples at key.
func (h *Histogram) ObserveN(key int, n uint64) {
	h.buckets[key] += n
	h.total += n
}

// Total returns the number of samples observed.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of samples at key.
func (h *Histogram) Count(key int) uint64 { return h.buckets[key] }

// Fraction returns the fraction of all samples at key.
func (h *Histogram) Fraction(key int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.buckets[key]) / float64(h.total)
}

// Keys returns the observed keys in ascending order.
func (h *Histogram) Keys() []int {
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CumulativeAt returns the fraction of samples with key <= k.
func (h *Histogram) CumulativeAt(k int) float64 {
	if h.total == 0 {
		return 0
	}
	var sum uint64
	for key, n := range h.buckets {
		if key <= k {
			sum += n
		}
	}
	return float64(sum) / float64(h.total)
}

// BucketRange aggregates counts for keys in [lo, hi].
func (h *Histogram) BucketRange(lo, hi int) uint64 {
	var sum uint64
	for key, n := range h.buckets {
		if key >= lo && key <= hi {
			sum += n
		}
	}
	return sum
}

// Log2Bucket returns the log2 bucket index for a positive value:
// values 1 → 0, 2..3 → 1, 4..7 → 2, etc. Zero and negatives map to 0.
func Log2Bucket(v uint64) int {
	if v <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(v))))
}

// Series is a named sequence of (label, value) points, the unit in which
// experiments hand results to the renderer — one Series per line/bar group
// of a paper figure.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Append adds one point.
func (s *Series) Append(label string, value float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, value)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Table is a rectangular result: one row per workload (or config), one
// column per measured quantity. It renders as aligned text, the textual
// equivalent of a paper figure.
type Table struct {
	Title   string
	ColName []string
	Rows    []TableRow
}

// TableRow is one row of a Table.
type TableRow struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, TableRow{Label: label, Values: values})
}

// Render formats the table as aligned text with values printed as
// percentages when pct is true.
func (t *Table) Render(pct bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	width := 12
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, c := range t.ColName {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.Label)
		for _, v := range r.Values {
			if pct {
				fmt.Fprintf(&b, "%11.1f%%", v*100)
			} else {
				fmt.Fprintf(&b, "%12.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderSeries formats a set of series as a labeled grid (labels of the
// first series define the x axis).
func RenderSeries(title string, pct bool, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(series) == 0 {
		return b.String()
	}
	width := 12
	for _, s := range series {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, l := range series[0].Labels {
		fmt.Fprintf(&b, "%10s", l)
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-*s", width+2, s.Name)
		for _, v := range s.Values {
			if pct {
				fmt.Fprintf(&b, "%9.1f%%", v*100)
			} else {
				fmt.Fprintf(&b, "%10.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WeightedCDF converts a histogram into a cumulative Series over its keys,
// labelling keys with the given printf format.
func WeightedCDF(name, labelFmt string, h *Histogram) *Series {
	s := &Series{Name: name}
	var cum uint64
	for _, k := range h.Keys() {
		cum += h.Count(k)
		frac := 0.0
		if h.Total() > 0 {
			frac = float64(cum) / float64(h.Total())
		}
		s.Append(fmt.Sprintf(labelFmt, k), frac)
	}
	return s
}

// Mean returns the arithmetic mean of vs, or 0 for empty input.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// GeoMean returns the geometric mean of vs (all values must be positive),
// or 0 for empty input.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
