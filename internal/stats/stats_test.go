package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := &Counter{Name: "hits"}
	c.Inc()
	c.Add(4)
	if c.Count != 5 {
		t.Errorf("Count = %d, want 5", c.Count)
	}
	d := &Counter{Name: "total", Count: 10}
	if got := c.Ratio(d); got != 0.5 {
		t.Errorf("Ratio = %f, want 0.5", got)
	}
	zero := &Counter{}
	if got := c.Ratio(zero); got != 0 {
		t.Errorf("Ratio with zero denominator = %f, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	h.Observe(1)
	h.Observe(-3)
	h.ObserveN(5, 7)
	if h.Total() != 10 {
		t.Fatalf("Total = %d, want 10", h.Total())
	}
	if h.Count(1) != 2 || h.Count(-3) != 1 || h.Count(5) != 7 {
		t.Errorf("unexpected counts: %d %d %d", h.Count(1), h.Count(-3), h.Count(5))
	}
	if got := h.Fraction(5); got != 0.7 {
		t.Errorf("Fraction(5) = %f, want 0.7", got)
	}
	keys := h.Keys()
	want := []int{-3, 1, 5}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("Keys[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	for k := 1; k <= 4; k++ {
		h.Observe(k)
	}
	if got := h.CumulativeAt(2); got != 0.5 {
		t.Errorf("CumulativeAt(2) = %f, want 0.5", got)
	}
	if got := h.CumulativeAt(100); got != 1.0 {
		t.Errorf("CumulativeAt(100) = %f, want 1", got)
	}
	if got := h.CumulativeAt(0); got != 0 {
		t.Errorf("CumulativeAt(0) = %f, want 0", got)
	}
}

func TestHistogramBucketRange(t *testing.T) {
	h := NewHistogram()
	h.ObserveN(2, 3)
	h.ObserveN(3, 4)
	h.ObserveN(8, 1)
	if got := h.BucketRange(2, 4); got != 7 {
		t.Errorf("BucketRange(2,4) = %d, want 7", got)
	}
	if got := h.BucketRange(5, 7); got != 0 {
		t.Errorf("BucketRange(5,7) = %d, want 0", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Fraction(1) != 0 || h.CumulativeAt(5) != 0 || h.Total() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1023, 9}, {1024, 10},
	}
	for _, c := range cases {
		if got := Log2Bucket(c.v); got != c.want {
			t.Errorf("Log2Bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2BucketMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		return Log2Bucket(x) <= Log2Bucket(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "cov"}
	s.Append("a", 0.5)
	s.Append("b", 0.9)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Labels[1] != "b" || s.Values[1] != 0.9 {
		t.Errorf("unexpected point: %v %v", s.Labels, s.Values)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "Figure X", ColName: []string{"Miss", "Access"}}
	tab.AddRow("OLTP DB2", 0.75, 0.85)
	out := tab.Render(true)
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "OLTP DB2") {
		t.Errorf("render missing parts:\n%s", out)
	}
	if !strings.Contains(out, "75.0%") || !strings.Contains(out, "85.0%") {
		t.Errorf("render missing values:\n%s", out)
	}
	plain := tab.Render(false)
	if !strings.Contains(plain, "0.750") {
		t.Errorf("non-pct render wrong:\n%s", plain)
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "PIF"}
	a.Append("DB2", 0.99)
	a.Append("Oracle", 0.98)
	out := RenderSeries("Fig 10", true, a)
	if !strings.Contains(out, "PIF") || !strings.Contains(out, "99.0%") {
		t.Errorf("series render wrong:\n%s", out)
	}
	if got := RenderSeries("empty", true); !strings.Contains(got, "empty") {
		t.Errorf("empty render: %q", got)
	}
}

func TestWeightedCDF(t *testing.T) {
	h := NewHistogram()
	h.ObserveN(1, 1)
	h.ObserveN(2, 1)
	h.ObserveN(3, 2)
	s := WeightedCDF("cdf", "%d", h)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Values[2] != 1.0 {
		t.Errorf("CDF should end at 1, got %f", s.Values[2])
	}
	if s.Values[0] != 0.25 {
		t.Errorf("first point = %f, want 0.25", s.Values[0])
	}
	for i := 1; i < s.Len(); i++ {
		if s.Values[i] < s.Values[i-1] {
			t.Errorf("CDF not monotone at %d", i)
		}
	}
}

func TestMeanGeoMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %f", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %f", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %f, want 4", got)
	}
	if got := GeoMean([]float64{1, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %f, want 0", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %f", got)
	}
}
