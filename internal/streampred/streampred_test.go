package streampred

import (
	"testing"

	"repro/internal/isa"
)

func blocks(vals ...int) []isa.Block {
	out := make([]isa.Block, len(vals))
	for i, v := range vals {
		out[i] = isa.Block(v)
	}
	return out
}

func TestReplayPredictsRepeatedStream(t *testing.T) {
	p := New(DefaultConfig())
	seq := blocks(10, 11, 12, 13, 14, 20, 30, 40)
	for _, b := range seq {
		p.Observe(b)
	}
	// Interleave an unrelated stream so the repeat is not adjacent.
	for _, b := range blocks(100, 101, 102) {
		p.Observe(b)
	}
	// Second occurrence of the stream head should open a replay...
	p.Observe(isa.Block(10))
	// ...which predicts the rest of the recorded stream.
	for _, b := range blocks(11, 12, 13, 14, 20, 30, 40) {
		if !p.Predicted(b) {
			t.Errorf("block %v not predicted on replay", b)
		}
	}
	if p.Predicted(isa.Block(999)) {
		t.Error("unrecorded block predicted")
	}
}

func TestColdStreamNotPredicted(t *testing.T) {
	p := New(DefaultConfig())
	for _, b := range blocks(1, 2, 3) {
		p.Observe(b)
	}
	if p.Predicted(isa.Block(4)) {
		t.Error("never-seen block predicted")
	}
}

func TestReplayAdvances(t *testing.T) {
	p := New(DefaultConfig())
	seq := blocks(10, 11, 12, 13, 14, 15, 16, 17, 18, 19)
	for _, b := range seq {
		p.Observe(b)
	}
	for _, b := range blocks(50, 51, 52) {
		p.Observe(b)
	}
	// Replay and follow it: advance should keep the window moving.
	for _, b := range seq[:5] {
		p.Observe(b)
	}
	if p.Stats().Advances == 0 {
		t.Error("no advances recorded while following a replay")
	}
	if !p.Predicted(isa.Block(19)) {
		t.Error("tail of stream should still be predicted after advancing")
	}
}

func TestAdvanceToleratesGaps(t *testing.T) {
	// Recorded: 10,11,12,13,14. Replayed visit skips 11 (e.g. a branch
	// went the other way): 10,12,13 — the window must keep up.
	p := New(DefaultConfig())
	for _, b := range blocks(10, 11, 12, 13, 14) {
		p.Observe(b)
	}
	for _, b := range blocks(70, 71) {
		p.Observe(b)
	}
	for _, b := range blocks(10, 12, 13) {
		p.Observe(b)
	}
	if !p.Predicted(isa.Block(14)) {
		t.Error("window should have advanced past the gap to predict 14")
	}
}

func TestDivergentHistoryMispredicts(t *testing.T) {
	// Fragmented (miss-stream-like) history: the recorded sequence after
	// the trigger differs from what actually recurs, so coverage is lost.
	p := New(DefaultConfig())
	for _, b := range blocks(10, 99, 98, 97) { // fragmented recording
		p.Observe(b)
	}
	for _, b := range blocks(50, 51) {
		p.Observe(b)
	}
	p.Observe(isa.Block(10)) // trigger
	for _, b := range blocks(11, 12, 13) {
		if p.Predicted(b) {
			t.Errorf("block %v predicted from divergent history", b)
		}
	}
}

func TestMostRecentOccurrenceWins(t *testing.T) {
	p := New(DefaultConfig())
	// First occurrence of 10 followed by 20s; second followed by 30s.
	for _, b := range blocks(10, 20, 21, 22) {
		p.Observe(b)
	}
	for _, b := range blocks(10, 30, 31, 32) {
		p.Observe(b)
	}
	for _, b := range blocks(50, 51) {
		p.Observe(b)
	}
	p.Observe(isa.Block(10))
	if !p.Predicted(isa.Block(30)) {
		t.Error("replay should start at the most recent occurrence")
	}
}

func TestBoundedHistoryForgets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHistory = 8
	p := New(cfg)
	for _, b := range blocks(10, 11, 12, 13) {
		p.Observe(b)
	}
	for i := 0; i < 20; i++ {
		p.Observe(isa.Block(100 + i))
	}
	if p.HistoryLen() != 8 {
		t.Fatalf("history len = %d, want 8", p.HistoryLen())
	}
	// The old stream is gone; index points outside retained history.
	p.Observe(isa.Block(10))
	if p.Predicted(isa.Block(11)) {
		t.Error("evicted history should not predict")
	}
}

func TestWindowLRUReplacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Windows = 2
	cfg.AdvanceSlack = 2 // keep the three streams from aliasing into one window
	p := New(cfg)
	// Record three separate streams.
	for _, b := range blocks(10, 11, 12, 0, 20, 21, 22, 0, 30, 31, 32, 1) {
		p.Observe(b)
	}
	// Open three replays; only two windows exist.
	p.Observe(isa.Block(10))
	p.Observe(isa.Block(20))
	p.Observe(isa.Block(30))
	if p.Stats().Replays < 3 {
		t.Fatalf("replays = %d, want >= 3", p.Stats().Replays)
	}
	// The most recent two replays should be live.
	if !p.Predicted(isa.Block(31)) || !p.Predicted(isa.Block(21)) {
		t.Error("recent replays should be live")
	}
}

func TestQueriesDoNotMutate(t *testing.T) {
	p := New(DefaultConfig())
	for _, b := range blocks(10, 11, 12, 50, 10) {
		p.Observe(b)
	}
	before := p.Stats().Advances
	for i := 0; i < 10; i++ {
		p.Predicted(isa.Block(11))
	}
	if p.Stats().Advances != before {
		t.Error("Predicted should not advance windows")
	}
	if p.Stats().Queries != 10 {
		t.Errorf("Queries = %d, want 10", p.Stats().Queries)
	}
}

func TestZeroConfigNormalized(t *testing.T) {
	p := New(Config{})
	p.Observe(isa.Block(1))
	p.Observe(isa.Block(1))
	// Must not panic and must behave sanely.
	_ = p.Predicted(isa.Block(1))
}
