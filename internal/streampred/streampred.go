// Package streampred implements the generic temporal-stream predictor used
// by the Section 2 recording-point study (Figure 2): it records an
// arbitrary block-address stream into an append-only history with an index
// of most-recent occurrences, and replays the most recent stream when a
// recorded address recurs. Prediction queries test whether a block lies in
// the lookahead window of any active replay.
//
// The same machinery serves all four recording points (Miss, Access,
// Retire, RetireSep) — only the stream fed to Observe differs — which is
// exactly how the paper isolates the microarchitectural filtering and
// noise effects: "all other aspects (including the actual instruction
// stream) are exactly identical."
package streampred

import "repro/internal/isa"

// Config sizes the predictor.
type Config struct {
	// Windows is the number of concurrently active replays (SAB analog).
	Windows int
	// Lookahead is how many upcoming history blocks each replay exposes
	// to prediction queries.
	Lookahead int
	// AdvanceSlack is how far into the lookahead an observed block may
	// match to advance a replay (tolerates small reorderings/gaps).
	AdvanceSlack int
	// MaxHistory bounds stored history in blocks; 0 means unlimited
	// (the paper's "without history storage limitations" configuration).
	MaxHistory int
	// StaleAfter kills a replay window that has not advanced within this
	// many observations — a replay that stops matching the live stream is
	// dead, as in a hardware stream buffer. 0 disables staleness.
	StaleAfter int
}

// DefaultConfig is the configuration used for the Figure 2 study.
func DefaultConfig() Config {
	return Config{Windows: 16, Lookahead: 32, AdvanceSlack: 8, MaxHistory: 0, StaleAfter: 64}
}

// Stats counts predictor events.
type Stats struct {
	Observed  uint64
	Replays   uint64
	Advances  uint64
	Queries   uint64
	QueryHits uint64
}

// window is one active replay of a recorded stream.
type window struct {
	pos      int // next history position to be consumed
	live     bool
	lru      uint64
	openDist int // history distance between trigger occurrences at open
}

// Predictor records and replays temporal block streams.
type Predictor struct {
	cfg     Config
	history []isa.Block
	base    int // history[0] corresponds to absolute position base
	index   map[isa.Block]int
	windows []window
	clock   uint64
	stats   Stats

	// AdvanceHook, when set, is invoked on every replay advance (a
	// correct prediction) with the jump distance of the replay's opening
	// trigger — the Figure 7 measurement (jumps weighted by coverage).
	AdvanceHook func(openDist int)
	// ExposeHook, when set, receives every history block a replay window
	// newly exposes (at open, the initial lookahead; at each advance, the
	// blocks sliding into the lookahead). Callers use it to maintain the
	// "predictions that would be made" set of the Figure 2 methodology.
	ExposeHook func(b isa.Block)
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	if cfg.Windows <= 0 {
		cfg.Windows = 1
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = 1
	}
	if cfg.AdvanceSlack <= 0 {
		cfg.AdvanceSlack = 1
	}
	return &Predictor{
		cfg:     cfg,
		index:   make(map[isa.Block]int),
		windows: make([]window, cfg.Windows),
	}
}

// Stats returns a copy of the counters.
func (p *Predictor) Stats() Stats { return p.stats }

// HistoryLen returns the number of history entries currently retained.
func (p *Predictor) HistoryLen() int { return len(p.history) }

// at returns the history entry at absolute position pos.
func (p *Predictor) at(pos int) (isa.Block, bool) {
	i := pos - p.base
	if i < 0 || i >= len(p.history) {
		return 0, false
	}
	return p.history[i], true
}

// end returns the absolute position one past the newest entry.
func (p *Predictor) end() int { return p.base + len(p.history) }

// Observe records the next block of the recording stream: it advances any
// replay expecting b, otherwise tries to open a new replay at b's previous
// occurrence, then appends b to the history and updates the index.
func (p *Predictor) Observe(b isa.Block) {
	p.stats.Observed++
	p.clock++

	if p.cfg.StaleAfter > 0 {
		for i := range p.windows {
			w := &p.windows[i]
			if w.live && p.clock-w.lru > uint64(p.cfg.StaleAfter) {
				w.live = false
			}
		}
	}

	advanced := false
	for i := range p.windows {
		w := &p.windows[i]
		if !w.live {
			continue
		}
		// Match b within the advance slack of the window.
		for k := 0; k < p.cfg.AdvanceSlack; k++ {
			hb, ok := p.at(w.pos + k)
			if !ok {
				break
			}
			if hb == b {
				oldPos := w.pos
				w.pos += k + 1
				w.lru = p.clock
				if w.pos >= p.end() {
					w.live = false // replay ran off the recorded end
				}
				advanced = true
				p.stats.Advances++
				if p.AdvanceHook != nil {
					p.AdvanceHook(w.openDist)
				}
				p.expose(oldPos+p.cfg.Lookahead, w.pos+p.cfg.Lookahead)
				break
			}
		}
		if advanced {
			break
		}
	}

	if !advanced {
		if pos, ok := p.index[b]; ok {
			p.open(pos+1, p.end()-pos)
		}
	}

	p.index[b] = p.end()
	p.history = append(p.history, b)
	if p.cfg.MaxHistory > 0 && len(p.history) > p.cfg.MaxHistory {
		drop := len(p.history) - p.cfg.MaxHistory
		p.history = p.history[drop:]
		p.base += drop
	}
}

// open allocates a replay window at absolute history position pos,
// replacing the least-recently-advanced window. openDist is the history
// distance between the trigger's two occurrences.
func (p *Predictor) open(pos, openDist int) {
	if pos >= p.end() {
		return
	}
	victim := 0
	for i := range p.windows {
		if !p.windows[i].live {
			victim = i
			break
		}
		if p.windows[i].lru < p.windows[victim].lru {
			victim = i
		}
	}
	p.windows[victim] = window{pos: pos, live: true, lru: p.clock, openDist: openDist}
	p.stats.Replays++
	p.expose(pos, pos+p.cfg.Lookahead)
}

// expose reports history blocks in [from, to) to the ExposeHook.
func (p *Predictor) expose(from, to int) {
	if p.ExposeHook == nil {
		return
	}
	for pos := from; pos < to; pos++ {
		if hb, ok := p.at(pos); ok {
			p.ExposeHook(hb)
		}
	}
}

// Predicted reports whether block b lies in the lookahead window of any
// active replay — i.e., whether the predictor would have prefetched it.
func (p *Predictor) Predicted(b isa.Block) bool {
	p.stats.Queries++
	for i := range p.windows {
		w := &p.windows[i]
		if !w.live {
			continue
		}
		for k := 0; k < p.cfg.Lookahead; k++ {
			hb, ok := p.at(w.pos + k)
			if !ok {
				break
			}
			if hb == b {
				p.stats.QueryHits++
				return true
			}
		}
	}
	return false
}
