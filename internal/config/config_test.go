package config

import (
	"strings"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestTableIValues(t *testing.T) {
	s := Default()
	if s.Cores != 16 || s.FetchWidth != 3 || s.ROBEntries != 96 {
		t.Errorf("core parameters drifted from Table I: %+v", s)
	}
	if s.L1ISizeBytes != 64<<10 || s.L1IAssoc != 2 || s.BlockBytes != 64 {
		t.Errorf("L1-I parameters drifted from Table I")
	}
	if s.L2HitCycles != 15 {
		t.Errorf("L2 latency = %d, want 15", s.L2HitCycles)
	}
	if s.MemCycles() != 90 {
		t.Errorf("memory latency = %d cycles, want 90 (45ns at 2GHz)", s.MemCycles())
	}
}

func TestL1IGeometry(t *testing.T) {
	l1 := Default().L1I()
	if err := l1.Validate(); err != nil {
		t.Fatalf("L1I geometry invalid: %v", err)
	}
	if l1.Sets() != 512 {
		t.Errorf("L1I sets = %d, want 512", l1.Sets())
	}
}

func TestFrontendConfig(t *testing.T) {
	fc := Default().Frontend(7)
	if fc.Seed != 7 {
		t.Errorf("seed = %d", fc.Seed)
	}
	if fc.MaxWrongPathBlocks != 6 {
		t.Errorf("MaxWrongPathBlocks = %d", fc.MaxWrongPathBlocks)
	}
	if err := fc.Predictor.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	s := Default()
	s.FetchWidth = 0
	if s.Validate() == nil {
		t.Error("zero fetch width accepted")
	}
	s = Default()
	s.L2HitCycles = 200 // slower than memory
	if s.Validate() == nil {
		t.Error("inverted latencies accepted")
	}
	s = Default()
	s.L1ISizeBytes = 100
	if s.Validate() == nil {
		t.Error("bad L1 geometry accepted")
	}
}

func TestTableIRendering(t *testing.T) {
	out := Default().TableI()
	for _, want := range []string{"64KB 2-way", "16K gShare", "512KB per core", "45 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I rendering missing %q:\n%s", want, out)
		}
	}
}
