package config

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestValidateEdgeCases covers the degenerate geometries beyond the happy
// path: zero and negative sizes, line sizes the isa package cannot index,
// non-power-of-two set counts, and negative MSHR files. The golden
// regression suite runs every experiment from a System that passed
// Validate, so an accepted-but-broken config here would corrupt reproduced
// numbers silently.
func TestValidateEdgeCases(t *testing.T) {
	mod := func(f func(*System)) System {
		s := Default()
		f(&s)
		return s
	}
	cases := []struct {
		name string
		sys  System
	}{
		{"zero L1 size", mod(func(s *System) { s.L1ISizeBytes = 0 })},
		{"negative L1 size", mod(func(s *System) { s.L1ISizeBytes = -64 << 10 })},
		{"zero assoc", mod(func(s *System) { s.L1IAssoc = 0 })},
		{"zero block", mod(func(s *System) { s.BlockBytes = 0 })},
		{"block size not isa's", mod(func(s *System) { s.BlockBytes = 32; s.L1ISizeBytes = 32 << 10 })},
		{"assoc above capacity", mod(func(s *System) { s.L1IAssoc = 2048 })},
		{"non-power-of-two sets", mod(func(s *System) { s.L1ISizeBytes = 96 << 10 })},
		{"negative MSHRs", mod(func(s *System) { s.L1IMSHRs = -1 })},
		{"zero clock", mod(func(s *System) { s.ClockGHz = 0 })},
		{"zero fetch width", mod(func(s *System) { s.FetchWidth = 0 })},
		{"L2 slower than memory", mod(func(s *System) { s.L2HitCycles = 200 })},
		{"negative data stall", mod(func(s *System) { s.DataStallCPI = -0.1 })},
		{"negative ctx switch", mod(func(s *System) { s.CtxSwitchBlocks = -1 })},
		{"zero predictor table", mod(func(s *System) { s.Predictor.GShareEntries = 0 })},
		{"non-power-of-two BTB", mod(func(s *System) { s.Predictor.BTBEntries = 3000 })},
	}
	for _, c := range cases {
		if err := c.sys.Validate(); err == nil {
			t.Errorf("%s: accepted (%+v)", c.name, c.sys)
		}
	}
}

// TestValidateAcceptsUnusualButSound documents geometries that look odd
// but are sound under the model, so Validate must not over-tighten: ways
// need not be a power of two as long as the set count is.
func TestValidateAcceptsUnusualButSound(t *testing.T) {
	s := Default()
	s.L1IAssoc = 6
	s.L1ISizeBytes = 48 << 10 // 48KB / (6 ways * 64B) = 128 sets, power of two
	if err := s.Validate(); err != nil {
		t.Errorf("6-way 48KB rejected: %v", err)
	}
	if got := s.L1I().Sets(); got != 128 {
		t.Errorf("sets = %d, want 128", got)
	}
	s = Default()
	s.L1IMSHRs = 0 // documented as "unlimited"
	if err := s.Validate(); err != nil {
		t.Errorf("zero (unlimited) MSHRs rejected: %v", err)
	}
	s = Default()
	s.CtxSwitchEveryInstrs = 0 // documented as "pollution disabled"
	if err := s.Validate(); err != nil {
		t.Errorf("disabled context-switch pollution rejected: %v", err)
	}
}

// TestBlockBytesMatchesISA pins the Table I line size to the isa package's
// compile-time block geometry; drifting either side breaks PC-to-block
// conversion everywhere.
func TestBlockBytesMatchesISA(t *testing.T) {
	if Default().BlockBytes != isa.BlockBytes {
		t.Fatalf("default BlockBytes %d != isa.BlockBytes %d", Default().BlockBytes, isa.BlockBytes)
	}
	bad := Default()
	bad.BlockBytes = 128
	bad.L1ISizeBytes = 128 << 10 // keep the geometry itself consistent
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "BlockBytes") {
		t.Errorf("mismatched line size accepted: %v", err)
	}
}
