// Package config centralizes the simulated system parameters of the
// paper's Table I and converts them into the component configurations used
// across the repository. Experiments that sweep a parameter start from
// Default() and override one field, so every deviation from the paper's
// setup is explicit at the call site.
package config

import (
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/frontend"
	"repro/internal/isa"
)

// System mirrors Table I (left): the processing node, I-fetch unit, cache
// hierarchy, and memory parameters. Only the fields that affect this
// repository's models are represented; purely descriptive entries (mesh
// topology, coherence unit) are retained as documentation fields.
type System struct {
	// Cores is the CMP core count (16 in the paper). The timing model is
	// per-core; Cores documents the system the workloads represent.
	Cores int
	// ClockGHz is the core clock (2 GHz).
	ClockGHz float64
	// FetchWidth is dispatch/retirement width (3-wide).
	FetchWidth int
	// ROBEntries is the reorder buffer size (96).
	ROBEntries int
	// LSQEntries is the load/store queue size (64).
	LSQEntries int

	// L1ISizeBytes, L1IAssoc, BlockBytes: 64KB, 2-way, 64B blocks.
	L1ISizeBytes int
	L1IAssoc     int
	BlockBytes   int
	// L1ILoadToUse is the L1-I hit latency in cycles (2).
	L1ILoadToUse int
	// L1IMSHRs bounds outstanding instruction fills (32).
	L1IMSHRs int

	// L2SizeBytesPerCore, L2Assoc, L2HitCycles: 512KB/core, 16-way, 15.
	L2SizeBytesPerCore int
	L2Assoc            int
	L2HitCycles        int

	// MemAccessNanos is main memory latency (45 ns → 90 cycles at 2 GHz).
	MemAccessNanos float64

	// Branch predictor (hybrid 16K gShare + 16K bimodal).
	Predictor bpred.Config
	// MaxWrongPathBlocks bounds wrong-path fetch per misprediction.
	MaxWrongPathBlocks int
	// DataStallCPI is the average non-fetch stall per instruction
	// (data-cache misses, dependency chains, resource stalls). It dilutes
	// instruction-fetch stalls so their share of execution time matches
	// the paper's server-workload characterization (~40%).
	DataStallCPI float64
	// CtxSwitchEveryInstrs is the mean interval between context-switch
	// events that pollute the L1-I with another thread's footprint
	// (OS scheduling, kernel daemons — the full-system randomness the
	// paper's traces contain). 0 disables pollution.
	CtxSwitchEveryInstrs int
	// CtxSwitchBlocks is the number of foreign blocks filled per event.
	CtxSwitchBlocks int
}

// Default returns the paper's Table I configuration.
func Default() System {
	return System{
		Cores:                16,
		ClockGHz:             2.0,
		FetchWidth:           3,
		ROBEntries:           96,
		LSQEntries:           64,
		L1ISizeBytes:         64 << 10,
		L1IAssoc:             2,
		BlockBytes:           64,
		L1ILoadToUse:         2,
		L1IMSHRs:             32,
		L2SizeBytesPerCore:   512 << 10,
		L2Assoc:              16,
		L2HitCycles:          15,
		MemAccessNanos:       45,
		Predictor:            bpred.DefaultConfig(),
		MaxWrongPathBlocks:   6,
		DataStallCPI:         0.3,
		CtxSwitchEveryInstrs: 40_000,
		CtxSwitchBlocks:      320,
	}
}

// MemCycles converts the memory latency to core cycles.
func (s System) MemCycles() int {
	return int(s.MemAccessNanos * s.ClockGHz)
}

// L1I returns the L1 instruction cache geometry.
func (s System) L1I() cache.Config {
	return cache.Config{
		SizeBytes:  s.L1ISizeBytes,
		Assoc:      s.L1IAssoc,
		BlockBytes: s.BlockBytes,
		MSHRs:      s.L1IMSHRs,
	}
}

// Frontend returns the fetch-engine model configuration.
func (s System) Frontend(seed int64) frontend.Config {
	return frontend.Config{
		Predictor:          s.Predictor,
		MaxWrongPathBlocks: s.MaxWrongPathBlocks,
		Seed:               seed,
	}
}

// Validate checks the composite configuration.
func (s System) Validate() error {
	if err := s.L1I().Validate(); err != nil {
		return err
	}
	// The whole pipeline converts PCs to blocks with isa.BlockShift, so a
	// cache model with any other line size would silently mis-index.
	if s.BlockBytes != isa.BlockBytes {
		return fmt.Errorf("config: BlockBytes = %d, model requires %d (isa.BlockBytes)", s.BlockBytes, isa.BlockBytes)
	}
	if err := s.Predictor.Validate(); err != nil {
		return err
	}
	if s.FetchWidth <= 0 {
		return fmt.Errorf("config: FetchWidth = %d", s.FetchWidth)
	}
	if s.L2HitCycles <= 0 || s.MemCycles() <= s.L2HitCycles {
		return fmt.Errorf("config: latencies inverted (L2 %d, mem %d)", s.L2HitCycles, s.MemCycles())
	}
	if s.MaxWrongPathBlocks <= 0 {
		return fmt.Errorf("config: MaxWrongPathBlocks = %d", s.MaxWrongPathBlocks)
	}
	if s.DataStallCPI < 0 {
		return fmt.Errorf("config: DataStallCPI = %f", s.DataStallCPI)
	}
	if s.CtxSwitchEveryInstrs < 0 || s.CtxSwitchBlocks < 0 {
		return fmt.Errorf("config: context switch parameters negative")
	}
	return nil
}

// TableI renders the configuration in the shape of the paper's Table I.
func (s System) TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I. System parameters\n")
	fmt.Fprintf(&b, "  Processing Nodes   %d x %.1f GHz OoO cores, %d-wide dispatch/retire\n",
		s.Cores, s.ClockGHz, s.FetchWidth)
	fmt.Fprintf(&b, "                     %d-entry ROB, %d-entry LSQ\n", s.ROBEntries, s.LSQEntries)
	fmt.Fprintf(&b, "  I-Fetch Unit       %dKB %d-way L1-I, %dB blocks, %d-cycle load-to-use, %d MSHRs\n",
		s.L1ISizeBytes>>10, s.L1IAssoc, s.BlockBytes, s.L1ILoadToUse, s.L1IMSHRs)
	fmt.Fprintf(&b, "                     hybrid branch predictor (%dK gShare + %dK bimodal)\n",
		s.Predictor.GShareEntries>>10, s.Predictor.BimodalEntries>>10)
	fmt.Fprintf(&b, "  L2 NUCA Cache      %dKB per core, %d-way, %d-cycle hit latency\n",
		s.L2SizeBytesPerCore>>10, s.L2Assoc, s.L2HitCycles)
	fmt.Fprintf(&b, "  Main Memory        %.0f ns access latency (%d cycles)\n",
		s.MemAccessNanos, s.MemCycles())
	return b.String()
}
