// Package sim is the trace-driven timing and coverage simulator: it drives
// a workload's retire-order stream through the front-end model, the L1-I
// cache, and a pluggable prefetcher, and accounts fetch-stall cycles to
// produce the UIPC-proportional throughput metric of the paper's
// performance comparison (Figure 10 right) and the miss-coverage metric of
// the competitive comparison (Figure 10 left).
//
// The timing model charges each retired instruction 1/width cycles plus the
// exposed latency of correct-path instruction fetch misses (L2 hit or
// memory fill, reduced by prefetch timeliness), which is the first-order
// bottleneck the paper attacks; see DESIGN.md §4 for the substitution
// rationale.
package sim

import (
	"context"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/frontend"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// System is the Table I machine description.
	System config.System
	// PerfectL1 makes every fetch complete with hit latency (the paper's
	// perfect-latency cache upper bound); the cache and prefetcher still
	// operate normally so externally observable behavior matches.
	PerfectL1 bool
	// WarmupInstrs executes before statistics are reset (checkpoint
	// warming in the paper's methodology).
	WarmupInstrs uint64
	// MeasureOffsetInstrs executes after the warmup reset but before the
	// measured interval, with statistics accumulating: the run snapshots
	// its counters after the offset and reports the measured interval as
	// deltas against that snapshot. Because the reset still happens at
	// the warmup boundary — the same point as an offset-free run — the
	// simulator's clock and state at every instruction are byte-identical
	// to the sequential run's, which is what lets sharded replay
	// (SplitReplay exact mode) reconstruct the sequential counters
	// exactly, timing included. Zero for ordinary runs.
	MeasureOffsetInstrs uint64
	// MeasureInstrs is the measured instruction count.
	MeasureInstrs uint64
}

// DefaultConfig returns a laptop-scale analog of the paper's methodology:
// warmed structures, then a measured interval.
func DefaultConfig() Config {
	return Config{
		System:        config.Default(),
		WarmupInstrs:  2_000_000,
		MeasureInstrs: 2_000_000,
	}
}

// Result is the outcome of one run. The JSON field names are stable
// snake_case: raw per-job results are persisted schema-versioned by the
// results store (internal/report, results/<run-id>/jobs/<key>.json) and
// diffed across commits, so renaming a field is a schema change.
type Result struct {
	Workload   string `json:"workload"`
	Prefetcher string `json:"prefetcher"`

	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// UIPC is user instructions committed per cycle (the paper's
	// throughput metric).
	UIPC float64 `json:"uipc"`

	L1 cache.Stats    `json:"l1"`
	FE frontend.Stats `json:"fe"`

	// Correct-path demand fetch accounting (wrong-path excluded).
	CorrectAccesses uint64 `json:"correct_accesses"`
	CorrectMisses   uint64 `json:"correct_misses"`
	CoveredMisses   uint64 `json:"covered_misses"` // demand hits on prefetched lines
	// StallCycles is the exposed fetch latency.
	StallCycles uint64 `json:"stall_cycles"`
	// PrefetchesIssued counts issuer fills.
	PrefetchesIssued uint64 `json:"prefetches_issued"`
}

// Coverage returns the fraction of would-be misses eliminated by
// prefetching: covered / (covered + residual misses).
func (r Result) Coverage() float64 {
	denom := r.CoveredMisses + r.CorrectMisses
	if denom == 0 {
		return 0
	}
	return float64(r.CoveredMisses) / float64(denom)
}

// MissRatio returns correct-path misses per correct-path access.
func (r Result) MissRatio() float64 {
	if r.CorrectAccesses == 0 {
		return 0
	}
	return float64(r.CorrectMisses) / float64(r.CorrectAccesses)
}

// Simulator couples the models for one run.
type Simulator struct {
	cfg Config
	l1  *cache.Cache
	fe  *frontend.Frontend
	pf  prefetch.Prefetcher

	instrs     uint64
	stall      uint64
	everFilled map[isa.Block]struct{} // L2-resident approximation
	readyAt    map[isa.Block]uint64   // in-flight prefetch completion times
	polluter   *cache.Polluter

	correctAccesses uint64
	correctMisses   uint64
	coveredMisses   uint64
	prefIssued      uint64

	lastTagged bool
	obs        Observer

	// iss and accessFn are the issuer interface value and the access
	// callback, boxed once at construction: handing issuer{s} or s.access
	// to an interface/func parameter at every event would allocate on the
	// hot path (two escapes per retired instruction), which the
	// steady-state alloc benchmarks in bench_test.go pin at zero.
	iss      prefetch.Issuer
	accessFn func(frontend.Access)
}

// Observer receives per-event callbacks from the measured interval of a
// run; experiments use it to slice statistics (e.g. per trap level).
type Observer interface {
	// OnCorrectFetch is called for every correct-path demand fetch.
	OnCorrectFetch(tl isa.TrapLevel, hit, wasPrefetched bool)
}

// New builds a simulator; it panics on invalid system configuration.
func New(cfg Config, pf prefetch.Prefetcher, feSeed int64) *Simulator {
	if err := cfg.System.Validate(); err != nil {
		panic(err)
	}
	s := &Simulator{
		cfg:        cfg,
		l1:         cache.New(cfg.System.L1I()),
		fe:         frontend.New(cfg.System.Frontend(feSeed)),
		pf:         pf,
		everFilled: make(map[isa.Block]struct{}, 1<<16),
		readyAt:    make(map[isa.Block]uint64, 1<<10),
		lastTagged: true,
		polluter: cache.NewPolluter(
			cfg.System.CtxSwitchEveryInstrs, cfg.System.CtxSwitchBlocks, feSeed^0x706f6c),
	}
	s.iss = issuer{s}
	s.accessFn = s.access
	return s
}

// now returns the current cycle count: issue cycles at the machine width,
// plus modeled data-side stalls, plus exposed instruction-fetch stalls.
func (s *Simulator) now() uint64 {
	base := s.instrs / uint64(s.cfg.System.FetchWidth)
	data := uint64(float64(s.instrs) * s.cfg.System.DataStallCPI)
	return base + data + s.stall
}

// fillLatency returns the fill time for block b: L2 hit for previously
// touched blocks (the multi-megabyte working set is L2 resident), memory
// for cold blocks.
func (s *Simulator) fillLatency(b isa.Block) uint64 {
	if _, ok := s.everFilled[b]; ok {
		return uint64(s.cfg.System.L2HitCycles)
	}
	return uint64(s.cfg.System.MemCycles())
}

// issuer is the prefetch.Issuer the simulator hands to prefetchers.
type issuer struct{ s *Simulator }

// Contains implements prefetch.Issuer.
func (i issuer) Contains(b isa.Block) bool { return i.s.l1.Contains(b) }

// Prefetch implements prefetch.Issuer: the block is installed immediately
// (behavioral) with a completion time used to charge partial stalls when
// demand arrives before the fill.
func (i issuer) Prefetch(b isa.Block) {
	s := i.s
	if s.l1.Contains(b) {
		return
	}
	lat := s.fillLatency(b)
	s.l1.Fill(b, true)
	s.everFilled[b] = struct{}{}
	s.readyAt[b] = s.now() + lat
	s.prefIssued++
}

// access processes one front-end access.
func (s *Simulator) access(a frontend.Access) {
	hit, wasPrefetched := s.l1.Access(a.Block)

	if !a.WrongPath {
		s.correctAccesses++
		if hit && wasPrefetched {
			s.coveredMisses++
		}
		if !hit {
			s.correctMisses++
		}
		s.lastTagged = !(hit && wasPrefetched)
		if s.obs != nil {
			s.obs.OnCorrectFetch(a.TL, hit, wasPrefetched)
		}
	}

	// Timing: exposed latency on correct-path fetches only (wrong-path
	// fills overlap with recovery).
	if !s.cfg.PerfectL1 && !a.WrongPath {
		if !hit {
			s.stall += s.fillLatency(a.Block)
		} else if wasPrefetched {
			if ready, ok := s.readyAt[a.Block]; ok {
				if now := s.now(); ready > now {
					s.stall += ready - now // prefetch in flight: partial stall
				}
			}
		}
	}
	if hit {
		delete(s.readyAt, a.Block)
	}

	if !hit {
		s.l1.Fill(a.Block, false)
		s.everFilled[a.Block] = struct{}{}
		delete(s.readyAt, a.Block)
	}

	s.pf.OnAccess(prefetch.AccessEvent{
		Block:         a.Block,
		TL:            a.TL,
		WrongPath:     a.WrongPath,
		Hit:           hit,
		WasPrefetched: wasPrefetched,
	}, s.iss)
}

// Step consumes one retired instruction.
func (s *Simulator) Step(r trace.Record) {
	s.fe.Feed(r, s.accessFn)
	s.pf.OnRetire(r, s.lastTagged, s.iss)
	s.instrs++
	s.polluter.Tick(s.l1)
}

// resetStats clears measurement state after warmup. The prefetch
// completion times are keyed to the cycle counter, so in-flight prefetches
// are considered complete at the measurement boundary.
func (s *Simulator) resetStats() {
	s.l1.ResetStats()
	clear(s.readyAt)
	s.instrs = 0
	s.stall = 0
	s.correctAccesses = 0
	s.correctMisses = 0
	s.coveredMisses = 0
	s.prefIssued = 0
}

// result snapshots the measured interval.
func (s *Simulator) result(workload string) Result {
	r := Result{
		Workload:         workload,
		Prefetcher:       s.pf.Name(),
		Instructions:     s.instrs,
		Cycles:           s.now(),
		L1:               s.l1.Stats(),
		FE:               s.fe.Stats(),
		CorrectAccesses:  s.correctAccesses,
		CorrectMisses:    s.correctMisses,
		CoveredMisses:    s.coveredMisses,
		StallCycles:      s.stall,
		PrefetchesIssued: s.prefIssued,
	}
	if r.Cycles > 0 {
		r.UIPC = float64(r.Instructions) / float64(r.Cycles)
	}
	return r
}

// deltaFrom subtracts an earlier snapshot of the same run from r,
// leaving the counters of the interval between the two snapshot points
// (Config.MeasureOffsetInstrs support). Every subtracted field is a
// monotone counter since the warmup reset, so the difference is exact.
// FE statistics are whole-feed by convention — never reset at the
// warmup boundary — so they pass through untouched; UIPC is recomputed
// over the interval.
func (r Result) deltaFrom(prev Result) Result {
	r.Instructions -= prev.Instructions
	r.Cycles -= prev.Cycles
	r.StallCycles -= prev.StallCycles
	r.CorrectAccesses -= prev.CorrectAccesses
	r.CorrectMisses -= prev.CorrectMisses
	r.CoveredMisses -= prev.CoveredMisses
	r.PrefetchesIssued -= prev.PrefetchesIssued
	r.L1.Sub(prev.L1)
	r.UIPC = 0
	if r.Cycles > 0 {
		r.UIPC = float64(r.Instructions) / float64(r.Cycles)
	}
	return r
}

// Run executes the full methodology for one workload/prefetcher pair:
// build program, warm up, measure. It is a serial convenience over
// RunWith; the engine instance pf must not be shared with concurrent
// runs.
func Run(cfg Config, wl workload.Profile, pf prefetch.Prefetcher) (Result, error) {
	return RunWithObserver(cfg, wl, pf, nil)
}

// RunWithObserver is Run with an Observer attached for the measured
// interval (warmup events are not observed).
func RunWithObserver(cfg Config, wl workload.Profile, pf prefetch.Prefetcher, obs Observer) (Result, error) {
	return RunWith(context.Background(), Job{
		Config:   cfg,
		Workload: wl,
		Observer: obs,
	}, pf)
}
