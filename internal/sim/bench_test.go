package sim

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchmarkReplayJob measures end-to-end store replay through RunJob —
// the batch decode path feeding the full simulator (frontend, L1-I,
// prefetcher, polluter). With ReportAllocs, allocations are per run
// (simulator construction, chunk images), not per record; the bench
// pipeline divides by the record count and enforces ~0 allocs/record.
func BenchmarkReplayJob(b *testing.B) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	dir := filepath.Join(b.TempDir(), "store")
	recordStore(b, dir, wl, cfg, 1<<14)
	records := cfg.WarmupInstrs + cfg.MeasureInstrs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := RunJob(context.Background(), Job{
			Config:   cfg,
			Workload: wl,
			From:     StoreSource(dir),
			Engine:   prefetch.Spec{Name: "nextline"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// TestStepSteadyStateAllocs pins the alloc-free hot loop: once the
// simulator's working structures are warm, Step must not allocate — no
// issuer boxing, no access-callback closure, no per-record buffers.
// Engines that intentionally grow unbounded metadata (TIFS's miss
// history) are excluded; the baselines here cover the frontend, cache,
// polluter, and prefetch per-access paths.
func TestStepSteadyStateAllocs(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	it := workload.NewIterator(prog, cfg.WarmupInstrs+cfg.MeasureInstrs)
	stream, err := trace.Collect(it)
	it.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, pf := range []prefetch.Prefetcher{
		prefetch.None{},
		prefetch.NewNextLine(4),
	} {
		s := New(cfg, pf, wl.Seed)
		for _, r := range stream { // warm caches, maps, predictor state
			s.Step(r)
		}
		const chunk = 4096
		batch := stream[:chunk]
		perRun := testing.AllocsPerRun(20, func() {
			for _, r := range batch {
				s.Step(r)
			}
		})
		if perRecord := perRun / chunk; perRecord > 0.01 {
			t.Errorf("%s: %.4f allocs/record in steady state (%.1f per %d-record run), want ~0",
				s.pf.Name(), perRecord, perRun, chunk)
		}
	}
}
