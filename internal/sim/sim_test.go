package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

// quickConfig keeps unit-test runtimes low while warming long enough that
// the measured interval is past the footprint-discovery phase (compulsory
// misses depress every prefetcher's coverage identically).
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 3_000_000
	cfg.MeasureInstrs = 1_000_000
	return cfg
}

func TestRunBaseline(t *testing.T) {
	r, err := Run(quickConfig(), workload.OLTPDB2(), prefetch.None{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions == 0 || r.Cycles == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.UIPC <= 0 || r.UIPC > 3 {
		t.Errorf("UIPC = %f out of range (width 3)", r.UIPC)
	}
	if r.CorrectMisses == 0 {
		t.Error("server workload on 64KB L1-I should miss")
	}
	if r.MissRatio() < 0.005 {
		t.Errorf("miss ratio %f suspiciously low for a multi-MB footprint", r.MissRatio())
	}
	if r.Coverage() != 0 {
		t.Errorf("None prefetcher coverage = %f, want 0", r.Coverage())
	}
}

func TestPerfectL1NoStalls(t *testing.T) {
	cfg := quickConfig()
	cfg.PerfectL1 = true
	r, err := Run(cfg, workload.OLTPDB2(), prefetch.None{})
	if err != nil {
		t.Fatal(err)
	}
	if r.StallCycles != 0 {
		t.Errorf("perfect L1 has %d stall cycles", r.StallCycles)
	}
	base, err := Run(quickConfig(), workload.OLTPDB2(), prefetch.None{})
	if err != nil {
		t.Fatal(err)
	}
	if r.UIPC <= base.UIPC {
		t.Errorf("perfect UIPC %f not above baseline %f", r.UIPC, base.UIPC)
	}
}

func TestNextLineImproves(t *testing.T) {
	base, err := Run(quickConfig(), workload.OLTPDB2(), prefetch.None{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Run(quickConfig(), workload.OLTPDB2(), prefetch.NewNextLine(4))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Coverage() <= 0.2 {
		t.Errorf("next-line coverage = %f, want > 0.2 (sequential code)", nl.Coverage())
	}
	if nl.UIPC <= base.UIPC {
		t.Errorf("next-line UIPC %f not above baseline %f", nl.UIPC, base.UIPC)
	}
}

func TestPIFBeatsBaselines(t *testing.T) {
	wl := workload.OLTPDB2()
	base, err := Run(quickConfig(), wl, prefetch.None{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Run(quickConfig(), wl, prefetch.NewNextLine(4))
	if err != nil {
		t.Fatal(err)
	}
	pifRes, err := Run(quickConfig(), wl, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	perfCfg := quickConfig()
	perfCfg.PerfectL1 = true
	perf, err := Run(perfCfg, wl, prefetch.None{})
	if err != nil {
		t.Fatal(err)
	}

	if pifRes.Coverage() <= nl.Coverage() {
		t.Errorf("PIF coverage %f <= next-line %f", pifRes.Coverage(), nl.Coverage())
	}
	if pifRes.Coverage() < 0.8 {
		t.Errorf("PIF coverage = %f, want >= 0.8", pifRes.Coverage())
	}
	if pifRes.UIPC <= base.UIPC {
		t.Errorf("PIF UIPC %f <= baseline %f", pifRes.UIPC, base.UIPC)
	}
	if pifRes.UIPC > perf.UIPC*1.02 {
		t.Errorf("PIF UIPC %f exceeds perfect %f by >2%%", pifRes.UIPC, perf.UIPC)
	}
}

func TestTIFSBetweenNextLineAndPIF(t *testing.T) {
	wl := workload.WebApache()
	nl, err := Run(quickConfig(), wl, prefetch.NewNextLine(4))
	if err != nil {
		t.Fatal(err)
	}
	tifs, err := Run(quickConfig(), wl, prefetch.NewTIFS(prefetch.DefaultTIFSConfig()))
	if err != nil {
		t.Fatal(err)
	}
	pifRes, err := Run(quickConfig(), wl, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if tifs.Coverage() <= nl.Coverage() {
		t.Errorf("TIFS coverage %f <= next-line %f", tifs.Coverage(), nl.Coverage())
	}
	if pifRes.Coverage() <= tifs.Coverage() {
		t.Errorf("PIF coverage %f <= TIFS %f", pifRes.Coverage(), tifs.Coverage())
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Run(quickConfig(), workload.DSSQry2(), prefetch.NewNextLine(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(), workload.DSSQry2(), prefetch.NewNextLine(2))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("repeated runs differ:\n%+v\n%+v", a, b)
	}
}

func TestZeroMeasureRejected(t *testing.T) {
	cfg := quickConfig()
	cfg.MeasureInstrs = 0
	if _, err := Run(cfg, workload.OLTPDB2(), prefetch.None{}); err == nil {
		t.Error("zero measurement interval accepted")
	}
}

func TestCoverageAndMissRatioBounds(t *testing.T) {
	r := Result{CorrectAccesses: 100, CorrectMisses: 10, CoveredMisses: 30}
	if got := r.Coverage(); got != 0.75 {
		t.Errorf("Coverage = %f, want 0.75", got)
	}
	if got := r.MissRatio(); got != 0.1 {
		t.Errorf("MissRatio = %f, want 0.1", got)
	}
	var zero Result
	if zero.Coverage() != 0 || zero.MissRatio() != 0 {
		t.Error("zero result should report zero ratios")
	}
}
