// Sharded replay: splitting one recorded trace's measured interval into
// K contiguous windows that replay in parallel, and stitching the
// per-window results back into one whole-run Result. The split and merge
// rules live here, next to the simulator state they reason about; the
// parallel driver is runner.ShardedReplay (the runner owns backends).
// See DESIGN.md §10 for the stitching-rule derivation.

package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/trace"
)

// ShardPlan describes one shard of a sharded single-trace replay: the
// store window the shard pulls (its warmup prefix plus its measured
// span) and the warmup/offset/measure split to replay it under.
type ShardPlan struct {
	// Window is the absolute record range the shard reads.
	Window trace.Window
	// WarmupInstrs is the prefix replayed before statistics reset.
	WarmupInstrs uint64
	// MeasureOffsetInstrs is replayed between the reset and the measured
	// span with statistics accumulating (exact mode only; see
	// Config.MeasureOffsetInstrs). Zero in approximate mode.
	MeasureOffsetInstrs uint64
	// MeasureInstrs is the shard's measured span.
	MeasureInstrs uint64
}

// Config returns base with the plan's warmup/offset/measure split
// applied — the per-shard job configuration.
func (p ShardPlan) Config(base Config) Config {
	base.WarmupInstrs = p.WarmupInstrs
	base.MeasureOffsetInstrs = p.MeasureOffsetInstrs
	base.MeasureInstrs = p.MeasureInstrs
	return base
}

// SplitReplay plans a K-way shard of one trace replay under cfg's
// warmup/measure interval. The measured interval is tiled contiguously
// (earlier shards take the remainder records, so spans differ by at most
// one).
//
// In exact mode every shard replays the full trace prefix [0, start):
// the configured warmup (reset at the same boundary as the sequential
// run) followed by a measure offset that accumulates statistics up to
// the shard's span, which is then reported as counter deltas (see
// Config.MeasureOffsetInstrs). Each shard's simulator therefore reaches
// its span with byte-identical state AND clock to the sequential run,
// so everything — event counters, Cycles, StallCycles, UIPC — merges
// losslessly (MergeShardResults). The prefix re-replay makes total work
// quadratic-ish in K and leaves the last shard replaying the whole
// trace, so exact mode buys bit-exact parity, not wall-clock speedup;
// use approximate mode when throughput is the point.
//
// In approximate mode every shard warms with a fixed-length prefix of
// cfg.WarmupInstrs records immediately preceding its span — the same
// cache/predictor warming the sweep-window artifact measures — so work
// scales linearly with the trace and shards parallelize fully, while
// merged metrics land within that artifact's window-position
// tolerances rather than exactly.
func SplitReplay(cfg Config, shards int, exact bool) ([]ShardPlan, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("sim: shard count %d, want >= 1", shards)
	}
	if cfg.MeasureInstrs == 0 {
		return nil, fmt.Errorf("sim: zero measurement interval")
	}
	if uint64(shards) > cfg.MeasureInstrs {
		return nil, fmt.Errorf("sim: %d shards over a %d-record measured interval", shards, cfg.MeasureInstrs)
	}
	base := cfg.MeasureInstrs / uint64(shards)
	rem := cfg.MeasureInstrs % uint64(shards)
	plans := make([]ShardPlan, shards)
	start := cfg.WarmupInstrs
	for k := range plans {
		n := base
		if uint64(k) < rem {
			n++
		}
		if exact {
			plans[k] = ShardPlan{
				Window:              trace.Window{Off: 0, Len: start + n},
				WarmupInstrs:        cfg.WarmupInstrs,
				MeasureOffsetInstrs: start - cfg.WarmupInstrs,
				MeasureInstrs:       n,
			}
		} else {
			warm := cfg.WarmupInstrs
			if warm > start {
				warm = start
			}
			plans[k] = ShardPlan{
				Window:        trace.Window{Off: start - warm, Len: warm + n},
				WarmupInstrs:  warm,
				MeasureInstrs: n,
			}
		}
		start += n
	}
	return plans, nil
}

// MergeShardResults stitches per-shard results (in shard order) into one
// whole-run Result. The stitching rules follow from what the simulator
// resets at the warmup boundary (see DESIGN.md §10):
//
//   - Event counters — Instructions, CorrectAccesses, CorrectMisses,
//     CoveredMisses, PrefetchesIssued, and every L1 field — are counts of
//     measured-interval events. Under exact (full-prefix) sharding each
//     shard observes exactly the sequential run's events over its span,
//     so the sums equal the sequential counters bit for bit.
//   - FE statistics are never reset at the warmup boundary (they span the
//     whole feed), so the last shard — whose feed is the full prefix plus
//     the final span, i.e. the whole trace — carries the sequential run's
//     FE stats verbatim. Merge takes them from it, not a sum.
//   - Timing — Cycles, StallCycles, and therefore UIPC — is exact under
//     exact sharding: each shard reports delta-of-clock over its span
//     against the sequential run's own clock (the reset sits at the
//     same warmup boundary, and offsets accumulate rather than
//     re-resetting; see Config.MeasureOffsetInstrs), so the per-shard
//     deltas telescope to the sequential totals bit for bit. Under
//     approximate sharding each shard rounds instrs/width and
//     data-stall cycles from its own reset, so sums land within
//     tolerance of sequential, not exactly.
//
// UIPC is recomputed from the merged totals.
func MergeShardResults(shards []Result) (Result, error) {
	if len(shards) == 0 {
		return Result{}, fmt.Errorf("sim: no shard results to merge")
	}
	m := shards[len(shards)-1] // Workload, Prefetcher, FE (whole-trace feed)
	m.Instructions, m.Cycles, m.UIPC = 0, 0, 0
	m.CorrectAccesses, m.CorrectMisses, m.CoveredMisses = 0, 0, 0
	m.StallCycles, m.PrefetchesIssued = 0, 0
	m.L1 = cache.Stats{}
	for _, r := range shards {
		if r.Workload != m.Workload || r.Prefetcher != m.Prefetcher {
			return Result{}, fmt.Errorf("sim: merging shard results from different runs (%s/%s vs %s/%s)",
				r.Workload, r.Prefetcher, m.Workload, m.Prefetcher)
		}
		m.Instructions += r.Instructions
		m.Cycles += r.Cycles
		m.StallCycles += r.StallCycles
		m.CorrectAccesses += r.CorrectAccesses
		m.CorrectMisses += r.CorrectMisses
		m.CoveredMisses += r.CoveredMisses
		m.PrefetchesIssued += r.PrefetchesIssued
		m.L1.Add(r.L1)
	}
	if m.Cycles > 0 {
		m.UIPC = float64(m.Instructions) / float64(m.Cycles)
	}
	return m, nil
}
