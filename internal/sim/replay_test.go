package sim

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

func replayConfig() Config {
	return Config{
		System:        config.Default(),
		WarmupInstrs:  150_000,
		MeasureInstrs: 100_000,
	}
}

// recordStore writes the workload's warmup+measure stream — with the
// same phase boundaries RunJob's live path uses — into a sharded store.
func recordStore(t testing.TB, dir string, wl workload.Profile, cfg Config, chunkRecords uint64) {
	t.Helper()
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	it := workload.NewIterator(prog, cfg.WarmupInstrs, cfg.MeasureInstrs)
	defer it.Close()
	n, err := trace.BuildStore(dir, wl.Name, chunkRecords, it, cfg.WarmupInstrs, cfg.MeasureInstrs)
	if err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
	if n != cfg.WarmupInstrs+cfg.MeasureInstrs {
		t.Fatalf("recorded %d records, want %d", n, cfg.WarmupInstrs+cfg.MeasureInstrs)
	}
}

// TestReplayMatchesLive is the store's acceptance bar: a simulation
// replayed from a sharded on-disk trace must produce a byte-identical
// sim.Result (compared as JSON) to one driven live by the executor for
// the same profile and instruction counts. The chunk size is far smaller
// than the trace so the replay crosses many shard boundaries.
func TestReplayMatchesLive(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	dir := filepath.Join(t.TempDir(), "store")
	recordStore(t, dir, wl, cfg, 1<<14) // ~16 chunks

	engine := prefetch.Spec{Name: "nextline"}

	live, err := RunJob(context.Background(), Job{Config: cfg, Workload: wl, Engine: engine})
	if err != nil {
		t.Fatalf("live RunJob: %v", err)
	}
	src, err := trace.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	replayed, err := RunJob(context.Background(), Job{Config: cfg, Workload: wl, Source: src, Engine: engine})
	if err != nil {
		t.Fatalf("replay RunJob: %v", err)
	}

	liveJSON, err := json.Marshal(live)
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, err := json.Marshal(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if string(liveJSON) != string(replayJSON) {
		t.Errorf("replayed result differs from live:\nlive:   %s\nreplay: %s", liveJSON, replayJSON)
	}
}

// TestReplayShortSourceFails asserts a source exhausted before
// warmup+measure is a hard error, never a silently short simulation.
func TestReplayShortSourceFails(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	short := make(trace.Stream, 1000)
	_, err := RunJob(context.Background(), Job{
		Config:   cfg,
		Workload: wl,
		Source:   short.Iter(),
		Engine:   prefetch.Spec{Name: "none"},
	})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short source error = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestReplayCancel asserts the replay path honors context cancellation.
func TestReplayCancel(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	dir := filepath.Join(t.TempDir(), "store")
	recordStore(t, dir, wl, cfg, 1<<14)
	src, err := trace.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunJob(ctx, Job{
		Config:   cfg,
		Workload: wl,
		Source:   src,
		Engine:   prefetch.Spec{Name: "none"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled replay error = %v, want context.Canceled", err)
	}
}

// BenchmarkReplayFromStore measures the full replay path (open store,
// stream warmup+measure through the simulator). ReportAllocs shows the
// replay's allocations are dominated by the simulator's own tables, with
// trace I/O contributing only per-chunk buffers — memory bounded by
// chunk size, not trace length.
func BenchmarkReplayFromStore(b *testing.B) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	dir := filepath.Join(b.TempDir(), "store")
	recordStore(b, dir, wl, cfg, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := trace.OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		_, err = RunJob(context.Background(), Job{
			Config:   cfg,
			Workload: wl,
			Source:   src,
			Engine:   prefetch.Spec{Name: "none"},
		})
		if err != nil {
			b.Fatal(err)
		}
		src.Close()
	}
}
