package sim

import (
	"context"
	"fmt"

	"repro/internal/trace"
	"repro/internal/workload"
)

// Source is the factory half of the unified pipeline API: a value that
// names *what to simulate* — a live workload execution, a recorded trace
// store, or a window of one — independently of the engine simulating it
// and the backend running it. Jobs carry Sources instead of open
// iterators because sources, like prefetch engines, are stateful once
// opened: every job opens its own private iterator, so any number of
// jobs can replay the same trace concurrently.
//
// Open may be called any number of times; each call returns a fresh
// iterator positioned at the source's first record. Iterators that
// implement io.Closer are closed by the consumer (RunJob closes what it
// opens). The context is accepted for forward compatibility with remote
// sources; the built-in constructors never block on it.
type Source interface {
	Open(ctx context.Context) (trace.Iterator, SourceInfo, error)
}

// SourceInfo describes an opened source: enough metadata for the
// consumer to validate the stream before burning cycles on it (record
// budget, workload identity) and for labels and persisted results to say
// what was replayed.
type SourceInfo struct {
	// Kind is the source family: "live", "store", "slice", or "iterator"
	// (an opaque adapter).
	Kind string
	// Workload is the workload name the stream was recorded from, when
	// the source knows it ("" otherwise).
	Workload string
	// Records is the number of records the source can supply, when known
	// up front (0 = unknown or unbounded).
	Records uint64
	// Path is the trace-store directory for on-disk sources.
	Path string
	// Window is the record window for slice sources (zero otherwise).
	Window trace.Window
}

// String renders the info for labels and error messages.
func (si SourceInfo) String() string {
	switch si.Kind {
	case "slice":
		return fmt.Sprintf("slice %s of %s", si.Window, si.Path)
	case "store":
		return fmt.Sprintf("store %s", si.Path)
	case "live":
		return fmt.Sprintf("live %s", si.Workload)
	default:
		return si.Kind
	}
}

// Slicer is implemented by sources that can address a contiguous
// sub-range of their records: sharded sweep execution slices a cell's
// source into per-shard windows (sweep.Settings.Shards), so any source
// implementing Slicer can be sharded. w.Off is relative to the source's
// own first record; slicing composes, so a slice of a slice addresses
// the grand-parent range. Out-of-range windows are an error — at Slice
// time when the source knows its length, otherwise at Open.
type Slicer interface {
	Source
	Slice(w trace.Window) (Source, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context) (trace.Iterator, SourceInfo, error)

// Open implements Source.
func (f SourceFunc) Open(ctx context.Context) (trace.Iterator, SourceInfo, error) { return f(ctx) }

// liveSource executes a workload program to produce its stream.
type liveSource struct {
	w      workload.Profile
	phases []uint64
}

// LiveSource returns the source that executes w's program live. phases
// are the executor Run boundaries (the executor starts a fresh
// transaction at each phase), so LiveSource(w, warmup, measure) emits
// exactly the stream a live simulation of w consumes.
//
// When no phases are given the source is only usable as a Job's record
// source: RunJob supplies the job's own warmup/measure split and runs
// the executor directly (the live fast path), byte-identical to a job
// that names the workload with no source at all. Opening a phase-less
// live source directly is an error — there is no record count to run to.
func LiveSource(w workload.Profile, phases ...uint64) Source {
	return &liveSource{w: w, phases: phases}
}

// Open implements Source by building the program image and streaming the
// executor's output with bounded memory.
func (s *liveSource) Open(ctx context.Context) (trace.Iterator, SourceInfo, error) {
	if len(s.phases) == 0 {
		return nil, SourceInfo{}, fmt.Errorf(
			"sim: live source for %q has no phases; construct with LiveSource(w, warmup, measure) or use it as a job source, where the job's config supplies them", s.w.Name)
	}
	prog, err := workload.BuildProgram(s.w)
	if err != nil {
		return nil, SourceInfo{}, err
	}
	var total uint64
	for _, p := range s.phases {
		total += p
	}
	it := workload.NewIterator(prog, s.phases...)
	return it, SourceInfo{Kind: "live", Workload: s.w.Name, Records: total}, nil
}

// storeSource replays a sharded on-disk trace store from record 0.
type storeSource struct{ dir string }

// StoreSource returns the source replaying the sharded trace store at
// dir from its first record (see trace.OpenStore).
func StoreSource(dir string) Source { return storeSource{dir} }

// Open implements Source.
func (s storeSource) Open(ctx context.Context) (trace.Iterator, SourceInfo, error) {
	r, err := trace.OpenStore(s.dir)
	if err != nil {
		return nil, SourceInfo{}, err
	}
	ix := r.Index()
	return r, SourceInfo{
		Kind:     "store",
		Workload: ix.Workload,
		Records:  ix.Records(),
		Path:     s.dir,
	}, nil
}

// Slice implements Slicer: a window of a whole-store source is a slice
// source; the store index validates bounds when the slice opens.
func (s storeSource) Slice(w trace.Window) (Source, error) {
	return SliceSource(s.dir, w), nil
}

// sliceSource replays one window of a sharded store.
type sliceSource struct {
	dir string
	w   trace.Window
}

// SliceSource returns the source replaying only window w of the sharded
// trace store at dir: the store index locates the owning chunk and
// replay starts there (trace.OpenSlice on StoreReader.Seek), so sweeping
// many windows of one trace never re-executes the workload and never
// decodes more than each window's chunks. A window reaching outside the
// recorded range is a hard error at Open.
func SliceSource(dir string, w trace.Window) Source { return sliceSource{dir, w} }

// Open implements Source.
func (s sliceSource) Open(ctx context.Context) (trace.Iterator, SourceInfo, error) {
	r, err := trace.OpenSlice(s.dir, s.w)
	if err != nil {
		return nil, SourceInfo{}, err
	}
	return r, SourceInfo{
		Kind:     "slice",
		Workload: r.Workload(),
		Records:  s.w.Len,
		Path:     s.dir,
		Window:   s.w,
	}, nil
}

// Slice implements Slicer: windows compose, so a slice of a slice
// re-addresses the store with the offsets added. The sub-window must
// lie inside this slice's own range.
func (s sliceSource) Slice(w trace.Window) (Source, error) {
	if w.End() > s.w.Len {
		return nil, fmt.Errorf("sim: slice window %s exceeds source window %s", w, s.w)
	}
	return SliceSource(s.dir, trace.Window{Off: s.w.Off + w.Off, Len: w.Len}), nil
}

// OpenerSource adapts a bare iterator factory to the Source interface —
// the escape hatch for custom record sources that predate SourceInfo.
func OpenerSource(open func() (trace.Iterator, error)) Source {
	return SourceFunc(func(ctx context.Context) (trace.Iterator, SourceInfo, error) {
		it, err := open()
		if err != nil {
			return nil, SourceInfo{}, err
		}
		return it, SourceInfo{Kind: "iterator"}, nil
	})
}
