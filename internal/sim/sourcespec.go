package sim

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/workload"
)

// SourceSpec is the wire form of a Source: a plain JSON-serializable
// value naming what to simulate, so a remote worker can rebuild the
// source locally (workload by registry name, trace store by path).
// Only the built-in source families serialize; opaque sources
// (SourceFunc closures, OpenerSource adapters) have no spec and must be
// run on a local backend.
type SourceSpec struct {
	// Kind is the source family: "live", "store", or "slice".
	Kind string `json:"kind"`
	// Workload is the registry name for live sources (workload.ByName).
	Workload string `json:"workload,omitempty"`
	// Phases are the live executor Run boundaries (empty for the
	// job-source form, where the job's config supplies them).
	Phases []uint64 `json:"phases,omitempty"`
	// Path is the trace-store directory for store and slice sources. It
	// is resolved on the machine that opens the source — remote workers
	// must share the store (common filesystem or identical local copy).
	Path string `json:"path,omitempty"`
	// Window is the record window for slice sources.
	Window trace.Window `json:"window,omitzero"`
}

// SpecOf extracts the wire form of a source. ok is false for sources
// with no serializable identity (custom SourceFunc/OpenerSource
// adapters); such jobs cannot be dispatched remotely. A nil source has
// no spec.
func SpecOf(s Source) (SourceSpec, bool) {
	switch src := s.(type) {
	case *liveSource:
		return SourceSpec{Kind: "live", Workload: src.w.Name, Phases: src.phases}, true
	case storeSource:
		return SourceSpec{Kind: "store", Path: src.dir}, true
	case sliceSource:
		return SourceSpec{Kind: "slice", Path: src.dir, Window: src.w}, true
	default:
		return SourceSpec{}, false
	}
}

// New rebuilds the Source a spec names, resolving live workloads through
// the registry. The inverse of SpecOf: SpecOf(spec.New()) round-trips.
func (sp SourceSpec) New() (Source, error) {
	switch sp.Kind {
	case "live":
		w, err := workload.ByName(sp.Workload)
		if err != nil {
			return nil, fmt.Errorf("sim: source spec: %w", err)
		}
		return LiveSource(w, sp.Phases...), nil
	case "store":
		if sp.Path == "" {
			return nil, fmt.Errorf("sim: store source spec has no path")
		}
		return StoreSource(sp.Path), nil
	case "slice":
		if sp.Path == "" {
			return nil, fmt.Errorf("sim: slice source spec has no path")
		}
		return SliceSource(sp.Path, sp.Window), nil
	default:
		return nil, fmt.Errorf("sim: unknown source spec kind %q", sp.Kind)
	}
}
