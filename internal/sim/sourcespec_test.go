package sim

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSourceSpecRoundTrip checks SpecOf/New inverse pairs for every
// serializable source family, through JSON (the wire form the remote
// backend ships).
func TestSourceSpecRoundTrip(t *testing.T) {
	wl := workload.OLTPDB2()
	sources := []Source{
		LiveSource(wl, 1000, 500),
		LiveSource(wl), // job-source form: phases come from the job config
		StoreSource("/tmp/traces/oltp"),
		SliceSource("/tmp/traces/oltp", trace.Window{Off: 128, Len: 4096}),
	}
	for _, src := range sources {
		spec, ok := SpecOf(src)
		if !ok {
			t.Fatalf("SpecOf(%T) not serializable", src)
		}
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back SourceSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		rebuilt, err := back.New()
		if err != nil {
			t.Fatalf("New(%s): %v", b, err)
		}
		spec2, ok := SpecOf(rebuilt)
		if !ok {
			t.Fatalf("rebuilt %T not serializable", rebuilt)
		}
		if spec.Kind != spec2.Kind || spec.Workload != spec2.Workload ||
			spec.Path != spec2.Path || spec.Window != spec2.Window ||
			len(spec.Phases) != len(spec2.Phases) {
			t.Errorf("round trip changed spec: %+v -> %+v", spec, spec2)
		}
	}
}

// TestSourceSpecOpaqueSources asserts that closure-backed sources have no
// wire form — the remote backend must reject them, not misroute them.
func TestSourceSpecOpaqueSources(t *testing.T) {
	opaque := []Source{
		SourceFunc(func(ctx context.Context) (trace.Iterator, SourceInfo, error) {
			return nil, SourceInfo{}, nil
		}),
		OpenerSource(func() (trace.Iterator, error) { return nil, nil }),
	}
	for _, src := range opaque {
		if spec, ok := SpecOf(src); ok {
			t.Errorf("SpecOf(%T) = %+v, want not serializable", src, spec)
		}
	}
}

// TestSourceSpecBadSpecs checks New's validation.
func TestSourceSpecBadSpecs(t *testing.T) {
	bad := []SourceSpec{
		{Kind: "live", Workload: "no-such-workload"},
		{Kind: "store"},
		{Kind: "slice"},
		{Kind: "teleport"},
		{},
	}
	for _, sp := range bad {
		if _, err := sp.New(); err == nil {
			t.Errorf("spec %+v accepted", sp)
		}
	}
}
