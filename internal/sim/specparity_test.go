package sim_test

// Spec-vs-legacy parity: a hand-tuned PIF cell built through the
// declarative spec path must produce the same sim.Result as one built by
// constructing the engine directly. This is the contract that let the
// closure-based factories be deleted without perturbing any golden. The
// test lives in an external package so it can import internal/core (the
// sim package itself must not depend on a concrete engine).

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestSpecMatchesTunedClosure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 200_000
	cfg.MeasureInstrs = 200_000
	wl := workload.OLTPDB2()

	// The legacy way: hand-build the engine config and construct directly.
	pifCfg := core.DefaultConfig()
	pifCfg.HistoryRegions = 2048
	pifCfg.IndexEntries = 512
	pifCfg.NumSABs = 2
	pifCfg.SABWindow = 5
	direct, err := sim.RunWith(context.Background(), sim.Job{Config: cfg, Workload: wl}, core.New(pifCfg))
	if err != nil {
		t.Fatal(err)
	}

	// The declarative way: the same tuning as a spec, resolved by RunJob.
	spec := prefetch.Spec{Name: "pif", Params: map[string]float64{
		"history": 2048,
		"index":   512,
		"sabs":    2,
		"window":  5,
	}}
	viaSpec, err := sim.RunJob(context.Background(), sim.Job{Config: cfg, Workload: wl, Engine: spec})
	if err != nil {
		t.Fatal(err)
	}
	if direct != viaSpec {
		t.Errorf("spec-built PIF diverges from hand-built:\ndirect: %+v\nspec:   %+v", direct, viaSpec)
	}

	// And the derivation path: history alone must mean index = history/4,
	// i.e. exactly the hand-built 2048/512 cell above.
	derived, err := sim.RunJob(context.Background(), sim.Job{
		Config:   cfg,
		Workload: wl,
		Engine: prefetch.Spec{Name: "pif", Params: map[string]float64{
			"history": 2048, "sabs": 2, "window": 5,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if direct != derived {
		t.Errorf("derived-index PIF diverges from hand-built:\ndirect:  %+v\nderived: %+v", direct, derived)
	}
}
