package sim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Job names one simulation: a record source (live workload execution by
// default), a configuration, and a declarative spec for the prefetch
// engine. Jobs are the unit of work of the execution backends
// (internal/runner): because every engine is stateful, a job carries a
// spec rather than an instance, and RunJob constructs everything it
// touches, so any number of jobs can run concurrently — goroutine safety
// by construction, with no package-level state anywhere in the
// simulation path. The spec is plain data, so the same job runs
// identically on a local worker or across the remote wire.
type Job struct {
	// Config parameterizes the run (system, warmup, measured interval).
	Config Config
	// Workload is the simulated workload profile. It supplies the
	// front-end seed and the result's name even when the record stream
	// comes from a recorded source.
	Workload workload.Profile
	// Program optionally supplies a pre-built program image (e.g. from the
	// experiments environment cache). Programs are immutable after
	// construction, so one image may be shared by concurrent jobs. When
	// nil, RunJob builds the image from Workload.
	Program *workload.Program
	// From, when non-nil, supplies the job's record stream: RunJob opens
	// the source, pulls warmup plus measured records from the returned
	// iterator, and closes it (when it implements io.Closer) after the
	// run. Store and slice sources replay recorded traces instead of
	// executing the workload; a LiveSource with no explicit phases runs
	// the executor directly, byte-identical to a job with no source at
	// all. A source that cannot supply WarmupInstrs+MeasureInstrs records
	// is a hard error — never a silently short run.
	From Source
	// Source, when non-nil, supplies the retire-order stream as an
	// already-open iterator. The iterator must be private to the job and
	// is not closed by RunJob.
	//
	// Deprecated: use From with StoreSource/SliceSource/OpenerSource,
	// which carry source metadata and manage the iterator's lifetime.
	Source trace.Iterator
	// Engine is the declarative spec of the job's prefetch engine: a
	// registry name plus parameters, resolved into a fresh private
	// instance through the prefetch registry when the job runs.
	Engine prefetch.Spec
	// Instrument, when non-nil, is invoked once with the job's freshly
	// constructed engine before the run starts (e.g. to attach a
	// stream-end hook). It is process-local state: remote backends
	// refuse jobs carrying it.
	Instrument func(prefetch.Prefetcher)
	// Observer, when non-nil, receives per-event callbacks during the
	// measured interval. It must be private to the job (observers are
	// invoked from the job's goroutine).
	Observer Observer
}

// cancelCheckMask throttles context polling to once per 64K retired
// instructions (~microseconds of real time), keeping the cancellation
// check off the per-instruction hot path.
const cancelCheckMask = 1<<16 - 1

// RunJob executes one simulation job: resolve the engine spec into a
// fresh prefetcher, resolve the record source, build (or adopt) the
// program image when executing live, warm up, measure. The context is
// polled periodically; on cancellation the run is aborted and ctx.Err()
// returned. RunJob is safe for concurrent use — it shares no mutable
// state with other runs beyond the read-only Program.
func RunJob(ctx context.Context, j Job) (Result, error) {
	if j.Engine.Name == "" {
		return Result{}, fmt.Errorf("sim: job for %q names no engine", j.Workload.Name)
	}
	p, err := prefetch.Resolve(j.Engine)
	if err != nil {
		return Result{}, fmt.Errorf("sim: job for %q: %w", j.Workload.Name, err)
	}
	if j.Instrument != nil {
		j.Instrument(p)
	}
	return RunWith(ctx, j, p)
}

// RunWith executes a job with an already-constructed engine instance,
// bypassing the job's Engine spec. It exists for instance-based entry
// points (pif.SimulateSource, parity tests); the instance must be
// private to this run — engines are stateful.
func RunWith(ctx context.Context, j Job, p prefetch.Prefetcher) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if j.Config.MeasureInstrs == 0 {
		return Result{}, fmt.Errorf("sim: zero measurement interval")
	}
	if p == nil {
		return Result{}, fmt.Errorf("sim: job for %q has no prefetch engine", j.Workload.Name)
	}
	if j.From != nil && j.Source != nil {
		return Result{}, fmt.Errorf("sim: job for %q sets both From and the deprecated Source iterator", j.Workload.Name)
	}
	if j.Source != nil {
		// Deprecated pre-opened iterator path: the caller owns the
		// iterator's lifetime.
		return replayJob(ctx, j, p, j.Source)
	}
	if j.From != nil {
		if ls, ok := j.From.(*liveSource); ok {
			// A live source carries the full profile, so a job that
			// names no workload adopts it (front-end seed included)
			// instead of silently simulating with a zero profile.
			if j.Workload.Name == "" {
				j.Workload = ls.w
			} else if j.Workload.Name != ls.w.Name {
				return Result{}, fmt.Errorf("sim: job for %q has a live source for %q", j.Workload.Name, ls.w.Name)
			}
			if len(ls.phases) == 0 {
				// Live fast path: run the executor directly under the
				// job's own warmup/measure split — no iterator
				// goroutine, and byte-identical to a job with no
				// source at all.
				return liveJob(ctx, j, p)
			}
		}
		if j.Workload.Name == "" {
			// Replay sources supply records but not a profile, and the
			// profile's front-end seed shapes the result: running with
			// the zero profile would silently diverge from every
			// workload-named run of the same trace.
			return Result{}, fmt.Errorf("sim: job with a record source names no workload profile (the profile supplies the front-end seed)")
		}
		it, info, err := j.From.Open(ctx)
		if err != nil {
			return Result{}, err
		}
		res, rerr := runOpened(ctx, j, p, it, info)
		if c, ok := it.(io.Closer); ok {
			if cerr := c.Close(); cerr != nil && rerr == nil {
				rerr = cerr
			}
		}
		return res, rerr
	}
	return liveJob(ctx, j, p)
}

// runOpened validates an opened source against the job and replays it.
func runOpened(ctx context.Context, j Job, p prefetch.Prefetcher, it trace.Iterator, info SourceInfo) (Result, error) {
	if info.Workload != "" && j.Workload.Name != "" && info.Workload != j.Workload.Name {
		return Result{}, fmt.Errorf("sim: job for %q replays a source recorded from %q (%s)",
			j.Workload.Name, info.Workload, info)
	}
	if need := j.Config.WarmupInstrs + j.Config.MeasureOffsetInstrs + j.Config.MeasureInstrs; info.Records > 0 && info.Records < need {
		return Result{}, fmt.Errorf("sim: %s supplies %d records, need %d (warmup+offset+measure)",
			info, info.Records, need)
	}
	return replayJob(ctx, j, p, it)
}

// liveJob executes the job by running the workload program.
func liveJob(ctx context.Context, j Job, p prefetch.Prefetcher) (Result, error) {
	prog := j.Program
	if prog == nil {
		var err error
		prog, err = workload.BuildProgram(j.Workload)
		if err != nil {
			return Result{}, err
		}
	}

	ex := workload.NewExecutor(prog)
	s := New(j.Config, p, j.Workload.Seed)

	// The cancellation wrapper does not perturb the instruction stream, so
	// completed runs are bit-identical whether or not a cancelable context
	// is attached.
	step := s.Step
	if ctx.Done() != nil {
		var n uint64
		step = func(r trace.Record) {
			s.Step(r)
			n++
			if n&cancelCheckMask == 0 {
				select {
				case <-ctx.Done():
					ex.Abort()
				default:
				}
			}
		}
	}

	if j.Config.WarmupInstrs > 0 {
		ex.Run(j.Config.WarmupInstrs, step)
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		s.resetStats()
	}
	var snap Result
	if j.Config.MeasureOffsetInstrs > 0 {
		// The offset runs with statistics accumulating (no reset): the
		// measured interval is reported as deltas against this snapshot,
		// so state and clock evolve exactly as in an offset-free run.
		ex.Run(j.Config.MeasureOffsetInstrs, step)
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		snap = s.result(j.Workload.Name)
	}
	s.obs = j.Observer
	ex.Run(j.Config.MeasureInstrs, step)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res := s.result(j.Workload.Name)
	if j.Config.MeasureOffsetInstrs > 0 {
		res = res.deltaFrom(snap)
	}
	return res, nil
}

// replayBatch is the record batch replayJob decodes per NextBatch call:
// large enough to amortize the batch call and the context poll, small
// enough that the buffer stays cache-warm across the Step loop.
const replayBatch = 4096

// replayJob drives a job from a record iterator instead of a live
// executor: records stream through the same Simulator in batches decoded
// into one preallocated buffer, so the replay loop performs no per-record
// interface calls and no allocation, and peak memory is the source's own
// buffer (one store chunk, one executor batch), never the trace length.
func replayJob(ctx context.Context, j Job, p prefetch.Prefetcher, src trace.Iterator) (Result, error) {
	s := New(j.Config, p, j.Workload.Seed)
	b := trace.Batched(src)
	buf := make([]trace.Record, replayBatch)
	feed := func(n uint64) error {
		for done := uint64(0); done < n; {
			want := n - done
			if want > replayBatch {
				want = replayBatch
			}
			k, err := b.NextBatch(buf[:want])
			for _, r := range buf[:k] {
				s.Step(r)
			}
			done += uint64(k)
			if err != nil {
				if errors.Is(err, io.EOF) {
					return fmt.Errorf("sim: trace source for %q exhausted after %d of %d records: %w",
						j.Workload.Name, done, n, io.ErrUnexpectedEOF)
				}
				return fmt.Errorf("sim: trace source for %q: %w", j.Workload.Name, err)
			}
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	if j.Config.WarmupInstrs > 0 {
		if err := feed(j.Config.WarmupInstrs); err != nil {
			return Result{}, err
		}
		s.resetStats()
	}
	var snap Result
	if j.Config.MeasureOffsetInstrs > 0 {
		// Replay the offset with statistics accumulating (no reset) and
		// snapshot; the measured interval is reported as deltas, so the
		// simulator's state and clock match an offset-free replay at
		// every record (see Config.MeasureOffsetInstrs).
		if err := feed(j.Config.MeasureOffsetInstrs); err != nil {
			return Result{}, err
		}
		snap = s.result(j.Workload.Name)
	}
	s.obs = j.Observer
	if err := feed(j.Config.MeasureInstrs); err != nil {
		return Result{}, err
	}
	res := s.result(j.Workload.Name)
	if j.Config.MeasureOffsetInstrs > 0 {
		res = res.deltaFrom(snap)
	}
	return res, nil
}
