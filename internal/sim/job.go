package sim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Job names one simulation: a workload, a configuration, and a factory
// producing a fresh prefetch engine. Jobs are the unit of work of the
// parallel execution engine (internal/runner): because every engine is
// stateful, a job carries a factory rather than an instance, and RunJob
// constructs everything it touches, so any number of jobs can run
// concurrently — goroutine safety by construction, with no package-level
// state anywhere in the simulation path.
type Job struct {
	// Config parameterizes the run (system, warmup, measured interval).
	Config Config
	// Workload is the simulated workload profile.
	Workload workload.Profile
	// Program optionally supplies a pre-built program image (e.g. from the
	// experiments environment cache). Programs are immutable after
	// construction, so one image may be shared by concurrent jobs. When
	// nil, RunJob builds the image from Workload.
	Program *workload.Program
	// Source, when non-nil, supplies the retire-order stream instead of
	// executing the workload program: warmup plus measured records are
	// pulled from the iterator (a trace.StoreReader replaying a sharded
	// store, a workload.Iterator, ...). The source must be private to the
	// job and must hold at least WarmupInstrs+MeasureInstrs records — a
	// source exhausted early is an error, never a silently short run. A
	// replayed run is byte-identical to a live one when the trace was
	// recorded with the same warmup/measure phase boundaries
	// (workload.Executor.Iterator(warmup, measure)).
	Source trace.Iterator
	// NewPrefetcher constructs the job's private prefetch engine.
	NewPrefetcher func() prefetch.Prefetcher
	// Observer, when non-nil, receives per-event callbacks during the
	// measured interval. It must be private to the job (observers are
	// invoked from the job's goroutine).
	Observer Observer
}

// cancelCheckMask throttles context polling to once per 64K retired
// instructions (~microseconds of real time), keeping the cancellation
// check off the per-instruction hot path.
const cancelCheckMask = 1<<16 - 1

// RunJob executes one simulation job: build (or adopt) the program image,
// construct a fresh prefetcher, warm up, measure. The context is polled
// periodically; on cancellation the run is aborted and ctx.Err() returned.
// RunJob is safe for concurrent use — it shares no mutable state with
// other runs beyond the read-only Program.
func RunJob(ctx context.Context, j Job) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if j.Config.MeasureInstrs == 0 {
		return Result{}, fmt.Errorf("sim: zero measurement interval")
	}
	if j.NewPrefetcher == nil {
		return Result{}, fmt.Errorf("sim: job for %q has no prefetcher factory", j.Workload.Name)
	}
	if j.Source != nil {
		return replayJob(ctx, j)
	}
	prog := j.Program
	if prog == nil {
		var err error
		prog, err = workload.BuildProgram(j.Workload)
		if err != nil {
			return Result{}, err
		}
	}

	ex := workload.NewExecutor(prog)
	s := New(j.Config, j.NewPrefetcher(), j.Workload.Seed)

	// The cancellation wrapper does not perturb the instruction stream, so
	// completed runs are bit-identical whether or not a cancelable context
	// is attached.
	step := s.Step
	if ctx.Done() != nil {
		var n uint64
		step = func(r trace.Record) {
			s.Step(r)
			n++
			if n&cancelCheckMask == 0 {
				select {
				case <-ctx.Done():
					ex.Abort()
				default:
				}
			}
		}
	}

	if j.Config.WarmupInstrs > 0 {
		ex.Run(j.Config.WarmupInstrs, step)
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		s.resetStats()
	}
	s.obs = j.Observer
	ex.Run(j.Config.MeasureInstrs, step)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return s.result(j.Workload.Name), nil
}

// replayJob drives a job from its Source iterator instead of a live
// executor: records stream through the same Simulator one at a time, so
// peak memory is the source's own buffer (one store chunk, one executor
// batch), never the trace length.
func replayJob(ctx context.Context, j Job) (Result, error) {
	s := New(j.Config, j.NewPrefetcher(), j.Workload.Seed)
	feed := func(n uint64) error {
		for i := uint64(0); i < n; i++ {
			r, err := j.Source.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return fmt.Errorf("sim: trace source for %q exhausted after %d of %d records: %w",
						j.Workload.Name, i, n, io.ErrUnexpectedEOF)
				}
				return fmt.Errorf("sim: trace source for %q: %w", j.Workload.Name, err)
			}
			s.Step(r)
			if i&cancelCheckMask == cancelCheckMask {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if j.Config.WarmupInstrs > 0 {
		if err := feed(j.Config.WarmupInstrs); err != nil {
			return Result{}, err
		}
		s.resetStats()
	}
	s.obs = j.Observer
	if err := feed(j.Config.MeasureInstrs); err != nil {
		return Result{}, err
	}
	return s.result(j.Workload.Name), nil
}
