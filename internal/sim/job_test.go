package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

func jobConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 200_000
	cfg.MeasureInstrs = 200_000
	return cfg
}

func TestRunJobMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	cfg := jobConfig()
	wl := workload.DSSQry2()

	serial, err := Run(cfg, wl, prefetch.NewNextLine(4))
	if err != nil {
		t.Fatal(err)
	}
	viaJob, err := RunJob(context.Background(), Job{
		Config:   cfg,
		Workload: wl,
		Engine:   prefetch.Spec{Name: "nextline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial != viaJob {
		t.Errorf("RunJob result differs from Run:\nRun:    %+v\nRunJob: %+v", serial, viaJob)
	}
}

func TestRunJobSharedProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	cfg := jobConfig()
	wl := workload.WebApache()
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	own, err := RunJob(context.Background(), Job{
		Config:   cfg,
		Workload: wl,
		Engine:   prefetch.Spec{Name: "none"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunJob(context.Background(), Job{
		Config:   cfg,
		Workload: wl,
		Program:  prog,
		Engine:   prefetch.Spec{Name: "none"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if own != shared {
		t.Errorf("pre-built program changes result:\nbuilt: %+v\nshared: %+v", own, shared)
	}
}

func TestRunJobValidation(t *testing.T) {
	wl := workload.OLTPDB2()
	if _, err := RunJob(context.Background(), Job{Config: Config{}, Workload: wl}); err == nil {
		t.Error("zero measurement interval accepted")
	}
	cfg := jobConfig()
	if _, err := RunJob(context.Background(), Job{Config: cfg, Workload: wl}); err == nil {
		t.Error("nil prefetcher factory accepted")
	}
}

func TestRunJobCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := jobConfig()
	_, err := RunJob(ctx, Job{
		Config:   cfg,
		Workload: workload.OLTPDB2(),
		Engine:   prefetch.Spec{Name: "none"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunJobCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	// Cancel from within the measured interval via an observer; the
	// cancellation poll fires within 64K instructions of the cancel.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := jobConfig()
	cfg.MeasureInstrs = 5_000_000
	fired := false
	_, err := RunJob(ctx, Job{
		Config:   cfg,
		Workload: workload.OLTPDB2(),
		Engine:   prefetch.Spec{Name: "none"},
		Observer: obsFunc(func() {
			if !fired {
				fired = true
				cancel()
			}
		}),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// obsFunc adapts a closure to the Observer interface.
type obsFunc func()

func (f obsFunc) OnCorrectFetch(_ isa.TrapLevel, _, _ bool) { f() }
