package sim

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runJSON runs a job and returns its result as canonical JSON.
func runJSON(t *testing.T, j Job) string {
	t.Helper()
	res, err := RunJob(context.Background(), j)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSourcePathsIdentical is the source-API acceptance bar: the same
// simulation driven (1) live with no source, (2) by a phase-less
// LiveSource, (3) by an explicit-phase LiveSource, (4) by a StoreSource
// over a recorded store, (5) by a whole-store SliceSource, and (6) by
// the deprecated pre-opened Source iterator must produce identical
// sim.Result JSON.
func TestSourcePathsIdentical(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	dir := filepath.Join(t.TempDir(), "store")
	recordStore(t, dir, wl, cfg, 1<<14)
	engine := prefetch.Spec{Name: "nextline"}
	total := cfg.WarmupInstrs + cfg.MeasureInstrs

	live := runJSON(t, Job{Config: cfg, Workload: wl, Engine: engine})

	variants := map[string]Job{
		"live-source":        {Config: cfg, Workload: wl, From: LiveSource(wl), Engine: engine},
		"live-source-phases": {Config: cfg, Workload: wl, From: LiveSource(wl, cfg.WarmupInstrs, cfg.MeasureInstrs), Engine: engine},
		"store-source":       {Config: cfg, Workload: wl, From: StoreSource(dir), Engine: engine},
		"slice-source":       {Config: cfg, Workload: wl, From: SliceSource(dir, trace.Window{Off: 0, Len: total}), Engine: engine},
	}
	for name, j := range variants {
		if got := runJSON(t, j); got != live {
			t.Errorf("%s differs from live:\nlive: %s\ngot:  %s", name, live, got)
		}
	}

	// Deprecated pre-opened iterator path.
	src, err := trace.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := runJSON(t, Job{Config: cfg, Workload: wl, Source: src, Engine: engine}); got != live {
		t.Errorf("deprecated Source iterator differs from live:\nlive: %s\ngot:  %s", live, got)
	}
}

// TestSliceSourceSubRange locks the slice-replay determinism contract at
// the simulator level: measuring window [off, off+len) through a
// SliceSource equals feeding the identical sub-range of a full-store
// read, for a window spanning several chunk boundaries.
func TestSliceSourceSubRange(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	dir := filepath.Join(t.TempDir(), "store")
	recordStore(t, dir, wl, cfg, 1<<13) // ~30 chunks

	w := trace.Window{Off: 50_000, Len: 120_000} // spans many 8K chunks
	wcfg := cfg
	wcfg.WarmupInstrs = 40_000
	wcfg.MeasureInstrs = 80_000 // warmup+measure == window length
	engine := prefetch.Spec{Name: "nextline"}

	viaSlice := runJSON(t, Job{Config: wcfg, Workload: wl, From: SliceSource(dir, w), Engine: engine})

	r, err := trace.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.ReadAll()
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	sub := full[w.Off:w.End()]
	viaMemory := runJSON(t, Job{Config: wcfg, Workload: wl, Source: sub.Iter(), Engine: engine})
	if viaSlice != viaMemory {
		t.Errorf("slice replay differs from in-memory sub-range:\nslice:  %s\nmemory: %s", viaSlice, viaMemory)
	}
}

// TestSourceValidation covers RunJob's up-front source checks: short
// windows, workload mismatches, out-of-range slices, and the From/Source
// conflict are hard errors before (or instead of) a short simulation.
func TestSourceValidation(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	dir := filepath.Join(t.TempDir(), "store")
	recordStore(t, dir, wl, cfg, 1<<14)
	engine := prefetch.Spec{Name: "none"}
	total := cfg.WarmupInstrs + cfg.MeasureInstrs

	// A slice shorter than warmup+measure fails up front with the record
	// budget in the message.
	_, err := RunJob(context.Background(), Job{
		Config: cfg, Workload: wl,
		From:   SliceSource(dir, trace.Window{Off: 0, Len: total / 2}),
		Engine: engine,
	})
	if err == nil || !strings.Contains(err.Error(), "need") {
		t.Errorf("short slice error = %v, want record-budget error", err)
	}

	// An out-of-range window is a hard open error.
	_, err = RunJob(context.Background(), Job{
		Config: cfg, Workload: wl,
		From:   SliceSource(dir, trace.Window{Off: total, Len: 1}),
		Engine: engine,
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range slice error = %v, want out-of-range error", err)
	}

	// A store recorded from another workload cannot be replayed under
	// this job's profile.
	other := workload.WebApache()
	_, err = RunJob(context.Background(), Job{
		Config: cfg, Workload: other,
		From:   StoreSource(dir),
		Engine: engine,
	})
	if err == nil || !strings.Contains(err.Error(), "recorded from") {
		t.Errorf("workload-mismatch error = %v", err)
	}

	// From and the deprecated Source iterator are mutually exclusive.
	_, err = RunJob(context.Background(), Job{
		Config: cfg, Workload: wl,
		From:   StoreSource(dir),
		Source: (trace.Stream{}).Iter(),
		Engine: engine,
	})
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Errorf("From+Source conflict error = %v", err)
	}

	// A live source for a different workload than the job's is rejected.
	_, err = RunJob(context.Background(), Job{
		Config: cfg, Workload: other,
		From:   LiveSource(wl),
		Engine: engine,
	})
	if err == nil {
		t.Error("live-source workload mismatch accepted")
	}
}

// TestLiveSourceOpen covers LiveSource's direct Open contract: explicit
// phases stream the executor's records; no phases is an error.
func TestLiveSourceOpen(t *testing.T) {
	wl := workload.OLTPDB2()
	if _, _, err := LiveSource(wl).Open(context.Background()); err == nil {
		t.Error("phase-less LiveSource.Open accepted")
	}
	it, info, err := LiveSource(wl, 1000, 500).Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "live" || info.Workload != wl.Name || info.Records != 1500 {
		t.Errorf("info = %+v", info)
	}
	s, err := trace.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1500 {
		t.Errorf("live source yielded %d records, want 1500", len(s))
	}
	if c, ok := it.(io.Closer); ok {
		c.Close()
	}

	// The emitted stream matches the executor's phase-boundary pattern.
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.NewIterator(prog, 1000, 500)
	defer ref.Close()
	want, err := trace.Collect(ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, s[i], want[i])
		}
	}
}

// TestSourceEOFStillHardError keeps the short-source contract on the new
// path: an OpenerSource around a short iterator (no record metadata to
// pre-validate) still fails with io.ErrUnexpectedEOF mid-run.
func TestSourceEOFStillHardError(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	short := make(trace.Stream, 1000)
	_, err := RunJob(context.Background(), Job{
		Config:   cfg,
		Workload: wl,
		From:     OpenerSource(func() (trace.Iterator, error) { return short.Iter(), nil }),
		Engine:   prefetch.Spec{Name: "none"},
	})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short opener source error = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestSourceWorkloadAdoption locks the profile-resolution rules: a job
// naming no workload adopts a live source's full profile (front-end
// seed included, phased or not), and replay sources — which carry no
// profile — are a hard error without one, never a silent seed-0 run.
func TestSourceWorkloadAdoption(t *testing.T) {
	wl := workload.OLTPDB2()
	cfg := replayConfig()
	engine := prefetch.Spec{Name: "nextline"}

	named := runJSON(t, Job{Config: cfg, Workload: wl, Engine: engine})
	for name, src := range map[string]Source{
		"phaseless": LiveSource(wl),
		"phased":    LiveSource(wl, cfg.WarmupInstrs, cfg.MeasureInstrs),
	} {
		got := runJSON(t, Job{Config: cfg, From: src, Engine: engine})
		if got != named {
			t.Errorf("%s live source without Job.Workload differs from the named run:\nnamed: %s\ngot:   %s", name, named, got)
		}
	}

	dir := filepath.Join(t.TempDir(), "store")
	recordStore(t, dir, wl, cfg, 1<<14)
	_, err := RunJob(context.Background(), Job{Config: cfg, From: StoreSource(dir), Engine: engine})
	if err == nil || !strings.Contains(err.Error(), "workload") {
		t.Errorf("replay without a workload profile = %v, want a hard error", err)
	}
}
