// Package isa defines the address arithmetic shared by every component of
// the simulator: instruction addresses, instruction-block addresses, and
// spatial-region offset computations.
//
// The model follows the paper's SPARC-v9-like configuration: fixed 4-byte
// instructions packed into 64-byte instruction cache blocks. All other
// packages operate on these types rather than raw integers so that the
// block geometry is defined exactly once.
package isa

import "fmt"

// Geometry of the instruction stream. These mirror Table I of the paper
// (64 B cache blocks) and the SPARC fixed 4 B instruction encoding.
const (
	// InstrBytes is the size of one instruction in bytes.
	InstrBytes = 4
	// BlockBytes is the size of one instruction cache block in bytes.
	BlockBytes = 64
	// InstrsPerBlock is the number of instructions in one cache block.
	InstrsPerBlock = BlockBytes / InstrBytes
	// BlockShift is log2(BlockBytes), used to convert PCs to block numbers.
	BlockShift = 6
)

// Addr is a virtual instruction address (a PC).
type Addr uint64

// Block is an instruction-block number: the PC right-shifted by BlockShift.
// Two PCs in the same 64-byte block map to the same Block.
type Block uint64

// BlockOf returns the instruction block containing the address.
func BlockOf(pc Addr) Block { return Block(pc >> BlockShift) }

// BlockBase returns the lowest PC inside the block.
func (b Block) BlockBase() Addr { return Addr(b) << BlockShift }

// Addr returns the base address of the block (alias of BlockBase for
// call sites that read better with a short name).
func (b Block) Addr() Addr { return b.BlockBase() }

// Add returns the block delta positions after b (delta may be negative).
func (b Block) Add(delta int) Block { return Block(int64(b) + int64(delta)) }

// Distance returns the signed distance in blocks from b to other.
func (b Block) Distance(other Block) int { return int(int64(other) - int64(b)) }

// Next returns the block immediately following b.
func (b Block) Next() Block { return b + 1 }

// String renders the block as a hex block number.
func (b Block) String() string { return fmt.Sprintf("blk:%#x", uint64(b)) }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// Plus returns the address n instructions after a.
func (a Addr) Plus(n int) Addr { return Addr(int64(a) + int64(n*InstrBytes)) }

// AlignToInstr clears the low bits so the address is instruction aligned.
func (a Addr) AlignToInstr() Addr { return a &^ (InstrBytes - 1) }

// SameBlock reports whether two addresses fall in the same instruction block.
func SameBlock(a, b Addr) bool { return BlockOf(a) == BlockOf(b) }

// TrapLevel identifies the processor trap level of an instruction.
// TL0 is ordinary application/OS execution; TL1 is hardware trap/interrupt
// handler execution. The paper records separate temporal streams per level
// (the "RetireSep" configuration).
type TrapLevel uint8

const (
	// TL0 is normal execution.
	TL0 TrapLevel = 0
	// TL1 is hardware interrupt / trap handler execution.
	TL1 TrapLevel = 1
	// NumTrapLevels is the number of modeled trap levels.
	NumTrapLevels = 2
)

// String names the trap level like the paper's figures ("TL0", "TL1").
func (t TrapLevel) String() string {
	switch t {
	case TL0:
		return "TL0"
	case TL1:
		return "TL1"
	default:
		return fmt.Sprintf("TL%d", uint8(t))
	}
}
