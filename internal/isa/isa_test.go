package isa

import (
	"testing"
	"testing/quick"
)

func TestBlockOf(t *testing.T) {
	cases := []struct {
		pc   Addr
		want Block
	}{
		{0x0, 0},
		{0x3c, 0},
		{0x40, 1},
		{0x7f, 1},
		{0x80, 2},
		{0x10000, 0x400},
		{0xffffffffffffffc0, 0x3ffffffffffffff},
	}
	for _, c := range cases {
		if got := BlockOf(c.pc); got != c.want {
			t.Errorf("BlockOf(%v) = %v, want %v", c.pc, got, c.want)
		}
	}
}

func TestBlockBaseRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		b := Block(raw & 0x3ffffffffffffff)
		return BlockOf(b.BlockBase()) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockBaseIsLowestAddrInBlock(t *testing.T) {
	f := func(raw uint64) bool {
		pc := Addr(raw)
		base := BlockOf(pc).BlockBase()
		return base <= pc && pc < base+BlockBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAddDistance(t *testing.T) {
	b := Block(100)
	if got := b.Add(5); got != Block(105) {
		t.Errorf("Add(5) = %v", got)
	}
	if got := b.Add(-3); got != Block(97) {
		t.Errorf("Add(-3) = %v", got)
	}
	if got := b.Distance(Block(110)); got != 10 {
		t.Errorf("Distance = %d", got)
	}
	if got := b.Distance(Block(90)); got != -10 {
		t.Errorf("Distance = %d", got)
	}
	if got := b.Next(); got != Block(101) {
		t.Errorf("Next = %v", got)
	}
}

func TestAddDistanceInverse(t *testing.T) {
	f := func(raw uint64, delta int16) bool {
		b := Block(raw & 0xffffffff)
		return b.Distance(b.Add(int(delta))) == int(delta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrPlus(t *testing.T) {
	a := Addr(0x1000)
	if got := a.Plus(1); got != 0x1004 {
		t.Errorf("Plus(1) = %v", got)
	}
	if got := a.Plus(16); got != 0x1040 {
		t.Errorf("Plus(16) = %v", got)
	}
	if BlockOf(a.Plus(16)) != BlockOf(a)+1 {
		t.Error("16 instructions should advance exactly one block")
	}
}

func TestAlignToInstr(t *testing.T) {
	for raw := Addr(0x1000); raw < 0x1008; raw++ {
		got := raw.AlignToInstr()
		if got%InstrBytes != 0 {
			t.Errorf("AlignToInstr(%v) = %v not aligned", raw, got)
		}
		if got > raw || raw-got >= InstrBytes {
			t.Errorf("AlignToInstr(%v) = %v out of range", raw, got)
		}
	}
}

func TestSameBlock(t *testing.T) {
	if !SameBlock(0x40, 0x7c) {
		t.Error("0x40 and 0x7c share a block")
	}
	if SameBlock(0x3c, 0x40) {
		t.Error("0x3c and 0x40 are in different blocks")
	}
}

func TestGeometryConstants(t *testing.T) {
	if InstrsPerBlock != 16 {
		t.Errorf("InstrsPerBlock = %d, want 16", InstrsPerBlock)
	}
	if 1<<BlockShift != BlockBytes {
		t.Errorf("BlockShift inconsistent with BlockBytes")
	}
}

func TestTrapLevelString(t *testing.T) {
	if TL0.String() != "TL0" || TL1.String() != "TL1" {
		t.Errorf("unexpected trap level names: %s %s", TL0, TL1)
	}
	if TrapLevel(3).String() != "TL3" {
		t.Errorf("unexpected name for TL3: %s", TrapLevel(3))
	}
}

func TestBlockString(t *testing.T) {
	if Block(0x10).String() != "blk:0x10" {
		t.Errorf("Block.String = %s", Block(0x10))
	}
	if Addr(0x40).String() != "0x40" {
		t.Errorf("Addr.String = %s", Addr(0x40))
	}
}
