package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.GShareEntries = 1000 // not pow2
	if err := bad.Validate(); err == nil {
		t.Error("non-pow2 gshare accepted")
	}
	bad = DefaultConfig()
	bad.RASDepth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero RAS depth accepted")
	}
	bad = DefaultConfig()
	bad.HistoryBits = 40
	if err := bad.Validate(); err == nil {
		t.Error("oversized history accepted")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter should saturate at 3, got %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter should saturate at 0, got %d", c)
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := isa.Addr(0x1000)
	for i := 0; i < 8; i++ {
		p.UpdateCond(pc, true)
	}
	if !p.PredictCond(pc) {
		t.Error("predictor should learn always-taken branch")
	}
	if rate := p.Stats().MispredictRate(); rate > 0.5 {
		t.Errorf("mispredict rate %f too high for trivial branch", rate)
	}
}

func TestLearnsAlwaysNotTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := isa.Addr(0x2000)
	for i := 0; i < 8; i++ {
		p.UpdateCond(pc, false)
	}
	if p.PredictCond(pc) {
		t.Error("predictor should learn never-taken branch")
	}
}

func TestLearnsAlternatingViaGshare(t *testing.T) {
	// A strictly alternating branch is predictable with global history;
	// after warmup the hybrid should do much better than 50%.
	p := New(DefaultConfig())
	pc := isa.Addr(0x3000)
	taken := false
	for i := 0; i < 2000; i++ {
		p.UpdateCond(pc, taken)
		taken = !taken
	}
	p.ResetStats()
	for i := 0; i < 2000; i++ {
		p.UpdateCond(pc, taken)
		taken = !taken
	}
	if rate := p.Stats().MispredictRate(); rate > 0.10 {
		t.Errorf("alternating branch mispredict rate = %f, want < 0.10", rate)
	}
}

func TestRandomBranchIsHard(t *testing.T) {
	// A data-dependent 50/50 branch cannot be predicted: rate should be
	// roughly 0.5, and certainly above 0.3 — this is the instability the
	// paper blames for wrong-path noise.
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	pc := isa.Addr(0x4000)
	for i := 0; i < 5000; i++ {
		p.UpdateCond(pc, rng.Intn(2) == 0)
	}
	if rate := p.Stats().MispredictRate(); rate < 0.3 {
		t.Errorf("random branch mispredict rate = %f, suspiciously low", rate)
	}
}

func TestUpdateReturnsMispredict(t *testing.T) {
	p := New(DefaultConfig())
	pc := isa.Addr(0x5000)
	for i := 0; i < 8; i++ {
		p.UpdateCond(pc, true)
	}
	if mis := p.UpdateCond(pc, true); mis {
		t.Error("well-trained taken branch should not mispredict")
	}
	if mis := p.UpdateCond(pc, false); !mis {
		t.Error("surprise direction should mispredict")
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	pc, target := isa.Addr(0x100), isa.Addr(0x9000)
	if _, ok := p.BTBLookup(pc); ok {
		t.Error("cold BTB should miss")
	}
	p.BTBUpdate(pc, target)
	got, ok := p.BTBLookup(pc)
	if !ok || got != target {
		t.Errorf("BTBLookup = %v,%v want %v,true", got, ok, target)
	}
	s := p.Stats()
	if s.BTBLookups != 2 || s.BTBHits != 1 {
		t.Errorf("BTB stats = %+v", s)
	}
}

func TestBTBConflict(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 16
	p := New(cfg)
	a := isa.Addr(0x100)
	b := a + isa.Addr(16*4) // same index, different tag
	p.BTBUpdate(a, 0x1111)
	p.BTBUpdate(b, 0x2222)
	if _, ok := p.BTBLookup(a); ok {
		t.Error("conflicting entry should have evicted a")
	}
	if got, ok := p.BTBLookup(b); !ok || got != 0x2222 {
		t.Error("latest entry should hit")
	}
}

func TestRASLIFO(t *testing.T) {
	p := New(DefaultConfig())
	p.RASPush(0x10)
	p.RASPush(0x20)
	p.RASPush(0x30)
	want := []isa.Addr{0x30, 0x20, 0x10}
	for _, w := range want {
		got, ok := p.RASPop()
		if !ok || got != w {
			t.Errorf("RASPop = %v,%v want %v", got, ok, w)
		}
	}
	if _, ok := p.RASPop(); ok {
		t.Error("empty RAS should report not-ok")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASDepth = 2
	p := New(cfg)
	p.RASPush(0x10)
	p.RASPush(0x20)
	p.RASPush(0x30) // drops 0x10
	if p.RASDepthNow() != 2 {
		t.Fatalf("depth = %d, want 2", p.RASDepthNow())
	}
	if got, _ := p.RASPop(); got != 0x30 {
		t.Errorf("top = %v, want 0x30", got)
	}
	if got, _ := p.RASPop(); got != 0x20 {
		t.Errorf("next = %v, want 0x20", got)
	}
	if _, ok := p.RASPop(); ok {
		t.Error("0x10 should have been dropped")
	}
}

func TestRASPushPopProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		cfg := DefaultConfig()
		p := New(cfg)
		n := len(addrs)
		if n > cfg.RASDepth {
			n = cfg.RASDepth
		}
		for _, a := range addrs[:n] {
			p.RASPush(isa.Addr(a))
		}
		for i := n - 1; i >= 0; i-- {
			got, ok := p.RASPop()
			if !ok || got != isa.Addr(addrs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMispredictRateZeroDivision(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Error("zero branches should give rate 0")
	}
}

func TestResetStats(t *testing.T) {
	p := New(DefaultConfig())
	p.UpdateCond(0x40, true)
	p.ResetStats()
	if p.Stats().CondBranches != 0 {
		t.Error("ResetStats should zero counters")
	}
}
