// Package bpred implements the hybrid branch predictor from the paper's
// Table I: a 16K-entry gshare and a 16K-entry bimodal predictor combined by
// a chooser table, plus a branch target buffer and a return address stack.
//
// In this repository the predictor's role is to produce realistic
// wrong-path noise: the front-end model (internal/frontend) consults it for
// every conditional branch of the retire stream, and a misprediction makes
// the fetch engine run down the wrong path for a data-dependent number of
// blocks before the pipeline squashes it — the exact effect the paper shows
// polluting access-stream history (Figure 1, right).
package bpred

import (
	"fmt"

	"repro/internal/isa"
)

// Config sizes the predictor tables.
type Config struct {
	// GShareEntries is the number of 2-bit gshare counters.
	GShareEntries int
	// BimodalEntries is the number of 2-bit bimodal counters.
	BimodalEntries int
	// ChooserEntries is the number of 2-bit chooser counters.
	ChooserEntries int
	// BTBEntries is the number of branch-target-buffer entries.
	BTBEntries int
	// RASDepth is the return-address-stack depth.
	RASDepth int
	// HistoryBits is the global history length used by gshare.
	HistoryBits int
}

// DefaultConfig mirrors Table I: 16K gshare and 16K bimodal.
func DefaultConfig() Config {
	return Config{
		GShareEntries:  16 << 10,
		BimodalEntries: 16 << 10,
		ChooserEntries: 16 << 10,
		BTBEntries:     4 << 10,
		RASDepth:       32,
		HistoryBits:    14,
	}
}

// Validate checks table sizes are positive powers of two where indexed.
func (c Config) Validate() error {
	for _, e := range []struct {
		name string
		n    int
	}{
		{"GShareEntries", c.GShareEntries},
		{"BimodalEntries", c.BimodalEntries},
		{"ChooserEntries", c.ChooserEntries},
		{"BTBEntries", c.BTBEntries},
	} {
		if e.n <= 0 || e.n&(e.n-1) != 0 {
			return fmt.Errorf("bpred: %s = %d must be a positive power of two", e.name, e.n)
		}
	}
	if c.RASDepth <= 0 {
		return fmt.Errorf("bpred: RASDepth = %d must be positive", c.RASDepth)
	}
	if c.HistoryBits <= 0 || c.HistoryBits > 30 {
		return fmt.Errorf("bpred: HistoryBits = %d out of range", c.HistoryBits)
	}
	return nil
}

// counter is a 2-bit saturating counter; values 0..1 predict not-taken,
// 2..3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Stats counts predictor events.
type Stats struct {
	CondBranches   uint64
	Mispredictions uint64
	BTBLookups     uint64
	BTBHits        uint64
	RASPushes      uint64
	RASPops        uint64
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredictions) / float64(s.CondBranches)
}

// btbEntry maps a branch PC to its most recent taken target.
type btbEntry struct {
	tag    uint64
	target isa.Addr
	valid  bool
}

// Predictor is the hybrid gshare/bimodal predictor with BTB and RAS.
type Predictor struct {
	cfg      Config
	gshare   []counter
	bimodal  []counter
	chooser  []counter // ≥2 selects gshare
	btb      []btbEntry
	ras      []isa.Addr
	history  uint64
	histMask uint64
	stats    Stats
}

// New builds a predictor with counters initialized weakly-not-taken and the
// chooser unbiased. It panics on invalid configuration.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:      cfg,
		gshare:   make([]counter, cfg.GShareEntries),
		bimodal:  make([]counter, cfg.BimodalEntries),
		chooser:  make([]counter, cfg.ChooserEntries),
		btb:      make([]btbEntry, cfg.BTBEntries),
		ras:      make([]isa.Addr, 0, cfg.RASDepth),
		histMask: (1 << uint(cfg.HistoryBits)) - 1,
	}
	for i := range p.chooser {
		p.chooser[i] = 2 // weakly prefer gshare
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not taken
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	return p
}

// Stats returns a copy of the event counters.
func (p *Predictor) Stats() Stats { return p.stats }

// ResetStats zeroes the event counters.
func (p *Predictor) ResetStats() { p.stats = Stats{} }

func (p *Predictor) gshareIndex(pc isa.Addr) int {
	h := (uint64(pc) >> 2) ^ (p.history & p.histMask)
	return int(h % uint64(p.cfg.GShareEntries))
}

func (p *Predictor) bimodalIndex(pc isa.Addr) int {
	return int((uint64(pc) >> 2) % uint64(p.cfg.BimodalEntries))
}

func (p *Predictor) chooserIndex(pc isa.Addr) int {
	return int((uint64(pc) >> 2) % uint64(p.cfg.ChooserEntries))
}

// PredictCond predicts the direction of a conditional branch at pc.
func (p *Predictor) PredictCond(pc isa.Addr) bool {
	if p.chooser[p.chooserIndex(pc)].taken() {
		return p.gshare[p.gshareIndex(pc)].taken()
	}
	return p.bimodal[p.bimodalIndex(pc)].taken()
}

// UpdateCond trains the predictor with the resolved direction of the branch
// at pc and returns whether the earlier prediction was wrong. It updates
// the component predictors, the chooser (toward the component that was
// right when they disagreed), and the global history register.
func (p *Predictor) UpdateCond(pc isa.Addr, taken bool) (mispredicted bool) {
	gi, bi, ci := p.gshareIndex(pc), p.bimodalIndex(pc), p.chooserIndex(pc)
	gPred := p.gshare[gi].taken()
	bPred := p.bimodal[bi].taken()
	useG := p.chooser[ci].taken()
	pred := bPred
	if useG {
		pred = gPred
	}
	mispredicted = pred != taken

	p.stats.CondBranches++
	if mispredicted {
		p.stats.Mispredictions++
	}
	if gPred != bPred {
		p.chooser[ci] = p.chooser[ci].update(gPred == taken)
	}
	p.gshare[gi] = p.gshare[gi].update(taken)
	p.bimodal[bi] = p.bimodal[bi].update(taken)
	p.history = ((p.history << 1) | boolBit(taken)) & p.histMask
	return mispredicted
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTBLookup returns the predicted target for a taken control transfer at pc.
func (p *Predictor) BTBLookup(pc isa.Addr) (isa.Addr, bool) {
	p.stats.BTBLookups++
	e := &p.btb[p.btbIndex(pc)]
	if e.valid && e.tag == uint64(pc) {
		p.stats.BTBHits++
		return e.target, true
	}
	return 0, false
}

// BTBUpdate records the resolved target of the control transfer at pc.
func (p *Predictor) BTBUpdate(pc, target isa.Addr) {
	e := &p.btb[p.btbIndex(pc)]
	e.tag = uint64(pc)
	e.target = target
	e.valid = true
}

func (p *Predictor) btbIndex(pc isa.Addr) int {
	return int((uint64(pc) >> 2) % uint64(p.cfg.BTBEntries))
}

// RASPush records a call's return address.
func (p *Predictor) RASPush(ret isa.Addr) {
	p.stats.RASPushes++
	if len(p.ras) == p.cfg.RASDepth {
		// Overflow discards the oldest entry, like a hardware circular RAS.
		copy(p.ras, p.ras[1:])
		p.ras[len(p.ras)-1] = ret
		return
	}
	p.ras = append(p.ras, ret)
}

// RASPop predicts a return target; ok is false when the stack is empty.
func (p *Predictor) RASPop() (isa.Addr, bool) {
	p.stats.RASPops++
	if len(p.ras) == 0 {
		return 0, false
	}
	top := p.ras[len(p.ras)-1]
	p.ras = p.ras[:len(p.ras)-1]
	return top, true
}

// RASDepthNow returns the current stack depth (observability for tests).
func (p *Predictor) RASDepthNow() int { return len(p.ras) }
