package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// jobsDir is the subdirectory of a run directory holding per-job results.
const jobsDir = "jobs"

// JobResult is the schema-versioned persisted form of one raw per-job
// simulation result — one grid cell of a design-space sweep (or one job of
// a figure's variant table), stored as results/<run-id>/jobs/<key>.json so
// sweeps finer than one artifact can be diffed across commits.
type JobResult struct {
	// SchemaVersion stamps the schema the result was written under (shared
	// with artifacts; see SchemaVersion).
	SchemaVersion int `json:"schema_version"`
	// Key is the job's unique identity within the run; it doubles as the
	// file stem, so it is restricted to ValidJobKey.
	Key string `json:"key"`
	// Label is the human-readable job label ("fig10/OLTP DB2/PIF").
	Label string `json:"label,omitempty"`
	// Point locates the job on its sweep's axes (axis name -> value key).
	Point map[string]string `json:"point,omitempty"`
	// Engine records the resolved prefetch-engine spec the job ran with:
	// the registry name and every effective parameter (defaults applied,
	// budget derivations resolved), so stored runs compare like-for-like
	// even when cells derive parameters from budgets. Additive metadata:
	// DiffJobResults compares Data only.
	Engine *EngineRef `json:"engine,omitempty"`
	// Data is the raw sim.Result in compact canonical JSON. DiffJobResults
	// flattens its numeric leaves into per-job metric paths.
	Data json.RawMessage `json:"data,omitempty"`
}

// EngineRef is the persisted form of a resolved engine spec. It mirrors
// prefetch.Spec without importing it (report stays a leaf package);
// params serialize in canonical (sorted-key) order.
type EngineRef struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
}

// ValidJobKey reports whether key is usable as a per-job result key (and
// therefore a file stem under jobs/): non-empty, at most 160 bytes,
// alphanumeric start, and only alphanumerics, '.', '_', '-' after. Keys
// are longer than artifact IDs because they concatenate a sweep name with
// one coordinate per axis.
func ValidJobKey(key string) bool {
	if key == "" || len(key) > 160 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// NewJobResult builds a schema-stamped per-job result. data is the job's
// raw simulation outcome (any JSON-marshalable value); it is canonicalized
// to compact JSON so identical results are byte-identical regardless of
// how they were produced.
func NewJobResult(key, label string, point map[string]string, data any) (JobResult, error) {
	if !ValidJobKey(key) {
		return JobResult{}, fmt.Errorf("report: invalid job key %q", key)
	}
	j := JobResult{SchemaVersion: SchemaVersion, Key: key, Label: label}
	if len(point) > 0 {
		j.Point = make(map[string]string, len(point))
		for k, v := range point {
			j.Point[k] = v
		}
	}
	if data != nil {
		b, err := encode(data, false)
		if err != nil {
			return JobResult{}, fmt.Errorf("report: marshal job %s data: %w", key, err)
		}
		c, err := compactJSON(b)
		if err != nil {
			return JobResult{}, fmt.Errorf("report: canonicalize job %s data: %w", key, err)
		}
		j.Data = c
	}
	return j, nil
}

// JobsDir returns the per-job results directory inside a run directory.
func JobsDir(runDir string) string { return filepath.Join(runDir, jobsDir) }

// SaveJobResults writes one <key>.json per job under <runDir>/jobs/,
// replacing the directory wholesale: unlike artifacts, per-job results
// have no manifest in run.json, so LoadJobResults reads whatever files
// are present — stale jobs from an earlier run stored in the same
// directory must not survive an overwrite, or a later diff compares
// outdated cells as current. Duplicate keys are an error — two jobs
// colliding on one file would silently drop a grid cell. Saving an empty
// slice clears any previous jobs directory and writes nothing.
func SaveJobResults(runDir string, jobs []JobResult) error {
	dir := JobsDir(runDir)
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if len(jobs) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if !ValidJobKey(j.Key) {
			return fmt.Errorf("report: invalid job key %q", j.Key)
		}
		if seen[j.Key] {
			return fmt.Errorf("report: duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
		if err := WriteJobResult(filepath.Join(dir, j.Key+".json"), j); err != nil {
			return err
		}
	}
	return nil
}

// WriteJobResult atomically persists one per-job result to path
// (temp-file + rename in the destination directory, like WriteArtifact).
// It stamps the current schema version. The remote coordinator uses this
// to stream results into <run>/jobs/ as workers complete them, so a
// crashed coordinator never leaves a truncated job file behind.
func WriteJobResult(path string, j JobResult) error {
	if !ValidJobKey(j.Key) {
		return fmt.Errorf("report: invalid job key %q", j.Key)
	}
	j.SchemaVersion = SchemaVersion
	b, err := encode(j, true)
	if err != nil {
		return fmt.Errorf("report: marshal job %s: %w", j.Key, err)
	}
	return writeFileAtomic(path, b)
}

// LoadJobResults reads every per-job result under <runDir>/jobs/, sorted
// by key. A run without a jobs directory yields an empty slice — per-job
// persistence is optional, and diffing such a run is not an error.
func LoadJobResults(runDir string) ([]JobResult, error) {
	dir := JobsDir(runDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var jobs []JobResult
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var j JobResult
		if err := json.Unmarshal(b, &j); err != nil {
			return nil, fmt.Errorf("report: parse %s: %w", path, err)
		}
		if j.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("report: %s has schema version %d, want %d", path, j.SchemaVersion, SchemaVersion)
		}
		if !ValidJobKey(j.Key) {
			return nil, fmt.Errorf("report: %s has invalid job key %q", path, j.Key)
		}
		if want := strings.TrimSuffix(e.Name(), ".json"); j.Key != want {
			return nil, fmt.Errorf("report: %s declares key %q", path, j.Key)
		}
		if j.Data != nil {
			c, err := compactJSON(j.Data)
			if err != nil {
				return nil, fmt.Errorf("report: %s data: %w", path, err)
			}
			j.Data = c
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Key < jobs[b].Key })
	return jobs, nil
}

// DiffJobResults compares two per-job result sets at per-job granularity:
// jobs are matched by key, each matched pair's raw simulation data is
// flattened into metric paths rooted at "jobs/<key>", and jobs present on
// one side only are reported like missing artifacts. Tolerance prefixes
// compose the same way ("jobs/sweep-history" governs a whole sweep,
// "jobs/sweep-history.workload-oltp-xl_engine-pif_budget-512kb.uipc" one
// metric of one grid cell).
func DiffJobResults(a, b []JobResult, tol Tolerances) Diff {
	conv := func(jobs []JobResult) []Artifact {
		arts := make([]Artifact, 0, len(jobs))
		for _, j := range jobs {
			arts = append(arts, Artifact{ID: "jobs/" + j.Key, Data: j.Data})
		}
		return arts
	}
	return DiffArtifacts(conv(a), conv(b), tol)
}

// Merge appends the other diff's findings to d (used to combine the
// artifact-level and per-job comparisons of one run pair).
func (d *Diff) Merge(o Diff) {
	d.OnlyInA = append(d.OnlyInA, o.OnlyInA...)
	d.OnlyInB = append(d.OnlyInB, o.OnlyInB...)
	d.Metrics = append(d.Metrics, o.Metrics...)
	d.Mismatches = append(d.Mismatches, o.Mismatches...)
}
