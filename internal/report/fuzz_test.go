package report

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"unicode/utf8"
)

// FuzzArtifactRoundTrip drives arbitrary IDs, titles, texts, and JSON data
// payloads through the full store path and asserts Load(Save(x)) == x:
// whatever NewArtifact accepts must survive the write/read cycle with
// every field intact and the canonical data bytes unchanged. Inputs
// NewArtifact rejects (invalid IDs, invalid JSON) are skipped — rejection
// is the contract there.
func FuzzArtifactRoundTrip(f *testing.F) {
	f.Add("fig2", "Recording-point prediction coverage", "table\n", `{"workloads":["OLTP DB2"],"miss":[0.85]}`)
	f.Add("table1", "System parameters", "Table I\n", `{"system":{"Cores":16,"ClockGHz":2},"workloads":[]}`)
	f.Add("fig8", "panels", "", `{"left":{"offsets":[-4,-1,1,12]},"right":{"tl0":[[0.5,1]]}}`)
	f.Add("a", "", "", `null`)
	f.Add("x-1_2.z", "unicode ✓ <html> & escape", "line1\nline2\t", `{"s":"<&> ","n":[1e-9,-0,1.7976931348623157e308]}`)
	f.Add("deep", "t", "x", `[[[[{"a":[{"b":0.1}]}]]]]`)

	f.Fuzz(func(t *testing.T, id, title, text, data string) {
		// encoding/json replaces invalid UTF-8 with U+FFFD on write, so
		// only valid strings can round-trip exactly; that lossiness is
		// encoding/json's documented behavior, not the store's.
		if !utf8.ValidString(title) || !utf8.ValidString(text) {
			t.Skip()
		}
		art, err := NewArtifact(id, title, text, json.RawMessage(data))
		if err != nil {
			t.Skip()
		}
		dir := t.TempDir()
		if err := Save(dir, Run{ID: "fuzz"}, []Artifact{art}); err != nil {
			t.Fatalf("Save(%q): %v", id, err)
		}
		run, arts, err := Load(dir)
		if err != nil {
			t.Fatalf("Load after Save(%q): %v", id, err)
		}
		if run.SchemaVersion != SchemaVersion || len(run.Artifacts) != 1 || run.Artifacts[0] != id {
			t.Fatalf("run metadata mangled: %+v", run)
		}
		if len(arts) != 1 {
			t.Fatalf("got %d artifacts", len(arts))
		}
		got := arts[0]
		if got.SchemaVersion != art.SchemaVersion || got.ID != art.ID || got.Title != art.Title || got.Text != art.Text {
			t.Fatalf("fields not round-tripped:\nsaved:  %+v\nloaded: %+v", art, got)
		}
		if !bytes.Equal(got.Data, art.Data) {
			t.Fatalf("data not round-tripped:\nsaved:  %s\nloaded: %s", art.Data, got.Data)
		}
		// A round-tripped artifact must also be diff-clean against itself.
		if d := DiffArtifacts([]Artifact{art}, []Artifact{got}, Exact()); !d.Clean() {
			t.Fatalf("round-tripped artifact diffs against itself:\n%s", d.Render())
		}
		// ReadArtifact on the stored file must agree with Load.
		direct, err := ReadArtifact(filepath.Join(dir, id+".json"))
		if err != nil {
			t.Fatalf("ReadArtifact: %v", err)
		}
		if !bytes.Equal(direct.Data, art.Data) {
			t.Fatalf("ReadArtifact data differs from Load data")
		}
	})
}
