// Package report defines the versioned JSON schema for experiment results
// and the on-disk results store that makes evaluation runs diffable across
// commits.
//
// An Artifact is the serializable form of one regenerated table or figure:
// the rendered text plus the driver's typed result marshaled with stable
// field names. A Run is the metadata sidecar written alongside the
// artifacts of one evaluation pass (options, suite, timings). A Store
// addresses runs as results/<run-id>/<artifact>.json; Diff compares two
// stored runs metric by metric under per-metric absolute/relative
// tolerances (see diff.go).
//
// Schema evolution: SchemaVersion is bumped on any change that is not
// strictly additive (renaming or re-typing a field, changing metric
// semantics). Loaders reject artifacts written under a different major
// version rather than guessing; additive fields keep the version. See
// DESIGN.md §6.
package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// SchemaVersion is the current version of the artifact and run schemas.
// Bump on any non-additive change; Load rejects mismatched versions.
const SchemaVersion = 1

// Artifact is the serializable form of one experiment artifact.
type Artifact struct {
	// SchemaVersion stamps the schema the artifact was written under.
	SchemaVersion int `json:"schema_version"`
	// ID is the artifact identifier ("fig2", "table1", ...). It doubles as
	// the file stem inside a run directory, so it is restricted to a safe
	// character set (see NewArtifact).
	ID string `json:"id"`
	// Title describes the artifact.
	Title string `json:"title"`
	// Text is the rendered table, kept alongside the data so a stored run
	// is human-readable without re-running anything.
	Text string `json:"text"`
	// Data is the driver's typed result in compact canonical JSON. Diff
	// flattens its numeric leaves into metric paths.
	Data json.RawMessage `json:"data,omitempty"`
}

// Run is the metadata sidecar (run.json) of one evaluation pass. Unlike
// artifacts, run metadata carries wall-clock facts (timings, creation
// time), so two otherwise identical runs differ here and only here.
type Run struct {
	SchemaVersion int       `json:"schema_version"`
	ID            string    `json:"id"`
	CreatedAt     time.Time `json:"created_at"`
	// Options records the evaluation scale and suite the run used.
	Options RunOptions `json:"options"`
	// Artifacts lists the artifact IDs stored with the run, in run order.
	Artifacts []string `json:"artifacts"`
	// Timings holds per-artifact wall-clock durations.
	Timings []Timing `json:"timings,omitempty"`
	// TotalNanos is the whole pass's wall-clock duration.
	TotalNanos int64 `json:"total_nanos,omitempty"`
}

// RunOptions is the serializable subset of the experiment options.
type RunOptions struct {
	Workloads []string `json:"workloads"`
	// SweepWorkloads is the suite the design-space sweep artifacts ran
	// over (additive field; absent in runs stored before sweeps existed).
	SweepWorkloads []string `json:"sweep_workloads,omitempty"`
	WarmupInstrs   uint64   `json:"warmup_instrs"`
	MeasureInstrs  uint64   `json:"measure_instrs"`
	Parallel       int      `json:"parallel,omitempty"`
	// System is the simulated machine description (config.System), kept as
	// an open-ended value so this package stays schema-generic.
	System any `json:"system,omitempty"`
}

// Timing is one artifact's wall-clock duration.
type Timing struct {
	ID    string `json:"id"`
	Nanos int64  `json:"nanos"`
}

// Elapsed returns the timing as a duration.
func (t Timing) Elapsed() time.Duration { return time.Duration(t.Nanos) }

// validID reports whether id is usable as an artifact ID (and therefore a
// file stem): non-empty, at most 64 bytes, alphanumeric start, and only
// alphanumerics, '.', '_', '-' after. "run" is reserved — its file stem
// is the metadata sidecar.
func validID(id string) bool {
	if id == "" || len(id) > 64 || id == "run" {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// ValidArtifactID reports whether id is usable as an artifact ID (see
// validID) — exported so callers that will later persist an artifact
// under a caller-chosen ID (e.g. the sweep CLI's grid summary) can
// reject a bad ID before doing the work the artifact would record.
func ValidArtifactID(id string) bool { return validID(id) }

// encode marshals v deterministically (sorted map keys via encoding/json,
// no HTML escaping) with optional indentation. The returned bytes end in a
// newline.
func encode(v any, indent bool) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// compactJSON returns the whitespace-normalized form of raw JSON.
func compactJSON(raw []byte) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// crashBeforeRename is a test seam simulating a writer killed between
// writing its temp file and renaming it into place: when it reports a
// crash for a path, writeFileAtomic abandons the write exactly the way a
// SIGKILL would — temp file left behind, final path never created. Nil
// outside tests.
var crashBeforeRename func(path string) bool

// errSimulatedCrash marks the test seam's abandonment.
var errSimulatedCrash = fmt.Errorf("report: simulated crash before rename")

// writeFileAtomic writes b at path via a uniquely named temp file in the
// same directory renamed into place, so no reader — nor a crash at any
// instant — ever observes a partially written file: the final path either
// does not exist or holds the complete bytes. Temp files are dot-prefixed
// and never end in ".json", so a crashed writer's leftovers are invisible
// to Load and LoadJobResults.
func writeFileAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(b)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if crashBeforeRename != nil && crashBeforeRename(path) {
		return errSimulatedCrash
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// AtomicWriteFile exposes the store's atomic write primitive (temp file
// + rename in the destination directory, dot-prefixed temps invisible to
// Load and globs) for sibling stores layered on this package — the
// experiment service persists its run-database index files with exactly
// the crash-safety contract Save gives artifacts.
func AtomicWriteFile(path string, b []byte) error { return writeFileAtomic(path, b) }

// NewArtifact builds a schema-stamped artifact from a driver result. data
// may be any JSON-marshalable value (or nil for text-only artifacts); it
// is canonicalized to compact JSON so identical results are byte-identical
// regardless of how they were produced.
func NewArtifact(id, title, text string, data any) (Artifact, error) {
	if !validID(id) {
		return Artifact{}, fmt.Errorf("report: invalid artifact ID %q", id)
	}
	a := Artifact{SchemaVersion: SchemaVersion, ID: id, Title: title, Text: text}
	if data != nil {
		b, err := encode(data, false)
		if err != nil {
			return Artifact{}, fmt.Errorf("report: marshal %s data: %w", id, err)
		}
		c, err := compactJSON(b)
		if err != nil {
			return Artifact{}, fmt.Errorf("report: canonicalize %s data: %w", id, err)
		}
		a.Data = c
	}
	return a, nil
}

// Encode returns the artifact's canonical compact serialization, the form
// compared byte-for-byte by determinism tests.
func (a Artifact) Encode() ([]byte, error) { return encode(a, false) }

// WriteArtifact writes one artifact as indented JSON at path. The write
// is atomic (temp file + rename in the same directory): a reader never
// observes a torn artifact, and a writer killed mid-write leaves the
// previous file — or no file — in place, never a readable prefix.
func WriteArtifact(path string, a Artifact) error {
	if !validID(a.ID) {
		return fmt.Errorf("report: invalid artifact ID %q", a.ID)
	}
	b, err := encode(a, true)
	if err != nil {
		return fmt.Errorf("report: marshal artifact %s: %w", a.ID, err)
	}
	return writeFileAtomic(path, b)
}

// ReadArtifact loads one artifact file, verifying the schema version and
// re-canonicalizing Data so that ReadArtifact(WriteArtifact(a)) == a.
func ReadArtifact(path string) (Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return Artifact{}, fmt.Errorf("report: parse %s: %w", path, err)
	}
	if a.SchemaVersion != SchemaVersion {
		return Artifact{}, fmt.Errorf("report: %s has schema version %d, want %d", path, a.SchemaVersion, SchemaVersion)
	}
	if !validID(a.ID) {
		return Artifact{}, fmt.Errorf("report: %s has invalid artifact ID %q", path, a.ID)
	}
	if a.Data != nil {
		c, err := compactJSON(a.Data)
		if err != nil {
			return Artifact{}, fmt.Errorf("report: %s data: %w", path, err)
		}
		a.Data = c
	}
	return a, nil
}

// runFile is the name of the metadata sidecar inside a run directory.
const runFile = "run.json"

// Save writes a run directory: run.json plus one <artifact-id>.json per
// artifact. dir is created if needed; existing files are overwritten.
//
// Crash safety: every file is written atomically (see writeFileAtomic)
// and run.json — the only file Load treats as proof of a complete run —
// is written last. A writer killed at any single write therefore leaves
// either a directory without run.json (which Load rejects outright) or a
// fully consistent run; a readable-but-partial run directory is never
// observable.
func Save(dir string, run Run, artifacts []Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Invalidate any previous run first: overwriting a complete run
	// directory must not leave the old manifest next to a partial mix of
	// old and new artifacts if this writer dies mid-save.
	if err := os.Remove(filepath.Join(dir, runFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	run.SchemaVersion = SchemaVersion
	// Fresh slice: run is a value, but reusing the caller's backing array
	// would mutate their copy.
	run.Artifacts = make([]string, 0, len(artifacts))
	for _, a := range artifacts {
		run.Artifacts = append(run.Artifacts, a.ID)
	}
	for _, a := range artifacts {
		if err := WriteArtifact(filepath.Join(dir, a.ID+".json"), a); err != nil {
			return err
		}
	}
	b, err := encode(run, true)
	if err != nil {
		return fmt.Errorf("report: marshal run metadata: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, runFile), b)
}

// Load reads a run directory written by Save. Artifacts are returned in
// the order run.json lists them.
func Load(dir string) (Run, []Artifact, error) {
	b, err := os.ReadFile(filepath.Join(dir, runFile))
	if err != nil {
		return Run{}, nil, fmt.Errorf("report: %s is not a results directory: %w", dir, err)
	}
	var run Run
	if err := json.Unmarshal(b, &run); err != nil {
		return Run{}, nil, fmt.Errorf("report: parse %s: %w", filepath.Join(dir, runFile), err)
	}
	if run.SchemaVersion != SchemaVersion {
		return Run{}, nil, fmt.Errorf("report: %s has schema version %d, want %d", dir, run.SchemaVersion, SchemaVersion)
	}
	arts := make([]Artifact, 0, len(run.Artifacts))
	for _, id := range run.Artifacts {
		if !validID(id) {
			return Run{}, nil, fmt.Errorf("report: %s lists invalid artifact ID %q", dir, id)
		}
		a, err := ReadArtifact(filepath.Join(dir, id+".json"))
		if err != nil {
			return Run{}, nil, err
		}
		if a.ID != id {
			return Run{}, nil, fmt.Errorf("report: %s/%s.json declares ID %q", dir, id, a.ID)
		}
		arts = append(arts, a)
	}
	return run, arts, nil
}

// Store addresses runs inside a results root as <Root>/<run-id>/.
type Store struct {
	// Root is the results directory holding one subdirectory per run.
	Root string
}

// Dir returns the directory of a run.
func (s Store) Dir(runID string) string { return filepath.Join(s.Root, runID) }

// Save stores a run under its ID.
func (s Store) Save(run Run, artifacts []Artifact) error {
	if !validID(run.ID) {
		return fmt.Errorf("report: invalid run ID %q", run.ID)
	}
	return Save(s.Dir(run.ID), run, artifacts)
}

// Load reads a stored run by ID.
func (s Store) Load(runID string) (Run, []Artifact, error) {
	if !validID(runID) {
		return Run{}, nil, fmt.Errorf("report: invalid run ID %q", runID)
	}
	return Load(s.Dir(runID))
}

// Runs lists the stored run IDs (directories containing run.json) in
// lexical order — the directory-listing view. For a listing ordered the
// way a human (or the experiment service's list endpoint) wants it — by
// when each run started — use List.
func (s Store) Runs() ([]string, error) {
	entries, err := os.ReadDir(s.Root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.Root, e.Name(), runFile)); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// RunInfo is one stored run's listing entry: its store address (the run
// directory name), when it was created, and how many artifacts it holds.
type RunInfo struct {
	ID        string    `json:"id"`
	CreatedAt time.Time `json:"created_at"`
	Artifacts int       `json:"artifacts"`
}

// List describes every stored run, sorted by creation time (ties broken
// by ID, so the order is total and stable). Unlike Load it reads only
// each run's metadata sidecar, never the artifacts, so listing a large
// corpus stays cheap. A run.json that fails to parse or carries a
// foreign schema version is an error — a corpus with an unreadable run
// should be noticed, not silently elided from listings.
func (s Store) List() ([]RunInfo, error) {
	ids, err := s.Runs()
	if err != nil {
		return nil, err
	}
	infos := make([]RunInfo, 0, len(ids))
	for _, id := range ids {
		b, err := os.ReadFile(filepath.Join(s.Dir(id), runFile))
		if err != nil {
			return nil, fmt.Errorf("report: list %s: %w", id, err)
		}
		var run Run
		if err := json.Unmarshal(b, &run); err != nil {
			return nil, fmt.Errorf("report: list %s: parse run.json: %w", id, err)
		}
		if run.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("report: list %s: run.json has schema version %d, want %d", id, run.SchemaVersion, SchemaVersion)
		}
		infos = append(infos, RunInfo{ID: id, CreatedAt: run.CreatedAt, Artifacts: len(run.Artifacts)})
	}
	sort.Slice(infos, func(a, b int) bool {
		if !infos[a].CreatedAt.Equal(infos[b].CreatedAt) {
			return infos[a].CreatedAt.Before(infos[b].CreatedAt)
		}
		return infos[a].ID < infos[b].ID
	})
	return infos, nil
}
