package report

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// crashAfter installs the crashBeforeRename seam so that the n-th atomic
// write (0-based) dies between writing its temp file and renaming it into
// place — the same observable state as a writer SIGKILLed at that point,
// except the abandoned temp file is left behind for the test to find.
func crashAfter(t *testing.T, n int) {
	t.Helper()
	calls := 0
	crashBeforeRename = func(string) bool {
		calls++
		return calls-1 == n
	}
	t.Cleanup(func() { crashBeforeRename = nil })
}

// tempFiles returns the names of abandoned atomic-write temp files in dir.
func tempFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") && strings.Contains(e.Name(), ".tmp-") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

func crashTestRun() (Run, []Artifact, int) {
	run := Run{ID: "crash", CreatedAt: time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)}
	arts := []Artifact{{SchemaVersion: SchemaVersion, ID: "fig2"}, {SchemaVersion: SchemaVersion, ID: "table1"}}
	return run, arts, len(arts) + 1 // artifacts + run.json
}

// TestSaveCrashAtEveryWrite kills Save at each of its writes in turn and
// checks the crash-safety contract: Load never accepts the directory as a
// complete run, and the abandoned temp file is visible for cleanup tooling
// but never shadows a real artifact.
func TestSaveCrashAtEveryWrite(t *testing.T) {
	run, arts, writes := crashTestRun()
	for k := 0; k < writes; k++ {
		dir := t.TempDir()
		crashAfter(t, k)
		err := Save(dir, run, arts)
		if !errors.Is(err, errSimulatedCrash) {
			t.Fatalf("crash at write %d: Save error = %v", k, err)
		}
		if _, _, err := Load(dir); err == nil {
			t.Errorf("crash at write %d: Load accepted a partial run directory", k)
		}
		if tmps := tempFiles(t, dir); len(tmps) != 1 {
			t.Errorf("crash at write %d: temp files = %v, want exactly one abandoned temp", k, tmps)
		}
		if _, err := os.Stat(filepath.Join(dir, runFile)); !os.IsNotExist(err) {
			// run.json may only exist once everything else does; a crash at
			// any write (including run.json's own) must leave it absent.
			t.Errorf("crash at write %d: run.json exists (stat err = %v)", k, err)
		}
	}
}

// TestSaveCrashDuringOverwrite crashes Save while it overwrites an existing
// complete run directory: the stale run.json must already be gone, so Load
// cannot serve a chimera of old manifest + new artifacts.
func TestSaveCrashDuringOverwrite(t *testing.T) {
	run, arts, writes := crashTestRun()
	for k := 0; k < writes; k++ {
		dir := t.TempDir()
		if err := Save(dir, run, arts); err != nil {
			t.Fatal(err)
		}
		crashAfter(t, k)
		if err := Save(dir, run, arts); !errors.Is(err, errSimulatedCrash) {
			t.Fatalf("crash at write %d: Save error = %v", k, err)
		}
		if _, _, err := Load(dir); err == nil {
			t.Errorf("crash at write %d of overwrite: Load accepted the directory", k)
		}
	}
}

// TestSaveLeavesNoTempFiles scans a successfully saved run directory for
// leftover atomic-write temps.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	run, arts, _ := crashTestRun()
	dir := t.TempDir()
	if err := Save(dir, run, arts); err != nil {
		t.Fatal(err)
	}
	if tmps := tempFiles(t, dir); len(tmps) != 0 {
		t.Errorf("temp files left after successful Save: %v", tmps)
	}
	if _, _, err := Load(dir); err != nil {
		t.Fatal(err)
	}
}

// TestWriteJobResultCrash checks the streamed per-job write path: a killed
// writer leaves only a temp file that LoadJobResults ignores, and a
// successful retry lands the job atomically.
func TestWriteJobResultCrash(t *testing.T) {
	runDir := t.TempDir()
	dir := JobsDir(runDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	j, err := NewJobResult("sweep.cell-a", "cell a", map[string]string{"engine": "pif"}, map[string]float64{"uipc": 1.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, j.Key+".json")
	crashAfter(t, 0)
	if err := WriteJobResult(path, j); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("WriteJobResult error = %v", err)
	}
	if jobs, err := LoadJobResults(runDir); err != nil || len(jobs) != 0 {
		t.Fatalf("after crash: jobs = %v, err = %v; want none", jobs, err)
	}
	if tmps := tempFiles(t, dir); len(tmps) != 1 {
		t.Fatalf("temp files after crash = %v, want one", tmps)
	}
	// Retry (the seam only fires once) must succeed and round-trip.
	if err := WriteJobResult(path, j); err != nil {
		t.Fatal(err)
	}
	jobs, err := LoadJobResults(runDir)
	if err != nil || len(jobs) != 1 || jobs[0].Key != j.Key {
		t.Fatalf("after retry: jobs = %v, err = %v", jobs, err)
	}
}

// TestWriteFileAtomicCleansUpOnError checks that a failed rename does not
// leave the temp file behind.
func TestWriteFileAtomicCleansUpOnError(t *testing.T) {
	dir := t.TempDir()
	// Renaming onto a path whose parent was removed mid-flight is hard to
	// arrange portably; instead make the destination un-renamable by making
	// it a non-empty directory.
	dst := filepath.Join(dir, "occupied")
	if err := os.MkdirAll(filepath.Join(dst, "x"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(dst, []byte("{}")); err == nil {
		t.Fatal("writeFileAtomic over a non-empty directory succeeded")
	}
	if tmps := tempFiles(t, dir); len(tmps) != 0 {
		t.Errorf("temp files left after failed rename: %v", tmps)
	}
}
