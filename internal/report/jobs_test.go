package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestValidJobKey(t *testing.T) {
	good := []string{
		"fig10.workload-oltp-db2_engine-pif",
		"sweep-history.workload-oltp-xl_engine-tifs_budget-512kb",
		"a", "A9._-x", strings.Repeat("k", 160),
	}
	for _, k := range good {
		if !ValidJobKey(k) {
			t.Errorf("ValidJobKey(%q) = false", k)
		}
	}
	bad := []string{
		"", ".leading", "-leading", "_leading", "has space", "has/slash",
		"has\\backslash", strings.Repeat("k", 161), "uni\u00e9",
	}
	for _, k := range bad {
		if ValidJobKey(k) {
			t.Errorf("ValidJobKey(%q) = true", k)
		}
	}
}

type fakeSim struct {
	UIPC     float64 `json:"uipc"`
	Misses   uint64  `json:"correct_misses"`
	Workload string  `json:"workload"`
}

func mkJob(t *testing.T, key string, uipc float64, point map[string]string) JobResult {
	t.Helper()
	j, err := NewJobResult(key, "label/"+key, point, fakeSim{UIPC: uipc, Misses: 7, Workload: "w"})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJobResultsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jobs := []JobResult{
		mkJob(t, "s.workload-a_engine-pif", 1.25, map[string]string{"workload": "a", "engine": "pif"}),
		mkJob(t, "s.workload-a_engine-none", 1.0, map[string]string{"workload": "a", "engine": "none"}),
	}
	if err := SaveJobResults(dir, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJobResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d jobs", len(got))
	}
	// Load sorts by key; the 'none' job sorts first.
	if got[0].Key != "s.workload-a_engine-none" || got[1].Key != "s.workload-a_engine-pif" {
		t.Fatalf("order = %s, %s", got[0].Key, got[1].Key)
	}
	want := map[string]JobResult{jobs[0].Key: jobs[0], jobs[1].Key: jobs[1]}
	for _, j := range got {
		w := want[j.Key]
		if j.Label != w.Label || !reflect.DeepEqual(j.Point, w.Point) || string(j.Data) != string(w.Data) {
			t.Fatalf("round trip mismatch for %s:\n got %+v\nwant %+v", j.Key, j, w)
		}
	}
}

func TestSaveJobResultsRejectsDuplicates(t *testing.T) {
	dir := t.TempDir()
	jobs := []JobResult{mkJob(t, "dup.key", 1, nil), mkJob(t, "dup.key", 2, nil)}
	if err := SaveJobResults(dir, jobs); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate keys accepted: %v", err)
	}
}

// TestSaveJobResultsReplacesStale locks the overwrite semantics: a run
// directory reused for a different run must not leak the previous run's
// per-job results (there is no manifest for jobs; the directory is the
// source of truth).
func TestSaveJobResultsReplacesStale(t *testing.T) {
	dir := t.TempDir()
	if err := SaveJobResults(dir, []JobResult{mkJob(t, "old.cell", 1, nil)}); err != nil {
		t.Fatal(err)
	}
	if err := SaveJobResults(dir, []JobResult{mkJob(t, "new.cell", 2, nil)}); err != nil {
		t.Fatal(err)
	}
	jobs, err := LoadJobResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Key != "new.cell" {
		t.Fatalf("stale jobs survived overwrite: %+v", jobs)
	}
	// An empty save clears the directory entirely.
	if err := SaveJobResults(dir, nil); err != nil {
		t.Fatal(err)
	}
	if jobs, err := LoadJobResults(dir); err != nil || len(jobs) != 0 {
		t.Fatalf("empty save left jobs behind: %v, %v", jobs, err)
	}
}

func TestSaveJobResultsEmptyIsNoop(t *testing.T) {
	dir := t.TempDir()
	if err := SaveJobResults(dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(JobsDir(dir)); !os.IsNotExist(err) {
		t.Fatalf("empty save created a jobs dir: %v", err)
	}
	jobs, err := LoadJobResults(dir)
	if err != nil || jobs != nil {
		t.Fatalf("LoadJobResults on run without jobs = %v, %v", jobs, err)
	}
}

func TestLoadJobResultsRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := SaveJobResults(dir, []JobResult{mkJob(t, "ok.key", 1, nil)}); err != nil {
		t.Fatal(err)
	}
	// Key/stem mismatch.
	bad := filepath.Join(JobsDir(dir), "other.json")
	src, _ := os.ReadFile(filepath.Join(JobsDir(dir), "ok.key.json"))
	if err := os.WriteFile(bad, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJobResults(dir); err == nil || !strings.Contains(err.Error(), "declares key") {
		t.Fatalf("stem mismatch accepted: %v", err)
	}
	os.Remove(bad)
	// Wrong schema version.
	if err := os.WriteFile(bad, []byte(`{"schema_version":99,"key":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJobResults(dir); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("schema mismatch accepted: %v", err)
	}
}

func TestNewJobResultValidation(t *testing.T) {
	if _, err := NewJobResult("bad key", "", nil, nil); err == nil {
		t.Error("invalid key accepted")
	}
	if _, err := NewJobResult("ok", "", nil, func() {}); err == nil {
		t.Error("unmarshalable data accepted")
	}
}

func TestDiffJobResultsPerJob(t *testing.T) {
	point := map[string]string{"workload": "a", "engine": "pif"}
	a := []JobResult{
		mkJob(t, "s.workload-a_engine-pif", 1.25, point),
		mkJob(t, "s.workload-a_engine-none", 1.0, nil),
	}
	b := []JobResult{
		mkJob(t, "s.workload-a_engine-pif", 1.30, point), // drifted
		mkJob(t, "s.workload-b_engine-none", 1.0, nil),   // different cell
	}
	d := DiffJobResults(a, b, DefaultTolerances())
	if !d.HasMissing() || !d.HasDrift() {
		t.Fatalf("HasMissing=%v HasDrift=%v", d.HasMissing(), d.HasDrift())
	}
	if len(d.OnlyInA) != 1 || d.OnlyInA[0] != "jobs/s.workload-a_engine-none" {
		t.Fatalf("OnlyInA = %v", d.OnlyInA)
	}
	if len(d.OnlyInB) != 1 || d.OnlyInB[0] != "jobs/s.workload-b_engine-none" {
		t.Fatalf("OnlyInB = %v", d.OnlyInB)
	}
	var found bool
	for _, m := range d.Metrics {
		if m.Path == "jobs/s.workload-a_engine-pif.uipc" {
			found = true
			if m.Within {
				t.Errorf("4%% drift within default tolerance")
			}
		}
	}
	if !found {
		t.Fatalf("per-job uipc drift not reported: %+v", d.Metrics)
	}

	// Identical sets are clean and carry no drift.
	d = DiffJobResults(a, a, Exact())
	if !d.Clean() {
		t.Fatalf("self-diff not clean: %+v", d)
	}
}

// gridArtifact builds a sweep-grid-shaped artifact: nested axis arrays
// whose metric paths look like "sweep-history.pif_cov[1][2]".
func gridArtifact(t *testing.T, id string, bump float64) Artifact {
	t.Helper()
	data := map[string]any{
		"workloads": []string{"OLTP XL", "Web XL"},
		"pif_cov": [][]float64{
			{0.25, 0.78, 0.90},
			{0.28, 0.75, 0.92 + bump},
		},
		"tifs_cov": [][]float64{
			{0.22, 0.61, 0.78},
			{0.25, 0.57, 0.69},
		},
	}
	a, err := NewArtifact(id, "grid", "", data)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestTolerancePrefixOnGridPaths locks the longest-prefix tolerance
// override semantics on sweep-grid metric paths (nested axis indices):
// a broad artifact prefix, a metric-family prefix, and a single-cell
// override compose with the most specific prefix winning.
func TestTolerancePrefixOnGridPaths(t *testing.T) {
	a := []Artifact{gridArtifact(t, "sweep-history", 0)}
	b := []Artifact{gridArtifact(t, "sweep-history", 0.04)} // one cell moved 4%

	// Default tolerances: the moved cell fails.
	d := DiffArtifacts(a, b, DefaultTolerances())
	if !d.HasDrift() {
		t.Fatal("4% cell drift passed default tolerances")
	}
	if len(d.Metrics) != 1 || d.Metrics[0].Path != "sweep-history.pif_cov[1][2]" {
		t.Fatalf("metrics = %+v", d.Metrics)
	}

	// A family-wide override (metric prefix without indices) absorbs it.
	tol := DefaultTolerances()
	tol.PerMetric = map[string]Tolerance{"sweep-history.pif_cov": {Abs: 0.1}}
	if d := DiffArtifacts(a, b, tol); d.HasDrift() {
		t.Fatalf("family prefix override not applied: %+v", d.Metrics)
	}

	// The longest matching prefix wins: a tighter single-cell override
	// under a loose family prefix re-fails exactly that cell.
	tol.PerMetric = map[string]Tolerance{
		"sweep-history.pif_cov":       {Abs: 0.1},
		"sweep-history.pif_cov[1][2]": {Abs: 1e-6},
	}
	d = DiffArtifacts(a, b, tol)
	if !d.HasDrift() {
		t.Fatal("single-cell override lost to shorter prefix")
	}

	// And the converse: relax only one grid cell, leave the family tight.
	b2 := []Artifact{gridArtifact(t, "sweep-history", 0.04)}
	tol.PerMetric = map[string]Tolerance{"sweep-history.pif_cov[1][2]": {Abs: 0.1}}
	if d := DiffArtifacts(a, b2, tol); d.HasDrift() {
		t.Fatalf("single-cell relaxation not applied: %+v", d.Metrics)
	}
	// A different cell moving under the same tolerances still fails.
	b3 := []Artifact{gridArtifact(t, "sweep-history", 0)}
	var v any
	if err := json.Unmarshal(b3[0].Data, &v); err != nil {
		t.Fatal(err)
	}
	v.(map[string]any)["tifs_cov"].([]any)[0].([]any)[1] = 0.70
	b3[0], _ = NewArtifact("sweep-history", "grid", "", v)
	if d := DiffArtifacts(a, b3, tol); !d.HasDrift() {
		t.Fatal("drift outside the relaxed cell passed")
	}

	// Artifact-level prefix governs every leaf under the artifact.
	tol.PerMetric = map[string]Tolerance{"sweep-history": {Abs: 1.0}}
	if d := DiffArtifacts(a, b3, tol); d.HasDrift() {
		t.Fatalf("artifact-wide prefix not applied: %+v", d.Metrics)
	}

	// Per-job paths compose with the same machinery: a prefix scoped to
	// one sweep's jobs relaxes only those jobs.
	ja := []JobResult{mkJob(t, "sweep-history.workload-a_engine-pif", 1.25, nil), mkJob(t, "other.workload-a", 2.0, nil)}
	jb := []JobResult{mkJob(t, "sweep-history.workload-a_engine-pif", 1.29, nil), mkJob(t, "other.workload-a", 2.1, nil)}
	jtol := DefaultTolerances()
	jtol.PerMetric = map[string]Tolerance{"jobs/sweep-history": {Abs: 0.1}}
	d = DiffJobResults(ja, jb, jtol)
	if !d.HasDrift() {
		t.Fatal("drift in unrelaxed job sweep passed")
	}
	for _, m := range d.Metrics {
		if strings.HasPrefix(m.Path, "jobs/sweep-history") && !m.Within {
			t.Errorf("relaxed sweep job failed: %+v", m)
		}
		if strings.HasPrefix(m.Path, "jobs/other") && m.Path == "jobs/other.workload-a.uipc" && m.Within {
			t.Errorf("unrelaxed job passed: %+v", m)
		}
	}
}

func TestDiffMerge(t *testing.T) {
	var d Diff
	d.Metrics = append(d.Metrics, MetricDiff{Path: "a.x", Within: true})
	o := Diff{
		OnlyInA:    []string{"jobs/k1"},
		OnlyInB:    []string{"jobs/k2"},
		Metrics:    []MetricDiff{{Path: "jobs/k3.uipc", Within: false}},
		Mismatches: []string{"jobs/k4.name: \"a\" != \"b\""},
	}
	d.Merge(o)
	if !d.HasMissing() || !d.HasDrift() {
		t.Fatalf("merge lost findings: %+v", d)
	}
	if len(d.Metrics) != 2 {
		t.Fatalf("metrics = %d", len(d.Metrics))
	}
}
