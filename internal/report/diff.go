package report

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tolerance bounds the acceptable drift of one metric: a pair of values
// agrees when the absolute difference is at most Abs OR the relative
// difference (|a-b| / max(|a|,|b|)) is at most Rel. Zero means exact on
// that axis; a metric passes if either axis accepts it, so a tolerance of
// {Abs: 1e-9} absorbs float noise near zero without loosening large values.
type Tolerance struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// Within reports whether a and b agree under the tolerance.
func (t Tolerance) Within(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	abs := math.Abs(a - b)
	if abs <= t.Abs {
		return true
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	return denom > 0 && abs/denom <= t.Rel
}

// Tolerances selects a tolerance per metric path. PerMetric keys are path
// prefixes ("fig10", "fig10.pif_speedup", ...); the longest matching
// prefix wins, falling back to Default.
type Tolerances struct {
	Default   Tolerance
	PerMetric map[string]Tolerance
}

// Exact accepts only bit-identical metrics.
func Exact() Tolerances { return Tolerances{} }

// DefaultTolerances absorbs float formatting/accumulation noise while
// failing on any behavioral shift: one part in 10^9 relative, 1e-12
// absolute.
func DefaultTolerances() Tolerances {
	return Tolerances{Default: Tolerance{Abs: 1e-12, Rel: 1e-9}}
}

// For returns the tolerance governing a metric path.
func (ts Tolerances) For(path string) Tolerance {
	best, bestLen := ts.Default, -1
	for prefix, tol := range ts.PerMetric {
		if len(prefix) > bestLen && strings.HasPrefix(path, prefix) {
			best, bestLen = tol, len(prefix)
		}
	}
	return best
}

// MetricDiff is one numeric leaf that differs between two runs. The JSON
// field names are part of the machine-readable diff contract shared by
// `experiments diff -json` and the experiment service's diff endpoint.
type MetricDiff struct {
	// Path locates the metric: "<artifact>.<field path>", e.g.
	// "fig2.retire[3]".
	Path string  `json:"path"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	// AbsDelta is |A-B|; RelDelta is |A-B| / max(|A|,|B|) (0 when both are
	// zero).
	AbsDelta float64 `json:"abs_delta"`
	RelDelta float64 `json:"rel_delta"`
	// Within reports whether the governing tolerance accepts the pair.
	Within bool `json:"within"`
}

// Diff is the comparison of two artifact sets.
type Diff struct {
	// OnlyInA and OnlyInB list artifact IDs present on one side only.
	OnlyInA []string `json:"only_in_a,omitempty"`
	OnlyInB []string `json:"only_in_b,omitempty"`
	// Metrics lists every numeric leaf that differs, in path order.
	Metrics []MetricDiff `json:"metrics,omitempty"`
	// Mismatches lists structural differences: metrics present on one side
	// only, type changes, and non-numeric leaves (names, labels) that
	// differ. Any entry is out of tolerance by definition.
	Mismatches []string `json:"mismatches,omitempty"`
}

// OutOfTolerance reports whether the diff should fail a gate: any
// structural mismatch, missing artifact, or metric beyond its tolerance.
func (d Diff) OutOfTolerance() bool {
	return d.HasMissing() || d.HasDrift()
}

// HasMissing reports artifacts or jobs present on one side only — the two
// runs regenerated different artifact sets, which is a comparison-setup
// problem rather than metric drift (distinct exit code in the CLI).
func (d Diff) HasMissing() bool {
	return len(d.OnlyInA) > 0 || len(d.OnlyInB) > 0
}

// HasDrift reports out-of-tolerance metric drift or structural mismatch
// within matched artifacts — the regression-gate condition.
func (d Diff) HasDrift() bool {
	if len(d.Mismatches) > 0 {
		return true
	}
	for _, m := range d.Metrics {
		if !m.Within {
			return true
		}
	}
	return false
}

// Clean reports a fully identical comparison (no drift at all).
func (d Diff) Clean() bool {
	return len(d.OnlyInA) == 0 && len(d.OnlyInB) == 0 &&
		len(d.Mismatches) == 0 && len(d.Metrics) == 0
}

// Code maps a computed diff onto the `experiments diff` exit-code
// contract: 3 when the two sides regenerated different artifact/job sets
// (comparison-setup problem), 1 on out-of-tolerance drift within matched
// artifacts, 0 when everything agrees. Code 2 — failure to load or fetch
// a side — never arises from a computed diff; callers report it as an
// error before a Diff exists.
func (d Diff) Code() int {
	switch {
	case d.HasMissing():
		return 3
	case d.HasDrift():
		return 1
	default:
		return 0
	}
}

// DiffReport is the machine-readable form of one comparison: the diff
// plus its exit-code verdict and rendered text. It is the payload of
// `experiments diff -json` and the experiment service's diff endpoint —
// one struct, two transports.
type DiffReport struct {
	// Code is the `experiments diff` exit-code verdict for this diff
	// (0 identical-within-tolerance, 1 drift, 3 missing artifacts/jobs).
	Code int `json:"code"`
	// A and B name the two sides (run IDs or local paths).
	A string `json:"a"`
	B string `json:"b"`
	// Diff is the full structural comparison.
	Diff Diff `json:"diff"`
	// Text is the human-rendered report (Diff.Render), so JSON consumers
	// can surface the same lines the CLI prints.
	Text string `json:"text"`
}

// NewDiffReport packages a computed diff with its verdict and rendering.
func NewDiffReport(a, b string, d Diff) DiffReport {
	return DiffReport{Code: d.Code(), A: a, B: b, Diff: d, Text: d.Render()}
}

// Render formats the diff as a per-metric report. Out-of-tolerance rows
// are marked "FAIL"; in-tolerance drift is listed as "ok" so a near-miss
// is visible before it becomes a failure.
func (d Diff) Render() string {
	var b strings.Builder
	for _, id := range d.OnlyInA {
		fmt.Fprintf(&b, "MISSING  %s: present only in A (not regenerated or not persisted in B)\n", id)
	}
	for _, id := range d.OnlyInB {
		fmt.Fprintf(&b, "MISSING  %s: present only in B (not regenerated or not persisted in A)\n", id)
	}
	for _, m := range d.Mismatches {
		fmt.Fprintf(&b, "FAIL  %s\n", m)
	}
	for _, m := range d.Metrics {
		verdict := "ok  "
		if !m.Within {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%s  %-40s A=%-14.9g B=%-14.9g abs=%.3g rel=%.3g\n",
			verdict, m.Path, m.A, m.B, m.AbsDelta, m.RelDelta)
	}
	if b.Len() == 0 {
		return "identical\n"
	}
	return b.String()
}

// DiffArtifacts compares two artifact sets metric by metric. Artifacts are
// matched by ID; each matched pair's Data is flattened into numeric and
// non-numeric leaves rooted at the artifact ID.
func DiffArtifacts(a, b []Artifact, tol Tolerances) Diff {
	var d Diff
	byID := func(arts []Artifact) map[string]Artifact {
		m := make(map[string]Artifact, len(arts))
		for _, art := range arts {
			m[art.ID] = art
		}
		return m
	}
	am, bm := byID(a), byID(b)
	var common []string
	for id := range am {
		if _, ok := bm[id]; ok {
			common = append(common, id)
		} else {
			d.OnlyInA = append(d.OnlyInA, id)
		}
	}
	for id := range bm {
		if _, ok := am[id]; !ok {
			d.OnlyInB = append(d.OnlyInB, id)
		}
	}
	sort.Strings(d.OnlyInA)
	sort.Strings(d.OnlyInB)
	sort.Strings(common)

	for _, id := range common {
		an, ar, aerr := flattenData(id, am[id].Data)
		bn, br, berr := flattenData(id, bm[id].Data)
		if aerr != nil || berr != nil {
			d.Mismatches = append(d.Mismatches, fmt.Sprintf("%s: unparseable data (A: %v, B: %v)", id, aerr, berr))
			continue
		}
		diffLeaves(&d, an, bn, ar, br, tol)
	}
	return d
}

// diffLeaves merges one artifact's flattened leaves into the diff.
func diffLeaves(d *Diff, an, bn map[string]float64, ar, br map[string]string, tol Tolerances) {
	paths := make(map[string]struct{}, len(an)+len(bn)+len(ar)+len(br))
	for p := range an {
		paths[p] = struct{}{}
	}
	for p := range bn {
		paths[p] = struct{}{}
	}
	for p := range ar {
		paths[p] = struct{}{}
	}
	for p := range br {
		paths[p] = struct{}{}
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)

	for _, p := range sorted {
		av, aNum := an[p]
		bv, bNum := bn[p]
		as, aRaw := ar[p]
		bs, bRaw := br[p]
		switch {
		case aNum && bNum:
			if av == bv {
				continue
			}
			abs := math.Abs(av - bv)
			rel := 0.0
			if denom := math.Max(math.Abs(av), math.Abs(bv)); denom > 0 {
				rel = abs / denom
			}
			d.Metrics = append(d.Metrics, MetricDiff{
				Path: p, A: av, B: bv,
				AbsDelta: abs, RelDelta: rel,
				Within: tol.For(p).Within(av, bv),
			})
		case aRaw && bRaw:
			if as != bs {
				d.Mismatches = append(d.Mismatches, fmt.Sprintf("%s: %s != %s", p, as, bs))
			}
		case (aNum || aRaw) && !(bNum || bRaw):
			d.Mismatches = append(d.Mismatches, fmt.Sprintf("%s: only in A", p))
		case (bNum || bRaw) && !(aNum || aRaw):
			d.Mismatches = append(d.Mismatches, fmt.Sprintf("%s: only in B", p))
		default: // numeric on one side, non-numeric on the other
			d.Mismatches = append(d.Mismatches, fmt.Sprintf("%s: type changed", p))
		}
	}
}

// flattenData decodes an artifact's Data and flattens it into numeric
// leaves (metric path -> value) and non-numeric leaves (path -> rendered
// form). nil data yields empty maps.
func flattenData(root string, data json.RawMessage) (nums map[string]float64, rest map[string]string, err error) {
	nums = map[string]float64{}
	rest = map[string]string{}
	if data == nil {
		return nums, rest, nil
	}
	var v any
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, nil, err
	}
	flatten(root, v, nums, rest)
	return nums, rest, nil
}

// escapeKey backslash-escapes the path metacharacters '.', '[', '\' in an
// object key, so keys that contain them cannot collide with structural
// paths ({"a.b":1} vs {"a":{"b":1}}).
func escapeKey(k string) string {
	if !strings.ContainsAny(k, `.[\`) {
		return k
	}
	var b strings.Builder
	for _, r := range k {
		if r == '.' || r == '[' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// flatten walks a decoded JSON value accumulating leaf paths. Object keys
// append ".key" (metacharacters escaped); array elements append "[i]".
func flatten(path string, v any, nums map[string]float64, rest map[string]string) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flatten(path+"."+escapeKey(k), x[k], nums, rest)
		}
	case []any:
		for i, e := range x {
			flatten(fmt.Sprintf("%s[%d]", path, i), e, nums, rest)
		}
	case json.Number:
		if f, err := x.Float64(); err == nil {
			nums[path] = f
		} else {
			rest[path] = x.String()
		}
	case string:
		rest[path] = fmt.Sprintf("%q", x)
	case bool:
		rest[path] = fmt.Sprintf("%v", x)
	case nil:
		rest[path] = "null"
	}
}
