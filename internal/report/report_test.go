package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

type sampleData struct {
	Workloads []string    `json:"workloads"`
	Coverage  []float64   `json:"coverage"`
	CDF       [][]float64 `json:"cdf"`
}

func sample() sampleData {
	return sampleData{
		Workloads: []string{"OLTP DB2", "Web Zeus"},
		Coverage:  []float64{0.913, 0.871},
		CDF:       [][]float64{{0.1, 0.5, 1}, {0.2, 0.6, 1}},
	}
}

func mustArtifact(t *testing.T, id string, data any) Artifact {
	t.Helper()
	a, err := NewArtifact(id, "title of "+id, "rendered "+id+"\n", data)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArtifactCanonicalizes(t *testing.T) {
	a := mustArtifact(t, "fig2", sample())
	b, err := NewArtifact("fig2", a.Title, a.Text, json.RawMessage(" {\n \"workloads\": [\"OLTP DB2\", \"Web Zeus\"],\n \"coverage\": [0.913, 0.871],\n \"cdf\": [[0.1,0.5,1],[0.2,0.6,1]] } "))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, b.Data) {
		t.Errorf("canonical forms differ:\n%s\n%s", a.Data, b.Data)
	}
	if a.SchemaVersion != SchemaVersion {
		t.Errorf("schema version not stamped: %d", a.SchemaVersion)
	}
}

func TestNewArtifactRejectsBadIDs(t *testing.T) {
	// "run" is reserved: an artifact named run would collide with the
	// run.json metadata sidecar.
	for _, id := range []string{"", ".", "..", "../evil", "a/b", "a b", ".hidden", "run", strings.Repeat("x", 65)} {
		if _, err := NewArtifact(id, "t", "x", nil); err == nil {
			t.Errorf("ID %q accepted", id)
		}
	}
	for _, id := range []string{"fig2", "table1", "fig8.left", "a-b_c", "X9"} {
		if _, err := NewArtifact(id, "t", "x", nil); err != nil {
			t.Errorf("ID %q rejected: %v", id, err)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	arts := []Artifact{
		mustArtifact(t, "fig2", sample()),
		mustArtifact(t, "table1", map[string]any{"system": map[string]any{"Cores": 16}}),
	}
	run := Run{
		ID:        "baseline",
		CreatedAt: time.Date(2026, 7, 29, 0, 0, 0, 0, time.UTC),
		Options:   RunOptions{Workloads: []string{"OLTP DB2"}, WarmupInstrs: 100, MeasureInstrs: 50},
		Timings:   []Timing{{ID: "fig2", Nanos: 12345}},
	}
	if err := Save(dir, run, arts); err != nil {
		t.Fatal(err)
	}
	gotRun, gotArts, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gotRun.ID != "baseline" || gotRun.SchemaVersion != SchemaVersion {
		t.Errorf("run metadata mangled: %+v", gotRun)
	}
	if len(gotRun.Artifacts) != 2 || gotRun.Artifacts[0] != "fig2" || gotRun.Artifacts[1] != "table1" {
		t.Errorf("artifact list = %v", gotRun.Artifacts)
	}
	if !gotRun.CreatedAt.Equal(run.CreatedAt) {
		t.Errorf("created_at = %v", gotRun.CreatedAt)
	}
	if len(gotArts) != len(arts) {
		t.Fatalf("got %d artifacts", len(gotArts))
	}
	for i := range arts {
		if gotArts[i].ID != arts[i].ID || gotArts[i].Title != arts[i].Title || gotArts[i].Text != arts[i].Text {
			t.Errorf("artifact %d fields mangled: %+v", i, gotArts[i])
		}
		if !bytes.Equal(gotArts[i].Data, arts[i].Data) {
			t.Errorf("artifact %d data not round-tripped:\n%s\n%s", i, arts[i].Data, gotArts[i].Data)
		}
	}
	if d := DiffArtifacts(arts, gotArts, Exact()); !d.Clean() {
		t.Errorf("round-tripped run diffs against itself:\n%s", d.Render())
	}
}

func TestSaveDoesNotMutateCallerRun(t *testing.T) {
	arts := []Artifact{mustArtifact(t, "fig2", sample()), mustArtifact(t, "table1", nil)}
	caller := []string{"orig0", "orig1", "orig2"}
	run := Run{ID: "r", Artifacts: caller}
	if err := Save(t.TempDir(), run, arts); err != nil {
		t.Fatal(err)
	}
	if caller[0] != "orig0" || caller[1] != "orig1" || caller[2] != "orig2" {
		t.Errorf("Save overwrote the caller's slice: %v", caller)
	}
}

func TestLoadRejectsMislabeledArtifact(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, Run{ID: "r"}, []Artifact{mustArtifact(t, "fig2", sample())}); err != nil {
		t.Fatal(err)
	}
	// A fig3.json whose payload declares a different ID must not load.
	b, err := os.ReadFile(filepath.Join(dir, "fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fig3.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	runJSON, err := os.ReadFile(filepath.Join(dir, "run.json"))
	if err != nil {
		t.Fatal(err)
	}
	runJSON = bytes.Replace(runJSON, []byte(`"fig2"`), []byte(`"fig3"`), 1)
	if err := os.WriteFile(filepath.Join(dir, "run.json"), runJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "declares ID") {
		t.Errorf("mislabeled artifact accepted: %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := mustArtifact(t, "fig2", sample())
	b := mustArtifact(t, "fig2", sample())
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Error("identical artifacts encode differently")
	}
}

func TestLoadRejectsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	a := mustArtifact(t, "fig2", sample())
	if err := Save(dir, Run{ID: "r"}, []Artifact{a}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the artifact's schema version.
	path := filepath.Join(dir, "fig2.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b = bytes.Replace(b, []byte(`"schema_version": 1`), []byte(`"schema_version": 99`), 1)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("schema mismatch not rejected: %v", err)
	}
}

func TestLoadRejectsMissingRun(t *testing.T) {
	if _, _, err := Load(t.TempDir()); err == nil {
		t.Error("empty directory accepted as a results directory")
	}
}

func TestStore(t *testing.T) {
	s := Store{Root: filepath.Join(t.TempDir(), "results")}
	arts := []Artifact{mustArtifact(t, "fig2", sample())}
	for _, id := range []string{"runB", "runA"} {
		if err := s.Save(Run{ID: id}, arts); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(Run{ID: "../evil"}, arts); err == nil {
		t.Error("path-traversal run ID accepted")
	}
	ids, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "runA" || ids[1] != "runB" {
		t.Errorf("Runs() = %v", ids)
	}
	run, got, err := s.Load("runA")
	if err != nil {
		t.Fatal(err)
	}
	if run.ID != "runA" || len(got) != 1 || got[0].ID != "fig2" {
		t.Errorf("Load = %+v, %+v", run, got)
	}
	if _, _, err := s.Load("nope/../runA"); err == nil {
		t.Error("path-traversal load accepted")
	}
	empty := Store{Root: filepath.Join(t.TempDir(), "missing")}
	if ids, err := empty.Runs(); err != nil || ids != nil {
		t.Errorf("missing root: %v, %v", ids, err)
	}
}

func TestToleranceWithin(t *testing.T) {
	cases := []struct {
		tol  Tolerance
		a, b float64
		want bool
	}{
		{Tolerance{}, 1, 1, true},
		{Tolerance{}, 1, 1.0000001, false},
		{Tolerance{Abs: 1e-3}, 0.5, 0.5005, true},
		{Tolerance{Abs: 1e-3}, 0.5, 0.502, false},
		{Tolerance{Rel: 0.01}, 100, 100.5, true},
		{Tolerance{Rel: 0.01}, 100, 102, false},
		{Tolerance{Rel: 0.01}, 0, 1e-9, false}, // rel undefined at zero without abs
		{Tolerance{Abs: 1e-6}, 0, 1e-9, true},
	}
	for i, c := range cases {
		if got := c.tol.Within(c.a, c.b); got != c.want {
			t.Errorf("case %d: Within(%v, %v) under %+v = %v", i, c.a, c.b, c.tol, got)
		}
	}
}

func TestDiffToleranceAndMismatches(t *testing.T) {
	a := []Artifact{
		mustArtifact(t, "fig2", map[string]any{"coverage": []float64{0.90, 0.80}, "workloads": []string{"A", "B"}}),
		mustArtifact(t, "onlyA", map[string]any{"x": 1.0}),
	}
	b := []Artifact{
		mustArtifact(t, "fig2", map[string]any{"coverage": []float64{0.90000001, 0.70}, "workloads": []string{"A", "C"}}),
		mustArtifact(t, "onlyB", map[string]any{"x": 1.0}),
	}
	d := DiffArtifacts(a, b, Tolerances{Default: Tolerance{Abs: 1e-6}})
	if len(d.OnlyInA) != 1 || d.OnlyInA[0] != "onlyA" || len(d.OnlyInB) != 1 || d.OnlyInB[0] != "onlyB" {
		t.Errorf("artifact matching wrong: %v / %v", d.OnlyInA, d.OnlyInB)
	}
	var within, out int
	for _, m := range d.Metrics {
		if m.Within {
			within++
		} else {
			out++
		}
	}
	if within != 1 || out != 1 {
		t.Errorf("metric verdicts: %d within, %d out (want 1/1):\n%s", within, out, d.Render())
	}
	found := false
	for _, mm := range d.Mismatches {
		if strings.Contains(mm, "workloads[1]") {
			found = true
		}
	}
	if !found {
		t.Errorf("non-numeric mismatch not reported: %v", d.Mismatches)
	}
	if !d.OutOfTolerance() {
		t.Error("diff with drift and mismatches reported in tolerance")
	}
	if !strings.Contains(d.Render(), "FAIL") {
		t.Error("render lacks FAIL markers")
	}
}

func TestDiffPerMetricTolerance(t *testing.T) {
	a := []Artifact{mustArtifact(t, "fig10", map[string]any{"pif_speedup": []float64{1.25}, "tifs_speedup": []float64{1.10}})}
	b := []Artifact{mustArtifact(t, "fig10", map[string]any{"pif_speedup": []float64{1.26}, "tifs_speedup": []float64{1.11}})}
	tol := Tolerances{
		Default:   Tolerance{},
		PerMetric: map[string]Tolerance{"fig10.pif_speedup": {Abs: 0.05}},
	}
	d := DiffArtifacts(a, b, tol)
	if len(d.Metrics) != 2 {
		t.Fatalf("metrics = %v", d.Metrics)
	}
	for _, m := range d.Metrics {
		wantWithin := strings.HasPrefix(m.Path, "fig10.pif_speedup")
		if m.Within != wantWithin {
			t.Errorf("%s: within = %v, want %v", m.Path, m.Within, wantWithin)
		}
	}
}

func TestDiffTypeChange(t *testing.T) {
	a := []Artifact{mustArtifact(t, "x", map[string]any{"v": 1.0})}
	b := []Artifact{mustArtifact(t, "x", map[string]any{"v": "one"})}
	d := DiffArtifacts(a, b, DefaultTolerances())
	if len(d.Mismatches) != 1 || !strings.Contains(d.Mismatches[0], "type changed") {
		t.Errorf("type change not reported: %v", d.Mismatches)
	}
}

func TestDiffEscapesPathMetacharacters(t *testing.T) {
	// {"a.b": 1} and {"a": {"b": 2}} must not collide on the same path.
	a := []Artifact{mustArtifact(t, "x", map[string]any{"a.b": 1.0, "a": map[string]any{"b": 2.0}})}
	b := []Artifact{mustArtifact(t, "x", map[string]any{"a.b": 1.0, "a": map[string]any{"b": 3.0}})}
	d := DiffArtifacts(a, b, Exact())
	if len(d.Metrics) != 1 || d.Metrics[0].Path != "x.a.b" || d.Metrics[0].A != 2 || d.Metrics[0].B != 3 {
		t.Errorf("structural leaf lost to key collision: %+v (mismatches %v)", d.Metrics, d.Mismatches)
	}
	c := []Artifact{mustArtifact(t, "x", map[string]any{"a.b": 9.0, "a": map[string]any{"b": 2.0}})}
	d = DiffArtifacts(a, c, Exact())
	if len(d.Metrics) != 1 || d.Metrics[0].Path != `x.a\.b` || d.Metrics[0].A != 1 || d.Metrics[0].B != 9 {
		t.Errorf("dotted-key leaf lost to collision: %+v (mismatches %v)", d.Metrics, d.Mismatches)
	}
}

func TestDiffIdenticalClean(t *testing.T) {
	arts := []Artifact{mustArtifact(t, "fig2", sample())}
	d := DiffArtifacts(arts, arts, Exact())
	if !d.Clean() || d.OutOfTolerance() {
		t.Errorf("self-diff not clean:\n%s", d.Render())
	}
	if d.Render() != "identical\n" {
		t.Errorf("clean render = %q", d.Render())
	}
}

// TestStoreList covers the run-listing view: entries carry each run's
// creation time and artifact count, sorted by creation time (ties by ID)
// rather than the lexical order Runs keeps, and a directory whose
// run.json cannot be parsed fails the listing loudly instead of being
// silently skipped.
func TestStoreList(t *testing.T) {
	s := Store{Root: t.TempDir()}
	arts := []Artifact{mustArtifact(t, "fig2", sample()), mustArtifact(t, "table1", sample())}
	// IDs chosen so lexical order ("newest" < "oldest") inverts creation
	// order: List must sort by time, Runs lexically.
	times := map[string]time.Time{
		"oldest": time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		"newest": time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC),
	}
	for id, at := range times {
		if err := s.Save(Run{ID: id, CreatedAt: at}, arts[:1+len(id)%2]); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].ID != "oldest" || infos[1].ID != "newest" {
		t.Fatalf("List() order = %+v, want oldest then newest", infos)
	}
	for _, info := range infos {
		if !info.CreatedAt.Equal(times[info.ID]) {
			t.Errorf("%s: CreatedAt = %v, want %v", info.ID, info.CreatedAt, times[info.ID])
		}
		if want := 1 + len(info.ID)%2; info.Artifacts != want {
			t.Errorf("%s: Artifacts = %d, want %d", info.ID, info.Artifacts, want)
		}
	}
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0] != "newest" || runs[1] != "oldest" {
		t.Errorf("Runs() = %v, want lexical order", runs)
	}

	// Directories without run.json (in-progress or foreign) are not runs
	// and stay out of the listing.
	if err := os.MkdirAll(filepath.Join(s.Root, "partial"), 0o755); err != nil {
		t.Fatal(err)
	}
	infos, err = s.List()
	if err != nil || len(infos) != 2 {
		t.Fatalf("List() with partial dir = %+v, %v", infos, err)
	}

	// A torn run.json is an error, not a silent omission.
	if err := os.WriteFile(filepath.Join(s.Root, "partial", "run.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List(); err == nil {
		t.Error("List() swallowed an unparseable run.json")
	}
}

// TestDiffCodeAndReport pins the machine-readable diff contract to the
// CLI exit codes: Code is 0/1/3 for clean/drift/missing (missing wins
// when both hold — same precedence as `experiments diff`), 2 is reserved
// for load/usage errors and never produced by a computed diff, and the
// report serializes with the diff and rendering intact.
func TestDiffCodeAndReport(t *testing.T) {
	cases := []struct {
		name string
		d    Diff
		code int
	}{
		{"clean", Diff{}, 0},
		{"drift", Diff{Metrics: []MetricDiff{{Path: "x.m", A: 1, B: 2}}}, 1},
		{"mismatch", Diff{Mismatches: []string{"x.m: type changed"}}, 1},
		{"missing", Diff{OnlyInA: []string{"x"}}, 3},
		{"missing-and-drift", Diff{OnlyInB: []string{"y"}, Metrics: []MetricDiff{{Path: "x.m", A: 1, B: 2}}}, 3},
	}
	for _, tc := range cases {
		if got := tc.d.Code(); got != tc.code {
			t.Errorf("%s: Code() = %d, want %d", tc.name, got, tc.code)
		}
		rep := NewDiffReport("a", "b", tc.d)
		if rep.Code != tc.code || rep.A != "a" || rep.B != "b" {
			t.Errorf("%s: report = {Code %d A %q B %q}", tc.name, rep.Code, rep.A, rep.B)
		}
		if rep.Text != tc.d.Render() {
			t.Errorf("%s: report text %q != render %q", tc.name, rep.Text, tc.d.Render())
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var back DiffReport
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		if back.Code != tc.code || back.Diff.Code() != tc.code {
			t.Errorf("%s: roundtrip code %d (diff %d), want %d", tc.name, back.Code, back.Diff.Code(), tc.code)
		}
	}
}
