package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// Config parameterizes a PIF instance (Section 4, Figure 4).
type Config struct {
	// Geometry is the spatial region shape (paper: 2 preceding + trigger
	// + 5 succeeding blocks).
	Geometry Geometry
	// TemporalDepth is the temporal compactor MRU depth (0 disables).
	TemporalDepth int
	// TemporalDepthTL1 is the MRU depth for the trap-level-1 engine
	// (0 means use TemporalDepth). Handler records are few but must stay
	// resident across invocations so the index keeps pointing at
	// superset bit vectors; a deeper MRU is nearly free at TL1 rates.
	TemporalDepthTL1 int
	// HistoryRegions is the history buffer capacity (paper knee: 32K).
	HistoryRegions int
	// IndexEntries is the index table capacity.
	IndexEntries int
	// NumSABs is the number of stream address buffers (paper: 4).
	NumSABs int
	// SABWindow is the regions tracked per SAB (paper: 7).
	SABWindow int
	// SeparateTrapLevels records TL0 and TL1 into separate histories
	// (the paper's RetireSep configuration, on by default).
	SeparateTrapLevels bool
}

// DefaultConfig is the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Geometry:           DefaultGeometry(),
		TemporalDepth:      4,
		TemporalDepthTL1:   16,
		HistoryRegions:     32 << 10,
		IndexEntries:       8 << 10,
		NumSABs:            4,
		SABWindow:          7,
		SeparateTrapLevels: true,
	}
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.HistoryRegions < 1 {
		return fmt.Errorf("core: HistoryRegions = %d", c.HistoryRegions)
	}
	if c.IndexEntries < 1 {
		return fmt.Errorf("core: IndexEntries = %d", c.IndexEntries)
	}
	if c.NumSABs < 1 || c.SABWindow < 1 {
		return fmt.Errorf("core: NumSABs = %d, SABWindow = %d", c.NumSABs, c.SABWindow)
	}
	if c.TemporalDepth < 0 || c.TemporalDepthTL1 < 0 {
		return fmt.Errorf("core: TemporalDepth = %d, TL1 = %d", c.TemporalDepth, c.TemporalDepthTL1)
	}
	return nil
}

// Stats counts PIF events.
type Stats struct {
	RetiredBlocks   uint64 // block-grain retire events
	RegionsEmitted  uint64 // spatial compactor outputs
	RegionsAdmitted uint64 // past the temporal compactor, into history
	IndexInserts    uint64
	Triggers        uint64 // SAB allocations from index hits
	Advances        uint64 // SAB window advances
}

// engine is the per-trap-level recording and replay machinery.
type engine struct {
	spatial  *SpatialCompactor
	temporal *TemporalCompactor
	history  *HistoryBuffer
	index    *IndexTable
	sabs     *sabFile

	lastBlock isa.Block
	haveLast  bool
}

// PIF is the Proactive Instruction Fetch prefetcher. It implements
// prefetch.Prefetcher: OnRetire feeds the compaction/recording pipeline and
// OnAccess drives triggering and SAB advancement.
type PIF struct {
	cfg     Config
	engines [isa.NumTrapLevels]*engine
	stats   Stats
}

// SetStreamEndHook registers a callback invoked with the number of demand
// fetches each stream served before its SAB was replaced (Figure 9 left).
func (p *PIF) SetStreamEndHook(fn func(advances uint64)) {
	for _, e := range p.engines {
		if e != nil {
			e.sabs.onStreamEnd = fn
		}
	}
}

// New builds a PIF; it panics on an invalid configuration.
func New(cfg Config) *PIF {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &PIF{cfg: cfg}
	n := 1
	if cfg.SeparateTrapLevels {
		n = isa.NumTrapLevels
	}
	for i := 0; i < n; i++ {
		depth := cfg.TemporalDepth
		if i == int(isa.TL1) && cfg.TemporalDepthTL1 > 0 {
			depth = cfg.TemporalDepthTL1
		}
		p.engines[i] = &engine{
			spatial:  NewSpatialCompactor(cfg.Geometry),
			temporal: NewTemporalCompactor(depth),
			history:  NewHistoryBuffer(cfg.HistoryRegions),
			index:    NewIndexTable(cfg.IndexEntries),
			sabs:     newSABFile(cfg.NumSABs, cfg.SABWindow, cfg.Geometry),
		}
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *PIF) Name() string { return "PIF" }

// Config returns the configuration.
func (p *PIF) Config() Config { return p.cfg }

// Stats returns a copy of the counters.
func (p *PIF) Stats() Stats { return p.stats }

// engineFor returns the recording engine for a trap level.
func (p *PIF) engineFor(tl isa.TrapLevel) *engine {
	if !p.cfg.SeparateTrapLevels || int(tl) >= len(p.engines) || p.engines[tl] == nil {
		return p.engines[0]
	}
	return p.engines[tl]
}

// OnAccess implements prefetch.Prefetcher. Demand accesses advance active
// streams; accesses that were not served by a prefetch probe the index and
// may trigger a new stream replay.
func (p *PIF) OnAccess(ev prefetch.AccessEvent, iss prefetch.Issuer) {
	e := p.engineFor(ev.TL)
	if e.sabs.advance(ev.Block, e.history, iss) {
		p.stats.Advances++
		return
	}
	// Trigger: a fetch not explicitly prefetched whose block heads a
	// recorded stream starts a replay (Section 4.3). Stream heads may hit
	// in the cache — triggering is not conditioned on a miss.
	if ev.Prefetched() {
		return
	}
	if pos, ok := e.index.Get(ev.Block); ok {
		e.sabs.allocate(pos, e.history, iss)
		p.stats.Triggers++
	}
}

// OnRetire implements prefetch.Prefetcher: the retire-order recording path.
// Consecutive same-block retirements collapse to one block-grain event
// before spatial compaction (Section 4.1).
func (p *PIF) OnRetire(r trace.Record, tagged bool, iss prefetch.Issuer) {
	e := p.engineFor(r.TL)
	b := r.Block()
	if e.haveLast && b == e.lastBlock {
		return
	}
	p.stats.RetiredBlocks++
	e.lastBlock, e.haveLast = b, true

	region, emitted := e.spatial.Observe(b, r.TL, tagged)
	if !emitted {
		return
	}
	p.recordRegion(e, region)
}

// recordRegion runs a closed spatial region through the temporal compactor
// and, when admitted, appends it to the history buffer and (for tagged
// triggers) the index table.
func (p *PIF) recordRegion(e *engine, region Region) {
	p.stats.RegionsEmitted++
	if !e.temporal.Filter(region) {
		return
	}
	p.stats.RegionsAdmitted++
	pos := e.history.Append(region)
	if region.TriggerTagged {
		e.index.Put(region.Trigger, pos)
		p.stats.IndexInserts++
	}
}

// Flush closes any open spatial regions into the history (end of trace).
func (p *PIF) Flush() {
	for _, e := range p.engines {
		if e == nil {
			continue
		}
		if region, ok := e.spatial.Flush(); ok {
			p.recordRegion(e, region)
		}
	}
}

// HistoryFor exposes the history buffer of a trap level (experiments).
func (p *PIF) HistoryFor(tl isa.TrapLevel) *HistoryBuffer {
	return p.engineFor(tl).history
}

// InWindow reports whether block b is inside a live SAB window at trap
// level tl (observability for tests and diagnostics).
func (p *PIF) InWindow(b isa.Block, tl isa.TrapLevel) bool {
	return p.engineFor(tl).sabs.covered(b)
}

// IndexHas reports whether the index table has an entry for trigger block b
// at trap level tl, without promoting it (observability).
func (p *PIF) IndexHas(b isa.Block, tl isa.TrapLevel) bool {
	e := p.engineFor(tl)
	_, ok := e.index.lookup[b]
	return ok
}

// LiveSABs returns the number of active stream address buffers across all
// trap levels (observability for tests).
func (p *PIF) LiveSABs() int {
	n := 0
	for _, e := range p.engines {
		if e != nil {
			n += e.sabs.liveCount()
		}
	}
	return n
}
