package core

import (
	"testing"

	"repro/internal/isa"
)

func TestSpatialCompactorGroupsAdjacent(t *testing.T) {
	sc := NewSpatialCompactor(DefaultGeometry())
	// Blocks 100,101,102 are one region; 200 closes it.
	if _, emitted := sc.Observe(100, isa.TL0, true); emitted {
		t.Fatal("first block should not emit")
	}
	if _, emitted := sc.Observe(101, isa.TL0, false); emitted {
		t.Fatal("in-region block should not emit")
	}
	if _, emitted := sc.Observe(102, isa.TL0, false); emitted {
		t.Fatal("in-region block should not emit")
	}
	region, emitted := sc.Observe(200, isa.TL0, false)
	if !emitted {
		t.Fatal("out-of-region block should close the region")
	}
	if region.Trigger != 100 || !region.TriggerTagged {
		t.Errorf("region = %+v", region)
	}
	g := DefaultGeometry()
	for _, b := range []isa.Block{100, 101, 102} {
		if !region.Has(g, b) {
			t.Errorf("block %v missing from region", b)
		}
	}
	if region.PopCount() != 3 {
		t.Errorf("popcount = %d, want 3", region.PopCount())
	}
}

func TestSpatialCompactorBackwardBlock(t *testing.T) {
	// The example of Figure 5: trigger A, then A+2, then A-1 — all within
	// one region with Prec>=1.
	sc := NewSpatialCompactor(DefaultGeometry())
	sc.Observe(100, isa.TL0, false)
	sc.Observe(102, isa.TL0, false)
	if _, emitted := sc.Observe(99, isa.TL0, false); emitted {
		t.Fatal("backward in-region block should not close the region")
	}
	region, ok := sc.Flush()
	if !ok {
		t.Fatal("flush should return the open region")
	}
	g := DefaultGeometry()
	if !region.Has(g, 99) || !region.Has(g, 100) || !region.Has(g, 102) {
		t.Errorf("region misses blocks: %v", region)
	}
}

func TestSpatialCompactorTrapLevelSplit(t *testing.T) {
	// A block at a different trap level must close the region even if
	// spatially adjacent (handlers record into separate streams).
	sc := NewSpatialCompactor(DefaultGeometry())
	sc.Observe(100, isa.TL0, false)
	region, emitted := sc.Observe(101, isa.TL1, false)
	if !emitted {
		t.Fatal("trap-level change should close region")
	}
	if region.TL != isa.TL0 {
		t.Errorf("closed region TL = %v", region.TL)
	}
}

func TestSpatialCompactorDistantJumpBeyondPrec(t *testing.T) {
	// A backward jump beyond Prec must start a new region.
	sc := NewSpatialCompactor(DefaultGeometry())
	sc.Observe(100, isa.TL0, false)
	region, emitted := sc.Observe(97, isa.TL0, false) // prec is 2: 97 < 98
	if !emitted {
		t.Fatal("far backward block should close region")
	}
	if region.Trigger != 100 {
		t.Errorf("trigger = %v", region.Trigger)
	}
}

func TestSpatialCompactorFlushEmpty(t *testing.T) {
	sc := NewSpatialCompactor(DefaultGeometry())
	if _, ok := sc.Flush(); ok {
		t.Error("flush of empty compactor should report nothing")
	}
}

func TestTemporalCompactorDropsLoopRepeats(t *testing.T) {
	tc := NewTemporalCompactor(4)
	g := DefaultGeometry()
	r := NewRegion(g, 100, isa.TL0, false)
	r.Set(g, 101)
	if !tc.Filter(r) {
		t.Fatal("first occurrence must be admitted")
	}
	// Identical record (loop iteration): dropped.
	if tc.Filter(r) {
		t.Error("repeat should be filtered")
	}
	// Subset record: also dropped.
	sub := NewRegion(g, 100, isa.TL0, false)
	if tc.Filter(sub) {
		t.Error("subset repeat should be filtered")
	}
	// Superset record (new blocks touched): admitted.
	super := r
	super.Set(g, 104)
	if !tc.Filter(super) {
		t.Error("superset is new information and must be admitted")
	}
}

func TestTemporalCompactorLRUEviction(t *testing.T) {
	tc := NewTemporalCompactor(2)
	g := DefaultGeometry()
	mk := func(trig isa.Block) Region { return NewRegion(g, trig, isa.TL0, false) }
	tc.Filter(mk(10)) // MRU: 10
	tc.Filter(mk(20)) // MRU: 20,10
	tc.Filter(mk(30)) // evicts 10 → 30,20
	if tc.Filter(mk(20)) {
		t.Error("20 should still match")
	}
	if !tc.Filter(mk(10)) {
		t.Error("10 was evicted and must be admitted again")
	}
}

func TestTemporalCompactorPromotion(t *testing.T) {
	tc := NewTemporalCompactor(2)
	g := DefaultGeometry()
	mk := func(trig isa.Block) Region { return NewRegion(g, trig, isa.TL0, false) }
	tc.Filter(mk(10)) // [10]
	tc.Filter(mk(20)) // [20,10]
	// Touch 10: promotes it to MRU → [10,20].
	if tc.Filter(mk(10)) {
		t.Fatal("10 should match")
	}
	// Insert 30: evicts LRU=20 → [30,10].
	tc.Filter(mk(30))
	if tc.Filter(mk(10)) {
		t.Error("10 should have been protected by promotion")
	}
	if !tc.Filter(mk(20)) {
		t.Error("20 should have been evicted")
	}
}

func TestTemporalCompactorDisabled(t *testing.T) {
	tc := NewTemporalCompactor(0)
	g := DefaultGeometry()
	r := NewRegion(g, 100, isa.TL0, false)
	for i := 0; i < 3; i++ {
		if !tc.Filter(r) {
			t.Fatal("disabled compactor must admit everything")
		}
	}
}

func TestTemporalCompactorReset(t *testing.T) {
	tc := NewTemporalCompactor(4)
	g := DefaultGeometry()
	r := NewRegion(g, 100, isa.TL0, false)
	tc.Filter(r)
	tc.Reset()
	if !tc.Filter(r) {
		t.Error("after Reset the record must be admitted again")
	}
}
