package core

import "repro/internal/prefetch"

// The PIF variants are registered with the prefetch engine registry so
// that job-based execution (internal/runner) and the CLIs can name them
// without constructing configurations by hand. Each factory returns a
// fresh engine: PIF is stateful and instances must never be shared across
// concurrent simulation jobs.
func init() {
	prefetch.Register("pif", func() prefetch.Prefetcher { return New(DefaultConfig()) })

	// The competitive-comparison variant "without history storage
	// limitations" (Figure 10): effectively unlimited history and index.
	prefetch.Register("pif-unlimited", func() prefetch.Prefetcher {
		cfg := DefaultConfig()
		cfg.HistoryRegions = 1 << 22
		cfg.IndexEntries = 1 << 22
		return New(cfg)
	})

	// A single shared history for all trap levels (the paper's "Retire"
	// recording point, without per-trap-level stream separation).
	prefetch.Register("pif-nosep", func() prefetch.Prefetcher {
		cfg := DefaultConfig()
		cfg.SeparateTrapLevels = false
		return New(cfg)
	})
}
