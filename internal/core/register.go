package core

import (
	"errors"

	"repro/internal/prefetch"
)

// PIFBytesPerRegion is the storage-budget accounting for PIF history: a
// region record is a base address plus the spatial footprint bitmap,
// ~41 bits rounded to 6 bytes (MANA's accounting, Section 5 sizing).
const PIFBytesPerRegion = 6

// The PIF variants register their schemas with the prefetch engine
// registry so that job-based execution (internal/runner), sweeps, the
// remote wire, and the CLIs can all carry PIF configurations as plain
// declarative specs. New constructs a fresh engine per call: PIF is
// stateful and instances must never be shared across concurrent jobs.
func init() {
	prefetch.Register(prefetch.Schema{
		Name: "pif",
		Doc:  "Proactive Instruction Fetch (paper configuration)",
		Params: []prefetch.Param{
			{Name: "history", Kind: prefetch.KindInt, Default: float64(32 << 10), Min: 1,
				Help: "history buffer capacity in spatial regions"},
			{Name: "index", Kind: prefetch.KindInt, Default: float64(8 << 10), Min: 1,
				Help: "index table entries (history/4 when only history is set)"},
			{Name: "budget_kb", Kind: prefetch.KindInt, Default: 0, Min: 1,
				Help: "history storage budget in KB (6 B/region); derives history and index"},
			{Name: "sabs", Kind: prefetch.KindInt, Default: 4, Min: 1,
				Help: "stream address buffers"},
			{Name: "window", Kind: prefetch.KindInt, Default: 7, Min: 1,
				Help: "regions tracked per stream address buffer"},
			{Name: "tdepth", Kind: prefetch.KindInt, Default: 4, Min: 0,
				Help: "temporal-compactor MRU depth (0 disables compaction)"},
			{Name: "tdepth_tl1", Kind: prefetch.KindInt, Default: 16, Min: 0,
				Help: "trap-level-1 compactor MRU depth"},
			{Name: "sep", Kind: prefetch.KindBool, Default: 1,
				Help: "separate per-trap-level histories"},
		},
		Derive: func(p prefetch.Params, set map[string]bool) error {
			switch {
			case set["budget_kb"]:
				if set["history"] || set["index"] {
					return errors.New("params budget_kb and history/index are mutually exclusive")
				}
				regions := int(p["budget_kb"]) << 10 / PIFBytesPerRegion
				if regions < 1 {
					regions = 1
				}
				idx := regions / 4
				if idx < 1 {
					idx = 1
				}
				p["history"] = float64(regions)
				p["index"] = float64(idx)
			case set["history"] && !set["index"]:
				// Scale the index with the history, matching the paper's
				// 4:1 region-to-index ratio.
				idx := int(p["history"]) / 4
				if idx < 1 {
					idx = 1
				}
				p["index"] = float64(idx)
			}
			return nil
		},
		New: func(p prefetch.Params) prefetch.Prefetcher { return New(pifConfigOf(p)) },
	})

	// The competitive-comparison variant "without history storage
	// limitations" (Figure 10): effectively unlimited history and index.
	prefetch.Register(prefetch.Schema{
		Name: "pif-unlimited",
		Doc:  "PIF with effectively unlimited history and index (Figure 10)",
		New: func(prefetch.Params) prefetch.Prefetcher {
			cfg := DefaultConfig()
			cfg.HistoryRegions = 1 << 22
			cfg.IndexEntries = 1 << 22
			return New(cfg)
		},
	})

	// A single shared history for all trap levels (the paper's "Retire"
	// recording point, without per-trap-level stream separation).
	prefetch.Register(prefetch.Schema{
		Name: "pif-nosep",
		Doc:  "PIF with one shared history across trap levels",
		New: func(prefetch.Params) prefetch.Prefetcher {
			cfg := DefaultConfig()
			cfg.SeparateTrapLevels = false
			return New(cfg)
		},
	})
}

// pifConfigOf maps a resolved "pif" parameter set onto the engine config.
func pifConfigOf(p prefetch.Params) Config {
	cfg := DefaultConfig()
	cfg.HistoryRegions = int(p["history"])
	cfg.IndexEntries = int(p["index"])
	cfg.NumSABs = int(p["sabs"])
	cfg.SABWindow = int(p["window"])
	cfg.TemporalDepth = int(p["tdepth"])
	cfg.TemporalDepthTL1 = int(p["tdepth_tl1"])
	cfg.SeparateTrapLevels = p["sep"] != 0
	return cfg
}
