package core

import "repro/internal/isa"

// SpatialCompactor groups the block-grain retire stream into spatial
// region records (Section 4.1, Figure 5 left). It holds one open region;
// retired blocks inside the region set bits, and the first block outside
// it closes the region and opens a new one anchored there.
type SpatialCompactor struct {
	geom  Geometry
	cur   Region
	valid bool
}

// NewSpatialCompactor builds a compactor; it panics on invalid geometry.
func NewSpatialCompactor(g Geometry) *SpatialCompactor {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return &SpatialCompactor{geom: g}
}

// Geometry returns the compactor's region geometry.
func (sc *SpatialCompactor) Geometry() Geometry { return sc.geom }

// Observe consumes the next retired instruction block. tagged reports
// whether the instruction's fetch was not served by a prefetch (carried to
// the region record if this block becomes a trigger). When the block falls
// outside the open region, the closed region is returned with emitted=true.
func (sc *SpatialCompactor) Observe(b isa.Block, tl isa.TrapLevel, tagged bool) (out Region, emitted bool) {
	if sc.valid && sc.cur.TL == tl && sc.cur.Set(sc.geom, b) {
		return Region{}, false
	}
	out, emitted = sc.cur, sc.valid
	sc.cur = NewRegion(sc.geom, b, tl, tagged)
	sc.valid = true
	return out, emitted
}

// Flush closes and returns the open region, if any.
func (sc *SpatialCompactor) Flush() (Region, bool) {
	if !sc.valid {
		return Region{}, false
	}
	out := sc.cur
	sc.valid = false
	return out, true
}

// TemporalCompactor filters spatial region records that repeat while a
// loop's footprint is still cache resident (Section 4.1, Figure 5 right).
// It keeps the most recently observed records in MRU order; an incoming
// record whose trigger matches an entry and whose bit vector is a subset
// of the entry's is discarded (the entry is promoted), otherwise the
// record is admitted for history insertion and stored as MRU.
type TemporalCompactor struct {
	depth   int
	entries []Region // MRU first
}

// NewTemporalCompactor builds a compactor tracking depth records; depth 0
// disables temporal compaction (every record is admitted).
func NewTemporalCompactor(depth int) *TemporalCompactor {
	if depth < 0 {
		depth = 0
	}
	return &TemporalCompactor{depth: depth}
}

// Depth returns the configured MRU depth.
func (tc *TemporalCompactor) Depth() int { return tc.depth }

// Filter decides the fate of an incoming region record: admit=true means
// the caller should append it to the history buffer.
func (tc *TemporalCompactor) Filter(r Region) (admit bool) {
	if tc.depth == 0 {
		return true
	}
	for i := range tc.entries {
		if r.SubsetOf(tc.entries[i]) {
			// Promote the matching entry to MRU and discard the incoming
			// record: this loop iteration is already recorded.
			e := tc.entries[i]
			copy(tc.entries[1:i+1], tc.entries[:i])
			tc.entries[0] = e
			return false
		}
	}
	// Admit: store as MRU, evicting the LRU entry if full.
	if len(tc.entries) < tc.depth {
		tc.entries = append(tc.entries, Region{})
	}
	copy(tc.entries[1:], tc.entries[:len(tc.entries)-1])
	tc.entries[0] = r
	return true
}

// Reset clears the MRU contents.
func (tc *TemporalCompactor) Reset() { tc.entries = tc.entries[:0] }
