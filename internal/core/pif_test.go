package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// fakeIssuer collects prefetches into a set and can pretend residency.
type fakeIssuer struct {
	resident   map[isa.Block]bool
	prefetched []isa.Block
}

func newFakeIssuer() *fakeIssuer {
	return &fakeIssuer{resident: map[isa.Block]bool{}}
}

func (f *fakeIssuer) Contains(b isa.Block) bool { return f.resident[b] }

func (f *fakeIssuer) Prefetch(b isa.Block) {
	f.prefetched = append(f.prefetched, b)
	f.resident[b] = true
}

func (f *fakeIssuer) got(b isa.Block) bool {
	for _, x := range f.prefetched {
		if x == b {
			return true
		}
	}
	return false
}

// retire feeds a sequence of block numbers as retired instructions.
func retireBlocks(p *PIF, iss prefetch.Issuer, tl isa.TrapLevel, blocks ...isa.Block) {
	for _, b := range blocks {
		p.OnRetire(trace.Record{PC: b.BlockBase(), TL: tl}, true, iss)
	}
}

func TestPIFRecordsRegions(t *testing.T) {
	p := New(DefaultConfig())
	iss := newFakeIssuer()
	// Three separate regions: 100-102, 300, 500-501. A 4th region closes
	// the 3rd.
	retireBlocks(p, iss, isa.TL0, 100, 101, 102, 300, 500, 501, 900)
	p.Flush()
	st := p.Stats()
	if st.RegionsAdmitted < 3 {
		t.Errorf("regions admitted = %d, want >= 3", st.RegionsAdmitted)
	}
	if st.IndexInserts == 0 {
		t.Error("tagged triggers should insert into the index")
	}
}

func TestPIFReplayPrefetchesRecordedStream(t *testing.T) {
	p := New(DefaultConfig())
	iss := newFakeIssuer()
	// Record a stream: region A (100..102), region B (300..301), region C
	// (500). End with a far region to flush C into history.
	retireBlocks(p, iss, isa.TL0, 100, 101, 102, 300, 301, 500, 900, 1300)
	p.Flush()

	// Now the core fetches block 100 again (unprefetched): PIF should
	// trigger on the index hit and prefetch the recorded stream.
	iss2 := newFakeIssuer()
	p.OnAccess(prefetch.AccessEvent{Block: 100, TL: isa.TL0, Hit: false}, iss2)
	for _, b := range []isa.Block{101, 102, 300, 301, 500} {
		if !iss2.got(b) {
			t.Errorf("block %v not prefetched on replay", b)
		}
	}
	if p.Stats().Triggers != 1 {
		t.Errorf("triggers = %d, want 1", p.Stats().Triggers)
	}
	if p.LiveSABs() == 0 {
		t.Error("a SAB should be live after triggering")
	}
}

func TestPIFDoesNotTriggerOnPrefetchedFetch(t *testing.T) {
	p := New(DefaultConfig())
	iss := newFakeIssuer()
	retireBlocks(p, iss, isa.TL0, 100, 101, 300, 900)
	p.Flush()
	p.OnAccess(prefetch.AccessEvent{Block: 100, TL: isa.TL0, Hit: true, WasPrefetched: true}, iss)
	if p.Stats().Triggers != 0 {
		t.Error("prefetched fetch must not trigger a new stream")
	}
}

func TestPIFSABAdvance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SABWindow = 2 // small window so advancement must load more
	p := New(cfg)
	iss := newFakeIssuer()
	// Record a long stream of single-block regions spaced apart.
	var blocks []isa.Block
	for i := 0; i < 12; i++ {
		blocks = append(blocks, isa.Block(100+20*i))
	}
	retireBlocks(p, iss, isa.TL0, blocks...)
	p.Flush()

	iss2 := newFakeIssuer()
	p.OnAccess(prefetch.AccessEvent{Block: blocks[0], TL: isa.TL0, Hit: false}, iss2)
	// Window of 2 regions: the far tail should not be prefetched yet.
	if iss2.got(blocks[8]) {
		t.Fatal("tail prefetched before advancing — window not bounded")
	}
	// Follow the stream: accesses advance the SAB, pulling in the tail.
	for _, b := range blocks[1:9] {
		p.OnAccess(prefetch.AccessEvent{Block: b, TL: isa.TL0, Hit: true, WasPrefetched: true}, iss2)
	}
	if !iss2.got(blocks[9]) {
		t.Error("advancing through the stream should prefetch subsequent regions")
	}
	if p.Stats().Advances == 0 {
		t.Error("no SAB advances recorded")
	}
}

func TestPIFTrapLevelSeparation(t *testing.T) {
	p := New(DefaultConfig())
	iss := newFakeIssuer()
	// TL0 stream interrupted by TL1 handler blocks: with separation the
	// TL0 history must not contain handler blocks.
	p.OnRetire(trace.Record{PC: isa.Block(100).BlockBase(), TL: isa.TL0}, true, iss)
	p.OnRetire(trace.Record{PC: isa.Block(101).BlockBase(), TL: isa.TL0}, true, iss)
	p.OnRetire(trace.Record{PC: isa.Block(9000).BlockBase(), TL: isa.TL1}, true, iss)
	p.OnRetire(trace.Record{PC: isa.Block(9001).BlockBase(), TL: isa.TL1}, true, iss)
	p.OnRetire(trace.Record{PC: isa.Block(102).BlockBase(), TL: isa.TL0}, true, iss)
	p.OnRetire(trace.Record{PC: isa.Block(500).BlockBase(), TL: isa.TL0}, true, iss)
	p.Flush()

	h0 := p.HistoryFor(isa.TL0)
	for pos := uint64(0); pos < h0.Tail(); pos++ {
		r, ok := h0.At(pos)
		if ok && r.TL != isa.TL0 {
			t.Errorf("TL0 history contains %v", r)
		}
		if ok && r.Trigger >= 9000 {
			t.Errorf("handler block leaked into TL0 history: %v", r)
		}
	}
	h1 := p.HistoryFor(isa.TL1)
	if h1.Tail() == 0 {
		t.Error("TL1 history empty despite handler execution")
	}
	// Critically: 100..102 stay one region despite the interrupt split.
	r, ok := h0.At(0)
	if !ok || !r.Has(p.Config().Geometry, 102) {
		t.Errorf("interrupt fragmented the TL0 region: %v", r)
	}
}

func TestPIFMergedTrapLevels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeparateTrapLevels = false
	p := New(cfg)
	iss := newFakeIssuer()
	p.OnRetire(trace.Record{PC: isa.Block(100).BlockBase(), TL: isa.TL0}, true, iss)
	p.OnRetire(trace.Record{PC: isa.Block(9000).BlockBase(), TL: isa.TL1}, true, iss)
	p.OnRetire(trace.Record{PC: isa.Block(101).BlockBase(), TL: isa.TL0}, true, iss)
	p.Flush()
	// All records share one history; the interrupt fragments the region.
	h := p.HistoryFor(isa.TL0)
	if h.Tail() < 3 {
		t.Errorf("merged history has %d records, want 3 (fragmented)", h.Tail())
	}
}

func TestPIFLoopCompaction(t *testing.T) {
	p := New(DefaultConfig())
	iss := newFakeIssuer()
	// A tight loop spanning two regions, iterated 50 times, then exit.
	for i := 0; i < 50; i++ {
		retireBlocks(p, iss, isa.TL0, 100, 101, 300, 301)
	}
	retireBlocks(p, iss, isa.TL0, 900)
	p.Flush()
	st := p.Stats()
	// Without temporal compaction this would admit ~100 regions; with it,
	// only the first iteration plus the tail.
	if st.RegionsAdmitted > 6 {
		t.Errorf("temporal compactor admitted %d regions for a tight loop", st.RegionsAdmitted)
	}
	if st.RegionsEmitted < 100 {
		t.Errorf("spatial compactor emitted %d regions, want ~100", st.RegionsEmitted)
	}
}

func TestPIFSameBlockCollapse(t *testing.T) {
	p := New(DefaultConfig())
	iss := newFakeIssuer()
	// 10 instructions in one block → one block-grain event.
	for i := 0; i < 10; i++ {
		p.OnRetire(trace.Record{PC: isa.Addr(0x1000).Plus(i), TL: isa.TL0}, false, iss)
	}
	if p.Stats().RetiredBlocks != 1 {
		t.Errorf("RetiredBlocks = %d, want 1", p.Stats().RetiredBlocks)
	}
}

func TestPIFUntaggedTriggerNotIndexed(t *testing.T) {
	p := New(DefaultConfig())
	iss := newFakeIssuer()
	// All fetches served by prefetch (tagged=false): regions recorded in
	// history but not indexed.
	for _, b := range []isa.Block{100, 300, 500} {
		p.OnRetire(trace.Record{PC: b.BlockBase(), TL: isa.TL0}, false, iss)
	}
	p.Flush()
	st := p.Stats()
	if st.RegionsAdmitted == 0 {
		t.Fatal("regions should still enter history")
	}
	if st.IndexInserts != 0 {
		t.Errorf("untagged triggers inserted into index: %d", st.IndexInserts)
	}
	// No trigger possible.
	p.OnAccess(prefetch.AccessEvent{Block: 100, TL: isa.TL0, Hit: false}, iss)
	if p.Stats().Triggers != 0 {
		t.Error("unindexed stream should not trigger")
	}
}

func TestPIFConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.HistoryRegions = 0
	if bad.Validate() == nil {
		t.Error("zero history accepted")
	}
	bad = DefaultConfig()
	bad.NumSABs = 0
	if bad.Validate() == nil {
		t.Error("zero SABs accepted")
	}
	bad = DefaultConfig()
	bad.TemporalDepth = -1
	if bad.Validate() == nil {
		t.Error("negative temporal depth accepted")
	}
}

func TestPIFNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}
