package core

import (
	"repro/internal/isa"
	"repro/internal/prefetch"
)

// sab is one Stream Address Buffer (Section 4.3): it tracks a window of
// consecutive spatial regions read from the history buffer, issues
// prefetches for the blocks their bit vectors encode, and advances its
// history pointer as the core's fetch stream moves through the window.
type sab struct {
	regions  []Region // window, oldest first
	nextPos  uint64   // history position of the next region to load
	live     bool
	lru      uint64
	advances uint64 // demand fetches claimed by this stream
}

// sabFile manages the fixed set of SABs with LRU replacement.
type sabFile struct {
	sabs    []sab
	window  int
	initial int // regions issued eagerly at allocation
	geom    Geometry
	clock   uint64

	// onStreamEnd, when set, receives the advance count of every stream
	// that dies (SAB replaced) — the Figure 9 (left) measurement.
	onStreamEnd func(advances uint64)
}

func newSABFile(n, window int, g Geometry) *sabFile {
	if n < 1 {
		n = 1
	}
	if window < 1 {
		window = 1
	}
	// Issue only part of the window at allocation: a stream that is not
	// confirmed by subsequent demand fetches wastes at most `initial`
	// regions of prefetches; confirmed streams expand to the full window
	// on the first advance.
	initial := (window + 1) / 2
	if initial < 2 {
		initial = 2 // below two regions the window can never advance
	}
	if initial > window {
		initial = window
	}
	return &sabFile{sabs: make([]sab, n), window: window, initial: initial, geom: g}
}

// allocate opens a new stream at history position pos, replacing the LRU
// SAB, loading the initial window, and issuing its prefetches.
func (f *sabFile) allocate(pos uint64, hist *HistoryBuffer, iss prefetch.Issuer) {
	f.clock++
	victim := 0
	for i := range f.sabs {
		if !f.sabs[i].live {
			victim = i
			break
		}
		if f.sabs[i].lru < f.sabs[victim].lru {
			victim = i
		}
	}
	s := &f.sabs[victim]
	if s.live && f.onStreamEnd != nil {
		f.onStreamEnd(s.advances)
	}
	*s = sab{nextPos: pos, live: true, lru: f.clock}
	s.regions = s.regions[:0]
	for len(s.regions) < f.initial {
		if !f.loadNext(s, hist, iss) {
			break
		}
	}
	if len(s.regions) == 0 {
		s.live = false
	}
}

// loadNext reads one more region from the history into the SAB window and
// issues prefetches for its blocks; it returns false at the history end.
func (f *sabFile) loadNext(s *sab, hist *HistoryBuffer, iss prefetch.Issuer) bool {
	r, ok := hist.At(s.nextPos)
	if !ok {
		return false
	}
	s.nextPos++
	s.regions = append(s.regions, r)
	var blocks [64]isa.Block
	for _, b := range r.Blocks(f.geom, blocks[:0]) {
		if !iss.Contains(b) {
			iss.Prefetch(b)
		}
	}
	return true
}

// advance reacts to a demand fetch of block b: if b falls within an active
// SAB's window, the window slides so the region containing b becomes the
// head, loading (and prefetching) subsequent regions. It reports whether
// any SAB claimed the access.
func (f *sabFile) advance(b isa.Block, hist *HistoryBuffer, iss prefetch.Issuer) bool {
	f.clock++
	for i := range f.sabs {
		s := &f.sabs[i]
		if !s.live {
			continue
		}
		for ri := range s.regions {
			if !s.regions[ri].Has(f.geom, b) {
				continue
			}
			// Retire the regions before the one that matched and refill
			// the window from the history buffer.
			if ri > 0 {
				s.regions = s.regions[:copy(s.regions, s.regions[ri:])]
			}
			for len(s.regions) < f.window {
				if !f.loadNext(s, hist, iss) {
					break
				}
			}
			// Re-probe the next region: a block prefetched earlier may
			// have been evicted before use under cache pressure; the SAB
			// reissues it while the stream is still ahead of the demand.
			if len(s.regions) > 1 {
				var blocks [64]isa.Block
				for _, nb := range s.regions[1].Blocks(f.geom, blocks[:0]) {
					if !iss.Contains(nb) {
						iss.Prefetch(nb)
					}
				}
			}
			s.lru = f.clock
			s.advances++
			return true
		}
	}
	return false
}

// covered reports whether block b is inside any live SAB window (i.e. the
// stream engine considers it already predicted).
func (f *sabFile) covered(b isa.Block) bool {
	for i := range f.sabs {
		s := &f.sabs[i]
		if !s.live {
			continue
		}
		for ri := range s.regions {
			if s.regions[ri].Has(f.geom, b) {
				return true
			}
		}
	}
	return false
}

// liveCount returns the number of active SABs (observability for tests).
func (f *sabFile) liveCount() int {
	n := 0
	for i := range f.sabs {
		if f.sabs[i].live {
			n++
		}
	}
	return n
}
