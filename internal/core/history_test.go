package core

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestHistoryBufferAppendAt(t *testing.T) {
	h := NewHistoryBuffer(4)
	g := DefaultGeometry()
	positions := make([]uint64, 6)
	for i := 0; i < 6; i++ {
		positions[i] = h.Append(NewRegion(g, isa.Block(i), isa.TL0, false))
	}
	// Oldest two are overwritten.
	for i := 0; i < 2; i++ {
		if _, ok := h.At(positions[i]); ok {
			t.Errorf("position %d should be overwritten", i)
		}
	}
	for i := 2; i < 6; i++ {
		r, ok := h.At(positions[i])
		if !ok || r.Trigger != isa.Block(i) {
			t.Errorf("position %d: %v %v", i, r, ok)
		}
	}
	if _, ok := h.At(h.Tail()); ok {
		t.Error("future position should be invalid")
	}
}

func TestHistoryBufferPositionsMonotone(t *testing.T) {
	h := NewHistoryBuffer(2)
	g := DefaultGeometry()
	var last uint64
	for i := 0; i < 10; i++ {
		pos := h.Append(NewRegion(g, isa.Block(i), isa.TL0, false))
		if i > 0 && pos != last+1 {
			t.Fatalf("positions not monotone: %d after %d", pos, last)
		}
		last = pos
	}
}

func TestHistoryBufferZeroCap(t *testing.T) {
	h := NewHistoryBuffer(0)
	if h.Cap() != 1 {
		t.Errorf("zero capacity normalized to %d, want 1", h.Cap())
	}
}

func TestHistoryRoundTripProperty(t *testing.T) {
	f := func(capRaw uint8, n uint8) bool {
		capacity := int(capRaw%32) + 1
		h := NewHistoryBuffer(capacity)
		g := DefaultGeometry()
		var positions []uint64
		for i := 0; i < int(n); i++ {
			positions = append(positions, h.Append(NewRegion(g, isa.Block(i), isa.TL0, false)))
		}
		for i, pos := range positions {
			r, ok := h.At(pos)
			retained := int(n)-i <= capacity
			if retained != ok {
				return false
			}
			if ok && r.Trigger != isa.Block(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexTablePutGet(t *testing.T) {
	idx := NewIndexTable(8)
	idx.Put(100, 5)
	idx.Put(200, 9)
	if pos, ok := idx.Get(100); !ok || pos != 5 {
		t.Errorf("Get(100) = %d,%v", pos, ok)
	}
	if pos, ok := idx.Get(200); !ok || pos != 9 {
		t.Errorf("Get(200) = %d,%v", pos, ok)
	}
	if _, ok := idx.Get(300); ok {
		t.Error("missing key reported present")
	}
	// Update replaces the position.
	idx.Put(100, 42)
	if pos, _ := idx.Get(100); pos != 42 {
		t.Errorf("updated Get(100) = %d, want 42", pos)
	}
	if idx.Len() != 2 {
		t.Errorf("Len = %d, want 2", idx.Len())
	}
}

func TestIndexTableLRUEviction(t *testing.T) {
	idx := NewIndexTable(2)
	idx.Put(1, 10)
	idx.Put(2, 20)
	idx.Get(1)     // 1 is now MRU
	idx.Put(3, 30) // evicts 2
	if _, ok := idx.Get(2); ok {
		t.Error("LRU entry 2 should have been evicted")
	}
	if _, ok := idx.Get(1); !ok {
		t.Error("recently used entry 1 should survive")
	}
	if _, ok := idx.Get(3); !ok {
		t.Error("new entry 3 should be present")
	}
}

func TestIndexTableCapacityOne(t *testing.T) {
	idx := NewIndexTable(1)
	idx.Put(1, 10)
	idx.Put(2, 20)
	if _, ok := idx.Get(1); ok {
		t.Error("capacity-1 table should have evicted 1")
	}
	if pos, ok := idx.Get(2); !ok || pos != 20 {
		t.Errorf("Get(2) = %d,%v", pos, ok)
	}
}

func TestIndexTableNeverExceedsCap(t *testing.T) {
	f := func(keys []uint16) bool {
		idx := NewIndexTable(16)
		for i, k := range keys {
			idx.Put(isa.Block(k), uint64(i))
		}
		return idx.Len() <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexTableLatestWins(t *testing.T) {
	f := func(seq []uint8) bool {
		idx := NewIndexTable(1 << 16) // effectively unbounded here
		want := map[isa.Block]uint64{}
		for i, k := range seq {
			idx.Put(isa.Block(k), uint64(i))
			want[isa.Block(k)] = uint64(i)
		}
		for k, pos := range want {
			got, ok := idx.Get(k)
			if !ok || got != pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
