package core

import "repro/internal/isa"

// HistoryBuffer is the circular FIFO of spatial region records
// (Section 4.2). Positions are absolute (monotonically increasing), so a
// stale index entry whose record has been overwritten is detectable.
type HistoryBuffer struct {
	buf  []Region
	tail uint64 // absolute position of the next append
}

// NewHistoryBuffer builds a buffer holding capacity regions. A capacity of
// 0 is normalized to 1.
func NewHistoryBuffer(capacity int) *HistoryBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &HistoryBuffer{buf: make([]Region, capacity)}
}

// Cap returns the buffer capacity in regions.
func (h *HistoryBuffer) Cap() int { return len(h.buf) }

// Tail returns the absolute position of the next append.
func (h *HistoryBuffer) Tail() uint64 { return h.tail }

// Append stores a region and returns its absolute position.
func (h *HistoryBuffer) Append(r Region) uint64 {
	pos := h.tail
	h.buf[pos%uint64(len(h.buf))] = r
	h.tail++
	return pos
}

// At returns the region at absolute position pos; ok is false when the
// position has been overwritten (older than capacity) or not yet written.
func (h *HistoryBuffer) At(pos uint64) (Region, bool) {
	if pos >= h.tail || h.tail-pos > uint64(len(h.buf)) {
		return Region{}, false
	}
	return h.buf[pos%uint64(len(h.buf))], true
}

// indexEntry is one index-table mapping.
type indexEntry struct {
	trigger isa.Block
	pos     uint64
	prev    int
	next    int
	valid   bool
}

// IndexTable maps a trigger block to the history position of its most
// recent record (Section 4.2). It is a bounded cache-like structure with
// LRU replacement, implemented as a map plus an intrusive doubly-linked
// LRU list over a fixed entry pool.
type IndexTable struct {
	entries []indexEntry
	lookup  map[isa.Block]int
	head    int // MRU
	tailIdx int // LRU
	used    int
}

// NewIndexTable builds an index with the given entry capacity (minimum 1).
func NewIndexTable(capacity int) *IndexTable {
	if capacity < 1 {
		capacity = 1
	}
	t := &IndexTable{
		entries: make([]indexEntry, capacity),
		lookup:  make(map[isa.Block]int, capacity),
		head:    -1,
		tailIdx: -1,
	}
	return t
}

// Cap returns the entry capacity.
func (t *IndexTable) Cap() int { return len(t.entries) }

// Len returns the number of live entries.
func (t *IndexTable) Len() int { return t.used }

// unlink removes entry i from the LRU list.
func (t *IndexTable) unlink(i int) {
	e := &t.entries[i]
	if e.prev >= 0 {
		t.entries[e.prev].next = e.next
	} else {
		t.head = e.next
	}
	if e.next >= 0 {
		t.entries[e.next].prev = e.prev
	} else {
		t.tailIdx = e.prev
	}
	e.prev, e.next = -1, -1
}

// pushFront inserts entry i at the MRU position.
func (t *IndexTable) pushFront(i int) {
	e := &t.entries[i]
	e.prev = -1
	e.next = t.head
	if t.head >= 0 {
		t.entries[t.head].prev = i
	}
	t.head = i
	if t.tailIdx < 0 {
		t.tailIdx = i
	}
}

// Put maps trigger to pos, updating an existing entry or evicting the LRU.
func (t *IndexTable) Put(trigger isa.Block, pos uint64) {
	if i, ok := t.lookup[trigger]; ok {
		t.entries[i].pos = pos
		t.unlink(i)
		t.pushFront(i)
		return
	}
	var i int
	if t.used < len(t.entries) {
		i = t.used
		t.used++
	} else {
		i = t.tailIdx
		delete(t.lookup, t.entries[i].trigger)
		t.unlink(i)
	}
	t.entries[i] = indexEntry{trigger: trigger, pos: pos, prev: -1, next: -1, valid: true}
	t.lookup[trigger] = i
	t.pushFront(i)
}

// Get returns the most recent history position recorded for trigger and
// promotes the entry to MRU.
func (t *IndexTable) Get(trigger isa.Block) (uint64, bool) {
	i, ok := t.lookup[trigger]
	if !ok {
		return 0, false
	}
	t.unlink(i)
	t.pushFront(i)
	return t.entries[i].pos, true
}
