// Package core implements Proactive Instruction Fetch — the paper's
// contribution: spatial/temporal compaction of the retire-order instruction
// stream into a history buffer, an index of stream heads, and stream
// address buffers that replay recorded streams to prefetch the L1-I.
package core

import (
	"fmt"

	"repro/internal/isa"
)

// Geometry describes a spatial region: Prec blocks preceding the trigger
// and Succ blocks succeeding it, Prec+1+Succ blocks in total (the paper's
// configuration is 2 preceding + trigger + 5 succeeding = 8 blocks).
type Geometry struct {
	Prec int
	Succ int
}

// DefaultGeometry is the paper's 8-block region (Section 5.2).
func DefaultGeometry() Geometry { return Geometry{Prec: 2, Succ: 5} }

// Validate rejects degenerate geometries.
func (g Geometry) Validate() error {
	if g.Prec < 0 || g.Succ < 0 {
		return fmt.Errorf("core: negative region geometry %+v", g)
	}
	if g.Size() > 64 {
		return fmt.Errorf("core: region size %d exceeds 64-bit vector", g.Size())
	}
	if g.Size() < 1 {
		return fmt.Errorf("core: empty region")
	}
	return nil
}

// Size returns the total number of blocks covered by a region.
func (g Geometry) Size() int { return g.Prec + 1 + g.Succ }

// Contains reports whether block b falls inside the region anchored at
// trigger under this geometry.
func (g Geometry) Contains(trigger, b isa.Block) bool {
	d := trigger.Distance(b)
	return d >= -g.Prec && d <= g.Succ
}

// BitFor returns the bit-vector position for block b in a region anchored
// at trigger: positions 0..Prec-1 are the preceding blocks (most distant
// first), position Prec is the trigger, Prec+1.. are the succeeding blocks.
func (g Geometry) BitFor(trigger, b isa.Block) (int, bool) {
	d := trigger.Distance(b)
	if d < -g.Prec || d > g.Succ {
		return 0, false
	}
	return d + g.Prec, true
}

// Region is one spatial region record: the unit stored in the history
// buffer. Bits holds one bit per block of the region (see Geometry.BitFor);
// the trigger bit is always set.
type Region struct {
	// Trigger is the block of the first access in the region.
	Trigger isa.Block
	// Bits is the accessed-block bit vector.
	Bits uint64
	// TL is the trap level the region was recorded at.
	TL isa.TrapLevel
	// TriggerTagged records whether the trigger instruction's fetch was
	// not served by a prefetch; only such regions enter the index table.
	TriggerTagged bool
}

// NewRegion starts a region at trigger with only the trigger bit set.
func NewRegion(g Geometry, trigger isa.Block, tl isa.TrapLevel, tagged bool) Region {
	return Region{
		Trigger:       trigger,
		Bits:          1 << uint(g.Prec),
		TL:            tl,
		TriggerTagged: tagged,
	}
}

// Set marks block b accessed; it reports whether b was inside the region.
func (r *Region) Set(g Geometry, b isa.Block) bool {
	bit, ok := g.BitFor(r.Trigger, b)
	if !ok {
		return false
	}
	r.Bits |= 1 << uint(bit)
	return true
}

// Has reports whether block b is marked accessed.
func (r Region) Has(g Geometry, b isa.Block) bool {
	bit, ok := g.BitFor(r.Trigger, b)
	return ok && r.Bits&(1<<uint(bit)) != 0
}

// SubsetOf reports whether every block of r is also in s (same trigger).
// It is the temporal compactor's match condition.
func (r Region) SubsetOf(s Region) bool {
	return r.Trigger == s.Trigger && r.Bits&^s.Bits == 0
}

// PopCount returns the number of accessed blocks in the region.
func (r Region) PopCount() int {
	n := 0
	for v := r.Bits; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Blocks appends the accessed block addresses in left-to-right bit order
// (preceding blocks, trigger, then succeeding blocks) — the order the SAB
// issues prefetches, which typically matches the core's demand order.
func (r Region) Blocks(g Geometry, dst []isa.Block) []isa.Block {
	for bit := 0; bit < g.Size(); bit++ {
		if r.Bits&(1<<uint(bit)) != 0 {
			dst = append(dst, r.Trigger.Add(bit-g.Prec))
		}
	}
	return dst
}

// SeqGroups returns the number of maximal runs of consecutive set bits —
// 1 means the accessed blocks are contiguous; ≥2 means the region was
// accessed discontinuously (Figure 3 right counts these).
func (r Region) SeqGroups() int {
	groups := 0
	prev := false
	for v, i := r.Bits, 0; i < 64; i++ {
		cur := v&(1<<uint(i)) != 0
		if cur && !prev {
			groups++
		}
		prev = cur
	}
	return groups
}

// String renders the region for diagnostics.
func (r Region) String() string {
	return fmt.Sprintf("region{%v bits=%#x %v}", r.Trigger, r.Bits, r.TL)
}
