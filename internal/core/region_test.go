package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if (Geometry{Prec: -1, Succ: 5}).Validate() == nil {
		t.Error("negative Prec accepted")
	}
	if (Geometry{Prec: 30, Succ: 40}).Validate() == nil {
		t.Error("oversized region accepted")
	}
}

func TestGeometrySize(t *testing.T) {
	g := DefaultGeometry()
	if g.Size() != 8 {
		t.Errorf("paper geometry size = %d, want 8", g.Size())
	}
}

func TestGeometryContains(t *testing.T) {
	g := Geometry{Prec: 2, Succ: 5}
	trig := isa.Block(100)
	for d := -4; d <= 8; d++ {
		want := d >= -2 && d <= 5
		if got := g.Contains(trig, trig.Add(d)); got != want {
			t.Errorf("Contains(d=%d) = %v, want %v", d, got, want)
		}
	}
}

func TestBitForRoundTrip(t *testing.T) {
	g := Geometry{Prec: 2, Succ: 5}
	trig := isa.Block(100)
	seen := map[int]bool{}
	for d := -2; d <= 5; d++ {
		bit, ok := g.BitFor(trig, trig.Add(d))
		if !ok {
			t.Fatalf("BitFor(d=%d) rejected", d)
		}
		if bit < 0 || bit >= g.Size() || seen[bit] {
			t.Fatalf("BitFor(d=%d) = %d invalid or duplicate", d, bit)
		}
		seen[bit] = true
	}
	if _, ok := g.BitFor(trig, trig.Add(-3)); ok {
		t.Error("out-of-region block accepted")
	}
}

func TestNewRegionTriggerBit(t *testing.T) {
	g := DefaultGeometry()
	r := NewRegion(g, 50, isa.TL0, true)
	if !r.Has(g, 50) {
		t.Error("trigger block not marked")
	}
	if r.PopCount() != 1 {
		t.Errorf("fresh region popcount = %d, want 1", r.PopCount())
	}
	if !r.TriggerTagged {
		t.Error("tag lost")
	}
}

func TestRegionSetHas(t *testing.T) {
	g := DefaultGeometry()
	r := NewRegion(g, 100, isa.TL0, false)
	if !r.Set(g, 101) || !r.Set(g, 98) || !r.Set(g, 105) {
		t.Fatal("in-region blocks rejected")
	}
	if r.Set(g, 97) || r.Set(g, 106) {
		t.Fatal("out-of-region blocks accepted")
	}
	for _, b := range []isa.Block{98, 100, 101, 105} {
		if !r.Has(g, b) {
			t.Errorf("block %v should be set", b)
		}
	}
	if r.Has(g, 99) || r.Has(g, 102) {
		t.Error("unset blocks reported")
	}
	if r.PopCount() != 4 {
		t.Errorf("popcount = %d, want 4", r.PopCount())
	}
}

func TestRegionBlocksOrdered(t *testing.T) {
	g := DefaultGeometry()
	r := NewRegion(g, 100, isa.TL0, false)
	r.Set(g, 98)
	r.Set(g, 103)
	blocks := r.Blocks(g, nil)
	want := []isa.Block{98, 100, 103}
	if len(blocks) != len(want) {
		t.Fatalf("Blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Errorf("Blocks[%d] = %v, want %v", i, blocks[i], want[i])
		}
	}
}

func TestBlocksMatchesHasProperty(t *testing.T) {
	g := DefaultGeometry()
	f := func(trigRaw uint32, mask uint8) bool {
		trig := isa.Block(trigRaw) + 10
		r := NewRegion(g, trig, isa.TL0, false)
		for d := -2; d <= 5; d++ {
			if mask&(1<<uint(d+2)) != 0 {
				r.Set(g, trig.Add(d))
			}
		}
		blocks := r.Blocks(g, nil)
		if len(blocks) != r.PopCount() {
			return false
		}
		for _, b := range blocks {
			if !r.Has(g, b) {
				return false
			}
		}
		// Ordered ascending.
		for i := 1; i < len(blocks); i++ {
			if blocks[i] <= blocks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetOf(t *testing.T) {
	g := DefaultGeometry()
	big := NewRegion(g, 100, isa.TL0, false)
	big.Set(g, 101)
	big.Set(g, 102)
	small := NewRegion(g, 100, isa.TL0, false)
	small.Set(g, 101)
	if !small.SubsetOf(big) {
		t.Error("subset not detected")
	}
	if big.SubsetOf(small) {
		t.Error("superset wrongly detected as subset")
	}
	other := NewRegion(g, 200, isa.TL0, false)
	if other.SubsetOf(big) {
		t.Error("different trigger should never match")
	}
	if !big.SubsetOf(big) {
		t.Error("region should be subset of itself")
	}
}

func TestSeqGroups(t *testing.T) {
	g := DefaultGeometry()
	r := NewRegion(g, 100, isa.TL0, false)
	if r.SeqGroups() != 1 {
		t.Errorf("single bit groups = %d, want 1", r.SeqGroups())
	}
	r.Set(g, 101)
	if r.SeqGroups() != 1 {
		t.Errorf("contiguous groups = %d, want 1", r.SeqGroups())
	}
	r.Set(g, 104) // gap at 102,103
	if r.SeqGroups() != 2 {
		t.Errorf("discontinuous groups = %d, want 2", r.SeqGroups())
	}
	r.Set(g, 98) // another group before the trigger
	if r.SeqGroups() != 3 {
		t.Errorf("groups = %d, want 3", r.SeqGroups())
	}
}

func TestSeqGroupsRandomized(t *testing.T) {
	// SeqGroups must equal a straightforward scan over bit runs.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		r := Region{Bits: rng.Uint64() & 0xff}
		if r.Bits == 0 {
			continue
		}
		want, prev := 0, false
		for k := 0; k < 8; k++ {
			cur := r.Bits&(1<<uint(k)) != 0
			if cur && !prev {
				want++
			}
			prev = cur
		}
		if got := r.SeqGroups(); got != want {
			t.Fatalf("SeqGroups(%#x) = %d, want %d", r.Bits, got, want)
		}
	}
}

func TestRegionString(t *testing.T) {
	r := NewRegion(DefaultGeometry(), 5, isa.TL1, false)
	if r.String() == "" {
		t.Error("empty String()")
	}
}
