package sweep

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// benchSpec is a 6x8x5 = 240-cell spec shaped like the real figure
// sweeps (workload x history x engine).
func benchSpec() Spec {
	var wls []workload.Profile
	for i := 0; i < 6; i++ {
		wls = append(wls, tinyProfile(fmt.Sprintf("Bench %d", i), int64(i+1)))
	}
	hist := Axis{Name: "history"}
	for i := 0; i < 8; i++ {
		k := 1 << (10 + i)
		hist.Values = append(hist.Values, Value{
			Key:   fmt.Sprintf("%dk", k>>10),
			Apply: func(s *Settings) { s.Params["history"] = float64(k) },
		})
	}
	return Spec{
		Name: "bench",
		Base: tinySim(),
		Axes: []Axis{
			WorkloadAxis("workload", wls),
			hist,
			EngineAxis("engine", "none", "nextline", "tifs", "pif", "pif-nosep"),
		},
	}
}

// BenchmarkSweepExpand measures pure grid expansion: keying, point
// construction, and settings application for a 240-cell design space.
// Compare per-cell cost against BenchmarkSweepRun to confirm expansion is
// negligible relative to simulation.
func BenchmarkSweepExpand(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := spec.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if g.Size() != 240 {
			b.Fatalf("size = %d", g.Size())
		}
	}
}

// BenchmarkSweepRun measures an executed grid end to end (expansion +
// job construction + pool fan-out + tiny simulations): a 2x2 grid of
// 20K-instruction cells. Expansion's share of this time is the headroom
// argument for declaring sweeps instead of hand-rolling loops.
func BenchmarkSweepRun(b *testing.B) {
	spec := Spec{
		Name: "bench-run",
		Base: tinySim(),
		Axes: []Axis{
			WorkloadAxis("workload", []workload.Profile{tinyProfile("Bench A", 1), tinyProfile("Bench B", 2)}),
			EngineAxis("engine", "none", "pif"),
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := Run(PoolEngine{Workers: 4}, spec)
		if err != nil {
			b.Fatal(err)
		}
		if g.Results[0].Sim.Instructions == 0 {
			b.Fatal("no simulation ran")
		}
	}
}
