package sweep

import (
	"context"
	"encoding/json"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSourceAxis locks the source axis kind: a (workload × source) grid
// whose source axis mixes live execution and trace-store replay must
// wire each cell's source into its job, resolve lazily against the
// cell's final settings regardless of axis order, and produce identical
// results on the live and replay cells.
func TestSourceAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	wl := tinyProfile("Tiny Src", 7)
	cfg := tinySim()
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	it := workload.NewIterator(prog, cfg.WarmupInstrs, cfg.MeasureInstrs)
	if _, err := trace.BuildStore(dir, wl.Name, 1<<12, it, cfg.WarmupInstrs, cfg.MeasureInstrs); err != nil {
		t.Fatal(err)
	}
	it.Close()

	// The source axis precedes the workload axis on purpose: the store
	// choice defers reading the settings until open time, so axis order
	// must not matter.
	spec := Spec{
		Name:       "src",
		Base:       cfg,
		BaseEngine: prefetch.Spec{Name: "nextline"},
		Axes: []Axis{
			SourceAxis("source", []SourceChoice{
				{Key: "live"},
				{Key: "store", New: func(s *Settings) sim.Source {
					return sim.SourceFunc(func(ctx context.Context) (trace.Iterator, sim.SourceInfo, error) {
						if s.Workload.Name != wl.Name {
							t.Errorf("source resolved before workload applied: %q", s.Workload.Name)
						}
						return sim.StoreSource(dir).Open(ctx)
					})
				}},
			}),
			WorkloadAxis("workload", []workload.Profile{wl}),
		},
	}
	g, err := Run(PoolEngine{Workers: 2}, spec)
	if err != nil {
		t.Fatal(err)
	}
	liveCell, err := g.At("source", "live", "workload", KeyOf(wl.Name))
	if err != nil {
		t.Fatal(err)
	}
	if liveCell.Settings.Source != nil {
		t.Error("live cell carries a source")
	}
	storeCell, err := g.At("source", "store", "workload", KeyOf(wl.Name))
	if err != nil {
		t.Fatal(err)
	}
	if storeCell.Settings.Source == nil {
		t.Fatal("store cell has no source")
	}
	live, err := json.Marshal(g.Results[liveCell.Index].Sim)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := json.Marshal(g.Results[storeCell.Index].Sim)
	if err != nil {
		t.Fatal(err)
	}
	if string(live) != string(replay) {
		t.Errorf("store-source cell differs from live cell:\nlive:  %s\nstore: %s", live, replay)
	}
}

// countingBackend wraps runner's local backend, counting submissions —
// the stand-in for a custom Backend implementation.
type countingBackend struct {
	*runner.LocalBackend
	submits atomic.Int32
}

func (b *countingBackend) Submit(ctx context.Context, idx int, j runner.Job) error {
	b.submits.Add(1)
	return b.LocalBackend.Submit(ctx, idx, j)
}

// TestEngineBackendOption proves sweep.Run executes through whatever
// backend the engine selects: a PoolEngine with an explicit Backend
// routes every cell through it, and the grid's results match a default
// in-process run byte for byte.
func TestEngineBackendOption(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	b := &countingBackend{LocalBackend: runner.NewLocalBackend(2)}
	defer b.Close()
	spec := testSpec()
	g, err := Run(PoolEngine{Backend: b}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if int(b.submits.Load()) != g.Size() {
		t.Errorf("backend saw %d submits, want %d", b.submits.Load(), g.Size())
	}
	ref, err := Run(PoolEngine{Workers: 2}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Results {
		if g.Results[i].Sim != ref.Results[i].Sim {
			t.Errorf("cell %d: custom-backend result differs from default run", i)
		}
	}
}
