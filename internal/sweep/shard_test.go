package sweep

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// recordSweepStore records warmup+measure records of wl into a store.
func recordSweepStore(t *testing.T, dir string, wl workload.Profile, cfg sim.Config) {
	t.Helper()
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		t.Fatal(err)
	}
	it := workload.NewIterator(prog, cfg.WarmupInstrs, cfg.MeasureInstrs)
	defer it.Close()
	if _, err := trace.BuildStore(dir, wl.Name, 1<<12, it, cfg.WarmupInstrs, cfg.MeasureInstrs); err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
}

// shardSpec is a two-cell replay sweep over one recorded store.
func shardSpec(wl workload.Profile, dir string) Spec {
	return Spec{
		Name: "sh",
		Base: tinySim(),
		Axes: []Axis{
			WorkloadAxis("workload", []workload.Profile{wl}),
			EngineAxis("engine", "pif", "nextline"),
			SourceAxis("source", []SourceChoice{{
				Key: "store",
				New: func(s *Settings) sim.Source { return sim.StoreSource(dir) },
			}}),
		},
	}
}

// TestShardedSweepExactParity is the sweep-level parity bar: a grid run
// with BaseShards > 1 must produce per-cell sim.Results bit-identical
// to the unsharded grid — keys, labels, and every metric including
// timing — which is what keeps `experiments diff` at exit 0 across
// sharded and unsharded runs.
func TestShardedSweepExactParity(t *testing.T) {
	wl := tinyProfile("Tiny Sh", 3)
	cfg := tinySim()
	dir := filepath.Join(t.TempDir(), "store")
	recordSweepStore(t, dir, wl, cfg)

	spec := shardSpec(wl, dir)
	plain, err := Run(PoolEngine{Workers: 4}, spec)
	if err != nil {
		t.Fatalf("unsharded run: %v", err)
	}
	spec.BaseShards = 3
	sharded, err := Run(PoolEngine{Workers: 4}, spec)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if len(plain.Results) != len(sharded.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(plain.Results), len(sharded.Results))
	}
	for i := range plain.Results {
		a, b := plain.Results[i], sharded.Results[i]
		if plain.Cells[i].Key != sharded.Cells[i].Key {
			t.Errorf("cell %d key %q vs %q", i, plain.Cells[i].Key, sharded.Cells[i].Key)
		}
		if b.Index != i || b.Label != plain.Cells[i].Label {
			t.Errorf("cell %d folded identity: index %d label %q", i, b.Index, b.Label)
		}
		if !reflect.DeepEqual(a.Sim, b.Sim) {
			t.Errorf("cell %s: sharded result diverges\nunsharded: %+v\nsharded:   %+v",
				plain.Cells[i].Key, a.Sim, b.Sim)
		}
	}

	// The persisted per-job forms must match too (Data is what
	// experiments diff compares).
	ja, err := plain.ReportJobs()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := sharded.ReportJobs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ja {
		if ja[i].Key != jb[i].Key || string(ja[i].Data) != string(jb[i].Data) {
			t.Errorf("job %s: persisted data diverges", ja[i].Key)
		}
	}
}

// TestShardedSweepApproximate exercises the throughput mode: results
// stay close to unsharded but the grid still executes and folds.
func TestShardedSweepApproximate(t *testing.T) {
	wl := tinyProfile("Tiny ShA", 4)
	cfg := tinySim()
	dir := filepath.Join(t.TempDir(), "store")
	recordSweepStore(t, dir, wl, cfg)

	spec := shardSpec(wl, dir)
	spec.BaseShards = 4
	spec.BaseShardApprox = true
	g, err := Run(PoolEngine{Workers: 4}, spec)
	if err != nil {
		t.Fatalf("approx sharded run: %v", err)
	}
	for i, r := range g.Results {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", g.Cells[i].Key, r.Err)
		}
		if r.Sim.Instructions != cfg.MeasureInstrs {
			t.Errorf("cell %s: instructions = %d, want %d", g.Cells[i].Key, r.Sim.Instructions, cfg.MeasureInstrs)
		}
	}
}

// TestShardsAxis sweeps the shard count itself: every cell of a
// shards-axis grid must agree exactly (exact mode), and the axis
// extends cell keys.
func TestShardsAxis(t *testing.T) {
	wl := tinyProfile("Tiny ShX", 5)
	cfg := tinySim()
	dir := filepath.Join(t.TempDir(), "store")
	recordSweepStore(t, dir, wl, cfg)

	spec := Spec{
		Name: "shx",
		Base: cfg,
		Axes: []Axis{
			WorkloadAxis("workload", []workload.Profile{wl}),
			EngineAxis("engine", "pif"),
			SourceAxis("source", []SourceChoice{{
				Key: "store",
				New: func(s *Settings) sim.Source { return sim.StoreSource(dir) },
			}}),
			ShardsAxis("shards", []int{1, 2, 4}),
		},
	}
	g, err := Run(PoolEngine{Workers: 4}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("size = %d, want 3", g.Size())
	}
	if !strings.HasSuffix(g.Cells[1].Key, "_shards-2") {
		t.Errorf("cell 1 key = %q, want _shards-2 suffix", g.Cells[1].Key)
	}
	base := g.Results[0].Sim
	for i := 1; i < g.Size(); i++ {
		if !reflect.DeepEqual(g.Results[i].Sim, base) {
			t.Errorf("cell %s diverges from unsharded:\n%+v\nvs\n%+v", g.Cells[i].Key, g.Results[i].Sim, base)
		}
	}
}

// TestShardedSweepErrors pins the failure modes: sharded cells refuse
// non-sliceable sources, Grid.Jobs refuses sharded cells, and a shard
// count exceeding the measured interval fails at planning.
func TestShardedSweepErrors(t *testing.T) {
	wl := tinyProfile("Tiny ShE", 6)
	spec := Spec{
		Name:       "she",
		Base:       tinySim(),
		BaseShards: 2,
		Axes: []Axis{
			WorkloadAxis("workload", []workload.Profile{wl}),
			EngineAxis("engine", "pif"),
		},
	}
	// Live cells (no source) cannot shard.
	if _, err := Run(PoolEngine{Workers: 2}, spec); err == nil || !strings.Contains(err.Error(), "not sliceable") {
		t.Errorf("live sharded run error = %v, want not-sliceable", err)
	}
	g, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Jobs(); err == nil || !strings.Contains(err.Error(), "sweep.Run") {
		t.Errorf("Jobs on sharded grid = %v, want run-through-Run error", err)
	}

	dir := filepath.Join(t.TempDir(), "store")
	recordSweepStore(t, dir, wl, tinySim())
	spec.Axes = append(spec.Axes, SourceAxis("source", []SourceChoice{{
		Key: "store",
		New: func(s *Settings) sim.Source { return sim.StoreSource(dir) },
	}}))
	spec.BaseShards = int(tinySim().MeasureInstrs) + 1
	if _, err := Run(PoolEngine{Workers: 2}, spec); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Errorf("oversharded run error = %v, want shard-count error", err)
	}
}
