// Sharded sweep-cell execution: cells whose Settings request Shards > 1
// are planned into per-window shard jobs (sim.SplitReplay over the
// cell's sliceable source) and their results stitched back into one
// per-cell Result (sim.MergeShardResults). Planning and stitching live
// here; the flat job batch still executes through whatever Engine the
// caller supplies, so sharded cells distribute across local workers and
// remote backends alike. See DESIGN.md §13.

package sweep

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/sim"
)

// runPlan is a grid's execution layout: the flat job batch plus, per
// cell, the job slots that belong to it.
type runPlan struct {
	jobs  []runner.Job
	cells []cellSlots
}

// cellSlots maps one cell to its job indices: a single slot for an
// unsharded cell, one per shard otherwise.
type cellSlots struct {
	slots   []int
	sharded bool
}

// plan lays out the grid's jobs, expanding sharded cells. Shard jobs
// inherit everything from the cell job except the warmup/offset/measure
// split and the source, which are per-plan slices of the cell's source;
// their labels carry a "[shard k/K]" suffix for progress output.
func (g *Grid) plan() (*runPlan, error) {
	p := &runPlan{cells: make([]cellSlots, len(g.Cells))}
	for i := range g.Cells {
		c := &g.Cells[i]
		base, err := g.cellJob(c)
		if err != nil {
			return nil, err
		}
		if c.Settings.Shards <= 1 {
			p.cells[i] = cellSlots{slots: []int{len(p.jobs)}}
			p.jobs = append(p.jobs, base)
			continue
		}
		slicer, ok := c.Settings.Source.(sim.Slicer)
		if !ok {
			return nil, fmt.Errorf("sweep %s: cell %s requests %d shards but its source (%T) is not sliceable; sharded cells need a store or slice source",
				g.Spec.Name, c.Key, c.Settings.Shards, c.Settings.Source)
		}
		plans, err := sim.SplitReplay(c.Settings.Sim, c.Settings.Shards, !c.Settings.ShardApprox)
		if err != nil {
			return nil, fmt.Errorf("sweep %s: cell %s: %w", g.Spec.Name, c.Key, err)
		}
		slots := make([]int, len(plans))
		for k, sp := range plans {
			src, err := slicer.Slice(sp.Window)
			if err != nil {
				return nil, fmt.Errorf("sweep %s: cell %s shard %d: %w", g.Spec.Name, c.Key, k, err)
			}
			j := base
			j.Label = fmt.Sprintf("%s [shard %d/%d]", base.Label, k+1, len(plans))
			j.Config = sp.Config(c.Settings.Sim)
			j.Source = src
			slots[k] = len(p.jobs)
			p.jobs = append(p.jobs, j)
		}
		p.cells[i] = cellSlots{slots: slots, sharded: true}
	}
	return p, nil
}

// fold collapses the flat job results back to one Result per cell,
// merging shard results in shard order. A cell whose shards were not all
// executed (the engine bailed early) or whose merge fails carries the
// failure in its Err; per-cell results are always indexed and labeled as
// the cell, so downstream consumers (ReportJobs, Summary, projections)
// see sharded and unsharded grids identically.
func (p *runPlan) fold(g *Grid, results []runner.Result) []runner.Result {
	out := make([]runner.Result, len(g.Cells))
	for i := range g.Cells {
		c := &g.Cells[i]
		cp := p.cells[i]
		out[i] = runner.Result{Index: c.Index, Label: c.Label}
		missing := false
		for _, s := range cp.slots {
			if s >= len(results) {
				missing = true
			}
		}
		if missing {
			out[i].Err = fmt.Errorf("sweep %s: cell %s: run ended before all of its jobs completed", g.Spec.Name, c.Key)
			continue
		}
		if !cp.sharded {
			r := results[cp.slots[0]]
			out[i].Sim, out[i].Err, out[i].Elapsed = r.Sim, r.Err, r.Elapsed
			continue
		}
		sims := make([]sim.Result, len(cp.slots))
		for k, s := range cp.slots {
			r := results[s]
			if r.Err != nil {
				out[i].Err = fmt.Errorf("sweep %s: cell %s shard %d/%d: %w", g.Spec.Name, c.Key, k+1, len(cp.slots), r.Err)
				break
			}
			sims[k] = r.Sim
			// The cell's elapsed time is its critical path: the slowest
			// shard, since shards run concurrently.
			if r.Elapsed > out[i].Elapsed {
				out[i].Elapsed = r.Elapsed
			}
		}
		if out[i].Err != nil {
			continue
		}
		merged, err := sim.MergeShardResults(sims)
		if err != nil {
			out[i].Err = fmt.Errorf("sweep %s: cell %s: %w", g.Spec.Name, c.Key, err)
			continue
		}
		out[i].Sim = merged
	}
	return out
}
