package sweep

import (
	"fmt"

	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Size returns the number of cells.
func (g *Grid) Size() int { return len(g.Cells) }

// AxisNames returns the axis names in declaration order.
func (g *Grid) AxisNames() []string {
	names := make([]string, len(g.Spec.Axes))
	for i, ax := range g.Spec.Axes {
		names[i] = ax.Name
	}
	return names
}

// AxisSize returns the number of values on the named axis (0 if unknown).
func (g *Grid) AxisSize(axis string) int {
	i, ok := g.axisIdx[axis]
	if !ok {
		return 0
	}
	return g.sizes[i]
}

// IndexAt returns the row-major cell index of the given per-axis value
// positions (one coordinate per axis, in declaration order).
func (g *Grid) IndexAt(coords ...int) (int, error) {
	if len(coords) != len(g.sizes) {
		return 0, fmt.Errorf("sweep %s: %d coordinates for %d axes", g.Spec.Name, len(coords), len(g.sizes))
	}
	idx := 0
	for i, c := range coords {
		if c < 0 || c >= g.sizes[i] {
			return 0, fmt.Errorf("sweep %s: coordinate %d = %d out of range [0,%d)", g.Spec.Name, i, c, g.sizes[i])
		}
		idx = idx*g.sizes[i] + c
	}
	return idx, nil
}

// Coords inverts IndexAt: the per-axis value positions of cell i.
func (g *Grid) Coords(i int) []int {
	coords := make([]int, len(g.sizes))
	for ax := len(g.sizes) - 1; ax >= 0; ax-- {
		coords[ax] = i % g.sizes[ax]
		i /= g.sizes[ax]
	}
	return coords
}

// ResultAt returns the executed result of the cell at the given per-axis
// value positions. It panics on bad coordinates or an unexecuted grid —
// grid projection is programmer input, and the figure drivers address only
// coordinates they just enumerated.
func (g *Grid) ResultAt(coords ...int) runner.Result {
	idx, err := g.IndexAt(coords...)
	if err != nil {
		panic(err)
	}
	if g.Results == nil {
		panic(fmt.Sprintf("sweep %s: grid has no results (Expand without Run?)", g.Spec.Name))
	}
	return g.Results[idx]
}

// SimAt returns the simulation outcome at the given per-axis positions.
func (g *Grid) SimAt(coords ...int) sim.Result { return g.ResultAt(coords...).Sim }

// Index resolves a point (axis name -> value key) to a row-major cell
// index. Every axis must be named exactly once.
func (g *Grid) Index(p Point) (int, error) {
	if len(p) != len(g.sizes) {
		return 0, fmt.Errorf("sweep %s: point names %d of %d axes", g.Spec.Name, len(p), len(g.sizes))
	}
	coords := make([]int, len(g.sizes))
	for name, key := range p {
		ai, ok := g.axisIdx[name]
		if !ok {
			return 0, fmt.Errorf("sweep %s: unknown axis %q", g.Spec.Name, name)
		}
		vi, ok := g.valIdx[ai][key]
		if !ok {
			return 0, fmt.Errorf("sweep %s: axis %q has no value %q", g.Spec.Name, name, key)
		}
		coords[ai] = vi
	}
	return g.IndexAt(coords...)
}

// At resolves alternating axis-name/value-key pairs to the matching cell.
func (g *Grid) At(pairs ...string) (*Cell, error) {
	if len(pairs)%2 != 0 {
		return nil, fmt.Errorf("sweep %s: At wants axis/value pairs, got %d strings", g.Spec.Name, len(pairs))
	}
	p := make(Point, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		p[pairs[i]] = pairs[i+1]
	}
	idx, err := g.Index(p)
	if err != nil {
		return nil, err
	}
	return &g.Cells[idx], nil
}

// Result resolves alternating axis/value pairs to the cell's executed
// result.
func (g *Grid) Result(pairs ...string) (runner.Result, error) {
	c, err := g.At(pairs...)
	if err != nil {
		return runner.Result{}, err
	}
	if g.Results == nil {
		return runner.Result{}, fmt.Errorf("sweep %s: grid has no results", g.Spec.Name)
	}
	return g.Results[c.Index], nil
}

// ReportJobs converts every executed cell into a persistable per-job
// result (key, point, resolved engine spec, raw sim.Result as canonical
// JSON) for the results store (results/<run-id>/jobs/<key>.json). The
// recorded engine carries every effective parameter — defaults applied,
// budget derivations resolved — so stored runs compare like-for-like. It
// fails on an unexecuted grid or any failed cell.
func (g *Grid) ReportJobs() ([]report.JobResult, error) {
	if g.Results == nil {
		return nil, fmt.Errorf("sweep %s: grid has no results", g.Spec.Name)
	}
	out := make([]report.JobResult, 0, len(g.Cells))
	for i := range g.Cells {
		c := &g.Cells[i]
		r := g.Results[i]
		if r.Err != nil {
			return nil, fmt.Errorf("sweep %s: cell %s failed: %w", g.Spec.Name, c.Key, r.Err)
		}
		jr, err := report.NewJobResult(c.Key, c.Label, c.Point, r.Sim)
		if err != nil {
			return nil, err
		}
		if c.Settings.Engine.Name != "" {
			resolved, rerr := prefetch.Resolved(c.Settings.Engine)
			if rerr != nil {
				return nil, fmt.Errorf("sweep %s: cell %s: %w", g.Spec.Name, c.Key, rerr)
			}
			jr.Engine = &report.EngineRef{Name: resolved.Name, Params: resolved.Params}
		}
		out = append(out, jr)
	}
	return out, nil
}

// AxisSummary is the serializable form of one axis: its name and ordered
// value keys.
type AxisSummary struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// CellSummary is the serializable headline of one executed cell.
type CellSummary struct {
	Key      string            `json:"key"`
	Label    string            `json:"label"`
	Point    map[string]string `json:"point"`
	UIPC     float64           `json:"uipc"`
	Coverage float64           `json:"coverage"`
	Misses   uint64            `json:"correct_misses"`
}

// Summary is the serializable headline of an executed grid, used as the
// structured data of ad-hoc `experiments sweep` artifacts. The raw per-job
// sim.Results are persisted separately (ReportJobs); the summary keeps a
// stored run readable without opening every job file.
type Summary struct {
	Name  string        `json:"name"`
	Axes  []AxisSummary `json:"axes"`
	Cells []CellSummary `json:"cells"`
}

// Summary builds the grid's serializable headline. The grid must have been
// executed by Run.
func (g *Grid) Summary() (Summary, error) {
	if g.Results == nil {
		return Summary{}, fmt.Errorf("sweep %s: grid has no results", g.Spec.Name)
	}
	s := Summary{Name: g.Spec.Name}
	for _, ax := range g.Spec.Axes {
		as := AxisSummary{Name: ax.Name}
		for _, v := range ax.Values {
			as.Values = append(as.Values, v.Key)
		}
		s.Axes = append(s.Axes, as)
	}
	for i := range g.Cells {
		c := &g.Cells[i]
		r := g.Results[i]
		if r.Err != nil {
			return Summary{}, fmt.Errorf("sweep %s: cell %s failed: %w", g.Spec.Name, c.Key, r.Err)
		}
		s.Cells = append(s.Cells, CellSummary{
			Key:      c.Key,
			Label:    c.Label,
			Point:    c.Point,
			UIPC:     r.Sim.UIPC,
			Coverage: r.Sim.Coverage(),
			Misses:   r.Sim.CorrectMisses,
		})
	}
	return s, nil
}
