// Package sweep is the declarative design-space exploration engine of the
// evaluation harness. A Spec names parameter axes — workloads, prefetch
// engine specs and their parameters, config.System mutations, sim
// options — and Expand crosses them into a Grid of keyed cells, one per
// point of the design space. Run turns every cell into a runner.Job and
// fans the grid out through the existing worker pool; Each runs an
// arbitrary per-cell analysis the same way (for trace-based measurements
// that are not simulations). Results come back addressable by axis
// values, in row-major submission order, so tables projected from a grid
// are byte-identical to the hand-rolled serial loops they replace.
//
// The experiment drivers in internal/experiments define their variant
// tables as Specs (fig9, fig10, table1, fig8 right, and the MANA-style
// sweep-history / sweep-l1 artifacts); the `experiments sweep` CLI mode
// builds Specs from -axis flags. Every simulated cell's raw sim.Result can
// be persisted per job through internal/report (Grid.ReportJobs), so
// sweeps finer than one artifact are diffable across commits. See
// DESIGN.md §8.
package sweep

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/prefetch"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Source axes make *what to simulate* a swept dimension alongside the
// engine and system axes: a cell may execute its workload live, replay a
// recorded trace store, or replay one window of it (sim.SliceSource on
// StoreReader.Seek), so a design-space sweep can fan out over trace
// slices without re-executing the workload per cell. See DESIGN.md §9.

// Settings is the accumulated configuration of one cell: every axis value
// along the cell's point applies its mutation in axis order, building up
// the engine spec, workload, and simulation config the cell runs with.
type Settings struct {
	// Workload is the simulated workload profile (required for Run).
	Workload workload.Profile
	// Sim is the simulation configuration, including the config.System
	// machine description; axis values mutate it freely (PerfectL1, L1-I
	// geometry, latencies, ...).
	Sim sim.Config
	// Params carries named scalar axis values (window positions, region
	// sizes, ...) for non-engine consumers — a source axis or an Each
	// analysis. Engine parameters go through Engine instead.
	Params map[string]float64
	// Engine is the cell's declarative prefetch-engine spec: an engine
	// axis sets its name, engine-parameter axes (budget, history) merge
	// into its params, and Expand validates the assembled spec against
	// the engine's schema. Required (non-empty name) by the time a cell
	// becomes a job.
	Engine prefetch.Spec
	// Instrument, when non-nil, receives the cell job's freshly
	// constructed engine before the run. Process-local: incompatible
	// with remote backends.
	Instrument func(prefetch.Prefetcher)
	// Source, when non-nil, supplies the cell's record stream (a trace
	// store or a window of one) instead of live workload execution; set
	// by a source axis.
	Source sim.Source
	// Shards, when > 1, makes the cell execute as that many window-shard
	// jobs planned by sim.SplitReplay — each replaying a slice of the
	// cell's source — and stitched back into one result with
	// sim.MergeShardResults. The cell's key, label, and persisted result
	// are unchanged; only its execution fans out, so one XL cell can use
	// many workers (local or remote). Requires a sliceable source
	// (sim.Slicer): store and slice sources shard, live execution does
	// not. Seeded from Spec.BaseShards or set by a shards axis.
	Shards int
	// ShardApprox selects approximate (fixed-warmup) shard planning:
	// shards parallelize fully — the throughput mode — but the stitched
	// result matches the unsharded cell only within window tolerances.
	// The default (false) is exact planning: the merged result is
	// bit-identical to the unsharded cell (diffs stay clean), at the
	// cost of each shard re-replaying its prefix.
	ShardApprox bool
}

// MergeEngine overlays an engine spec onto the cell: the engine name is
// replaced and the value's params overlay any already-applied ones.
// Param maps are cloned on write, so cells sharing a BaseEngine cannot
// contaminate each other.
func (s *Settings) MergeEngine(v prefetch.Spec) {
	s.Engine.Name = v.Name
	for k, pv := range v.Params {
		s.Engine = s.Engine.With(k, pv)
	}
}

// Value is one keyed setting of an axis. Key is the cell-key coordinate
// (file-name safe; see KeyOf); Name is the human label used in job labels
// and rendered tables (defaults to Key); Apply writes the setting into the
// cell under construction.
type Value struct {
	Key   string
	Name  string
	Apply func(*Settings)
}

// label returns the value's display name.
func (v Value) label() string {
	if v.Name != "" {
		return v.Name
	}
	return v.Key
}

// Axis is one named dimension of the design space: an ordered list of
// keyed values.
type Axis struct {
	Name   string
	Values []Value
}

// WorkloadAxis builds the canonical workload axis: one value per profile,
// keyed by the sanitized workload name, applying the profile to the cell.
func WorkloadAxis(name string, wls []workload.Profile) Axis {
	ax := Axis{Name: name}
	for _, wl := range wls {
		wl := wl
		ax.Values = append(ax.Values, Value{
			Key:   KeyOf(wl.Name),
			Name:  wl.Name,
			Apply: func(s *Settings) { s.Workload = wl },
		})
	}
	return ax
}

// EngineAxis builds a prefetch-engine axis from registry names; each
// value sets the cell's engine name while keeping any params already
// merged by parameter axes (axis order does not matter). Parameterized
// values need EngineSpecAxis.
func EngineAxis(name string, engines ...string) Axis {
	ax := Axis{Name: name}
	for _, eng := range engines {
		eng := eng
		ax.Values = append(ax.Values, Value{
			Key:   KeyOf(eng),
			Name:  eng,
			Apply: func(s *Settings) { s.Engine.Name = eng },
		})
	}
	return ax
}

// EngineSpecAxis builds a prefetch-engine axis from full specs: each
// value merges its spec into the cell (name replaced, params overlaid),
// keyed by the sanitized display name.
func EngineSpecAxis(name string, specs []prefetch.Spec, names []string) Axis {
	ax := Axis{Name: name}
	for i, spec := range specs {
		spec := spec
		display := spec.String()
		if i < len(names) && names[i] != "" {
			display = names[i]
		}
		ax.Values = append(ax.Values, Value{
			Key:   KeyOf(display),
			Name:  display,
			Apply: func(s *Settings) { s.MergeEngine(spec) },
		})
	}
	return ax
}

// EngineParamAxis builds a scalar engine-parameter axis: each value
// overlays ints[i] as param on the cell's engine spec, keyed and labeled
// by key(ints[i]) (label falls back to the key when nil). Whether the
// value is meaningful — or ignored, for engines that declare it so — is
// decided by the engine's schema when Expand validates the cell.
func EngineParamAxis(name, param string, key, label func(v int) string, ints []int) Axis {
	ax := Axis{Name: name}
	for _, v := range ints {
		v := v
		val := Value{
			Key:   key(v),
			Apply: func(s *Settings) { s.Engine = s.Engine.With(param, float64(v)) },
		}
		if label != nil {
			val.Name = label(v)
		}
		ax.Values = append(ax.Values, val)
	}
	return ax
}

// SourceChoice is one keyed value of a source axis: New builds the
// cell's record source from its settings (nil means live execution).
type SourceChoice struct {
	// Key is the cell-key coordinate; Name the display label (defaults
	// to Key).
	Key, Name string
	// New, when non-nil, constructs the cell's source. It receives a
	// pointer to the cell's settings that stays valid for the grid's
	// lifetime, so a returned source may defer reading them (workload,
	// params) until it is opened — axis order does not matter. New may
	// also adjust the settings it is handed (e.g. fit the measured
	// interval to a trace window).
	New func(s *Settings) sim.Source
}

// SourceAxis builds a record-source axis: each value installs a source
// factory on the cell (the *what to simulate* dimension), so one grid
// can compare live execution against trace-store or trace-slice replay,
// or sweep a trace window across positions.
func SourceAxis(name string, choices []SourceChoice) Axis {
	ax := Axis{Name: name}
	for _, c := range choices {
		c := c
		ax.Values = append(ax.Values, Value{
			Key:  c.Key,
			Name: c.Name,
			Apply: func(s *Settings) {
				if c.New != nil {
					s.Source = c.New(s)
				} else {
					s.Source = nil
				}
			},
		})
	}
	return ax
}

// ParamAxis builds a scalar axis: each value stores ints[i] under param in
// Settings.Params, keyed and labeled by key(ints[i]) (label falls back to
// the key when label is nil).
func ParamAxis(name, param string, key, label func(v int) string, ints []int) Axis {
	ax := Axis{Name: name}
	for _, v := range ints {
		v := v
		val := Value{
			Key:   key(v),
			Apply: func(s *Settings) { s.Params[param] = float64(v) },
		}
		if label != nil {
			val.Name = label(v)
		}
		ax.Values = append(ax.Values, val)
	}
	return ax
}

// ShardsAxis builds a shard-count axis: each value sets how many
// window-shard jobs the cell's execution fans out into (1 = unsharded;
// see Settings.Shards). Unlike Spec.BaseShards — which leaves cell keys
// untouched for clean sharded-vs-unsharded diffs — an axis makes the
// shard count a swept coordinate, for studying sharding itself.
func ShardsAxis(name string, counts []int) Axis {
	ax := Axis{Name: name}
	for _, v := range counts {
		v := v
		ax.Values = append(ax.Values, Value{
			Key:   strconv.Itoa(v),
			Apply: func(s *Settings) { s.Shards = v },
		})
	}
	return ax
}

// Spec declares a design-space sweep.
type Spec struct {
	// Name identifies the sweep; it prefixes cell keys and default job
	// labels and must be a valid job-key component (see report.ValidJobKey).
	Name string
	// Base is the starting simulation configuration of every cell (system,
	// warmup, measured interval); axis values mutate private copies.
	Base sim.Config
	// BaseEngine optionally seeds the engine spec cells start with
	// (typically a bare registry name); engine and engine-parameter axes
	// merge into it.
	BaseEngine prefetch.Spec
	// BaseShards seeds every cell's shard count (see Settings.Shards);
	// the `-shards K` CLI path. Cell keys and labels are unaffected, so
	// a sharded run diffs directly against an unsharded one. A shards
	// axis overrides it per cell (and does extend the key).
	BaseShards int
	// BaseShardApprox seeds Settings.ShardApprox.
	BaseShardApprox bool
	// Axes are the swept dimensions, crossed in order: the last axis
	// varies fastest (row-major expansion).
	Axes []Axis
	// Label, when non-nil, overrides the default job label
	// ("<name>/<value name>/<value name>...").
	Label func(c *Cell) string
}

// Point locates one cell: axis name -> value key.
type Point map[string]string

// Cell is one point of the expanded design space.
type Cell struct {
	// Index is the cell's row-major position (and job submission slot).
	Index int
	// Point maps each axis name to the cell's value key on that axis.
	Point Point
	// Key is the cell's unique, file-name-safe identity:
	// "<spec>.<axis>-<key>_<axis>-<key>...". It names the persisted
	// per-job result (results/<run-id>/jobs/<key>.json).
	Key string
	// Label is the human-readable job label.
	Label string
	// Settings is the cell's resolved configuration.
	Settings Settings
}

// KeyOf sanitizes a name into a key: lowercased, with every character
// outside [a-z0-9] mapped to '-' ("OLTP DB2" -> "oltp-db2"). Keys built
// this way satisfy report.ValidJobKey when joined by Expand.
func KeyOf(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, name)
}

// Grid is an expanded (and, after Run, executed) design space: cells in
// row-major axis order, addressable by axis values.
type Grid struct {
	// Spec echoes the expanded specification.
	Spec Spec
	// Cells holds one cell per design point, row-major (the last axis
	// varies fastest).
	Cells []Cell
	// Results holds the simulation outcomes parallel to Cells; populated
	// by Run, nil after a plain Expand or an Each.
	Results []runner.Result

	sizes   []int            // per-axis value counts
	axisIdx map[string]int   // axis name -> position
	valIdx  []map[string]int // per-axis: value key -> position
}

// Expand validates the spec and crosses its axes into a grid of cells.
// Every axis value's Apply runs in axis order on a private Settings copy
// seeded from Base and BaseEngine; each cell's assembled engine spec is
// then validated against the engine's schema, so a bad parameter fails
// the whole sweep before any simulation starts.
func (s Spec) Expand() (*Grid, error) {
	if s.Name == "" || !report.ValidJobKey(s.Name) {
		return nil, fmt.Errorf("sweep: invalid spec name %q", s.Name)
	}
	if len(s.Axes) == 0 {
		return nil, fmt.Errorf("sweep %s: no axes", s.Name)
	}
	g := &Grid{
		Spec:    s,
		sizes:   make([]int, len(s.Axes)),
		axisIdx: make(map[string]int, len(s.Axes)),
		valIdx:  make([]map[string]int, len(s.Axes)),
	}
	total := 1
	for i, ax := range s.Axes {
		if ax.Name == "" || !report.ValidJobKey(ax.Name) {
			return nil, fmt.Errorf("sweep %s: invalid axis name %q", s.Name, ax.Name)
		}
		if _, dup := g.axisIdx[ax.Name]; dup {
			return nil, fmt.Errorf("sweep %s: duplicate axis %q", s.Name, ax.Name)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep %s: axis %q has no values", s.Name, ax.Name)
		}
		g.axisIdx[ax.Name] = i
		g.sizes[i] = len(ax.Values)
		g.valIdx[i] = make(map[string]int, len(ax.Values))
		for j, v := range ax.Values {
			if v.Key == "" || !report.ValidJobKey(v.Key) {
				return nil, fmt.Errorf("sweep %s: axis %q value %d has invalid key %q", s.Name, ax.Name, j, v.Key)
			}
			if _, dup := g.valIdx[i][v.Key]; dup {
				return nil, fmt.Errorf("sweep %s: axis %q has duplicate value key %q", s.Name, ax.Name, v.Key)
			}
			g.valIdx[i][v.Key] = j
		}
		total *= len(ax.Values)
	}

	g.Cells = make([]Cell, total)
	coords := make([]int, len(s.Axes))
	for idx := 0; idx < total; idx++ {
		c := &g.Cells[idx]
		c.Index = idx
		c.Point = make(Point, len(s.Axes))
		c.Settings = Settings{
			Sim:         s.Base,
			Params:      map[string]float64{},
			Engine:      s.BaseEngine,
			Shards:      s.BaseShards,
			ShardApprox: s.BaseShardApprox,
		}
		var key, label strings.Builder
		key.WriteString(s.Name)
		label.WriteString(s.Name)
		for i, ax := range s.Axes {
			v := ax.Values[coords[i]]
			c.Point[ax.Name] = v.Key
			sep := "_"
			if i == 0 {
				sep = "."
			}
			fmt.Fprintf(&key, "%s%s-%s", sep, ax.Name, v.Key)
			label.WriteString("/")
			label.WriteString(v.label())
			if v.Apply != nil {
				v.Apply(&c.Settings)
			}
		}
		if c.Settings.Engine.Name != "" {
			if err := prefetch.Validate(c.Settings.Engine); err != nil {
				return nil, fmt.Errorf("sweep %s: cell %s: %w", s.Name, key.String(), err)
			}
		}
		c.Key = key.String()
		c.Label = label.String()
		if s.Label != nil {
			c.Label = s.Label(c)
		}
		if !report.ValidJobKey(c.Key) {
			return nil, fmt.Errorf("sweep %s: cell key %q is not a valid job key", s.Name, c.Key)
		}
		// Row-major odometer: the last axis varies fastest.
		for i := len(coords) - 1; i >= 0; i-- {
			coords[i]++
			if coords[i] < g.sizes[i] {
				break
			}
			coords[i] = 0
		}
	}
	return g, nil
}

// cellJob validates a cell and converts it into its single (unsharded)
// runner.Job.
func (g *Grid) cellJob(c *Cell) (runner.Job, error) {
	if c.Settings.Workload.Name == "" {
		return runner.Job{}, fmt.Errorf("sweep %s: cell %s names no workload (add a WorkloadAxis)", g.Spec.Name, c.Key)
	}
	if c.Settings.Engine.Name == "" {
		return runner.Job{}, fmt.Errorf("sweep %s: cell %s names no engine (add an engine axis or BaseEngine)", g.Spec.Name, c.Key)
	}
	return runner.Job{
		Label:      c.Label,
		Workload:   c.Settings.Workload,
		Config:     c.Settings.Sim,
		Engine:     c.Settings.Engine,
		Instrument: c.Settings.Instrument,
		Source:     c.Settings.Source,
	}, nil
}

// Jobs converts every cell into a runner.Job in row-major order, one job
// per cell. It fails if any cell lacks an engine spec, names no
// workload, or requests sharded execution — sharded cells expand to
// several jobs and must run through Run, which plans and stitches them.
func (g *Grid) Jobs() ([]runner.Job, error) {
	jobs := make([]runner.Job, len(g.Cells))
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Settings.Shards > 1 {
			return nil, fmt.Errorf("sweep %s: cell %s requests %d shards; sharded cells run through sweep.Run, not Jobs",
				g.Spec.Name, c.Key, c.Settings.Shards)
		}
		j, err := g.cellJob(c)
		if err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	return jobs, nil
}

// Engine abstracts the execution environment a sweep runs through. It is
// implemented by *experiments.Env (which attaches cached program images)
// and by PoolEngine (a bare worker pool).
type Engine interface {
	// RunJobs executes simulation jobs and returns results in submission
	// order.
	RunJobs(jobs []runner.Job) ([]runner.Result, error)
	// ForEach runs fn(i) for every i in [0, n) across a worker pool; fn
	// must confine its writes to its own index.
	ForEach(n int, fn func(i int) error) error
}

// Run expands the spec and executes every cell through the engine's
// pool. Unsharded cells run as one simulation job each; cells with
// Settings.Shards > 1 fan out into per-window shard jobs (all cells'
// jobs travel in one flat batch, so shards of one cell and other cells
// parallelize together) and are stitched back into one per-cell result
// by sim.MergeShardResults. The grid's Results are attached even when
// the run fails partway (canceled contexts, job errors), so callers can
// salvage completed cells; the error reports the first failure.
func Run(eng Engine, s Spec) (*Grid, error) {
	g, err := s.Expand()
	if err != nil {
		return nil, err
	}
	p, err := g.plan()
	if err != nil {
		return nil, err
	}
	results, err := eng.RunJobs(p.jobs)
	g.Results = p.fold(g, results)
	return g, err
}

// Each expands the spec and runs fn once per cell across the engine's
// worker pool — the analysis counterpart to Run for grid measurements that
// are not simulations (trace-based coverage studies, program builds). fn
// must confine its writes to state owned by its cell.
func Each(eng Engine, s Spec, fn func(c *Cell) error) (*Grid, error) {
	g, err := s.Expand()
	if err != nil {
		return nil, err
	}
	return g, eng.ForEach(len(g.Cells), func(i int) error { return fn(&g.Cells[i]) })
}

// PoolEngine is a minimal Engine over a bare execution backend, for
// sweeps run outside an experiments environment (no program-image cache:
// each job builds its own).
type PoolEngine struct {
	// Ctx governs cancellation (nil = background).
	Ctx context.Context
	// Workers bounds the in-process backend (<= 0 = GOMAXPROCS); ignored
	// when Backend is set.
	Workers int
	// Backend, when non-nil, executes the grid's jobs (any
	// runner.Backend implementation; runs through one engine are
	// serialized by the caller). Nil selects a private in-process
	// LocalBackend per run, sized by Workers.
	Backend runner.Backend
	// OnProgress, when non-nil, receives one serialized callback per
	// completed job.
	OnProgress func(runner.Progress)
}

// RunJobs implements Engine.
func (p PoolEngine) RunJobs(jobs []runner.Job) ([]runner.Result, error) {
	if p.Backend != nil {
		return runner.RunOn(p.Ctx, p.Backend, jobs, p.OnProgress)
	}
	b := runner.NewLocalBackend(p.Workers)
	defer b.Close()
	return runner.RunOn(p.Ctx, b, jobs, p.OnProgress)
}

// ForEach implements Engine.
func (p PoolEngine) ForEach(n int, fn func(i int) error) error {
	return runner.ForEach(p.Ctx, p.Workers, n, fn)
}
