package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/prefetch"
	"repro/internal/runner"
)

// TestRunCancellationMidGrid locks the cancellation contract for long
// sweeps: canceling the context mid-grid (1) returns ctx.Err() promptly,
// (2) never starts a job dispatched after the cancellation point — the
// pool workers re-check ctx.Done() between jobs — and (3) leaks no
// goroutines (worker pool, producer, and simulator all unwind).
func TestRunCancellationMidGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// A long single-file grid: 64 cells through one worker, so a cancel
	// after the first completion leaves most of the grid undispatched.
	ax := Axis{Name: "seed"}
	for i := 0; i < 64; i++ {
		i := i
		ax.Values = append(ax.Values, Value{
			Key: fmt.Sprintf("s%d", i),
			Apply: func(s *Settings) {
				s.Workload = tinyProfile(fmt.Sprintf("Tiny %d", i), int64(i+1))
			},
		})
	}
	spec := Spec{Name: "cancel", Base: tinySim(), BaseEngine: prefetch.Spec{Name: "none"}, Axes: []Axis{ax}}

	eng := PoolEngine{
		Ctx:     ctx,
		Workers: 1,
		OnProgress: func(p runner.Progress) {
			if p.Done == 1 {
				cancel()
			}
		},
	}
	start := time.Now()
	g, err := Run(eng, spec)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s — workers are not observing ctx.Done() between jobs", elapsed)
	}
	if g == nil || len(g.Results) != 64 {
		t.Fatalf("grid results missing")
	}
	var ran, skipped int
	for _, r := range g.Results {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		} else if r.Err == nil && r.Sim.Instructions > 0 {
			ran++
		}
	}
	if ran == 0 || skipped == 0 {
		t.Fatalf("ran = %d, skipped = %d; want a mid-grid split", ran, skipped)
	}
	if ran > 4 {
		t.Errorf("%d jobs ran after a cancel at job 1 through 1 worker (in-flight slack should be ~1)", ran)
	}

	// Leak check: every pool goroutine must unwind. The count can lag a
	// canceled run briefly (workers draining the index channel), so poll.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after canceled sweep: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEachCancellation covers the analysis path the same way: a canceled
// context stops ForEach-driven grids between cells.
func TestEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ax := Axis{Name: "n"}
	for i := 0; i < 128; i++ {
		ax.Values = append(ax.Values, Value{Key: fmt.Sprintf("n%d", i)})
	}
	spec := Spec{Name: "cancel-each", Base: tinySim(), Axes: []Axis{ax}}

	var visited int32
	_, err := Each(PoolEngine{Ctx: ctx, Workers: 1}, spec, func(c *Cell) error {
		visited++
		if visited == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Each = %v, want context.Canceled", err)
	}
	if visited > 4 {
		t.Errorf("%d cells visited after cancel at cell 1", visited)
	}
}
