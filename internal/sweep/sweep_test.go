package sweep

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tinyProfile is a minimal valid workload for fast engine tests.
func tinyProfile(name string, seed int64) workload.Profile {
	return workload.Profile{
		Name: name, Suite: "T", Seed: seed,
		Funcs: 40, FuncBlocksMin: 1, FuncBlocksMax: 4,
		SharedFuncs: 4, TxTypes: 2, TxSkew: 0.6, TxVariants: 2,
		CallFanout: 2, MonoCallFrac: 0.8, CallSitesPerFunc: 1.5, SharedCallBias: 0.2, MaxCallDepth: 4,
		LoopsPerFunc: 0.4, LoopBodyBlocksMax: 3, LoopIterMin: 2, LoopIterMax: 5,
		CondSkipsPerFunc: 1.0, SkipTakenProb: 0.3, SkipBlocksMax: 2,
	}
}

// tinySim is a fast simulation configuration.
func tinySim() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 10_000
	cfg.MeasureInstrs = 10_000
	return cfg
}

// testSpec is a 2x2x2 spec exercising every axis kind: workloads, a
// registry-engine axis, and an engine-parameter axis (nextline consumes
// degree; none declares it ignored).
func testSpec() Spec {
	return Spec{
		Name: "t",
		Base: tinySim(),
		Axes: []Axis{
			WorkloadAxis("workload", []workload.Profile{tinyProfile("Tiny A", 1), tinyProfile("Tiny B", 2)}),
			EngineAxis("engine", "none", "nextline"),
			EngineParamAxis("degree", "degree",
				func(v int) string { return fmt.Sprintf("%d", v) }, nil, []int{1, 2}),
		},
	}
}

func TestKeyOf(t *testing.T) {
	for in, want := range map[string]string{
		"OLTP DB2":  "oltp-db2",
		"Web XL":    "web-xl",
		"Next-Line": "next-line",
		"pif":       "pif",
		"a_b.c":     "a-b-c",
	} {
		if got := KeyOf(in); got != want {
			t.Errorf("KeyOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExpandShape(t *testing.T) {
	g, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 8 {
		t.Fatalf("Size = %d, want 8", g.Size())
	}
	// Row-major: the last axis varies fastest.
	wantKeys := []string{
		"t.workload-tiny-a_engine-none_degree-1",
		"t.workload-tiny-a_engine-none_degree-2",
		"t.workload-tiny-a_engine-nextline_degree-1",
		"t.workload-tiny-a_engine-nextline_degree-2",
		"t.workload-tiny-b_engine-none_degree-1",
		"t.workload-tiny-b_engine-none_degree-2",
		"t.workload-tiny-b_engine-nextline_degree-1",
		"t.workload-tiny-b_engine-nextline_degree-2",
	}
	for i, want := range wantKeys {
		if g.Cells[i].Key != want {
			t.Errorf("cell %d key = %q, want %q", i, g.Cells[i].Key, want)
		}
	}
	c := g.Cells[6]
	if c.Label != "t/Tiny B/nextline/1" {
		t.Errorf("label = %q", c.Label)
	}
	if c.Settings.Workload.Name != "Tiny B" {
		t.Errorf("workload = %q", c.Settings.Workload.Name)
	}
	if c.Settings.Engine.Name != "nextline" {
		t.Errorf("engine = %q", c.Settings.Engine.Name)
	}
	if c.Settings.Engine.Params["degree"] != 1 {
		t.Errorf("degree = %v", c.Settings.Engine.Params)
	}
	if got := c.Point["workload"]; got != "tiny-b" {
		t.Errorf("point workload = %q", got)
	}
}

func TestExpandCoordsRoundTrip(t *testing.T) {
	g, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Cells {
		coords := g.Coords(i)
		idx, err := g.IndexAt(coords...)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("Coords/IndexAt mismatch: %d -> %v -> %d", i, coords, idx)
		}
		pidx, err := g.Index(g.Cells[i].Point)
		if err != nil {
			t.Fatal(err)
		}
		if pidx != i {
			t.Fatalf("Index(point) = %d, want %d", pidx, i)
		}
	}
}

func TestExpandRejectsBadSpecs(t *testing.T) {
	base := tinySim()
	wl := WorkloadAxis("workload", []workload.Profile{tinyProfile("Tiny A", 1)})
	for name, spec := range map[string]Spec{
		"empty name":    {Base: base, Axes: []Axis{wl}},
		"bad name":      {Name: "a b", Base: base, Axes: []Axis{wl}},
		"no axes":       {Name: "t", Base: base},
		"empty axis":    {Name: "t", Base: base, Axes: []Axis{{Name: "x"}}},
		"dup axis name": {Name: "t", Base: base, Axes: []Axis{wl, {Name: "workload", Values: wl.Values}}},
		"bad axis name": {Name: "t", Base: base, Axes: []Axis{{Name: "a/b", Values: wl.Values}}},
		"dup value key": {Name: "t", Base: base, Axes: []Axis{{Name: "x", Values: []Value{{Key: "v"}, {Key: "v"}}}}},
		"bad value key": {Name: "t", Base: base, Axes: []Axis{{Name: "x", Values: []Value{{Key: "v v"}}}}},
	} {
		if _, err := spec.Expand(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExpandCellValidationError(t *testing.T) {
	// An engine-parameter value below the schema minimum fails the whole
	// sweep at Expand, naming the offending cell.
	spec := testSpec()
	spec.Axes[2] = EngineParamAxis("degree", "degree",
		func(v int) string { return fmt.Sprintf("d%d", v) }, nil, []int{0})
	_, err := spec.Expand()
	if err == nil || !strings.Contains(err.Error(), "below minimum") {
		t.Fatalf("invalid cell param not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "cell t.") {
		t.Fatalf("error does not name the cell: %v", err)
	}
}

func TestJobsValidation(t *testing.T) {
	// A spec with no workload axis cannot become jobs.
	spec := Spec{
		Name:       "t",
		Base:       tinySim(),
		BaseEngine: prefetch.Spec{Name: "none"},
		Axes:       []Axis{EngineAxis("engine", "none")},
	}
	g, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Jobs(); err == nil || !strings.Contains(err.Error(), "workload") {
		t.Fatalf("missing workload not reported: %v", err)
	}
	// A spec with no engine anywhere cannot become jobs either.
	spec = Spec{
		Name: "t",
		Base: tinySim(),
		Axes: []Axis{WorkloadAxis("workload", []workload.Profile{tinyProfile("Tiny A", 1)})},
	}
	g, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Jobs(); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Fatalf("missing engine not reported: %v", err)
	}
}

func TestRunGridAddressing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	spec := testSpec()
	g, err := Run(PoolEngine{Ctx: context.Background(), Workers: 4}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Results) != g.Size() {
		t.Fatalf("results = %d, want %d", len(g.Results), g.Size())
	}
	// Positional and by-value addressing agree.
	r1 := g.ResultAt(1, 1, 0)
	r2, err := g.Result("workload", "tiny-b", "engine", "nextline", "degree", "1")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Index != r2.Index || r1.Sim != r2.Sim {
		t.Fatalf("addressing mismatch: %d vs %d", r1.Index, r2.Index)
	}
	if r1.Sim.Instructions == 0 {
		t.Fatal("cell did not simulate")
	}
	// Unknown coordinates fail cleanly.
	if _, err := g.Result("workload", "nope", "engine", "none", "degree", "1"); err == nil {
		t.Fatal("unknown value accepted")
	}
	if _, err := g.Result("workload", "tiny-a"); err == nil {
		t.Fatal("underspecified point accepted")
	}

	// Per-job conversion carries keys, points, and raw results.
	jobs, err := g.ReportJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != g.Size() {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if jobs[6].Key != g.Cells[6].Key || jobs[6].Point["engine"] != "nextline" {
		t.Fatalf("job 6 = %+v", jobs[6])
	}
	if len(jobs[6].Data) == 0 {
		t.Fatal("job 6 has no data")
	}

	sum, err := g.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Name != "t" || len(sum.Cells) != 8 || len(sum.Axes) != 3 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestEachVisitsEveryCell(t *testing.T) {
	spec := testSpec()
	visited := make([]int, 8)
	g, err := Each(PoolEngine{Workers: 4}, spec, func(c *Cell) error {
		visited[c.Index]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Results != nil {
		t.Fatal("Each attached results")
	}
	for i, n := range visited {
		if n != 1 {
			t.Fatalf("cell %d visited %d times", i, n)
		}
	}
}

func TestEachPropagatesError(t *testing.T) {
	spec := testSpec()
	_, err := Each(PoolEngine{Workers: 2}, spec, func(c *Cell) error {
		if c.Index == 5 {
			return fmt.Errorf("cell boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "cell boom") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunDeterminism locks the engine's core guarantee: serial and wide
// pools produce identical result grids.
func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	run := func(workers int) []sim.Result {
		g, err := Run(PoolEngine{Workers: workers}, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]sim.Result, g.Size())
		for i := range out {
			out[i] = g.Results[i].Sim
		}
		return out
	}
	serial, wide := run(1), run(8)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("cell %d differs between serial and 8-wide run", i)
		}
	}
}
