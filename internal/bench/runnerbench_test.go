package bench

import (
	"strings"
	"testing"
)

// smallRunnerConfig keeps the suite-under-test fast, mirroring
// smallConfig: structure and comparison rules are pinned here, the
// committed artifact's invariants are enforced by CI on the default
// fixture.
func smallRunnerConfig() RunnerConfig {
	return RunnerConfig{
		Workload:      "DSS Qry2",
		WarmupInstrs:  20_000,
		MeasureInstrs: 10_000,
		Engines:       []string{"pif", "none"},
		BudgetsKB:     []int{8},
		Parallel:      2,
	}
}

func TestRunRunnerArtifactStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real benchmark suite")
	}
	a, err := RunRunner(smallRunnerConfig(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", a.Schema, SchemaVersion)
	}
	want := []string{"runner/jobs_parallel_2", "runner/jobs_serial", "runner/spec_resolve"}
	got := a.Names()
	if len(got) != len(want) {
		t.Fatalf("benchmarks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("benchmarks = %v, want %v", got, want)
		}
	}
	for _, m := range a.Benchmarks {
		if m.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %f", m.Name, m.NsPerOp)
		}
		if strings.HasPrefix(m.Name, "runner/") && m.JobsPerSec <= 0 {
			t.Errorf("%s: jobs/s = %f, want > 0", m.Name, m.JobsPerSec)
		}
	}
	if a.Derived.ParallelSpeedup <= 0 || a.Derived.ResolveOverhead <= 0 {
		t.Errorf("derived ratios = %+v, want > 0", a.Derived)
	}

	// Freshness: identical structure passes; any structural drift fails.
	if err := CheckRunnerFresh(a, a); err != nil {
		t.Errorf("self-comparison: %v", err)
	}
	mutated := a
	mutated.Config.Parallel++
	if err := CheckRunnerFresh(mutated, a); err == nil {
		t.Error("config drift not detected")
	}
	mutated = a
	mutated.Schema++
	if err := CheckRunnerFresh(mutated, a); err == nil {
		t.Error("schema drift not detected")
	}
	mutated = a
	mutated.Benchmarks = append([]Measurement{}, a.Benchmarks[1:]...)
	if err := CheckRunnerFresh(mutated, a); err == nil {
		t.Error("benchmark-set drift not detected")
	}
}

func TestCheckRunnerInvariants(t *testing.T) {
	good := RunnerArtifact{
		Schema:  SchemaVersion,
		Derived: RunnerDerived{ParallelSpeedup: 1.5, ResolveOverhead: 0.005},
	}
	if err := CheckRunnerInvariants(good); err != nil {
		t.Errorf("good artifact rejected: %v", err)
	}
	heavy := good
	heavy.Derived.ResolveOverhead = 0.2
	if err := CheckRunnerInvariants(heavy); err == nil {
		t.Error("heavyweight spec resolution accepted")
	}
	broken := good
	broken.Derived.ParallelSpeedup = 0
	if err := CheckRunnerInvariants(broken); err == nil {
		t.Error("non-positive parallel speedup accepted")
	}
}
