package bench

import (
	"strings"
	"testing"
)

// smallConfig keeps the suite-under-test fast; the committed artifact's
// performance floors are asserted by CI on DefaultConfig, not here (tiny
// fixtures make thresholds flaky), so this test pins structure and the
// freshness comparison rules.
func smallConfig() Config {
	return Config{
		Workload:       "DSS Qry2",
		WarmupRecords:  10_000,
		MeasureRecords: 30_000,
		ChunkRecords:   4096,
		BatchRecords:   1024,
		Shards:         2,
	}
}

func TestRunArtifactStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real benchmark suite")
	}
	a, err := Run(smallConfig(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", a.Schema, SchemaVersion)
	}
	want := []string{
		"sim_replay/sharded_2", "sim_replay/store",
		"store_decode/batch", "store_decode/mmap", "store_decode/per_record",
		"sweep_cell/serial", "sweep_cell/sharded_2", "sweep_expand/cell",
	}
	got := a.Names()
	if len(got) != len(want) {
		t.Fatalf("benchmarks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("benchmarks = %v, want %v", got, want)
		}
	}
	for _, m := range a.Benchmarks {
		if m.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %f", m.Name, m.NsPerOp)
		}
		if strings.HasPrefix(m.Name, "store_decode/") || strings.HasPrefix(m.Name, "sim_replay/") {
			if m.RecordsPerSec <= 0 || m.MBPerSec <= 0 {
				t.Errorf("%s: throughput = %f records/s, %f MB/s, want > 0", m.Name, m.RecordsPerSec, m.MBPerSec)
			}
		}
	}
	// sweep expansion is not measured in trace bytes.
	if m, ok := a.find("sweep_expand/cell"); !ok || m.MBPerSec != 0 {
		t.Errorf("sweep_expand/cell MB/s = %f, want 0", m.MBPerSec)
	}
	if a.Derived.BatchSpeedup <= 0 || a.Derived.ShardedSpeedup <= 0 ||
		a.Derived.MmapSpeedup <= 0 || a.Derived.SweepCellSpeedup <= 0 {
		t.Errorf("derived ratios = %+v, want > 0", a.Derived)
	}
	if a.Config.ChunkSource != "mmap" && a.Config.ChunkSource != "readfile" {
		t.Errorf("chunk source = %q, want mmap or readfile", a.Config.ChunkSource)
	}

	// Freshness: identical structure passes; any structural drift fails.
	if err := CheckFresh(a, a); err != nil {
		t.Errorf("self-comparison: %v", err)
	}
	// The chunk-read path is machine state: a readfile-machine artifact
	// must still compare fresh against an mmap-machine regeneration.
	other := a
	other.Config.ChunkSource = "readfile"
	if err := CheckFresh(other, a); err != nil {
		t.Errorf("chunk-source difference treated as staleness: %v", err)
	}
	mutated := a
	mutated.Config.BatchRecords++
	if err := CheckFresh(mutated, a); err == nil {
		t.Error("config drift not detected")
	}
	mutated = a
	mutated.Schema++
	if err := CheckFresh(mutated, a); err == nil {
		t.Error("schema drift not detected")
	}
	mutated = a
	mutated.Benchmarks = append([]Measurement{}, a.Benchmarks[1:]...)
	if err := CheckFresh(mutated, a); err == nil {
		t.Error("benchmark-set drift not detected")
	}
}

func TestCheckInvariants(t *testing.T) {
	good := Artifact{
		Schema:     SchemaVersion,
		Config:     Config{ChunkSource: "mmap"},
		GOMAXPROCS: 4,
		Benchmarks: []Measurement{
			{Name: "store_decode/batch", AllocsPerRecord: 0.001},
			{Name: "store_decode/mmap", AllocsPerRecord: 0.001},
			{Name: "sim_replay/store", AllocsPerRecord: 0.01},
		},
		Derived: Derived{BatchSpeedup: 2.5, MmapSpeedup: 1.2, SweepCellSpeedup: 2.0},
	}
	if err := CheckInvariants(good); err != nil {
		t.Errorf("good artifact rejected: %v", err)
	}
	slow := good
	slow.Derived.BatchSpeedup = 1.4
	if err := CheckInvariants(slow); err == nil {
		t.Error("sub-2x batch speedup accepted")
	}
	leaky := good
	leaky.Benchmarks = []Measurement{
		{Name: "store_decode/batch", AllocsPerRecord: 0.5},
		{Name: "store_decode/mmap", AllocsPerRecord: 0.001},
		{Name: "sim_replay/store", AllocsPerRecord: 0.01},
	}
	if err := CheckInvariants(leaky); err == nil {
		t.Error("allocating hot path accepted")
	}
	missing := good
	missing.Benchmarks = missing.Benchmarks[:1]
	if err := CheckInvariants(missing); err == nil {
		t.Error("missing benchmark accepted")
	}

	// The mmap floor binds only where the mmap path actually served the
	// run: a regression on an mmap machine fails, a readfile machine
	// measuring the same path twice does not.
	slowMmap := good
	slowMmap.Derived.MmapSpeedup = 0.8
	if err := CheckInvariants(slowMmap); err == nil {
		t.Error("sub-1x mmap speedup accepted on an mmap machine")
	}
	slowMmap.Config.ChunkSource = "readfile"
	if err := CheckInvariants(slowMmap); err != nil {
		t.Errorf("mmap floor enforced on a readfile machine: %v", err)
	}

	// The sweep-cell floor binds only at 4+ CPUs, where the shard jobs
	// can actually overlap.
	slowCell := good
	slowCell.Derived.SweepCellSpeedup = 1.1
	if err := CheckInvariants(slowCell); err == nil {
		t.Error("sub-1.5x sweep-cell speedup accepted at 4 CPUs")
	}
	slowCell.GOMAXPROCS = 1
	if err := CheckInvariants(slowCell); err != nil {
		t.Errorf("sweep-cell floor enforced on one CPU: %v", err)
	}
}
