// Package bench runs the replay-performance benchmark suite
// programmatically (testing.Benchmark) and serializes the measurements
// as the committed BENCH_replay.json artifact. The artifact is
// CI-enforced like a golden fixture, with one twist: raw numbers vary by
// machine, so freshness is checked structurally (schema, configuration,
// benchmark-name set must match a regeneration) while the performance
// claims the PR makes — batch decode speedup, allocation-free replay —
// are re-measured and enforced as invariants on every CI run.
package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SchemaVersion stamps the artifact layout; bump on non-additive change.
const SchemaVersion = 1

// Config pins the benchmark fixture so regenerated artifacts are
// comparable: same workload, same record counts, same batch and shard
// geometry.
type Config struct {
	// Workload names the profile whose retire-order stream is recorded
	// into the benchmark store.
	Workload string `json:"workload"`
	// WarmupRecords + MeasureRecords is the store size; the split also
	// parameterizes the simulation benchmarks.
	WarmupRecords  uint64 `json:"warmup_records"`
	MeasureRecords uint64 `json:"measure_records"`
	// ChunkRecords is the store's records-per-chunk.
	ChunkRecords uint64 `json:"chunk_records"`
	// BatchRecords is the NextBatch buffer size of the batch benchmarks.
	BatchRecords int `json:"batch_records"`
	// Shards is the sharded-replay worker count.
	Shards int `json:"shards"`
}

// DefaultConfig is the committed artifact's fixture: big enough that
// steady-state behaviour dominates, small enough for a bounded CI step.
func DefaultConfig() Config {
	return Config{
		Workload:       "OLTP DB2",
		WarmupRecords:  50_000,
		MeasureRecords: 350_000,
		ChunkRecords:   1 << 14,
		BatchRecords:   4096,
		Shards:         4,
	}
}

// Measurement is one benchmark's outcome.
type Measurement struct {
	// Name identifies the benchmark ("store_decode/batch", ...).
	Name string `json:"name"`
	// NsPerOp is wall-clock nanoseconds per benchmark operation.
	NsPerOp float64 `json:"ns_per_op"`
	// RecordsPerSec is decode/replay throughput (0 where records are not
	// the unit of work).
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
	// JobsPerSec is grid-job throughput (runner-suite benchmarks only).
	JobsPerSec float64 `json:"jobs_per_sec,omitempty"`
	// MBPerSec is on-disk trace bytes consumed per second (decode
	// benchmarks only).
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// AllocsPerOp and AllocsPerRecord expose the allocation profile;
	// per-record is the number the hot-path invariants bound.
	AllocsPerOp     float64 `json:"allocs_per_op"`
	AllocsPerRecord float64 `json:"allocs_per_record,omitempty"`
}

// Derived holds the cross-benchmark ratios the PR's performance claims
// are stated in.
type Derived struct {
	// BatchSpeedup is per-record decode time over batch decode time for
	// the same store (>= 2.0 is the enforced floor).
	BatchSpeedup float64 `json:"batch_speedup"`
	// ShardedSpeedup is sequential replay time over sharded replay time
	// (informational: at small fixture scales the exact-mode prefix
	// re-decode can eat the win, so no floor is enforced).
	ShardedSpeedup float64 `json:"sharded_speedup"`
}

// Artifact is the serialized benchmark run (BENCH_replay.json).
type Artifact struct {
	Schema int    `json:"schema"`
	Config Config `json:"config"`
	// GOMAXPROCS records the measuring machine's parallelism — the
	// context a sharded-replay ratio must be read in (on one core the
	// sharded run pays its warmup overhead with no parallel win). It is
	// machine state, not fixture state, so CheckFresh ignores it.
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []Measurement `json:"benchmarks"`
	Derived    Derived       `json:"derived"`
}

// Names returns the artifact's benchmark names, sorted.
func (a Artifact) Names() []string {
	names := make([]string, len(a.Benchmarks))
	for i, m := range a.Benchmarks {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}

// find returns the named measurement.
func (a Artifact) find(name string) (Measurement, bool) {
	for _, m := range a.Benchmarks {
		if m.Name == name {
			return m, true
		}
	}
	return Measurement{}, false
}

// The invariant floors: the batch decode path must beat per-record by at
// least 2x, and decode/replay must be allocation-free per record in
// steady state (the slack absorbs per-run setup amortized over the
// record count).
const (
	MinBatchSpeedup    = 2.0
	MaxAllocsPerRecord = 0.05
)

// CheckInvariants validates the performance claims against a (freshly
// measured) artifact.
func CheckInvariants(a Artifact) error {
	if a.Derived.BatchSpeedup < MinBatchSpeedup {
		return fmt.Errorf("bench: batch decode speedup %.2fx below the %.1fx floor", a.Derived.BatchSpeedup, MinBatchSpeedup)
	}
	for _, name := range []string{"store_decode/batch", "sim_replay/store"} {
		m, ok := a.find(name)
		if !ok {
			return fmt.Errorf("bench: missing benchmark %q", name)
		}
		if m.AllocsPerRecord > MaxAllocsPerRecord {
			return fmt.Errorf("bench: %s allocates %.4f/record, above the %.2f/record ceiling",
				name, m.AllocsPerRecord, MaxAllocsPerRecord)
		}
	}
	return nil
}

// CheckFresh reports whether a committed artifact structurally matches a
// regeneration: same schema, same fixture configuration, same benchmark
// set. Raw timings are machine-dependent and intentionally not compared.
func CheckFresh(committed, fresh Artifact) error {
	if committed.Schema != fresh.Schema {
		return fmt.Errorf("bench: artifact schema %d, regeneration produces %d — regenerate with `make bench`",
			committed.Schema, fresh.Schema)
	}
	if committed.Config != fresh.Config {
		return fmt.Errorf("bench: artifact fixture %+v, regeneration uses %+v — regenerate with `make bench`",
			committed.Config, fresh.Config)
	}
	cn, fn := committed.Names(), fresh.Names()
	if len(cn) != len(fn) {
		return fmt.Errorf("bench: artifact has %d benchmarks %v, regeneration has %d %v — regenerate with `make bench`",
			len(cn), cn, len(fn), fn)
	}
	for i := range cn {
		if cn[i] != fn[i] {
			return fmt.Errorf("bench: artifact benchmark set %v differs from regeneration %v — regenerate with `make bench`", cn, fn)
		}
	}
	return nil
}

// Run records the benchmark store under a temp directory and executes
// the suite. Progress lines go to logf (nil discards them).
func Run(cfg Config, logf func(format string, args ...any)) (Artifact, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	wl, err := workload.ByName(cfg.Workload)
	if err != nil {
		return Artifact{}, err
	}
	tmp, err := os.MkdirTemp("", "benchreplay-*")
	if err != nil {
		return Artifact{}, err
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "store")

	logf("recording %d-record %s store (%d records/chunk)...",
		cfg.WarmupRecords+cfg.MeasureRecords, wl.Name, cfg.ChunkRecords)
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		return Artifact{}, err
	}
	it := workload.NewIterator(prog, cfg.WarmupRecords, cfg.MeasureRecords)
	records, err := trace.BuildStore(dir, wl.Name, cfg.ChunkRecords, it, cfg.WarmupRecords, cfg.MeasureRecords)
	it.Close()
	if err != nil {
		return Artifact{}, err
	}
	storeBytes, err := storeSize(dir)
	if err != nil {
		return Artifact{}, err
	}

	simCfg := sim.DefaultConfig()
	simCfg.WarmupInstrs = cfg.WarmupRecords
	simCfg.MeasureInstrs = cfg.MeasureRecords

	a := Artifact{Schema: SchemaVersion, Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	run := func(name string, perOpRecords uint64, perOpBytes int64, body func(b *testing.B)) Measurement {
		logf("benchmark %s...", name)
		r := testing.Benchmark(body)
		m := Measurement{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.MemAllocs) / float64(max(r.N, 1)),
		}
		if perOpRecords > 0 {
			m.RecordsPerSec = float64(perOpRecords) * float64(r.N) / r.T.Seconds()
			m.AllocsPerRecord = m.AllocsPerOp / float64(perOpRecords)
		}
		if perOpBytes > 0 {
			m.MBPerSec = float64(perOpBytes) * float64(r.N) / r.T.Seconds() / (1 << 20)
		}
		a.Benchmarks = append(a.Benchmarks, m)
		return m
	}

	perRecord := run("store_decode/per_record", records, storeBytes, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := trace.OpenStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			var it trace.Iterator = r // interface call per record, like a naive consumer
			if err := drainPerRecord(it); err != nil {
				b.Fatal(err)
			}
			r.Close()
		}
	})
	batch := run("store_decode/batch", records, storeBytes, func(b *testing.B) {
		buf := make([]trace.Record, cfg.BatchRecords)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := trace.OpenStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			if err := drainBatch(r, buf); err != nil {
				b.Fatal(err)
			}
			r.Close()
		}
	})

	engine := prefetch.Spec{Name: "nextline", Params: map[string]float64{"degree": 4}}
	seq := run("sim_replay/store", records, storeBytes, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunJob(context.Background(), sim.Job{
				Config:   simCfg,
				Workload: wl,
				From:     sim.StoreSource(dir),
				Engine:   engine,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	sharded := run(fmt.Sprintf("sim_replay/sharded_%d", cfg.Shards), records, storeBytes, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := runner.ShardedReplay(context.Background(), runner.ShardedOptions{
				Dir:      dir,
				Workload: wl,
				Config:   simCfg,
				Shards:   cfg.Shards,
				Engine:   engine,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	spec := sweep.Spec{
		Name: "bench",
		Base: simCfg,
		Axes: []sweep.Axis{
			sweep.WorkloadAxis("workload", workload.StandardSuite()),
			sweep.EngineAxis("engine", "pif", "tifs", "nextline", "none"),
		},
	}
	grid, err := spec.Expand()
	if err != nil {
		return Artifact{}, err
	}
	cells := uint64(len(grid.Cells))
	run("sweep_expand/cell", cells, 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := spec.Expand(); err != nil {
				b.Fatal(err)
			}
		}
	})

	a.Derived = Derived{
		BatchSpeedup:   perRecord.NsPerOp / batch.NsPerOp,
		ShardedSpeedup: seq.NsPerOp / sharded.NsPerOp,
	}
	return a, nil
}

// drainPerRecord pulls the iterator dry one Next at a time.
func drainPerRecord(it trace.Iterator) error {
	for {
		if _, err := it.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// drainBatch pulls the batch iterator dry through buf.
func drainBatch(it trace.BatchIterator, buf []trace.Record) error {
	for {
		if _, err := it.NextBatch(buf); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// storeSize sums the on-disk bytes of a store's chunks and index.
func storeSize(dir string) (int64, error) {
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}
