// Package bench runs the replay-performance benchmark suite
// programmatically (testing.Benchmark) and serializes the measurements
// as the committed BENCH_replay.json artifact. The artifact is
// CI-enforced like a golden fixture, with one twist: raw numbers vary by
// machine, so freshness is checked structurally (schema, configuration,
// benchmark-name set must match a regeneration) while the performance
// claims the PR makes — batch decode speedup, allocation-free replay —
// are re-measured and enforced as invariants on every CI run.
package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SchemaVersion stamps the artifact layout; bump on non-additive change.
const SchemaVersion = 1

// Config pins the benchmark fixture so regenerated artifacts are
// comparable: same workload, same record counts, same batch and shard
// geometry.
type Config struct {
	// Workload names the profile whose retire-order stream is recorded
	// into the benchmark store.
	Workload string `json:"workload"`
	// WarmupRecords + MeasureRecords is the store size; the split also
	// parameterizes the simulation benchmarks.
	WarmupRecords  uint64 `json:"warmup_records"`
	MeasureRecords uint64 `json:"measure_records"`
	// ChunkRecords is the store's records-per-chunk.
	ChunkRecords uint64 `json:"chunk_records"`
	// BatchRecords is the NextBatch buffer size of the batch benchmarks.
	BatchRecords int `json:"batch_records"`
	// Shards is the sharded-replay worker count.
	Shards int `json:"shards"`
	// ChunkSource records which chunk-read path served the auto-selected
	// decode benchmarks on the measuring machine ("mmap" or "readfile") —
	// without it a cross-machine comparison of the mmap rows is
	// uninterpretable. Machine state, not fixture pinning: CheckFresh
	// ignores it, and the mmap floor applies only when it says "mmap".
	ChunkSource string `json:"chunk_source"`
}

// DefaultConfig is the committed artifact's fixture: big enough that
// steady-state behaviour dominates, small enough for a bounded CI step.
func DefaultConfig() Config {
	return Config{
		Workload:       "OLTP DB2",
		WarmupRecords:  50_000,
		MeasureRecords: 350_000,
		ChunkRecords:   1 << 14,
		BatchRecords:   4096,
		Shards:         4,
	}
}

// Measurement is one benchmark's outcome.
type Measurement struct {
	// Name identifies the benchmark ("store_decode/batch", ...).
	Name string `json:"name"`
	// NsPerOp is wall-clock nanoseconds per benchmark operation.
	NsPerOp float64 `json:"ns_per_op"`
	// RecordsPerSec is decode/replay throughput (0 where records are not
	// the unit of work).
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
	// JobsPerSec is grid-job throughput (runner-suite benchmarks only).
	JobsPerSec float64 `json:"jobs_per_sec,omitempty"`
	// MBPerSec is on-disk trace bytes consumed per second (decode
	// benchmarks only).
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// AllocsPerOp and AllocsPerRecord expose the allocation profile;
	// per-record is the number the hot-path invariants bound.
	AllocsPerOp     float64 `json:"allocs_per_op"`
	AllocsPerRecord float64 `json:"allocs_per_record,omitempty"`
	// Parallelism is the worker parallelism the operation actually ran
	// at (min of the requested workers and GOMAXPROCS); 1 labels a
	// serial row. Rows without a worker pool omit it. A sharded row's
	// speedup is only meaningful read against this number — a
	// Parallelism-1 sharded row can only lose.
	Parallelism int `json:"parallelism,omitempty"`
}

// Derived holds the cross-benchmark ratios the PR's performance claims
// are stated in.
type Derived struct {
	// BatchSpeedup is per-record decode time over batch decode time for
	// the same store, both on the ReadFile path (>= 2.0 is the enforced
	// floor).
	BatchSpeedup float64 `json:"batch_speedup"`
	// MmapSpeedup is ReadFile batch-decode time over auto-selected
	// (mmap where supported) batch-decode time. The floor — mmap decode
	// at least matches the copying batch path — is enforced only when
	// Config.ChunkSource reports the mmap path actually served the run.
	MmapSpeedup float64 `json:"mmap_speedup"`
	// ShardedSpeedup is sequential replay time over sharded replay time
	// (informational: read against the sharded row's Parallelism — on
	// one core sharding can only lose, and exact mode re-decodes the
	// prefix).
	ShardedSpeedup float64 `json:"sharded_speedup"`
	// SweepCellSpeedup is unsharded sweep-cell time over sharded
	// (approximate-mode) sweep-cell time — the long-tail-cell win the
	// shards setting exists for. Enforced (>= 1.5) only at 4+ CPUs.
	SweepCellSpeedup float64 `json:"sweep_cell_speedup"`
}

// Artifact is the serialized benchmark run (BENCH_replay.json).
type Artifact struct {
	Schema int    `json:"schema"`
	Config Config `json:"config"`
	// GOMAXPROCS records the measuring machine's parallelism — the
	// context a sharded-replay ratio must be read in (on one core the
	// sharded run pays its warmup overhead with no parallel win). It is
	// machine state, not fixture state, so CheckFresh ignores it.
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []Measurement `json:"benchmarks"`
	Derived    Derived       `json:"derived"`
}

// Names returns the artifact's benchmark names, sorted.
func (a Artifact) Names() []string {
	names := make([]string, len(a.Benchmarks))
	for i, m := range a.Benchmarks {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}

// find returns the named measurement.
func (a Artifact) find(name string) (Measurement, bool) {
	for _, m := range a.Benchmarks {
		if m.Name == name {
			return m, true
		}
	}
	return Measurement{}, false
}

// The invariant floors: the batch decode path must beat per-record by at
// least 2x, decode/replay must be allocation-free per record in steady
// state (the slack absorbs per-run setup amortized over the record
// count), zero-copy mmap decode must at least match the copying batch
// path, and sharding a sweep cell must pay for itself where the cores
// exist.
//
// The mmap floor sits just under 1.0x: with chunks hot in the page
// cache, read(2)+copy and mmap decode time within a few percent of each
// other, so a hard 1.0x would flake on scheduler jitter. The floor's job
// is to catch real regressions — a fault per record, an accidental
// second copy — which land far below 0.95x.
const (
	MinBatchSpeedup     = 2.0
	MaxAllocsPerRecord  = 0.05
	MinMmapSpeedup      = 0.95
	MinSweepCellSpeedup = 1.5
	// SweepCellFloorCPUs gates the sweep-cell floor: below this many
	// CPUs the shard jobs serialize and the ratio measures scheduling
	// overhead, not the claim.
	SweepCellFloorCPUs = 4
)

// CheckInvariants validates the performance claims against a (freshly
// measured) artifact.
func CheckInvariants(a Artifact) error {
	if a.Derived.BatchSpeedup < MinBatchSpeedup {
		return fmt.Errorf("bench: batch decode speedup %.2fx below the %.1fx floor", a.Derived.BatchSpeedup, MinBatchSpeedup)
	}
	for _, name := range []string{"store_decode/batch", "store_decode/mmap", "sim_replay/store"} {
		m, ok := a.find(name)
		if !ok {
			return fmt.Errorf("bench: missing benchmark %q", name)
		}
		if m.AllocsPerRecord > MaxAllocsPerRecord {
			return fmt.Errorf("bench: %s allocates %.4f/record, above the %.2f/record ceiling",
				name, m.AllocsPerRecord, MaxAllocsPerRecord)
		}
	}
	// The mmap floor holds only where mmap actually served the run; a
	// machine that fell back to ReadFile measures the same path twice.
	if a.Config.ChunkSource == "mmap" && a.Derived.MmapSpeedup < MinMmapSpeedup {
		return fmt.Errorf("bench: mmap decode speedup %.2fx below the %.2fx floor (zero-copy decode slower than the copying batch path)",
			a.Derived.MmapSpeedup, MinMmapSpeedup)
	}
	if a.GOMAXPROCS >= SweepCellFloorCPUs && a.Derived.SweepCellSpeedup < MinSweepCellSpeedup {
		return fmt.Errorf("bench: sharded sweep-cell speedup %.2fx below the %.1fx floor at %d CPUs",
			a.Derived.SweepCellSpeedup, MinSweepCellSpeedup, a.GOMAXPROCS)
	}
	return nil
}

// CheckFresh reports whether a committed artifact structurally matches a
// regeneration: same schema, same fixture configuration, same benchmark
// set. Raw timings are machine-dependent and intentionally not compared.
func CheckFresh(committed, fresh Artifact) error {
	if committed.Schema != fresh.Schema {
		return fmt.Errorf("bench: artifact schema %d, regeneration produces %d — regenerate with `make bench`",
			committed.Schema, fresh.Schema)
	}
	// ChunkSource is machine state (which read path the measuring
	// machine supported), not fixture state: blank it for the
	// comparison.
	cc, fc := committed.Config, fresh.Config
	cc.ChunkSource, fc.ChunkSource = "", ""
	if cc != fc {
		return fmt.Errorf("bench: artifact fixture %+v, regeneration uses %+v — regenerate with `make bench`",
			cc, fc)
	}
	cn, fn := committed.Names(), fresh.Names()
	if len(cn) != len(fn) {
		return fmt.Errorf("bench: artifact has %d benchmarks %v, regeneration has %d %v — regenerate with `make bench`",
			len(cn), cn, len(fn), fn)
	}
	for i := range cn {
		if cn[i] != fn[i] {
			return fmt.Errorf("bench: artifact benchmark set %v differs from regeneration %v — regenerate with `make bench`", cn, fn)
		}
	}
	return nil
}

// Run records the benchmark store under a temp directory and executes
// the suite. Progress lines go to logf (nil discards them).
func Run(cfg Config, logf func(format string, args ...any)) (Artifact, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	wl, err := workload.ByName(cfg.Workload)
	if err != nil {
		return Artifact{}, err
	}
	tmp, err := os.MkdirTemp("", "benchreplay-*")
	if err != nil {
		return Artifact{}, err
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "store")

	logf("recording %d-record %s store (%d records/chunk)...",
		cfg.WarmupRecords+cfg.MeasureRecords, wl.Name, cfg.ChunkRecords)
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		return Artifact{}, err
	}
	it := workload.NewIterator(prog, cfg.WarmupRecords, cfg.MeasureRecords)
	records, err := trace.BuildStore(dir, wl.Name, cfg.ChunkRecords, it, cfg.WarmupRecords, cfg.MeasureRecords)
	it.Close()
	if err != nil {
		return Artifact{}, err
	}
	storeBytes, err := storeSize(dir)
	if err != nil {
		return Artifact{}, err
	}

	simCfg := sim.DefaultConfig()
	simCfg.WarmupInstrs = cfg.WarmupRecords
	simCfg.MeasureInstrs = cfg.MeasureRecords

	// Record which chunk-read path auto selection resolves to on this
	// machine; the mmap rows and their floor are read against it.
	probe, err := trace.OpenStoreMode(dir, trace.ChunkSourceAuto)
	if err != nil {
		return Artifact{}, err
	}
	cfg.ChunkSource = probe.ChunkSourceKind()
	probe.Close()

	a := Artifact{Schema: SchemaVersion, Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	// repeats > 1 takes the fastest of that many benchmark runs; the
	// decode rows finish in about a second each and feed thin-margin
	// derived ratios (MmapSpeedup's floor is 0.95x), so best-of-N is cheap
	// insurance against scheduler noise there. The replay and sweep rows
	// are far slower and feed wide-margin ratios, so they run once.
	run := func(name string, perOpRecords uint64, perOpBytes int64, parallelism, repeats int, body func(b *testing.B)) Measurement {
		logf("benchmark %s...", name)
		r := testing.Benchmark(body)
		for i := 1; i < repeats; i++ {
			if r2 := testing.Benchmark(body); r2.NsPerOp() < r.NsPerOp() {
				r = r2
			}
		}
		m := Measurement{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.MemAllocs) / float64(max(r.N, 1)),
			Parallelism: parallelism,
		}
		if perOpRecords > 0 {
			m.RecordsPerSec = float64(perOpRecords) * float64(r.N) / r.T.Seconds()
			m.AllocsPerRecord = m.AllocsPerOp / float64(perOpRecords)
		}
		if perOpBytes > 0 {
			m.MBPerSec = float64(perOpBytes) * float64(r.N) / r.T.Seconds() / (1 << 20)
		}
		a.Benchmarks = append(a.Benchmarks, m)
		return m
	}
	// The parallelism a pool of the fixture's shard width actually gets.
	shardPar := min(cfg.Shards, runtime.GOMAXPROCS(0))

	// The per-record and batch rows pin the copying ReadFile path so
	// BatchSpeedup isolates batching and the mmap row has a stable
	// baseline; the mmap row uses auto selection (the OpenStore default)
	// so it measures what replay consumers actually get.
	drainStore := func(b *testing.B, mode trace.ChunkSourceMode, buf []trace.Record) {
		r, err := trace.OpenStoreMode(dir, mode)
		if err != nil {
			b.Fatal(err)
		}
		if buf == nil {
			var it trace.Iterator = r // interface call per record, like a naive consumer
			err = drainPerRecord(it)
		} else {
			err = drainBatch(r, buf)
		}
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
	perRecord := run("store_decode/per_record", records, storeBytes, 0, 5, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drainStore(b, trace.ChunkSourceReadFile, nil)
		}
	})
	batch := run("store_decode/batch", records, storeBytes, 0, 5, func(b *testing.B) {
		buf := make([]trace.Record, cfg.BatchRecords)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drainStore(b, trace.ChunkSourceReadFile, buf)
		}
	})
	mmapBatch := run("store_decode/mmap", records, storeBytes, 0, 5, func(b *testing.B) {
		buf := make([]trace.Record, cfg.BatchRecords)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drainStore(b, trace.ChunkSourceAuto, buf)
		}
	})

	engine := prefetch.Spec{Name: "nextline", Params: map[string]float64{"degree": 4}}
	seq := run("sim_replay/store", records, storeBytes, 1, 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunJob(context.Background(), sim.Job{
				Config:   simCfg,
				Workload: wl,
				From:     sim.StoreSource(dir),
				Engine:   engine,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	sharded := run(fmt.Sprintf("sim_replay/sharded_%d", cfg.Shards), records, storeBytes, shardPar, 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := runner.ShardedReplay(context.Background(), runner.ShardedOptions{
				Dir:      dir,
				Workload: wl,
				Config:   simCfg,
				Shards:   cfg.Shards,
				Engine:   engine,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One sweep cell, unsharded vs sharded (approximate mode — the
	// throughput mode; exact mode trades the speedup for bit parity):
	// the long-tail-cell scenario Settings.Shards exists for.
	cellSpec := func(shards int) sweep.Spec {
		return sweep.Spec{
			Name:            "benchcell",
			Base:            simCfg,
			BaseShards:      shards,
			BaseShardApprox: true,
			Axes: []sweep.Axis{
				sweep.WorkloadAxis("workload", []workload.Profile{wl}),
				sweep.EngineAxis("engine", "nextline"),
				sweep.SourceAxis("source", []sweep.SourceChoice{{
					Key: "store",
					New: func(s *sweep.Settings) sim.Source { return sim.StoreSource(dir) },
				}}),
			},
		}
	}
	runCell := func(name string, shards, parallelism int) Measurement {
		spec := cellSpec(shards)
		return run(name, records, 0, parallelism, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := sweep.Run(sweep.PoolEngine{Workers: cfg.Shards}, spec)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range g.Results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
	cellSerial := runCell("sweep_cell/serial", 0, 1)
	cellSharded := runCell(fmt.Sprintf("sweep_cell/sharded_%d", cfg.Shards), cfg.Shards, shardPar)

	spec := sweep.Spec{
		Name: "bench",
		Base: simCfg,
		Axes: []sweep.Axis{
			sweep.WorkloadAxis("workload", workload.StandardSuite()),
			sweep.EngineAxis("engine", "pif", "tifs", "nextline", "none"),
		},
	}
	grid, err := spec.Expand()
	if err != nil {
		return Artifact{}, err
	}
	cells := uint64(len(grid.Cells))
	run("sweep_expand/cell", cells, 0, 0, 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := spec.Expand(); err != nil {
				b.Fatal(err)
			}
		}
	})

	a.Derived = Derived{
		BatchSpeedup:     perRecord.NsPerOp / batch.NsPerOp,
		MmapSpeedup:      batch.NsPerOp / mmapBatch.NsPerOp,
		ShardedSpeedup:   seq.NsPerOp / sharded.NsPerOp,
		SweepCellSpeedup: cellSerial.NsPerOp / cellSharded.NsPerOp,
	}
	return a, nil
}

// drainPerRecord pulls the iterator dry one Next at a time.
func drainPerRecord(it trace.Iterator) error {
	for {
		if _, err := it.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// drainBatch pulls the batch iterator dry through buf.
func drainBatch(it trace.BatchIterator, buf []trace.Record) error {
	for {
		if _, err := it.NextBatch(buf); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// storeSize sums the on-disk bytes of a store's chunks and index.
func storeSize(dir string) (int64, error) {
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}
