package bench

// The runner-level benchmark suite (BENCH_runner.json): where
// BENCH_replay.json measures the decode and replay hot paths,
// this artifact measures the job-execution layer on top of them —
// grid jobs/sec through runner.RunOn serially and in parallel, plus the
// spec-resolution overhead the declarative engine layer adds per job.
// Freshness is checked structurally like the replay artifact; the
// enforced invariant is that engine-spec resolution stays negligible
// against job runtime (the claim that let closure factories be deleted).

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// RunnerConfig pins the runner-benchmark fixture: the sweep grid whose
// jobs are timed and the parallel worker count.
type RunnerConfig struct {
	// Workload names the profile every grid cell simulates.
	Workload string `json:"workload"`
	// WarmupInstrs/MeasureInstrs size each cell's simulation.
	WarmupInstrs  uint64 `json:"warmup_instrs"`
	MeasureInstrs uint64 `json:"measure_instrs"`
	// Engines and BudgetsKB span the grid: len(Engines)*len(BudgetsKB)
	// jobs per benchmark operation.
	Engines   []string `json:"engines"`
	BudgetsKB []int    `json:"budgets_kb"`
	// Parallel is the parallel backend's worker count.
	Parallel int `json:"parallel"`
}

// jobCount is the grid size.
func (c RunnerConfig) jobCount() int { return len(c.Engines) * len(c.BudgetsKB) }

// DefaultRunnerConfig is the committed artifact's fixture: an
// engine × budget grid small enough for a bounded CI step but wide
// enough that the parallel backend has work to overlap.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{
		Workload:      "OLTP DB2",
		WarmupInstrs:  100_000,
		MeasureInstrs: 50_000,
		Engines:       []string{"pif", "tifs", "nextline", "none"},
		BudgetsKB:     []int{8, 128},
		Parallel:      4,
	}
}

// RunnerDerived holds the cross-benchmark ratios of the runner suite.
type RunnerDerived struct {
	// ParallelSpeedup is serial grid time over parallel grid time
	// (informational: bounded by the measuring machine's cores).
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// ResolveOverhead is spec-resolution time over serial grid time —
	// the per-job cost of the declarative engine layer (enforced
	// ceiling: MaxResolveOverhead).
	ResolveOverhead float64 `json:"resolve_overhead"`
}

// RunnerArtifact is the serialized runner-benchmark run
// (BENCH_runner.json).
type RunnerArtifact struct {
	Schema int          `json:"schema"`
	Config RunnerConfig `json:"config"`
	// GOMAXPROCS is machine state (the context a parallel ratio must be
	// read in), not fixture state; CheckRunnerFresh ignores it.
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []Measurement `json:"benchmarks"`
	Derived    RunnerDerived `json:"derived"`
}

// Names returns the artifact's benchmark names, sorted.
func (a RunnerArtifact) Names() []string {
	return Artifact{Benchmarks: a.Benchmarks}.Names()
}

func (a RunnerArtifact) find(name string) (Measurement, bool) {
	return Artifact{Benchmarks: a.Benchmarks}.find(name)
}

// MaxResolveOverhead bounds spec resolution (validate, derive,
// construct) against mean job runtime: the declarative layer must stay
// a few percent of the work it dispatches at most (measured ~0.8% on
// the committed fixture; the slack absorbs machine variance).
const MaxResolveOverhead = 0.05

// CheckRunnerInvariants validates the runner suite's claims against a
// freshly measured artifact.
func CheckRunnerInvariants(a RunnerArtifact) error {
	if a.Derived.ResolveOverhead > MaxResolveOverhead {
		return fmt.Errorf("bench: engine-spec resolution is %.4f of mean job time, above the %.2f ceiling",
			a.Derived.ResolveOverhead, MaxResolveOverhead)
	}
	if a.Derived.ParallelSpeedup <= 0 {
		return fmt.Errorf("bench: parallel speedup %.2f is not positive", a.Derived.ParallelSpeedup)
	}
	return nil
}

// CheckRunnerFresh reports whether a committed runner artifact
// structurally matches a regeneration. Raw timings are machine-dependent
// and intentionally not compared.
func CheckRunnerFresh(committed, fresh RunnerArtifact) error {
	if committed.Schema != fresh.Schema {
		return fmt.Errorf("bench: runner artifact schema %d, regeneration produces %d — regenerate with `make bench`",
			committed.Schema, fresh.Schema)
	}
	if fmt.Sprintf("%+v", committed.Config) != fmt.Sprintf("%+v", fresh.Config) {
		return fmt.Errorf("bench: runner artifact fixture %+v, regeneration uses %+v — regenerate with `make bench`",
			committed.Config, fresh.Config)
	}
	cn, fn := committed.Names(), fresh.Names()
	if len(cn) != len(fn) {
		return fmt.Errorf("bench: runner artifact has %d benchmarks %v, regeneration has %d %v — regenerate with `make bench`",
			len(cn), cn, len(fn), fn)
	}
	for i := range cn {
		if cn[i] != fn[i] {
			return fmt.Errorf("bench: runner artifact benchmark set %v differs from regeneration %v — regenerate with `make bench`", cn, fn)
		}
	}
	return nil
}

// runnerJobs expands the fixture grid into runner jobs, sharing one
// pre-built program image so the benchmark times execution, not program
// construction.
func runnerJobs(cfg RunnerConfig) ([]runner.Job, error) {
	wl, err := workload.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		return nil, err
	}
	simCfg := baseSimConfig(cfg)
	spec := sweep.Spec{
		Name: "bench-runner",
		Base: simCfg,
		Axes: []sweep.Axis{
			sweep.WorkloadAxis("workload", []workload.Profile{wl}),
			sweep.EngineAxis("engine", cfg.Engines...),
			sweep.EngineParamAxis("budget", "budget_kb",
				func(v int) string { return fmt.Sprintf("%dkb", v) }, nil, cfg.BudgetsKB),
		},
	}
	grid, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	jobs, err := grid.Jobs()
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		jobs[i].Program = prog
	}
	return jobs, nil
}

func baseSimConfig(cfg RunnerConfig) sim.Config {
	out := sim.DefaultConfig()
	out.WarmupInstrs = cfg.WarmupInstrs
	out.MeasureInstrs = cfg.MeasureInstrs
	return out
}

// RunRunner executes the runner benchmark suite. Progress lines go to
// logf (nil discards them).
func RunRunner(cfg RunnerConfig, logf func(format string, args ...any)) (RunnerArtifact, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	jobs, err := runnerJobs(cfg)
	if err != nil {
		return RunnerArtifact{}, err
	}
	n := uint64(len(jobs))

	a := RunnerArtifact{Schema: SchemaVersion, Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	run := func(name string, perOpJobs uint64, body func(b *testing.B)) Measurement {
		logf("benchmark %s...", name)
		r := testing.Benchmark(body)
		m := Measurement{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.MemAllocs) / float64(max(r.N, 1)),
		}
		if perOpJobs > 0 {
			m.JobsPerSec = float64(perOpJobs) * float64(r.N) / r.T.Seconds()
		}
		a.Benchmarks = append(a.Benchmarks, m)
		return m
	}

	runGrid := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := runner.RunOn(context.Background(), runner.NewLocalBackend(workers), jobs, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("job %s: %v", r.Label, r.Err)
					}
				}
			}
		}
	}
	serial := run("runner/jobs_serial", n, runGrid(1))
	parallel := run(fmt.Sprintf("runner/jobs_parallel_%d", cfg.Parallel), n, runGrid(cfg.Parallel))

	// Spec resolution in isolation: validate + derive + construct one
	// engine instance per grid job, exactly what each backend pays before
	// a job runs.
	resolve := run("runner/spec_resolve", n, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				if _, err := prefetch.Resolve(j.Engine); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	a.Derived = RunnerDerived{
		ParallelSpeedup: serial.NsPerOp / parallel.NsPerOp,
		ResolveOverhead: resolve.NsPerOp / serial.NsPerOp,
	}
	return a, nil
}
