// Package httpapi holds the HTTP plumbing shared by this repository's
// JSON APIs — the remote-execution coordinator (internal/remote) and the
// experiment service (internal/expsvc): the versioned error envelope,
// optional bearer-token authentication, and a JSON request helper for
// clients.
//
// Every API speaks version-stamped JSON envelopes; an error response is
// always {"v": N, "error": "..."}. Authentication is a single shared
// bearer token (`-auth-token` on pifcoord and pifexpd): when configured,
// every request must carry "Authorization: Bearer <token>" and a
// missing or mismatched token is rejected with 401 and the versioned
// error envelope, before the request reaches any handler.
package httpapi

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ErrorBody is the versioned error envelope every API returns on
// failure.
type ErrorBody struct {
	V   int    `json:"v"`
	Err string `json:"error"`
}

// WriteError writes the versioned error envelope with the given status.
func WriteError(w http.ResponseWriter, version, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{V: version, Err: msg})
}

// bearerPrefix is the Authorization scheme the APIs accept.
const bearerPrefix = "Bearer "

// RequireAuth wraps next in bearer-token authentication: requests must
// carry "Authorization: Bearer <token>" or they are rejected with 401
// and the versioned error envelope. An empty token disables the check
// (open API). Paths listed in exempt (exact match) bypass the check —
// health probes stay reachable by load balancers that hold no secret.
func RequireAuth(token string, version int, next http.Handler, exempt ...string) http.Handler {
	if token == "" {
		return next
	}
	open := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		open[p] = true
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if open[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), bearerPrefix)
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
			WriteError(w, version, http.StatusUnauthorized, "unauthorized: missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// authTransport stamps the bearer token onto every outgoing request.
type authTransport struct {
	token string
	next  http.RoundTripper
}

func (t authTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	// RoundTrippers must not mutate the caller's request.
	c := r.Clone(r.Context())
	c.Header.Set("Authorization", bearerPrefix+t.token)
	return t.next.RoundTrip(c)
}

// Client returns an HTTP client for one of the repository's APIs: with a
// token, every request carries the bearer Authorization header; with an
// empty token it is a plain client.
func Client(token string) *http.Client {
	if token == "" {
		return &http.Client{}
	}
	return &http.Client{Transport: authTransport{token: token, next: http.DefaultTransport}}
}

// StatusError is a non-2xx response from an API, carrying the HTTP
// status and the envelope's error message so callers can react to
// specific codes (404: the ID is unknown — possibly a restarted server
// that lost in-memory state; 401: the caller's token is missing or
// wrong).
type StatusError struct {
	Status      int
	Method, URL string
	Msg         string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("httpapi: %s %s: status %d: %s", e.Method, e.URL, e.Status, e.Msg)
}

// IsStatus reports whether err is a StatusError with the given HTTP
// status.
func IsStatus(err error, status int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == status
}

// Do sends one JSON request (req nil = empty body) and decodes the JSON
// response into resp (nil = discard). Non-2xx responses decode the
// versioned error envelope into a *StatusError.
func Do(ctx context.Context, hc *http.Client, method, url string, req, resp any) error {
	var body io.Reader
	if req != nil {
		buf, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if req != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode < 200 || hresp.StatusCode > 299 {
		var e ErrorBody
		msg := ""
		if json.NewDecoder(io.LimitReader(hresp.Body, 1<<16)).Decode(&e) == nil {
			msg = e.Err
		}
		return &StatusError{Status: hresp.StatusCode, Method: method, URL: url, Msg: msg}
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(hresp.Body).Decode(resp)
}
