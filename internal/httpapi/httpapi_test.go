package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// okHandler answers every request with a trivial versioned body.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"v":1,"ok":true}`))
	})
}

func TestRequireAuthRejectsWithVersionedEnvelope(t *testing.T) {
	srv := httptest.NewServer(RequireAuth("s3cret", 7, okHandler(), "/v1/healthz"))
	defer srv.Close()

	cases := []struct {
		name   string
		path   string
		token  string
		status int
	}{
		{"no token", "/v1/runs", "", http.StatusUnauthorized},
		{"wrong token", "/v1/runs", "wrong", http.StatusUnauthorized},
		{"right token", "/v1/runs", "s3cret", http.StatusOK},
		{"exempt path needs no token", "/v1/healthz", "", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodGet, srv.URL+tc.path, nil)
			if tc.token != "" {
				req.Header.Set("Authorization", "Bearer "+tc.token)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if tc.status == http.StatusUnauthorized {
				var e ErrorBody
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
					t.Fatalf("401 body is not the JSON envelope: %v", err)
				}
				if e.V != 7 || e.Err == "" {
					t.Fatalf("401 envelope = %+v, want v=7 and a message", e)
				}
			}
		})
	}
}

func TestRequireAuthEmptyTokenIsOpen(t *testing.T) {
	h := RequireAuth("", 1, okHandler())
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open API rejected a tokenless request: %d", resp.StatusCode)
	}
}

func TestClientSendsBearerToken(t *testing.T) {
	var got string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("Authorization")
		_, _ = w.Write([]byte(`{}`))
	})
	srv := httptest.NewServer(RequireAuth("tok", 1, inner))
	defer srv.Close()

	if err := Do(context.Background(), Client("tok"), http.MethodGet, srv.URL+"/x", nil, nil); err != nil {
		t.Fatalf("authed request failed: %v", err)
	}
	if got != "Bearer tok" {
		t.Fatalf("Authorization header = %q", got)
	}
}

func TestDoDecodesEnvelopeIntoStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, 3, http.StatusNotFound, "no such run")
	}))
	defer srv.Close()

	err := Do(context.Background(), Client(""), http.MethodGet, srv.URL+"/v1/runs/x", nil, nil)
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("err = %v, want a 404 StatusError", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Msg != "no such run" {
		t.Fatalf("envelope message not preserved: %v", err)
	}
}
