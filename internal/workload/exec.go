package workload

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Executor walks a Program and emits its correct-path retire-order
// instruction stream. Construction randomness (the program image) and
// execution randomness (data-dependent branch outcomes, loop trip counts,
// transaction mix, interrupt arrivals) use independent deterministic
// streams, so the same Profile always yields the same trace.
type Executor struct {
	prog *Program
	rng  *rand.Rand

	emit    func(trace.Record)
	tl      isa.TrapLevel
	pending trace.Flags
	variant int // current transaction's path variant

	emitted     uint64
	budget      uint64
	stopped     bool
	intrEnabled bool
	intrIn      int // instructions until next interrupt
}

// NewExecutor prepares an executor over prog.
func NewExecutor(prog *Program) *Executor {
	e := &Executor{
		prog:        prog,
		rng:         rand.New(rand.NewSource(prog.Profile.Seed ^ 0x5f5f_5f5f)),
		intrEnabled: prog.Profile.InterruptEvery > 0 && prog.HandlerEnd > prog.SharedEnd,
	}
	if e.intrEnabled {
		e.intrIn = e.nextInterruptGap()
	}
	return e
}

func (e *Executor) nextInterruptGap() int {
	gap := int(e.rng.ExpFloat64() * float64(e.prog.Profile.InterruptEvery))
	if gap < 1 {
		gap = 1
	}
	return gap
}

// Run emits at least n instructions (stopping at the first instruction at
// or past the budget) and returns the exact number emitted.
func (e *Executor) Run(n uint64, emit func(trace.Record)) uint64 {
	e.emit = emit
	e.budget = e.emitted + n
	e.stopped = false
	for !e.stopped {
		entry := e.pickEntry()
		e.variant = e.pickVariant()
		e.pending |= trace.FlagCallTarget
		e.execFunc(e.prog.Funcs[entry], 0)
	}
	return e.emitted
}

// Emitted returns the total instructions emitted across Run calls.
func (e *Executor) Emitted() uint64 { return e.emitted }

// Abort stops the in-progress Run before its budget: no further
// instructions are emitted and Run returns once the current call stack
// unwinds. It is intended to be called from within the emit callback
// (e.g. on context cancellation); the executor's stream state is
// unspecified afterwards, so an aborted run's output must be discarded.
func (e *Executor) Abort() { e.stopped = true }

// pickVariant draws the transaction's path variant: the hottest variant
// takes a large share and the rest split the remainder, so every variant's
// path is exercised regularly (steady state) while the mix still perturbs
// the cache (Section 2.1's filtering effect).
func (e *Executor) pickVariant() int {
	v := e.prog.Profile.TxVariants
	if v <= 1 {
		return 0
	}
	if e.rng.Float64() < 0.4 {
		return 0
	}
	return 1 + e.rng.Intn(v-1)
}

// pickEntry draws a transaction type according to the skewed entry weights.
func (e *Executor) pickEntry() int {
	total := 0
	for _, w := range e.prog.EntryWeights {
		total += w
	}
	r := e.rng.Intn(total)
	for i, w := range e.prog.EntryWeights {
		if r < w {
			return e.prog.Entries[i]
		}
		r -= w
	}
	return e.prog.Entries[len(e.prog.Entries)-1]
}

// emitInstr emits the instruction at offset cursor within f, consuming any
// pending entry/return flags, and fires due interrupts.
func (e *Executor) emitInstr(f *Func, cursor int, extra trace.Flags) {
	rec := trace.Record{
		PC:    f.Base.Plus(cursor),
		TL:    e.tl,
		Flags: e.pending | extra,
	}
	e.pending = 0
	e.emit(rec)
	e.emitted++
	if e.emitted >= e.budget {
		e.stopped = true
		return
	}
	if e.intrEnabled && e.tl == isa.TL0 {
		e.intrIn--
		if e.intrIn <= 0 {
			e.runInterrupt()
			e.intrIn = e.nextInterruptGap()
		}
	}
}

// runInterrupt executes a randomly chosen trap handler at TL1.
func (e *Executor) runInterrupt() {
	h := e.prog.SharedEnd + e.rng.Intn(e.prog.HandlerEnd-e.prog.SharedEnd)
	e.tl = isa.TL1
	e.pending |= trace.FlagTrapEntry | trace.FlagCallTarget
	// Handlers run with little headroom for nested calls: interrupt
	// service is short by construction.
	depth := e.prog.Profile.MaxCallDepth - 2
	if depth < 0 {
		depth = 0
	}
	e.execFunc(e.prog.Funcs[h], depth)
	e.tl = isa.TL0
	e.pending |= trace.FlagTrapReturn
}

// execFunc runs one function body.
func (e *Executor) execFunc(f *Func, depth int) {
	e.execOps(f, f.body, 0, depth)
}

// opLen returns the laid-out instruction length of an op.
func opLen(o *op) int {
	switch o.kind {
	case opRun:
		return o.runLen
	case opCall, opCondSkip:
		return 1
	case opLoop:
		n := 1 // back-edge branch
		for i := range o.body {
			n += opLen(&o.body[i])
		}
		return n
	default:
		return 0
	}
}

// execOps executes ops starting at instruction offset cursor within f and
// returns the offset after the last laid-out instruction.
func (e *Executor) execOps(f *Func, ops []op, cursor, depth int) int {
	for i := 0; i < len(ops); i++ {
		if e.stopped {
			// Still advance the cursor so callers' layout stays coherent,
			// but emit nothing further.
			cursor += opLen(&ops[i])
			continue
		}
		o := &ops[i]
		switch o.kind {
		case opRun:
			for k := 0; k < o.runLen; k++ {
				e.emitInstr(f, cursor, 0)
				cursor++
				if e.stopped {
					cursor += o.runLen - k - 1
					break
				}
			}
		case opCall:
			e.emitInstr(f, cursor, trace.FlagBranchTaken)
			cursor++
			if !e.stopped && depth < e.prog.Profile.MaxCallDepth {
				callee := e.prog.Funcs[o.TargetFor(e.variant)]
				childDepth := depth + 1
				if o.loopLeaf {
					// Inner-loop helpers execute as leaves.
					childDepth = e.prog.Profile.MaxCallDepth
				}
				e.pending |= trace.FlagCallTarget
				e.execFunc(callee, childDepth)
				e.pending |= trace.FlagReturnTarget
			}
		case opCondSkip:
			prob := e.prog.Profile.SkipTakenProb
			if f.Handler {
				prob = 0.5 // handler jumps are strongly data-dependent
			}
			taken := e.rng.Float64() < prob
			fl := trace.FlagCondBranch
			if taken {
				fl |= trace.FlagBranchTaken
			}
			e.emitInstr(f, cursor, fl)
			cursor++
			if taken {
				// Jump over the laid-out skip region (the next run op).
				cursor += o.skipInstrs
				if i+1 < len(ops) && ops[i+1].kind == opRun && ops[i+1].runLen == o.skipInstrs {
					i++ // consume the skipped op
				}
			}
		case opLoop:
			iters := o.iterMin
			if o.iterMax > o.iterMin {
				iters += e.rng.Intn(o.iterMax - o.iterMin + 1)
			}
			bodyStart := cursor
			backEdge := cursor
			for j := range o.body {
				backEdge += opLen(&o.body[j])
			}
			for it := 0; it < iters && !e.stopped; it++ {
				e.execOps(f, o.body, bodyStart, depth)
				if e.stopped {
					break
				}
				fl := trace.FlagCondBranch
				if it < iters-1 {
					fl |= trace.FlagBranchTaken // loop back
				}
				e.emitInstr(f, backEdge, fl)
			}
			cursor = backEdge + 1
		}
	}
	return cursor
}

// GenerateStream builds the program for p, runs n instructions, and
// returns the retire-order stream. It is the one-call entry point used by
// examples and experiments.
func GenerateStream(p Profile, n uint64) (trace.Stream, error) {
	prog, err := BuildProgram(p)
	if err != nil {
		return nil, err
	}
	s := make(trace.Stream, 0, n+1024)
	ex := NewExecutor(prog)
	ex.Run(n, func(r trace.Record) { s = append(s, r) })
	return s, nil
}
