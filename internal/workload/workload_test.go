package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestProfileValidation(t *testing.T) {
	for _, p := range StandardSuite() {
		if err := p.Validate(); err != nil {
			t.Errorf("standard profile %s invalid: %v", p.Name, err)
		}
	}
	bad := OLTPDB2()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = OLTPDB2()
	bad.TxTypes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero TxTypes accepted")
	}
	bad = OLTPDB2()
	bad.InterruptEvery = 100
	bad.HandlerFuncs = 0
	if err := bad.Validate(); err == nil {
		t.Error("interrupts without handlers accepted")
	}
	bad = OLTPDB2()
	bad.TxSkew = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero TxSkew accepted")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("OLTP DB2")
	if err != nil || p.Name != "OLTP DB2" {
		t.Errorf("ByName: %v %v", p.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestStandardSuiteHasSix(t *testing.T) {
	suite := StandardSuite()
	if len(suite) != 6 {
		t.Fatalf("suite size = %d, want 6", len(suite))
	}
	suites := map[string]int{}
	for _, p := range suite {
		suites[p.Suite]++
	}
	for _, s := range []string{"OLTP", "DSS", "Web"} {
		if suites[s] != 2 {
			t.Errorf("suite %s has %d workloads, want 2", s, suites[s])
		}
	}
}

func TestXLSuite(t *testing.T) {
	xl := XLSuite()
	if len(xl) != 2 {
		t.Fatalf("XL suite size = %d, want 2", len(xl))
	}
	for _, p := range xl {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		got, err := ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ByName(%q) = %v, %v", p.Name, got.Name, err)
		}
	}
}

// TestXLFootprints locks the XL suite's reason to exist: each XL program
// image must be at least 4x the largest standard footprint, so the
// design-space sweeps keep differentiating where the standard six
// saturate.
func TestXLFootprints(t *testing.T) {
	if testing.Short() {
		t.Skip("program builds skipped in -short mode")
	}
	maxStd := 0
	for _, p := range StandardSuite() {
		prog, err := BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if prog.FootprintBlks > maxStd {
			maxStd = prog.FootprintBlks
		}
	}
	for _, p := range XLSuite() {
		prog, err := BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if prog.FootprintBlks < 4*maxStd {
			t.Errorf("%s footprint %d blocks < 4x largest standard (%d)", p.Name, prog.FootprintBlks, maxStd)
		}
	}
}

func TestBuildProgramDeterministic(t *testing.T) {
	a, err := BuildProgram(OLTPDB2())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildProgram(OLTPDB2())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Funcs) != len(b.Funcs) {
		t.Fatalf("function counts differ: %d vs %d", len(a.Funcs), len(b.Funcs))
	}
	for i := range a.Funcs {
		if a.Funcs[i].Base != b.Funcs[i].Base || a.Funcs[i].Instrs != b.Funcs[i].Instrs {
			t.Fatalf("func %d differs", i)
		}
	}
}

func TestBuildProgramPartitions(t *testing.T) {
	p := OLTPDB2()
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if prog.AppEnd != p.Funcs {
		t.Errorf("AppEnd = %d, want %d", prog.AppEnd, p.Funcs)
	}
	if prog.SharedEnd-prog.AppEnd != p.SharedFuncs {
		t.Errorf("shared funcs = %d, want %d", prog.SharedEnd-prog.AppEnd, p.SharedFuncs)
	}
	if prog.HandlerEnd-prog.SharedEnd != p.HandlerFuncs {
		t.Errorf("handler funcs = %d, want %d", prog.HandlerEnd-prog.SharedEnd, p.HandlerFuncs)
	}
	for i, f := range prog.Funcs {
		if f.Handler != (i >= prog.SharedEnd) {
			t.Fatalf("func %d handler flag wrong", i)
		}
		if f.Base%isa.BlockBytes != 0 {
			t.Fatalf("func %d not block aligned: %v", i, f.Base)
		}
		if f.Instrs <= 0 {
			t.Fatalf("func %d has %d instrs", i, f.Instrs)
		}
	}
}

func TestFootprintExceedsL1(t *testing.T) {
	// The premise of the paper: instruction working sets far larger than
	// a 64KB L1-I (1024 blocks).
	for _, p := range StandardSuite() {
		prog, err := BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if prog.FootprintBlks < 4*1024 {
			t.Errorf("%s footprint %d blocks; want > 4096 (256KB)", p.Name, prog.FootprintBlks)
		}
	}
}

func TestFunctionsDoNotOverlap(t *testing.T) {
	prog, err := BuildProgram(WebApache())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prog.Funcs); i++ {
		prev, cur := prog.Funcs[i-1], prog.Funcs[i]
		if cur.Base == 0 {
			continue
		}
		prevEnd := prev.Base.Plus(prev.Instrs)
		// Segments restart at fixed bases; only check within a segment.
		if cur.Base > prev.Base && cur.Base < prevEnd {
			t.Fatalf("func %d overlaps func %d", i, i-1)
		}
	}
}

func TestExecutorDeterministic(t *testing.T) {
	s1, err := GenerateStream(DSSQry2(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GenerateStream(DSSQry2(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("records differ at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestExecutorMeetsBudget(t *testing.T) {
	s, err := GenerateStream(OLTPDB2(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(s)) < 50000 {
		t.Errorf("stream has %d records, want >= 50000", len(s))
	}
	// Budget overshoot should be tiny (stop is at instruction grain).
	if uint64(len(s)) > 50001 {
		t.Errorf("stream overshoot: %d records", len(s))
	}
}

func TestStreamPCsAreInstructionAligned(t *testing.T) {
	s, err := GenerateStream(WebZeus(), 30000)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range s {
		if r.PC%isa.InstrBytes != 0 {
			t.Fatalf("record %d PC %v not aligned", i, r.PC)
		}
	}
}

func TestStreamHasInterrupts(t *testing.T) {
	s, err := GenerateStream(OLTPOracle(), 200000)
	if err != nil {
		t.Fatal(err)
	}
	var tl1, entries, returns int
	for _, r := range s {
		if r.TL == isa.TL1 {
			tl1++
		}
		if r.Flags.Has(trace.FlagTrapEntry) {
			entries++
		}
		if r.Flags.Has(trace.FlagTrapReturn) {
			returns++
		}
	}
	if entries == 0 || tl1 == 0 {
		t.Fatalf("no interrupts observed: tl1=%d entries=%d", tl1, entries)
	}
	if diff := entries - returns; diff < -1 || diff > 1 {
		t.Errorf("trap entries %d vs returns %d unbalanced", entries, returns)
	}
	// TL1 share should be small but non-trivial.
	frac := float64(tl1) / float64(len(s))
	if frac < 0.001 || frac > 0.2 {
		t.Errorf("TL1 fraction = %f, want in [0.001, 0.2]", frac)
	}
}

func TestTrapEntryOnlyAtTL1(t *testing.T) {
	s, err := GenerateStream(OLTPDB2(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range s {
		if r.Flags.Has(trace.FlagTrapEntry) && r.TL != isa.TL1 {
			t.Fatalf("record %d has TrapEntry at TL0", i)
		}
		if r.Flags.Has(trace.FlagTrapReturn) && r.TL != isa.TL0 {
			t.Fatalf("record %d has TrapReturn at TL1", i)
		}
	}
}

func TestStreamHasBranchesAndCalls(t *testing.T) {
	s, err := GenerateStream(OLTPDB2(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	var cond, taken, calls int
	for _, r := range s {
		if r.Flags.Has(trace.FlagCondBranch) {
			cond++
			if r.Flags.Has(trace.FlagBranchTaken) {
				taken++
			}
		}
		if r.Flags.Has(trace.FlagCallTarget) {
			calls++
		}
	}
	if cond == 0 || calls == 0 {
		t.Fatalf("stream lacks control flow: cond=%d calls=%d", cond, calls)
	}
	if taken == 0 || taken == cond {
		t.Errorf("conditional branches all one direction: %d/%d", taken, cond)
	}
}

func TestControlFlowConsistency(t *testing.T) {
	// A non-taken conditional branch must fall through to PC+4 unless an
	// interrupt intervened; a taken one must not.
	s, err := GenerateStream(DSSQry17(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(s); i++ {
		r, next := s[i], s[i+1]
		if !r.Flags.Has(trace.FlagCondBranch) || r.TL != next.TL {
			continue
		}
		fallthru := next.PC == r.PC.Plus(1)
		if r.Flags.Has(trace.FlagBranchTaken) && fallthru {
			t.Fatalf("record %d: taken branch fell through", i)
		}
		if !r.Flags.Has(trace.FlagBranchTaken) && !fallthru {
			t.Fatalf("record %d: not-taken branch jumped (PC %v -> %v)", i, r.PC, next.PC)
		}
	}
}

func TestStreamIsRepetitive(t *testing.T) {
	// The core premise: the retire-order block stream revisits the same
	// blocks heavily (working set << dynamic stream length).
	s, err := GenerateStream(OLTPDB2(), 500000)
	if err != nil {
		t.Fatal(err)
	}
	blocks := s.Blocks()
	uniq := map[isa.Block]struct{}{}
	for _, b := range blocks {
		uniq[b] = struct{}{}
	}
	reuse := float64(len(blocks)) / float64(len(uniq))
	if reuse < 3 {
		t.Errorf("block reuse factor = %.1f, want >= 3 (repetitive stream)", reuse)
	}
}

func TestExecutorResume(t *testing.T) {
	// Two Run calls should continue the stream, not restart it.
	prog, err := BuildProgram(DSSQry2())
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(prog)
	var first, second trace.Stream
	ex.Run(1000, func(r trace.Record) { first = append(first, r) })
	ex.Run(1000, func(r trace.Record) { second = append(second, r) })
	if ex.Emitted() < 2000 {
		t.Fatalf("Emitted = %d, want >= 2000", ex.Emitted())
	}
	if len(second) == 0 {
		t.Fatal("second run emitted nothing")
	}
	// A fresh executor run of 2000+ should start with `first` as prefix.
	ex2 := NewExecutor(prog)
	var all trace.Stream
	ex2.Run(2000, func(r trace.Record) { all = append(all, r) })
	for i := range first {
		if all[i] != first[i] {
			t.Fatalf("resume changed prefix at %d", i)
		}
	}
}

func TestOpLen(t *testing.T) {
	run := op{kind: opRun, runLen: 7}
	if opLen(&run) != 7 {
		t.Errorf("opRun len = %d", opLen(&run))
	}
	call := op{kind: opCall}
	if opLen(&call) != 1 {
		t.Errorf("opCall len = %d", opLen(&call))
	}
	skip := op{kind: opCondSkip, skipInstrs: 5}
	if opLen(&skip) != 1 {
		t.Errorf("opCondSkip len = %d", opLen(&skip))
	}
	loop := op{kind: opLoop, body: []op{run, call}}
	if opLen(&loop) != 9 {
		t.Errorf("opLoop len = %d, want 9", opLen(&loop))
	}
}

func TestWorkloadsDiffer(t *testing.T) {
	a, err := GenerateStream(OLTPDB2(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(WebApache(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	n := minInt(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i].PC == b[i].PC {
			same++
		}
	}
	if same == n {
		t.Error("different workloads produced identical streams")
	}
}
