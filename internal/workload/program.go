package workload

import (
	"math/rand"

	"repro/internal/isa"
)

// opKind discriminates the statements inside a synthetic function body.
type opKind uint8

const (
	// opRun executes n sequential instructions.
	opRun opKind = iota
	// opCall executes a call instruction and transfers to a callee chosen
	// from the site's weighted target list.
	opCall
	// opCondSkip executes a conditional branch that, when taken, jumps
	// forward over skipInstrs instructions.
	opCondSkip
	// opLoop executes its body a data-dependent number of times with a
	// taken back-edge branch after each iteration but the last.
	opLoop
)

// op is one statement of a function body. Offsets are in instructions from
// the function base; the builder lays ops out contiguously so execution can
// compute every PC from the function base address.
type op struct {
	kind opKind

	// opRun
	runLen int

	// opCall: candidate callee indices into Program.Funcs. Monomorphic
	// sites have one target; polymorphic sites resolve deterministically
	// from (siteID, transaction variant), so a transaction variant always
	// takes the same path — control-flow variation is coarse-grained, as
	// in real transaction code.
	targets []int
	siteID  int
	// loopLeaf marks loop-embedded helper calls: the callee runs as a
	// leaf (its own call sites do not expand), keeping per-iteration
	// footprints small like real inner-loop helpers.
	loopLeaf bool

	// opCondSkip
	skipInstrs int

	// opLoop
	body    []op
	iterMin int
	iterMax int
}

// Func is one synthetic function.
type Func struct {
	// Index is the function's position in Program.Funcs.
	Index int
	// Base is the address of the first instruction (block aligned).
	Base isa.Addr
	// Instrs is the total instruction count (body layout length).
	Instrs int
	// Handler marks trap-handler functions (executed at TL1).
	Handler bool
	body    []op
}

// Blocks returns the function footprint in instruction blocks.
func (f *Func) Blocks() int {
	return int(isa.BlockOf(f.Base.Plus(f.Instrs-1))-isa.BlockOf(f.Base)) + 1
}

// Program is a complete synthetic program image.
type Program struct {
	Profile Profile
	// Funcs holds application functions, then shared-library functions,
	// then trap handlers (indices partitioned by the ranges below).
	Funcs []*Func
	// AppFuncs, SharedFuncs, HandlerFuncs give the index ranges.
	AppEnd     int // Funcs[0:AppEnd] are application functions
	SharedEnd  int // Funcs[AppEnd:SharedEnd] are shared library
	HandlerEnd int // Funcs[SharedEnd:HandlerEnd] are trap handlers
	// Entries are the transaction entry function indices with dispatch
	// weights (skewed per Profile.TxSkew).
	Entries       []int
	EntryWeights  []int
	FootprintBlks int
	callSites     int // total call-site count (siteID allocator)
}

// BuildProgram deterministically constructs the program image for a profile.
func BuildProgram(p Profile) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	prog := &Program{Profile: p}

	// Lay out functions: application code at 0x100000, shared library at
	// a distant segment, handlers in a high "kernel" segment — mirroring
	// the multi-megabyte spread of server binaries the paper describes.
	next := isa.Addr(0x0010_0000)
	addFunc := func(minB, maxB int, handler bool) *Func {
		blocks := minB
		if maxB > minB {
			blocks += rng.Intn(maxB - minB + 1)
		}
		instrs := blocks*isa.InstrsPerBlock - rng.Intn(isa.InstrsPerBlock)
		if instrs < 1 {
			instrs = 1
		}
		f := &Func{Index: len(prog.Funcs), Base: next, Instrs: instrs, Handler: handler}
		prog.Funcs = append(prog.Funcs, f)
		// Functions start on fresh blocks; occasionally leave a hole so
		// spatial adjacency is not an artifact of dense packing.
		nb := isa.BlockOf(next.Plus(instrs-1)) + 1
		if rng.Intn(4) == 0 {
			nb += isa.Block(1 + rng.Intn(3))
		}
		next = nb.BlockBase()
		return f
	}

	for i := 0; i < p.Funcs; i++ {
		addFunc(p.FuncBlocksMin, p.FuncBlocksMax, false)
	}
	prog.AppEnd = len(prog.Funcs)
	next = 0x0200_0000 // shared library segment
	for i := 0; i < p.SharedFuncs; i++ {
		addFunc(p.FuncBlocksMin, p.FuncBlocksMax, false)
	}
	prog.SharedEnd = len(prog.Funcs)
	next = 0x0400_0000 // trap handler segment
	for i := 0; i < p.HandlerFuncs; i++ {
		addFunc(1, p.HandlerBlocksMax, true)
	}
	prog.HandlerEnd = len(prog.Funcs)

	// Build bodies. Call targets are biased: most call sites reference the
	// shared library or "nearby" application functions, producing the
	// hub-and-spoke call graphs of server software.
	for i, f := range prog.Funcs {
		prog.buildBody(rng, f, i)
	}

	// Transaction entry points with skewed dispatch weights: weight of
	// type k is proportional to skew^k (normalized to integers).
	perm := rng.Perm(prog.AppEnd)
	w := 1000.0
	for i := 0; i < p.TxTypes; i++ {
		prog.Entries = append(prog.Entries, perm[i])
		prog.EntryWeights = append(prog.EntryWeights, int(w)+1)
		w *= p.TxSkew
	}

	for _, f := range prog.Funcs {
		prog.FootprintBlks += f.Blocks()
	}
	return prog, nil
}

// buildBody fills in the op list for function fi.
func (prog *Program) buildBody(rng *rand.Rand, f *Func, fi int) {
	p := prog.Profile
	// Reserve the final instruction as a plain run (the return): every
	// conditional branch in the body then has a laid-out fall-through.
	remaining := f.Instrs - 1
	var body []op

	// Decide event counts from profile expectations.
	calls := poissonish(rng, p.CallSitesPerFunc)
	if f.Handler {
		calls = rng.Intn(2) // handlers make at most one nested call
	}
	loops := poissonish(rng, p.LoopsPerFunc)
	skips := poissonish(rng, p.CondSkipsPerFunc)
	if f.Handler {
		// Handlers are compact code with data-dependent jumps crafted to
		// skip entire blocks (Section 5.2's explanation for the strong
		// TL1 benefit of larger regions).
		loops = 0
		skips = 1 + rng.Intn(2)
	}

	// Interleave events between straight-line runs. Consume instructions
	// as we emit ops; each event costs at least one instruction.
	type event struct{ kind opKind }
	var events []event
	for i := 0; i < calls; i++ {
		events = append(events, event{opCall})
	}
	for i := 0; i < loops; i++ {
		events = append(events, event{opLoop})
	}
	for i := 0; i < skips; i++ {
		events = append(events, event{opCondSkip})
	}
	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

	emitRun := func(n int) {
		if n <= 0 {
			return
		}
		if n > remaining {
			n = remaining
		}
		if n <= 0 {
			return
		}
		body = append(body, op{kind: opRun, runLen: n})
		remaining -= n
	}

	for _, ev := range events {
		if remaining <= 2 {
			break
		}
		// Straight-line prelude before the event.
		emitRun(1 + rng.Intn(maxInt(1, remaining/(len(events)+1))))
		if remaining <= 1 {
			break
		}
		switch ev.kind {
		case opCall:
			body = append(body, prog.newCallOp(rng, fi, false))
			remaining-- // the call instruction
		case opCondSkip:
			maxSkip := p.SkipBlocksMax * isa.InstrsPerBlock
			if maxSkip > remaining-1 {
				maxSkip = remaining - 1
			}
			if maxSkip < 1 {
				continue
			}
			skip := 1 + rng.Intn(maxSkip)
			if f.Handler && maxSkip >= isa.InstrsPerBlock {
				// Handler jumps skip at least a whole block.
				skip = isa.InstrsPerBlock + rng.Intn(maxSkip-isa.InstrsPerBlock+1)
			} else if !f.Handler && rng.Float64() < 0.7 {
				// Most application skips are short forward branches that
				// stay within the current block, leaving the block-grain
				// retire stream unchanged whichever way they resolve.
				skip = 1 + rng.Intn(minInt(8, maxSkip))
			}
			body = append(body, op{kind: opCondSkip, skipInstrs: skip})
			remaining-- // the branch instruction
			// The skippable instructions are laid out as a run that the
			// executor may jump over.
			emitRun(skip)
		case opLoop:
			bodyLen := 1 + rng.Intn(maxInt(1, minInt(p.LoopBodyBlocksMax*isa.InstrsPerBlock, remaining-1)))
			inner := []op{{kind: opRun, runLen: bodyLen}}
			// Loops may embed a helper call (tight loop calling a helper,
			// the case Section 3.1 calls out).
			if rng.Float64() < 0.3 && !f.Handler {
				inner = append(inner, prog.newCallOp(rng, fi, true))
			}
			body = append(body, op{
				kind: opLoop, body: inner,
				iterMin: p.LoopIterMin, iterMax: p.LoopIterMax,
			})
			remaining -= bodyLen + 1 // body + back-edge branch
		}
	}
	emitRun(remaining)
	body = append(body, op{kind: opRun, runLen: 1}) // the reserved return
	f.body = body
}

// newCallOp builds one call-site op. Most call sites are monomorphic
// (direct calls); the remainder dispatch among CallFanout targets selected
// by the transaction variant, modeling indirect calls and dispatch tables
// whose outcome is data-dependent but stable for a given request shape.
func (prog *Program) newCallOp(rng *rand.Rand, fi int, loopLeaf bool) op {
	fanout := prog.Profile.CallFanout
	if rng.Float64() < prog.Profile.MonoCallFrac {
		fanout = 1
	}
	prog.callSites++
	return op{
		kind:     opCall,
		targets:  prog.pickTargets(rng, fi, fanout),
		siteID:   prog.callSites,
		loopLeaf: loopLeaf,
	}
}

// TargetFor resolves a call site for a transaction variant: a fixed hash
// of (siteID, variant) so the same variant always takes the same path.
func (o *op) TargetFor(variant int) int {
	if len(o.targets) == 1 {
		return o.targets[0]
	}
	h := uint64(o.siteID)*2654435761 ^ uint64(variant)*0x9e3779b9
	return o.targets[h%uint64(len(o.targets))]
}

// pickTargets selects fanout callee indices for a call site in fi.
// Handler call sites only target other handlers so that interrupt service
// stays short and confined to the TL1 code segment.
func (prog *Program) pickTargets(rng *rand.Rand, fi, fanout int) []int {
	p := prog.Profile
	out := make([]int, 0, fanout)
	if fi >= prog.SharedEnd {
		for len(out) < fanout {
			t := prog.SharedEnd + rng.Intn(prog.HandlerEnd-prog.SharedEnd)
			if t != fi || prog.HandlerEnd-prog.SharedEnd == 1 {
				out = append(out, t)
			}
		}
		return out
	}
	for len(out) < fanout {
		var t int
		if prog.SharedEnd > prog.AppEnd && rng.Float64() < p.SharedCallBias {
			t = prog.AppEnd + rng.Intn(prog.SharedEnd-prog.AppEnd)
		} else if rng.Intn(2) == 0 {
			// Locality: call a function "near" this one in layout order.
			d := rng.Intn(41) - 20
			t = (fi + d + prog.AppEnd) % prog.AppEnd
		} else {
			t = rng.Intn(prog.AppEnd)
		}
		if t != fi {
			out = append(out, t)
		}
	}
	return out
}

// poissonish draws a small non-negative count with the given mean using a
// simple geometric-style sampler (adequate for body construction).
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := int(mean)
	frac := mean - float64(n)
	if rng.Float64() < frac {
		n++
	}
	// Add ±1 jitter to avoid every function having an identical shape.
	switch rng.Intn(4) {
	case 0:
		if n > 0 {
			n--
		}
	case 1:
		n++
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
