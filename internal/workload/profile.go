// Package workload generates the synthetic server workloads that stand in
// for the paper's commercial benchmark suite (Table I: OLTP on DB2 and
// Oracle, TPC-H DSS queries 2 and 17, and SPECweb99 on Apache and Zeus).
//
// A Profile parameterizes a randomly constructed but deterministic program
// image (function call graph, loop nests, conditional skip branches, a
// shared-library region, and trap-handler code) and an Executor walks that
// image, emitting the exact correct-path retire-order instruction stream —
// the stream the paper identifies as the right prefetcher training input.
// Spontaneous interrupts switch execution to trap-level-1 handler code at
// Poisson-distributed points, reproducing the stream fragmentation of
// Section 2.3.
//
// The profiles differ in instruction footprint, call-graph shape, loop
// behaviour, branch entropy, and interrupt rate so that the six workloads
// reproduce the relative figure shapes of the paper: Web workloads suffer
// the most cache filtering, OLTP the most wrong-path noise, and DSS the
// least of both (small hot loops).
package workload

import "fmt"

// Profile describes one synthetic workload.
type Profile struct {
	// Name labels the workload in tables ("OLTP DB2", ...).
	Name string
	// Suite groups workloads ("OLTP", "DSS", "Web").
	Suite string
	// Seed fixes both program construction and execution randomness.
	Seed int64

	// Funcs is the number of application functions.
	Funcs int
	// FuncBlocksMin/Max bound function sizes in instruction blocks.
	FuncBlocksMin, FuncBlocksMax int
	// SharedFuncs is the number of shared-library functions, which every
	// application function may call (models libc/OS hot paths).
	SharedFuncs int
	// TxTypes is the number of distinct top-level transaction types; each
	// execution repeatedly dispatches one according to TxSkew.
	TxTypes int
	// TxSkew in (0,1]: probability mass of the hottest transaction type
	// relative to a uniform mix (1 = uniform; smaller = more skewed mix,
	// which raises cross-transaction cache interference).
	TxSkew float64
	// TxVariants is the number of distinct path variants per transaction:
	// polymorphic call sites resolve deterministically per variant, so
	// control flow is repetitive within a variant and varies across them.
	TxVariants int

	// CallFanout is the number of static call targets at a polymorphic
	// call site (indirect calls, dispatch tables).
	CallFanout int
	// MonoCallFrac is the fraction of call sites that are monomorphic
	// (direct calls with a single target) — the common case in compiled
	// server code; the rest dispatch among CallFanout targets.
	MonoCallFrac float64
	// CallSitesPerFunc is the expected number of call sites in a function.
	CallSitesPerFunc float64
	// SharedCallBias in [0,1] is the probability a call site targets the
	// shared-library region instead of an application function.
	SharedCallBias float64
	// MaxCallDepth bounds dynamic call nesting.
	MaxCallDepth int

	// LoopsPerFunc is the expected number of loops per function.
	LoopsPerFunc float64
	// LoopBodyBlocksMax bounds loop body footprint in blocks.
	LoopBodyBlocksMax int
	// LoopIterMin/Max bound the data-dependent iteration count.
	LoopIterMin, LoopIterMax int

	// CondSkipsPerFunc is the expected number of conditional forward-skip
	// branches per function (e.g. rarely-taken error handling).
	CondSkipsPerFunc float64
	// SkipTakenProb is the per-visit probability a skip branch is taken;
	// values near 0.5 maximize branch-predictor noise.
	SkipTakenProb float64
	// SkipBlocksMax bounds the number of blocks a taken skip jumps over.
	SkipBlocksMax int

	// InterruptEvery is the mean number of retired instructions between
	// spontaneous hardware interrupts (0 disables interrupts).
	InterruptEvery int
	// HandlerFuncs is the number of distinct trap-handler functions.
	HandlerFuncs int
	// HandlerBlocksMax bounds handler size in blocks.
	HandlerBlocksMax int
}

// Validate rejects inconsistent profiles.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: empty name")
	case p.Funcs <= 0:
		return fmt.Errorf("workload %s: Funcs = %d", p.Name, p.Funcs)
	case p.FuncBlocksMin <= 0 || p.FuncBlocksMax < p.FuncBlocksMin:
		return fmt.Errorf("workload %s: bad function size range [%d,%d]", p.Name, p.FuncBlocksMin, p.FuncBlocksMax)
	case p.TxTypes <= 0 || p.TxTypes > p.Funcs:
		return fmt.Errorf("workload %s: TxTypes = %d with %d funcs", p.Name, p.TxTypes, p.Funcs)
	case p.TxSkew <= 0 || p.TxSkew > 1:
		return fmt.Errorf("workload %s: TxSkew = %f out of (0,1]", p.Name, p.TxSkew)
	case p.TxVariants < 1:
		return fmt.Errorf("workload %s: TxVariants = %d", p.Name, p.TxVariants)
	case p.CallFanout <= 0:
		return fmt.Errorf("workload %s: CallFanout = %d", p.Name, p.CallFanout)
	case p.MonoCallFrac < 0 || p.MonoCallFrac > 1:
		return fmt.Errorf("workload %s: MonoCallFrac = %f", p.Name, p.MonoCallFrac)
	case p.MaxCallDepth <= 0:
		return fmt.Errorf("workload %s: MaxCallDepth = %d", p.Name, p.MaxCallDepth)
	case p.LoopIterMin < 1 || p.LoopIterMax < p.LoopIterMin:
		return fmt.Errorf("workload %s: bad loop iteration range [%d,%d]", p.Name, p.LoopIterMin, p.LoopIterMax)
	case p.SkipTakenProb < 0 || p.SkipTakenProb > 1:
		return fmt.Errorf("workload %s: SkipTakenProb = %f", p.Name, p.SkipTakenProb)
	case p.InterruptEvery < 0:
		return fmt.Errorf("workload %s: InterruptEvery = %d", p.Name, p.InterruptEvery)
	case p.InterruptEvery > 0 && (p.HandlerFuncs <= 0 || p.HandlerBlocksMax <= 0):
		return fmt.Errorf("workload %s: interrupts enabled but no handlers", p.Name)
	}
	return nil
}

// The six standard workloads. Footprints are scaled to laptop-runnable
// sizes while remaining several multiples of the 64KB L1-I (the property
// the paper needs: instruction working sets far exceeding L1 capacity).
//
// OLTP: big footprints, deep call chains through shared code, frequent
// interrupts, noisy data-dependent branches (transaction logic).
// DSS: scan/join loops — smaller hot code, long tight loops, few interrupts.
// Web: very many small request-handler functions with a skewed dispatch
// mix — maximal cache-replacement fragmentation.

// OLTPDB2 models TPC-C on IBM DB2.
func OLTPDB2() Profile {
	return Profile{
		Name: "OLTP DB2", Suite: "OLTP", Seed: 101,
		Funcs: 6000, FuncBlocksMin: 1, FuncBlocksMax: 8,
		SharedFuncs: 130, TxTypes: 5, TxSkew: 0.45, TxVariants: 6,
		CallFanout: 5, MonoCallFrac: 0.78, CallSitesPerFunc: 2.1, SharedCallBias: 0.32, MaxCallDepth: 6,
		LoopsPerFunc: 0.5, LoopBodyBlocksMax: 4, LoopIterMin: 2, LoopIterMax: 12,
		CondSkipsPerFunc: 1.7, SkipTakenProb: 0.34, SkipBlocksMax: 3,
		InterruptEvery: 9000, HandlerFuncs: 10, HandlerBlocksMax: 7,
	}
}

// OLTPOracle models TPC-C on Oracle; deeper call chains and noisier
// branches than DB2 (the paper observes the largest wrong-path loss here).
func OLTPOracle() Profile {
	return Profile{
		Name: "OLTP Oracle", Suite: "OLTP", Seed: 102,
		Funcs: 7000, FuncBlocksMin: 1, FuncBlocksMax: 7,
		SharedFuncs: 140, TxTypes: 5, TxSkew: 0.5, TxVariants: 7,
		CallFanout: 6, MonoCallFrac: 0.72, CallSitesPerFunc: 2.2, SharedCallBias: 0.3, MaxCallDepth: 6,
		LoopsPerFunc: 0.45, LoopBodyBlocksMax: 4, LoopIterMin: 2, LoopIterMax: 10,
		CondSkipsPerFunc: 2.0, SkipTakenProb: 0.30, SkipBlocksMax: 3,
		InterruptEvery: 8000, HandlerFuncs: 12, HandlerBlocksMax: 8,
	}
}

// DSSQry2 models TPC-H query 2 on DB2: loop-dominated scan code.
func DSSQry2() Profile {
	return Profile{
		Name: "DSS Qry2", Suite: "DSS", Seed: 103,
		Funcs: 2600, FuncBlocksMin: 2, FuncBlocksMax: 12,
		SharedFuncs: 100, TxTypes: 4, TxSkew: 0.8, TxVariants: 4,
		CallFanout: 4, MonoCallFrac: 0.88, CallSitesPerFunc: 2.2, SharedCallBias: 0.25, MaxCallDepth: 5,
		LoopsPerFunc: 0.9, LoopBodyBlocksMax: 6, LoopIterMin: 3, LoopIterMax: 16,
		CondSkipsPerFunc: 1.0, SkipTakenProb: 0.2, SkipBlocksMax: 2,
		InterruptEvery: 20000, HandlerFuncs: 8, HandlerBlocksMax: 6,
	}
}

// DSSQry17 models TPC-H query 17: like Qry2 with a different join kernel
// (longer loops over a slightly larger footprint).
func DSSQry17() Profile {
	return Profile{
		Name: "DSS Qry17", Suite: "DSS", Seed: 104,
		Funcs: 3000, FuncBlocksMin: 2, FuncBlocksMax: 11,
		SharedFuncs: 110, TxTypes: 4, TxSkew: 0.7, TxVariants: 4,
		CallFanout: 4, MonoCallFrac: 0.85, CallSitesPerFunc: 2.2, SharedCallBias: 0.25, MaxCallDepth: 5,
		LoopsPerFunc: 0.9, LoopBodyBlocksMax: 7, LoopIterMin: 4, LoopIterMax: 24,
		CondSkipsPerFunc: 1.1, SkipTakenProb: 0.22, SkipBlocksMax: 2,
		InterruptEvery: 22000, HandlerFuncs: 8, HandlerBlocksMax: 6,
	}
}

// WebApache models SPECweb99 on Apache: many small handlers, skewed URL
// mix, heavy OS interaction.
func WebApache() Profile {
	return Profile{
		Name: "Web Apache", Suite: "Web", Seed: 105,
		Funcs: 8000, FuncBlocksMin: 1, FuncBlocksMax: 5,
		SharedFuncs: 150, TxTypes: 8, TxSkew: 0.35, TxVariants: 8,
		CallFanout: 7, MonoCallFrac: 0.70, CallSitesPerFunc: 2.0, SharedCallBias: 0.38, MaxCallDepth: 6,
		LoopsPerFunc: 0.35, LoopBodyBlocksMax: 3, LoopIterMin: 2, LoopIterMax: 8,
		CondSkipsPerFunc: 1.5, SkipTakenProb: 0.3, SkipBlocksMax: 3,
		InterruptEvery: 6000, HandlerFuncs: 14, HandlerBlocksMax: 8,
	}
}

// WebZeus models SPECweb99 on Zeus: like Apache with an event-driven
// (rather than worker-thread) dispatch shape — fewer but hotter handlers.
func WebZeus() Profile {
	return Profile{
		Name: "Web Zeus", Suite: "Web", Seed: 106,
		Funcs: 7000, FuncBlocksMin: 1, FuncBlocksMax: 6,
		SharedFuncs: 140, TxTypes: 7, TxSkew: 0.4, TxVariants: 8,
		CallFanout: 6, MonoCallFrac: 0.74, CallSitesPerFunc: 2.0, SharedCallBias: 0.36, MaxCallDepth: 6,
		LoopsPerFunc: 0.4, LoopBodyBlocksMax: 3, LoopIterMin: 2, LoopIterMax: 9,
		CondSkipsPerFunc: 1.4, SkipTakenProb: 0.28, SkipBlocksMax: 3,
		InterruptEvery: 6500, HandlerFuncs: 12, HandlerBlocksMax: 8,
	}
}

// StandardSuite returns the six workloads in the paper's presentation order.
func StandardSuite() []Profile {
	return []Profile{
		OLTPDB2(), OLTPOracle(),
		DSSQry2(), DSSQry17(),
		WebApache(), WebZeus(),
	}
}

// The XL suite: two synthetic profiles with instruction footprints at
// least 4x the largest of the standard six (several megabytes against a
// 64KB L1-I), sized for the MANA-style design-space sweeps — history
// budgets and cache geometries that look saturated under the standard
// footprints keep differentiating when the working set grows by another
// factor of four.

// OLTPXL models a consolidated OLTP install (many schemas and stored
// procedures resident in one server image): the DB2 shape scaled to a
// ~7MB footprint with a broader transaction mix.
func OLTPXL() Profile {
	return Profile{
		Name: "OLTP XL", Suite: "OLTP", Seed: 107,
		Funcs: 26000, FuncBlocksMin: 1, FuncBlocksMax: 8,
		SharedFuncs: 260, TxTypes: 9, TxSkew: 0.45, TxVariants: 8,
		CallFanout: 5, MonoCallFrac: 0.78, CallSitesPerFunc: 2.1, SharedCallBias: 0.32, MaxCallDepth: 6,
		LoopsPerFunc: 0.5, LoopBodyBlocksMax: 4, LoopIterMin: 2, LoopIterMax: 12,
		CondSkipsPerFunc: 1.7, SkipTakenProb: 0.34, SkipBlocksMax: 3,
		InterruptEvery: 9000, HandlerFuncs: 14, HandlerBlocksMax: 7,
	}
}

// WebXL models a large consolidated web tier (one image serving many
// virtual hosts): the Apache shape scaled to a ~7MB footprint of very many
// small handlers with a long-tailed URL mix.
func WebXL() Profile {
	return Profile{
		Name: "Web XL", Suite: "Web", Seed: 108,
		Funcs: 40000, FuncBlocksMin: 1, FuncBlocksMax: 5,
		SharedFuncs: 300, TxTypes: 12, TxSkew: 0.35, TxVariants: 10,
		CallFanout: 7, MonoCallFrac: 0.70, CallSitesPerFunc: 2.0, SharedCallBias: 0.38, MaxCallDepth: 6,
		LoopsPerFunc: 0.35, LoopBodyBlocksMax: 3, LoopIterMin: 2, LoopIterMax: 8,
		CondSkipsPerFunc: 1.5, SkipTakenProb: 0.3, SkipBlocksMax: 3,
		InterruptEvery: 6000, HandlerFuncs: 18, HandlerBlocksMax: 8,
	}
}

// XLSuite returns the extended-footprint workloads exercised by the
// design-space sweep artifacts (sweep-history, sweep-l1).
func XLSuite() []Profile {
	return []Profile{OLTPXL(), WebXL()}
}

// ByName returns the standard or XL profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range append(StandardSuite(), XLSuite()...) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}
