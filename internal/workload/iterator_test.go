package workload

import (
	"errors"
	"io"
	"testing"

	"repro/internal/trace"
)

// TestIteratorMatchesRun asserts the pull-model iterator reproduces the
// push-model Run stream exactly, phase boundaries included: Iterator(a, b)
// must equal Run(a) followed by Run(b) on an identical executor (the
// warmup-then-measure call pattern the simulator uses), record for record.
func TestIteratorMatchesRun(t *testing.T) {
	prog, err := BuildProgram(OLTPDB2())
	if err != nil {
		t.Fatal(err)
	}
	const warmup, measure = 30_000, 20_000

	var want []trace.Record
	ex := NewExecutor(prog)
	ex.Run(warmup, func(r trace.Record) { want = append(want, r) })
	ex.Run(measure, func(r trace.Record) { want = append(want, r) })

	it := NewIterator(prog, warmup, measure)
	defer it.Close()
	got, err := trace.Collect(it)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterator emitted %d records, Run emitted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := it.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next after exhaustion = %v, want EOF", err)
	}
}

// TestIteratorBatchParity asserts NextBatch yields the identical record
// sequence to Next on an identically seeded executor, for batch sizes
// below, at, and above the producer's internal batch, mixed with
// occasional per-record pulls.
func TestIteratorBatchParity(t *testing.T) {
	prog, err := BuildProgram(OLTPDB2())
	if err != nil {
		t.Fatal(err)
	}
	const warmup, measure = 30_000, 20_000
	want, err := trace.Collect(NewIterator(prog, warmup, measure))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, iterBatch - 1, iterBatch, iterBatch + 1, 3 * iterBatch} {
		it := NewIterator(prog, warmup, measure)
		var got []trace.Record
		buf := make([]trace.Record, batch)
		for i := 0; ; i++ {
			if i%5 == 4 { // interleave a per-record pull
				r, err := it.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatalf("batch %d: Next: %v", batch, err)
				}
				got = append(got, r)
				continue
			}
			n, err := it.NextBatch(buf)
			got = append(got, buf[:n]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("batch %d: NextBatch: %v", batch, err)
			}
		}
		it.Close()
		if len(got) != len(want) {
			t.Fatalf("batch %d: %d records, want %d", batch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: record %d = %+v, want %+v", batch, i, got[i], want[i])
			}
		}
	}
}

// TestIteratorPhaseBoundaryMatters pins down why the iterator takes
// phases instead of one total: the executor starts a fresh transaction at
// each Run call, so a single-phase stream and a split-phase stream of the
// same total length diverge after the boundary. If this ever stops
// holding, the phases parameter can be dropped.
func TestIteratorPhaseBoundaryMatters(t *testing.T) {
	prog, err := BuildProgram(OLTPDB2())
	if err != nil {
		t.Fatal(err)
	}
	const a, b = 10_000, 10_000
	one, err := trace.Collect(NewIterator(prog, a+b))
	if err != nil {
		t.Fatal(err)
	}
	two, err := trace.Collect(NewIterator(prog, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(two) {
		t.Fatalf("lengths differ: %d vs %d", len(one), len(two))
	}
	same := true
	for i := range one {
		if one[i] != two[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("single-phase and split-phase streams agree for this profile; phases kept for contract")
	}
}

// TestIteratorClose asserts an abandoned iterator releases its producer
// without deadlocking, and that Close is idempotent.
func TestIteratorClose(t *testing.T) {
	prog, err := BuildProgram(OLTPDB2())
	if err != nil {
		t.Fatal(err)
	}
	it := NewIterator(prog, 50_000_000) // far more than we will pull
	for i := 0; i < 10; i++ {
		if _, err := it.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestIteratorEmpty covers the zero-phase and zero-length cases.
func TestIteratorEmpty(t *testing.T) {
	prog, err := BuildProgram(OLTPDB2())
	if err != nil {
		t.Fatal(err)
	}
	it := NewIterator(prog)
	if _, err := it.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("no-phase iterator Next = %v, want EOF", err)
	}
	it.Close()
}
