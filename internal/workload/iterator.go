package workload

import (
	"io"
	"sync"

	"repro/internal/trace"
)

// iterBatch is the record batch size the executor iterator hands across
// its channel: large enough to amortize synchronization, small enough
// that a live iterator's footprint stays a few hundred kilobytes.
const iterBatch = 8192

// Iterator adapts the push-model Executor to the pull-model
// trace.Iterator: the executor runs in its own goroutine, handing record
// batches across a bounded channel, so consumers pull one record at a
// time with bounded memory and the emitted stream is byte-identical to
// the equivalent sequence of Run calls.
//
// Callers that stop early must Close the iterator to release the
// producer goroutine; Close after exhaustion is a cheap no-op.
type Iterator struct {
	batches chan []trace.Record
	stop    chan struct{}
	once    sync.Once
	cur     []trace.Record
	pos     int
}

// Iterator starts the executor producing phases' instruction counts —
// one Run call per phase, in order — and returns the pull side. Phase
// boundaries matter: the executor begins a fresh transaction at each Run
// call, so Iterator(a, b) reproduces Run(a)+Run(b) exactly (the pattern
// the simulator uses for warmup then measurement), which differs near the
// boundary from a single Run(a+b).
func (e *Executor) Iterator(phases ...uint64) *Iterator {
	it := &Iterator{
		batches: make(chan []trace.Record, 2),
		stop:    make(chan struct{}),
	}
	go func() {
		defer close(it.batches)
		buf := make([]trace.Record, 0, iterBatch)
		aborted := false
		emit := func(r trace.Record) {
			buf = append(buf, r)
			if len(buf) == iterBatch {
				select {
				case it.batches <- buf:
					buf = make([]trace.Record, 0, iterBatch)
				case <-it.stop:
					e.Abort()
					aborted = true
				}
			}
		}
		for _, n := range phases {
			if aborted {
				return
			}
			e.Run(n, emit)
		}
		if aborted || len(buf) == 0 {
			return
		}
		select {
		case it.batches <- buf:
		case <-it.stop:
		}
	}()
	return it
}

// NewIterator builds an executor over prog and returns its record
// iterator for the given phases (see Executor.Iterator).
func NewIterator(prog *Program, phases ...uint64) *Iterator {
	return NewExecutor(prog).Iterator(phases...)
}

// Next implements trace.Iterator; io.EOF marks the end of the final
// phase.
func (it *Iterator) Next() (trace.Record, error) {
	if it.pos >= len(it.cur) {
		b, ok := <-it.batches
		if !ok {
			return trace.Record{}, io.EOF
		}
		it.cur, it.pos = b, 0
	}
	r := it.cur[it.pos]
	it.pos++
	return r, nil
}

// NextBatch implements trace.BatchIterator by copying from the producer's
// current batch, so one channel receive feeds up to iterBatch records and
// the per-record synchronization of Next disappears from replay loops.
func (it *Iterator) NextBatch(dst []trace.Record) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if it.pos >= len(it.cur) {
		b, ok := <-it.batches
		if !ok {
			return 0, io.EOF
		}
		it.cur, it.pos = b, 0
	}
	n := copy(dst, it.cur[it.pos:])
	it.pos += n
	return n, nil
}

// Close aborts the producing executor and releases its goroutine. The
// aborted executor's stream state is unspecified, so a closed iterator
// must not be read further.
func (it *Iterator) Close() error {
	it.once.Do(func() { close(it.stop) })
	for range it.batches { // drain until the producer exits
	}
	return nil
}
