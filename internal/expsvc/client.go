package expsvc

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/httpapi"
	"repro/internal/report"
)

// statusPollMS is the long-poll wait WaitRun requests per status fetch.
const statusPollMS = 5000

// Client is the thin HTTP client of a pifexpd service — what the
// `experiments submit|status|diff -svc` CLI modes are built on.
type Client struct {
	base string
	hc   *http.Client
}

// DialService connects to a service at addr (host:port or
// http://host:port), verifying reachability and wire version via the
// health endpoint. token authenticates against a -auth-token protected
// service ("" for an open one).
func DialService(addr, token string) (*Client, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	c := &Client{base: base, hc: httpapi.Client(token)}
	var health struct {
		V int `json:"v"`
	}
	if err := c.get(context.Background(), "/v1/healthz", &health); err != nil {
		return nil, fmt.Errorf("expsvc: dial %s: %w", addr, err)
	}
	if health.V != WireVersion {
		return nil, fmt.Errorf("expsvc: dial %s: service speaks wire version %d, want %d", addr, health.V, WireVersion)
	}
	return c, nil
}

func (c *Client) get(ctx context.Context, path string, resp any) error {
	return httpapi.Do(ctx, c.hc, http.MethodGet, c.base+path, nil, resp)
}

func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	return httpapi.Do(ctx, c.hc, http.MethodPost, c.base+path, req, resp)
}

// Submit sends one sweep request; the returned status is the queued run.
func (c *Client) Submit(ctx context.Context, req Request) (Status, error) {
	var resp runResponse
	if err := c.post(ctx, "/v1/runs", submitRequest{V: WireVersion, Request: req}, &resp); err != nil {
		return Status{}, err
	}
	return resp.Run, nil
}

// Run fetches one run's status.
func (c *Client) Run(ctx context.Context, id string) (Status, error) {
	var resp runResponse
	if err := c.get(ctx, "/v1/runs/"+url.PathEscape(id), &resp); err != nil {
		return Status{}, err
	}
	return resp.Run, nil
}

// WaitRun long-polls one run until its state or progress moves past the
// given snapshot (or the server's poll window lapses) and returns the
// fresh status. onMove, when non-nil, is invoked with each fresh status;
// WaitRun returns once the run reaches a terminal state.
func (c *Client) WaitRun(ctx context.Context, id string, onMove func(Status)) (Status, error) {
	st, err := c.Run(ctx, id)
	if err != nil {
		return Status{}, err
	}
	for {
		if onMove != nil {
			onMove(st)
		}
		if st.State.Terminal() {
			return st, nil
		}
		var resp runResponse
		path := fmt.Sprintf("/v1/runs/%s?wait_ms=%d&state=%s&done=%d",
			url.PathEscape(id), statusPollMS, url.QueryEscape(string(st.State)), st.Done)
		if err := c.get(ctx, path, &resp); err != nil {
			return Status{}, err
		}
		st = resp.Run
	}
}

// Runs lists every run in the service's database.
func (c *Client) Runs(ctx context.Context) ([]Status, error) {
	var resp runsResponse
	if err := c.get(ctx, "/v1/runs", &resp); err != nil {
		return nil, err
	}
	return resp.Runs, nil
}

// Artifacts fetches a run's stored metadata and artifacts.
func (c *Client) Artifacts(ctx context.Context, id string) (report.Run, []report.Artifact, error) {
	var resp artifactsResponse
	if err := c.get(ctx, "/v1/runs/"+url.PathEscape(id)+"/artifacts", &resp); err != nil {
		return report.Run{}, nil, err
	}
	return resp.Run, resp.Artifacts, nil
}

// Jobs fetches a run's raw per-job results.
func (c *Client) Jobs(ctx context.Context, id string) ([]report.JobResult, error) {
	var resp jobsResponse
	if err := c.get(ctx, "/v1/runs/"+url.PathEscape(id)+"/jobs", &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Diff requests a comparison of two sides under default tolerances
// abs/rel and returns the typed report carrying the exit-code verdict.
func (c *Client) Diff(ctx context.Context, a, b DiffSide, abs, rel float64) (report.DiffReport, error) {
	var resp diffResponse
	if err := c.post(ctx, "/v1/diff", diffRequest{V: WireVersion, A: a, B: b, Abs: abs, Rel: rel}, &resp); err != nil {
		return report.DiffReport{}, err
	}
	return resp.Report, nil
}
