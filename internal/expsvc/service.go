package expsvc

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/remote"
	"repro/internal/report"
	"repro/internal/runner"
)

// DefaultMaxAttempts bounds how many times one run may be (re)started
// before restart recovery marks it failed instead of requeuing: a run
// that crashes the service twice is not retried a third time.
const DefaultMaxAttempts = 2

// queueCap bounds the submission queue; submissions beyond it are
// refused rather than buffered without limit.
const queueCap = 256

// Config parameterizes a Service.
type Config struct {
	// DBDir roots the run database (and results corpus).
	DBDir string
	// Backend is the execution backend spec, CLI-compatible: "local" (or
	// "") runs each sweep over private in-process pools; "remote@ADDR"
	// dials the pifcoord coordinator at ADDR once per run.
	Backend string
	// BackendToken authenticates dials to a token-protected coordinator
	// ("" = open coordinator).
	BackendToken string
	// Parallel bounds local worker pools (<= 0 means GOMAXPROCS).
	Parallel int
	// StoreDir is the trace-store pool every run's environment spills to
	// ("" = in-memory streams).
	StoreDir string
	// MaxAttempts bounds executions per run (0 = DefaultMaxAttempts).
	MaxAttempts int
	// Logf, when non-nil, receives service lifecycle log lines.
	Logf func(format string, args ...any)

	// hookRunning, when non-nil, is called after a run's record has been
	// persisted in the running state and before its sweep executes — the
	// test seam crash/restart coverage uses to stop the service at the
	// exact instant a crash would strand a running record.
	hookRunning func(id string)
}

// progress is a running run's in-memory job counter (not persisted: it
// changes per job, and the database records only state transitions).
type progress struct{ done, total int }

// Status is one run as the API reports it: the persisted record plus
// live progress while running.
type Status struct {
	Record
	// Done/Total count completed vs. submitted simulation jobs of the
	// current execution (zero unless running).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// Service owns the run database and the executor draining its queue.
// Runs execute one at a time: a shared backend serves one RunOn batch at
// a time anyway, and serial execution keeps local runs from gouging each
// other's pools.
type Service struct {
	cfg Config
	db  DB

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	gen    chan struct{}
	recs   map[string]Record
	prog   map[string]progress
	seq    int
	closed bool

	queue chan string
}

// New opens the database, recovers interrupted runs (requeuing those
// with attempt budget left, failing the rest), and starts the executor.
func New(cfg Config) (*Service, error) {
	db, err := OpenDB(cfg.DBDir)
	if err != nil {
		return nil, err
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:    cfg,
		db:     db,
		ctx:    ctx,
		cancel: cancel,
		gen:    make(chan struct{}),
		recs:   make(map[string]Record),
		prog:   make(map[string]progress),
		queue:  make(chan string, queueCap),
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	s.wg.Add(1)
	go s.executor()
	return s, nil
}

// logf logs through the configured sink.
func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// recover loads every record and requeues interrupted work: a queued
// record simply re-enters the queue; a running record was stranded by a
// crash (or kill) and re-enters as queued — unless its attempt budget is
// spent, in which case it is marked failed. Requeue order is creation
// order, so recovery preserves submission fairness.
func (s *Service) recover() error {
	recs, err := s.db.Records()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		switch rec.State {
		case StateQueued, StateRunning:
			if rec.Attempts >= s.cfg.MaxAttempts {
				now := time.Now().UTC()
				rec.State = StateFailed
				rec.FinishedAt = &now
				rec.Error = fmt.Sprintf("expsvc: interrupted after %d attempt(s); giving up", rec.Attempts)
				if err := s.db.SaveRecord(rec); err != nil {
					return err
				}
				s.logf("recover: %s failed (%s)", rec.ID, rec.Error)
			} else {
				if rec.State == StateRunning {
					rec.State = StateQueued
					if err := s.db.SaveRecord(rec); err != nil {
						return err
					}
				}
				s.queue <- rec.ID
				s.logf("recover: %s requeued (attempt %d of %d)", rec.ID, rec.Attempts+1, s.cfg.MaxAttempts)
			}
		}
		s.recs[rec.ID] = rec
	}
	return nil
}

// Close stops the executor and waits for it. A sweep in flight is
// canceled through the service context; its record stays running on
// disk — indistinguishable from a crash — so the next service on this
// database requeues or fails it exactly like crash recovery.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	s.bump()
}

// bump signals state observers (long-pollers) by closing the current
// generation channel and replacing it.
func (s *Service) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	close(s.gen)
	s.gen = make(chan struct{})
}

// Changed returns a channel closed at the next state mutation (any run's
// transition or progress tick). The channel is replaced after each
// close; long-pollers re-fetch per wait, same contract as the remote
// coordinator's Core.Changed.
func (s *Service) Changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// persist saves a record to the database and the in-memory mirror.
func (s *Service) persist(rec Record) error {
	if err := s.db.SaveRecord(rec); err != nil {
		return err
	}
	s.mu.Lock()
	s.recs[rec.ID] = rec
	s.mu.Unlock()
	return nil
}

// buildOptions resolves a request into experiment options, mirroring the
// CLI's buildOptions (preset, overrides, pool width, store pool).
func (s *Service) buildOptions(req Request) experiments.Options {
	opts := experiments.DefaultOptions()
	if req.Quick {
		opts = experiments.QuickOptions()
	}
	if req.WarmupInstrs > 0 {
		opts.WarmupInstrs = req.WarmupInstrs
	}
	if req.MeasureInstrs > 0 {
		opts.MeasureInstrs = req.MeasureInstrs
	}
	opts.Parallel = s.cfg.Parallel
	opts.StoreDir = s.cfg.StoreDir
	return opts
}

// axesOf folds the -source shorthand into the request's axis list, the
// way the CLI appends "source=..." before building the spec.
func axesOf(req Request) []string {
	axes := append([]string(nil), req.Axes...)
	if req.Source != "" {
		axes = append(axes, "source="+req.Source)
	}
	return axes
}

// validate builds (and discards) the request's sweep spec, so a
// malformed submission is rejected at the API with the same diagnostics
// the CLI prints — before it ever occupies the queue.
func (s *Service) validate(req Request) error {
	opts := s.buildOptions(req)
	if err := opts.Validate(); err != nil {
		return err
	}
	env := experiments.NewEnvContext(s.ctx, opts)
	if _, err := experiments.BuildSweep(env, req.Name, axesOf(req), req.Engines); err != nil {
		return err
	}
	if req.Shards < 0 {
		return fmt.Errorf("expsvc: shards must be >= 0")
	}
	return nil
}

// Submit validates a request, persists it queued, and enqueues it.
func (s *Service) Submit(req Request) (Status, error) {
	if err := s.validate(req); err != nil {
		return Status{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("expsvc: service is shut down")
	}
	s.seq++
	seq := s.seq
	s.mu.Unlock()
	rec := Record{
		SchemaVersion: RecordSchemaVersion,
		ID:            newRunID(time.Now(), seq),
		State:         StateQueued,
		Request:       req,
		CreatedAt:     time.Now().UTC(),
	}
	if err := s.persist(rec); err != nil {
		return Status{}, err
	}
	select {
	case s.queue <- rec.ID:
	default:
		rec.State = StateFailed
		rec.Error = fmt.Sprintf("expsvc: queue full (%d runs pending)", queueCap)
		_ = s.persist(rec)
		return Status{}, fmt.Errorf("%s", rec.Error)
	}
	s.bump()
	s.logf("submitted %s (%s)", rec.ID, req.Name)
	return Status{Record: rec}, nil
}

// Run returns one run's status: the record plus live progress.
func (s *Service) Run(id string) (Status, error) {
	s.mu.Lock()
	rec, ok := s.recs[id]
	p := s.prog[id]
	s.mu.Unlock()
	if !ok {
		// Not service-owned; a corpus run stored by other tools still
		// resolves, as the stored pseudo-state.
		if run, _, err := s.db.Store.Load(id); err == nil {
			return Status{Record: Record{ID: id, State: StateStored, CreatedAt: run.CreatedAt}}, nil
		}
		return Status{}, fmt.Errorf("expsvc: no run %q", id)
	}
	return Status{Record: rec, Done: p.done, Total: p.total}, nil
}

// Runs lists every run in the database — service-owned records plus
// corpus runs stored by other tools (state "stored") — sorted by
// creation time.
func (s *Service) Runs() ([]Status, error) {
	recs, err := s.db.Records()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	out := make([]Status, 0, len(recs))
	owned := make(map[string]bool, len(recs))
	for _, rec := range recs {
		owned[rec.ID] = true
		// Prefer the in-memory mirror: it is never older than disk.
		if mem, ok := s.recs[rec.ID]; ok {
			rec = mem
		}
		p := s.prog[rec.ID]
		out = append(out, Status{Record: rec, Done: p.done, Total: p.total})
	}
	s.mu.Unlock()
	infos, err := s.db.Store.List()
	if err != nil {
		return nil, err
	}
	for _, info := range infos {
		if owned[info.ID] {
			continue
		}
		out = append(out, Status{Record: Record{ID: info.ID, State: StateStored, CreatedAt: info.CreatedAt}})
	}
	sortStatuses(out)
	return out, nil
}

// sortStatuses orders a merged listing by creation time, ties by ID.
func sortStatuses(sts []Status) {
	sort.Slice(sts, func(a, b int) bool {
		if !sts[a].CreatedAt.Equal(sts[b].CreatedAt) {
			return sts[a].CreatedAt.Before(sts[b].CreatedAt)
		}
		return sts[a].ID < sts[b].ID
	})
}

// Artifacts loads a run's stored artifacts (done runs and external
// corpus runs; queued/running/failed runs have none by the run.json
// contract).
func (s *Service) Artifacts(id string) (report.Run, []report.Artifact, error) {
	return s.db.Store.Load(id)
}

// Jobs loads a run's raw per-job results.
func (s *Service) Jobs(id string) ([]report.JobResult, error) {
	if !report.ValidArtifactID(id) {
		return nil, fmt.Errorf("expsvc: invalid run ID %q", id)
	}
	return report.LoadJobResults(s.db.Dir(id))
}

// executor drains the queue, one run at a time.
func (s *Service) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case id := <-s.queue:
			s.execute(id)
		}
	}
}

// execute runs one queued run end to end: persist the running
// transition, simulate the sweep, persist the artifacts, persist the
// terminal transition. If the service is shut down mid-run, the record
// is left running on disk — the crash shape — for the next service's
// recovery to requeue.
func (s *Service) execute(id string) {
	rec, err := s.db.LoadRecord(id)
	if err != nil {
		s.logf("execute %s: %v", id, err)
		return
	}
	now := time.Now().UTC()
	rec.State = StateRunning
	rec.StartedAt = &now
	rec.FinishedAt = nil
	rec.Error = ""
	rec.Attempts++
	if err := s.persist(rec); err != nil {
		s.logf("execute %s: %v", id, err)
		return
	}
	s.bump()
	if s.cfg.hookRunning != nil {
		s.cfg.hookRunning(id)
	}
	s.logf("running %s (%s, attempt %d)", rec.ID, rec.Request.Name, rec.Attempts)

	runErr := s.runSweep(&rec)
	if s.ctx.Err() != nil {
		// Shutdown (or kill) mid-run: leave the running record for
		// recovery, exactly as if the process had died here.
		return
	}
	now = time.Now().UTC()
	rec.FinishedAt = &now
	if runErr != nil {
		rec.State = StateFailed
		rec.Error = runErr.Error()
		s.logf("failed %s: %v", rec.ID, runErr)
	} else {
		rec.State = StateDone
		s.logf("done %s (%d jobs in %s)", rec.ID, rec.TotalJobs, time.Duration(rec.ElapsedNanos).Round(time.Millisecond))
	}
	s.mu.Lock()
	delete(s.prog, rec.ID)
	s.mu.Unlock()
	if err := s.persist(rec); err != nil {
		s.logf("execute %s: %v", id, err)
	}
	s.bump()
}

// dialBackend resolves the configured backend spec for one run: nil for
// local (each grid gets a private pool), a fresh coordinator run for
// remote@ADDR. Dialing per run means a coordinator restart between runs
// costs only the run in flight, never the service.
func (s *Service) dialBackend() (runner.Backend, error) {
	spec := s.cfg.Backend
	switch {
	case spec == "" || spec == "local":
		return nil, nil
	case strings.HasPrefix(spec, "remote@"):
		addr := strings.TrimPrefix(spec, "remote@")
		if addr == "" {
			return nil, fmt.Errorf("expsvc: backend remote@ADDR needs a coordinator address")
		}
		return remote.DialAuth(addr, s.cfg.BackendToken)
	default:
		return nil, fmt.Errorf("expsvc: unknown backend %q (have local, remote@ADDR)", spec)
	}
}

// runSweep executes the record's sweep and persists its results into the
// run directory. On success the directory passes report.Load (run.json
// is written last) and rec's completion fields are filled in.
func (s *Service) runSweep(rec *Record) error {
	req := rec.Request
	opts := s.buildOptions(req)
	opts.OnProgress = func(p runner.Progress) {
		s.mu.Lock()
		s.prog[rec.ID] = progress{done: p.Done, total: p.Total}
		s.mu.Unlock()
		s.bump()
	}
	be, err := s.dialBackend()
	if err != nil {
		return err
	}
	if be != nil {
		opts.Backend = be
		defer be.Close()
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	env := experiments.NewEnvContext(s.ctx, opts)
	spec, err := experiments.BuildSweep(env, req.Name, axesOf(req), req.Engines)
	if err != nil {
		return err
	}
	spec.BaseShards = req.Shards
	spec.BaseShardApprox = req.ShardApprox

	start := time.Now()
	grid, err := env.RunGrid(spec)
	if err != nil {
		return err
	}
	total := time.Since(start)
	summary, err := grid.Summary()
	if err != nil {
		return err
	}
	// The artifact must be byte-identical to the CLI's `experiments sweep
	// -out` artifact for the same spec: same ID, title, empty text, same
	// summary payload — the acceptance diff compares exactly this.
	art, err := report.NewArtifact(spec.Name, "ad-hoc design-space sweep", "", summary)
	if err != nil {
		return err
	}
	run := report.Run{
		ID:         rec.ID,
		CreatedAt:  time.Now().UTC(),
		Options:    opts.RunOptions(),
		TotalNanos: int64(total),
	}
	if err := s.db.Store.Save(run, []report.Artifact{art}); err != nil {
		return err
	}
	jobs := env.JobResults()
	if err := report.SaveJobResults(s.db.Dir(rec.ID), jobs); err != nil {
		return err
	}
	rec.TotalJobs = len(jobs)
	rec.ElapsedNanos = int64(total)
	return nil
}

// DiffSide names one side of a diff request: a run in the service's
// database (RunID), or an inline artifact/job set shipped with the
// request — how the CLI diffs a service run against a local -out
// directory without uploading it to the corpus.
type DiffSide struct {
	// RunID selects a database run ("" = inline).
	RunID string `json:"run_id,omitempty"`
	// Label names an inline side in the rendered report.
	Label string `json:"label,omitempty"`
	// Artifacts and Jobs are the inline side's payload.
	Artifacts []report.Artifact  `json:"artifacts,omitempty"`
	Jobs      []report.JobResult `json:"jobs,omitempty"`
}

// resolve loads a side's artifact and job sets.
func (s *Service) resolve(side DiffSide) (string, []report.Artifact, []report.JobResult, error) {
	if side.RunID == "" {
		label := side.Label
		if label == "" {
			label = "inline"
		}
		return label, side.Artifacts, side.Jobs, nil
	}
	_, arts, err := s.db.Store.Load(side.RunID)
	if err != nil {
		return "", nil, nil, err
	}
	jobs, err := s.Jobs(side.RunID)
	if err != nil {
		return "", nil, nil, err
	}
	return side.RunID, arts, jobs, nil
}

// Diff compares two sides — artifacts and per-job results — under the
// given tolerances and returns the typed report carrying the
// `experiments diff` exit-code verdict. A side that fails to load is an
// error (the CLI's exit-2 class), not a diff outcome.
func (s *Service) Diff(a, b DiffSide, tol report.Tolerances) (report.DiffReport, error) {
	la, aArts, aJobs, err := s.resolve(a)
	if err != nil {
		return report.DiffReport{}, err
	}
	lb, bArts, bJobs, err := s.resolve(b)
	if err != nil {
		return report.DiffReport{}, err
	}
	d := report.DiffArtifacts(aArts, bArts, tol)
	d.Merge(report.DiffJobResults(aJobs, bJobs, tol))
	return report.NewDiffReport(la, lb, d), nil
}
