// Package expsvc is the experiment service: a long-running daemon
// (cmd/pifexpd) that accepts sweep specs over a versioned HTTP JSON API,
// queues them, executes each through the existing runner.Backend seam
// (a local pool or a remote coordinator), and records every run in an
// embedded persistent run database layered on report.Store — the shared
// results corpus the ROADMAP's "many users, one corpus" north star needs.
//
// The database is one index file per run directory (exprun.json) next to
// the report store's own files. The record carries the submitted spec,
// the run's state machine (queued → running → done/failed), timings, and
// counts; it is written atomically (report.AtomicWriteFile) on every
// transition. The artifacts themselves are persisted by report.Save,
// whose run.json-written-last contract means a run directory is either
// complete or rejected by report.Load — a crashed service never leaves a
// loadable half-run, and on restart any record still queued or running
// is requeued (or marked failed once its attempt budget is spent).
//
// See DESIGN.md §14 for the API table, state machine, and DB layout.
package expsvc

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/report"
)

// WireVersion stamps every request and response of the service API; a
// client and server disagreeing on it refuse each other rather than
// misinterpreting payloads. Bump on any non-additive wire change.
const WireVersion = 1

// RecordSchemaVersion stamps persisted run records (exprun.json); a
// service opening a database written under a different version rejects
// the record rather than guessing at its fields.
const RecordSchemaVersion = 1

// recordFile is the run-database index file inside a run directory. It
// is deliberately NOT report's run.json: a queued or running record must
// never make report.Load treat the directory as a complete run.
const recordFile = "exprun.json"

// State is one run's position in the service state machine.
type State string

const (
	// StateQueued: accepted and persisted, waiting for the executor.
	StateQueued State = "queued"
	// StateRunning: the executor is simulating the sweep.
	StateRunning State = "running"
	// StateDone: artifacts and per-job results are persisted; the run
	// directory passes report.Load.
	StateDone State = "done"
	// StateFailed: the run errored (or exhausted its restart attempts);
	// Error holds the reason.
	StateFailed State = "failed"
	// StateStored marks a run directory that passes report.Load but has
	// no service record — a corpus run written by other tools (e.g.
	// `experiments -out` pointed at the same root). Listings include
	// them; the service never executes or rewrites them.
	StateStored State = "stored"
)

// Terminal reports whether the state can never change again.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed || s == StateStored }

// Request is one submitted sweep spec. The fields mirror the
// `experiments sweep` CLI flags one for one and feed the same
// experiments.BuildSweep parser, so -axis/-engine/-shards semantics are
// identical whether a sweep runs through the CLI or the service.
type Request struct {
	// Name names the sweep (and the stored grid-summary artifact).
	Name string `json:"name"`
	// Axes are -axis specs ("workload=xl", "engine=pif,tifs", ...).
	Axes []string `json:"axes,omitempty"`
	// Engines are repeated -engine specs ("pif:history=64K", ...).
	Engines []string `json:"engines,omitempty"`
	// Source is the -source shorthand (a one-value source axis).
	Source string `json:"source,omitempty"`
	// Shards is -shards: split every cell's replay into K window-shard
	// jobs (0 = unsharded).
	Shards int `json:"shards,omitempty"`
	// ShardApprox is -shard-approx (fixed per-shard warmup).
	ShardApprox bool `json:"shard_approx,omitempty"`
	// Quick selects the reduced-scale option preset (-quick).
	Quick bool `json:"quick,omitempty"`
	// WarmupInstrs / MeasureInstrs override the preset (0 = preset).
	WarmupInstrs  uint64 `json:"warmup_instrs,omitempty"`
	MeasureInstrs uint64 `json:"measure_instrs,omitempty"`
}

// Record is one run's persisted database entry.
type Record struct {
	SchemaVersion int     `json:"schema_version"`
	ID            string  `json:"id"`
	State         State   `json:"state"`
	Request       Request `json:"request"`
	// CreatedAt is submission time; StartedAt/FinishedAt bracket the
	// (latest) execution attempt, nil while not yet reached.
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Error is the failure reason of a failed run.
	Error string `json:"error,omitempty"`
	// Attempts counts executions started (restart recovery increments it
	// before re-running, bounding crash loops).
	Attempts int `json:"attempts,omitempty"`
	// TotalJobs and ElapsedNanos describe a completed execution: grid
	// cells persisted under jobs/, and the sweep's wall clock.
	TotalJobs    int   `json:"total_jobs,omitempty"`
	ElapsedNanos int64 `json:"elapsed_nanos,omitempty"`
}

// DB is the embedded run database: report.Store's directory layout plus
// one exprun.json record per service-owned run.
type DB struct {
	Store report.Store
}

// OpenDB opens (creating if needed) a run database rooted at dir.
func OpenDB(dir string) (DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return DB{}, err
	}
	return DB{Store: report.Store{Root: dir}}, nil
}

// Dir returns a run's directory.
func (db DB) Dir(id string) string { return db.Store.Dir(id) }

// SaveRecord atomically persists one run record (temp file + rename,
// like every other file in the corpus): a reader — or a restart after a
// crash at any instant — sees either the previous record or the new one,
// never a torn file.
func (db DB) SaveRecord(rec Record) error {
	if !report.ValidArtifactID(rec.ID) {
		return fmt.Errorf("expsvc: invalid run ID %q", rec.ID)
	}
	rec.SchemaVersion = RecordSchemaVersion
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("expsvc: marshal record %s: %w", rec.ID, err)
	}
	dir := db.Dir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return report.AtomicWriteFile(filepath.Join(dir, recordFile), append(b, '\n'))
}

// LoadRecord reads one run's record.
func (db DB) LoadRecord(id string) (Record, error) {
	if !report.ValidArtifactID(id) {
		return Record{}, fmt.Errorf("expsvc: invalid run ID %q", id)
	}
	path := filepath.Join(db.Dir(id), recordFile)
	b, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return Record{}, fmt.Errorf("expsvc: parse %s: %w", path, err)
	}
	if rec.SchemaVersion != RecordSchemaVersion {
		return Record{}, fmt.Errorf("expsvc: %s has record schema version %d, want %d", path, rec.SchemaVersion, RecordSchemaVersion)
	}
	if rec.ID != id {
		return Record{}, fmt.Errorf("expsvc: %s declares run ID %q", path, rec.ID)
	}
	return rec, nil
}

// Records scans every run record in the database, sorted by creation
// time (ties by ID). Run directories without a record — corpus runs
// stored by other tools — are not included; see Service.Runs for the
// merged listing.
func (db DB) Records() ([]Record, error) {
	entries, err := os.ReadDir(db.Store.Root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var recs []Record
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(db.Store.Root, e.Name(), recordFile)); err != nil {
			continue
		}
		rec, err := db.LoadRecord(e.Name())
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool {
		if !recs[a].CreatedAt.Equal(recs[b].CreatedAt) {
			return recs[a].CreatedAt.Before(recs[b].CreatedAt)
		}
		return recs[a].ID < recs[b].ID
	})
	return recs, nil
}

// newRunID mints a run ID: creation instant (UTC, second granularity), a
// per-process sequence number (ordering submissions within one second),
// and random bits (so restarts and concurrent services on one database
// never collide). The result is a valid report store ID and sorts
// roughly by submission time.
func newRunID(now time.Time, seq int) string {
	var b [3]byte
	_, _ = rand.Read(b[:])
	return fmt.Sprintf("r%s-%04d-%s", now.UTC().Format("20060102T150405"), seq%10000, hex.EncodeToString(b[:]))
}
