package expsvc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
)

// testRequest is a tiny two-cell sweep (one workload, two engines) small
// enough to execute in milliseconds but real enough to persist artifacts
// and per-job results.
func testRequest() Request {
	return Request{
		Name:          "svc",
		Axes:          []string{"workload=OLTP DB2", "engine=nextline,none"},
		Quick:         true,
		WarmupInstrs:  60_000,
		MeasureInstrs: 20_000,
	}
}

// waitTerminal polls one run until it reaches a terminal state.
func waitTerminal(t *testing.T, svc *Service, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := svc.Run(id)
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceLifecycle is the core submit→queued→running→done contract:
// a submitted sweep executes, its record walks the state machine, and the
// finished run directory is a complete report-store run (artifacts plus
// per-job results) that report.Load accepts.
func TestServiceLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("service tests run simulations; skipped in -short mode")
	}
	dir := t.TempDir()
	svc, err := New(Config{DBDir: dir, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	st, err := svc.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("submitted state = %s, want %s", st.State, StateQueued)
	}
	if st.ID == "" || !report.ValidArtifactID(st.ID) {
		t.Fatalf("submitted ID %q is not a valid store ID", st.ID)
	}

	fin := waitTerminal(t, svc, st.ID)
	if fin.State != StateDone {
		t.Fatalf("final state = %s (error %q), want %s", fin.State, fin.Error, StateDone)
	}
	if fin.TotalJobs != 2 {
		t.Errorf("TotalJobs = %d, want 2", fin.TotalJobs)
	}
	if fin.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", fin.Attempts)
	}
	if fin.StartedAt == nil || fin.FinishedAt == nil {
		t.Errorf("timing not recorded: started %v finished %v", fin.StartedAt, fin.FinishedAt)
	}

	// The run directory is now a first-class corpus run.
	run, arts, err := report.Load(svc.db.Dir(st.ID))
	if err != nil {
		t.Fatalf("done run rejected by report.Load: %v", err)
	}
	if run.ID != st.ID {
		t.Errorf("stored run ID = %q, want %q", run.ID, st.ID)
	}
	if len(arts) != 1 || arts[0].ID != "svc" {
		t.Errorf("artifacts = %+v, want one %q", arts, "svc")
	}
	jobs, err := svc.Jobs(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("jobs = %d, want 2", len(jobs))
	}

	// The listing holds exactly this run, service-owned.
	sts, err := svc.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].ID != st.ID || sts[0].State != StateDone {
		t.Errorf("Runs() = %+v, want one done %s", sts, st.ID)
	}
}

// TestServiceSubmitValidation: malformed sweeps are refused at the API —
// before they ever occupy the queue — with the CLI's diagnostics.
func TestServiceSubmitValidation(t *testing.T) {
	svc, err := New(Config{DBDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	bad := []Request{
		{Name: "svc", Axes: []string{"workload=no-such-workload", "engine=none"}},
		{Name: "svc", Axes: []string{"bogus=1", "engine=none"}},
		{Name: "svc", Axes: []string{"workload=OLTP DB2", "engine=none"}, Shards: -1},
	}
	for _, req := range bad {
		if _, err := svc.Submit(req); err == nil {
			t.Errorf("Submit(%+v) accepted", req)
		}
	}
	recs, err := svc.db.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("rejected submissions persisted records: %+v", recs)
	}
}

// TestServiceCrashRestart is the crash-safety contract end to end: a
// service stopped at the exact instant a run's record has been persisted
// running (the crash shape — Close cancels the sweep and the record is
// never finalized) leaves a run directory that report.Load rejects; a new
// service on the same database requeues the interrupted run and completes
// it, after which the directory loads.
func TestServiceCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("service tests run simulations; skipped in -short mode")
	}
	dir := t.TempDir()
	entered := make(chan string, 1)
	release := make(chan struct{})
	svc, err := New(Config{
		DBDir:       dir,
		Parallel:    2,
		MaxAttempts: 2,
		hookRunning: func(id string) {
			entered <- id
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	st, err := svc.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("run never reached the running state")
	}
	// Close stops the service while the executor sits at the hook: cancel
	// first (so the sweep dies the moment the hook releases), then let the
	// hook return so Close's wait can finish.
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		svc.Close()
	}()
	close(release)
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close never returned")
	}

	// The crash shape on disk: record still running, attempt spent, and
	// the run directory is NOT a loadable results directory.
	db, err := OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := db.LoadRecord(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRunning {
		t.Fatalf("interrupted record state = %s, want %s", rec.State, StateRunning)
	}
	if rec.Attempts != 1 {
		t.Fatalf("interrupted record attempts = %d, want 1", rec.Attempts)
	}
	if _, _, err := report.Load(db.Dir(st.ID)); err == nil {
		t.Fatal("interrupted run directory passes report.Load; partial runs must be rejected")
	}

	// Restart on the same database: the run is requeued and completes.
	svc2, err := New(Config{DBDir: dir, Parallel: 2, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	fin := waitTerminal(t, svc2, st.ID)
	if fin.State != StateDone {
		t.Fatalf("recovered run state = %s (error %q), want %s", fin.State, fin.Error, StateDone)
	}
	if fin.Attempts != 2 {
		t.Errorf("recovered run attempts = %d, want 2", fin.Attempts)
	}
	if _, _, err := report.Load(db.Dir(st.ID)); err != nil {
		t.Errorf("recovered run rejected by report.Load: %v", err)
	}
}

// TestServiceRecoveryGivesUp: an interrupted run whose attempt budget is
// already spent is marked failed at recovery, not requeued into a crash
// loop, and the failure is persisted.
func TestServiceRecoveryGivesUp(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		SchemaVersion: RecordSchemaVersion,
		ID:            "r20260807T000000-0001-aaaaaa",
		State:         StateRunning,
		Request:       testRequest(),
		CreatedAt:     time.Now().UTC(),
		Attempts:      2,
	}
	if err := db.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{DBDir: dir, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st, err := svc.Run(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("state = %s, want %s", st.State, StateFailed)
	}
	if !strings.Contains(st.Error, "giving up") {
		t.Errorf("error = %q, want the give-up diagnostic", st.Error)
	}
	onDisk, err := db.LoadRecord(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateFailed {
		t.Errorf("persisted state = %s, want %s", onDisk.State, StateFailed)
	}
}

// TestServiceRunsMergesStored: run directories written by other corpus
// tools (no exprun.json) appear in listings as the stored pseudo-state,
// and resolve individually the same way.
func TestServiceRunsMergesStored(t *testing.T) {
	dir := t.TempDir()
	store := report.Store{Root: dir}
	art, err := report.NewArtifact("a", "t", "body", nil)
	if err != nil {
		t.Fatal(err)
	}
	created := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	if err := store.Save(report.Run{ID: "external", CreatedAt: created}, []report.Artifact{art}); err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{DBDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sts, err := svc.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].ID != "external" || sts[0].State != StateStored {
		t.Fatalf("Runs() = %+v, want one stored external run", sts)
	}
	if !sts[0].CreatedAt.Equal(created) {
		t.Errorf("stored run CreatedAt = %v, want %v", sts[0].CreatedAt, created)
	}
	st, err := svc.Run("external")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateStored {
		t.Errorf("Run(external) state = %s, want %s", st.State, StateStored)
	}
	if _, err := svc.Run("absent"); err == nil {
		t.Error("Run(absent) resolved")
	}
}

// TestServiceDiff covers diff-as-a-service resolution: run-vs-run on the
// database, run-vs-inline (the local-baseline shape), and the error class
// for an unknown side.
func TestServiceDiff(t *testing.T) {
	dir := t.TempDir()
	store := report.Store{Root: dir}
	art, err := report.NewArtifact("sweep", "t", "", map[string]float64{"uipc": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := report.NewArtifact("sweep", "t", "", map[string]float64{"uipc": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(report.Run{ID: "base", CreatedAt: time.Now().UTC()}, []report.Artifact{art}); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(report.Run{ID: "same", CreatedAt: time.Now().UTC()}, []report.Artifact{art}); err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{DBDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	tol := report.Tolerances{Default: report.Tolerance{Abs: 1e-12, Rel: 1e-9}}

	rep, err := svc.Diff(DiffSide{RunID: "base"}, DiffSide{RunID: "same"}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 0 {
		t.Errorf("identical runs diff code = %d, want 0:\n%s", rep.Code, rep.Text)
	}

	rep, err = svc.Diff(DiffSide{RunID: "base"}, DiffSide{Label: "local", Artifacts: []report.Artifact{drifted}}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 1 {
		t.Errorf("drifted inline diff code = %d, want 1:\n%s", rep.Code, rep.Text)
	}
	if rep.A != "base" || rep.B != "local" {
		t.Errorf("report sides = %q/%q, want base/local", rep.A, rep.B)
	}

	rep, err = svc.Diff(DiffSide{RunID: "base"}, DiffSide{Label: "empty"}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 3 {
		t.Errorf("missing-set diff code = %d, want 3:\n%s", rep.Code, rep.Text)
	}

	if _, err := svc.Diff(DiffSide{RunID: "base"}, DiffSide{RunID: "absent"}, tol); err == nil {
		t.Error("diff against an absent run resolved")
	}
}

// TestDBRecordRoundtrip pins the record file's integrity checks: schema
// version and declared-vs-directory ID mismatches are rejected, and the
// record never collides with report's run.json.
func TestDBRecordRoundtrip(t *testing.T) {
	db, err := OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{ID: "r1", State: StateQueued, Request: testRequest(), CreatedAt: time.Now().UTC()}
	if err := db.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}
	got, err := db.LoadRecord("r1")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateQueued || got.Request.Name != "svc" {
		t.Errorf("roundtrip = %+v", got)
	}
	// A record alone must not make the directory a loadable results run.
	if _, _, err := report.Load(db.Dir("r1")); err == nil {
		t.Error("record-only directory passes report.Load")
	}
	if err := db.SaveRecord(Record{ID: "run dir", State: StateQueued}); err == nil {
		t.Error("invalid record ID accepted")
	}
	if _, err := db.LoadRecord("absent"); err == nil {
		t.Error("absent record loaded")
	}

	// Foreign schema versions are refused, not guessed at.
	rec2 := rec
	rec2.ID = "r2"
	if err := db.SaveRecord(rec2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(db.Dir("r2"), recordFile)
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	mutated := strings.Replace(string(raw), `"schema_version": 1`, `"schema_version": 99`, 1)
	if mutated == string(raw) {
		t.Fatal("schema_version not found in record file")
	}
	if werr := report.AtomicWriteFile(path, []byte(mutated)); werr != nil {
		t.Fatal(werr)
	}
	if _, lerr := db.LoadRecord("r2"); lerr == nil {
		t.Error("foreign schema version accepted")
	}
}

// TestServiceClosedSubmit: submissions after shutdown are refused.
func TestServiceClosedSubmit(t *testing.T) {
	svc, err := New(Config{DBDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.Submit(testRequest()); err == nil {
		t.Error("Submit on a closed service accepted")
	}
}

// TestServiceChanged: the generation channel closes on state mutations,
// so long-pollers wake without hot loops.
func TestServiceChanged(t *testing.T) {
	svc, err := New(Config{DBDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ch := svc.Changed()
	select {
	case <-ch:
		t.Fatal("generation channel closed with no mutation")
	default:
	}
	svc.bump()
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("generation channel did not close on bump")
	}
}
