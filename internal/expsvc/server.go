package expsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/httpapi"
	"repro/internal/report"
)

// maxWait caps long-poll waits so a stuck client cannot pin a handler
// forever (same bound as the remote coordinator's API).
const maxWait = 30 * time.Second

// Wire envelopes: one request/response pair per endpoint, all
// version-stamped JSON. Errors use the shared httpapi envelope.

type submitRequest struct {
	V       int     `json:"v"`
	Request Request `json:"request"`
}

type runResponse struct {
	V   int    `json:"v"`
	Run Status `json:"run"`
}

type runsResponse struct {
	V    int      `json:"v"`
	Runs []Status `json:"runs"`
}

type artifactsResponse struct {
	V         int               `json:"v"`
	Run       report.Run        `json:"run"`
	Artifacts []report.Artifact `json:"artifacts"`
}

type jobsResponse struct {
	V    int                `json:"v"`
	Jobs []report.JobResult `json:"jobs"`
}

type diffRequest struct {
	V int      `json:"v"`
	A DiffSide `json:"a"`
	B DiffSide `json:"b"`
	// Abs/Rel are the default per-metric tolerances (the CLI's
	// -abs/-rel flags).
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

type diffResponse struct {
	V      int               `json:"v"`
	Report report.DiffReport `json:"report"`
}

// Server is the thin HTTP translation over a Service: decode, delegate,
// encode. Long-polling a run's status is the only logic it owns, built
// on Service.Changed generations. Authentication is layered outside by
// the daemon (httpapi.RequireAuth), keeping this handler transport-pure.
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wraps a service in its HTTP API.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{id}/artifacts", s.handleArtifacts)
	s.mux.HandleFunc("GET /v1/runs/{id}/jobs", s.handleJobs)
	s.mux.HandleFunc("POST /v1/diff", s.handleDiff)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]int{"v": WireVersion})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON encodes one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps service errors onto the versioned error envelope:
// unknown runs and unloadable run directories are 404 (the ID does not
// name a loadable run), everything else 400.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, os.ErrNotExist) || isNoRun(err) {
		status = http.StatusNotFound
	}
	httpapi.WriteError(w, WireVersion, status, err.Error())
}

// isNoRun matches the service's unknown-run errors (Service.Run) and the
// report store's not-a-results-directory errors (Store.Load on an absent
// or incomplete run directory).
func isNoRun(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "no run") || strings.Contains(msg, "is not a results directory")
}

// decode parses a request body, enforcing the wire version.
func decode[T any](r *http.Request, v *T, version func(T) int) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("expsvc: bad request body: %w", err)
	}
	if got := version(*v); got != WireVersion {
		return fmt.Errorf("expsvc: request has wire version %d, want %d", got, WireVersion)
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := decode(r, &req, func(q submitRequest) int { return q.V }); err != nil {
		writeErr(w, err)
		return
	}
	st, err := s.svc.Submit(req.Request)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{V: WireVersion, Run: st})
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	sts, err := s.svc.Runs()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, runsResponse{V: WireVersion, Runs: sts})
}

// handleRun returns one run's status. With wait_ms, the handler
// long-polls: it returns early only once the run's state differs from
// the caller's `state` or its progress from `done` — live progress
// streaming without hot polling.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	waitMS, _ := strconv.ParseInt(q.Get("wait_ms"), 10, 64)
	prevState := q.Get("state")
	prevDone, _ := strconv.Atoi(q.Get("done"))
	deadline := time.Now().Add(clampWait(waitMS))
	for {
		changed := s.svc.Changed()
		st, err := s.svc.Run(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		moved := prevState == "" || string(st.State) != prevState || st.Done != prevDone
		if moved || time.Now().After(deadline) {
			writeJSON(w, http.StatusOK, runResponse{V: WireVersion, Run: st})
			return
		}
		if !waitChange(r, changed, deadline) {
			writeJSON(w, http.StatusOK, runResponse{V: WireVersion, Run: st})
			return
		}
	}
}

func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	run, arts, err := s.svc.Artifacts(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, artifactsResponse{V: WireVersion, Run: run, Artifacts: arts})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs, err := s.svc.Jobs(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobsResponse{V: WireVersion, Jobs: jobs})
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req diffRequest
	if err := decode(r, &req, func(q diffRequest) int { return q.V }); err != nil {
		writeErr(w, err)
		return
	}
	tol := report.Tolerances{Default: report.Tolerance{Abs: req.Abs, Rel: req.Rel}}
	rep, err := s.svc.Diff(req.A, req.B, tol)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, diffResponse{V: WireVersion, Report: rep})
}

// clampWait bounds a client-requested long-poll wait.
func clampWait(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d < 0 {
		return 0
	}
	if d > maxWait {
		return maxWait
	}
	return d
}

// waitChange blocks until the state generation changes, the deadline
// passes (returns false), or the request dies (returns false).
func waitChange(r *http.Request, changed <-chan struct{}, deadline time.Time) bool {
	wait := time.Until(deadline)
	if wait <= 0 {
		return false
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-changed:
		return true
	case <-timer.C:
		return false
	case <-r.Context().Done():
		return false
	}
}
