package expsvc

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/report"
)

// TestServerEndToEnd drives the full wire path — DialService, Submit,
// WaitRun's long-poll, Runs, Artifacts, Jobs, Diff — against a real
// service behind the token-auth middleware, exactly the daemon's stack.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("service tests run simulations; skipped in -short mode")
	}
	svc, err := New(Config{DBDir: t.TempDir(), Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	const token = "secret"
	ts := httptest.NewServer(httpapi.RequireAuth(token, WireVersion, NewServer(svc), "/v1/healthz"))
	defer ts.Close()

	// The health check is deliberately auth-exempt (liveness probes), so a
	// client with the wrong token dials fine — and is then refused with a
	// 401 envelope on its first real call, before any handler runs.
	badClient, err := DialService(ts.URL, "wrong")
	if err != nil {
		t.Fatalf("dial must succeed on the open health check: %v", err)
	}
	if _, err := badClient.Runs(context.Background()); !httpapi.IsStatus(err, http.StatusUnauthorized) {
		t.Fatalf("bad-token request: err = %v, want 401", err)
	}
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless request status = %d, want 401", resp.StatusCode)
	}

	client, err := DialService(ts.URL, token)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st, err := client.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	var moves []State
	fin, err := client.WaitRun(ctx, st.ID, func(s Status) { moves = append(moves, s.State) })
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("final state = %s (error %q), want %s", fin.State, fin.Error, StateDone)
	}
	if len(moves) == 0 || moves[len(moves)-1] != StateDone {
		t.Errorf("observed moves = %v, want a trail ending done", moves)
	}

	sts, err := client.Runs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].ID != st.ID {
		t.Fatalf("Runs() = %+v, want one %s", sts, st.ID)
	}
	run, arts, err := client.Artifacts(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if run.ID != st.ID || len(arts) != 1 {
		t.Errorf("Artifacts = run %q, %d artifact(s); want %q, 1", run.ID, len(arts), st.ID)
	}
	jobs, err := client.Jobs(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("Jobs = %d, want 2", len(jobs))
	}

	// Diff the run against itself inline — the CLI's run-vs-local shape —
	// and against an absent run (a 404, the exit-2 error class).
	rep, err := client.Diff(ctx, DiffSide{RunID: st.ID},
		DiffSide{Label: "local", Artifacts: arts, Jobs: jobs}, 1e-12, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 0 {
		t.Errorf("self diff code = %d, want 0:\n%s", rep.Code, rep.Text)
	}
	_, err = client.Diff(ctx, DiffSide{RunID: st.ID}, DiffSide{RunID: "absent"}, 1e-12, 1e-9)
	if !httpapi.IsStatus(err, http.StatusNotFound) {
		t.Errorf("diff against absent run: err = %v, want 404", err)
	}
	_, err = client.Run(ctx, "absent")
	if !httpapi.IsStatus(err, http.StatusNotFound) {
		t.Errorf("Run(absent): err = %v, want 404", err)
	}
}

// TestServerWireVersion: requests carrying a foreign wire version are
// refused, and DialService refuses a server speaking another version.
func TestServerWireVersion(t *testing.T) {
	svc, err := New(Config{DBDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	client, err := DialService(ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	var resp runResponse
	err = httpapi.Do(context.Background(), http.DefaultClient, http.MethodPost, ts.URL+"/v1/runs",
		submitRequest{V: WireVersion + 1, Request: testRequest()}, &resp)
	if !httpapi.IsStatus(err, http.StatusBadRequest) {
		t.Errorf("foreign wire version: err = %v, want 400", err)
	}
	_ = client

	wrong := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"v": 99}`))
	}))
	defer wrong.Close()
	if _, err := DialService(wrong.URL, ""); err == nil {
		t.Error("dial accepted a foreign wire version")
	}
}

// TestServerLongPollDeadline pins the long-poll cursor contract on a run
// that never moves: a poll whose state cursor already differs returns
// immediately, and a poll parked on the current state returns the
// unchanged status at its (clamped) deadline instead of hanging. The
// wake-on-transition path is covered end to end by WaitRun in
// TestServerEndToEnd, which follows a live run through queued → running
// → done.
func TestServerLongPollDeadline(t *testing.T) {
	dir := t.TempDir()
	store := report.Store{Root: dir}
	art, err := report.NewArtifact("a", "t", "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(report.Run{ID: "ext", CreatedAt: time.Now().UTC()}, []report.Artifact{art}); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{DBDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	// Cursor mismatch: the run is stored, the caller claims queued — the
	// handler must answer without consuming the 10s window.
	start := time.Now()
	var resp runResponse
	if err := httpapi.Do(context.Background(), http.DefaultClient, http.MethodGet,
		ts.URL+"/v1/runs/ext?wait_ms=10000&state=queued&done=0", nil, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Run.State != StateStored {
		t.Fatalf("state = %s, want %s", resp.Run.State, StateStored)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("mismatched cursor waited %s; should answer immediately", elapsed)
	}

	// Cursor match: the poll parks and comes back at the deadline with the
	// unchanged status.
	start = time.Now()
	if err := httpapi.Do(context.Background(), http.DefaultClient, http.MethodGet,
		ts.URL+"/v1/runs/ext?wait_ms=200&state=stored&done=0", nil, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Run.State != StateStored {
		t.Fatalf("state = %s, want %s", resp.Run.State, StateStored)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("matched cursor answered in %s; should park until the deadline", elapsed)
	}
}
