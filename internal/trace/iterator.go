package trace

import (
	"errors"
	"io"
)

// Iterator is the pull-model interface over a retire-order record stream.
// Next returns io.EOF at a clean end of stream and io.ErrUnexpectedEOF
// (possibly wrapped) when the underlying source was truncated mid-record.
//
// It is implemented by the single-file Reader, the sharded StoreReader and
// ChunkReader, in-memory Streams (via Stream.Iter), and the live workload
// executor (workload.Executor.Iterator) — so a simulation consumes live
// execution and on-disk replay through the same interface and never needs
// a whole stream in memory.
type Iterator interface {
	Next() (Record, error)
}

// BatchIterator is the bulk counterpart of Iterator: NextBatch decodes up
// to len(dst) records into the caller-owned dst and returns how many were
// filled. One NextBatch call amortizes the per-record interface dispatch
// of Next over thousands of records, which is what makes replay the
// decode loop's cost rather than the call overhead's — see DESIGN.md §10.
//
// The contract mirrors Next record for record:
//
//   - dst[:n] always holds valid records, even when err != nil.
//   - A clean end of stream is reported as (0, io.EOF), never alongside
//     records: a call that drains the final records returns them with a
//     nil error and the *next* call returns io.EOF.
//   - Truncation and corruption errors (io.ErrUnexpectedEOF, chunk
//     mismatches, ...) surface on the call that hits them, after any
//     records decoded earlier in the same call: consuming dst[:n] and
//     then failing on err reproduces the per-record sequence exactly.
//   - A zero-length dst returns (0, nil) without touching the stream.
//
// Every iterator in the repository implements it natively; Batched adapts
// the ones that don't.
type BatchIterator interface {
	Iterator
	NextBatch(dst []Record) (int, error)
}

// Batched returns it as a BatchIterator: iterators that implement the
// interface natively are returned unchanged, anything else is wrapped in
// an adapter that loops Next. The adapter does not forward io.Closer —
// callers that own a closable iterator close the original.
func Batched(it Iterator) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	return &batchAdapter{it: it}
}

// batchAdapter lifts a plain Iterator to the batch contract.
type batchAdapter struct{ it Iterator }

// Next implements Iterator by delegation.
func (a *batchAdapter) Next() (Record, error) { return a.it.Next() }

// NextBatch implements BatchIterator by looping Next.
func (a *batchAdapter) NextBatch(dst []Record) (int, error) {
	for i := range dst {
		r, err := a.it.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				if i > 0 {
					return i, nil
				}
				return 0, io.EOF
			}
			return i, err
		}
		dst[i] = r
	}
	return len(dst), nil
}

// StreamIter iterates an in-memory Stream.
type StreamIter struct {
	s   Stream
	pos int
}

// Iter returns an Iterator over the stream.
func (s Stream) Iter() *StreamIter { return &StreamIter{s: s} }

// Next implements Iterator.
func (it *StreamIter) Next() (Record, error) {
	if it.pos >= len(it.s) {
		return Record{}, io.EOF
	}
	r := it.s[it.pos]
	it.pos++
	return r, nil
}

// NextBatch implements BatchIterator by copying from the backing stream.
func (it *StreamIter) NextBatch(dst []Record) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if it.pos >= len(it.s) {
		return 0, io.EOF
	}
	n := copy(dst, it.s[it.pos:])
	it.pos += n
	return n, nil
}

// Records reports how many records the iterator can still supply (the
// size hint Collect preallocates with).
func (it *StreamIter) Records() uint64 { return uint64(len(it.s) - it.pos) }

// Counted is implemented by iterators whose record budget is known up
// front (store and slice readers learn it from the index, stream
// iterators from the slice length). Collect uses it to preallocate.
type Counted interface {
	Records() uint64
}

// Collect drains an iterator into an in-memory Stream. It is the bridge
// for callers that genuinely need the whole stream (tests, small traces);
// streaming consumers should pull from the iterator directly. Sources
// that know their record count up front (Counted) have the stream
// preallocated; everything is decoded in batches directly into the
// stream's tail, so collection costs no per-record call and no re-copy.
func Collect(it Iterator) (Stream, error) {
	var hint uint64
	if c, ok := it.(Counted); ok {
		hint = c.Records()
	}
	return collect(it, hint)
}

// collect is Collect with an explicit capacity hint. Batches decode
// directly into the stream's tail capacity; when capacity runs out, a
// small stack probe distinguishes "hint was exact, stream is done" from
// "hint was short, grow and keep going" — so an exact hint yields exactly
// one allocation of exactly the record count.
func collect(it Iterator, sizeHint uint64) (Stream, error) {
	b := Batched(it)
	s := make(Stream, 0, sizeHint)
	for {
		if len(s) == cap(s) {
			var probe [64]Record
			n, err := b.NextBatch(probe[:])
			s = append(s, probe[:n]...)
			if err != nil {
				if errors.Is(err, io.EOF) {
					return s, nil
				}
				return s, err
			}
			continue
		}
		n, err := b.NextBatch(s[len(s):cap(s)])
		s = s[:len(s)+n]
		if err != nil {
			if errors.Is(err, io.EOF) {
				return s, nil
			}
			return s, err
		}
	}
}

// copyBatch is the decode granularity of CopyRecords: large enough to
// amortize the batch call, small enough to keep the buffer cache-warm.
const copyBatch = 4096

// CopyRecords pulls every record from it into w and returns the count
// copied. w is any record sink with the Writer/StoreWriter Write shape.
// Records are decoded in batches through a single preallocated buffer, so
// store-to-store copies (BuildStore, tracegen -source store/slice) run at
// batch-decode speed regardless of the sink.
func CopyRecords(w interface{ Write(Record) error }, it Iterator) (uint64, error) {
	b := Batched(it)
	buf := make([]Record, copyBatch)
	var n uint64
	for {
		k, berr := b.NextBatch(buf)
		for _, r := range buf[:k] {
			if err := w.Write(r); err != nil {
				return n, err
			}
			n++
		}
		if berr != nil {
			if errors.Is(berr, io.EOF) {
				return n, nil
			}
			return n, berr
		}
	}
}
