package trace

import (
	"errors"
	"io"
)

// Iterator is the pull-model interface over a retire-order record stream.
// Next returns io.EOF at a clean end of stream and io.ErrUnexpectedEOF
// (possibly wrapped) when the underlying source was truncated mid-record.
//
// It is implemented by the single-file Reader, the sharded StoreReader and
// ChunkReader, in-memory Streams (via Stream.Iter), and the live workload
// executor (workload.Executor.Iterator) — so a simulation consumes live
// execution and on-disk replay through the same interface and never needs
// a whole stream in memory.
type Iterator interface {
	Next() (Record, error)
}

// StreamIter iterates an in-memory Stream.
type StreamIter struct {
	s   Stream
	pos int
}

// Iter returns an Iterator over the stream.
func (s Stream) Iter() *StreamIter { return &StreamIter{s: s} }

// Next implements Iterator.
func (it *StreamIter) Next() (Record, error) {
	if it.pos >= len(it.s) {
		return Record{}, io.EOF
	}
	r := it.s[it.pos]
	it.pos++
	return r, nil
}

// Collect drains an iterator into an in-memory Stream. It is the bridge
// for callers that genuinely need the whole stream (tests, small traces);
// streaming consumers should pull from the iterator directly.
func Collect(it Iterator) (Stream, error) { return collect(it, 0) }

// collect is Collect with a capacity hint for sources that know their
// record count up front.
func collect(it Iterator, sizeHint uint64) (Stream, error) {
	s := make(Stream, 0, sizeHint)
	for {
		r, err := it.Next()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s = append(s, r)
	}
}

// CopyRecords pulls every record from it into w and returns the count
// copied. w is any record sink with the Writer/StoreWriter Write shape.
func CopyRecords(w interface{ Write(Record) error }, it Iterator) (uint64, error) {
	var n uint64
	for {
		r, err := it.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := w.Write(r); err != nil {
			return n, err
		}
		n++
	}
}
