package trace

import (
	"errors"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

// windowStore writes a store of n synthetic records with chunkRecords
// per chunk and returns its directory plus the full record sequence.
func windowStore(t *testing.T, n int, chunkRecords uint64) (string, Stream) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateStore(dir, "win", chunkRecords)
	if err != nil {
		t.Fatal(err)
	}
	full := make(Stream, 0, n)
	pc := isa.Addr(0x4000)
	for i := 0; i < n; i++ {
		// A mix of small forward deltas and occasional large jumps, so
		// windows cover non-trivial delta chains within chunks.
		pc += 4
		if i%97 == 0 {
			pc += 0x10_000
		}
		r := Record{PC: pc, Flags: Flags(i % 3)}
		full = append(full, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, full
}

// TestParseWindow covers the off:len grammar and its failure modes.
func TestParseWindow(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Window
	}{
		{"0:100", Window{0, 100}},
		{"8192:1K", Window{8192, 1 << 10}},
		{"2K:1M", Window{2 << 10, 1 << 20}},
		{" 5 : 7 ", Window{5, 7}},
	} {
		got, err := ParseWindow(tc.in)
		if err != nil {
			t.Errorf("ParseWindow(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseWindow(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "100", "1:", ":5", "a:5", "5:b", "5:0", "-1:5", "1:1G"} {
		if w, err := ParseWindow(bad); err == nil {
			t.Errorf("ParseWindow(%q) accepted as %v", bad, w)
		}
	}
	if got := (Window{3, 9}).String(); got != "3:9" {
		t.Errorf("String = %q", got)
	}
}

// TestSliceMatchesFullReplay is the window-addressing acceptance bar: for
// windows inside one chunk, spanning a chunk boundary, spanning several
// chunks, starting at record 0, and ending exactly at EOF, the slice's
// record sequence must be byte-identical to the same sub-range of a full
// store replay.
func TestSliceMatchesFullReplay(t *testing.T) {
	const n, perChunk = 10_000, 1 << 10 // ~10 chunks
	dir, full := windowStore(t, n, perChunk)

	for _, w := range []Window{
		{0, 100},                     // prefix inside chunk 0
		{37, perChunk - 37},          // ends exactly at a chunk boundary
		{perChunk - 5, 10},           // spans one chunk boundary
		{perChunk / 2, 3 * perChunk}, // spans several chunks
		{n - 257, 257},               // suffix ending exactly at EOF
		{5 * perChunk, perChunk},     // aligned interior chunk
		{0, n},                       // the whole store
	} {
		sr, err := OpenSlice(dir, w)
		if err != nil {
			t.Fatalf("OpenSlice(%v): %v", w, err)
		}
		got, err := Collect(sr)
		if err != nil {
			t.Fatalf("slice %v: %v", w, err)
		}
		if cerr := sr.Close(); cerr != nil {
			t.Fatalf("slice %v close: %v", w, cerr)
		}
		want := full[w.Off:w.End()]
		if len(got) != len(want) {
			t.Fatalf("slice %v yielded %d records, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("slice %v record %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
		// A drained slice stays cleanly at EOF.
		if _, err := sr.Next(); !errors.Is(err, io.EOF) {
			t.Errorf("slice %v after drain: %v, want io.EOF", w, err)
		}
	}
}

// TestSliceOutOfRange asserts windows reaching past the store are hard
// errors at open time, not short replays.
func TestSliceOutOfRange(t *testing.T) {
	const n = 5000
	dir, _ := windowStore(t, n, 1<<10)
	ix, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []Window{
		{0, n + 1},      // one past the end
		{n, 1},          // starts at EOF
		{n + 100, 50},   // entirely past the end
		{n - 10, 11},    // last record overruns
		{0, 0},          // empty window
		{^uint64(0), 2}, // offset+len overflows
	} {
		if err := ix.CheckWindow(w); err == nil {
			t.Errorf("CheckWindow(%v) accepted", w)
		}
		if sr, err := OpenSlice(dir, w); err == nil {
			sr.Close()
			t.Errorf("OpenSlice(%v) accepted", w)
		}
	}
	// The boundary case just inside the range stays valid.
	if err := ix.CheckWindow(Window{n - 1, 1}); err != nil {
		t.Errorf("CheckWindow(last record): %v", err)
	}
}

// TestSliceReaderMetadata covers the index/workload/window accessors used
// by source wiring.
func TestSliceReaderMetadata(t *testing.T) {
	dir, _ := windowStore(t, 2000, 1<<10)
	w := Window{100, 500}
	sr, err := OpenSlice(dir, w)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Workload() != "win" {
		t.Errorf("Workload = %q", sr.Workload())
	}
	if sr.Window() != w {
		t.Errorf("Window = %v", sr.Window())
	}
	if got := sr.Index().Records(); got != 2000 {
		t.Errorf("Index records = %d", got)
	}
}
