package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestFlags(t *testing.T) {
	f := FlagCallTarget | FlagBranchTaken
	if !f.Has(FlagCallTarget) || !f.Has(FlagBranchTaken) {
		t.Error("Has should report set bits")
	}
	if f.Has(FlagTrapEntry) {
		t.Error("Has should not report unset bits")
	}
	if !f.Has(FlagCallTarget | FlagBranchTaken) {
		t.Error("Has with multi-bit mask should require all bits")
	}
}

func TestRecordBlock(t *testing.T) {
	r := Record{PC: 0x1044}
	if r.Block() != isa.BlockOf(0x1044) {
		t.Errorf("Block = %v", r.Block())
	}
}

func TestStreamBlocksCollapses(t *testing.T) {
	s := Stream{
		{PC: 0x1000}, {PC: 0x1004}, {PC: 0x1008}, // same block
		{PC: 0x1040},               // next block
		{PC: 0x1000},               // back to first
		{PC: 0x1004},               // still first
		{PC: 0x2000}, {PC: 0x2004}, // third
	}
	blocks := s.Blocks()
	want := []isa.Block{isa.BlockOf(0x1000), isa.BlockOf(0x1040), isa.BlockOf(0x1000), isa.BlockOf(0x2000)}
	if len(blocks) != len(want) {
		t.Fatalf("Blocks = %v, want %v", blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Errorf("Blocks[%d] = %v, want %v", i, blocks[i], want[i])
		}
	}
}

func TestStreamBlocksEmpty(t *testing.T) {
	if got := (Stream{}).Blocks(); len(got) != 0 {
		t.Errorf("empty stream Blocks = %v", got)
	}
}

func TestBlocksNoAdjacentDuplicates(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Stream, int(n)+1)
		pc := isa.Addr(0x10000)
		for i := range s {
			if rng.Intn(3) == 0 {
				pc = isa.Addr(rng.Intn(1 << 20)).AlignToInstr()
			} else {
				pc = pc.Plus(1)
			}
			s[i] = Record{PC: pc}
		}
		blocks := s.Blocks()
		for i := 1; i < len(blocks); i++ {
			if blocks[i] == blocks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func roundTrip(t *testing.T, name string, s Stream) Stream {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.WriteStream(s); err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	if w.Count() != uint64(len(s)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(s))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Workload() != name {
		t.Fatalf("Workload = %q, want %q", r.Workload(), name)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	s := Stream{
		{PC: 0x1000, TL: isa.TL0, Flags: FlagCallTarget},
		{PC: 0x1004, TL: isa.TL0},
		{PC: 0x9000, TL: isa.TL1, Flags: FlagTrapEntry | FlagBranchTaken},
		{PC: 0x1008, TL: isa.TL0, Flags: FlagTrapReturn},
		{PC: 0x0, TL: isa.TL0},
	}
	got := roundTrip(t, "oltp-db2", s)
	if len(got) != len(s) {
		t.Fatalf("len = %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], s[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	got := roundTrip(t, "", Stream{})
	if len(got) != 0 {
		t.Errorf("expected empty stream, got %d records", len(got))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Stream, int(n))
		for i := range s {
			s[i] = Record{
				PC:    isa.Addr(rng.Uint64() & 0xffffffff).AlignToInstr(),
				TL:    isa.TrapLevel(rng.Intn(2)),
				Flags: Flags(rng.Intn(64)),
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "p")
		if err != nil {
			return false
		}
		if err := w.WriteStream(s); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{}); err == nil {
		t.Error("Write after Close should fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close should be nil, got %v", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{PC: 0x40}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the final flags byte: the reader should surface an error, not EOF.
	data := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record should be a hard error, got %v", err)
	}
}

// TestReaderTruncatedEveryByte truncates a valid trace at every byte
// boundary through the first few records and asserts the reader never
// reports a silently short stream: a cut inside a record — including in
// the middle of the delta varint, the case the reader used to swallow as
// a clean io.EOF — must surface io.ErrUnexpectedEOF, and a cut exactly on
// a record boundary must decode to exactly the complete-record prefix.
func TestReaderTruncatedEveryByte(t *testing.T) {
	// Large deltas force multi-byte varints so cuts land mid-varint.
	s := Stream{
		{PC: 0x7fff_0000, TL: isa.TL0, Flags: FlagCallTarget},
		{PC: 0x40, TL: isa.TL1, Flags: FlagTrapEntry},
		{PC: 0x1234_5678_9abc, TL: isa.TL0, Flags: FlagBranchTaken},
		{PC: 0x1234_5678_9ac0, TL: isa.TL0},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStream(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Map every record-aligned byte offset (including the bare header) to
	// the number of complete records before it, by re-encoding the same
	// stream record by record with a flush in between.
	var probe bytes.Buffer
	pw, err := NewWriter(&probe, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.w.Flush(); err != nil {
		t.Fatal(err)
	}
	headerLen := probe.Len()
	boundaries := map[int]int{headerLen: 0}
	for i, rec := range s {
		if err := pw.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := pw.w.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries[probe.Len()] = i + 1
	}

	for cut := headerLen; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: NewReader: %v", cut, err)
		}
		got, err := r.ReadAll()
		if want, aligned := boundaries[cut]; aligned {
			if err != nil {
				t.Errorf("cut=%d (record-aligned): ReadAll error %v", cut, err)
			}
			if len(got) != want {
				t.Errorf("cut=%d: decoded %d records, want %d", cut, len(got), want)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut=%d (mid-record): ReadAll error = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestWriterCloseSurfacesWriteError(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	// Poison the underlying bufio chain the way a full disk would: force
	// a flush failure by swapping in a broken writer after construction.
	w.w.Reset(failWriter{})
	if err := w.Write(Record{PC: 0x40}); err != nil {
		// Small writes buffer cleanly; a write error here is also fine.
		t.Logf("Write: %v", err)
	}
	if err := w.Close(); err == nil {
		t.Error("Close over a failed writer should report the failure")
	}
	if err := w.Close(); err == nil {
		t.Error("repeated Close should keep reporting the failure")
	}
}

// failWriter always fails, standing in for a full or yanked disk.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk gone") }

func TestReaderEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "t")
	_ = w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestWriterLongName(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, string(long)); err == nil {
		t.Error("overlong workload name should fail")
	}
}

func TestEncodingIsCompact(t *testing.T) {
	// Sequential +4 deltas should cost 3 bytes/record (varint 1 + TL + flags).
	s := make(Stream, 1000)
	for i := range s {
		s[i] = Record{PC: isa.Addr(0x1000).Plus(i)}
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "seq")
	_ = w.WriteStream(s)
	_ = w.Close()
	perRecord := float64(buf.Len()) / float64(len(s))
	if perRecord > 3.5 {
		t.Errorf("sequential encoding too large: %.2f bytes/record", perRecord)
	}
}
