package trace

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

// recordsFromBytes derives a record stream from arbitrary fuzz input:
// every 4 bytes become one record (16-bit PC step, trap level, flags), so
// any input is a valid stream and the fuzzer explores delta signs and
// sizes, trap levels, and flag bytes freely.
func recordsFromBytes(data []byte) Stream {
	s := make(Stream, 0, len(data)/4)
	pc := isa.Addr(0x10_0000)
	for i := 0; i+4 <= len(data); i += 4 {
		step := int(int16(binary.LittleEndian.Uint16(data[i:]))) // signed jumps
		pc = isa.Addr(int64(pc) + int64(step)*4)
		s = append(s, Record{PC: pc, TL: isa.TrapLevel(data[i+2] & 1), Flags: Flags(data[i+3] & 0x3f)})
	}
	return s
}

// FuzzTraceRoundTrip drives arbitrary record streams through both trace
// formats and asserts exact reconstruction: the version-1 single-file
// stream and the version-2 sharded store (with a fuzzer-chosen chunk
// size, so shard boundaries land everywhere) must both satisfy
// ReadAll(Write(s)) == s.
func FuzzTraceRoundTrip(f *testing.F) {
	// Seeds around shard boundaries: with chunkRecords forced into
	// [1, 16], 4*k-byte inputs put k records at, just below, and just
	// above chunk multiples.
	f.Add(make([]byte, 4*1), uint8(1))
	f.Add(make([]byte, 4*7), uint8(8))
	f.Add(make([]byte, 4*8), uint8(8))
	f.Add(make([]byte, 4*9), uint8(8))
	f.Add(make([]byte, 4*32), uint8(4))
	f.Add([]byte{0xff, 0x7f, 1, 0xff, 0x00, 0x80, 0, 0}, uint8(1))
	f.Add([]byte(nil), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, chunkByte uint8) {
		s := recordsFromBytes(data)
		chunkRecords := uint64(chunkByte%16) + 1

		// Version 1: single-file stream.
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "fuzz")
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		if err := w.WriteStream(s); err != nil {
			t.Fatalf("WriteStream: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("v1 ReadAll: %v", err)
		}
		assertSameStream(t, "v1", s, got)

		// Version 2: sharded store.
		dir := filepath.Join(t.TempDir(), "store")
		sw, err := CreateStore(dir, "fuzz", chunkRecords)
		if err != nil {
			t.Fatalf("CreateStore: %v", err)
		}
		if _, err := CopyRecords(sw, s.Iter()); err != nil {
			t.Fatalf("CopyRecords: %v", err)
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("store Close: %v", err)
		}
		sr, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		defer sr.Close()
		if sr.Header().Records != uint64(len(s)) {
			t.Fatalf("store Records = %d, want %d", sr.Header().Records, len(s))
		}
		got, err = sr.ReadAll()
		if err != nil {
			t.Fatalf("store ReadAll: %v", err)
		}
		assertSameStream(t, "store", s, got)
	})
}

func assertSameStream(t *testing.T, label string, want, got Stream) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}
