//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package trace

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can map chunk files at all;
// auto-mode source selection short-circuits to ReadFile when false.
const mmapSupported = true

// mmapChunk maps size bytes of f read-only and returns the mapping plus
// its teardown. It is a variable so tests can force mapping failures
// (exercising both the open-time fallback and the per-chunk degrade
// path) without needing an unmappable filesystem.
var mmapChunk = func(f *os.File, size int) ([]byte, func(), error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
