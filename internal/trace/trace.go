// Package trace defines the retire-order instruction trace records produced
// by the workload executor and consumed by every analysis in the repository,
// along with a compact binary on-disk format so traces can be generated once
// (cmd/tracegen) and replayed many times (cmd/pifsim, cmd/experiments).
//
// A Record corresponds to one retired instruction: its PC, its trap level,
// and flags describing how control arrived at it. The paper's central
// insight is that this stream — not the fetch-access or cache-miss stream —
// is the right input for an instruction prefetcher.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Flags annotate a retired instruction.
type Flags uint8

const (
	// FlagCallTarget marks the first instruction of a function invocation.
	FlagCallTarget Flags = 1 << iota
	// FlagReturnTarget marks the instruction after a returned call.
	FlagReturnTarget
	// FlagBranchTaken marks a control transfer that was taken.
	FlagBranchTaken
	// FlagCondBranch marks a conditional branch instruction.
	FlagCondBranch
	// FlagTrapEntry marks the first instruction of a trap handler.
	FlagTrapEntry
	// FlagTrapReturn marks the first instruction after a trap handler returns.
	FlagTrapReturn
)

// Has reports whether all bits of mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// Record is one retired instruction.
type Record struct {
	PC    isa.Addr
	TL    isa.TrapLevel
	Flags Flags
}

// Block returns the instruction block containing the record's PC.
func (r Record) Block() isa.Block { return isa.BlockOf(r.PC) }

// Stream is an in-memory retire-order instruction trace.
type Stream []Record

// Blocks returns the sequence of block addresses visited by the stream with
// consecutive same-block records collapsed to a single entry — the
// block-grain retire stream the PIF compactor consumes.
func (s Stream) Blocks() []isa.Block {
	out := make([]isa.Block, 0, len(s)/4)
	var last isa.Block
	have := false
	for _, r := range s {
		b := r.Block()
		if have && b == last {
			continue
		}
		out = append(out, b)
		last, have = b, true
	}
	return out
}

// magic identifies the binary trace format; version guards layout changes.
const (
	magic   uint32 = 0x50494654 // "PIFT"
	version uint32 = 1
)

// Header describes a stored trace.
type Header struct {
	Workload string
	Records  uint64
}

// Writer streams records to an io.Writer in the binary trace format.
// Records are delta-encoded against the previous PC to keep files small:
// most retire-order steps are +4 bytes.
type Writer struct {
	w      *bufio.Writer
	lastPC isa.Addr
	n      uint64
	closed bool
}

// NewWriter writes a trace header and returns a Writer.
func NewWriter(w io.Writer, workload string) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := binary.Write(bw, binary.LittleEndian, magic); err != nil {
		return nil, fmt.Errorf("trace: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return nil, fmt.Errorf("trace: write version: %w", err)
	}
	name := []byte(workload)
	if len(name) > 255 {
		return nil, errors.New("trace: workload name too long")
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return nil, fmt.Errorf("trace: write name length: %w", err)
	}
	if _, err := bw.Write(name); err != nil {
		return nil, fmt.Errorf("trace: write name: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.closed {
		return errors.New("trace: write after Close")
	}
	delta := int64(r.PC) - int64(w.lastPC)
	var buf [binary.MaxVarintLen64 + 2]byte
	n := binary.PutVarint(buf[:], delta)
	buf[n] = byte(r.TL)
	buf[n+1] = byte(r.Flags)
	if _, err := w.w.Write(buf[:n+2]); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	w.lastPC = r.PC
	w.n++
	return nil
}

// WriteStream appends every record of s.
func (w *Writer) WriteStream(s Stream) error {
	for _, r := range s {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Close flushes buffered output. The record count is not stored in the
// header (the format is stream-oriented); readers read to EOF.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF: an EOF in the middle of a
// record means the trace was truncated, which callers must not confuse with
// a clean end of stream.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Reader reads records from a binary trace.
type Reader struct {
	r        *bufio.Reader
	lastPC   isa.Addr
	workload string
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m, v uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: read name length: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: read name: %w", err)
	}
	return &Reader{r: br, workload: string(name)}, nil
}

// Workload returns the workload name stored in the trace header.
func (r *Reader) Workload() string { return r.workload }

// Read returns the next record, or io.EOF at end of trace.
func (r *Reader) Read() (Record, error) {
	delta, err := binary.ReadVarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: read delta: %w", err)
	}
	tl, err := r.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: read trap level: %w", noEOF(err))
	}
	fl, err := r.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: read flags: %w", noEOF(err))
	}
	pc := isa.Addr(int64(r.lastPC) + delta)
	r.lastPC = pc
	return Record{PC: pc, TL: isa.TrapLevel(tl), Flags: Flags(fl)}, nil
}

// ReadAll reads every remaining record into a Stream.
func (r *Reader) ReadAll() (Stream, error) {
	var s Stream
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s = append(s, rec)
	}
}
