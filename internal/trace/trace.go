// Package trace defines the retire-order instruction trace records produced
// by the workload executor and consumed by every analysis in the repository,
// along with a compact binary on-disk format so traces can be generated once
// (cmd/tracegen) and replayed many times (cmd/pifsim, cmd/experiments).
//
// A Record corresponds to one retired instruction: its PC, its trap level,
// and flags describing how control arrived at it. The paper's central
// insight is that this stream — not the fetch-access or cache-miss stream —
// is the right input for an instruction prefetcher.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Flags annotate a retired instruction.
type Flags uint8

const (
	// FlagCallTarget marks the first instruction of a function invocation.
	FlagCallTarget Flags = 1 << iota
	// FlagReturnTarget marks the instruction after a returned call.
	FlagReturnTarget
	// FlagBranchTaken marks a control transfer that was taken.
	FlagBranchTaken
	// FlagCondBranch marks a conditional branch instruction.
	FlagCondBranch
	// FlagTrapEntry marks the first instruction of a trap handler.
	FlagTrapEntry
	// FlagTrapReturn marks the first instruction after a trap handler returns.
	FlagTrapReturn
)

// Has reports whether all bits of mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// Record is one retired instruction.
type Record struct {
	PC    isa.Addr
	TL    isa.TrapLevel
	Flags Flags
}

// Block returns the instruction block containing the record's PC.
func (r Record) Block() isa.Block { return isa.BlockOf(r.PC) }

// Stream is an in-memory retire-order instruction trace.
type Stream []Record

// Blocks returns the sequence of block addresses visited by the stream with
// consecutive same-block records collapsed to a single entry — the
// block-grain retire stream the PIF compactor consumes.
func (s Stream) Blocks() []isa.Block {
	out := make([]isa.Block, 0, len(s)/4)
	var last isa.Block
	have := false
	for _, r := range s {
		b := r.Block()
		if have && b == last {
			continue
		}
		out = append(out, b)
		last, have = b, true
	}
	return out
}

// magic identifies the binary trace format; version guards layout changes.
// Version 1 is the single-file stream format (record count unknown until
// EOF); version 2 is the sharded store format (trace.idx plus chunk files,
// see store.go), whose index records per-chunk counts.
const (
	magic   uint32 = 0x50494654 // "PIFT"
	version uint32 = 1
)

// Header describes a stored trace. Records is zero for version-1 single
// file traces (the stream format carries no count); for version-2 sharded
// stores it is the exact record total from the chunk index.
type Header struct {
	Workload string
	Records  uint64
}

// encodeRecord delta-encodes r against lastPC into bw. The record costs
// one varint (PC delta) plus a trap-level byte and a flags byte.
func encodeRecord(bw *bufio.Writer, lastPC isa.Addr, r Record) error {
	delta := int64(r.PC) - int64(lastPC)
	var buf [binary.MaxVarintLen64 + 2]byte
	n := binary.PutVarint(buf[:], delta)
	buf[n] = byte(r.TL)
	buf[n+1] = byte(r.Flags)
	_, err := bw.Write(buf[:n+2])
	return err
}

// readVarint is binary.ReadVarint with truncation accounting: an EOF after
// at least one byte of the varint has been consumed is a torn record and is
// reported as io.ErrUnexpectedEOF, never as a clean end of stream.
func readVarint(br *bufio.Reader) (int64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if i > 0 && errors.Is(err, io.EOF) {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if i == binary.MaxVarintLen64 {
			return 0, errVarintOverflow
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errVarintOverflow
			}
			x |= uint64(b) << s
			break
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return int64(x>>1) ^ -int64(x&1), nil // zigzag decode
}

// decodeRecordBuf decodes one delta-encoded record from buf at offset
// off, resolving the PC against lastPC, and returns the record plus the
// offset one past it. It is the in-memory twin of decodeRecord with the
// same truncation accounting: io.EOF exactly on a record boundary
// (off == len(buf)), io.ErrUnexpectedEOF anywhere inside a record. The
// chunk readers decode whole chunk images through it, so the batch path's
// inner loop runs over a byte slice with no reader abstraction at all.
func decodeRecordBuf(buf []byte, off int, lastPC isa.Addr) (Record, int, error) {
	if off >= len(buf) {
		return Record{}, off, io.EOF
	}
	// Varint PC delta (zigzag), inlined from readVarint over the slice.
	var x uint64
	var s uint
	i := 0
	for {
		if off+i >= len(buf) {
			return Record{}, off, fmt.Errorf("trace: read delta: %w", io.ErrUnexpectedEOF)
		}
		b := buf[off+i]
		if i == binary.MaxVarintLen64 {
			return Record{}, off, fmt.Errorf("trace: read delta: %w", errVarintOverflow)
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return Record{}, off, fmt.Errorf("trace: read delta: %w", errVarintOverflow)
			}
			x |= uint64(b) << s
			i++
			break
		}
		x |= uint64(b&0x7f) << s
		s += 7
		i++
	}
	delta := int64(x>>1) ^ -int64(x&1) // zigzag decode
	if off+i >= len(buf) {
		return Record{}, off, fmt.Errorf("trace: read trap level: %w", io.ErrUnexpectedEOF)
	}
	tl := buf[off+i]
	if off+i+1 >= len(buf) {
		return Record{}, off, fmt.Errorf("trace: read flags: %w", io.ErrUnexpectedEOF)
	}
	fl := buf[off+i+1]
	pc := isa.Addr(int64(lastPC) + delta)
	return Record{PC: pc, TL: isa.TrapLevel(tl), Flags: Flags(fl)}, off + i + 2, nil
}

// errVarintOverflow matches readVarint's overflow diagnosis.
var errVarintOverflow = errors.New("trace: varint overflows 64 bits")

// decodeRecord reads one delta-encoded record, resolving the PC against
// lastPC. A clean io.EOF is returned only when the stream ends exactly on a
// record boundary; an EOF anywhere inside a record is io.ErrUnexpectedEOF.
func decodeRecord(br *bufio.Reader, lastPC isa.Addr) (Record, error) {
	delta, err := readVarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: read delta: %w", err)
	}
	tl, err := br.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: read trap level: %w", noEOF(err))
	}
	fl, err := br.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: read flags: %w", noEOF(err))
	}
	pc := isa.Addr(int64(lastPC) + delta)
	return Record{PC: pc, TL: isa.TrapLevel(tl), Flags: Flags(fl)}, nil
}

// Writer streams records to an io.Writer in the binary trace format.
// Records are delta-encoded against the previous PC to keep files small:
// most retire-order steps are +4 bytes.
type Writer struct {
	w      *bufio.Writer
	lastPC isa.Addr
	n      uint64
	closed bool
	err    error // first write/flush failure, surfaced again by Close
}

// NewWriter writes a trace header and returns a Writer.
func NewWriter(w io.Writer, workload string) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := binary.Write(bw, binary.LittleEndian, magic); err != nil {
		return nil, fmt.Errorf("trace: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return nil, fmt.Errorf("trace: write version: %w", err)
	}
	name := []byte(workload)
	if len(name) > 255 {
		return nil, errors.New("trace: workload name too long")
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return nil, fmt.Errorf("trace: write name length: %w", err)
	}
	if _, err := bw.Write(name); err != nil {
		return nil, fmt.Errorf("trace: write name: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. Once a write has failed, the writer is stuck:
// every subsequent Write (and Close) reports the first failure.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: write after Close")
	}
	if err := encodeRecord(w.w, w.lastPC, r); err != nil {
		w.err = fmt.Errorf("trace: write record: %w", err)
		return w.err
	}
	w.lastPC = r.PC
	w.n++
	return nil
}

// WriteStream appends every record of s.
func (w *Writer) WriteStream(s Stream) error {
	for _, r := range s {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Close flushes buffered output. The record count is not stored in the
// header (the format is stream-oriented); readers read to EOF. If any
// write has failed, Close reports that first failure — including on
// repeated calls — so a caller that ignored a Write error still cannot
// mistake a torn trace for a successful one.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("trace: flush: %w", err)
	}
	return w.err
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF: an EOF in the middle of a
// record means the trace was truncated, which callers must not confuse with
// a clean end of stream.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Reader reads records from a binary trace.
type Reader struct {
	r        *bufio.Reader
	lastPC   isa.Addr
	workload string
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m, v uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: read name length: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: read name: %w", err)
	}
	return &Reader{r: br, workload: string(name)}, nil
}

// Workload returns the workload name stored in the trace header.
func (r *Reader) Workload() string { return r.workload }

// Read returns the next record, or io.EOF at end of trace. A trace
// truncated anywhere inside a record — including mid-varint — is reported
// as io.ErrUnexpectedEOF, never as a clean end of stream.
func (r *Reader) Read() (Record, error) {
	rec, err := decodeRecord(r.r, r.lastPC)
	if err != nil {
		return Record{}, err
	}
	r.lastPC = rec.PC
	return rec, nil
}

// Next implements Iterator; it is Read under the iterator's name.
func (r *Reader) Next() (Record, error) { return r.Read() }

// NextBatch implements BatchIterator: up to len(dst) records are decoded
// per call, amortizing the per-record call overhead (see the contract on
// BatchIterator). Truncation surfaces exactly as it would from Read.
func (r *Reader) NextBatch(dst []Record) (int, error) {
	for i := range dst {
		rec, err := r.Read()
		if err != nil {
			if err == io.EOF {
				if i > 0 {
					return i, nil
				}
				return 0, io.EOF
			}
			return i, err
		}
		dst[i] = rec
	}
	return len(dst), nil
}

// ReadAll reads every remaining record into a Stream.
func (r *Reader) ReadAll() (Stream, error) { return Collect(r) }
