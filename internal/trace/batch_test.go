package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// drainPerRecord pulls it one record at a time and returns every record
// plus the terminal error (io.EOF for a clean end).
func drainPerRecord(it Iterator) (Stream, error) {
	var out Stream
	for {
		r, err := it.Next()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// drainBatch pulls it through NextBatch with the given batch size and
// returns every record plus the terminal error.
func drainBatch(b BatchIterator, batch int) (Stream, error) {
	var out Stream
	buf := make([]Record, batch)
	for {
		n, err := b.NextBatch(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			return out, err
		}
	}
}

// checkParity asserts the per-record and batch drains of two identically
// positioned iterators agree record for record and error for error. The
// terminal errors must match in rendered message and in errors.Is
// identity against both EOF sentinels — byte-identical failure surfaces
// are the batch contract.
func checkParity(t *testing.T, label string, perRecord Iterator, batched BatchIterator, batch int) {
	t.Helper()
	want, wantErr := drainPerRecord(perRecord)
	got, gotErr := drainBatch(batched, batch)
	if len(got) != len(want) {
		t.Fatalf("%s (batch %d): %d records, per-record path yields %d", label, batch, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s (batch %d): record %d = %+v, want %+v", label, batch, i, got[i], want[i])
		}
	}
	checkSameError(t, fmt.Sprintf("%s (batch %d)", label, batch), gotErr, wantErr)
}

// checkSameError asserts two terminal errors are indistinguishable to a
// caller: same message, same io.EOF / io.ErrUnexpectedEOF identity.
func checkSameError(t *testing.T, label string, got, want error) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: error = %v, want %v", label, got, want)
	}
	if got == nil {
		return
	}
	if got.Error() != want.Error() {
		t.Fatalf("%s: error %q, want %q", label, got, want)
	}
	if errors.Is(got, io.EOF) != errors.Is(want, io.EOF) {
		t.Fatalf("%s: errors.Is(err, io.EOF) mismatch: batch %v, per-record %v", label, got, want)
	}
	if errors.Is(got, io.ErrUnexpectedEOF) != errors.Is(want, io.ErrUnexpectedEOF) {
		t.Fatalf("%s: errors.Is(err, io.ErrUnexpectedEOF) mismatch: batch %v, per-record %v", label, got, want)
	}
}

// batchSizes covers degenerate (1), prime-vs-chunk-misaligned, and
// larger-than-stream batch lengths.
var batchSizes = []int{1, 3, 7, 64, 100_000}

// plainIter hides an iterator's batch capability so tests can force the
// Batched adapter path.
type plainIter struct{ it Iterator }

func (p plainIter) Next() (Record, error) { return p.it.Next() }

// TestBatchParityStream checks StreamIter and the Batched adapter against
// per-record iteration on an in-memory stream.
func TestBatchParityStream(t *testing.T) {
	s := synthStream(11, 1000)
	for _, batch := range batchSizes {
		checkParity(t, "StreamIter", s.Iter(), s.Iter(), batch)
		checkParity(t, "Batched(plain)", s.Iter(), Batched(plainIter{s.Iter()}), batch)
	}
	// Empty stream: first batch pull is a clean EOF.
	if n, err := Stream(nil).Iter().NextBatch(make([]Record, 4)); n != 0 || err != io.EOF {
		t.Fatalf("empty stream NextBatch = (%d, %v), want (0, EOF)", n, err)
	}
	// Zero-length dst never touches the stream.
	it := s.Iter()
	if n, err := it.NextBatch(nil); n != 0 || err != nil {
		t.Fatalf("NextBatch(nil) = (%d, %v), want (0, nil)", n, err)
	}
	if r, err := it.Next(); err != nil || r != s[0] {
		t.Fatalf("Next after NextBatch(nil) = (%+v, %v), want first record", r, err)
	}
}

// TestBatchParityReader checks the version-1 file Reader.
func TestBatchParityReader(t *testing.T) {
	s := synthStream(13, 777)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "wl")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStream(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	open := func() *Reader {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, batch := range batchSizes {
		checkParity(t, "Reader", open(), open(), batch)
	}
	// Truncation parity at every byte length that cuts into the record
	// payload (the header is 9+len("wl") bytes).
	header := 9 + 2
	for cut := header; cut < len(raw); cut += 97 {
		rr, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut %d: NewReader: %v", cut, err)
		}
		br, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut %d: NewReader: %v", cut, err)
		}
		checkParity(t, fmt.Sprintf("Reader cut@%d", cut), rr, br, 64)
	}
}

// storeFixture writes a multi-chunk store and returns its directory and
// stream. perChunk 64, 5 chunks plus a short tail.
func storeFixture(t *testing.T, seed int64) (string, Stream) {
	t.Helper()
	s := synthStream(seed, 5*64+17)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", 64, s)
	return dir, s
}

// TestBatchParityStore checks ChunkReader and StoreReader across chunk
// boundaries.
func TestBatchParityStore(t *testing.T) {
	dir, _ := storeFixture(t, 17)
	ix, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	openStore := func() *StoreReader {
		r, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}
	for _, batch := range batchSizes {
		checkParity(t, "StoreReader", openStore(), openStore(), batch)
		for i := range ix.Chunks {
			a, err := OpenChunk(dir, ix, i)
			if err != nil {
				t.Fatal(err)
			}
			b, err := OpenChunk(dir, ix, i)
			if err != nil {
				t.Fatal(err)
			}
			checkParity(t, fmt.Sprintf("ChunkReader %d", i), a, b, batch)
		}
	}
}

// TestBatchParitySlice checks SliceReader windows, including ones that
// span chunk boundaries and start mid-chunk.
func TestBatchParitySlice(t *testing.T) {
	dir, s := storeFixture(t, 19)
	windows := []Window{
		{Off: 0, Len: 10},                     // head of chunk 0
		{Off: 60, Len: 10},                    // spans the 0→1 boundary
		{Off: 63, Len: 130},                   // spans three chunks
		{Off: 64, Len: 64},                    // exactly chunk 1
		{Off: 300, Len: uint64(len(s)) - 300}, // through the short tail
	}
	for _, w := range windows {
		for _, batch := range batchSizes {
			a, err := OpenSlice(dir, w)
			if err != nil {
				t.Fatalf("OpenSlice(%s): %v", w, err)
			}
			b, err := OpenSlice(dir, w)
			if err != nil {
				t.Fatalf("OpenSlice(%s): %v", w, err)
			}
			checkParity(t, fmt.Sprintf("SliceReader %s", w), a, b, batch)
			a.Close()
			b.Close()
		}
		// Contents equal the stream slice itself.
		sr, err := OpenSlice(dir, w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(sr)
		sr.Close()
		if err != nil {
			t.Fatalf("Collect(%s): %v", w, err)
		}
		want := s[w.Off:w.End()]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %s record %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

// TestBatchParityTruncatedStore truncates a mid-store chunk file at every
// byte length and asserts the batch path reports byte-identical errors to
// the per-record path, always io.ErrUnexpectedEOF (or the index-mismatch
// diagnosis), never a clean EOF.
func TestBatchParityTruncatedStore(t *testing.T) {
	dir, _ := storeFixture(t, 23)
	chunkPath := filepath.Join(dir, ChunkFileName(2))
	whole, err := os.ReadFile(chunkPath)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(chunkPath, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	defer restore()
	for cut := 0; cut < len(whole); cut += 13 {
		if err := os.WriteFile(chunkPath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		a, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("cut %d: OpenStore: %v", cut, err)
		}
		b, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("cut %d: OpenStore: %v", cut, err)
		}
		checkParity(t, fmt.Sprintf("truncated@%d", cut), a, b, 64)
		a.Close()
		b.Close()
		// The terminal error must never be a clean EOF: the index knows
		// more records were owed.
		c, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, termErr := drainBatch(c, 64)
		c.Close()
		if errors.Is(termErr, io.EOF) && !errors.Is(termErr, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: truncated store drained cleanly (%v)", cut, termErr)
		}
	}
}

// TestBatchPartialThenError asserts the documented contract point that a
// truncation error surfaces after the records decoded earlier in the same
// call: dst[:n] is valid alongside err.
func TestBatchPartialThenError(t *testing.T) {
	dir, s := storeFixture(t, 29)
	chunkPath := filepath.Join(dir, ChunkFileName(0))
	whole, err := os.ReadFile(chunkPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the first chunk roughly in half, mid-payload.
	cut := chunkHeaderSize + (len(whole)-chunkHeaderSize)/2
	if err := os.WriteFile(chunkPath, whole[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]Record, 64)
	var got Stream
	var termErr error
	for {
		n, err := r.NextBatch(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			termErr = err
			break
		}
	}
	if !errors.Is(termErr, io.ErrUnexpectedEOF) {
		t.Fatalf("terminal error = %v, want ErrUnexpectedEOF", termErr)
	}
	if len(got) == 0 {
		t.Fatal("no records decoded before the truncation error")
	}
	for i := range got {
		if got[i] != s[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], s[i])
		}
	}
}

// TestStoreReadahead exercises the readahead machinery: interleaved
// Seek/Next/NextBatch across chunk boundaries while background loads are
// in flight, then Close with a load pending. Run under -race in CI, this
// is the data-race probe for the readahead goroutine.
func TestStoreReadahead(t *testing.T) {
	dir, s := storeFixture(t, 31)
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]Record, 50)
	for round := 0; round < 20; round++ {
		off := uint64((round * 37) % (len(s) - 60))
		if err := r.Seek(off); err != nil {
			t.Fatalf("Seek(%d): %v", off, err)
		}
		if want, got := uint64(len(s))-off, r.Records(); got != want {
			t.Fatalf("Records after Seek(%d) = %d, want %d", off, got, want)
		}
		// Alternate pull styles so chunk turnover happens under both.
		if round%2 == 0 {
			n, err := r.NextBatch(buf)
			if err != nil {
				t.Fatalf("NextBatch after Seek(%d): %v", off, err)
			}
			for i := 0; i < n; i++ {
				if buf[i] != s[off+uint64(i)] {
					t.Fatalf("record %d after Seek(%d) mismatch", i, off)
				}
			}
		} else {
			for i := 0; i < 50; i++ {
				rec, err := r.Next()
				if err != nil {
					t.Fatalf("Next after Seek(%d): %v", off, err)
				}
				if rec != s[off+uint64(i)] {
					t.Fatalf("record %d after Seek(%d) mismatch", i, off)
				}
			}
		}
	}
	// Leave a readahead pending and Close immediately: must not leak or
	// race (the buffered channel lets the loader finish on its own).
	if err := r.Seek(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close with pending readahead: %v", err)
	}
}

// TestCollectSizeHint asserts Counted sources collect with a single exact
// allocation (capacity == record count) and no re-growth.
func TestCollectSizeHint(t *testing.T) {
	dir, s := storeFixture(t, 37)

	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := r.Records(), uint64(len(s)); got != want {
		t.Fatalf("StoreReader.Records = %d, want %d", got, want)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) || cap(got) != len(s) {
		t.Fatalf("Collect(StoreReader): len %d cap %d, want %d exactly (hint should preallocate)",
			len(got), cap(got), len(s))
	}

	w := Window{Off: 100, Len: 150}
	sr, err := OpenSlice(dir, w)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if got, want := sr.Records(), w.Len; got != want {
		t.Fatalf("SliceReader.Records = %d, want %d", got, want)
	}
	sliceGot, err := Collect(sr)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(sliceGot)) != w.Len || uint64(cap(sliceGot)) != w.Len {
		t.Fatalf("Collect(SliceReader): len %d cap %d, want %d exactly", len(sliceGot), cap(sliceGot), w.Len)
	}

	// StreamIter advertises its remaining length too.
	it := s.Iter()
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	if got, want := it.Records(), uint64(len(s)-1); got != want {
		t.Fatalf("StreamIter.Records = %d, want %d", got, want)
	}
}

// TestCollectNoHint asserts collection still works (growing) for plain
// iterators with no Counted hint.
func TestCollectNoHint(t *testing.T) {
	s := synthStream(41, 12345)
	got, err := Collect(plainIter{s.Iter()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("len = %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}
