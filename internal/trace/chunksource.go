package trace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// errMmapUnsupported is what mmapChunk reports on platforms without a
// usable mmap syscall (see mmap_stub.go).
var errMmapUnsupported = errors.New("trace: mmap is not supported on this platform")

// ChunkSource abstracts how a store's chunk file images reach the
// decoder. The ReadFile implementation copies each chunk into a fresh
// heap buffer (the portable baseline); the mmap implementation maps the
// chunk file and decodes straight from the page cache with zero copies.
//
// ChunkData returns the raw image of chunk i — header included — plus a
// release callback that gives the bytes back (munmap on the mmap path,
// a no-op on the heap path). The returned data is valid only until
// release is called; callers must not retain sub-slices past it.
// ChunkReader owns its chunk's release and invokes it exactly once from
// Close, which is the single point where a mapping is torn down — the
// lifetime rule that makes Seek/Close during decode safe (see DESIGN.md
// §13).
type ChunkSource interface {
	ChunkData(i int) (data []byte, release func(), err error)
	// Kind names the implementation: "mmap" or "readfile".
	Kind() string
}

// ChunkSourceMode selects a store's chunk source at open time.
type ChunkSourceMode int

const (
	// ChunkSourceAuto maps chunks when the platform supports it and a
	// probe mapping of the first chunk succeeds, falling back to
	// ReadFile otherwise. This is what OpenStore uses.
	ChunkSourceAuto ChunkSourceMode = iota
	// ChunkSourceMmap requires the mmap path; opening fails on
	// platforms or filesystems that cannot map.
	ChunkSourceMmap
	// ChunkSourceReadFile forces the heap-copy path.
	ChunkSourceReadFile
)

// readFileSource is the portable chunk source: one os.ReadFile per
// chunk, image lifetime managed by the garbage collector.
type readFileSource struct{ dir string }

func (s readFileSource) ChunkData(i int) ([]byte, func(), error) {
	data, err := os.ReadFile(filepath.Join(s.dir, ChunkFileName(i)))
	if err != nil {
		return nil, nil, fmt.Errorf("trace: open chunk: %w", err)
	}
	return data, func() {}, nil
}

func (s readFileSource) Kind() string { return "readfile" }

// mmapSource maps each chunk file read-only. Every ChunkData call owns
// an independent mapping, released by its own callback, so concurrent
// readers of one store never share mapping lifetime. A per-chunk map
// failure after a store opened successfully falls back to a heap read
// for that chunk rather than failing the replay.
type mmapSource struct{ dir string }

func (s mmapSource) ChunkData(i int) ([]byte, func(), error) {
	path := filepath.Join(s.dir, ChunkFileName(i))
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: open chunk: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("trace: open chunk: %w", err)
	}
	if fi.Size() == 0 {
		// A zero-length mapping is an error on every platform; an empty
		// image produces the same short-header diagnosis either way.
		return nil, func() {}, nil
	}
	data, release, err := mmapChunk(f, int(fi.Size()))
	if err != nil {
		// The store-level probe passed, so this is a transient or
		// per-file condition (e.g. resource limits): degrade to a copy.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, fmt.Errorf("trace: open chunk: %w", rerr)
		}
		return data, func() {}, nil
	}
	madviseSequential(data)
	return data, release, nil
}

func (s mmapSource) Kind() string { return "mmap" }

// newChunkSource selects the chunk source for a store per mode. In auto
// mode a store with at least one chunk is probed by mapping its first
// chunk; any failure — unsupported platform, filesystem without mmap,
// permissions — silently selects the ReadFile fallback. Explicitly
// requesting mmap is strict: probe failure is the caller's error.
func newChunkSource(dir string, ix Index, mode ChunkSourceMode) (ChunkSource, error) {
	switch mode {
	case ChunkSourceReadFile:
		return readFileSource{dir}, nil
	case ChunkSourceMmap, ChunkSourceAuto:
		err := probeMmap(dir, ix)
		if err == nil {
			return mmapSource{dir}, nil
		}
		if mode == ChunkSourceMmap {
			return nil, fmt.Errorf("trace: mmap chunk source unavailable for %s: %w", dir, err)
		}
		return readFileSource{dir}, nil
	default:
		return nil, fmt.Errorf("trace: unknown chunk source mode %d", mode)
	}
}

// probeMmap checks that chunk files in dir can actually be mapped by
// mapping the first chunk and immediately releasing it. Chunk-less
// stores probe the platform capability only.
func probeMmap(dir string, ix Index) error {
	if !mmapSupported {
		return errMmapUnsupported
	}
	if len(ix.Chunks) == 0 {
		return nil
	}
	f, err := os.Open(filepath.Join(dir, ChunkFileName(0)))
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() == 0 {
		return nil
	}
	_, release, err := mmapChunk(f, int(fi.Size()))
	if err != nil {
		return err
	}
	release()
	return nil
}
