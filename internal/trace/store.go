package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/isa"
)

// Format version 2: a sharded on-disk trace store. A store is a directory
// holding an index file (trace.idx) plus fixed-record-count chunk files.
// Each chunk header carries the chunk's base PC, so delta decoding restarts
// per chunk and any chunk can be decoded without its predecessors — the
// unit of random access to a trace window, and the natural work unit for
// distributing a trace across machines. The index records the per-chunk
// record counts and base PCs, so the total record count is known up front
// (Header.Records) and truncated or overgrown chunks are detected instead
// of being read as a clean short stream.
const (
	chunkMagic   uint32 = 0x50494643 // "PIFC"
	storeVersion uint32 = 2

	// IndexName is the index file inside a store directory.
	IndexName = "trace.idx"

	// DefaultChunkRecords is the records-per-chunk used when a caller
	// passes 0: 1M records ≈ 3 MB per chunk at typical delta density.
	DefaultChunkRecords = 1 << 20
)

// ChunkFileName returns the file name of chunk i within a store.
func ChunkFileName(i int) string { return fmt.Sprintf("chunk-%06d.pifc", i) }

// ChunkInfo is one chunk's entry in the store index.
type ChunkInfo struct {
	// Records is the exact record count of the chunk. Every chunk holds
	// the store's target count except the final one, which may be short.
	Records uint64
	// BasePC is the PC of the chunk's first record; delta decoding within
	// the chunk restarts from it.
	BasePC isa.Addr
}

// Index is a store's metadata, persisted as trace.idx.
type Index struct {
	// Workload is the traced workload's name.
	Workload string
	// ChunkTarget is the records-per-chunk the store was written with.
	ChunkTarget uint64
	// Phases records the executor phase boundaries the trace was
	// collected with (e.g. {warmup, measure}), when the writer declared
	// them. The executor starts a fresh transaction at each phase, so a
	// replay is only byte-identical to a live run that uses the same
	// split — recording it makes a mismatched replay detectable instead
	// of silently divergent. Empty when the writer declared none.
	Phases []uint64
	// Chunks describes every chunk in order.
	Chunks []ChunkInfo
}

// Records returns the store's total record count.
func (ix Index) Records() uint64 {
	var n uint64
	for _, c := range ix.Chunks {
		n += c.Records
	}
	return n
}

// Header returns the trace header implied by the index, with the record
// count filled in (unlike version-1 single-file traces, a store knows its
// length without being read).
func (ix Index) Header() Header {
	return Header{Workload: ix.Workload, Records: ix.Records()}
}

// PhaseCompatible reports whether replaying warmup+measure records from
// this store reproduces a live run with that split byte-for-byte. A live
// run places an executor phase boundary (fresh transaction) exactly at
// warmup, so the recorded boundaries must include warmup (unless it is
// zero) and no recorded boundary may fall strictly inside the measured
// interval. Stores that recorded no phases cannot be validated and are
// accepted.
func (ix Index) PhaseCompatible(warmup, measure uint64) bool {
	if len(ix.Phases) == 0 {
		return true
	}
	okWarmup := warmup == 0
	var cum uint64
	for _, p := range ix.Phases {
		cum += p
		if cum == warmup {
			okWarmup = true
		}
		if cum > warmup && cum < warmup+measure {
			return false
		}
	}
	return okWarmup
}

// StoreWriter writes a sharded trace store. Records accumulate into chunk
// files of a fixed record count; Close seals the final chunk and writes
// the index. Like Writer, a StoreWriter is stuck after its first failure
// and Close re-reports it.
type StoreWriter struct {
	dir      string
	perChunk uint64
	ix       Index

	f       *os.File
	bw      *bufio.Writer
	lastPC  isa.Addr
	inChunk uint64
	n       uint64
	closed  bool
	err     error
}

// CreateStore creates (or truncates into) directory dir and returns a
// StoreWriter. chunkRecords is the per-chunk record count (0 selects
// DefaultChunkRecords).
func CreateStore(dir, workload string, chunkRecords uint64) (*StoreWriter, error) {
	if len(workload) > 255 {
		return nil, errors.New("trace: workload name too long")
	}
	if chunkRecords == 0 {
		chunkRecords = DefaultChunkRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: create store: %w", err)
	}
	// Truncate any previous store: drop the index first (so a crash
	// mid-cleanup leaves an invalid store, never a wrong one), then the
	// old chunks — a shorter rewrite must not leave stale higher-ordinal
	// chunk files beside the new index.
	if err := os.Remove(filepath.Join(dir, IndexName)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("trace: create store: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(dir, "chunk-*.pifc"))
	if err != nil {
		return nil, fmt.Errorf("trace: create store: %w", err)
	}
	for _, f := range stale {
		if err := os.Remove(f); err != nil {
			return nil, fmt.Errorf("trace: create store: %w", err)
		}
	}
	return &StoreWriter{
		dir:      dir,
		perChunk: chunkRecords,
		ix:       Index{Workload: workload, ChunkTarget: chunkRecords},
	}, nil
}

// Write appends one record, sealing and starting chunk files as needed.
func (w *StoreWriter) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: store write after Close")
	}
	if w.f == nil {
		if err := w.openChunk(r.PC); err != nil {
			w.err = err
			return w.err
		}
	}
	if err := encodeRecord(w.bw, w.lastPC, r); err != nil {
		w.err = fmt.Errorf("trace: write record: %w", err)
		return w.err
	}
	w.lastPC = r.PC
	w.inChunk++
	w.n++
	if w.inChunk == w.perChunk {
		if err := w.sealChunk(); err != nil {
			w.err = err
			return w.err
		}
	}
	return nil
}

// openChunk starts the next chunk file with basePC as its delta origin.
func (w *StoreWriter) openChunk(basePC isa.Addr) error {
	ordinal := len(w.ix.Chunks)
	f, err := os.Create(filepath.Join(w.dir, ChunkFileName(ordinal)))
	if err != nil {
		return fmt.Errorf("trace: create chunk: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	for _, v := range []uint32{chunkMagic, storeVersion, uint32(ordinal)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			f.Close()
			return fmt.Errorf("trace: write chunk header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(basePC)); err != nil {
		f.Close()
		return fmt.Errorf("trace: write chunk base PC: %w", err)
	}
	w.f, w.bw = f, bw
	w.lastPC = basePC
	w.inChunk = 0
	w.ix.Chunks = append(w.ix.Chunks, ChunkInfo{BasePC: basePC})
	return nil
}

// sealChunk flushes and closes the open chunk, recording its final count.
func (w *StoreWriter) sealChunk() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("trace: flush chunk: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("trace: close chunk: %w", err)
	}
	w.ix.Chunks[len(w.ix.Chunks)-1].Records = w.inChunk
	w.f, w.bw = nil, nil
	w.inChunk = 0
	return nil
}

// Count returns the number of records written so far.
func (w *StoreWriter) Count() uint64 { return w.n }

// SetPhases declares the executor phase boundaries the trace is being
// recorded with (see Index.Phases); call before Close.
func (w *StoreWriter) SetPhases(phases ...uint64) { w.ix.Phases = phases }

// fail poisons the writer with an external cause (e.g. the record source
// died mid-copy): Close will release resources but never write an index,
// so the partial store can't be mistaken for a complete one.
func (w *StoreWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Close seals the final chunk and writes the index. The index is written
// to a temporary file and renamed into place, so a directory containing
// trace.idx always describes a completely written store; after any
// failure Close only releases the open chunk handle and re-reports the
// error, leaving the partial store index-less (and thus invalid).
func (w *StoreWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		if w.f != nil {
			w.f.Close()
			w.f, w.bw = nil, nil
		}
		return w.err
	}
	if w.f != nil {
		if err := w.sealChunk(); err != nil {
			w.err = err
			return w.err
		}
	}
	if err := writeIndex(w.dir, w.ix); err != nil {
		w.err = err
	}
	return w.err
}

// writeIndex persists ix as dir/trace.idx via a temp-file rename.
func writeIndex(dir string, ix Index) error {
	tmp := filepath.Join(dir, IndexName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("trace: write index: %w", err)
	}
	bw := bufio.NewWriter(f)
	werr := func() error {
		for _, v := range []uint32{magic, storeVersion} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(byte(len(ix.Workload))); err != nil {
			return err
		}
		if _, err := bw.WriteString(ix.Workload); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, ix.ChunkTarget); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(ix.Chunks))); err != nil {
			return err
		}
		for _, c := range ix.Chunks {
			if err := binary.Write(bw, binary.LittleEndian, c.Records); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint64(c.BasePC)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(ix.Phases))); err != nil {
			return err
		}
		for _, p := range ix.Phases {
			if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
				return err
			}
		}
		// Trailing total record count: redundant with the per-chunk
		// counts, kept as a cheap integrity cross-check on read.
		return binary.Write(bw, binary.LittleEndian, ix.Records())
	}()
	if werr == nil {
		werr = bw.Flush()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: write index: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(dir, IndexName)); err != nil {
		return fmt.Errorf("trace: write index: %w", err)
	}
	return nil
}

// ReadIndex reads and validates a store directory's index.
func ReadIndex(dir string) (Index, error) {
	f, err := os.Open(filepath.Join(dir, IndexName))
	if err != nil {
		return Index{}, fmt.Errorf("trace: open index: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var m, v uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return Index{}, fmt.Errorf("trace: read index magic: %w", noEOF(err))
	}
	if m != magic {
		return Index{}, fmt.Errorf("trace: bad index magic %#x", m)
	}
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return Index{}, fmt.Errorf("trace: read index version: %w", noEOF(err))
	}
	if v != storeVersion {
		return Index{}, fmt.Errorf("trace: unsupported store version %d", v)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return Index{}, fmt.Errorf("trace: read index name length: %w", noEOF(err))
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return Index{}, fmt.Errorf("trace: read index name: %w", noEOF(err))
	}
	ix := Index{Workload: string(name)}
	if err := binary.Read(br, binary.LittleEndian, &ix.ChunkTarget); err != nil {
		return Index{}, fmt.Errorf("trace: read chunk target: %w", noEOF(err))
	}
	var numChunks uint32
	if err := binary.Read(br, binary.LittleEndian, &numChunks); err != nil {
		return Index{}, fmt.Errorf("trace: read chunk count: %w", noEOF(err))
	}
	// Sanity-cap the count against the file's actual size (16 bytes per
	// chunk entry) before allocating: a corrupt count field must be a
	// clean error, not a multi-gigabyte allocation.
	if fi, err := f.Stat(); err != nil {
		return Index{}, fmt.Errorf("trace: stat index: %w", err)
	} else if uint64(numChunks) > uint64(fi.Size())/16 {
		return Index{}, fmt.Errorf("trace: index claims %d chunks but is only %d bytes", numChunks, fi.Size())
	}
	ix.Chunks = make([]ChunkInfo, numChunks)
	for i := range ix.Chunks {
		if err := binary.Read(br, binary.LittleEndian, &ix.Chunks[i].Records); err != nil {
			return Index{}, fmt.Errorf("trace: read chunk %d records: %w", i, noEOF(err))
		}
		var base uint64
		if err := binary.Read(br, binary.LittleEndian, &base); err != nil {
			return Index{}, fmt.Errorf("trace: read chunk %d base PC: %w", i, noEOF(err))
		}
		ix.Chunks[i].BasePC = isa.Addr(base)
	}
	var numPhases uint32
	if err := binary.Read(br, binary.LittleEndian, &numPhases); err != nil {
		return Index{}, fmt.Errorf("trace: read phase count: %w", noEOF(err))
	}
	if fi, err := f.Stat(); err != nil {
		return Index{}, fmt.Errorf("trace: stat index: %w", err)
	} else if uint64(numPhases) > uint64(fi.Size())/8 {
		return Index{}, fmt.Errorf("trace: index claims %d phases but is only %d bytes", numPhases, fi.Size())
	}
	if numPhases > 0 {
		ix.Phases = make([]uint64, numPhases)
		for i := range ix.Phases {
			if err := binary.Read(br, binary.LittleEndian, &ix.Phases[i]); err != nil {
				return Index{}, fmt.Errorf("trace: read phase %d: %w", i, noEOF(err))
			}
		}
	}
	var total uint64
	if err := binary.Read(br, binary.LittleEndian, &total); err != nil {
		return Index{}, fmt.Errorf("trace: read record total: %w", noEOF(err))
	}
	if total != ix.Records() {
		return Index{}, fmt.Errorf("trace: index total %d does not match chunk sum %d", total, ix.Records())
	}
	return ix, nil
}

// chunkHeaderSize is the byte length of a chunk file's header: magic,
// version, ordinal (uint32 each) plus the base PC (uint64).
const chunkHeaderSize = 3*4 + 8

// ChunkReader decodes one chunk image. It implements Iterator and
// BatchIterator, returning io.EOF after exactly the record count the index
// promises; a chunk that ends early or holds extra records is reported as
// corrupt. The image comes from a ChunkSource — either a heap copy of the
// chunk file or an mmap of it — so decoding is a pure slice walk with no
// reader abstraction or syscalls on the record path. The reader owns the
// image's release callback and invokes it exactly once, from Close; on
// the mmap path that is the only point a mapping is torn down, so no
// decode can ever touch an unmapped page while the reader is open.
type ChunkReader struct {
	buf       []byte // chunk payload (header stripped)
	off       int
	lastPC    isa.Addr
	remaining uint64
	ordinal   int
	release   func() // returns the image to its source; nil after Close
}

// OpenChunk opens chunk i of the store described by ix at dir, validating
// the chunk header against the index. The chunk file is read into memory
// in full (the ReadFile source); use OpenChunkFrom to decode through a
// specific ChunkSource.
func OpenChunk(dir string, ix Index, i int) (*ChunkReader, error) {
	return OpenChunkFrom(readFileSource{dir}, ix, i)
}

// OpenChunkFrom opens chunk i of the store described by ix through src,
// validating the chunk header against the index.
func OpenChunkFrom(src ChunkSource, ix Index, i int) (*ChunkReader, error) {
	if i < 0 || i >= len(ix.Chunks) {
		return nil, fmt.Errorf("trace: chunk %d out of range [0,%d)", i, len(ix.Chunks))
	}
	data, release, err := src.ChunkData(i)
	if err != nil {
		return nil, err
	}
	c, err := newChunkReader(data, ix, i)
	if err != nil {
		if release != nil {
			release()
		}
		return nil, err
	}
	c.release = release
	return c, nil
}

// newChunkReader validates data as the image of chunk i and returns its
// reader.
func newChunkReader(data []byte, ix Index, i int) (*ChunkReader, error) {
	if len(data) < chunkHeaderSize {
		return nil, fmt.Errorf("trace: read chunk %d header: %w", i, io.ErrUnexpectedEOF)
	}
	m := binary.LittleEndian.Uint32(data[0:])
	v := binary.LittleEndian.Uint32(data[4:])
	ord := binary.LittleEndian.Uint32(data[8:])
	base := binary.LittleEndian.Uint64(data[12:])
	if m != chunkMagic {
		return nil, fmt.Errorf("trace: chunk %d: bad magic %#x", i, m)
	}
	if v != storeVersion {
		return nil, fmt.Errorf("trace: chunk %d: unsupported version %d", i, v)
	}
	if int(ord) != i {
		return nil, fmt.Errorf("trace: chunk %d: header claims ordinal %d", i, ord)
	}
	if isa.Addr(base) != ix.Chunks[i].BasePC {
		return nil, fmt.Errorf("trace: chunk %d: base PC %#x does not match index %#x",
			i, base, uint64(ix.Chunks[i].BasePC))
	}
	return &ChunkReader{
		buf:       data[chunkHeaderSize:],
		lastPC:    isa.Addr(base),
		remaining: ix.Chunks[i].Records,
		ordinal:   i,
	}, nil
}

// Next implements Iterator over the chunk's records.
func (c *ChunkReader) Next() (Record, error) {
	if c.remaining == 0 {
		// The index says the chunk is done; any trailing bytes mean the
		// chunk and index disagree.
		if c.off < len(c.buf) {
			return Record{}, fmt.Errorf("trace: chunk %d holds more records than the index", c.ordinal)
		}
		return Record{}, io.EOF
	}
	rec, off, err := decodeRecordBuf(c.buf, c.off, c.lastPC)
	if err != nil {
		if err == io.EOF {
			// Clean EOF with records still owed: the chunk was truncated
			// on a record boundary, which only the index can detect.
			return Record{}, fmt.Errorf("trace: chunk %d truncated (%d records missing): %w",
				c.ordinal, c.remaining, io.ErrUnexpectedEOF)
		}
		return Record{}, fmt.Errorf("trace: chunk %d: %w", c.ordinal, err)
	}
	c.off = off
	c.lastPC = rec.PC
	c.remaining--
	return rec, nil
}

// NextBatch implements BatchIterator over the chunk's records: the inner
// loop walks the in-memory chunk image with local state, so cost per
// record is the varint decode and nothing else.
func (c *ChunkReader) NextBatch(dst []Record) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if c.remaining == 0 {
		if c.off < len(c.buf) {
			return 0, fmt.Errorf("trace: chunk %d holds more records than the index", c.ordinal)
		}
		return 0, io.EOF
	}
	n := len(dst)
	if uint64(n) > c.remaining {
		n = int(c.remaining)
	}
	dst = dst[:n]
	// The hot loop runs entirely on locals (one write-back per batch, not
	// per record) and decodes with no calls at all: the one-byte-delta
	// case — the overwhelmingly common one, retire-order steps being
	// mostly +1 instruction — is a single branch, multi-byte varints spin
	// inline, and only malformed input takes the (cold) call that
	// reproduces the per-record error surface.
	buf, off, lastPC := c.buf, c.off, c.lastPC
	for i := range dst {
		if off+2 < len(buf) && buf[off] < 0x80 {
			v := uint64(buf[off])
			lastPC = isa.Addr(int64(lastPC) + (int64(v>>1) ^ -int64(v&1)))
			dst[i] = Record{PC: lastPC, TL: isa.TrapLevel(buf[off+1]), Flags: Flags(buf[off+2])}
			off += 3
			continue
		}
		var x uint64
		var shift uint
		j := 0
		ok := true
		for {
			if off+j >= len(buf) || j == binary.MaxVarintLen64 {
				ok = false
				break
			}
			bj := buf[off+j]
			if bj < 0x80 {
				if j == binary.MaxVarintLen64-1 && bj > 1 {
					ok = false
					break
				}
				x |= uint64(bj) << shift
				j++
				break
			}
			x |= uint64(bj&0x7f) << shift
			shift += 7
			j++
		}
		if !ok || off+j+1 >= len(buf) {
			// Cold path: re-decode at the failing offset for the exact
			// per-record diagnosis (truncation vs overflow).
			_, _, err := decodeRecordBuf(buf, off, lastPC)
			c.off, c.lastPC = off, lastPC
			c.remaining -= uint64(i)
			if err == io.EOF {
				err = fmt.Errorf("trace: chunk %d truncated (%d records missing): %w",
					c.ordinal, c.remaining, io.ErrUnexpectedEOF)
			} else {
				err = fmt.Errorf("trace: chunk %d: %w", c.ordinal, err)
			}
			return i, err
		}
		lastPC = isa.Addr(int64(lastPC) + (int64(x>>1) ^ -int64(x&1)))
		dst[i] = Record{PC: lastPC, TL: isa.TrapLevel(buf[off+j]), Flags: Flags(buf[off+j+1])}
		off += j + 2
	}
	c.off, c.lastPC = off, lastPC
	c.remaining -= uint64(n)
	return n, nil
}

// Records reports how many records the chunk can still supply.
func (c *ChunkReader) Records() uint64 { return c.remaining }

// Close releases the chunk image back to its source — on the mmap path
// this unmaps the pages. The buffer is nilled first, so a use-after-
// Close decodes an empty chunk (clean error surface) rather than
// touching an unmapped page; calling Close again is a no-op. Close
// never fails.
func (c *ChunkReader) Close() error {
	c.buf = nil
	if c.release != nil {
		rel := c.release
		c.release = nil
		rel()
	}
	return nil
}

// raChunk is one completed readahead: the chunk reader (or the open
// failure) for a specific ordinal.
type raChunk struct {
	ordinal int
	c       *ChunkReader
	err     error
}

// StoreReader streams a whole store in record order, holding at most two
// chunk images at a time (the one being decoded plus one readahead) —
// peak memory is bounded by the chunk size, not the trace length. It
// implements Iterator and BatchIterator.
//
// On the ReadFile path, while chunk N is being decoded a readahead
// goroutine loads chunk N+1 from disk, so file I/O overlaps decode
// instead of serializing with it. The readahead channel is buffered
// (capacity 1) and the goroutine's only action is a send into it, so an
// abandoned readahead — Seek away, Close, or an error path — can never
// leak the goroutine; the chunk image is simply dropped for the
// collector. On the mmap path the readahead goroutine never starts:
// the kernel prefetches mapped pages (helped by madvise(SEQUENTIAL)),
// and an abandoned readahead would otherwise strand a mapping no one
// ever unmaps — readaheads are owned by nobody until consumed, which
// only GC-managed images tolerate.
type StoreReader struct {
	dir      string
	ix       Index
	src      ChunkSource
	next     int // next chunk ordinal to open
	cur      *ChunkReader
	consumed uint64       // records handed out (or skipped past) so far
	ra       chan raChunk // pending readahead, nil when none in flight
}

// OpenStore opens the store directory at dir, positioned at record 0.
// Chunks are decoded from mapped pages when the platform and filesystem
// support it, falling back to per-chunk heap reads otherwise
// (ChunkSourceAuto); use OpenStoreMode to pin a path.
func OpenStore(dir string) (*StoreReader, error) {
	return OpenStoreMode(dir, ChunkSourceAuto)
}

// OpenStoreMode opens the store directory at dir with an explicit chunk
// source selection. ChunkSourceMmap fails where mapping is unavailable;
// ChunkSourceAuto (what OpenStore uses) falls back to ReadFile.
func OpenStoreMode(dir string, mode ChunkSourceMode) (*StoreReader, error) {
	ix, err := ReadIndex(dir)
	if err != nil {
		return nil, err
	}
	src, err := newChunkSource(dir, ix, mode)
	if err != nil {
		return nil, err
	}
	return &StoreReader{dir: dir, ix: ix, src: src}, nil
}

// ChunkSourceKind reports which chunk source the store opened with:
// "mmap" or "readfile". Benchmark artifacts record it so numbers are
// comparable across machines.
func (r *StoreReader) ChunkSourceKind() string { return r.src.Kind() }

// Index returns the store's index.
func (r *StoreReader) Index() Index { return r.ix }

// Header returns the store's trace header with the record count filled in.
func (r *StoreReader) Header() Header { return r.ix.Header() }

// Workload returns the workload name stored in the index.
func (r *StoreReader) Workload() string { return r.ix.Workload }

// startReadahead kicks off a background load of the next chunk ordinal if
// one exists and none is already in flight. Readahead runs only on the
// ReadFile path: mapped chunks are prefetched by the kernel, and a
// readahead mapping abandoned by Seek/Close would never be unmapped.
func (r *StoreReader) startReadahead() {
	if r.ra != nil || r.next >= len(r.ix.Chunks) || r.src.Kind() != "readfile" {
		return
	}
	ch := make(chan raChunk, 1)
	src, ix, ord := r.src, r.ix, r.next
	go func() {
		c, err := OpenChunkFrom(src, ix, ord)
		ch <- raChunk{ordinal: ord, c: c, err: err}
	}()
	r.ra = ch
}

// openNextChunk makes chunk r.next current, consuming a matching readahead
// when one is pending (falling back to a direct open when the readahead is
// stale or failed — a failed readahead is retried here so transient errors
// are reported from the consuming call, not a background goroutine), and
// starts the readahead for the chunk after it.
func (r *StoreReader) openNextChunk() error {
	ord := r.next
	var c *ChunkReader
	if r.ra != nil {
		ra := <-r.ra
		r.ra = nil
		if ra.ordinal == ord && ra.err == nil {
			c = ra.c
		} else if ra.c != nil {
			// A stale readahead's image goes back to its source
			// immediately instead of waiting on the collector.
			ra.c.Close()
		}
	}
	if c == nil {
		var err error
		c, err = OpenChunkFrom(r.src, r.ix, ord)
		if err != nil {
			return err
		}
	}
	r.cur, r.next = c, ord+1
	r.startReadahead()
	return nil
}

// Next implements Iterator across chunk boundaries.
func (r *StoreReader) Next() (Record, error) {
	for {
		if r.cur == nil {
			if r.next >= len(r.ix.Chunks) {
				return Record{}, io.EOF
			}
			if err := r.openNextChunk(); err != nil {
				return Record{}, err
			}
		}
		rec, err := r.cur.Next()
		if err == nil {
			r.consumed++
			return rec, nil
		}
		if !errors.Is(err, io.EOF) {
			return Record{}, err
		}
		r.cur.Close()
		r.cur = nil
	}
}

// NextBatch implements BatchIterator across chunk boundaries: each chunk
// contributes a slice-decoded run, and chunk turnover usually finds the
// next image already in memory thanks to the readahead.
func (r *StoreReader) NextBatch(dst []Record) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	n := 0
	for n < len(dst) {
		if r.cur == nil {
			if r.next >= len(r.ix.Chunks) {
				if n > 0 {
					return n, nil
				}
				return 0, io.EOF
			}
			if err := r.openNextChunk(); err != nil {
				return n, err
			}
		}
		k, err := r.cur.NextBatch(dst[n:])
		n += k
		r.consumed += uint64(k)
		if err != nil {
			if errors.Is(err, io.EOF) {
				r.cur.Close()
				r.cur = nil
				continue
			}
			return n, err
		}
		// A short, error-free batch means the chunk drained: loop and
		// re-poll it, which yields io.EOF (advance to the next chunk) or
		// an index-mismatch error — the same sequence Next produces.
	}
	return n, nil
}

// Records reports how many records the reader can still supply (the index
// total minus everything consumed or sought past) — the Counted size hint
// Collect preallocates with.
func (r *StoreReader) Records() uint64 { return r.ix.Records() - r.consumed }

// Seek positions the reader at absolute record n (0-based): the index
// locates the owning chunk and only that chunk's prefix is decoded, so a
// window anywhere in the trace is reachable without replaying from the
// start. Seeking to the record total positions the reader at EOF.
func (r *StoreReader) Seek(n uint64) error {
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	// Abandon any in-flight readahead: it targeted the old position's
	// successor. The buffered channel lets its goroutine finish and exit
	// regardless; the loaded image is garbage once unreferenced.
	r.ra = nil
	var cum uint64
	for i, c := range r.ix.Chunks {
		if n < cum+c.Records {
			cr, err := OpenChunkFrom(r.src, r.ix, i)
			if err != nil {
				return err
			}
			for skip := n - cum; skip > 0; skip-- {
				if _, err := cr.Next(); err != nil {
					cr.Close()
					return err
				}
			}
			r.cur, r.next = cr, i+1
			r.consumed = n
			r.startReadahead()
			return nil
		}
		cum += c.Records
	}
	if n == cum {
		r.next = len(r.ix.Chunks)
		r.consumed = n
		return nil
	}
	return fmt.Errorf("trace: seek to record %d past end of store (%d records)", n, cum)
}

// ReadAll drains the remaining records into an in-memory Stream.
func (r *StoreReader) ReadAll() (Stream, error) {
	return collect(r, r.Records())
}

// Close releases any open chunk (on the mmap path, unmapping it) and
// abandons any in-flight readahead. The reader is pinned at end-of-
// stream: later calls see io.EOF rather than reopening chunks, so a
// use-after-Close can never race a released mapping.
func (r *StoreReader) Close() error {
	r.ra = nil
	r.consumed = r.ix.Records()
	r.next = len(r.ix.Chunks)
	if r.cur == nil {
		return nil
	}
	err := r.cur.Close()
	r.cur = nil
	return err
}

// BuildStore drains an iterator into a new store at dir and returns the
// record count written. It is the one-call path from any record source —
// a live executor, a version-1 file, another store — to sharded storage.
// phases, when given, are recorded in the index as the executor phase
// boundaries the source was generated with (see Index.Phases).
func BuildStore(dir, workload string, chunkRecords uint64, it Iterator, phases ...uint64) (uint64, error) {
	w, err := CreateStore(dir, workload, chunkRecords)
	if err != nil {
		return 0, err
	}
	w.SetPhases(phases...)
	n, err := CopyRecords(w, it)
	if err != nil {
		// Poison the writer before closing: a source that died mid-copy
		// must not leave behind a valid-looking short store.
		w.fail(err)
		w.Close()
		return n, err
	}
	return n, w.Close()
}
