package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/isa"
)

// Format version 2: a sharded on-disk trace store. A store is a directory
// holding an index file (trace.idx) plus fixed-record-count chunk files.
// Each chunk header carries the chunk's base PC, so delta decoding restarts
// per chunk and any chunk can be decoded without its predecessors — the
// unit of random access to a trace window, and the natural work unit for
// distributing a trace across machines. The index records the per-chunk
// record counts and base PCs, so the total record count is known up front
// (Header.Records) and truncated or overgrown chunks are detected instead
// of being read as a clean short stream.
const (
	chunkMagic   uint32 = 0x50494643 // "PIFC"
	storeVersion uint32 = 2

	// IndexName is the index file inside a store directory.
	IndexName = "trace.idx"

	// DefaultChunkRecords is the records-per-chunk used when a caller
	// passes 0: 1M records ≈ 3 MB per chunk at typical delta density.
	DefaultChunkRecords = 1 << 20
)

// ChunkFileName returns the file name of chunk i within a store.
func ChunkFileName(i int) string { return fmt.Sprintf("chunk-%06d.pifc", i) }

// ChunkInfo is one chunk's entry in the store index.
type ChunkInfo struct {
	// Records is the exact record count of the chunk. Every chunk holds
	// the store's target count except the final one, which may be short.
	Records uint64
	// BasePC is the PC of the chunk's first record; delta decoding within
	// the chunk restarts from it.
	BasePC isa.Addr
}

// Index is a store's metadata, persisted as trace.idx.
type Index struct {
	// Workload is the traced workload's name.
	Workload string
	// ChunkTarget is the records-per-chunk the store was written with.
	ChunkTarget uint64
	// Phases records the executor phase boundaries the trace was
	// collected with (e.g. {warmup, measure}), when the writer declared
	// them. The executor starts a fresh transaction at each phase, so a
	// replay is only byte-identical to a live run that uses the same
	// split — recording it makes a mismatched replay detectable instead
	// of silently divergent. Empty when the writer declared none.
	Phases []uint64
	// Chunks describes every chunk in order.
	Chunks []ChunkInfo
}

// Records returns the store's total record count.
func (ix Index) Records() uint64 {
	var n uint64
	for _, c := range ix.Chunks {
		n += c.Records
	}
	return n
}

// Header returns the trace header implied by the index, with the record
// count filled in (unlike version-1 single-file traces, a store knows its
// length without being read).
func (ix Index) Header() Header {
	return Header{Workload: ix.Workload, Records: ix.Records()}
}

// PhaseCompatible reports whether replaying warmup+measure records from
// this store reproduces a live run with that split byte-for-byte. A live
// run places an executor phase boundary (fresh transaction) exactly at
// warmup, so the recorded boundaries must include warmup (unless it is
// zero) and no recorded boundary may fall strictly inside the measured
// interval. Stores that recorded no phases cannot be validated and are
// accepted.
func (ix Index) PhaseCompatible(warmup, measure uint64) bool {
	if len(ix.Phases) == 0 {
		return true
	}
	okWarmup := warmup == 0
	var cum uint64
	for _, p := range ix.Phases {
		cum += p
		if cum == warmup {
			okWarmup = true
		}
		if cum > warmup && cum < warmup+measure {
			return false
		}
	}
	return okWarmup
}

// StoreWriter writes a sharded trace store. Records accumulate into chunk
// files of a fixed record count; Close seals the final chunk and writes
// the index. Like Writer, a StoreWriter is stuck after its first failure
// and Close re-reports it.
type StoreWriter struct {
	dir      string
	perChunk uint64
	ix       Index

	f       *os.File
	bw      *bufio.Writer
	lastPC  isa.Addr
	inChunk uint64
	n       uint64
	closed  bool
	err     error
}

// CreateStore creates (or truncates into) directory dir and returns a
// StoreWriter. chunkRecords is the per-chunk record count (0 selects
// DefaultChunkRecords).
func CreateStore(dir, workload string, chunkRecords uint64) (*StoreWriter, error) {
	if len(workload) > 255 {
		return nil, errors.New("trace: workload name too long")
	}
	if chunkRecords == 0 {
		chunkRecords = DefaultChunkRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: create store: %w", err)
	}
	// Truncate any previous store: drop the index first (so a crash
	// mid-cleanup leaves an invalid store, never a wrong one), then the
	// old chunks — a shorter rewrite must not leave stale higher-ordinal
	// chunk files beside the new index.
	if err := os.Remove(filepath.Join(dir, IndexName)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("trace: create store: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(dir, "chunk-*.pifc"))
	if err != nil {
		return nil, fmt.Errorf("trace: create store: %w", err)
	}
	for _, f := range stale {
		if err := os.Remove(f); err != nil {
			return nil, fmt.Errorf("trace: create store: %w", err)
		}
	}
	return &StoreWriter{
		dir:      dir,
		perChunk: chunkRecords,
		ix:       Index{Workload: workload, ChunkTarget: chunkRecords},
	}, nil
}

// Write appends one record, sealing and starting chunk files as needed.
func (w *StoreWriter) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: store write after Close")
	}
	if w.f == nil {
		if err := w.openChunk(r.PC); err != nil {
			w.err = err
			return w.err
		}
	}
	if err := encodeRecord(w.bw, w.lastPC, r); err != nil {
		w.err = fmt.Errorf("trace: write record: %w", err)
		return w.err
	}
	w.lastPC = r.PC
	w.inChunk++
	w.n++
	if w.inChunk == w.perChunk {
		if err := w.sealChunk(); err != nil {
			w.err = err
			return w.err
		}
	}
	return nil
}

// openChunk starts the next chunk file with basePC as its delta origin.
func (w *StoreWriter) openChunk(basePC isa.Addr) error {
	ordinal := len(w.ix.Chunks)
	f, err := os.Create(filepath.Join(w.dir, ChunkFileName(ordinal)))
	if err != nil {
		return fmt.Errorf("trace: create chunk: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	for _, v := range []uint32{chunkMagic, storeVersion, uint32(ordinal)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			f.Close()
			return fmt.Errorf("trace: write chunk header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(basePC)); err != nil {
		f.Close()
		return fmt.Errorf("trace: write chunk base PC: %w", err)
	}
	w.f, w.bw = f, bw
	w.lastPC = basePC
	w.inChunk = 0
	w.ix.Chunks = append(w.ix.Chunks, ChunkInfo{BasePC: basePC})
	return nil
}

// sealChunk flushes and closes the open chunk, recording its final count.
func (w *StoreWriter) sealChunk() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("trace: flush chunk: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("trace: close chunk: %w", err)
	}
	w.ix.Chunks[len(w.ix.Chunks)-1].Records = w.inChunk
	w.f, w.bw = nil, nil
	w.inChunk = 0
	return nil
}

// Count returns the number of records written so far.
func (w *StoreWriter) Count() uint64 { return w.n }

// SetPhases declares the executor phase boundaries the trace is being
// recorded with (see Index.Phases); call before Close.
func (w *StoreWriter) SetPhases(phases ...uint64) { w.ix.Phases = phases }

// fail poisons the writer with an external cause (e.g. the record source
// died mid-copy): Close will release resources but never write an index,
// so the partial store can't be mistaken for a complete one.
func (w *StoreWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Close seals the final chunk and writes the index. The index is written
// to a temporary file and renamed into place, so a directory containing
// trace.idx always describes a completely written store; after any
// failure Close only releases the open chunk handle and re-reports the
// error, leaving the partial store index-less (and thus invalid).
func (w *StoreWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		if w.f != nil {
			w.f.Close()
			w.f, w.bw = nil, nil
		}
		return w.err
	}
	if w.f != nil {
		if err := w.sealChunk(); err != nil {
			w.err = err
			return w.err
		}
	}
	if err := writeIndex(w.dir, w.ix); err != nil {
		w.err = err
	}
	return w.err
}

// writeIndex persists ix as dir/trace.idx via a temp-file rename.
func writeIndex(dir string, ix Index) error {
	tmp := filepath.Join(dir, IndexName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("trace: write index: %w", err)
	}
	bw := bufio.NewWriter(f)
	werr := func() error {
		for _, v := range []uint32{magic, storeVersion} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(byte(len(ix.Workload))); err != nil {
			return err
		}
		if _, err := bw.WriteString(ix.Workload); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, ix.ChunkTarget); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(ix.Chunks))); err != nil {
			return err
		}
		for _, c := range ix.Chunks {
			if err := binary.Write(bw, binary.LittleEndian, c.Records); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint64(c.BasePC)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(ix.Phases))); err != nil {
			return err
		}
		for _, p := range ix.Phases {
			if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
				return err
			}
		}
		// Trailing total record count: redundant with the per-chunk
		// counts, kept as a cheap integrity cross-check on read.
		return binary.Write(bw, binary.LittleEndian, ix.Records())
	}()
	if werr == nil {
		werr = bw.Flush()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: write index: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(dir, IndexName)); err != nil {
		return fmt.Errorf("trace: write index: %w", err)
	}
	return nil
}

// ReadIndex reads and validates a store directory's index.
func ReadIndex(dir string) (Index, error) {
	f, err := os.Open(filepath.Join(dir, IndexName))
	if err != nil {
		return Index{}, fmt.Errorf("trace: open index: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var m, v uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return Index{}, fmt.Errorf("trace: read index magic: %w", noEOF(err))
	}
	if m != magic {
		return Index{}, fmt.Errorf("trace: bad index magic %#x", m)
	}
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return Index{}, fmt.Errorf("trace: read index version: %w", noEOF(err))
	}
	if v != storeVersion {
		return Index{}, fmt.Errorf("trace: unsupported store version %d", v)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return Index{}, fmt.Errorf("trace: read index name length: %w", noEOF(err))
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return Index{}, fmt.Errorf("trace: read index name: %w", noEOF(err))
	}
	ix := Index{Workload: string(name)}
	if err := binary.Read(br, binary.LittleEndian, &ix.ChunkTarget); err != nil {
		return Index{}, fmt.Errorf("trace: read chunk target: %w", noEOF(err))
	}
	var numChunks uint32
	if err := binary.Read(br, binary.LittleEndian, &numChunks); err != nil {
		return Index{}, fmt.Errorf("trace: read chunk count: %w", noEOF(err))
	}
	// Sanity-cap the count against the file's actual size (16 bytes per
	// chunk entry) before allocating: a corrupt count field must be a
	// clean error, not a multi-gigabyte allocation.
	if fi, err := f.Stat(); err != nil {
		return Index{}, fmt.Errorf("trace: stat index: %w", err)
	} else if uint64(numChunks) > uint64(fi.Size())/16 {
		return Index{}, fmt.Errorf("trace: index claims %d chunks but is only %d bytes", numChunks, fi.Size())
	}
	ix.Chunks = make([]ChunkInfo, numChunks)
	for i := range ix.Chunks {
		if err := binary.Read(br, binary.LittleEndian, &ix.Chunks[i].Records); err != nil {
			return Index{}, fmt.Errorf("trace: read chunk %d records: %w", i, noEOF(err))
		}
		var base uint64
		if err := binary.Read(br, binary.LittleEndian, &base); err != nil {
			return Index{}, fmt.Errorf("trace: read chunk %d base PC: %w", i, noEOF(err))
		}
		ix.Chunks[i].BasePC = isa.Addr(base)
	}
	var numPhases uint32
	if err := binary.Read(br, binary.LittleEndian, &numPhases); err != nil {
		return Index{}, fmt.Errorf("trace: read phase count: %w", noEOF(err))
	}
	if fi, err := f.Stat(); err != nil {
		return Index{}, fmt.Errorf("trace: stat index: %w", err)
	} else if uint64(numPhases) > uint64(fi.Size())/8 {
		return Index{}, fmt.Errorf("trace: index claims %d phases but is only %d bytes", numPhases, fi.Size())
	}
	if numPhases > 0 {
		ix.Phases = make([]uint64, numPhases)
		for i := range ix.Phases {
			if err := binary.Read(br, binary.LittleEndian, &ix.Phases[i]); err != nil {
				return Index{}, fmt.Errorf("trace: read phase %d: %w", i, noEOF(err))
			}
		}
	}
	var total uint64
	if err := binary.Read(br, binary.LittleEndian, &total); err != nil {
		return Index{}, fmt.Errorf("trace: read record total: %w", noEOF(err))
	}
	if total != ix.Records() {
		return Index{}, fmt.Errorf("trace: index total %d does not match chunk sum %d", total, ix.Records())
	}
	return ix, nil
}

// ChunkReader decodes one chunk file. It implements Iterator, returning
// io.EOF after exactly the record count the index promises; a chunk that
// ends early or holds extra records is reported as corrupt.
type ChunkReader struct {
	f         *os.File
	br        *bufio.Reader
	lastPC    isa.Addr
	remaining uint64
	ordinal   int
}

// OpenChunk opens chunk i of the store described by ix at dir, validating
// the chunk header against the index.
func OpenChunk(dir string, ix Index, i int) (*ChunkReader, error) {
	if i < 0 || i >= len(ix.Chunks) {
		return nil, fmt.Errorf("trace: chunk %d out of range [0,%d)", i, len(ix.Chunks))
	}
	f, err := os.Open(filepath.Join(dir, ChunkFileName(i)))
	if err != nil {
		return nil, fmt.Errorf("trace: open chunk: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var m, v, ord uint32
	var base uint64
	for _, p := range []any{&m, &v, &ord, &base} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			f.Close()
			return nil, fmt.Errorf("trace: read chunk %d header: %w", i, noEOF(err))
		}
	}
	if m != chunkMagic {
		f.Close()
		return nil, fmt.Errorf("trace: chunk %d: bad magic %#x", i, m)
	}
	if v != storeVersion {
		f.Close()
		return nil, fmt.Errorf("trace: chunk %d: unsupported version %d", i, v)
	}
	if int(ord) != i {
		f.Close()
		return nil, fmt.Errorf("trace: chunk %d: header claims ordinal %d", i, ord)
	}
	if isa.Addr(base) != ix.Chunks[i].BasePC {
		f.Close()
		return nil, fmt.Errorf("trace: chunk %d: base PC %#x does not match index %#x",
			i, base, uint64(ix.Chunks[i].BasePC))
	}
	return &ChunkReader{
		f:         f,
		br:        br,
		lastPC:    isa.Addr(base),
		remaining: ix.Chunks[i].Records,
		ordinal:   i,
	}, nil
}

// Next implements Iterator over the chunk's records.
func (c *ChunkReader) Next() (Record, error) {
	if c.remaining == 0 {
		// The index says the chunk is done; any trailing bytes mean the
		// chunk and index disagree.
		if _, err := c.br.ReadByte(); err == nil {
			return Record{}, fmt.Errorf("trace: chunk %d holds more records than the index", c.ordinal)
		} else if !errors.Is(err, io.EOF) {
			return Record{}, fmt.Errorf("trace: chunk %d: %w", c.ordinal, err)
		}
		return Record{}, io.EOF
	}
	rec, err := decodeRecord(c.br, c.lastPC)
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Clean EOF with records still owed: the chunk was truncated
			// on a record boundary, which only the index can detect.
			return Record{}, fmt.Errorf("trace: chunk %d truncated (%d records missing): %w",
				c.ordinal, c.remaining, io.ErrUnexpectedEOF)
		}
		return Record{}, fmt.Errorf("trace: chunk %d: %w", c.ordinal, err)
	}
	c.lastPC = rec.PC
	c.remaining--
	return rec, nil
}

// Close releases the chunk's file handle.
func (c *ChunkReader) Close() error { return c.f.Close() }

// StoreReader streams a whole store in record order, opening one chunk at
// a time — peak memory is bounded by the chunk buffer, not the trace
// length. It implements Iterator.
type StoreReader struct {
	dir  string
	ix   Index
	next int // next chunk ordinal to open
	cur  *ChunkReader
}

// OpenStore opens the store directory at dir, positioned at record 0.
func OpenStore(dir string) (*StoreReader, error) {
	ix, err := ReadIndex(dir)
	if err != nil {
		return nil, err
	}
	return &StoreReader{dir: dir, ix: ix}, nil
}

// Index returns the store's index.
func (r *StoreReader) Index() Index { return r.ix }

// Header returns the store's trace header with the record count filled in.
func (r *StoreReader) Header() Header { return r.ix.Header() }

// Workload returns the workload name stored in the index.
func (r *StoreReader) Workload() string { return r.ix.Workload }

// Next implements Iterator across chunk boundaries.
func (r *StoreReader) Next() (Record, error) {
	for {
		if r.cur == nil {
			if r.next >= len(r.ix.Chunks) {
				return Record{}, io.EOF
			}
			c, err := OpenChunk(r.dir, r.ix, r.next)
			if err != nil {
				return Record{}, err
			}
			r.cur, r.next = c, r.next+1
		}
		rec, err := r.cur.Next()
		if err == nil {
			return rec, nil
		}
		if !errors.Is(err, io.EOF) {
			return Record{}, err
		}
		if cerr := r.cur.Close(); cerr != nil {
			r.cur = nil
			return Record{}, fmt.Errorf("trace: close chunk: %w", cerr)
		}
		r.cur = nil
	}
}

// Seek positions the reader at absolute record n (0-based): the index
// locates the owning chunk and only that chunk's prefix is decoded, so a
// window anywhere in the trace is reachable without replaying from the
// start. Seeking to the record total positions the reader at EOF.
func (r *StoreReader) Seek(n uint64) error {
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	var cum uint64
	for i, c := range r.ix.Chunks {
		if n < cum+c.Records {
			cr, err := OpenChunk(r.dir, r.ix, i)
			if err != nil {
				return err
			}
			for skip := n - cum; skip > 0; skip-- {
				if _, err := cr.Next(); err != nil {
					cr.Close()
					return err
				}
			}
			r.cur, r.next = cr, i+1
			return nil
		}
		cum += c.Records
	}
	if n == cum {
		r.next = len(r.ix.Chunks)
		return nil
	}
	return fmt.Errorf("trace: seek to record %d past end of store (%d records)", n, cum)
}

// ReadAll drains the remaining records into an in-memory Stream.
func (r *StoreReader) ReadAll() (Stream, error) {
	return collect(r, r.ix.Records())
}

// Close releases any open chunk. The reader must not be used afterwards.
func (r *StoreReader) Close() error {
	if r.cur == nil {
		return nil
	}
	err := r.cur.Close()
	r.cur = nil
	return err
}

// BuildStore drains an iterator into a new store at dir and returns the
// record count written. It is the one-call path from any record source —
// a live executor, a version-1 file, another store — to sharded storage.
// phases, when given, are recorded in the index as the executor phase
// boundaries the source was generated with (see Index.Phases).
func BuildStore(dir, workload string, chunkRecords uint64, it Iterator, phases ...uint64) (uint64, error) {
	w, err := CreateStore(dir, workload, chunkRecords)
	if err != nil {
		return 0, err
	}
	w.SetPhases(phases...)
	n, err := CopyRecords(w, it)
	if err != nil {
		// Poison the writer before closing: a source that died mid-copy
		// must not leave behind a valid-looking short store.
		w.fail(err)
		w.Close()
		return n, err
	}
	return n, w.Close()
}
