//go:build linux

package trace

import "syscall"

// madviseSequential hints the kernel that the mapping will be read
// front-to-back, so readahead runs ahead of the decoder aggressively —
// the mmap path's replacement for the StoreReader readahead goroutine.
// Advice is best-effort; a kernel that refuses it costs nothing.
func madviseSequential(b []byte) {
	if len(b) > 0 {
		syscall.Madvise(b, syscall.MADV_SEQUENTIAL)
	}
}
