package trace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMmapStoreParity asserts the mmap and ReadFile chunk sources decode
// identical streams, and that kind reporting matches the requested mode.
func TestMmapStoreParity(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	const perChunk = 64
	s := synthStream(21, 3*perChunk+7)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)

	for _, mode := range []ChunkSourceMode{ChunkSourceMmap, ChunkSourceReadFile} {
		r, err := OpenStoreMode(dir, mode)
		if err != nil {
			t.Fatalf("OpenStoreMode(%d): %v", mode, err)
		}
		wantKind := "mmap"
		if mode == ChunkSourceReadFile {
			wantKind = "readfile"
		}
		if got := r.ChunkSourceKind(); got != wantKind {
			t.Errorf("mode %d: ChunkSourceKind = %q, want %q", mode, got, wantKind)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("mode %d: ReadAll: %v", mode, err)
		}
		if len(got) != len(s) {
			t.Fatalf("mode %d: len = %d, want %d", mode, len(got), len(s))
		}
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("mode %d: record %d = %+v, want %+v", mode, i, got[i], s[i])
			}
		}
		if err := r.Close(); err != nil {
			t.Errorf("mode %d: Close: %v", mode, err)
		}
	}
}

// TestMmapSeekCloseMidDecode exercises the lifetime rules: seeking away
// mid-chunk unmaps the old chunk and keeps decoding correctly, and a
// reader used after Close reports clean errors instead of touching an
// unmapped page. Run under -race in CI.
func TestMmapSeekCloseMidDecode(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	const perChunk = 32
	s := synthStream(22, 4*perChunk)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)

	r, err := OpenStoreMode(dir, ChunkSourceMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]Record, 10)
	if _, err := r.NextBatch(buf); err != nil {
		t.Fatalf("NextBatch: %v", err)
	}
	// Seek mid-decode: the current chunk's mapping is released, yet the
	// stream continues exactly at the new position.
	const pos = 2*perChunk + 5
	if err := r.Seek(pos); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next after Seek: %v", err)
	}
	if rec != s[pos] {
		t.Fatalf("record after Seek = %+v, want %+v", rec, s[pos])
	}
	// Close mid-decode, then keep calling: every entry point must fail
	// or EOF cleanly, never fault on unmapped pages.
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("Next after Close succeeded")
	}
	if _, err := r.NextBatch(buf); err == nil {
		t.Error("NextBatch after Close succeeded")
	}
}

// TestMmapChunkUseAfterClose asserts a mapped ChunkReader tolerates use
// (and repeated Close) after its mapping is released.
func TestMmapChunkUseAfterClose(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	const perChunk = 32
	s := synthStream(23, perChunk)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)
	ix, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenChunkFrom(mmapSource{dir}, ix, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatalf("Next: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Next(); err == nil {
		t.Error("Next after Close succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMmapTruncatedChunkParity asserts the mmap path surfaces the same
// corruption diagnostics as the ReadFile path for truncated and
// trailing-garbage chunk files.
func TestMmapTruncatedChunkParity(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	const perChunk = 64
	s := synthStream(24, 2*perChunk)
	base := t.TempDir()

	damage := []struct {
		name string
		cut  func(size int64) int64
	}{
		{"short-header", func(int64) int64 { return chunkHeaderSize - 4 }},
		{"mid-record", func(size int64) int64 { return chunkHeaderSize + (size-chunkHeaderSize)/2 }},
	}
	for _, d := range damage {
		dir := filepath.Join(base, d.name)
		writeStore(t, dir, "wl", perChunk, s)
		path := filepath.Join(dir, ChunkFileName(1))
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, d.cut(fi.Size())); err != nil {
			t.Fatal(err)
		}
		errs := make(map[string]string)
		for _, mode := range []ChunkSourceMode{ChunkSourceMmap, ChunkSourceReadFile} {
			r, err := OpenStoreMode(dir, mode)
			if err != nil {
				t.Fatalf("%s mode %d: OpenStoreMode: %v", d.name, mode, err)
			}
			_, err = r.ReadAll()
			if err == nil {
				t.Fatalf("%s mode %d: ReadAll succeeded on damaged store", d.name, mode)
			}
			errs[fmt.Sprint(mode)] = err.Error()
			r.Close()
		}
		if a, b := errs["1"], errs["2"]; a != b {
			t.Errorf("%s: error mismatch\n  mmap:     %s\n  readfile: %s", d.name, a, b)
		}
	}
}

// TestMmapForcedFallback denies the mmap syscall via the test hook:
// auto mode must fall back to ReadFile and still replay, explicit mmap
// mode must refuse, and a post-probe per-chunk failure must degrade to
// a heap read without corrupting the stream.
func TestMmapForcedFallback(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	const perChunk = 32
	s := synthStream(25, 2*perChunk+3)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)

	real := mmapChunk
	defer func() { mmapChunk = real }()

	// Total denial: auto falls back, explicit mmap refuses.
	mmapChunk = func(f *os.File, size int) ([]byte, func(), error) {
		return nil, nil, errors.New("mmap denied")
	}
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore under denial: %v", err)
	}
	if got := r.ChunkSourceKind(); got != "readfile" {
		t.Errorf("ChunkSourceKind under denial = %q, want readfile", got)
	}
	if _, err := r.ReadAll(); err != nil {
		t.Errorf("ReadAll on fallback: %v", err)
	}
	r.Close()
	if _, err := OpenStoreMode(dir, ChunkSourceMmap); err == nil {
		t.Error("OpenStoreMode(mmap) succeeded under denial")
	} else if !strings.Contains(err.Error(), "mmap") {
		t.Errorf("OpenStoreMode(mmap) error = %v, want mmap mention", err)
	}

	// Probe passes, later maps fail: the per-chunk degrade path must
	// deliver the identical stream.
	calls := 0
	mmapChunk = func(f *os.File, size int) ([]byte, func(), error) {
		calls++
		if calls > 1 {
			return nil, nil, errors.New("mmap denied after probe")
		}
		return real(f, size)
	}
	r, err = OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if got := r.ChunkSourceKind(); got != "mmap" {
		t.Errorf("ChunkSourceKind = %q, want mmap", got)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll with degraded chunks: %v", err)
	}
	if len(got) != len(s) {
		t.Fatalf("len = %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], s[i])
		}
	}
	r.Close()
}
