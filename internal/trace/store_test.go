package trace

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

// synthStream builds a deterministic pseudo-random stream of n records.
func synthStream(seed int64, n int) Stream {
	rng := rand.New(rand.NewSource(seed))
	s := make(Stream, n)
	pc := isa.Addr(0x40_0000)
	for i := range s {
		switch rng.Intn(4) {
		case 0:
			pc = isa.Addr(rng.Intn(1 << 28)).AlignToInstr()
		default:
			pc = pc.Plus(1)
		}
		s[i] = Record{PC: pc, TL: isa.TrapLevel(rng.Intn(2)), Flags: Flags(rng.Intn(64))}
	}
	return s
}

func writeStore(t *testing.T, dir string, name string, perChunk uint64, s Stream) {
	t.Helper()
	w, err := CreateStore(dir, name, perChunk)
	if err != nil {
		t.Fatalf("CreateStore: %v", err)
	}
	for _, r := range s {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if w.Count() != uint64(len(s)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(s))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestStoreRoundTrip asserts ReadAll(Write(s)) == s across shard
// boundaries: record counts straddling exact chunk multiples all
// reconstruct the identical stream.
func TestStoreRoundTrip(t *testing.T) {
	const perChunk = 64
	for _, n := range []int{0, 1, perChunk - 1, perChunk, perChunk + 1, 3*perChunk - 1, 3 * perChunk, 3*perChunk + 2} {
		s := synthStream(int64(n), n)
		dir := filepath.Join(t.TempDir(), "store")
		writeStore(t, dir, "wl", perChunk, s)

		r, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("n=%d: OpenStore: %v", n, err)
		}
		if r.Workload() != "wl" {
			t.Errorf("n=%d: Workload = %q", n, r.Workload())
		}
		if got := r.Header().Records; got != uint64(n) {
			t.Errorf("n=%d: Header.Records = %d", n, got)
		}
		wantChunks := (n + perChunk - 1) / perChunk
		if got := len(r.Index().Chunks); got != wantChunks {
			t.Errorf("n=%d: chunks = %d, want %d", n, got, wantChunks)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("n=%d: ReadAll: %v", n, err)
		}
		if len(got) != len(s) {
			t.Fatalf("n=%d: len = %d", n, len(got))
		}
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("n=%d: record %d = %+v, want %+v", n, i, got[i], s[i])
			}
		}
		// Fully drained: the next pull is a clean EOF.
		if _, err := r.Next(); !errors.Is(err, io.EOF) {
			t.Errorf("n=%d: Next after drain = %v, want EOF", n, err)
		}
		if err := r.Close(); err != nil {
			t.Errorf("n=%d: Close: %v", n, err)
		}
	}
}

// TestStoreChunkBasePC asserts each chunk decodes standalone from its own
// base PC — the property that makes chunks random-access windows.
func TestStoreChunkBasePC(t *testing.T) {
	const perChunk = 32
	s := synthStream(7, 5*perChunk+3)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)

	ix, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	var off int
	for i, info := range ix.Chunks {
		if info.BasePC != s[off].PC {
			t.Errorf("chunk %d BasePC = %v, want %v", i, info.BasePC, s[off].PC)
		}
		c, err := OpenChunk(dir, ix, i)
		if err != nil {
			t.Fatalf("OpenChunk(%d): %v", i, err)
		}
		for k := 0; k < int(info.Records); k++ {
			rec, err := c.Next()
			if err != nil {
				t.Fatalf("chunk %d record %d: %v", i, k, err)
			}
			if rec != s[off+k] {
				t.Fatalf("chunk %d record %d = %+v, want %+v", i, k, rec, s[off+k])
			}
		}
		if _, err := c.Next(); !errors.Is(err, io.EOF) {
			t.Errorf("chunk %d: want EOF at end, got %v", i, err)
		}
		c.Close()
		off += int(info.Records)
	}
}

func TestStoreSeek(t *testing.T) {
	const perChunk = 16
	s := synthStream(11, 4*perChunk+5)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)

	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, pos := range []uint64{0, 1, perChunk - 1, perChunk, 2*perChunk + 7, uint64(len(s)) - 1} {
		if err := r.Seek(pos); err != nil {
			t.Fatalf("Seek(%d): %v", pos, err)
		}
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next after Seek(%d): %v", pos, err)
		}
		if rec != s[pos] {
			t.Errorf("Seek(%d) = %+v, want %+v", pos, rec, s[pos])
		}
	}
	if err := r.Seek(uint64(len(s))); err != nil {
		t.Fatalf("Seek(end): %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Next at end = %v, want EOF", err)
	}
	if err := r.Seek(uint64(len(s)) + 1); err == nil {
		t.Error("Seek past end should fail")
	}
}

// TestStoreTruncatedChunk asserts a chunk shortened on disk is reported
// as io.ErrUnexpectedEOF — even when the cut lands exactly on a record
// boundary, which only the index's record count can catch.
func TestStoreTruncatedChunk(t *testing.T) {
	const perChunk = 16
	s := synthStream(3, 2*perChunk)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)

	chunk1 := filepath.Join(dir, ChunkFileName(1))
	data, err := os.ReadFile(chunk1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(chunk1, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("cut=%d: OpenStore: %v", cut, err)
		}
		_, err = r.ReadAll()
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("cut=%d: truncated chunk read cleanly (err=%v)", cut, err)
		}
		r.Close()
	}

	// Truncate exactly at a record boundary: decode every record of the
	// full chunk 1, find a boundary offset, and cut there.
	ix, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(chunk1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Re-encode the first perChunk/2 records of chunk 1 to find the byte
	// boundary: header is 3*4+8 bytes, then records.
	c, err := OpenChunk(dir, ix, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	boundary := chunkByteBoundary(t, data, perChunk/2)
	if err := os.WriteFile(chunk1, data[:boundary], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadAll(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("record-aligned truncation: got %v, want ErrUnexpectedEOF", err)
	}
}

// chunkByteBoundary returns the byte offset just after the n-th record of
// a chunk file image (header + delta-encoded records).
func chunkByteBoundary(t *testing.T, data []byte, n int) int {
	t.Helper()
	off := 3*4 + 8 // magic, version, ordinal, basePC
	for i := 0; i < n; i++ {
		// varint delta
		for off < len(data) && data[off]&0x80 != 0 {
			off++
		}
		off++    // final varint byte
		off += 2 // TL + flags
	}
	if off > len(data) {
		t.Fatalf("boundary %d past chunk end %d", off, len(data))
	}
	return off
}

// TestStoreExtraRecords asserts a chunk holding more records than the
// index claims is rejected rather than silently over-read.
func TestStoreExtraRecords(t *testing.T) {
	const perChunk = 8
	s := synthStream(5, perChunk) // exactly one full chunk
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)

	chunk0 := filepath.Join(dir, ChunkFileName(0))
	data, err := os.ReadFile(chunk0)
	if err != nil {
		t.Fatal(err)
	}
	// Append a valid-looking record (delta 0 → 3 bytes).
	if err := os.WriteFile(chunk0, append(data, 0, 0, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadAll(); err == nil {
		t.Error("chunk with extra records should fail")
	}
}

func TestStoreMissingChunk(t *testing.T) {
	const perChunk = 8
	s := synthStream(9, 3*perChunk)
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", perChunk, s)
	if err := os.Remove(filepath.Join(dir, ChunkFileName(1))); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadAll(); err == nil {
		t.Error("store with a missing chunk should fail")
	}
}

func TestStoreIndexTamper(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", 8, synthStream(1, 20))
	idx := filepath.Join(dir, IndexName)
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte of the trailing total so it disagrees with the chunk sum.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(idx, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(dir); err == nil {
		t.Error("index with inconsistent total should fail")
	}
	// Truncated index.
	if err := os.WriteFile(idx, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(dir); err == nil {
		t.Error("truncated index should fail")
	}
	// A corrupt chunk count must be a clean error, not a huge allocation:
	// the count field sits after magic, version, name length, name, and
	// the chunk target.
	data[len(data)-1] ^= 0xff // restore the total
	off := 4 + 4 + 1 + len("wl") + 8
	for i := 0; i < 4; i++ {
		data[off+i] = 0xff
	}
	if err := os.WriteFile(idx, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(dir); err == nil {
		t.Error("index with an absurd chunk count should fail")
	}
}

func TestStoreWriterStickyError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateStore(dir, "wl", 4)
	if err != nil {
		t.Fatal(err)
	}
	// Pull the directory out from under the writer: the first chunk
	// creation fails, and the failure must stick through Close.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{PC: 0x40}); err == nil {
		t.Fatal("Write into a removed store directory should fail")
	}
	if err := w.Close(); err == nil {
		t.Error("Close after a failed Write should report the failure")
	}
	if err := w.Close(); err == nil {
		t.Error("repeated Close should keep reporting the failure")
	}
}

func TestStoreWriteAfterClose(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateStore(dir, "wl", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close of empty store: %v", err)
	}
	if err := w.Write(Record{}); err == nil {
		t.Error("Write after Close should fail")
	}
	// A caller bug after a successful Close does not poison the store:
	// the directory on disk is complete and valid.
	if err := w.Close(); err != nil {
		t.Errorf("re-Close of a successfully closed store = %v", err)
	}
	if _, err := ReadIndex(dir); err != nil {
		t.Errorf("ReadIndex: %v", err)
	}
}

// failingIter yields n records then an error (a source dying mid-copy).
type failingIter struct {
	left int
}

func (it *failingIter) Next() (Record, error) {
	if it.left == 0 {
		return Record{}, errors.New("source died")
	}
	it.left--
	return Record{PC: 0x1000}, nil
}

// TestBuildStoreSourceFailureWritesNoIndex asserts a failed build never
// leaves a valid-looking store behind: trace.idx implies fully written,
// so a retrying caller can't silently replay a short trace.
func TestBuildStoreSourceFailureWritesNoIndex(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if _, err := BuildStore(dir, "wl", 4, &failingIter{left: 10}); err == nil {
		t.Fatal("BuildStore over a dying source should fail")
	}
	if _, err := os.Stat(filepath.Join(dir, IndexName)); !os.IsNotExist(err) {
		t.Errorf("failed build left an index behind (stat err=%v)", err)
	}
	if _, err := OpenStore(dir); err == nil {
		t.Error("partial store should not open")
	}
}

// TestCreateStoreTruncatesPrevious asserts rewriting a store into the
// same directory removes the previous index and chunks, so a shorter
// rewrite leaves no stale higher-ordinal chunk files behind.
func TestCreateStoreTruncatesPrevious(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", 8, synthStream(1, 40)) // 5 chunks
	writeStore(t, dir, "wl", 8, synthStream(2, 10)) // 2 chunks

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var chunks int
	for _, e := range entries {
		if e.Name() != IndexName {
			chunks++
		}
	}
	if chunks != 2 {
		t.Errorf("rewrite left %d chunk files, want 2", chunks)
	}
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil || len(got) != 10 {
		t.Errorf("rewritten store: %d records, err=%v", len(got), err)
	}
}

// TestStorePhases asserts the recorded phase split round-trips through
// the index and that PhaseCompatible accepts exactly the replay splits
// that reproduce a live run.
func TestStorePhases(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s := synthStream(13, 300)
	w, err := CreateStore(dir, "wl", 64)
	if err != nil {
		t.Fatal(err)
	}
	w.SetPhases(200, 100)
	for _, r := range s {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Phases) != 2 || ix.Phases[0] != 200 || ix.Phases[1] != 100 {
		t.Fatalf("Phases = %v, want [200 100]", ix.Phases)
	}
	cases := []struct {
		warmup, measure uint64
		want            bool
	}{
		{200, 100, true},  // exact recorded split
		{200, 50, true},   // shorter measure: prefix of the same phase
		{0, 100, true},    // no warmup, inside phase 0
		{0, 200, true},    // no warmup, up to the boundary
		{0, 250, false},   // measure crosses the recorded boundary
		{100, 100, false}, // warmup is not a recorded boundary
		{300, 0, true},    // boundary at end of both phases
	}
	for _, c := range cases {
		if got := ix.PhaseCompatible(c.warmup, c.measure); got != c.want {
			t.Errorf("PhaseCompatible(%d, %d) = %v, want %v", c.warmup, c.measure, got, c.want)
		}
	}
	// A store without recorded phases cannot be validated: accepted.
	if ok := (Index{}).PhaseCompatible(123, 456); !ok {
		t.Error("phase-less index should be accepted")
	}
}

// TestStoreDefaultChunkRecords asserts chunkRecords 0 selects the default.
func TestStoreDefaultChunkRecords(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	writeStore(t, dir, "wl", 0, synthStream(2, 10))
	ix, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ix.ChunkTarget != DefaultChunkRecords {
		t.Errorf("ChunkTarget = %d, want %d", ix.ChunkTarget, DefaultChunkRecords)
	}
}

// benchStream builds a stream with the delta mix of a real retire-order
// instruction trace: overwhelmingly sequential (+1 instruction), with
// near control transfers (loops, calls within a module) and occasional
// far jumps — unlike synthStream's adversarial 25% far-jump mix, which
// tests correctness, this is what replay throughput should be measured
// on.
func benchStream(seed int64, n int) Stream {
	rng := rand.New(rand.NewSource(seed))
	s := make(Stream, n)
	pc := isa.Addr(0x40_0000)
	for i := range s {
		switch r := rng.Intn(100); {
		case r < 90: // sequential fetch
			pc = pc.Plus(1)
		case r < 98: // near transfer: loop back-edge or local call
			pc = pc.Plus(int(rng.Intn(4096)) - 2048)
		default: // far jump: cross-module call, trap entry
			pc = isa.Addr(rng.Intn(1 << 28)).AlignToInstr()
		}
		s[i] = Record{PC: pc, TL: isa.TrapLevel(rng.Intn(2)), Flags: Flags(rng.Intn(64))}
	}
	return s
}

// benchStore writes a store of n records for benchmarking and returns its
// directory, the stream, and the store's on-disk byte size (for MB/s).
func benchStore(b *testing.B, perChunk uint64, n int) (string, Stream, int64) {
	b.Helper()
	s := benchStream(42, n)
	dir := filepath.Join(b.TempDir(), "store")
	w, err := CreateStore(dir, "bench", perChunk)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range s {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	var bytes int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			b.Fatal(err)
		}
		bytes += info.Size()
	}
	return dir, s, bytes
}

// BenchmarkStoreReplay measures streaming store replay: the per-record
// Iterator path against the BatchIterator path on the same input. The
// batch path is the one the simulator uses; the bench pipeline
// (internal/bench, BENCH_replay.json) enforces its speedup and its
// ~0 allocs/record. With ReportAllocs, allocations stay proportional to
// the chunk count (one image per chunk), not the record count.
func BenchmarkStoreReplay(b *testing.B) {
	const perChunk = 1 << 14
	dir, s, storeBytes := benchStore(b, perChunk, 1<<17) // 8 chunks

	b.Run("PerRecord", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(storeBytes)
		for i := 0; i < b.N; i++ {
			r, err := OpenStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			var n uint64
			var it Iterator = r // per-record baseline pays the interface call
			for {
				_, err := it.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				n++
			}
			if n != uint64(len(s)) {
				b.Fatalf("replayed %d records, want %d", n, len(s))
			}
			r.Close()
		}
		b.ReportMetric(float64(len(s)*b.N)/b.Elapsed().Seconds(), "records/s")
	})

	b.Run("Batch", func(b *testing.B) {
		buf := make([]Record, 4096)
		b.ReportAllocs()
		b.SetBytes(storeBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := OpenStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			var n uint64
			var it BatchIterator = r
			for {
				k, err := it.NextBatch(buf)
				n += uint64(k)
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if n != uint64(len(s)) {
				b.Fatalf("replayed %d records, want %d", n, len(s))
			}
			r.Close()
		}
		b.ReportMetric(float64(len(s)*b.N)/b.Elapsed().Seconds(), "records/s")
	})
}

// BenchmarkStoreReadAll is the materializing baseline: allocations grow
// with the trace length (contrast with BenchmarkStoreReplay).
func BenchmarkStoreReadAll(b *testing.B) {
	const perChunk = 1 << 14
	s := synthStream(42, 1<<17)
	dir := filepath.Join(b.TempDir(), "store")
	w, err := CreateStore(dir, "bench", perChunk)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range s {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(s) {
			b.Fatalf("ReadAll: %v (%d records)", err, len(got))
		}
		r.Close()
	}
}
