//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package trace

import "os"

// mmapSupported reports whether this build can map chunk files at all;
// auto-mode source selection short-circuits to ReadFile when false.
const mmapSupported = false

// mmapChunk always fails on platforms without a usable mmap syscall;
// OpenStore's auto mode falls back to the ReadFile source.
var mmapChunk = func(f *os.File, size int) ([]byte, func(), error) {
	return nil, nil, errMmapUnsupported
}
