//go:build !linux

package trace

// madviseSequential is a no-op where the stdlib syscall package exposes
// no Madvise (everywhere but linux); the kernel's default mapped-page
// readahead still applies.
func madviseSequential(b []byte) {}
