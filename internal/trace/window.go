package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Window addresses a half-open record range [Off, Off+Len) of a trace
// store — the unit the evaluation harness sweeps over when a design point
// only needs a slice of a recorded trace (a measured interval at a given
// position) rather than the whole stream. Windows are resolved against a
// store's index (Index.CheckWindow), so an out-of-range window is a hard
// error before any record is decoded, never a silently short replay.
type Window struct {
	// Off is the absolute record offset of the window's first record.
	Off uint64
	// Len is the window's record count (must be positive).
	Len uint64
}

// End returns the record offset one past the window's last record.
func (w Window) End() uint64 { return w.Off + w.Len }

// String renders the window in the "off:len" form ParseWindow accepts.
func (w Window) String() string { return fmt.Sprintf("%d:%d", w.Off, w.Len) }

// ParseWindow parses a window spec of the form "off:len". Both fields
// accept an optional K or M suffix (multipliers of 1024, matching the
// harness's size flags): "8192:1M" is the 1Mi-record window starting at
// record 8192. Len must be positive.
func ParseWindow(s string) (Window, error) {
	offStr, lenStr, ok := strings.Cut(s, ":")
	if !ok {
		return Window{}, fmt.Errorf("trace: window %q is not off:len", s)
	}
	off, err := parseCount(offStr)
	if err != nil {
		return Window{}, fmt.Errorf("trace: window %q: bad offset: %w", s, err)
	}
	n, err := parseCount(lenStr)
	if err != nil {
		return Window{}, fmt.Errorf("trace: window %q: bad length: %w", s, err)
	}
	if n == 0 {
		return Window{}, fmt.Errorf("trace: window %q has zero length", s)
	}
	return Window{Off: off, Len: n}, nil
}

// parseCount parses a non-negative record count with an optional K/M
// suffix (1024 multiples).
func parseCount(s string) (uint64, error) {
	mult := uint64(1)
	u := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, strings.TrimSuffix(u, "K")
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, strings.TrimSuffix(u, "M")
	}
	n, err := strconv.ParseUint(u, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a record count", s)
	}
	return n * mult, nil
}

// CheckWindow validates w against the store the index describes: the
// window must be non-empty and lie entirely inside the recorded range.
func (ix Index) CheckWindow(w Window) error {
	if w.Len == 0 {
		return fmt.Errorf("trace: empty window %s", w)
	}
	if total := ix.Records(); w.End() > total || w.End() < w.Off {
		return fmt.Errorf("trace: window %s out of range (store holds %d records)", w, total)
	}
	return nil
}

// SliceReader replays exactly one window of a store: Seek positions the
// underlying StoreReader at the window's first record and Next returns
// io.EOF after precisely Window.Len records. Like StoreReader, peak
// memory is one chunk's buffer regardless of window length or position.
// It implements Iterator and BatchIterator.
type SliceReader struct {
	r         *StoreReader
	w         Window
	remaining uint64
}

// OpenSlice opens window w of the store at dir. The window is validated
// against the store index before any chunk is touched; a window reaching
// past the recorded range is an error, never a short iterator.
func OpenSlice(dir string, w Window) (*SliceReader, error) {
	r, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	if err := r.Index().CheckWindow(w); err != nil {
		r.Close()
		return nil, err
	}
	if err := r.Seek(w.Off); err != nil {
		r.Close()
		return nil, err
	}
	return &SliceReader{r: r, w: w, remaining: w.Len}, nil
}

// Index returns the underlying store's index.
func (s *SliceReader) Index() Index { return s.r.Index() }

// Workload returns the workload name stored in the index.
func (s *SliceReader) Workload() string { return s.r.Workload() }

// Window returns the slice's record window.
func (s *SliceReader) Window() Window { return s.w }

// Next implements Iterator over the window's records.
func (s *SliceReader) Next() (Record, error) {
	if s.remaining == 0 {
		return Record{}, io.EOF
	}
	rec, err := s.r.Next()
	if err != nil {
		// The window was index-validated, so the store running out early
		// means corruption; either way the error already says which chunk.
		return Record{}, fmt.Errorf("trace: slice %s: %w", s.w, err)
	}
	s.remaining--
	return rec, nil
}

// NextBatch implements BatchIterator over the window's records, capping
// each batch at the window's remaining budget and delegating to the store
// reader's batch path.
func (s *SliceReader) NextBatch(dst []Record) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if s.remaining == 0 {
		return 0, io.EOF
	}
	if uint64(len(dst)) > s.remaining {
		dst = dst[:s.remaining]
	}
	n := 0
	for n < len(dst) {
		k, err := s.r.NextBatch(dst[n:])
		n += k
		s.remaining -= uint64(k)
		if err != nil {
			// Window is index-validated, so any error here — even an early
			// io.EOF — is the store contradicting its index; per-record
			// iteration wraps it the same way.
			return n, fmt.Errorf("trace: slice %s: %w", s.w, err)
		}
	}
	return n, nil
}

// Records reports how many records the slice can still supply (the
// Counted size hint Collect preallocates with).
func (s *SliceReader) Records() uint64 { return s.remaining }

// Close releases the underlying store reader.
func (s *SliceReader) Close() error { return s.r.Close() }
