// Package prof wires the standard -cpuprofile/-memprofile flags into the
// command-line tools, so replay and experiment hot paths can be profiled
// with `go tool pprof` without ad-hoc instrumentation. One Flags value
// per binary: register, Start after flag parsing, defer Stop.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling flag values of one binary.
type Flags struct {
	cpu string
	mem string

	cpuFile *os.File
}

// Register installs -cpuprofile and -memprofile on fs (flag.CommandLine
// via flag.CommandLine, or a subcommand's private FlagSet).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.mem, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag parsing; pair with Stop.
func (f *Flags) Start() error {
	if f.cpu == "" {
		return nil
	}
	file, err := os.Create(f.cpu)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("prof: %v", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, if either
// was requested. Safe to call when profiling was never started; errors
// are reported to stderr (profiles are diagnostics — a failed write must
// not turn a successful run into a failed one).
func (f *Flags) Stop() {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
		f.cpuFile = nil
	}
	if f.mem != "" {
		file, err := os.Create(f.mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
			return
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(file); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
		if err := file.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
	}
}
