# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

.PHONY: all build test race bench bench-check fmt vet

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	gofmt -w .

vet:
	go vet ./...

# bench regenerates the committed replay-performance artifact. Run it
# (and commit the result) whenever the benchmark suite, its fixture, or
# the replay hot path changes shape.
bench:
	go run ./cmd/benchreplay -out BENCH_replay.json

# bench-check is the CI gate: re-measures the suite, verifies the
# committed artifact is structurally fresh, and enforces the performance
# floors (batch decode >= 2x per-record, ~0 allocs/record).
bench-check:
	go run ./cmd/benchreplay -check BENCH_replay.json
