# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

.PHONY: all build test race bench bench-check fmt vet

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	gofmt -w .

vet:
	go vet ./...

# bench regenerates the committed performance artifacts. Run it (and
# commit the results) whenever a benchmark suite, its fixture, or a
# measured hot path changes shape.
bench:
	go run ./cmd/benchreplay -out BENCH_replay.json
	go run ./cmd/benchreplay -suite runner -out BENCH_runner.json

# bench-check is the CI gate: re-measures both suites, verifies the
# committed artifacts are structurally fresh, and enforces the
# performance invariants (replay: batch decode >= 2x per-record,
# ~0 allocs/record; runner: engine-spec resolution a few percent of job
# runtime at most).
bench-check:
	go run ./cmd/benchreplay -check BENCH_replay.json
	go run ./cmd/benchreplay -suite runner -check BENCH_runner.json
