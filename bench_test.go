// Benchmarks regenerating each of the paper's evaluation artifacts
// (BenchmarkTable1, BenchmarkFig2 … BenchmarkFig10) at a reduced scale,
// plus micro-benchmarks of the PIF pipeline stages. Run with:
//
//	go test -bench=. -benchmem
package pif

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchOptions is a small-but-meaningful scale so each figure bench
// completes in seconds while exercising the full pipeline.
func benchOptions() experiments.Options {
	opts := experiments.QuickOptions()
	opts.Workloads = []workload.Profile{workload.OLTPDB2(), workload.WebApache()}
	opts.WarmupInstrs = 1_500_000
	opts.MeasureInstrs = 500_000
	return opts
}

func benchArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchOptions())
		if _, err := experiments.Run(env, id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchArtifact(b, "table1") }
func BenchmarkFig2(b *testing.B)   { benchArtifact(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchArtifact(b, "fig3") }
func BenchmarkFig7(b *testing.B)   { benchArtifact(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchArtifact(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchArtifact(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchArtifact(b, "fig10") }

// BenchmarkSimulatePIF measures end-to-end simulation throughput
// (instructions per second through front-end + L1 + PIF).
func BenchmarkSimulatePIF(b *testing.B) {
	cfg := DefaultSimConfig()
	cfg.WarmupInstrs = 200_000
	cfg.MeasureInstrs = 300_000
	wl := OLTPDB2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, wl, NewPIF(DefaultPIFConfig())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(cfg.WarmupInstrs + cfg.MeasureInstrs))
}

// BenchmarkSimulateBaselines compares engine overheads.
func BenchmarkSimulateBaselines(b *testing.B) {
	cfg := DefaultSimConfig()
	cfg.WarmupInstrs = 200_000
	cfg.MeasureInstrs = 300_000
	wl := OLTPDB2()
	for _, mk := range []struct {
		name string
		pf   func() Prefetcher
	}{
		{"None", func() Prefetcher { return NoPrefetch() }},
		{"NextLine", func() Prefetcher { return NewNextLine(4) }},
		{"TIFS", func() Prefetcher { return NewTIFS() }},
		{"PIF", func() Prefetcher { return NewPIF(DefaultPIFConfig()) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(cfg, wl, mk.pf()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// runnerBenchJobs enumerates a representative job mix (3 workloads × 4
// engines) at a small scale for the execution-engine benchmarks.
func runnerBenchJobs() []Job {
	cfg := DefaultSimConfig()
	cfg.WarmupInstrs = 100_000
	cfg.MeasureInstrs = 150_000
	var jobs []Job
	for _, wl := range Workloads()[:3] {
		for _, name := range []string{"none", "nextline", "tifs", "pif"} {
			jobs = append(jobs, Job{
				Label:    wl.Name + "/" + name,
				Workload: wl,
				Config:   cfg,
				Engine:   EngineSpec{Name: name},
			})
		}
	}
	return jobs
}

func benchRunner(b *testing.B, workers int) {
	b.Helper()
	jobs := runnerBenchJobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunJobs(context.Background(), jobs, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerSerial and BenchmarkRunnerParallel run the same job list
// through a 1-worker and a GOMAXPROCS-worker pool; their ratio is the
// execution engine's speedup on this machine.
func BenchmarkRunnerSerial(b *testing.B)   { benchRunner(b, 1) }
func BenchmarkRunnerParallel(b *testing.B) { benchRunner(b, runtime.GOMAXPROCS(0)) }

// BenchmarkWorkloadGeneration measures trace-generation throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	prog, err := workload.BuildProgram(workload.OLTPDB2())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := workload.NewExecutor(prog)
		n := ex.Run(500_000, func(trace.Record) {})
		b.SetBytes(int64(n))
	}
}

// BenchmarkCompactor measures the recording pipeline in isolation:
// spatial + temporal compaction of a synthetic retire stream.
func BenchmarkCompactor(b *testing.B) {
	stream, err := workload.GenerateStream(workload.DSSQry2(), 200_000)
	if err != nil {
		b.Fatal(err)
	}
	blocks := stream.Blocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := core.NewSpatialCompactor(core.DefaultGeometry())
		tc := core.NewTemporalCompactor(4)
		admitted := 0
		for _, blk := range blocks {
			if r, ok := sc.Observe(blk, isa.TL0, true); ok && tc.Filter(r) {
				admitted++
			}
		}
		if admitted == 0 {
			b.Fatal("no regions admitted")
		}
	}
}

// nullIssuer lets the PIF bench run without a cache model.
type nullIssuer struct{}

func (nullIssuer) Contains(isa.Block) bool { return true } // suppress fill work
func (nullIssuer) Prefetch(isa.Block)      {}

// BenchmarkPIFOnRetire measures the per-retired-instruction recording cost.
func BenchmarkPIFOnRetire(b *testing.B) {
	stream, err := workload.GenerateStream(workload.OLTPDB2(), 200_000)
	if err != nil {
		b.Fatal(err)
	}
	p := core.New(core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := stream[i%len(stream)]
		p.OnRetire(r, true, nullIssuer{})
	}
}

// BenchmarkPIFOnAccess measures the per-fetch replay/trigger cost.
func BenchmarkPIFOnAccess(b *testing.B) {
	stream, err := workload.GenerateStream(workload.OLTPDB2(), 200_000)
	if err != nil {
		b.Fatal(err)
	}
	p := core.New(core.DefaultConfig())
	for _, r := range stream {
		p.OnRetire(r, true, nullIssuer{})
	}
	blocks := stream.Blocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i%len(blocks)]
		p.OnAccess(prefetch.AccessEvent{Block: blk}, nullIssuer{})
	}
}

// BenchmarkTraceEncode measures binary trace writer throughput.
func BenchmarkTraceEncode(b *testing.B) {
	stream, err := workload.GenerateStream(workload.WebZeus(), 100_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := trace.NewWriter(discard{}, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteStream(stream); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(stream)))
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
