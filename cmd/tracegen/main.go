// Command tracegen generates a workload's retire-order instruction trace
// and writes it in the repository's compact binary format, so analyses can
// replay a trace many times without regenerating it (the paper's
// methodology collects traces once and studies them offline).
//
// Usage:
//
//	tracegen -workload "Web Apache" -n 10000000 -o apache.pift
//	tracegen -dump -i apache.pift | head
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	pif "repro"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	wlName := flag.String("workload", "OLTP DB2", "workload name")
	n := flag.Uint64("n", 10_000_000, "instructions to generate")
	out := flag.String("o", "", "output trace file (required unless -dump)")
	dump := flag.Bool("dump", false, "read a trace and print records as text")
	in := flag.String("i", "", "input trace file for -dump")
	limit := flag.Uint64("limit", 20, "records to print with -dump (0 = all)")
	flag.Parse()

	if *dump {
		if err := dumpTrace(*in, *limit); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		os.Exit(1)
	}
	if err := generate(*wlName, *n, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func generate(wlName string, n uint64, out string) error {
	wl, err := pif.WorkloadByName(wlName)
	if err != nil {
		return err
	}
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, wl.Name)
	if err != nil {
		return err
	}
	ex := workload.NewExecutor(prog)
	var writeErr error
	ex.Run(n, func(r trace.Record) {
		if writeErr == nil {
			writeErr = w.Write(r)
		}
	})
	if writeErr != nil {
		return writeErr
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records for %q to %s\n", w.Count(), wl.Name, out)
	return f.Close()
}

func dumpTrace(in string, limit uint64) error {
	if in == "" {
		return errors.New("-i is required with -dump")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	fmt.Printf("# workload: %s\n", r.Workload())
	var count uint64
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		count++
		if limit == 0 || count <= limit {
			fmt.Printf("%d %v %v flags=%#x\n", count, rec.PC, rec.TL, rec.Flags)
		}
	}
	fmt.Printf("# %d records\n", count)
	return nil
}
